#!/bin/sh
# bench.sh — run the performance-tracked benchmarks in benchstat-compatible
# format (standard `go test -bench` output is what benchstat consumes).
#
# Usage:
#   scripts/bench.sh            run the tracked benchmarks (5 iterations each)
#   scripts/bench.sh baseline   print the committed baseline (BENCH_baseline.json)
#                               re-rendered as benchstat-compatible lines
#
# Compare a fresh run against the baseline:
#   scripts/bench.sh > BENCH_current.txt
#   benchstat <(scripts/bench.sh baseline) BENCH_current.txt
set -eu

cd "$(dirname "$0")/.."

TRACKED='BenchmarkPairRun$|BenchmarkProfileFlow$|BenchmarkFilterMatch$|BenchmarkRunAllSequential$|BenchmarkRunAllParallel$'

if [ "${1:-}" = "baseline" ]; then
    # Render BENCH_baseline.json as benchstat input. The JSON is a flat
    # {name: {ns_per_op, bytes_per_op, allocs_per_op}} map.
    exec go run ./scripts/benchjson
fi

exec go test -run=NONE -bench="$TRACKED" -benchmem -benchtime=5x -count=1 .
