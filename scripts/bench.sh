#!/usr/bin/env bash
# bench.sh — run the performance-tracked benchmarks in benchstat-compatible
# format (standard `go test -bench` output is what benchstat consumes).
# Lint (gofmt -l + go vet, i.e. `make lint`) runs first so tracked numbers
# are never recorded from an unhygienic tree; its output goes to stderr to
# keep stdout benchstat-clean.
#
# Usage:
#   scripts/bench.sh            run the tracked benchmarks (5 iterations each)
#   scripts/bench.sh smoke      one iteration each, no lint — the CI
#                               bench-smoke gate: benchmarks must still run
#   scripts/bench.sh baseline   print the committed baseline (BENCH_baseline.json)
#                               re-rendered as benchstat-compatible lines
#   scripts/bench.sh netem      same for the netem record (BENCH_netem.json)
#   scripts/bench.sh plan       same for the Plan/Runner record (BENCH_plan.json)
#   scripts/bench.sh stream     same for the online-analysis record (BENCH_stream.json)
#   scripts/bench.sh reuse      same for the testbed-reuse/timing-wheel record
#                               (BENCH_reuse.json)
#
# Compare a fresh run against the committed records:
#   scripts/bench.sh > BENCH_current.txt
#   make bench-compare          (benchstat if installed, else benchjson compare)
#
# pipefail matters here: the output is routinely piped (tee, benchstat,
# sha256sum) and a failing `go test` must fail the pipeline, not vanish
# behind a healthy consumer.
set -euo pipefail

cd "$(dirname "$0")/.."

TRACKED='BenchmarkPairRun$|BenchmarkPairRunNetem|BenchmarkProfileFlow$|BenchmarkFilterMatch$|BenchmarkRunAllSequential$|BenchmarkRunAllParallel$|BenchmarkPlanStream$|BenchmarkPlanStreamOnline$|BenchmarkTestbedReset$|BenchmarkSchedulerDense'

case "${1:-}" in
baseline)
    # Render a committed record as benchstat input. The JSON is a flat
    # {name: {ns_per_op, bytes_per_op, allocs_per_op}} map.
    exec go run ./scripts/benchjson
    ;;
netem)
    exec go run ./scripts/benchjson BENCH_netem.json
    ;;
plan)
    exec go run ./scripts/benchjson BENCH_plan.json
    ;;
stream)
    exec go run ./scripts/benchjson BENCH_stream.json
    ;;
reuse)
    exec go run ./scripts/benchjson BENCH_reuse.json
    ;;
smoke)
    exec go test -run=NONE -bench="$TRACKED" -benchmem -benchtime=1x -count=1 .
    ;;
esac

make lint 1>&2

exec go test -run=NONE -bench="$TRACKED" -benchmem -benchtime=5x -count=1 .
