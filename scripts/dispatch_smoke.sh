#!/usr/bin/env bash
# dispatch_smoke.sh — the distributed path's rot protection, mirroring what
# bench-smoke does for benchmarks: launch a real coordinator and two real
# workers over localhost sockets on a small fixed plan, and assert the
# merged JSON digest equals the committed unsharded golden
# (testdata/dispatch_smoke.sha256). TestDispatchSmokeGoldenDigest pins the
# other half — golden == unsharded single-process output — so together:
# distributed == golden == unsharded.
#
# The plan must stay in lockstep with that test:
#   -seed 7 -pairs 1/low,3/low,2/high,5/high -scenario dsl
#
# Usage: scripts/dispatch_smoke.sh [port]   (default 18742)
set -euo pipefail

cd "$(dirname "$0")/.."

port="${1:-18742}"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

digest() {
    if command -v sha256sum >/dev/null 2>&1; then
        sha256sum "$1" | cut -d' ' -f1
    else
        shasum -a 256 "$1" | cut -d' ' -f1
    fi
}

# check_metrics fails the job unless the scraped /metrics body is
# non-empty, carries the key dispatcher series, and every sample line
# parses as Prometheus text exposition format.
check_metrics() {
    local body="$1"
    if [ -z "$body" ]; then
        echo "dispatch smoke: /metrics body empty" >&2
        exit 1
    fi
    local series
    for series in turbulence_dispatch_leases_granted_total \
                  turbulence_dispatch_queue_depth \
                  turbulence_dispatch_shards_total; do
        if ! printf '%s\n' "$body" | grep -Eq "^$series(\{[^}]*\})? "; then
            echo "dispatch smoke: /metrics missing series $series" >&2
            printf '%s\n' "$body" | head -30 >&2
            exit 1
        fi
    done
    if printf '%s\n' "$body" | grep -v '^#' | grep -Evq '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9.eE+-]+|\+Inf|NaN)$'; then
        echo "dispatch smoke: malformed /metrics exposition line(s):" >&2
        printf '%s\n' "$body" | grep -v '^#' | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9.eE+-]+|\+Inf|NaN)$' | head -5 >&2
        exit 1
    fi
}

go build -o "$out/turbulence" ./cmd/turbulence

"$out/turbulence" -serve "127.0.0.1:$port" -seed 7 \
    -pairs 1/low,3/low,2/high,5/high -scenario dsl -serve-shards 3 \
    >"$out/merged.json" 2>"$out/serve.log" &
serve_pid=$!
sleep 1

"$out/turbulence" -work "127.0.0.1:$port" -parallel 1 2>"$out/w1.log" &
w1_pid=$!
"$out/turbulence" -work "127.0.0.1:$port" -parallel 1 2>"$out/w2.log" &
w2_pid=$!

# Scrape the coordinator mid-sweep: the telemetry path must serve
# parseable exposition text while workers are pulling and shipping.
metrics="$(curl -fsS --max-time 5 "http://127.0.0.1:$port/metrics")" || {
    echo "dispatch smoke: GET /metrics failed mid-sweep" >&2
    sed 's/^/  serve: /' "$out/serve.log" >&2
    exit 1
}
check_metrics "$metrics"

serve_rc=0
wait "$serve_pid" || serve_rc=$?
# A worker that sleeps through the coordinator's post-completion linger can
# lose the race to its shutdown; the digest below is the actual gate.
wait "$w1_pid" || true
wait "$w2_pid" || true

if [ "$serve_rc" -ne 0 ]; then
    echo "dispatch smoke: coordinator failed (rc=$serve_rc)" >&2
    sed 's/^/  serve: /' "$out/serve.log" >&2
    sed 's/^/  w1: /' "$out/w1.log" >&2
    sed 's/^/  w2: /' "$out/w2.log" >&2
    exit 1
fi

want="$(cut -d' ' -f1 testdata/dispatch_smoke.sha256)"
got="$(digest "$out/merged.json")"
if [ "$got" != "$want" ]; then
    echo "dispatch smoke: merged digest $got != committed golden $want" >&2
    echo "(if the engine's output legitimately changed, re-bless via TestDispatchSmokeGoldenDigest)" >&2
    sed 's/^/  serve: /' "$out/serve.log" >&2
    exit 1
fi

shards1="$(grep -c 'running shard' "$out/w1.log" || true)"
shards2="$(grep -c 'running shard' "$out/w2.log" || true)"
echo "dispatch smoke ok: 2 workers ($shards1 + $shards2 shards), digest $got matches golden"
