#!/usr/bin/env bash
# live_smoke.sh — the live transport's rot protection: start a real
# -listen server and a real -play client on localhost UDP sockets, stream
# the paper's clip 2/low end to end in real time, and assert the delivered
# payload digest equals the committed simulator golden
# (internal/core/testdata/live_digest_2low.txt). TestWMSPayloadDigestGolden
# pins the other half — golden == simulated clean-path delivery — so
# together: live wire == golden == simulation.
#
# Usage: scripts/live_smoke.sh [metrics_port]   (default 18743)
set -euo pipefail

cd "$(dirname "$0")/.."

mport="${1:-18743}"
out="$(mktemp -d)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ]; then
        kill "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$out"
}
trap cleanup EXIT

# check_metrics fails the job unless the scraped /metrics body carries the
# live transport series and every sample line parses as Prometheus text
# exposition format.
check_metrics() {
    local body="$1"
    if [ -z "$body" ]; then
        echo "live smoke: /metrics body empty" >&2
        exit 1
    fi
    local series
    for series in turbulence_transport_sent_packets_total \
                  turbulence_transport_sent_bytes_total \
                  turbulence_transport_recv_packets_total; do
        if ! printf '%s\n' "$body" | grep -Eq "^$series(\{[^}]*\})? "; then
            echo "live smoke: /metrics missing series $series" >&2
            printf '%s\n' "$body" | head -30 >&2
            exit 1
        fi
    done
    if printf '%s\n' "$body" | grep -v '^#' | grep -Evq '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9.eE+-]+|\+Inf|NaN)$'; then
        echo "live smoke: malformed /metrics exposition line(s):" >&2
        printf '%s\n' "$body" | grep -v '^#' | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9.eE+-]+|\+Inf|NaN)$' | head -5 >&2
        exit 1
    fi
}

go build -o "$out/turbulence" ./cmd/turbulence

"$out/turbulence" -listen 127.0.0.1 -seed 1 -metrics "127.0.0.1:$mport" \
    2>"$out/server.log" &
server_pid=$!
sleep 1

# The client streams clip 2/low in real time (~40 s of media plus preroll).
if ! "$out/turbulence" -play 127.0.0.1 -bind 127.0.0.1 -clip 2/low -seed 2 \
    -live-timeout 3m >"$out/play.out" 2>"$out/play.log"; then
    echo "live smoke: -play failed" >&2
    sed 's/^/  server: /' "$out/server.log" >&2
    sed 's/^/  play: /' "$out/play.log" >&2
    exit 1
fi

# The session report must show a lossless local session: digest parity is
# only promised on a lossless path.
report="$(grep '^live play ' "$out/play.out")"
case "$report" in
*" lost=0 "*) ;;
*)
    echo "live smoke: live session lost units: $report" >&2
    exit 1
    ;;
esac
case "$report" in
*" sendErrs=0 "*) ;;
*)
    echo "live smoke: live session hit send errors: $report" >&2
    exit 1
    ;;
esac

want="$(tr -d '[:space:]' <internal/core/testdata/live_digest_2low.txt)"
got="$(sed -n 's/^digest: //p' "$out/play.out" | tr -d '[:space:]')"
if [ -z "$got" ]; then
    echo "live smoke: no digest line in -play output" >&2
    cat "$out/play.out" >&2
    exit 1
fi
if [ "$got" != "$want" ]; then
    echo "live smoke: live digest $got != committed golden $want" >&2
    echo "(if the protocol legitimately changed, re-bless via UPDATE_GOLDEN=1 go test ./internal/core -run TestWMSPayloadDigestGolden)" >&2
    sed 's/^/  server: /' "$out/server.log" >&2
    exit 1
fi

# The server's transport counters must be live on /metrics after a session.
metrics="$(curl -fsS --max-time 5 "http://127.0.0.1:$mport/metrics")" || {
    echo "live smoke: GET /metrics failed" >&2
    sed 's/^/  server: /' "$out/server.log" >&2
    exit 1
}
check_metrics "$metrics"

echo "live smoke ok: $(sed -n 's/^live play //p' "$out/play.out" | head -1); digest matches golden"
