#!/usr/bin/env bash
# cache_smoke.sh — the incremental-sweep path's rot protection: prove that
# a warm rerun against a populated result store (a) reports every
# previously-computed cell as a cache hit on /metrics, (b) simulates only
# the cells the cold run did not cover, and (c) still merges to the exact
# committed golden digest (testdata/dispatch_smoke.sha256) — then tear the
# store's tail frame and prove the corrupted cell is detected, recomputed,
# and never served as data.
#
# Three sweeps against one store directory:
#
#   1. cold   subset plan (2 of the 4 smoke cells) populates the store
#   2. warm   full smoke plan: 2 hits at carve time, workers simulate the
#             2 new cells only, digest == golden
#   3. torn   the store's last frame is truncated mid-frame; the reopen
#             drops it as corrupt, that one cell re-simulates, digest
#             still == golden
#
# The full plan must stay in lockstep with scripts/dispatch_smoke.sh and
# TestDispatchSmokeGoldenDigest:
#   -seed 7 -pairs 1/low,3/low,2/high,5/high -scenario dsl
#
# Usage: scripts/cache_smoke.sh [port]   (default 18743)
set -euo pipefail

cd "$(dirname "$0")/.."

port="${1:-18743}"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

subset_pairs="1/low,3/low"
subset_size=2
full_pairs="1/low,3/low,2/high,5/high"
full_size=4

digest() {
    if command -v sha256sum >/dev/null 2>&1; then
        sha256sum "$1" | cut -d' ' -f1
    else
        shasum -a 256 "$1" | cut -d' ' -f1
    fi
}

# metric NAME BODY — extract a counter's value from exposition text.
metric() {
    printf '%s\n' "$2" | awk -v name="$1" '$1 == name { print $2; found = 1 } END { if (!found) print "absent" }'
}

# sweep LABEL PAIRS — run a coordinator (with the store) plus two workers
# on the given pair spec; leaves merged JSON, serve/worker logs, and the
# mid-sweep /metrics scrape under $out/$LABEL.*.
sweep() {
    local label="$1" pairs="$2"
    "$out/turbulence" -serve "127.0.0.1:$port" -seed 7 \
        -pairs "$pairs" -scenario dsl -serve-shards 2 \
        -result-store "$out/store" \
        >"$out/$label.json" 2>"$out/$label.serve.log" &
    local serve_pid=$!
    sleep 1
    # Scrape before the workers join: the store is consulted once, at plan
    # carve time, so the cache counters are already final here.
    if ! curl -fsS --max-time 5 "http://127.0.0.1:$port/metrics" >"$out/$label.metrics"; then
        echo "cache smoke: $label: GET /metrics failed" >&2
        sed 's/^/  serve: /' "$out/$label.serve.log" >&2
        exit 1
    fi
    "$out/turbulence" -work "127.0.0.1:$port" -parallel 1 2>"$out/$label.w1.log" &
    local w1_pid=$!
    "$out/turbulence" -work "127.0.0.1:$port" -parallel 1 2>"$out/$label.w2.log" &
    local w2_pid=$!
    local serve_rc=0
    wait "$serve_pid" || serve_rc=$?
    wait "$w1_pid" || true
    wait "$w2_pid" || true
    if [ "$serve_rc" -ne 0 ]; then
        echo "cache smoke: $label: coordinator failed (rc=$serve_rc)" >&2
        sed 's/^/  serve: /' "$out/$label.serve.log" >&2
        sed 's/^/  w1: /' "$out/$label.w1.log" >&2
        sed 's/^/  w2: /' "$out/$label.w2.log" >&2
        exit 1
    fi
}

# simulated LABEL — total cells the workers actually ran in a sweep, read
# off the per-shard "running shard i/n (k cells)" lines.
simulated() {
    cat "$out/$1.w1.log" "$out/$1.w2.log" 2>/dev/null |
        sed -n 's/.*running shard [0-9/]* (\([0-9]*\) cells).*/\1/p' |
        awk '{ n += $1 } END { print n + 0 }'
}

# expect LABEL NAME WANT — assert one /metrics counter.
expect() {
    local got
    got="$(metric "$2" "$(cat "$out/$1.metrics")")"
    if [ "$got" != "$3" ]; then
        echo "cache smoke: $1: $2 = $got, want $3" >&2
        grep '^turbulence_cache' "$out/$1.metrics" >&2 || true
        exit 1
    fi
}

go build -o "$out/turbulence" ./cmd/turbulence
want="$(cut -d' ' -f1 testdata/dispatch_smoke.sha256)"

# --- 1. cold: the subset populates the store -------------------------------
sweep cold "$subset_pairs"
expect cold turbulence_cache_hits_total 0
expect cold turbulence_cache_misses_total "$subset_size"
if [ "$(simulated cold)" -ne "$subset_size" ]; then
    echo "cache smoke: cold run simulated $(simulated cold) cells, want $subset_size" >&2
    exit 1
fi

# --- 2. warm: the superset hits on every cold cell -------------------------
sweep warm "$full_pairs"
expect warm turbulence_cache_hits_total "$subset_size"
expect warm turbulence_cache_misses_total "$((full_size - subset_size))"
expect warm turbulence_cache_corrupt_frames_total 0
fresh="$(simulated warm)"
if [ "$fresh" -ne "$((full_size - subset_size))" ]; then
    echo "cache smoke: warm run simulated $fresh cells, want $((full_size - subset_size)) (cache not serving)" >&2
    exit 1
fi
got="$(digest "$out/warm.json")"
if [ "$got" != "$want" ]; then
    echo "cache smoke: warm merged digest $got != committed golden $want" >&2
    echo "(cached cells must merge byte-identically to fresh simulation)" >&2
    exit 1
fi

# --- 3. torn: a truncated tail frame is a miss, never data -----------------
# Chop into the last appended frame. The reopen must drop it as corrupt,
# re-simulate exactly that cell, and still merge to the golden digest.
store_file="$out/store/results.store"
size="$(wc -c <"$store_file")"
truncate -s "$((size - 7))" "$store_file" 2>/dev/null ||
    dd if=/dev/null of="$store_file" bs=1 seek="$((size - 7))" 2>/dev/null
sweep torn "$full_pairs"
expect torn turbulence_cache_corrupt_frames_total 1
expect torn turbulence_cache_hits_total "$((full_size - 1))"
expect torn turbulence_cache_misses_total 1
if [ "$(simulated torn)" -ne 1 ]; then
    echo "cache smoke: torn run simulated $(simulated torn) cells, want exactly the corrupted one" >&2
    exit 1
fi
got="$(digest "$out/torn.json")"
if [ "$got" != "$want" ]; then
    echo "cache smoke: post-corruption digest $got != committed golden $want" >&2
    exit 1
fi

echo "cache smoke ok: $subset_size/$full_size cells served warm, torn frame recomputed, digest $want throughout"
