// Command benchjson re-renders a committed benchmark record
// (BENCH_baseline.json by default, or the file named as the first
// argument, e.g. BENCH_netem.json) as benchstat-compatible benchmark
// lines, so a committed record can feed straight into
// `benchstat <(scripts/bench.sh baseline) BENCH_current.txt`.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type baseline struct {
	Goos       string           `json:"goos"`
	Goarch     string           `json:"goarch"`
	CPU        string           `json:"cpu"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	file := "BENCH_baseline.json"
	if len(os.Args) > 1 {
		file = os.Args[1]
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("goos: %s\ngoarch: %s\npkg: turbulence\ncpu: %s\n", b.Goos, b.Goarch, b.CPU)
	names := make([]string, 0, len(b.Benchmarks))
	for name := range b.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := b.Benchmarks[name]
		fmt.Printf("%s \t1\t%.0f ns/op\t%d B/op\t%d allocs/op\n", name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
}
