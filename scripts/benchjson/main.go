// Command benchjson works with the committed benchmark records.
//
// Render mode (default) re-renders a committed record
// (BENCH_baseline.json by default, or the file named as the first
// argument, e.g. BENCH_netem.json) as benchstat-compatible benchmark
// lines, so a committed record can feed straight into
// `benchstat <(scripts/bench.sh baseline) BENCH_current.txt`.
//
// Compare mode (`benchjson compare BENCH_current.txt [record.json...]`)
// parses a fresh `go test -bench` output and prints it side by side with
// every committed record that tracks the same benchmarks — the fallback
// `make bench-compare` uses when benchstat is not installed. With no
// records named it compares against every BENCH_*.json in the working
// directory.
//
// Gate mode (`benchjson compare -gate <pct> BENCH_current.txt [...]`)
// additionally exits non-zero when any benchmark's ns/op exceeds a
// committed record's by more than <pct> percent — the opt-in regression
// gate behind `make bench-compare GATE=<pct>`. Records are snapshots from
// specific hardware, so the gate is meaningful on runners that refresh
// their own records; that is why it is opt-in rather than the default.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type baseline struct {
	Goos       string           `json:"goos"`
	Goarch     string           `json:"goarch"`
	CPU        string           `json:"cpu"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		args := os.Args[2:]
		gate := -1.0 // negative: report only, never fail
		if len(args) >= 2 && args[0] == "-gate" {
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil || v < 0 {
				fmt.Fprintln(os.Stderr, "benchjson: -gate wants a non-negative percentage")
				os.Exit(2)
			}
			gate = v
			args = args[2:]
		}
		if len(args) < 1 {
			fmt.Fprintln(os.Stderr, "usage: benchjson compare [-gate pct] BENCH_current.txt [record.json ...]")
			os.Exit(2)
		}
		compare(args[0], args[1:], gate)
		return
	}
	file := "BENCH_baseline.json"
	if len(os.Args) > 1 {
		file = os.Args[1]
	}
	b := load(file)
	fmt.Printf("goos: %s\ngoarch: %s\npkg: turbulence\ncpu: %s\n", b.Goos, b.Goarch, b.CPU)
	for _, name := range sortedNames(b.Benchmarks) {
		e := b.Benchmarks[name]
		fmt.Printf("%s \t1\t%.0f ns/op\t%d B/op\t%d allocs/op\n", name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
}

func load(file string) baseline {
	raw, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	return b
}

func sortedNames(m map[string]entry) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// parseBench extracts {name: entry} from `go test -bench -benchmem`
// output lines of the form
//
//	BenchmarkName-8   	5	  123456 ns/op	  7890 B/op	  12 allocs/op
//
// The trailing GOMAXPROCS suffix (-8) is stripped so names match the
// committed records, which are recorded suffixless; sub-benchmark slashes
// are kept.
func parseBench(file string) map[string]entry {
	f, err := os.Open(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer f.Close()
	out := make(map[string]entry)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := entry{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = int64(v)
			case "allocs/op":
				e.AllocsPerOp = int64(v)
			}
		}
		out[name] = e
	}
	return out
}

func compare(currentFile string, records []string, gate float64) {
	current := parseBench(currentFile)
	if len(records) == 0 {
		var err error
		records, err = filepath.Glob("BENCH_*.json")
		if err != nil || len(records) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: no BENCH_*.json records found")
			os.Exit(1)
		}
		sort.Strings(records)
	}
	var regressions []string
	for _, rec := range records {
		b := load(rec)
		shared := make(map[string]entry)
		for name, e := range b.Benchmarks {
			if _, ok := current[name]; ok {
				shared[name] = e
			}
		}
		if len(shared) == 0 {
			continue
		}
		fmt.Printf("== vs %s ==\n", rec)
		fmt.Printf("%-34s %14s %9s %14s %9s %9s %9s\n",
			"benchmark", "old ns/op", "old B/op", "new ns/op", "new B/op", "Δns/op", "ΔB/op")
		for _, name := range sortedNames(shared) {
			old, cur := shared[name], current[name]
			dns := pct(cur.NsPerOp, old.NsPerOp)
			fmt.Printf("%-34s %12.0fns %7.1fMB %12.0fns %7.1fMB %+8.1f%% %+8.1f%%\n",
				name,
				old.NsPerOp, float64(old.BytesPerOp)/1e6,
				cur.NsPerOp, float64(cur.BytesPerOp)/1e6,
				dns, pct(float64(cur.BytesPerOp), float64(old.BytesPerOp)))
			if gate >= 0 && dns > gate {
				regressions = append(regressions,
					fmt.Sprintf("%s: ns/op %+.1f%% vs %s (gate %.0f%%)", name, dns, rec, gate))
			}
		}
		fmt.Println()
	}
	if gate < 0 {
		return
	}
	if len(regressions) > 0 {
		fmt.Fprintln(os.Stderr, "benchjson: ns/op regression gate failed:")
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Printf("gate: no tracked benchmark regressed ns/op by more than %.0f%%\n", gate)
}

func pct(cur, old float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old * 100
}
