#!/usr/bin/env bash
# chaos_smoke.sh — the crash-recovery story's rot protection, the violent
# sibling of dispatch_smoke.sh: launch a real coordinator (with a
# -checkpoint journal) and two real workers over localhost sockets, SIGKILL
# the coordinator mid-sweep (taking one worker down with it), restart the
# coordinator on the same journal and port — the surviving worker's retries
# reconnect, a replacement worker joins — and assert the resumed run's
# merged JSON digest equals the committed unsharded golden
# (testdata/dispatch_smoke.sha256). Crash + resume must be invisible in the
# output.
#
# The plan must stay in lockstep with TestDispatchSmokeGoldenDigest:
#   -seed 7 -pairs 1/low,3/low,2/high,5/high -scenario dsl
#
# The kill is timed by polling GET /status until the journal provably
# holds some-but-not-all shards. If the sweep outruns the window (fast
# machine), the uninterrupted output still gates the digest — the job
# degrades to dispatch_smoke, never to a flake.
#
# Usage: scripts/chaos_smoke.sh [port]   (default 18743)
set -euo pipefail

cd "$(dirname "$0")/.."

port="${1:-18743}"
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

digest() {
    if command -v sha256sum >/dev/null 2>&1; then
        sha256sum "$1" | cut -d' ' -f1
    else
        shasum -a 256 "$1" | cut -d' ' -f1
    fi
}

dump_logs() {
    for f in "$out"/*.log; do
        sed "s|^|  $(basename "$f" .log): |" "$f" >&2
    done
}

# check_metrics fails the job unless the scraped /metrics body is
# non-empty, carries the key dispatcher series, and every sample line
# parses as Prometheus text exposition format.
check_metrics() {
    local body="$1"
    if [ -z "$body" ]; then
        echo "chaos smoke: /metrics body empty" >&2
        exit 1
    fi
    local series
    for series in turbulence_dispatch_leases_granted_total \
                  turbulence_dispatch_queue_depth \
                  turbulence_dispatch_journal_fsyncs_total; do
        if ! printf '%s\n' "$body" | grep -Eq "^$series(\{[^}]*\})? "; then
            echo "chaos smoke: /metrics missing series $series" >&2
            printf '%s\n' "$body" | head -30 >&2
            exit 1
        fi
    done
    if printf '%s\n' "$body" | grep -v '^#' | grep -Evq '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9.eE+-]+|\+Inf|NaN)$'; then
        echo "chaos smoke: malformed /metrics exposition line(s):" >&2
        printf '%s\n' "$body" | grep -v '^#' | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9.eE+-]+|\+Inf|NaN)$' | head -5 >&2
        exit 1
    fi
}

go build -o "$out/turbulence" ./cmd/turbulence

serve=("$out/turbulence" -serve "127.0.0.1:$port" -seed 7
    -pairs 1/low,3/low,2/high,5/high -scenario dsl -serve-shards 4
    -lease-ttl 5s -checkpoint "$out/sweep.ckpt")

"${serve[@]}" >"$out/merged_a.json" 2>"$out/serve_a.log" &
serve_pid=$!
sleep 1

"$out/turbulence" -work "127.0.0.1:$port" -parallel 1 2>"$out/w1.log" &
w1_pid=$!
"$out/turbulence" -work "127.0.0.1:$port" -parallel 1 2>"$out/w2.log" &
w2_pid=$!

# Scrape the coordinator mid-sweep, before any crash: the telemetry path
# must serve parseable exposition text while workers pull and ship.
metrics="$(curl -fsS --max-time 5 "http://127.0.0.1:$port/metrics")" || {
    echo "chaos smoke: GET /metrics failed mid-sweep" >&2
    dump_logs
    exit 1
}
check_metrics "$metrics"

# Poll /status until the sweep is provably mid-flight: at least one shard
# journalled, at least one still outstanding — then SIGKILL the
# coordinator and the first worker. No SIGTERM, no drain: the journal's
# fsync'd frames are the only thing the successor may rely on.
killed=0
for _ in $(seq 1 600); do
    kill -0 "$serve_pid" 2>/dev/null || break
    status="$(curl -fsS --max-time 1 "http://127.0.0.1:$port/status" 2>/dev/null || true)"
    done_n="$(printf '%s' "$status" | grep -o '"done":[0-9]*' | cut -d: -f2 || true)"
    if [ -n "$done_n" ] && [ "$done_n" -ge 1 ] && [ "$done_n" -lt 4 ]; then
        kill -9 "$serve_pid" "$w1_pid" 2>/dev/null || true
        killed=1
        break
    fi
    sleep 0.05
done

if [ "$killed" -eq 1 ]; then
    wait "$serve_pid" 2>/dev/null || true
    wait "$w1_pid" 2>/dev/null || true

    # Resume: same sweep flags, same checkpoint, same port. The surviving
    # worker's retry/backoff finds the successor; a fresh worker replaces
    # the dead one. The successor must replay the journal and re-lease
    # only the unfinished shards.
    "${serve[@]}" >"$out/merged.json" 2>"$out/serve_b.log" &
    serve2_pid=$!
    sleep 1
    "$out/turbulence" -work "127.0.0.1:$port" -parallel 1 2>"$out/w3.log" &
    w3_pid=$!

    serve_rc=0
    wait "$serve2_pid" || serve_rc=$?
    wait "$w2_pid" || true
    wait "$w3_pid" || true

    if ! grep -q 'resumed from' "$out/serve_b.log"; then
        echo "chaos smoke: resumed coordinator did not replay the checkpoint" >&2
        dump_logs
        exit 1
    fi
else
    # The sweep completed (or the window expired) before a safe kill
    # point; the uninterrupted output still gates the digest.
    echo "chaos smoke: no mid-sweep kill window; gating the uninterrupted output" >&2
    serve_rc=0
    wait "$serve_pid" || serve_rc=$?
    wait "$w1_pid" || true
    wait "$w2_pid" || true
    cp "$out/merged_a.json" "$out/merged.json"
fi

if [ "$serve_rc" -ne 0 ]; then
    echo "chaos smoke: coordinator failed (rc=$serve_rc)" >&2
    dump_logs
    exit 1
fi

want="$(cut -d' ' -f1 testdata/dispatch_smoke.sha256)"
got="$(digest "$out/merged.json")"
if [ "$got" != "$want" ]; then
    echo "chaos smoke: merged digest $got != committed golden $want" >&2
    echo "(crash + resume must be invisible in the output; if the engine legitimately changed, re-bless via TestDispatchSmokeGoldenDigest)" >&2
    dump_logs
    exit 1
fi

if [ "$killed" -eq 1 ]; then
    echo "chaos smoke ok: coordinator SIGKILLed at done=$done_n/4, resumed from checkpoint, digest $got matches golden"
else
    echo "chaos smoke ok (no kill window): digest $got matches golden"
fi
