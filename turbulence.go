package turbulence

import (
	"context"
	"io"
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/core"
	"turbulence/internal/dispatch"
	"turbulence/internal/eventsim"
	"turbulence/internal/experiments"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/netsim"
	"turbulence/internal/obs"
	"turbulence/internal/resultstore"
	"turbulence/internal/stats"
	"turbulence/internal/transport"
	"turbulence/internal/wire"
)

// Re-exported domain types. These aliases are the supported public
// surface; internal packages may evolve behind them.
type (
	// Clip is one encoded video clip from the Table 1 library.
	Clip = media.Clip
	// ClipSet is one Table 1 data set (same content, both formats).
	ClipSet = media.ClipSet
	// Format distinguishes RealVideo from Windows Media.
	Format = media.Format
	// Class is the advertised-rate grouping (low/high/very-high).
	Class = media.Class

	// PairRun is one paired streaming experiment's full result.
	PairRun = core.PairRun
	// Options selects ablation variants of the experiment.
	Options = core.Options
	// FlowProfile is the turbulence characterisation of one flow.
	FlowProfile = core.FlowProfile
	// FlowModel is the Section IV fitted synthetic-flow generator.
	FlowModel = core.FlowModel
	// Comparison pairs the two players' profiles for one run.
	Comparison = core.Comparison
	// SiteProfile describes one server site's network path.
	SiteProfile = core.SiteProfile
	// Testbed is the full simulated apparatus.
	Testbed = core.Testbed
	// PairKey identifies one pair experiment (set, class).
	PairKey = core.PairKey
	// ScenarioRuns couples one scenario with its pair-run results.
	ScenarioRuns = core.ScenarioRuns

	// Plan declares an experiment run space — clip pairs × scenarios ×
	// option variants plus a seed policy — without executing anything; it
	// can be sized, enumerated and sharded for free.
	Plan = core.Plan
	// Runner executes Plans, configured by functional options
	// (WithWorkers, WithContext, WithProgress, WithTraceRetention).
	Runner = core.Runner
	// RunnerOption configures a Runner at construction.
	RunnerOption = core.RunnerOption

	// SweepStats aggregates a sweep's testbed-economy counters; see
	// WithSweepStats.
	SweepStats = core.SweepStats
	// RunKey identifies one cell of a Plan's run space.
	RunKey = core.RunKey
	// RunResult is one executed Plan cell.
	RunResult = core.RunResult
	// Variant is one named point on a Plan's ablation axis.
	Variant = core.Variant
	// SeedPolicy selects how a Plan derives per-cell seeds.
	SeedPolicy = core.SeedPolicy
	// TraceRetention selects what a Runner keeps of each completed run.
	TraceRetention = core.TraceRetention
	// Progress is one Runner completion notification.
	Progress = core.Progress

	// Scenario is a named netem recipe of per-hop impairments (bursty
	// loss, time-varying bandwidth, AQM, cross traffic).
	Scenario = netem.Scenario
	// Impairment bundles netem model factories for one hop.
	Impairment = netem.Impairment
	// HopRole classifies a hop (access, backbone, bottleneck) for
	// scenario recipes.
	HopRole = netem.HopRole
	// LossModel, BandwidthProfile, DelayJitter, Queue and CrossTraffic
	// are the netem model interfaces, for custom scenarios.
	LossModel        = netem.LossModel
	BandwidthProfile = netem.BandwidthProfile
	DelayJitter      = netem.DelayJitter
	Queue            = netem.Queue
	CrossTraffic     = netem.CrossTraffic
	// PathStats is a path's drop breakdown (model loss vs queue overflow
	// vs AQM early drops vs TTL expiry).
	PathStats = netsim.PathStats

	// Trace is a packet capture; FlowTrace is one flow's slice of it.
	Trace = capture.Trace
	// FlowTrace is the per-flow view of a Trace.
	FlowTrace = capture.FlowTrace
	// Filter is a compiled display-filter expression.
	Filter = capture.Filter
	// Tap observes captured records online (zero-allocation, per packet).
	Tap = capture.Tap
	// FlowMetrics is the one-pass per-flow analyzer behind StreamProfiles.
	FlowMetrics = capture.FlowMetrics
	// FlowDemux routes captured records to per-flow analyzers online, with
	// the same fragment-train attribution SplitFlows applies to traces.
	FlowDemux = capture.FlowDemux
	// FlowStream is one flow being analysed online by a FlowDemux.
	FlowStream = capture.FlowStream

	// Point is one (x, y) sample of a series.
	Point = stats.Point

	// Result is a regenerated paper table/figure.
	Result = experiments.Result
	// ExperimentContext caches pair runs across experiments.
	ExperimentContext = experiments.Context

	// WireRun is the transport shape of one executed Plan cell: identity,
	// seed and turbulence profiles, no traces — what shard processes ship
	// home (gob or JSON) for a collector to merge.
	WireRun = wire.Run
	// PlanSpec is the transport shape of an unsharded Plan (scenarios by
	// name) — what a dispatch lease grant carries to workers.
	PlanSpec = wire.PlanSpec

	// Coordinator serves a Plan as a lease-based shard queue over HTTP
	// and collects the results (the -serve side of cmd/turbulence).
	Coordinator = dispatch.Coordinator
	// DispatchWorker pulls shard leases from a Coordinator, runs them
	// under StreamProfiles retention and ships the results home (the
	// -work side of cmd/turbulence).
	DispatchWorker = dispatch.Worker
	// DispatchClient speaks the coordinator's HTTP wire; it implements
	// the same Queue interface as the Coordinator itself.
	DispatchClient = dispatch.Client
	// DispatchOption adjusts dispatcher knobs (shards, lease TTL, retry,
	// per-shard run workers, logging).
	DispatchOption = dispatch.Option

	// ResultStore is the content-addressed, append-only on-disk cache of
	// completed cell results: cells are keyed by a digest over pair ×
	// scenario × variant × seed × engine version, so a rerun — local or
	// dispatched — serves matching cells from disk instead of simulating
	// them, and a corrupted frame is a recount-and-recompute, never data.
	ResultStore = resultstore.Store
	// ResultStoreStats is a ResultStore's counter snapshot (hits, misses,
	// bytes appended, corrupt frames dropped, resident entries).
	ResultStoreStats = resultstore.Stats

	// MetricsRegistry is a set of named metric series rendered in
	// Prometheus text exposition format (Handler serves it as /metrics).
	MetricsRegistry = obs.Registry
	// MetricsSink is the sweep-side instrument bundle a Runner feeds:
	// cell timing, simulator counters, capture volume, netem drops.
	MetricsSink = obs.Sink

	// RNG is the deterministic random stream used by generators.
	RNG = eventsim.RNG
	// SimTime is a timestamp on a transport's event clock: simulated
	// time in the simulator, wall time since start on a live transport.
	// LiveTransport.Do/DoWait callbacks receive it.
	SimTime = eventsim.Time

	// Host is one simulated endpoint of a netsim network.
	Host = netsim.Host
	// Transport is the seam between the protocol stacks and the thing
	// that carries their packets — simulated (SimTransport) or real UDP
	// sockets (LiveTransport).
	Transport = transport.Transport
	// SimTransport adapts a simulated Host to the Transport interface
	// (byte-identical to the stacks' pre-seam wiring).
	SimTransport = transport.Sim
	// LiveTransport drives the protocol stacks over real net.UDPConn
	// sockets with a wall-clock event loop.
	LiveTransport = transport.Live
	// LiveTransportConfig parameterises a LiveTransport (bind IP, seed,
	// metrics registry, tunnel port).
	LiveTransportConfig = transport.Config
	// LiveServers are the protocol servers ServeLive attached to a live
	// transport.
	LiveServers = core.LiveServers
	// LiveReport is the outcome of one PlayLive client session.
	LiveReport = core.LiveReport

	// Flow identifies a unidirectional UDP flow.
	Flow = inet.Flow
	// Endpoint is an (address, port) pair.
	Endpoint = inet.Endpoint
	// Addr is an IPv4 address.
	Addr = inet.Addr
	// Port is a UDP port number.
	Port = inet.Port
)

// Format and class constants.
const (
	Real         = media.Real
	WindowsMedia = media.WindowsMedia
	Low          = media.Low
	High         = media.High
	VeryHigh     = media.VeryHigh
)

// Seed-policy and trace-retention constants for Plans and Runners.
const (
	// SeedCommon streams every scenario/variant cell of a pair under
	// common random numbers (the legacy entry points' policy).
	SeedCommon = core.SeedCommon
	// SeedPerCell gives every cell an independent random stream.
	SeedPerCell = core.SeedPerCell
	// RetainTraces keeps each run's full packet capture (the default).
	RetainTraces = core.RetainTraces
	// DropTracesAfterProfile profiles each run's flows, then releases the
	// raw capture to bound memory on huge matrices.
	DropTracesAfterProfile = core.DropTracesAfterProfile
	// StreamProfiles never stores records at all: captured packets stream
	// through online per-flow analyzers and profiles come back in
	// RunResult.Comparison, exactly equal to trace-derived ones. Sweeps
	// run in O(workers × analyzer state) memory instead of O(workers ×
	// trace).
	StreamProfiles = core.StreamProfiles
)

// NewPlan declares the paper's full evaluation sweep for a base seed: all
// 13 Table 1 pairs on the faithful testbed with faithful options. Narrow
// or widen the axes with ForPairs, UnderScenarios, WithVariants and
// WithOptions, carve a deterministic 1/n slice with Shard, and execute
// with a Runner.
func NewPlan(baseSeed int64) *Plan { return core.NewPlan(baseSeed) }

// NewRunner builds a Plan executor. With no options it runs sequentially
// with no cancellation — exactly the legacy sequential entry points.
func NewRunner(opts ...RunnerOption) *Runner { return core.NewRunner(opts...) }

// WithWorkers sets the Runner's worker-pool size (1 = sequential, 0 = all
// cores). Output is byte-identical for any value; only wall-clock changes.
func WithWorkers(n int) RunnerOption { return core.WithWorkers(n) }

// WithContext installs a cancellation context, checked before each run and
// between simulation events inside each run, so cancelling (e.g. on
// SIGINT) aborts a sweep promptly with only completed runs delivered.
func WithContext(ctx context.Context) RunnerOption { return core.WithContext(ctx) }

// WithProgress installs a serialised completion callback for live
// progress on long sweeps.
func WithProgress(fn func(Progress)) RunnerOption { return core.WithProgress(fn) }

// WithTraceRetention selects what each completed run keeps (RetainTraces
// or DropTracesAfterProfile).
func WithTraceRetention(tr TraceRetention) RunnerOption { return core.WithTraceRetention(tr) }

// WithFreshTestbeds disables the Runner's per-worker testbed reuse: every
// cell builds its apparatus from scratch, the pre-reuse behaviour. Runs
// are byte-identical either way; fresh mode trades speed for nothing and
// exists for A/B measurement and debugging.
func WithFreshTestbeds() RunnerOption { return core.WithFreshTestbeds() }

// WithTimingWheel switches each run's event scheduler from the 4-ary heap
// to the hierarchical timing wheel. Firing order — and therefore every
// run byte — is identical; the wheel trades heap re-ordering for O(1)
// bucket pushes on dense timer workloads.
func WithTimingWheel() RunnerOption { return core.WithTimingWheel() }

// WithSweepStats registers a callback receiving the sweep's aggregate
// testbed-economy counters (testbeds built vs reused, wheel occupancy
// high-water) after the last cell completes.
func WithSweepStats(fn func(SweepStats)) RunnerOption { return core.WithSweepStats(fn) }

// WithMetrics installs a MetricsSink on the Runner: every completed cell
// feeds its wall time, simulator counters, capture volume and netem drop
// causes into it. Results are unaffected.
func WithMetrics(s *MetricsSink) RunnerOption { return core.WithMetrics(s) }

// OpenResultStore opens (creating if absent) the content-addressed result
// store in dir. The store is safe for concurrent use by one process; a
// torn or corrupted tail frame from a crashed writer is counted, logged
// through logf (when non-nil) and truncated away on open — a damaged
// store degrades to a smaller cache, never to wrong results.
func OpenResultStore(dir string, logf func(format string, args ...any)) (*ResultStore, error) {
	if logf == nil {
		return resultstore.Open(dir)
	}
	return resultstore.Open(dir, resultstore.WithLogf(logf))
}

// WithResultStore installs a result store as the Runner's read-through
// cache: under the drop/stream retentions, cells whose digest is present
// are served from the store without simulating, and freshly simulated
// cells are inserted for the next sweep. Under RetainTraces the store is
// bypassed (it holds profiles, not packet captures). Served results are
// byte-identical to simulated ones.
func WithResultStore(s *ResultStore) RunnerOption { return core.WithResultStore(s) }

// NewMetricsRegistry creates an empty metric registry. Serve it with
// (*MetricsRegistry).Handler() on any mux.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewMetricsSink registers the sweep instrument bundle on reg and returns
// it, ready for WithMetrics or ExperimentContext.SetMetrics.
func NewMetricsSink(reg *MetricsRegistry) *MetricsSink { return obs.NewSink(reg) }

// MergeRuns recombines shard outputs of one Plan into the canonical plan
// order, so n processes each running plan.Shard(i, n) reproduce the
// unsharded sweep exactly.
func MergeRuns(shards ...[]RunResult) []RunResult { return core.MergeRuns(shards...) }

// WireRuns flattens executed cells to their wire shape (profiles computed
// from retained flows when the retention left no Comparison).
func WireRuns(results []RunResult) []WireRun { return wire.FromResults(results) }

// MergeWireRuns recombines shipped shard batches into canonical plan
// order — MergeRuns for results that crossed a process boundary.
func MergeWireRuns(batches ...[]WireRun) []WireRun { return wire.Merge(batches...) }

// EncodeRunsJSON / DecodeRunsJSON and EncodeRunsGob / DecodeRunsGob move
// wire batches across process boundaries (JSON for interoperability, gob
// between Go processes).
func EncodeRunsJSON(w io.Writer, runs []WireRun) error { return wire.WriteJSON(w, runs) }
func DecodeRunsJSON(r io.Reader) ([]WireRun, error)    { return wire.ReadJSON(r) }
func EncodeRunsGob(w io.Writer, runs []WireRun) error  { return wire.WriteGob(w, runs) }
func DecodeRunsGob(r io.Reader) ([]WireRun, error)     { return wire.ReadGob(r) }

// PairRuns projects results onto their PairRun payloads, preserving order.
func PairRuns(results []RunResult) []*PairRun { return core.PairRuns(results) }

// Serve runs a shard-dispatch coordinator for plan over HTTP on addr:
// workers pull lease-based shards (POST /lease), run them, and ship
// results home (POST /complete); dead workers' leases expire and their
// shards are re-issued. Serve returns when every shard has completed —
// with the results merged into the canonical unsharded order, identical
// to a single-process Runner.Run — or when ctx cancels, which drains the
// queue (workers wind down) and returns what completed.
func Serve(ctx context.Context, addr string, plan *Plan, opts ...DispatchOption) ([]WireRun, error) {
	return dispatch.Serve(ctx, addr, plan, opts...)
}

// Work runs one worker loop against a coordinator at base
// ("host:port" or "http://host:port") until the sweep drains or ctx
// cancels: pull a shard lease, execute it with a Runner under
// StreamProfiles retention (O(analyzer-state) memory, no traces), ship
// the wire-encoded results with retry/backoff, repeat. Returns how many
// shards this worker completed.
func Work(ctx context.Context, base string, opts ...DispatchOption) (int, error) {
	return dispatch.Work(ctx, base, opts...)
}

// NewCoordinator builds the dispatch coordinator without binding it to a
// socket — embedders can mount Handler on their own mux, or hand the
// coordinator directly to in-process workers as their queue.
func NewCoordinator(plan *Plan, opts ...DispatchOption) (*Coordinator, error) {
	return dispatch.New(plan, opts...)
}

// ResumeCoordinator rebuilds a coordinator from a checkpoint journal
// written by a previous run under WithDispatchCheckpoint: the plan comes
// out of the journal itself, recorded shard completions are replayed, and
// only the unfinished shards are leased out — so a crashed sweep picks up
// where its last fsync left off instead of starting over. A journal for a
// different sweep (plan digest mismatch) is refused.
func ResumeCoordinator(path string, opts ...DispatchOption) (*Coordinator, error) {
	return dispatch.Resume(path, opts...)
}

// NewDispatchWorker builds a worker pulling from q — a *DispatchClient
// for remote coordinators, or a *Coordinator itself in process.
func NewDispatchWorker(q dispatch.Queue, opts ...DispatchOption) *DispatchWorker {
	return dispatch.NewWorker(q, opts...)
}

// DispatchLoopback binds a DispatchClient directly to a coordinator's
// HTTP handler: the full wire path (gob envelopes, version checks) with
// no sockets — for tests and single-process demos.
func DispatchLoopback(c *Coordinator, opts ...DispatchOption) *DispatchClient {
	return dispatch.Loopback(c, opts...)
}

// Dispatch knob constructors, re-exported for Serve/Work callers.
func WithDispatchShards(n int) DispatchOption           { return dispatch.WithShards(n) }
func WithLeaseTTL(d time.Duration) DispatchOption       { return dispatch.WithLeaseTTL(d) }
func WithDispatchRetry(d time.Duration) DispatchOption  { return dispatch.WithRetry(d) }
func WithRunWorkers(n int) DispatchOption               { return dispatch.WithRunWorkers(n) }
func WithRunContext(ctx context.Context) DispatchOption { return dispatch.WithRunContext(ctx) }
func WithWorkerName(name string) DispatchOption         { return dispatch.WithName(name) }
func WithDispatchLogf(f func(format string, args ...any)) DispatchOption {
	return dispatch.WithLogf(f)
}

// WithDispatchCheckpoint journals every completed shard to path (gob
// frames, fsync'd) so a crashed coordinator can be rebuilt with
// ResumeCoordinator — or by re-running Serve with the same path — and
// re-lease only the unfinished shards.
func WithDispatchCheckpoint(path string) DispatchOption { return dispatch.WithCheckpoint(path) }

// WithDispatchHeartbeat sets a worker's lease-renewal interval while a
// shard simulates (0 derives TTL/3 from the grant). Renewal is what lets
// LeaseTTL sit far below a slow shard's runtime without double-running it.
func WithDispatchHeartbeat(d time.Duration) DispatchOption { return dispatch.WithHeartbeat(d) }

// WithDispatchRetryBudget caps one client call's total elapsed retrying:
// past it the coordinator counts as unreachable and the worker drains
// instead of hanging.
func WithDispatchRetryBudget(d time.Duration) DispatchOption { return dispatch.WithRetryBudget(d) }

// WithMaxShardFailures sets the coordinator's quarantine threshold: a
// shard struck this many times (lease expiries, rejected or undecodable
// batches) is parked and reported instead of poisoning the queue forever.
// Negative disables quarantine.
func WithMaxShardFailures(n int) DispatchOption { return dispatch.WithMaxShardFailures(n) }

// WithDispatchPprof mounts net/http/pprof profiling handlers under
// /debug/pprof/ on the coordinator's mux. Off by default: profiling
// endpoints expose internals and cost CPU when scraped, so they are
// opt-in for operators who need them.
func WithDispatchPprof(on bool) DispatchOption { return dispatch.WithPprof(on) }

// WithDispatchEventRing sizes the coordinator's shard-lifecycle event
// ring behind GET /events (default 1024; oldest events are overwritten).
func WithDispatchEventRing(n int) DispatchOption { return dispatch.WithEventRing(n) }

// WithDispatchResultStore installs a result store on the dispatcher. On a
// coordinator it is consulted once at plan-carve time — fully-cached
// shards are journalled done and never leased, partially-cached shards
// ship their hit indexes in each grant so workers skip them — and newly
// delivered cells are inserted for the next sweep; its cache counters
// join the coordinator's /metrics. On a worker it is the local Runner's
// read-through cache.
func WithDispatchResultStore(s *ResultStore) DispatchOption { return dispatch.WithResultStore(s) }

// WithAdaptiveLeases sizes coordinator leases from each worker's measured
// throughput instead of granting whole static shards: slices subdivide by
// stride (cell indexes and seeds never move) until they fit the lease
// target at the puller's pace, and strike-prone shards subdivide further
// so a repeat failure forfeits less work. The merged output is
// byte-identical either way.
func WithAdaptiveLeases(on bool) DispatchOption { return dispatch.WithAdaptiveLeases(on) }

// WithLeaseTarget sets the wall-clock an adaptively sized lease should
// take at the pulling worker's measured throughput (default LeaseTTL/4).
func WithLeaseTarget(d time.Duration) DispatchOption { return dispatch.WithLeaseTarget(d) }

// Library returns the paper's Table 1 clip library (6 sets, 26 clips).
func Library() []ClipSet { return media.Library() }

// AllClips flattens the library.
func AllClips() []Clip { return media.AllClips() }

// FindClip locates a clip by set number, format and class.
func FindClip(set int, f Format, class Class) (Clip, bool) {
	return media.FindClip(set, f, class)
}

// ParseClass resolves a class from its name ("low", "high", "very-high")
// or Table 1 suffix ("l", "h", "v").
func ParseClass(s string) (Class, bool) { return media.ParseClass(s) }

// NewSimTransport wraps a simulated host in the Transport interface.
func NewSimTransport(h *Host) *SimTransport { return transport.NewSim(h) }

// NewLiveTransport opens a live (real-socket) transport and starts its
// run loop. Close it when done.
func NewLiveTransport(cfg LiveTransportConfig) (*LiveTransport, error) {
	return transport.NewLive(cfg)
}

// ServeLive attaches WMS and RDT servers (full clip library registered)
// to a live transport — the -listen mode of cmd/turbulence.
func ServeLive(lt *LiveTransport, logf func(format string, args ...any)) (*LiveServers, error) {
	return core.ServeLive(lt, logf)
}

// PlayLive streams clip from a live WMS server and blocks until the
// session completes, returning the payload digest and flow profile — the
// -play mode of cmd/turbulence.
func PlayLive(lt *LiveTransport, server Addr, clip Clip, timeout time.Duration, logf func(format string, args ...any)) (*LiveReport, error) {
	return core.PlayLive(lt, server, clip, timeout, logf)
}

// WMSPayloadDigest streams clip over a clean simulated path and returns
// the order-independent digest of the delivered data units — the parity
// reference a lossless live session must reproduce.
func WMSPayloadDigest(clip Clip) (digest string, units int, err error) {
	return core.WMSPayloadDigest(clip)
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) { return inet.ParseAddr(s) }

// Sites returns the six simulated server sites.
func Sites() []SiteProfile { return core.Sites() }

// NewTestbed builds the full apparatus (client, six sites, all clips
// registered) for callers that script their own sessions.
func NewTestbed(seed int64) *Testbed { return core.NewTestbed(seed) }

// RunPair executes the paper's unit experiment: the given set's clip pair
// of the given class streamed simultaneously in both formats, fully
// instrumented. Deterministic in seed.
func RunPair(seed int64, set int, class Class) (*PairRun, error) {
	return core.RunPair(seed, set, class)
}

// RunPairWith is RunPair with ablation options.
func RunPairWith(seed int64, set int, class Class, opts Options) (*PairRun, error) {
	return core.RunPairWith(seed, set, class, opts)
}

// RunAll executes all 13 Table 1 pair experiments sequentially.
//
// Deprecated: RunAll remains supported as a thin wrapper over the Plan
// engine (output pinned byte-identical by test); new sweep code should use
// NewRunner().Run(NewPlan(seed)), which adds cancellation, progress,
// streaming and sharding.
func RunAll(seed int64) ([]*PairRun, error) { return core.RunAll(seed) }

// RunAllParallel executes all 13 Table 1 pair experiments on a worker pool
// (workers == 0 uses every core). Each run owns a private single-threaded
// scheduler seeded exactly as in RunAll, so the results — traces included —
// are byte-identical to the sequential path; only wall-clock time differs.
//
// Deprecated: thin wrapper over the Plan engine; new code should use
// NewRunner(WithWorkers(workers)).Run(NewPlan(seed)).
func RunAllParallel(seed int64, workers int) ([]*PairRun, error) {
	return core.RunAllParallel(seed, workers)
}

// AllPairs lists the 13 Table 1 pair experiments in order.
func AllPairs() []PairKey { return core.AllPairs() }

// Scenarios lists the registered netem scenarios ordered by name.
func Scenarios() []*Scenario { return netem.All() }

// ScenarioNames lists the registered scenario names in sorted order.
func ScenarioNames() []string { return netem.Names() }

// FindScenario resolves a named scenario from the library
// ("paper-baseline", "dsl", "cable", "lossy-wifi", "congested-peering",
// "transatlantic", "brownout", "flash-crowd", "trace-wireless", plus any
// registered by the embedding program).
func FindScenario(name string) (*Scenario, error) { return netem.Find(name) }

// RegisterScenario adds a custom scenario to the library; duplicate names
// panic.
func RegisterScenario(s *Scenario) { netem.Register(s) }

// Hop role constants for scenario recipes.
const (
	RoleAccess     = netem.RoleAccess
	RoleBackbone   = netem.RoleBackbone
	RoleBottleneck = netem.RoleBottleneck
)

// ForRole builds a Scenario.Hop function applying one impairment to every
// hop of the given role.
func ForRole(r HopRole, im Impairment) func(HopRole, int, int) Impairment {
	return netem.ForRole(r, im)
}

// GEFromBurst builds a bursty Gilbert–Elliott loss model from its average
// loss rate, mean burst length (packets) and in-burst loss probability.
func GEFromBurst(avgLoss, burstLen, lossBad float64) LossModel {
	return netem.GEFromBurst(avgLoss, burstLen, lossBad)
}

// RunScenarioMatrix streams every listed clip pair under every listed
// scenario on a worker pool (workers == 0 uses every core), with common
// random numbers across scenarios. Deterministic for any workers value.
//
// Deprecated: thin wrapper over the Plan engine (output pinned
// byte-identical by test); new code should use
// NewPlan(seed).ForPairs(keys...).UnderScenarios(scenarios...) with a
// Runner, which additionally shards, streams, cancels and reports
// progress.
func RunScenarioMatrix(seed int64, keys []PairKey, scenarios []*Scenario, workers int) ([]ScenarioRuns, error) {
	return core.RunScenarioMatrix(seed, keys, scenarios, workers)
}

// ProfileFlow computes the turbulence profile of a captured flow (by
// replaying it through the online analyzer — one code path for both
// worlds).
func ProfileFlow(ft *FlowTrace) FlowProfile { return core.ProfileFlow(ft) }

// ProfileFromMetrics renders an online analyzer's state as a FlowProfile,
// for custom Tap pipelines.
func ProfileFromMetrics(m *FlowMetrics) FlowProfile { return core.ProfileFromMetrics(m) }

// NewFlowDemux returns an online flow demultiplexer to attach to a
// Sniffer via AddTap.
func NewFlowDemux() *FlowDemux { return capture.NewFlowDemux() }

// Compare profiles both flows of a pair run.
func Compare(run *PairRun) Comparison { return core.Compare(run) }

// FitModel extracts a Section IV flow model from a captured flow.
func FitModel(ft *FlowTrace) FlowModel { return core.FitModel(ft) }

// NewRNG returns a deterministic random stream.
func NewRNG(seed int64) *RNG { return eventsim.NewRNG(seed) }

// CompileFilter compiles an Ethereal-style display filter, e.g.
// "udp.port == 1755 && ip.contfrag".
func CompileFilter(expr string) (*Filter, error) { return capture.Compile(expr) }

// NewExperimentContext creates a cached run context for regenerating
// paper artifacts.
func NewExperimentContext(seed int64) *ExperimentContext {
	return experiments.NewContext(seed)
}

// ExperimentIDs lists every regenerable table/figure id.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTraceFree reports whether an experiment regenerates without
// retained packet captures — the set that works under the drop/stream
// trace retentions.
func ExperimentTraceFree(id string) bool { return experiments.TraceFree(id) }

// RunExperiment regenerates one paper table/figure by id ("table1",
// "fig01".."fig15", "sec4", "ablation-*").
func RunExperiment(ctx *ExperimentContext, id string) (*Result, error) {
	return experiments.Run(ctx, id)
}

// GenerateFlow synthesises a flow trace from a fitted model — the paper's
// Section IV simulation recipe.
func GenerateFlow(m FlowModel, rng *RNG, duration time.Duration, flow Flow) *Trace {
	return m.Generate(rng, duration, flow)
}
