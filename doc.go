// Package turbulence reproduces "MediaPlayer versus RealPlayer — A
// Comparison of Network Turbulence" (Li, Claypool, Kinicki; WPI 2002) as a
// runnable system: a deterministic discrete-event network testbed,
// behavioural models of the two 2002 commercial streaming stacks, the
// paper's measurement tools (MediaTracker, RealTracker, a packet sniffer,
// ping and tracert), the turbulence analysis that produces every table and
// figure of the evaluation, and the Section IV synthetic flow generator.
//
// # Quick start
//
//	run, err := turbulence.RunPair(2002, 1, turbulence.High)
//	if err != nil { ... }
//	cmp := turbulence.Compare(run)
//	fmt.Println("WMP:", cmp.WMP)   // CBR, fragmented at high rates
//	fmt.Println("Real:", cmp.Real) // VBR, buffering burst, never fragments
//
// Every run is seeded: identical (seed, set, class) triples produce
// byte-identical traces.
//
// # Concurrency model
//
// Each simulation run is strictly single-threaded: one Scheduler owns one
// testbed, and all model code executes inside event callbacks on that
// scheduler's goroutine, which is what makes runs deterministic.
// Parallelism lives one level up — independent pair runs (different seeds,
// private testbeds, no shared mutable state) fan out across a worker pool
// via RunAllParallel, core.RunPairs, or an experiment context's
// SetParallel. Because every pair is seeded by core.SeedFor regardless of
// which worker executes it, parallel output is byte-identical to
// sequential output; only wall-clock time changes.
//
// # Layout
//
// The facade re-exports the pieces most programs need. The full substrate
// lives under internal/: eventsim (discrete-event engine), stats, inet
// (IPv4/UDP codecs + fragmentation), netsim (links, hops, hosts), capture
// (sniffer, trace files, display filters), media (Table 1 clip library),
// wms and rdt (the two player stacks), tracker (instrumented players),
// probe (ping/tracert), core (testbed + analysis + generator), and
// experiments (one generator per paper table/figure).
package turbulence
