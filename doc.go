// Package turbulence reproduces "MediaPlayer versus RealPlayer — A
// Comparison of Network Turbulence" (Li, Claypool, Kinicki; WPI 2002) as a
// runnable system: a deterministic discrete-event network testbed,
// behavioural models of the two 2002 commercial streaming stacks, the
// paper's measurement tools (MediaTracker, RealTracker, a packet sniffer,
// ping and tracert), the turbulence analysis that produces every table and
// figure of the evaluation, and the Section IV synthetic flow generator.
//
// # Quick start
//
// A single experiment is RunPair; everything larger is a Plan executed by
// a Runner. A Plan declares a run space — clip pairs × netem scenarios ×
// ablation variants, plus a seed policy — without executing anything;
// NewPlan(seed) alone declares the paper's full 13-pair sweep:
//
//	results, err := turbulence.NewRunner(turbulence.WithWorkers(0)).
//		Run(turbulence.NewPlan(2002))
//	if err != nil { ... }
//	for _, res := range results {
//		cmp := turbulence.Compare(res.Run)
//		fmt.Println(res.Key, cmp.WMP, cmp.Real)
//	}
//
// The Runner's functional options compose: WithWorkers(n) fans cells out
// across a pool (0 = all cores), WithContext(ctx) makes the sweep
// cancellable (checked between simulation events, so ctrl-C lands
// mid-run), WithProgress(fn) observes each completion, and
// WithTraceRetention selects what each completed run keeps. Results come
// back collected in canonical order (Run) or streamed in completion order
// (Stream, or Seq to range over):
//
//	plan := turbulence.NewPlan(2002).UnderScenarios(turbulence.Scenarios()...)
//	r := turbulence.NewRunner(turbulence.WithWorkers(0),
//		turbulence.WithTraceRetention(turbulence.StreamProfiles))
//	for res := range r.Seq(plan) {
//		fmt.Println(res.Key, res.Comparison.WMP.AvgRateBps)
//	}
//
// # Trace retention
//
// Three retentions cover the memory/fidelity spectrum. RetainTraces (the
// default) keeps every run's full packet capture — what the figure
// generators need. DropTracesAfterProfile profiles both flows, then
// releases the raw capture, bounding a sweep to O(workers × trace).
// StreamProfiles never stores records at all: each captured packet
// streams through online per-flow analyzers (capture.FlowDemux routing to
// capture.FlowMetrics) and is gone, so a run's capture state is a few KB
// of accumulators and RunResult.Comparison carries the profiles. The
// online profiles are exactly equal to trace-derived ones — ProfileFlow
// replays stored traces through the same accumulator — pinned across all
// pairs, scenarios and worker counts by test. cmd/turbulence exposes the
// choice as -retention {retain,drop,stream} (reduced retentions
// regenerate the trace-free experiments: reports, probes, profiles).
//
// Every run is seeded: identical plans produce byte-identical traces, for
// any worker count. The pre-Plan entry points (RunAll, RunAllParallel,
// RunScenarioMatrix, core's RunPairs...) remain as thin wrappers over the
// same engine, pinned byte-identical by test, but new sweep code should
// build Plans.
//
// # Sharding
//
// Plan.Shard(i, n) carves the i-th of n deterministic slices of the cell
// space, so a huge matrix fans out across processes or machines with no
// coordination beyond the (plan, i, n) triple; MergeRuns recombines the
// shard outputs into exactly the unsharded result:
//
//	merged := turbulence.MergeRuns(shard0, shard1, shard2)
//
// cmd/turbulence exposes the same idea as -shard i/n. For shards in
// separate processes, WireRuns flattens results to identity + seed +
// profiles, EncodeRunsGob/EncodeRunsJSON put them on a wire, and
// MergeWireRuns reassembles shipped batches into canonical plan order —
// with StreamProfiles retention that loop never materialises a trace
// anywhere. PERFORMANCE.md documents the recipe end to end.
//
// # Shard dispatcher
//
// Static sharding tells every worker its slice up front; the dispatcher
// (internal/dispatch; facade Serve, Work, NewCoordinator) inverts that
// into a pull model for fleets of unequal, unreliable machines. Serve
// runs a coordinator holding the one unsharded Plan as a lease-based
// shard queue over HTTP: workers pull a lease (shard coordinates plus
// the PlanSpec, scenarios by name), run the slice under StreamProfiles
// retention, and ship the gob-encoded results home with retry/backoff. A
// dead worker's lease expires and its shard is re-issued; duplicate and
// late completions are absorbed idempotently; envelopes carry a wire
// version so mixed clusters fail loudly. The collector merges arriving
// batches into canonical order, byte-identical to a single-process
// Runner.Run — pinned by TestDispatchedSweepMatchesUnsharded (workers
// die mid-lease and the output does not change) and re-proven over real
// sockets by the CI dispatch-smoke job against a committed golden
// digest. cmd/turbulence exposes both halves as -serve and -work, with
// graceful ctrl-C drain on each; DispatchLoopback runs the identical
// wire path in-process for tests and demos (examples/dispatch).
//
// The dispatcher is fault-hardened end to end. Workers heartbeat their
// lease (POST /renew) while a shard simulates, so LeaseTTL can sit far
// below a slow shard's runtime without double-running it; a rejected
// renewal means the lease is gone and the worker aborts the orphaned
// shard mid-event instead of shipping a late duplicate. With
// WithDispatchCheckpoint the coordinator journals every completed shard
// (gob frames, fsync'd per append) and a crashed coordinator is rebuilt
// with ResumeCoordinator — or by re-running -serve -checkpoint on the
// same path — replaying the journal and re-leasing only the unfinished
// shards; a journal for a different sweep is refused by plan digest.
// Clients retry transient failures with jittered exponential backoff
// under a MaxAttempts and WithDispatchRetryBudget budget, workers drain
// rather than crash when the coordinator is unreachable, and a shard
// that keeps striking out (lease expiries, undecodable or rejected
// batches) is quarantined after WithMaxShardFailures strikes — parked
// and reported in /status and the sweep error — instead of wedging the
// queue. The crash-recovery recipe:
//
//	$ turbulence -serve :8080 -seed 2002 -checkpoint sweep.ckpt
//	...coordinator dies mid-sweep (SIGKILL, OOM, power)...
//	$ turbulence -serve :8080 -seed 2002 -checkpoint sweep.ckpt
//	# resumes: replays the journal, re-leases only unfinished shards;
//	# output identical to an uninterrupted run
//
// All of it is proven by a chaos harness (internal/dispatch/chaos): a
// seeded fault-injecting transport — dropped and truncated requests,
// duplicated deliveries, lost acks, truncated and reset response bodies,
// latency — through which the end-to-end tests run entire sweeps,
// killing the coordinator mid-sweep and resuming from its checkpoint,
// and still pin the merged output byte-identical to the unsharded run.
//
// # Incremental sweeps
//
// Sweeps overlap: a new scenario axis, one more pair, a rerun after an
// analysis-only change. The result store (internal/resultstore; facade
// OpenResultStore, WithResultStore, WithDispatchResultStore) makes the
// overlap free by content-addressing every completed cell: the key is
// the sha256 of what determines its output — pair, scenario, effective
// options, seed, engine generation — never the plan's labels or cell
// index, so any plan that contains an equivalent cell hits, whatever
// shape the sweep around it takes. Entries are appended to a single
// file as length-prefixed, checksummed gob frames behind a version
// header; a torn or corrupt tail is counted, logged, truncated and
// re-simulated — corruption is always a miss, never data — and a store
// written by a different wire or engine generation is refused at open.
//
// A Runner with WithResultStore serves cached cells without building a
// testbed and inserts fresh ones on the way out; merged output stays
// byte-identical to a storeless run (TestCachedSweepMatchesFresh pins a
// warm rerun at zero simulations, every pool shape). The dispatcher
// consults its store once, at plan-carve time: fully-cached shards
// complete without ever being leased, partially-cached shards ship the
// cached cell indexes in the lease grant (LeaseGrant.CachedCells) so
// workers simulate only the rest, and fresh results are inserted as
// shards commit. With WithAdaptiveLeases the coordinator also sizes
// leases from each worker's observed throughput — stride-subdividing a
// shard so a slow or strike-prone worker pulls a slice it can finish
// inside WithLeaseTarget, while per-shard journalling, quarantine and
// merge order stay at the base carve. The warm-rerun recipe:
//
//	$ turbulence -serve :8080 -seed 2002 -result-store sweep.cache
//	...add pairs or scenarios, rerun...
//	$ turbulence -serve :8080 -seed 2002 -pairs ... -result-store sweep.cache
//	# overlapping cells served from the store (cache_hits on /metrics),
//	# only the new cells simulate; output identical to a cold sweep
//
// Local experiment sweeps take -result-store too (with -retention drop
// or stream), write-through only: experiments reduce the full player
// reports a Comparison does not hold, so the context's own sweeps
// populate the store for later Comparison-space consumers rather than
// serve from it. Cache traffic is metered as
// turbulence_cache_{hits,misses,bytes,corrupt_frames}_total wherever a
// registry is attached. The CI
// cache-smoke job pins the whole story over real sockets: a warm
// superset rerun must report every previously-computed cell as a hit,
// simulate only the new ones, merge to the committed golden digest, and
// recompute — not serve — a deliberately torn store frame.
//
// # Observability
//
// internal/obs is a dependency-free metrics layer rendered in Prometheus
// text exposition format: atomic counters and gauges, fixed-bucket
// histograms, and a Registry whose Handler serves them as /metrics. The
// hot-path operations (Counter.Inc, Gauge.SetMax, Histogram.Observe, a
// cached vector child) allocate nothing — pinned by TestHotPathAllocFree
// and by the capture tap's steady-state alloc test running with a live
// meter attached — so instrumentation never perturbs the simulation it
// measures. Rendering uses strconv, never fmt (make check enforces it).
//
// The coordinator instruments its whole lease lifecycle: counters for
// every transition (granted, renewed, completed, expired, rejected,
// lost, strikes, quarantines), scrape-time gauges over the queue, fsync
// latency histograms from the checkpoint journal, and per-worker
// throughput series fed by WorkerStats snapshots that workers
// self-measure and ship with each completion (an optional, versioned
// JSON header — old coordinators ignore it, old workers simply send
// none). Because the registry's scrape lock is the coordinator's own
// mutex, every scrape is one consistent snapshot in which the ledger
//
//	granted == active + delivering + completed + expired + rejected + lost
//
// balances exactly (TestMetricsEndToEnd scrapes a live sweep to prove
// it). GET /events serves the shard-lifecycle trace — a fixed ring of
// timestamped lease/renew/complete/expire/reject/quarantine events with
// lease IDs and worker names — and WithDispatchPprof mounts
// net/http/pprof on the same mux. GET /status reports per-shard strike
// counts and quarantine reasons alongside the queue counts.
//
// Local sweeps meter the same way: NewMetricsSink registers the sweep
// instruments (cell wall-time histogram, simulator event/timer counters,
// heap high-water, captured packet volume, netem drops by cause) on a
// registry, WithMetrics or ExperimentContext.SetMetrics installs it on
// the Runner, and cmd/turbulence -metrics addr serves the live meter
// while experiments regenerate. Progress callbacks carry each cell's
// start time and elapsed wall-clock for the same purpose. See
// PERFORMANCE.md for the scrape-and-read recipe.
//
// # Network scenarios
//
// The paper measured one testbed path under typical conditions; the netem
// layer generalises that into a streaming-under-impairment laboratory.
// Every hop of every site path accepts pluggable models — loss processes
// (Bernoulli, bursty Gilbert–Elliott), bandwidth profiles (constant, step
// schedules, sinusoids, replayed traces), delay jitter (uniform+spike,
// truncated normal), queue disciplines (DropTail, RED) and cross-traffic
// injectors (exponential and Pareto on/off, Poisson) that consume link
// capacity without materialising packets. A Scenario names a recipe of
// per-hop impairments ("lossy-wifi", "dsl", "cable", "congested-peering",
// "transatlantic", "brownout", "flash-crowd", "trace-wireless"; see
// ScenarioNames), and "paper-baseline" reproduces the faithful testbed
// byte for byte:
//
//	sc, _ := turbulence.FindScenario("lossy-wifi")
//	run, _ := turbulence.RunPairWith(2002, 1, turbulence.High,
//		turbulence.Options{Scenario: sc})
//	fmt.Println(run.Downlink) // model loss vs queue overflow vs AQM drops
//
// A Plan's UnderScenarios axis streams every clip pair under every
// scenario with common random numbers (the SeedCommon policy), so
// differences between scenario rows reflect the impairments, not sampling
// noise; cmd/turbulence regenerates the whole evaluation under a scenario
// via -scenario.
//
// # Live transport
//
// The protocol stacks (wms, rdt, tcplite) are written against the
// Transport seam rather than the simulated host directly, and the seam
// has two implementations. SimTransport adapts a simulated host — every
// method is a one-line delegation, so a stack running over it is
// byte-identical to the pre-seam code, pinned by the golden-digest tests.
// LiveTransport carries the same stacks over real net.UDPConn sockets: a
// single run-loop goroutine owns a private event scheduler and all
// protocol state (the simulator's single-threaded discipline transplanted
// onto wall time), per-socket reader goroutines hand received datagrams
// to the loop in pooled frames, and the per-packet receive path allocates
// nothing (pinned by TestLiveDeliverAllocs). Per-socket counters
// (turbulence_transport_* series, labelled by port) expose sends,
// receives, drops, send errors, unbound arrivals and duplicate sequence
// numbers.
//
//	ip, _ := turbulence.ParseAddr("127.0.0.1")
//	lt, _ := turbulence.NewLiveTransport(turbulence.LiveTransportConfig{BindIP: ip})
//	defer lt.Close()
//	turbulence.ServeLive(lt, log.Printf) // WMS + RDT servers, full library
//
// A second process (or a second transport in the same one) plays a clip
// and gets the same report a simulated session produces — an online flow
// profile plus an order-independent payload digest that must equal the
// simulator's digest of the same clip on a lossless path:
//
//	rep, _ := turbulence.PlayLive(lt, serverAddr, clip, 2*time.Minute, nil)
//	fmt.Println(rep.Profile, rep.Digest)
//
// cmd/turbulence wires both ends: -listen starts the live server, -play
// streams one clip and prints the report, and scripts/live_smoke.sh
// gates in CI that a real localhost session's digest equals the committed
// simulator golden. See PERFORMANCE.md ("Serving real traffic") for the
// recipe and caveats.
//
// # Testbed reuse and the timing wheel
//
// A Runner does not rebuild the apparatus per cell: each worker owns a
// testbed cache, and every layer a cell touches — the event scheduler,
// netsim's hosts and hops, netem model state, the protocol stacks,
// capture — has a Reset(seed) path that restores post-construction state
// without reallocating, so cells after the first replay into a recycled
// testbed. The caches are retained on the Runner across Run/Stream/Seq
// calls, so repeated sweeps start warm. Output is byte-identical to
// building fresh (pinned by test, along with the golden digests);
// WithFreshTestbeds() switches back to build-per-cell. WithTimingWheel()
// swaps the scheduler's 4-ary heap for a hierarchical timing wheel that
// buckets the dense pacing-timer workload in O(1) and fires
// same-timestamp batches in one queue operation — again byte-identical,
// only faster. Together they run the paper's full 13-pair online sweep
// in under 400 ms and under 10 MB per sweep on one core; PERFORMANCE.md
// ("Testbed reuse & the timing wheel") has the numbers and the recipe,
// and WithSweepStats or a metrics sink exposes the economy
// (testbeds built vs reused, wheel occupancy high-water) per sweep.
//
// # Concurrency model
//
// Each simulation run is strictly single-threaded: one Scheduler owns one
// testbed, and all model code executes inside event callbacks on that
// scheduler's goroutine, which is what makes runs deterministic.
// Parallelism lives one level up — the cells of a Plan are independent
// (different seeds, private testbeds, no shared mutable state) and fan out
// across the Runner's worker pool. Because every cell is seeded by
// Plan.Seed (SeedFor under the default policy) regardless of which worker
// executes it, parallel output is byte-identical to sequential output;
// only wall-clock time changes. Cancellation is cooperative: the Runner's
// context is polled between runs and, via the scheduler's interrupt seam,
// between events inside a run, so a cancelled sweep stops promptly and
// delivers only completed runs. An experiment Context is a thin cache over
// the same Runner (SetParallel, SetCancel, SetProgress).
//
// # Layout
//
// The facade re-exports the pieces most programs need. The full substrate
// lives under internal/: eventsim (discrete-event engine), stats, inet
// (IPv4/UDP codecs + fragmentation), netem (impairment models + scenario
// library), netsim (links, hops, hosts), capture (sniffer, trace files,
// display filters), media (Table 1 clip library), wms and rdt (the two
// player stacks), tracker (instrumented players), probe (ping/tracert),
// core (testbed + analysis + generator + the Plan/Runner engine), and
// experiments (one generator per paper table/figure).
package turbulence
