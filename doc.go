// Package turbulence reproduces "MediaPlayer versus RealPlayer — A
// Comparison of Network Turbulence" (Li, Claypool, Kinicki; WPI 2002) as a
// runnable system: a deterministic discrete-event network testbed,
// behavioural models of the two 2002 commercial streaming stacks, the
// paper's measurement tools (MediaTracker, RealTracker, a packet sniffer,
// ping and tracert), the turbulence analysis that produces every table and
// figure of the evaluation, and the Section IV synthetic flow generator.
//
// # Quick start
//
//	run, err := turbulence.RunPair(2002, 1, turbulence.High)
//	if err != nil { ... }
//	cmp := turbulence.Compare(run)
//	fmt.Println("WMP:", cmp.WMP)   // CBR, fragmented at high rates
//	fmt.Println("Real:", cmp.Real) // VBR, buffering burst, never fragments
//
// Every run is seeded: identical (seed, set, class) triples produce
// byte-identical traces.
//
// # Network scenarios
//
// The paper measured one testbed path under typical conditions; the netem
// layer generalises that into a streaming-under-impairment laboratory.
// Every hop of every site path accepts pluggable models — loss processes
// (Bernoulli, bursty Gilbert–Elliott), bandwidth profiles (constant, step
// schedules, sinusoids, replayed traces), delay jitter (uniform+spike,
// truncated normal), queue disciplines (DropTail, RED) and cross-traffic
// injectors (exponential and Pareto on/off, Poisson) that consume link
// capacity without materialising packets. A Scenario names a recipe of
// per-hop impairments ("lossy-wifi", "dsl", "cable", "congested-peering",
// "transatlantic", "brownout", "flash-crowd", "trace-wireless"; see
// ScenarioNames), and "paper-baseline" reproduces the faithful testbed
// byte for byte:
//
//	sc, _ := turbulence.FindScenario("lossy-wifi")
//	run, _ := turbulence.RunPairWith(2002, 1, turbulence.High,
//		turbulence.Options{Scenario: sc})
//	fmt.Println(run.Downlink) // model loss vs queue overflow vs AQM drops
//
// RunScenarioMatrix streams every clip pair under every scenario with
// common random numbers, and cmd/turbulence regenerates the whole
// evaluation under a scenario via -scenario. Scenario runs are exactly as
// deterministic as faithful ones: identical seed and scenario produce
// byte-identical output, sequentially or on a worker pool.
//
// # Concurrency model
//
// Each simulation run is strictly single-threaded: one Scheduler owns one
// testbed, and all model code executes inside event callbacks on that
// scheduler's goroutine, which is what makes runs deterministic.
// Parallelism lives one level up — independent pair runs (different seeds,
// private testbeds, no shared mutable state) fan out across a worker pool
// via RunAllParallel, core.RunPairs, or an experiment context's
// SetParallel. Because every pair is seeded by core.SeedFor regardless of
// which worker executes it, parallel output is byte-identical to
// sequential output; only wall-clock time changes.
//
// # Layout
//
// The facade re-exports the pieces most programs need. The full substrate
// lives under internal/: eventsim (discrete-event engine), stats, inet
// (IPv4/UDP codecs + fragmentation), netem (impairment models + scenario
// library), netsim (links, hops, hosts), capture (sniffer, trace files,
// display filters), media (Table 1 clip library), wms and rdt (the two
// player stacks), tracker (instrumented players), probe (ping/tracert),
// core (testbed + analysis + generator), and experiments (one generator
// per paper table/figure).
package turbulence
