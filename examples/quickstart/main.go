// Quickstart: run the paper's unit experiment once — data set 1's high-rate
// pair streamed simultaneously in both formats — and print the headline
// comparison the paper's abstract summarises.
package main

import (
	"fmt"
	"log"

	"turbulence"
)

func main() {
	run, err := turbulence.RunPair(2002, 1, turbulence.High)
	if err != nil {
		log.Fatal(err)
	}

	realClip, wmpClip := run.Clips()
	fmt.Printf("Data set %d (%s), high-rate pair:\n", run.Set, run.Site.Addr)
	fmt.Printf("  Real clip: %s\n", realClip)
	fmt.Printf("  WMP clip:  %s\n\n", wmpClip)

	cmp := turbulence.Compare(run)
	fmt.Println("Network-layer turbulence profiles:")
	fmt.Printf("  RealPlayer:  %s\n", cmp.Real)
	fmt.Printf("  MediaPlayer: %s\n\n", cmp.WMP)

	fmt.Println("The paper's headline findings, reproduced:")
	fmt.Printf("  MediaPlayer is CBR: %t (uniform sizes & interarrivals)\n", cmp.WMP.CBR)
	fmt.Printf("  RealPlayer is varied: %t\n", !cmp.Real.CBR)
	fmt.Printf("  MediaPlayer IP fragmentation: %.0f%% of wire packets (paper: ~66%% at 300 Kbps)\n",
		cmp.WMP.FragShare*100)
	fmt.Printf("  RealPlayer IP fragmentation: %.0f%% (paper: none)\n", cmp.Real.FragShare*100)
	fmt.Printf("  Real startup delay %v vs WMP %v (Real buffers at up to 3x playout)\n",
		run.Real.StartupDelay().Round(1e7), run.WMP.StartupDelay().Round(1e7))
	fmt.Printf("  Frame rates: Real %.1f fps, WMP %.1f fps\n", run.Real.AvgFPS, run.WMP.AvgFPS)

	fmt.Println("\nNetwork conditions during the run (methodology checks):")
	fmt.Printf("  %s\n", run.PingBefore)
	fmt.Printf("  route: %d hops, reached=%t\n", run.Route.HopCount(), run.Route.Reached)
}
