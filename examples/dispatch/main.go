// Dispatch demonstrates the shard dispatcher: a coordinator serves a Plan
// as a lease-based work queue, workers pull shards and ship wire-encoded
// results home, and the collector merges them back into canonical order —
// byte-identical to a single-process run, which the demo verifies.
//
// Everything here runs in one process over the loopback transport (the
// full HTTP wire, no sockets). Across real machines the shape is the
// same, via cmd/turbulence:
//
//	machine A$ turbulence -serve :8080 -pairs 1/low,3/low -scenario dsl
//	machine B$ turbulence -work A:8080
//	machine C$ turbulence -work A:8080
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"log"
	"os"
	"sync"
	"text/tabwriter"

	"turbulence"
)

func main() {
	dsl, err := turbulence.FindScenario("dsl")
	if err != nil {
		log.Fatal(err)
	}
	plan := turbulence.NewPlan(2002).
		ForPairs(
			turbulence.PairKey{Set: 1, Class: turbulence.Low},
			turbulence.PairKey{Set: 3, Class: turbulence.Low},
			turbulence.PairKey{Set: 2, Class: turbulence.High},
		).
		UnderScenarios(nil, dsl)
	fmt.Printf("plan: %d cells\n", plan.Size())

	// Ground truth: the same plan in one process, streaming retention.
	results, err := turbulence.NewRunner(
		turbulence.WithWorkers(0),
		turbulence.WithTraceRetention(turbulence.StreamProfiles),
	).Run(plan)
	if err != nil {
		log.Fatal(err)
	}
	var unsharded bytes.Buffer
	if err := turbulence.EncodeRunsGob(&unsharded, turbulence.WireRuns(results)); err != nil {
		log.Fatal(err)
	}

	// The dispatcher: one coordinator, three pulling workers. More shards
	// than workers is the point — a fast worker pulls more than its
	// share, and a dead worker's lease expires back into the queue.
	coord, err := turbulence.NewCoordinator(plan, turbulence.WithDispatchShards(4))
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := turbulence.NewDispatchWorker(
				turbulence.DispatchLoopback(coord),
				turbulence.WithWorkerName(fmt.Sprintf("worker-%d", i)),
				turbulence.WithRunWorkers(1),
			)
			n, err := w.Run(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("worker-%d completed %d shards\n", i, n)
		}()
	}
	merged, err := coord.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cell\tscenario\tpair\tWMP rate\tReal rate")
	for _, r := range merged {
		sc := r.Scenario
		if sc == "" {
			sc = "faithful"
		}
		fmt.Fprintf(tw, "%d\t%s\tset%d/%s\t%.0f Kbps\t%.0f Kbps\n",
			r.Index, sc, r.Set, r.Class,
			r.Comparison.WMP.AvgRateBps/1000, r.Comparison.Real.AvgRateBps/1000)
	}
	tw.Flush()

	// The pin: the dispatched sweep is byte-identical to the unsharded
	// one.
	var dispatched bytes.Buffer
	if err := turbulence.EncodeRunsGob(&dispatched, merged); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unsharded  sha256 %x\n", sha256.Sum256(unsharded.Bytes()))
	fmt.Printf("dispatched sha256 %x\n", sha256.Sum256(dispatched.Bytes()))
	if !bytes.Equal(unsharded.Bytes(), dispatched.Bytes()) {
		log.Fatal("dispatched sweep differs from unsharded run")
	}
	fmt.Println("byte-identical: determinism survives distribution")
}
