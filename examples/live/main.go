// Live demonstrates the live transport: the same WMS protocol stack that
// runs inside the simulator streams a clip over real UDP sockets on
// loopback, in real time, and the delivered payload digest is checked
// against the simulator's digest of the same clip — the parity claim the
// live-smoke CI job enforces with separate processes.
//
// Everything here runs in one process with two live transports sharing
// 127.0.0.1 (their port sets are disjoint). Across real machines the
// shape is the same: run `turbulence -listen` on the server and
// `turbulence -play <server-ip>` on the client.
package main

import (
	"fmt"
	"log"
	"time"

	"turbulence"
)

func main() {
	// A short synthetic clip keeps the demo quick: live sessions run in
	// real time, so the full Table 1 clips take tens of seconds. Set 9
	// stays clear of the real library's names.
	clip := turbulence.Clip{
		Set:         9,
		Format:      turbulence.WindowsMedia,
		Class:       turbulence.Low,
		EncodedKbps: 56,
		Duration:    3 * time.Second,
	}

	// The simulator's clean-path digest is the parity reference.
	wantDigest, wantUnits, err := turbulence.WMSPayloadDigest(clip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim reference: units=%d digest=%s\n", wantUnits, wantDigest)

	ip, _ := turbulence.ParseAddr("127.0.0.1")
	server, err := turbulence.NewLiveTransport(turbulence.LiveTransportConfig{BindIP: ip, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	client, err := turbulence.NewLiveTransport(turbulence.LiveTransportConfig{BindIP: ip, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ls, err := turbulence.ServeLive(server, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	server.DoWait(func(turbulence.SimTime) { ls.WMS.Register(clip.Name(), clip) })

	fmt.Printf("streaming %s over loopback UDP (%v of media, real time)...\n",
		clip.Name(), clip.Duration)
	rep, err := turbulence.PlayLive(client, ip, clip, time.Minute, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live session: units=%d lost=%d bytes=%d elapsed=%s\n",
		rep.Units, rep.UnitsLost, rep.Bytes, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("flow profile: %s\n", rep.Profile)
	fmt.Printf("live digest:  %s\n", rep.Digest)
	if rep.Digest == wantDigest {
		fmt.Println("parity: live delivery == simulated delivery")
	} else {
		fmt.Println("parity: DIVERGED (lossy local path?)")
	}
}
