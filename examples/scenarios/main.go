// Scenarios tours the netem impairment laboratory: the set 1 high pair
// streamed under every named network scenario — bursty wifi loss,
// DSL/cable last miles, a congested peering point with RED, mid-session
// brownouts, flash-crowd load, a replayed wireless trace — plus a custom
// scenario built inline from the netem model kit. Each row shows how the
// same two players weather different network weather, with the drop
// breakdown separating link loss from queue overflow and AQM early drops.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"turbulence"
)

func main() {
	// A custom scenario composes directly from the model kit: a bursty
	// microwave interferer on the client access link.
	turbulence.RegisterScenario(&turbulence.Scenario{
		Name:        "microwave-oven",
		Description: "2.4 GHz interference: periodic deep loss bursts on the access link",
		Hop: turbulence.ForRole(turbulence.RoleAccess, turbulence.Impairment{
			Loss: func() turbulence.LossModel { return turbulence.GEFromBurst(0.04, 40, 0.8) },
		}),
		HorizonSlack: time.Minute,
	})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tReal loss%\tReal fps\tWMP loss%\tWMP fps\tlink drops\tqueue drops\taqm drops")
	for _, sc := range turbulence.Scenarios() {
		run, err := turbulence.RunPairWith(4001, 1, turbulence.High, turbulence.Options{Scenario: sc})
		if err != nil {
			log.Fatal(err)
		}
		d := run.Downlink
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%.2f\t%.1f\t%d\t%d\t%d\n",
			sc.Name, run.Real.LossRate()*100, run.Real.AvgFPS,
			run.WMP.LossRate()*100, run.WMP.AvgFPS,
			d.DroppedLoss, d.DroppedFull, d.DroppedAQM)
	}
	w.Flush()

	fmt.Println("\nObservations:")
	fmt.Println("  - paper-baseline reproduces the faithful testbed byte for byte; every")
	fmt.Println("    other row is the same seed re-streamed under different conditions.")
	fmt.Println("  - Link loss splits the players: RealPlayer's NAK recovery repairs even")
	fmt.Println("    the microwave fades, while WMP — no recovery, and whole packets lost")
	fmt.Println("    per dropped fragment — wears every percent of it as frame damage.")
	fmt.Println("  - Bandwidth dips (brownout, flash-crowd) surface as queue-overflow")
	fmt.Println("    drops at the bottleneck FIFO, not link loss: the drop breakdown")
	fmt.Println("    separates the causes that a raw loss rate conflates.")
}
