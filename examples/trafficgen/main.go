// Trafficgen realises the paper's Section IV: fit synthetic flow models
// from measured traces and generate a population of streaming flows for a
// network study — here, twenty mixed Real/WMP flows whose aggregate we
// then characterise, all without running a single player stack.
package main

import (
	"fmt"
	"log"
	"time"

	"turbulence"
)

func main() {
	// Measure once: one high-rate pair gives us both players' models.
	fmt.Println("fitting models from a measured pair run (set 1, high rate)...")
	run, err := turbulence.RunPair(2002, 1, turbulence.High)
	if err != nil {
		log.Fatal(err)
	}
	realModel := turbulence.FitModel(run.RealFlow)
	wmpModel := turbulence.FitModel(run.WMPFlow)
	fmt.Printf("  Real model: burst %.2fx for %v, train %.2f pkts/datagram\n",
		realModel.BurstRatio, realModel.BurstDuration.Round(time.Second), realModel.TrainLen)
	fmt.Printf("  WMP model:  burst %.2fx, train %.2f pkts/datagram\n\n",
		wmpModel.BurstRatio, wmpModel.TrainLen)

	// Generate a flow population, as a simulation study would.
	rng := turbulence.NewRNG(77)
	const flowsPerPlayer = 10
	client := run.RealFlow.Flow.Dst.Addr
	var totalPackets, totalFragments int
	var realRate, wmpRate float64
	for i := 0; i < flowsPerPlayer; i++ {
		rf := turbulence.GenerateFlow(realModel, rng, 60*time.Second, flowOn(client, 20000+i))
		wf := turbulence.GenerateFlow(wmpModel, rng, 60*time.Second, flowOn(client, 30000+i))
		rp := turbulence.ProfileFlow(rf.SplitFlows()[0])
		wp := turbulence.ProfileFlow(wf.SplitFlows()[0])
		totalPackets += rp.Packets + wp.Packets
		for _, ft := range append(rf.SplitFlows(), wf.SplitFlows()...) {
			totalFragments += ft.Fragmentation().Continuations
		}
		realRate += rp.AvgRateBps
		wmpRate += wp.AvgRateBps
	}
	fmt.Printf("generated %d flows, %d wire packets, %d IP fragments\n",
		2*flowsPerPlayer, totalPackets, totalFragments)
	fmt.Printf("aggregate offered load: Real %.0f Kbps + WMP %.0f Kbps\n",
		realRate/1000, wmpRate/1000)

	// Verify the population retains the paper's contrast.
	oneReal := turbulence.GenerateFlow(realModel, rng, 60*time.Second, flowOn(client, 40000))
	oneWMP := turbulence.GenerateFlow(wmpModel, rng, 60*time.Second, flowOn(client, 40001))
	rp := turbulence.ProfileFlow(oneReal.SplitFlows()[0])
	wp := turbulence.ProfileFlow(oneWMP.SplitFlows()[0])
	fmt.Printf("\nspot-check generated flows:\n  Real: %s\n  WMP:  %s\n", rp, wp)
	if wp.CBR && !rp.CBR && wp.FragShare > 0.5 && rp.FragShare == 0 {
		fmt.Println("\ngenerated traffic preserves the measured turbulence contrast ✓")
	} else {
		fmt.Println("\nWARNING: generated traffic lost the measured contrast")
	}
}

func flowOn(client turbulence.Addr, srcPort int) turbulence.Flow {
	return turbulence.Flow{
		Src: turbulence.Endpoint{Addr: turbulence.Addr{192, 0, 2, 1}, Port: turbulence.Port(srcPort)},
		Dst: turbulence.Endpoint{Addr: client, Port: 9999},
	}
}
