// Matrix demonstrates the Plan/Runner API on a (scenario × pair) sweep:
// declare the run space, stream results in completion order with bounded
// memory, cancel cooperatively on ctrl-C, and — the distributed recipe —
// shard the same plan across workers and merge the outputs back into the
// canonical order.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"text/tabwriter"

	"turbulence"
)

func main() {
	// The run space: every Table 1 pair under three network scenarios,
	// with common random numbers across scenarios so differences between
	// rows are the impairments, not sampling noise.
	var scenarios []*turbulence.Scenario
	for _, name := range []string{"paper-baseline", "dsl", "lossy-wifi"} {
		sc, err := turbulence.FindScenario(name)
		if err != nil {
			log.Fatal(err)
		}
		scenarios = append(scenarios, sc)
	}
	plan := turbulence.NewPlan(2002).UnderScenarios(scenarios...)
	fmt.Printf("plan: %d cells\n", plan.Size())

	// Stream the sweep: all cores, ctrl-C cancels mid-run, raw captures
	// are dropped once profiled so memory stays bounded however large the
	// matrix grows.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := turbulence.NewRunner(
		turbulence.WithWorkers(0),
		turbulence.WithContext(ctx),
		turbulence.WithTraceRetention(turbulence.DropTracesAfterProfile),
		turbulence.WithProgress(func(p turbulence.Progress) {
			fmt.Fprintf(os.Stderr, "  [%2d/%2d] %s\n", p.Done, p.Total, p.Key)
		}),
	)

	byIndex := make(map[int]turbulence.RunResult)
	for res := range runner.Seq(plan) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		byIndex[res.Key.Index] = res
	}
	if ctx.Err() != nil {
		log.Fatal("interrupted")
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tpair\tWMP Kbps\tReal Kbps\tWMP frag%\tdownlink drops")
	for _, k := range plan.Keys() {
		res := byIndex[k.Index]
		c := res.Comparison // traces are gone; the profiles survive
		d := res.Run.Downlink
		fmt.Fprintf(w, "%s\t set%d/%v\t%.0f\t%.0f\t%.0f\t%d\n",
			k.Scenario.Name, k.Pair.Set, k.Pair.Class,
			c.WMP.AvgRateBps/1000, c.Real.AvgRateBps/1000, c.WMP.FragShare*100,
			d.DroppedLoss+d.DroppedFull+d.DroppedAQM)
	}
	w.Flush()

	// The distributed recipe, in miniature: each shard of the same plan
	// could run in a separate process or on a separate machine — only the
	// (seed, i, n) triple needs to travel — and MergeRuns reassembles the
	// canonical matrix exactly.
	const shards = 3
	var parts [][]turbulence.RunResult
	for i := 0; i < shards; i++ {
		part, err := turbulence.NewRunner(turbulence.WithWorkers(0)).
			Run(plan.Shard(i, shards))
		if err != nil {
			log.Fatal(err)
		}
		parts = append(parts, part)
	}
	merged := turbulence.MergeRuns(parts...)
	identical := len(merged) == plan.Size()
	for _, res := range merged {
		want := byIndex[res.Key.Index]
		if res.Run.Trace.Len() == 0 || res.Key != want.Key || res.Seed != want.Seed {
			identical = false
		}
	}
	fmt.Printf("sharded %d ways and merged: %d cells, canonical order restored: %t\n",
		shards, len(merged), identical)
}
