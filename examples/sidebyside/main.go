// Sidebyside sweeps every Table 1 clip pair — the paper's full
// methodology — and prints a per-pair comparison table plus the aggregate
// observations each evaluation figure relies on.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"turbulence"
)

func main() {
	// The paper's full sweep is the default Plan; the Runner fans it out
	// across every core with output byte-identical to a sequential run.
	results, err := turbulence.NewRunner(turbulence.WithWorkers(0)).
		Run(turbulence.NewPlan(2002))
	if err != nil {
		log.Fatal(err)
	}
	runs := turbulence.PairRuns(results)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "set/class\tplayer\tenc Kbps\tavg bw Kbps\tfps\tmean pkt B\tfrag%\tstartup\tCBR")
	for _, run := range runs {
		rc, wc := run.Clips()
		rp := turbulence.ProfileFlow(run.RealFlow)
		wp := turbulence.ProfileFlow(run.WMPFlow)
		fmt.Fprintf(w, "%d/%s\tReal\t%.1f\t%.1f\t%.1f\t%.0f\t%.0f\t%v\t%t\n",
			run.Set, run.Class, rc.EncodedKbps, run.Real.AvgPlaybackBps/1000,
			run.Real.AvgFPS, rp.MeanSize, rp.FragShare*100,
			run.Real.StartupDelay().Round(1e8), rp.CBR)
		fmt.Fprintf(w, "%d/%s\tWMP\t%.1f\t%.1f\t%.1f\t%.0f\t%.0f\t%v\t%t\n",
			run.Set, run.Class, wc.EncodedKbps, run.WMP.AvgPlaybackBps/1000,
			run.WMP.AvgFPS, wp.MeanSize, wp.FragShare*100,
			run.WMP.StartupDelay().Round(1e8), wp.CBR)
	}
	w.Flush()

	// Aggregate observations.
	var wmpCBR, realVBR, realNoFrag, realFaster int
	for _, run := range runs {
		if turbulence.ProfileFlow(run.WMPFlow).CBR {
			wmpCBR++
		}
		if !turbulence.ProfileFlow(run.RealFlow).CBR {
			realVBR++
		}
		if turbulence.ProfileFlow(run.RealFlow).FragShare == 0 {
			realNoFrag++
		}
		if run.Real.StartupDelay() < run.WMP.StartupDelay() {
			realFaster++
		}
	}
	n := len(runs)
	fmt.Printf("\nAcross all %d pairs:\n", n)
	fmt.Printf("  WMP flows classified CBR:        %d/%d\n", wmpCBR, n)
	fmt.Printf("  Real flows classified varied:    %d/%d\n", realVBR, n)
	fmt.Printf("  Real flows with zero fragments:  %d/%d (paper: all)\n", realNoFrag, n)
	fmt.Printf("  Real started playback first:     %d/%d (paper: buffering burst)\n", realFaster, n)
}
