// Congested explores the paper's future-work question (§VI): how do the
// two players behave when the path is bandwidth constrained? It re-runs
// the set 1 high pair (demand ~750 Kbps: 323 Kbps WMP CBR plus Real's
// burst) while shrinking the site bottleneck from comfortable to
// starvation, and reports loss, recovery and frame-rate damage — the
// starting point for the TCP-friendliness study the paper proposes.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"turbulence"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "bottleneck\tplayer\tloss%\trecovered\tfps\tfps/encoded\tReal burst x")
	for _, kbps := range []float64{900, 700, 550, 420} {
		run, err := turbulence.RunPairWith(3001, 1, turbulence.High, turbulence.Options{
			BottleneckBps: kbps * 1000,
		})
		if err != nil {
			log.Fatal(err)
		}
		rc, wc := run.Clips()
		burst := run.Real.AvgPlaybackBps / rc.EncodedBps()
		fmt.Fprintf(w, "%.0fK\tReal\t%.2f\t%d\t%.1f\t%.2f\t%.2f\n",
			kbps, run.Real.LossRate()*100, run.Real.PacketsRecovered,
			run.Real.AvgFPS, run.Real.AvgFPS/rc.FrameRate(), burst)
		fmt.Fprintf(w, "%.0fK\tWMP\t%.2f\t%d\t%.1f\t%.2f\t\n",
			kbps, run.WMP.LossRate()*100, run.WMP.PacketsRecovered,
			run.WMP.AvgFPS, run.WMP.AvgFPS/wc.FrameRate())
	}
	w.Flush()

	fmt.Println("\nObservations:")
	fmt.Println("  - Real's SETUP bandwidth probe senses the narrower bottleneck and")
	fmt.Println("    shrinks its buffering burst toward 1x — it degrades gracefully by")
	fmt.Println("    surrendering its startup advantage first.")
	fmt.Println("  - WMP's CBR pacer is oblivious to the path: once demand exceeds the")
	fmt.Println("    bottleneck its fragments queue and drop, and one lost fragment")
	fmt.Println("    discards the whole application frame (the §3.C goodput hazard), so")
	fmt.Println("    frame rate collapses faster than raw loss suggests.")
	fmt.Println("  - Neither player reduces its send rate under sustained loss: both are")
	fmt.Println("    unresponsive flows in the paper's sense.")
}
