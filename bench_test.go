// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per artifact, plus the DESIGN.md §4 ablations and
// substrate micro-benchmarks. Each figure bench performs the complete
// regeneration — simulated streaming runs included — so `go test -bench=.`
// reproduces the entire evaluation from scratch.
package turbulence_test

import (
	"testing"
	"time"

	"turbulence"
	"turbulence/internal/eventsim"
)

// benchExperiment runs one registered experiment per iteration with a
// fresh context (no run caching), so the bench measures full regeneration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ctx := turbulence.NewExperimentContext(2002)
		res, err := turbulence.RunExperiment(ctx, id)
		if err != nil {
			b.Fatal(err)
		}
		if res == nil || res.ID != id {
			b.Fatalf("bad result for %s", id)
		}
	}
}

func BenchmarkTable1DataSets(b *testing.B)                 { benchExperiment(b, "table1") }
func BenchmarkFig01RTTCDF(b *testing.B)                    { benchExperiment(b, "fig01") }
func BenchmarkFig02HopsCDF(b *testing.B)                   { benchExperiment(b, "fig02") }
func BenchmarkFig03PlaybackVsEncoding(b *testing.B)        { benchExperiment(b, "fig03") }
func BenchmarkFig04PacketArrivals(b *testing.B)            { benchExperiment(b, "fig04") }
func BenchmarkFig05Fragmentation(b *testing.B)             { benchExperiment(b, "fig05") }
func BenchmarkFig06PacketSizePDF(b *testing.B)             { benchExperiment(b, "fig06") }
func BenchmarkFig07NormalizedSizePDF(b *testing.B)         { benchExperiment(b, "fig07") }
func BenchmarkFig08InterarrivalPDF(b *testing.B)           { benchExperiment(b, "fig08") }
func BenchmarkFig09NormalizedInterarrivalCDF(b *testing.B) { benchExperiment(b, "fig09") }
func BenchmarkFig10BandwidthTimeline(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11BufferingRatio(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12InterleavingDelivery(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13FrameRateTimeline(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14FrameRateVsEncoding(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15FrameRateVsBandwidth(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkSec4FlowGenerator(b *testing.B)              { benchExperiment(b, "sec4") }

// Extension benches (paper §VI future work and §I/§II.D transport claim).
func BenchmarkExtensionMediaScaling(b *testing.B) { benchExperiment(b, "ext-scaling") }
func BenchmarkExtensionUDPvsTCP(b *testing.B)     { benchExperiment(b, "ext-tcp") }

// Ablation benches (DESIGN.md §4).
func BenchmarkAblationNoFragmentation(b *testing.B)   { benchExperiment(b, "ablation-nofrag") }
func BenchmarkAblationUncappedBuffering(b *testing.B) { benchExperiment(b, "ablation-uncapped") }
func BenchmarkAblationNoInterleave(b *testing.B)      { benchExperiment(b, "ablation-nointerleave") }
func BenchmarkAblationSequential(b *testing.B)        { benchExperiment(b, "ablation-sequential") }

// BenchmarkPairRun measures one complete paired streaming experiment
// (the unit of every figure above): handshake, probes, two full clip
// streams over a 15-hop path, capture and analysis.
func BenchmarkPairRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := turbulence.RunPair(2002, 2, turbulence.High)
		if err != nil {
			b.Fatal(err)
		}
		if run.Trace.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkPairRunNetem is BenchmarkPairRun through the netem scenario
// layer: once under paper-baseline (whose models are all defaults, so
// allocs/op must equal BenchmarkPairRun exactly — the zero-cost guarantee)
// and once under an impaired scenario (whose only alloc growth is the
// fixed per-testbed model construction; steady-state forwarding stays
// allocation-free, pinned by netsim's TestForwardSteadyStateAllocFree).
func BenchmarkPairRunNetem(b *testing.B) {
	for _, name := range []string{"paper-baseline", "lossy-wifi"} {
		sc, err := turbulence.FindScenario(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := turbulence.RunPairWith(2002, 2, turbulence.High,
					turbulence.Options{Scenario: sc})
				if err != nil {
					b.Fatal(err)
				}
				if run.Trace.Len() == 0 {
					b.Fatal("empty trace")
				}
			}
		})
	}
}

// BenchmarkRunAllSequential regenerates all 13 Table 1 pair experiments on
// one core — the workload behind every all-data-set figure.
func BenchmarkRunAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := turbulence.RunAll(2002)
		if err != nil {
			b.Fatal(err)
		}
		if len(runs) != 13 {
			b.Fatalf("got %d runs", len(runs))
		}
	}
}

// BenchmarkRunAllParallel is the same workload fanned out across all
// cores; results are byte-identical to the sequential run.
func BenchmarkRunAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := turbulence.RunAllParallel(2002, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(runs) != 13 {
			b.Fatalf("got %d runs", len(runs))
		}
	}
}

// BenchmarkPlanStream measures the Plan/Runner engine end to end on the
// paper's full sweep: 13 pair cells declared by the default Plan, fanned
// across all cores, streamed in completion order with raw traces dropped
// after profiling — the bounded-memory shape huge matrices run in.
func BenchmarkPlanStream(b *testing.B) {
	plan := turbulence.NewPlan(2002)
	runner := turbulence.NewRunner(
		turbulence.WithWorkers(0),
		turbulence.WithTraceRetention(turbulence.DropTracesAfterProfile),
	)
	for i := 0; i < b.N; i++ {
		n := 0
		for res := range runner.Seq(plan) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if res.Comparison == nil || res.Run.Trace != nil {
				b.Fatal("retention contract violated")
			}
			n++
		}
		if n != plan.Size() {
			b.Fatalf("streamed %d cells, want %d", n, plan.Size())
		}
	}
}

// BenchmarkPlanStreamOnline is BenchmarkPlanStream under StreamProfiles:
// the same 13-pair sweep, but no run ever materialises a trace — captured
// packets stream through online per-flow analyzers and the profiles come
// back in RunResult.Comparison. The delta against BenchmarkPlanStream is
// the whole point of online analysis: record storage, the payload arena
// and the second profiling pass all disappear, and the network's wire
// buffers recycle without capture ever pinning them. The runner is the
// full perf configuration — testbed reuse (the default) plus the
// timing-wheel scheduler — so this is the number BENCH_reuse.json tracks;
// output is byte-identical to the fresh heap-scheduled sweep (pinned by
// TestReusedAndWheelMatchFresh).
func BenchmarkPlanStreamOnline(b *testing.B) {
	plan := turbulence.NewPlan(2002)
	runner := turbulence.NewRunner(
		turbulence.WithWorkers(0),
		turbulence.WithTraceRetention(turbulence.StreamProfiles),
		turbulence.WithTimingWheel(),
	)
	for i := 0; i < b.N; i++ {
		n := 0
		for res := range runner.Seq(plan) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if res.Comparison == nil || res.Run.Trace != nil {
				b.Fatal("retention contract violated")
			}
			n++
		}
		if n != plan.Size() {
			b.Fatalf("streamed %d cells, want %d", n, plan.Size())
		}
	}
}

// BenchmarkFlowGeneration measures the Section IV synthetic generator
// alone: one 60-second flow per iteration from a pre-fitted model.
func BenchmarkFlowGeneration(b *testing.B) {
	run, err := turbulence.RunPair(2002, 2, turbulence.High)
	if err != nil {
		b.Fatal(err)
	}
	model := turbulence.FitModel(run.WMPFlow)
	rng := turbulence.NewRNG(1)
	flow := run.WMPFlow.Flow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := turbulence.GenerateFlow(model, rng, 60*time.Second, flow)
		if tr.Len() == 0 {
			b.Fatal("empty generated trace")
		}
	}
}

// BenchmarkProfileFlow measures the turbulence analysis alone on a
// captured high-rate flow.
func BenchmarkProfileFlow(b *testing.B) {
	run, err := turbulence.RunPair(2002, 1, turbulence.High)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := turbulence.ProfileFlow(run.WMPFlow)
		if p.Packets == 0 {
			b.Fatal("empty profile")
		}
	}
}

// BenchmarkFilterMatch measures display-filter evaluation over a full
// trace.
func BenchmarkFilterMatch(b *testing.B) {
	run, err := turbulence.RunPair(2002, 1, turbulence.High)
	if err != nil {
		b.Fatal(err)
	}
	// Continuation fragments carry no transport ports, so match them by
	// address, fragment state and wire size.
	f, err := turbulence.CompileFilter("ip.dst == 130.215.10.5 && ip.contfrag && size >= 1514")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Apply(run.Trace).Len() == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkTestbedReset measures rewinding the full apparatus — network,
// hosts, hops, both stacks at six sites, capture — for reuse: the
// per-cell cost a cached sweep pays instead of construction. Compare
// against BenchmarkPairRun's first-iteration build to see the gap the
// TestbedCache closes.
func BenchmarkTestbedReset(b *testing.B) {
	tb := turbulence.NewTestbed(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Reset(int64(i + 2))
	}
}

// BenchmarkSchedulerDense drives a dense self-rescheduling timer workload
// — the event pattern packet pacing produces — through both scheduler
// backends. The heap pays O(log n) sift per operation; the wheel buckets
// near-future timers in O(1) and fires same-tick batches in one pop.
func BenchmarkSchedulerDense(b *testing.B) {
	const (
		timers = 4096                   // concurrent pacing loops
		step   = 800 * time.Microsecond // mean reschedule gap
		spread = 64 * time.Microsecond  // per-timer phase offset
	)
	run := func(b *testing.B, wheel bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := eventsim.NewScheduler()
			if wheel {
				s.EnableWheel(0, 0)
			}
			fired := 0
			var tick func(now eventsim.Time, arg any)
			tick = func(now eventsim.Time, arg any) {
				fired++
				k := arg.(int)
				s.AfterArg(eventsim.Duration(step+time.Duration(k%7)*spread), "dense.tick", tick, arg)
			}
			for k := 0; k < timers; k++ {
				s.AfterArg(eventsim.Duration(time.Duration(k)*spread), "dense.start", tick, k)
			}
			if err := s.Run(eventsim.Time(200 * time.Millisecond)); err != nil {
				b.Fatal(err)
			}
			if fired == 0 {
				b.Fatal("no events fired")
			}
		}
	}
	b.Run("heap", func(b *testing.B) { run(b, false) })
	b.Run("wheel", func(b *testing.B) { run(b, true) })
}
