GO ?= go

.PHONY: all build test vet bench bench-quick clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full benchmark sweep in benchstat-compatible format. Writes the run to
# BENCH_current.txt (gitignored) so it can be diffed against the committed
# baseline in BENCH_baseline.json:
#
#	make bench
#	benchstat <(scripts/bench.sh baseline) BENCH_current.txt
bench:
	scripts/bench.sh | tee BENCH_current.txt

# The three hot-path benchmarks only, one iteration — a fast smoke signal.
bench-quick:
	$(GO) test -run=NONE -bench='BenchmarkPairRun$$|BenchmarkProfileFlow$$|BenchmarkFilterMatch$$' -benchmem -benchtime=2x .

clean:
	rm -f BENCH_current.txt
	$(GO) clean ./...
