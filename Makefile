GO ?= go

.PHONY: all build test vet lint check bench bench-quick bench-compare cover clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Tier-1 hygiene: gofmt cleanliness plus go vet, staticcheck and
# shellcheck when they are installed (CI runners and dev trees that ship
# them get the stricter gate; trees without them just skip — nothing here
# downloads tooling). Fails listing any file gofmt would rewrite.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi
	@if command -v shellcheck >/dev/null 2>&1; then \
		shellcheck scripts/*.sh; \
	else \
		echo "shellcheck not installed; skipping shell lint"; \
	fi
# internal/obs promises zero allocations on its hot paths; fmt verbs
# allocate, so any fmt call in the package (tests aside) is a regression.
	@hits=$$(grep -n 'fmt\.' internal/obs/*.go | grep -v '_test\.go:' || true); \
	if [ -n "$$hits" ]; then \
		echo "internal/obs must not use fmt (zero-alloc hot paths; use strconv):"; \
		echo "$$hits"; exit 1; \
	fi

# The full local gate: what CI would run.
check: build lint test

# Full benchmark sweep in benchstat-compatible format. Writes the run to
# BENCH_current.txt (gitignored) so it can be diffed against the committed
# baseline in BENCH_baseline.json (or the netem record in BENCH_netem.json
# via `scripts/bench.sh netem`):
#
#	make bench
#	benchstat <(scripts/bench.sh baseline) BENCH_current.txt
bench:
	scripts/bench.sh | tee BENCH_current.txt

# The three hot-path benchmarks only, one iteration — a fast smoke signal.
bench-quick:
	$(GO) test -run=NONE -bench='BenchmarkPairRun$$|BenchmarkProfileFlow$$|BenchmarkFilterMatch$$' -benchmem -benchtime=2x .

# Compare the last `make bench` run (BENCH_current.txt) against the
# committed BENCH_*.json records: benchstat when it is installed, the
# built-in benchjson comparer otherwise — either way the loop from "run
# benchmarks" to "see the drift" closes without extra tooling.
#
# With GATE=<pct> set the comparison becomes a regression gate: benchjson
# exits non-zero when any tracked benchmark's ns/op exceeds the newest
# committed record's by more than <pct> percent (`make bench-compare
# GATE=10`). The gate reads only GATE_RECORD — the latest record
# supersedes the older snapshots, which keep regressions that were
# knowingly accepted in past PRs (e.g. the columnar capture store's
# FilterMatch cost) and would otherwise trip forever. Opt-in because the
# records are snapshots from specific hardware — gate on runners that
# refresh their own records.
GATE_RECORD ?= BENCH_reuse.json
bench-compare:
	@test -f BENCH_current.txt || { echo "run 'make bench' first (writes BENCH_current.txt)"; exit 1; }
	@if [ -n "$(GATE)" ]; then \
		$(GO) run ./scripts/benchjson compare -gate $(GATE) BENCH_current.txt $(GATE_RECORD); \
	elif command -v benchstat >/dev/null 2>&1; then \
		sed -E 's/^(Benchmark[^[:space:]]+)-[0-9]+([[:space:]])/\1\2/' BENCH_current.txt > .bench_current.tmp; \
		for rec in baseline netem plan stream reuse; do \
			echo "== benchstat vs $$rec =="; \
			scripts/bench.sh $$rec > .bench_record.tmp 2>/dev/null || continue; \
			benchstat .bench_record.tmp .bench_current.tmp || true; \
		done; \
		rm -f .bench_record.tmp .bench_current.tmp; \
	else \
		$(GO) run ./scripts/benchjson compare BENCH_current.txt; \
	fi

# Coverage for the distributed-sweep plumbing (the wire format, the shard
# dispatcher and the result store — the layers whose bugs corrupt results
# silently). Writes cover.out (gitignored); CI uploads it as a per-run
# artifact and fails below the floor, so the cache/dispatch paths cannot
# quietly shed their tests.
COVER_FLOOR ?= 75
cover:
	$(GO) test -covermode=atomic -coverprofile=cover.out \
		-coverpkg=./internal/wire/...,./internal/dispatch/...,./internal/resultstore/... \
		./internal/wire/... ./internal/dispatch/... ./internal/resultstore/...
	@total=$$($(GO) tool cover -func=cover.out | tail -n 1 | awk '{ print $$3 }'); \
	echo "total: $$total (floor $(COVER_FLOOR)%)"; \
	pct=$${total%\%}; \
	if [ "$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { print (p < f) }')" = 1 ]; then \
		echo "coverage $$total is below the $(COVER_FLOOR)% floor"; exit 1; \
	fi

clean:
	rm -f BENCH_current.txt .bench_record.tmp .bench_current.tmp cover.out \
		go-test.json bench-smoke.txt
	rm -f ./*.test cmd/turbulence/turbulence
	$(GO) clean ./...
