GO ?= go

.PHONY: all build test vet lint check bench bench-quick bench-compare clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Tier-1 hygiene: gofmt cleanliness plus go vet. Fails listing any file
# gofmt would rewrite.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# The full local gate: what CI would run.
check: build lint test

# Full benchmark sweep in benchstat-compatible format. Writes the run to
# BENCH_current.txt (gitignored) so it can be diffed against the committed
# baseline in BENCH_baseline.json (or the netem record in BENCH_netem.json
# via `scripts/bench.sh netem`):
#
#	make bench
#	benchstat <(scripts/bench.sh baseline) BENCH_current.txt
bench:
	scripts/bench.sh | tee BENCH_current.txt

# The three hot-path benchmarks only, one iteration — a fast smoke signal.
bench-quick:
	$(GO) test -run=NONE -bench='BenchmarkPairRun$$|BenchmarkProfileFlow$$|BenchmarkFilterMatch$$' -benchmem -benchtime=2x .

# Compare the last `make bench` run (BENCH_current.txt) against the
# committed BENCH_*.json records: benchstat when it is installed, the
# built-in benchjson comparer otherwise — either way the loop from "run
# benchmarks" to "see the drift" closes without extra tooling.
bench-compare:
	@test -f BENCH_current.txt || { echo "run 'make bench' first (writes BENCH_current.txt)"; exit 1; }
	@if command -v benchstat >/dev/null 2>&1; then \
		sed -E 's/^(Benchmark[^ 	]*)-[0-9]+/\1/' BENCH_current.txt > .bench_current.tmp; \
		for rec in baseline netem plan stream; do \
			echo "== benchstat vs $$rec =="; \
			scripts/bench.sh $$rec > .bench_record.tmp 2>/dev/null || continue; \
			benchstat .bench_record.tmp .bench_current.tmp || true; \
		done; \
		rm -f .bench_record.tmp .bench_current.tmp; \
	else \
		$(GO) run ./scripts/benchjson compare BENCH_current.txt; \
	fi

clean:
	rm -f BENCH_current.txt .bench_record.tmp .bench_current.tmp
	$(GO) clean ./...
