GO ?= go

.PHONY: all build test vet lint check bench bench-quick clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Tier-1 hygiene: gofmt cleanliness plus go vet. Fails listing any file
# gofmt would rewrite.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

# The full local gate: what CI would run.
check: build lint test

# Full benchmark sweep in benchstat-compatible format. Writes the run to
# BENCH_current.txt (gitignored) so it can be diffed against the committed
# baseline in BENCH_baseline.json (or the netem record in BENCH_netem.json
# via `scripts/bench.sh netem`):
#
#	make bench
#	benchstat <(scripts/bench.sh baseline) BENCH_current.txt
bench:
	scripts/bench.sh | tee BENCH_current.txt

# The three hot-path benchmarks only, one iteration — a fast smoke signal.
bench-quick:
	$(GO) test -run=NONE -bench='BenchmarkPairRun$$|BenchmarkProfileFlow$$|BenchmarkFilterMatch$$' -benchmem -benchtime=2x .

clean:
	rm -f BENCH_current.txt
	$(GO) clean ./...
