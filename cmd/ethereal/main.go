// Command ethereal works with turbulence trace files the way the paper
// used Ethereal 0.8.20: capture streaming runs to disk, list packets with
// display filters, and summarise flows.
//
// Usage:
//
//	ethereal capture -o run.tbc [-seed N] [-set 1] [-class high]
//	ethereal dump run.tbc [-filter "udp.port == 4002 && ip.contfrag"] [-limit 50]
//	ethereal summary run.tbc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/core"
	"turbulence/internal/media"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "capture":
		captureCmd(os.Args[2:])
	case "dump":
		dumpCmd(os.Args[2:])
	case "summary":
		summaryCmd(os.Args[2:])
	case "iograph":
		iographCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ethereal capture -o FILE [-seed N] [-set 1..6] [-class low|high|very-high]
  ethereal dump FILE [-filter EXPR] [-limit N]
  ethereal summary FILE
  ethereal iograph FILE [-interval 1s]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ethereal:", err)
	os.Exit(1)
}

func captureCmd(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	out := fs.String("o", "run.tbc", "output trace file")
	seed := fs.Int64("seed", 2002, "random seed")
	set := fs.Int("set", 1, "data set (1-6)")
	className := fs.String("class", "high", "rate class: low, high, very-high")
	fs.Parse(args)
	class, ok := parseClass(*className)
	if !ok {
		fatal(fmt.Errorf("bad class %q", *className))
	}
	run, err := core.RunPair(*seed, *set, class)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := capture.WriteFile(f, run.Trace); err != nil {
		fatal(err)
	}
	fmt.Printf("captured %d packets over %.1fs to %s\n",
		run.Trace.Len(), run.Trace.Duration().Seconds(), *out)
}

func parseClass(s string) (media.Class, bool) {
	switch s {
	case "low":
		return media.Low, true
	case "high":
		return media.High, true
	case "very-high", "veryhigh", "v":
		return media.VeryHigh, true
	}
	return 0, false
}

func loadTrace(path string) *capture.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := capture.ReadFile(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func dumpCmd(args []string) {
	if len(args) < 1 {
		usage()
	}
	path := args[0]
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	expr := fs.String("filter", "", "display filter expression")
	limit := fs.Int("limit", 0, "print at most N packets (0 = all)")
	fs.Parse(args[1:])
	tr := loadTrace(path)
	if *expr != "" {
		filt, err := capture.Compile(*expr)
		if err != nil {
			fatal(err)
		}
		tr = filt.Apply(tr)
	}
	n := 0
	for i := 0; i < tr.Len(); i++ {
		fmt.Println(tr.At(i).String())
		n++
		if *limit > 0 && n >= *limit {
			fmt.Printf("... (%d more)\n", tr.Len()-n)
			break
		}
	}
	fmt.Printf("%d packets\n", tr.Len())
}

// iographCmd renders the per-flow bandwidth-over-time view Ethereal calls
// an IO graph — the raw material of the paper's Figure 10.
func iographCmd(args []string) {
	if len(args) < 1 {
		usage()
	}
	path := args[0]
	fs := flag.NewFlagSet("iograph", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "bucket width")
	fs.Parse(args[1:])
	tr := loadTrace(path)
	flows := tr.SplitFlows()
	if len(flows) == 0 {
		fmt.Println("no flows")
		return
	}
	series := make([][]capture.Point, len(flows))
	maxLen := 0
	for i, ft := range flows {
		series[i] = ft.BandwidthSeries(*interval)
		if len(series[i]) > maxLen {
			maxLen = len(series[i])
		}
	}
	fmt.Print("t(s)")
	for _, ft := range flows {
		fmt.Printf("\t:%d", ft.Flow.Dst.Port)
	}
	fmt.Println("\t(Kbit/s per flow, by destination port)")
	for row := 0; row < maxLen; row++ {
		fmt.Printf("%.0f", float64(row)*interval.Seconds())
		for i := range flows {
			v := 0.0
			if row < len(series[i]) {
				v = series[i][row].Y / 1000
			}
			fmt.Printf("\t%.1f", v)
		}
		fmt.Println()
	}
}

func summaryCmd(args []string) {
	if len(args) < 1 {
		usage()
	}
	tr := loadTrace(args[0])
	fmt.Printf("trace: %d packets, %.1fs\n", tr.Len(), tr.Duration().Seconds())
	for _, ft := range tr.SplitFlows() {
		prof := core.ProfileFlow(ft)
		fmt.Printf("flow %s\n  %s\n", ft.Flow, prof)
		fs := ft.Fragmentation()
		fmt.Printf("  datagrams=%d continuation-fragments=%d (%.1f%%)\n",
			fs.Datagrams, fs.Continuations, fs.ContinuationShare()*100)
	}
}
