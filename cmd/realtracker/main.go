// Command realtracker streams one or more RealVideo clips from the
// simulated testbed and records application-layer statistics, mirroring
// the paper's RealTracker tool (an instrumented RealPlayer).
//
// Usage:
//
//	realtracker [-seed N] [-clip set/R-class] [-playlist "1/R-h,5/R-l"] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"turbulence/internal/core"
	"turbulence/internal/eventsim"
	"turbulence/internal/media"
	"turbulence/internal/tracker"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	clip := flag.String("clip", "5/R-l", "clip reference (set/R-class, e.g. 1/R-h)")
	playlist := flag.String("playlist", "", "comma-separated clip refs; overrides -clip")
	csvPath := flag.String("csv", "", "write per-second samples to this CSV file")
	flag.Parse()

	refs := []string{*clip}
	if *playlist != "" {
		refs = strings.Split(*playlist, ",")
	}
	reports, err := runPlaylist(*seed, refs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "realtracker:", err)
		os.Exit(1)
	}
	for _, r := range reports {
		fmt.Println(r)
		fmt.Printf("  startup=%v playFrames=%d/%d recovered=%d loss=%.2f%%\n",
			r.StartupDelay(), r.FramesPlayed, r.FramesExpected, r.PacketsRecovered, r.LossRate()*100)
	}
	if *csvPath != "" && len(reports) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "realtracker:", err)
			os.Exit(1)
		}
		defer f.Close()
		for _, r := range reports {
			if err := r.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "realtracker:", err)
				os.Exit(1)
			}
		}
		fmt.Println("wrote", *csvPath)
	}
}

func runPlaylist(seed int64, refs []string) ([]*tracker.Report, error) {
	tb := core.NewTestbed(seed)
	var horizon float64 = 30
	for i, ref := range refs {
		refs[i] = strings.TrimSpace(ref)
		clip, ok := findByRef(refs[i])
		if !ok {
			return nil, fmt.Errorf("unknown RealVideo clip %q", ref)
		}
		horizon += clip.Duration.Seconds() + 90
	}
	var reports []*tracker.Report
	var chain func(i int)
	chain = func(i int) {
		if i >= len(refs) {
			return
		}
		set := setOf(refs[i])
		site := tb.Site(set)
		tracker.StartRealTracker(tb.Client, site.RDT, refs[i], 5101, 5102, func(r *tracker.Report) {
			reports = append(reports, r)
			chain(i + 1)
		})
	}
	chain(0)
	if err := tb.Net.Run(eventsim.At(horizon)); err != nil {
		return nil, err
	}
	if len(reports) != len(refs) {
		return reports, fmt.Errorf("only %d/%d playlist entries completed", len(reports), len(refs))
	}
	return reports, nil
}

func findByRef(ref string) (media.Clip, bool) {
	for _, c := range media.AllClips() {
		if c.Name() == ref && c.Format == media.Real {
			return c, true
		}
	}
	return media.Clip{}, false
}

func setOf(ref string) int {
	var set int
	fmt.Sscanf(ref, "%d/", &set)
	return set
}
