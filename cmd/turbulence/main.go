// Command turbulence regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	turbulence [-seed N] [-experiment id] [-parallel N] [-scenario name] [-list] [-list-scenarios] [-points]
//
// With no -experiment it runs everything, printing each artifact's rows,
// series summaries and headline notes. -points includes full series data
// (suitable for piping into a plotting tool). -parallel fans independent
// pair runs out across a worker pool (0, the default, uses every core);
// output is byte-identical to -parallel 1, just faster.
//
// -scenario streams every Table 1 pair run under a named netem scenario
// (bursty loss, time-varying bandwidth, AQM, cross traffic), regenerating
// the whole evaluation as a what-if under impaired network conditions;
// -list-scenarios enumerates the library. Identical seed and scenario
// reproduce identical output at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"turbulence"
)

func main() {
	seed := flag.Int64("seed", 2002, "base random seed (runs are deterministic per seed)")
	experiment := flag.String("experiment", "", "run a single experiment id (default: all)")
	parallel := flag.Int("parallel", 0, "worker pool size for independent pair runs (1 = sequential, 0 = all cores); results are identical either way")
	scenario := flag.String("scenario", "", "stream the pair runs under a named netem scenario (see -list-scenarios)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	listScenarios := flag.Bool("list-scenarios", false, "list netem scenario names and exit")
	points := flag.Bool("points", false, "print full series point data")
	csvDir := flag.String("csv", "", "also write each experiment's series/rows as CSV files into this directory")
	flag.Parse()

	if *list {
		for _, id := range turbulence.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *listScenarios {
		for _, sc := range turbulence.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}

	ids := turbulence.ExperimentIDs()
	if *experiment != "" {
		ids = []string{*experiment}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
	}
	ctx := turbulence.NewExperimentContext(*seed).SetParallel(*parallel)
	if *scenario != "" {
		sc, err := turbulence.FindScenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
		ctx.SetScenario(sc)
	}
	for _, id := range ids {
		res, err := turbulence.RunExperiment(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "turbulence: %s: %v\n", id, err)
			os.Exit(1)
		}
		print_(res, *points)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "turbulence: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
}

// writeCSV emits one file per experiment: table rows first (if any), then
// each series as x,y pairs under a "# series <name>" banner — trivially
// splittable for gnuplot or a spreadsheet.
func writeCSV(dir string, res *turbulence.Result) error {
	f, err := os.Create(dir + "/" + res.ID + ".csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s: %s\n", res.ID, res.Title)
	if len(res.Columns) > 0 {
		fmt.Fprintln(f, strings.Join(res.Columns, ","))
		for _, row := range res.Rows {
			fmt.Fprintln(f, strings.Join(row, ","))
		}
	}
	for _, s := range res.Series {
		fmt.Fprintf(f, "# series %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(f, "%g,%g\n", p.X, p.Y)
		}
	}
	for _, n := range res.Notes {
		fmt.Fprintf(f, "# note: %s\n", n)
	}
	return nil
}

func print_(res *turbulence.Result, points bool) {
	if points {
		fmt.Print(res.String())
		fmt.Println()
		return
	}
	// Compact view: table rows and notes, series summarised.
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", res.ID, res.Title)
	if len(res.Columns) > 0 {
		fmt.Fprintf(&b, "%s\n", strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "%s\n", strings.Join(row, " | "))
		}
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			fmt.Fprintf(&b, "series %-40s  (empty)\n", s.Name)
			continue
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		fmt.Fprintf(&b, "series %-40s  %d points, x:[%.3g..%.3g] y:[%.3g..%.3g]\n",
			s.Name, len(s.Points), first.X, last.X, minY(s.Points), maxY(s.Points))
	}
	for _, n := range res.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteString("\n")
	fmt.Print(b.String())
}

func minY(pts []turbulence.Point) float64 {
	m := pts[0].Y
	for _, p := range pts {
		if p.Y < m {
			m = p.Y
		}
	}
	return m
}

func maxY(pts []turbulence.Point) float64 {
	m := pts[0].Y
	for _, p := range pts {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}
