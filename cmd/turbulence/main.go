// Command turbulence regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	turbulence [-seed N] [-experiment id] [-parallel N] [-scenario name]
//	           [-retention retain|drop|stream] [-shard i/n] [-progress]
//	           [-metrics addr] [-pprof] [-result-store dir]
//	           [-json] [-csv dir] [-points] [-list] [-list-scenarios]
//	turbulence -serve addr [-seed N] [-pairs list] [-scenario name]
//	           [-serve-shards N] [-lease-ttl d] [-checkpoint file] [-pprof]
//	           [-result-store dir] [-adaptive-leases]
//	turbulence -work addr [-parallel N] [-result-store dir]
//	turbulence -listen ip [-seed N] [-metrics addr] [-pprof]
//	turbulence -play ip [-bind ip] [-clip set/class] [-seed N]
//	           [-live-timeout d] [-metrics addr]
//
// With no -experiment it runs everything, printing each artifact's rows,
// series summaries and headline notes. -points includes full series data
// (suitable for piping into a plotting tool); -json emits the same
// artifacts as one machine-readable JSON array (rows, series, notes)
// instead of text. -parallel fans independent pair runs out across a
// worker pool (0, the default, uses every core); output is byte-identical
// to -parallel 1, just faster.
//
// -scenario streams every Table 1 pair run under a named netem scenario
// (bursty loss, time-varying bandwidth, AQM, cross traffic), regenerating
// the whole evaluation as a what-if under impaired network conditions;
// -list-scenarios enumerates the library. Identical seed and scenario
// reproduce identical output at any -parallel setting.
//
// -retention selects what the shared pair-run sweep keeps per run:
// "retain" (default) holds full packet captures and regenerates every
// experiment; "drop" profiles then frees each trace; "stream" never
// stores records at all — captured packets feed online analyzers and the
// sweep runs in a few KB of analyzer state per worker. Under drop/stream
// only the trace-free experiments regenerate (reports, probes, profiles);
// with no -experiment the list narrows to them automatically.
//
// -shard i/n deterministically carves the experiment list into n strided
// slices and runs only the i-th (0-based), so n processes or machines
// regenerate the full evaluation in parallel with no coordination:
//
//	turbulence -shard 0/3 & turbulence -shard 1/3 & turbulence -shard 2/3
//
// Every result carries its scenario, seed and shard in the -json output,
// so merged shard outputs are self-describing.
//
// -progress reports each completed pair run on stderr while experiments
// regenerate. Interrupting (ctrl-C) cancels in-flight simulation promptly
// — mid-run, between events — and exits after the current bookkeeping.
//
// -metrics addr serves a live Prometheus meter of the local sweep on
// http://addr/metrics while experiments regenerate: cells completed and
// their wall-time histogram, simulator event and timer counters, captured
// packet volume, and netem drops by cause. It does not combine with
// -serve or -work (the coordinator serves its own /metrics; workers
// report through it). -pprof additionally mounts net/http/pprof under
// /debug/pprof/ on that server — or, with -serve, on the coordinator's
// mux — and is off by default because profiling endpoints expose
// internals and cost CPU when scraped.
//
// -serve and -work are the distributed counterpart of -shard: instead of
// telling each process its slice up front, a coordinator (-serve) holds
// the whole pair sweep as a lease-based shard queue and workers (-work,
// any number, joining and leaving freely) pull shards, run them under
// streaming retention, and ship the results back. Dead workers' leases
// expire and their shards are re-issued, and the merged output — printed
// as one JSON array of wire runs on the coordinator's stdout — is
// byte-identical to the unsharded run. -pairs narrows the served sweep to
// listed set/class pairs ("1/low,3/l,6/very-high"), -serve-shards sets the
// lease granularity, -lease-ttl the dead-worker timeout. Ctrl-C drains
// gracefully on both sides: the coordinator stops issuing leases and
// reports what completed; a worker finishes and ships its current shard
// first (a second ctrl-C aborts the simulation mid-run). -serve and -work
// are mutually exclusive, and neither combines with -experiment or
// -shard.
//
// -listen and -play run the protocol stacks over real UDP sockets instead
// of the simulator — the same wms/rdt code, carried by a live transport.
// -listen ip binds the servers (WMS on 1755, RDT control on 554 — the
// latter is privileged and reported unavailable without rights) and
// serves the full Table 1 clip library until interrupted; -play ip
// streams -clip from such a server, feeds the received flow through the
// same online analyzers the simulator uses, and prints the session
// report: a turbulence profile directly comparable to the simulated WMP
// column, and an order-independent payload digest that, over a lossless
// path (localhost loopback), equals the digest of the simulated run of
// the same clip. -metrics on either side additionally exposes the
// transport's per-socket counters (sent/received/dropped packets, send
// errors, duplicate sequences) on /metrics. Neither mode combines with
// -serve, -work, -experiment or -shard.
//
// -checkpoint file journals every completed shard to file (fsync'd per
// append), making the coordinator crash-safe: re-running the same -serve
// command — same seed, pairs and scenario — with the same -checkpoint
// path replays the journal and re-leases only the unfinished shards, and
// the final output is byte-identical to an uninterrupted sweep. Workers
// renew their leases with a heartbeat while a shard simulates, so a slow
// shard is never double-run; only a worker that actually dies forfeits
// its lease. A checkpoint written for a different sweep is refused rather
// than mixed in.
//
// -result-store dir makes sweeps incremental: completed cell results are
// appended to a content-addressed store in dir — keyed by a digest over
// pair, scenario, variant, seed and engine version — and a later -serve
// or -work sweep whose cells match is served from the store without
// simulating them, byte-identical to a fresh run. On -serve the
// coordinator consults the store when it carves the plan (fully-cached
// shards are never leased; partially-cached shards tell workers which
// cells to skip) and inserts what workers ship back; on -work it is the
// worker's local read-through cache; on a plain experiment sweep it is
// populated only — experiments reduce full player reports the store does
// not hold — and requires -retention drop or stream, because the store
// holds turbulence profiles, not packet captures. A corrupted store
// frame is detected by checksum, counted on /metrics
// (turbulence_cache_corrupt_frames_total) and recomputed — never served.
//
// -adaptive-leases sizes -serve leases from each worker's measured
// throughput instead of granting whole static shards: slices subdivide by
// stride until they fit -lease-ttl/4 of work at the puller's pace, so
// slow workers take smaller bites and strike-prone shards cost less to
// retry. Output is byte-identical either way.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"turbulence"
)

func main() {
	seed := flag.Int64("seed", 2002, "base random seed (runs are deterministic per seed)")
	experiment := flag.String("experiment", "", "run a single experiment id (default: all)")
	parallel := flag.Int("parallel", 0, "worker pool size for independent pair runs (1 = sequential, 0 = all cores); results are identical either way")
	retention := flag.String("retention", "retain", "what the shared pair-run sweep keeps per run: retain (full packet captures, all experiments), drop (profile then free each trace), stream (never store records; online analyzers only, lowest memory). drop/stream regenerate only trace-free experiments (reports, probes, profiles)")
	scenario := flag.String("scenario", "", "stream the pair runs under a named netem scenario (see -list-scenarios)")
	shard := flag.String("shard", "", "run the i-th of n strided slices of the experiment list, as \"i/n\" (0-based); all shards together reproduce the full run")
	progress := flag.Bool("progress", false, "report each completed pair run on stderr")
	jsonOut := flag.Bool("json", false, "emit results as one machine-readable JSON array on stdout instead of text")
	list := flag.Bool("list", false, "list experiment ids and exit")
	listScenarios := flag.Bool("list-scenarios", false, "list netem scenario names and exit")
	points := flag.Bool("points", false, "print full series point data")
	csvDir := flag.String("csv", "", "also write each experiment's series/rows as CSV files into this directory")
	serve := flag.String("serve", "", "run a shard-dispatch coordinator on this address (host:port): workers pull shard leases of the pair sweep (-seed, -pairs, -scenario) and the merged wire runs print as JSON on stdout")
	work := flag.String("work", "", "run a shard-dispatch worker against a coordinator at this address (host:port or http://host:port)")
	pairsSpec := flag.String("pairs", "", "comma-separated clip pairs as set/class for the -serve sweep, e.g. \"1/low,3/l,6/very-high\" (default: all 13 Table 1 pairs)")
	serveShards := flag.Int("serve-shards", 0, "-serve lease granularity: how many shard slices the plan is carved into (0 = one per cell, capped at 256)")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Minute, "-serve: how long a leased shard may stay unrenewed before it is re-issued to another worker (workers heartbeat while simulating)")
	checkpoint := flag.String("checkpoint", "", "-serve: journal completed shards to this file; re-running with the same sweep flags and path resumes, re-leasing only unfinished shards")
	resultStore := flag.String("result-store", "", "content-addressed result store directory: completed cells are appended, and later -serve/-work sweeps serve matching cells from it without simulating (plain sweeps populate it; they need -retention drop or stream)")
	adaptiveLeases := flag.Bool("adaptive-leases", false, "-serve: size leases from each worker's measured throughput (stride subdivision; output is byte-identical)")
	metricsAddr := flag.String("metrics", "", "serve a live Prometheus meter of the local sweep on this address (host:port) at /metrics; the -serve coordinator has its own /metrics and does not combine with this")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -metrics server or the -serve coordinator (off by default: profiling endpoints expose internals and cost CPU when scraped)")
	listen := flag.String("listen", "", "serve the streaming protocol stacks over real UDP sockets bound to this IPv4 address (e.g. 127.0.0.1); -metrics adds the per-socket transport counters")
	play := flag.String("play", "", "stream a clip over real UDP from a live server at this IPv4 address and print the session report")
	bindIP := flag.String("bind", "127.0.0.1", "-play: local IPv4 address the client binds its sockets to")
	clipSpec := flag.String("clip", "2/low", "-play: clip to stream, as set/class (e.g. 2/low, 6/very-high)")
	liveTimeout := flag.Duration("live-timeout", 5*time.Minute, "-play: abort if the session has not completed in this long")
	flag.Parse()

	if err := modeConflicts(*serve, *work, *experiment, *shard, *pairsSpec, *scenario, *checkpoint, *metricsAddr, *pprofFlag, *listen, *play, *resultStore, *retention, *adaptiveLeases); err != nil {
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		os.Exit(2)
	}

	if *list {
		for _, id := range turbulence.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *listScenarios {
		for _, sc := range turbulence.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}

	if *listen != "" {
		os.Exit(runListen(*listen, *seed, *metricsAddr, *pprofFlag))
	}
	if *play != "" {
		os.Exit(runPlay(*play, *bindIP, *clipSpec, *seed, *metricsAddr, *pprofFlag, *liveTimeout))
	}
	if *serve != "" {
		os.Exit(runServe(*serve, *seed, *pairsSpec, *scenario, *serveShards, *leaseTTL, *checkpoint, *resultStore, *adaptiveLeases, *pprofFlag))
	}
	if *work != "" {
		os.Exit(runWork(*work, *parallel, *resultStore))
	}

	ids := turbulence.ExperimentIDs()
	if *experiment != "" {
		ids = []string{*experiment}
	}
	if *shard != "" {
		var err error
		if ids, err = shardIDs(ids, *shard); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(2)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
	}

	// Ctrl-C cancels in-flight simulation cooperatively (checked between
	// simulation events); a second ctrl-C kills the process the hard way.
	// The handler must unregister after the first signal, or NotifyContext
	// would keep swallowing the later ones.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-sigCtx.Done()
		stop()
	}()

	ctx := turbulence.NewExperimentContext(*seed).SetParallel(*parallel).SetCancel(sigCtx)
	ret, err := parseRetention(*retention)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		os.Exit(2)
	}
	if ret != turbulence.RetainTraces {
		ctx.SetRetention(ret)
	}
	if *retention != "retain" && *experiment == "" {
		// Running "everything" under reduced retention would fail on the
		// first trace-bound experiment; restrict to the trace-free set.
		ids = traceFreeIDs(ids)
	}
	var store *turbulence.ResultStore
	if *resultStore != "" {
		store, err = turbulence.OpenResultStore(*resultStore, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
		defer store.Close()
		ctx.SetResultStore(store)
	}
	if *progress {
		ctx.SetProgress(func(p turbulence.Progress) {
			status := "ok"
			if p.Err != nil {
				status = "error: " + p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "turbulence: run %d/%d %s %s (%s)\n", p.Done, p.Total, p.Key, status, p.Elapsed.Round(time.Millisecond))
		})
	}
	if *metricsAddr != "" {
		reg := turbulence.NewMetricsRegistry()
		ctx.SetMetrics(turbulence.NewMetricsSink(reg))
		if store != nil {
			store.Register(reg)
		}
		if err := serveMetrics(*metricsAddr, reg, *pprofFlag); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
	}
	if *scenario != "" {
		sc, err := turbulence.FindScenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
		ctx.SetScenario(sc)
	}
	collected := []*turbulence.Result{} // non-nil: -json promises an array, never null
	for _, id := range ids {
		// An interrupt that landed during a cache-hit experiment (no
		// Runner call to surface it) must still stop the sweep.
		if sigCtx.Err() != nil {
			fmt.Fprintln(os.Stderr, "turbulence: interrupted")
			os.Exit(130)
		}
		res, err := turbulence.RunExperiment(ctx, id)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "turbulence: interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "turbulence: %s: %v\n", id, err)
			os.Exit(1)
		}
		res.Shard = *shard
		if *jsonOut {
			collected = append(collected, res)
		} else {
			print_(res, *points)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "turbulence: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
	}
}

// runServe is the -serve mode: coordinate a lease-based shard queue for
// the pair sweep over HTTP, merge what workers ship back, and print the
// canonical-order wire runs as one JSON array on stdout. Ctrl-C drains —
// no further leases are issued, workers wind down, and whatever completed
// still prints. With -checkpoint, completions are journalled and a
// re-run on the same path resumes the sweep instead of restarting it.
func runServe(addr string, seed int64, pairsSpec, scenario string, shards int, ttl time.Duration, checkpoint, storeDir string, adaptive bool, pprof bool) int {
	keys, err := parsePairs(pairsSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		return 2
	}
	plan := turbulence.NewPlan(seed)
	if keys != nil {
		plan.ForPairs(keys...)
	}
	if scenario != "" {
		sc, err := turbulence.FindScenario(scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			return 1
		}
		plan.UnderScenarios(sc)
	}
	opts := []turbulence.DispatchOption{
		turbulence.WithDispatchShards(shards),
		turbulence.WithLeaseTTL(ttl),
		turbulence.WithDispatchCheckpoint(checkpoint),
		turbulence.WithAdaptiveLeases(adaptive),
		turbulence.WithDispatchPprof(pprof),
		turbulence.WithDispatchLogf(logf),
	}
	if storeDir != "" {
		st, err := turbulence.OpenResultStore(storeDir, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			return 1
		}
		defer st.Close()
		opts = append(opts, turbulence.WithDispatchResultStore(st))
	}
	// The first ctrl-C drains; unregistering then lets a second one kill
	// the process the hard way (NotifyContext would keep swallowing it).
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-sigCtx.Done()
		stop()
	}()
	runs, err := turbulence.Serve(sigCtx, addr, plan, opts...)
	// Whatever was collected prints — a failed or interrupted sweep must
	// not discard the cells workers already shipped.
	if runs == nil {
		runs = []turbulence.WireRun{} // the output promises an array, never null
	}
	if encErr := turbulence.EncodeRunsJSON(os.Stdout, runs); encErr != nil {
		fmt.Fprintln(os.Stderr, "turbulence:", encErr)
		return 1
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "turbulence: interrupted; %d of %d cells completed\n", len(runs), plan.Size())
		return 130
	default:
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		return 1
	}
}

// runWork is the -work mode: pull shard leases from a coordinator, run
// each with a Runner under streaming retention, ship the results back.
// The first ctrl-C drains (the current shard finishes and ships); a
// second aborts the in-flight simulation and abandons the lease to
// expiry.
func runWork(addr string, parallel int, storeDir string) int {
	drainCtx, drain := context.WithCancel(context.Background())
	hardCtx, abort := context.WithCancel(context.Background())
	defer drain()
	defer abort()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt)
	defer signal.Stop(sigs)
	go func() {
		<-sigs
		logf("turbulence: draining — finishing the current shard (ctrl-C again to abort it)")
		drain()
		<-sigs
		abort()
	}()
	name, _ := os.Hostname()
	if name == "" {
		name = "worker"
	}
	opts := []turbulence.DispatchOption{
		turbulence.WithWorkerName(fmt.Sprintf("%s-%d", name, os.Getpid())),
		turbulence.WithRunWorkers(parallel),
		turbulence.WithRunContext(hardCtx),
		turbulence.WithDispatchLogf(logf),
	}
	if storeDir != "" {
		st, err := turbulence.OpenResultStore(storeDir, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			return 1
		}
		defer st.Close()
		opts = append(opts, turbulence.WithDispatchResultStore(st))
	}
	done, err := turbulence.Work(drainCtx, addr, opts...)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "turbulence: aborted after %d shards\n", done)
			return 130
		}
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "turbulence: worker done, %d shards completed\n", done)
	return 0
}

// logf is the dispatcher's operational log line on stderr (stdout stays
// reserved for the JSON results).
func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// serveMetrics starts the -metrics HTTP server in the background: the
// registry at /metrics, plus pprof under /debug/pprof/ when asked. The
// server lives exactly as long as the process — a sweep meter has nothing
// to shut down gracefully — so errors after a successful bind only log.
func serveMetrics(addr string, reg *turbulence.MetricsRegistry, pprof bool) error {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	if pprof {
		mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-metrics %s: %w", addr, err)
	}
	logf("turbulence: metrics on http://%s/metrics", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logf("turbulence: metrics server: %v", err)
		}
	}()
	return nil
}

// modeConflicts enforces the mode mutual-exclusion rules. -serve/-work:
// the two modes exclude each other; both are whole-sweep services, so the
// single-process slicing flags (-experiment, -shard) conflict with
// either; a worker's plan arrives in its lease grants, so the
// plan-shaping flags (-pairs, -scenario) conflict with -work; the
// checkpoint journal is coordinator state, so -checkpoint requires
// -serve; -metrics is the local sweep's meter (the coordinator serves
// its own /metrics); and -pprof needs a server to mount on. -listen/-play
// are the live-transport modes: one process is either the live server or
// the live client, and neither is a simulation sweep, so they exclude
// each other and every sweep mode (-serve, -work, -experiment, -shard) —
// but they do combine with -metrics, which then exposes the live
// transport's per-socket counters. -result-store caches per-cell
// comparison profiles, so it needs a mode that simulates cells (not
// -listen/-play) and, in a plain local sweep, a retention mode that
// actually produces profiles-without-traces (-retention drop or
// stream); -adaptive-leases is coordinator lease-sizing policy, so it
// requires -serve.
func modeConflicts(serve, work, experiment, shard, pairs, scenario, checkpoint, metrics string, pprof bool, listen, play, resultStore, retention string, adaptive bool) error {
	switch {
	case listen != "" && play != "":
		return errors.New("-listen and -play are mutually exclusive (run the live server and client as separate processes)")
	case (listen != "" || play != "") && (serve != "" || work != ""):
		return errors.New("-listen/-play do not combine with -serve/-work (live transport serves real traffic; the dispatcher serves simulation shards)")
	case (listen != "" || play != "") && experiment != "":
		return errors.New("-experiment does not combine with -listen/-play (live modes stream real traffic, not simulated experiments)")
	case (listen != "" || play != "") && shard != "":
		return errors.New("-shard does not combine with -listen/-play (there is no experiment list to slice in a live session)")
	case metrics != "" && (serve != "" || work != ""):
		return errors.New("-metrics does not combine with -serve/-work (the coordinator serves its own /metrics; workers report through it)")
	case pprof && metrics == "" && serve == "":
		return errors.New("-pprof requires -metrics or -serve (it mounts on their HTTP server)")
	case serve != "" && work != "":
		return errors.New("-serve and -work are mutually exclusive")
	case (serve != "" || work != "") && experiment != "":
		return errors.New("-experiment does not combine with -serve/-work (the dispatched sweep is the pair matrix, not one experiment)")
	case (serve != "" || work != "") && shard != "":
		return errors.New("-shard does not combine with -serve/-work (the coordinator shards dynamically via leases)")
	case work != "" && pairs != "":
		return errors.New("-pairs does not combine with -work (the plan arrives in lease grants; set it on -serve)")
	case work != "" && scenario != "":
		return errors.New("-scenario does not combine with -work (the plan arrives in lease grants; set it on -serve)")
	case checkpoint != "" && serve == "":
		return errors.New("-checkpoint requires -serve (the journal is coordinator state; workers are stateless)")
	case (listen != "" || play != "") && resultStore != "":
		return errors.New("-result-store does not combine with -listen/-play (live transport carries real traffic; there are no simulated cells to cache)")
	case resultStore != "" && serve == "" && work == "" && retention == "retain":
		return errors.New("-result-store with a plain sweep requires -retention drop or stream (the store holds comparison profiles, not traces)")
	case adaptive && serve == "":
		return errors.New("-adaptive-leases requires -serve (lease sizing is coordinator policy)")
	}
	return nil
}

// parseRetention resolves the -retention flag strictly.
func parseRetention(s string) (turbulence.TraceRetention, error) {
	switch s {
	case "retain":
		return turbulence.RetainTraces, nil
	case "drop":
		return turbulence.DropTracesAfterProfile, nil
	case "stream":
		return turbulence.StreamProfiles, nil
	}
	return 0, fmt.Errorf("bad -retention %q (want retain, drop or stream)", s)
}

// parsePairs parses the -pairs spec: comma-separated set/class, class by
// name or Table 1 suffix. Empty means the default (all pairs, returned as
// nil). The whole spec must parse — a typo fails loudly instead of
// silently shrinking the sweep.
func parsePairs(spec string) ([]turbulence.PairKey, error) {
	if spec == "" {
		return nil, nil
	}
	var out []turbulence.PairKey
	for _, field := range strings.Split(spec, ",") {
		ss, cs, ok := strings.Cut(field, "/")
		set, err := strconv.Atoi(ss)
		class, cok := turbulence.ParseClass(cs)
		if !ok || err != nil || !cok || set <= 0 {
			return nil, fmt.Errorf("bad -pairs entry %q (want set/class, e.g. 1/low or 3/l)", field)
		}
		out = append(out, turbulence.PairKey{Set: set, Class: class})
	}
	return out, nil
}

// traceFreeIDs filters the experiment list down to those that regenerate
// without retained packet captures.
func traceFreeIDs(ids []string) []string {
	var out []string
	for _, id := range ids {
		if turbulence.ExperimentTraceFree(id) {
			out = append(out, id)
		}
	}
	return out
}

// shardIDs parses "i/n" and returns the strided slice {ids[j] : j%n == i},
// mirroring Plan.Shard so the sharding story is one idea at both layers.
func shardIDs(ids []string, spec string) ([]string, error) {
	// strconv, not Sscanf: the whole spec must parse, so a typo like
	// "1/34x" is rejected instead of silently running shard 1/3.
	is, ns, ok := strings.Cut(spec, "/")
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if !ok || err1 != nil || err2 != nil || n <= 0 || i < 0 || i >= n {
		return nil, fmt.Errorf("bad -shard %q (want \"i/n\" with 0 <= i < n)", spec)
	}
	var out []string
	for j, id := range ids {
		if j%n == i {
			out = append(out, id)
		}
	}
	return out, nil
}

// writeCSV emits one file per experiment: table rows first (if any), then
// each series as x,y pairs under a "# series <name>" banner — trivially
// splittable for gnuplot or a spreadsheet.
func writeCSV(dir string, res *turbulence.Result) error {
	f, err := os.Create(dir + "/" + res.ID + ".csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s: %s\n", res.ID, res.Title)
	if len(res.Columns) > 0 {
		fmt.Fprintln(f, strings.Join(res.Columns, ","))
		for _, row := range res.Rows {
			fmt.Fprintln(f, strings.Join(row, ","))
		}
	}
	for _, s := range res.Series {
		fmt.Fprintf(f, "# series %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(f, "%g,%g\n", p.X, p.Y)
		}
	}
	for _, n := range res.Notes {
		fmt.Fprintf(f, "# note: %s\n", n)
	}
	return nil
}

func print_(res *turbulence.Result, points bool) {
	if points {
		fmt.Print(res.String())
		fmt.Println()
		return
	}
	// Compact view: table rows and notes, series summarised.
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", res.ID, res.Title)
	if len(res.Columns) > 0 {
		fmt.Fprintf(&b, "%s\n", strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "%s\n", strings.Join(row, " | "))
		}
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			fmt.Fprintf(&b, "series %-40s  (empty)\n", s.Name)
			continue
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		fmt.Fprintf(&b, "series %-40s  %d points, x:[%.3g..%.3g] y:[%s..%s]\n",
			s.Name, len(s.Points), first.X, last.X, minY(s.Points), maxY(s.Points))
	}
	for _, n := range res.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteString("\n")
	fmt.Print(b.String())
}

// minY and maxY summarise a series' y-range for the compact view. An empty
// series — or one holding nothing but NaNs — has no extrema; rendering
// "n/a" beats the ±Inf (or a panic on pts[0]) the naive fold produces.
func minY(pts []turbulence.Point) string {
	m := math.Inf(1)
	for _, p := range pts {
		if p.Y < m {
			m = p.Y
		}
	}
	if math.IsInf(m, 1) {
		return "n/a"
	}
	return fmt.Sprintf("%.3g", m)
}

func maxY(pts []turbulence.Point) string {
	m := math.Inf(-1)
	for _, p := range pts {
		if p.Y > m {
			m = p.Y
		}
	}
	if math.IsInf(m, -1) {
		return "n/a"
	}
	return fmt.Sprintf("%.3g", m)
}
