// Command turbulence regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	turbulence [-seed N] [-experiment id] [-parallel N] [-scenario name]
//	           [-retention retain|drop|stream] [-shard i/n] [-progress]
//	           [-json] [-csv dir] [-points] [-list] [-list-scenarios]
//
// With no -experiment it runs everything, printing each artifact's rows,
// series summaries and headline notes. -points includes full series data
// (suitable for piping into a plotting tool); -json emits the same
// artifacts as one machine-readable JSON array (rows, series, notes)
// instead of text. -parallel fans independent pair runs out across a
// worker pool (0, the default, uses every core); output is byte-identical
// to -parallel 1, just faster.
//
// -scenario streams every Table 1 pair run under a named netem scenario
// (bursty loss, time-varying bandwidth, AQM, cross traffic), regenerating
// the whole evaluation as a what-if under impaired network conditions;
// -list-scenarios enumerates the library. Identical seed and scenario
// reproduce identical output at any -parallel setting.
//
// -retention selects what the shared pair-run sweep keeps per run:
// "retain" (default) holds full packet captures and regenerates every
// experiment; "drop" profiles then frees each trace; "stream" never
// stores records at all — captured packets feed online analyzers and the
// sweep runs in a few KB of analyzer state per worker. Under drop/stream
// only the trace-free experiments regenerate (reports, probes, profiles);
// with no -experiment the list narrows to them automatically.
//
// -shard i/n deterministically carves the experiment list into n strided
// slices and runs only the i-th (0-based), so n processes or machines
// regenerate the full evaluation in parallel with no coordination:
//
//	turbulence -shard 0/3 & turbulence -shard 1/3 & turbulence -shard 2/3
//
// Every result carries its scenario, seed and shard in the -json output,
// so merged shard outputs are self-describing.
//
// -progress reports each completed pair run on stderr while experiments
// regenerate. Interrupting (ctrl-C) cancels in-flight simulation promptly
// — mid-run, between events — and exits after the current bookkeeping.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"turbulence"
)

func main() {
	seed := flag.Int64("seed", 2002, "base random seed (runs are deterministic per seed)")
	experiment := flag.String("experiment", "", "run a single experiment id (default: all)")
	parallel := flag.Int("parallel", 0, "worker pool size for independent pair runs (1 = sequential, 0 = all cores); results are identical either way")
	retention := flag.String("retention", "retain", "what the shared pair-run sweep keeps per run: retain (full packet captures, all experiments), drop (profile then free each trace), stream (never store records; online analyzers only, lowest memory). drop/stream regenerate only trace-free experiments (reports, probes, profiles)")
	scenario := flag.String("scenario", "", "stream the pair runs under a named netem scenario (see -list-scenarios)")
	shard := flag.String("shard", "", "run the i-th of n strided slices of the experiment list, as \"i/n\" (0-based); all shards together reproduce the full run")
	progress := flag.Bool("progress", false, "report each completed pair run on stderr")
	jsonOut := flag.Bool("json", false, "emit results as one machine-readable JSON array on stdout instead of text")
	list := flag.Bool("list", false, "list experiment ids and exit")
	listScenarios := flag.Bool("list-scenarios", false, "list netem scenario names and exit")
	points := flag.Bool("points", false, "print full series point data")
	csvDir := flag.String("csv", "", "also write each experiment's series/rows as CSV files into this directory")
	flag.Parse()

	if *list {
		for _, id := range turbulence.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	if *listScenarios {
		for _, sc := range turbulence.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}

	ids := turbulence.ExperimentIDs()
	if *experiment != "" {
		ids = []string{*experiment}
	}
	if *shard != "" {
		var err error
		if ids, err = shardIDs(ids, *shard); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(2)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
	}

	// Ctrl-C cancels in-flight simulation cooperatively (checked between
	// simulation events); a second ctrl-C kills the process the hard way.
	// The handler must unregister after the first signal, or NotifyContext
	// would keep swallowing the later ones.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-sigCtx.Done()
		stop()
	}()

	ctx := turbulence.NewExperimentContext(*seed).SetParallel(*parallel).SetCancel(sigCtx)
	switch *retention {
	case "retain":
	case "drop":
		ctx.SetRetention(turbulence.DropTracesAfterProfile)
	case "stream":
		ctx.SetRetention(turbulence.StreamProfiles)
	default:
		fmt.Fprintf(os.Stderr, "turbulence: bad -retention %q (want retain, drop or stream)\n", *retention)
		os.Exit(2)
	}
	if *retention != "retain" && *experiment == "" {
		// Running "everything" under reduced retention would fail on the
		// first trace-bound experiment; restrict to the trace-free set.
		ids = traceFreeIDs(ids)
	}
	if *progress {
		ctx.SetProgress(func(p turbulence.Progress) {
			status := "ok"
			if p.Err != nil {
				status = "error: " + p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "turbulence: run %d/%d %s %s\n", p.Done, p.Total, p.Key, status)
		})
	}
	if *scenario != "" {
		sc, err := turbulence.FindScenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
		ctx.SetScenario(sc)
	}
	collected := []*turbulence.Result{} // non-nil: -json promises an array, never null
	for _, id := range ids {
		// An interrupt that landed during a cache-hit experiment (no
		// Runner call to surface it) must still stop the sweep.
		if sigCtx.Err() != nil {
			fmt.Fprintln(os.Stderr, "turbulence: interrupted")
			os.Exit(130)
		}
		res, err := turbulence.RunExperiment(ctx, id)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "turbulence: interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "turbulence: %s: %v\n", id, err)
			os.Exit(1)
		}
		res.Shard = *shard
		if *jsonOut {
			collected = append(collected, res)
		} else {
			print_(res, *points)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "turbulence: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(collected); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			os.Exit(1)
		}
	}
}

// traceFreeIDs filters the experiment list down to those that regenerate
// without retained packet captures.
func traceFreeIDs(ids []string) []string {
	var out []string
	for _, id := range ids {
		if turbulence.ExperimentTraceFree(id) {
			out = append(out, id)
		}
	}
	return out
}

// shardIDs parses "i/n" and returns the strided slice {ids[j] : j%n == i},
// mirroring Plan.Shard so the sharding story is one idea at both layers.
func shardIDs(ids []string, spec string) ([]string, error) {
	// strconv, not Sscanf: the whole spec must parse, so a typo like
	// "1/34x" is rejected instead of silently running shard 1/3.
	is, ns, ok := strings.Cut(spec, "/")
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if !ok || err1 != nil || err2 != nil || n <= 0 || i < 0 || i >= n {
		return nil, fmt.Errorf("bad -shard %q (want \"i/n\" with 0 <= i < n)", spec)
	}
	var out []string
	for j, id := range ids {
		if j%n == i {
			out = append(out, id)
		}
	}
	return out, nil
}

// writeCSV emits one file per experiment: table rows first (if any), then
// each series as x,y pairs under a "# series <name>" banner — trivially
// splittable for gnuplot or a spreadsheet.
func writeCSV(dir string, res *turbulence.Result) error {
	f, err := os.Create(dir + "/" + res.ID + ".csv")
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s: %s\n", res.ID, res.Title)
	if len(res.Columns) > 0 {
		fmt.Fprintln(f, strings.Join(res.Columns, ","))
		for _, row := range res.Rows {
			fmt.Fprintln(f, strings.Join(row, ","))
		}
	}
	for _, s := range res.Series {
		fmt.Fprintf(f, "# series %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(f, "%g,%g\n", p.X, p.Y)
		}
	}
	for _, n := range res.Notes {
		fmt.Fprintf(f, "# note: %s\n", n)
	}
	return nil
}

func print_(res *turbulence.Result, points bool) {
	if points {
		fmt.Print(res.String())
		fmt.Println()
		return
	}
	// Compact view: table rows and notes, series summarised.
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", res.ID, res.Title)
	if len(res.Columns) > 0 {
		fmt.Fprintf(&b, "%s\n", strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "%s\n", strings.Join(row, " | "))
		}
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			fmt.Fprintf(&b, "series %-40s  (empty)\n", s.Name)
			continue
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		fmt.Fprintf(&b, "series %-40s  %d points, x:[%.3g..%.3g] y:[%s..%s]\n",
			s.Name, len(s.Points), first.X, last.X, minY(s.Points), maxY(s.Points))
	}
	for _, n := range res.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteString("\n")
	fmt.Print(b.String())
}

// minY and maxY summarise a series' y-range for the compact view. An empty
// series — or one holding nothing but NaNs — has no extrema; rendering
// "n/a" beats the ±Inf (or a panic on pts[0]) the naive fold produces.
func minY(pts []turbulence.Point) string {
	m := math.Inf(1)
	for _, p := range pts {
		if p.Y < m {
			m = p.Y
		}
	}
	if math.IsInf(m, 1) {
		return "n/a"
	}
	return fmt.Sprintf("%.3g", m)
}

func maxY(pts []turbulence.Point) string {
	m := math.Inf(-1)
	for _, p := range pts {
		if p.Y > m {
			m = p.Y
		}
	}
	if math.IsInf(m, -1) {
		return "n/a"
	}
	return fmt.Sprintf("%.3g", m)
}
