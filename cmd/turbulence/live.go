package main

import (
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"turbulence"
)

// runListen is the -listen mode: bind the streaming servers to real UDP
// sockets on the given IP and serve the clip library until interrupted.
func runListen(ip string, seed int64, metricsAddr string, pprof bool) int {
	addr, err := turbulence.ParseAddr(ip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbulence: -listen:", err)
		return 2
	}
	var reg *turbulence.MetricsRegistry
	if metricsAddr != "" {
		reg = turbulence.NewMetricsRegistry()
	}
	lt, err := turbulence.NewLiveTransport(turbulence.LiveTransportConfig{
		BindIP:  addr,
		Seed:    seed,
		Metrics: reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		return 1
	}
	defer lt.Close()
	if _, err := turbulence.ServeLive(lt, logf); err != nil {
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		return 1
	}
	if metricsAddr != "" {
		if err := serveMetrics(metricsAddr, reg, pprof); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			return 1
		}
	}
	logf("turbulence: live server on %s (wms ctl 1755, rdt ctl 554); ctrl-C stops", ip)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	<-sigs
	logf("turbulence: live server stopping")
	return 0
}

// runPlay is the -play mode: stream one clip from a live server over real
// UDP, then print the session report (profile + payload digest).
func runPlay(serverIP, bindIP, clipSpec string, seed int64, metricsAddr string, pprof bool, timeout time.Duration) int {
	server, err := turbulence.ParseAddr(serverIP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbulence: -play:", err)
		return 2
	}
	bind, err := turbulence.ParseAddr(bindIP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbulence: -bind:", err)
		return 2
	}
	clip, err := parseClip(clipSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		return 2
	}
	var reg *turbulence.MetricsRegistry
	if metricsAddr != "" {
		reg = turbulence.NewMetricsRegistry()
	}
	lt, err := turbulence.NewLiveTransport(turbulence.LiveTransportConfig{
		BindIP:  bind,
		Seed:    seed,
		Metrics: reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		return 1
	}
	defer lt.Close()
	if metricsAddr != "" {
		if err := serveMetrics(metricsAddr, reg, pprof); err != nil {
			fmt.Fprintln(os.Stderr, "turbulence:", err)
			return 1
		}
	}
	logf("turbulence: playing %s from %s (%v of media; live sessions run in real time)",
		clip.Name(), serverIP, clip.Duration)
	rep, err := turbulence.PlayLive(lt, server, clip, timeout, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turbulence:", err)
		return 1
	}
	fmt.Printf("live play %s from %s: units=%d lost=%d bytes=%d sendErrs=%d elapsed=%s\n",
		clip.Name(), serverIP, rep.Units, rep.UnitsLost, rep.Bytes, rep.SendErrors,
		rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("profile: %s\n", rep.Profile)
	fmt.Printf("digest: %s\n", rep.Digest)
	return 0
}

// parseClip resolves the -clip spec ("set/class", class by name or Table 1
// suffix) to the Windows Media clip of that pair.
func parseClip(spec string) (turbulence.Clip, error) {
	ss, cs, ok := strings.Cut(spec, "/")
	set, err := strconv.Atoi(ss)
	class, cok := turbulence.ParseClass(cs)
	if !ok || err != nil || !cok || set <= 0 {
		return turbulence.Clip{}, fmt.Errorf("bad -clip %q (want set/class, e.g. 2/low or 6/v)", spec)
	}
	clip, found := turbulence.FindClip(set, turbulence.WindowsMedia, class)
	if !found {
		return turbulence.Clip{}, fmt.Errorf("no clip for set %d class %s", set, class)
	}
	return clip, nil
}
