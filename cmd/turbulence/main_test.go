package main

import (
	"strings"
	"testing"

	"turbulence"
)

// TestShardIDsStrict pins the strict -shard parser: good specs slice the
// id list stridedly, and every malformed spec is rejected rather than
// silently misread.
func TestShardIDsStrict(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e"}
	got, err := shardIDs(ids, "1/2")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "b,d" {
		t.Fatalf("shard 1/2 = %v", got)
	}
	got, err = shardIDs(ids, "0/1")
	if err != nil || len(got) != 5 {
		t.Fatalf("shard 0/1 = %v, %v", got, err)
	}
	for _, bad := range []string{"", "1", "1/", "/3", "2/2", "3/2", "-1/2", "1/0", "1/-2", "1/34x", "x/3", "1/3/5", "1 / 3"} {
		if _, err := shardIDs(ids, bad); err == nil {
			t.Errorf("shard spec %q accepted", bad)
		}
	}
}

// TestParseRetention pins the strict -retention values.
func TestParseRetention(t *testing.T) {
	cases := map[string]turbulence.TraceRetention{
		"retain": turbulence.RetainTraces,
		"drop":   turbulence.DropTracesAfterProfile,
		"stream": turbulence.StreamProfiles,
	}
	for s, want := range cases {
		got, err := parseRetention(s)
		if err != nil || got != want {
			t.Errorf("parseRetention(%q) = %v, %v", s, got, err)
		}
	}
	for _, bad := range []string{"", "Retain", "keep", "streaming", "drop "} {
		if _, err := parseRetention(bad); err == nil {
			t.Errorf("retention %q accepted", bad)
		}
	}
}

// TestModeConflicts pins the -serve/-work mutual-exclusion rules.
func TestModeConflicts(t *testing.T) {
	ok := func(serve, work, experiment, shard, pairs, scenario, checkpoint string) {
		t.Helper()
		if err := modeConflicts(serve, work, experiment, shard, pairs, scenario, checkpoint, "", false, "", "", "", "retain", false); err != nil {
			t.Errorf("unexpected conflict: %v", err)
		}
	}
	bad := func(serve, work, experiment, shard, pairs, scenario, checkpoint, want string) {
		t.Helper()
		err := modeConflicts(serve, work, experiment, shard, pairs, scenario, checkpoint, "", false, "", "", "", "retain", false)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("modeConflicts(%q,%q,%q,%q,%q,%q,%q) = %v, want mention of %s",
				serve, work, experiment, shard, pairs, scenario, checkpoint, err, want)
		}
	}
	// The classic single-process modes stay unconstrained.
	ok("", "", "table1", "1/3", "", "dsl", "")
	// Either service mode alone is fine, serve with plan-shaping flags and
	// a checkpoint too.
	ok(":8080", "", "", "", "1/low,3/l", "dsl", "sweep.ckpt")
	ok("", "host:8080", "", "", "", "", "")
	bad(":8080", "host:8080", "", "", "", "", "", "mutually exclusive")
	bad(":8080", "", "table1", "", "", "", "", "-experiment")
	bad("", "host:8080", "fig01", "", "", "", "", "-experiment")
	bad(":8080", "", "", "0/2", "", "", "", "-shard")
	bad("", "host:8080", "", "1/3", "", "", "", "-shard")
	bad("", "host:8080", "", "", "1/low", "", "", "-pairs")
	bad("", "host:8080", "", "", "", "dsl", "", "-scenario")
	// The journal is coordinator state: -checkpoint needs -serve.
	bad("", "host:8080", "", "", "", "", "sweep.ckpt", "-checkpoint")
	bad("", "", "", "", "", "", "sweep.ckpt", "-checkpoint")

	// -metrics meters the local sweep only; -pprof needs a server.
	check := func(serve, work, metrics string, pprof bool, want string) {
		t.Helper()
		err := modeConflicts(serve, work, "", "", "", "", "", metrics, pprof, "", "", "", "retain", false)
		switch {
		case want == "" && err != nil:
			t.Errorf("unexpected conflict: %v", err)
		case want != "" && (err == nil || !strings.Contains(err.Error(), want)):
			t.Errorf("modeConflicts(serve=%q, work=%q, metrics=%q, pprof=%v) = %v, want mention of %s",
				serve, work, metrics, pprof, err, want)
		}
	}
	check("", "", ":9090", false, "")
	check("", "", ":9090", true, "")
	check(":8080", "", "", true, "")
	check(":8080", "", ":9090", false, "-metrics")
	check("", "host:8080", ":9090", false, "-metrics")
	check("", "", "", true, "-pprof")
	check("", "host:8080", "", true, "-pprof")

	// The live transport modes are their own axis: either alone is fine
	// (with or without -metrics), but they never combine with each other or
	// with the simulation service/experiment/shard flags.
	live := func(serve, work, experiment, shard, metrics, listen, play, want string) {
		t.Helper()
		err := modeConflicts(serve, work, experiment, shard, "", "", "", metrics, false, listen, play, "", "retain", false)
		switch {
		case want == "" && err != nil:
			t.Errorf("unexpected conflict: %v", err)
		case want != "" && (err == nil || !strings.Contains(err.Error(), want)):
			t.Errorf("modeConflicts(listen=%q, play=%q, serve=%q, work=%q, experiment=%q, shard=%q) = %v, want mention of %s",
				listen, play, serve, work, experiment, shard, err, want)
		}
	}
	live("", "", "", "", "", "127.0.0.1", "", "")
	live("", "", "", "", "", "", "127.0.0.1", "")
	live("", "", "", "", ":9090", "127.0.0.1", "", "")
	live("", "", "", "", ":9090", "", "127.0.0.1", "")
	live("", "", "", "", "", "127.0.0.1", "10.0.0.2", "mutually exclusive")
	live(":8080", "", "", "", "", "127.0.0.1", "", "-serve")
	live("", "host:8080", "", "", "", "127.0.0.1", "", "-serve")
	live(":8080", "", "", "", "", "", "127.0.0.1", "-serve")
	live("", "host:8080", "", "", "", "", "127.0.0.1", "-serve")
	live("", "", "table1", "", "", "127.0.0.1", "", "-experiment")
	live("", "", "fig01", "", "", "", "127.0.0.1", "-experiment")
	live("", "", "", "1/3", "", "127.0.0.1", "", "-shard")
	live("", "", "", "0/2", "", "", "127.0.0.1", "-shard")

	// The result store caches simulated cells, so it needs a mode that
	// simulates them — and a plain sweep must run a retention that yields
	// profiles without traces. -adaptive-leases is dispatcher policy.
	cache := func(serve, work, listen, play, resultStore, retention string, adaptive bool, want string) {
		t.Helper()
		err := modeConflicts(serve, work, "", "", "", "", "", "", false, listen, play, resultStore, retention, adaptive)
		switch {
		case want == "" && err != nil:
			t.Errorf("unexpected conflict: %v", err)
		case want != "" && (err == nil || !strings.Contains(err.Error(), want)):
			t.Errorf("modeConflicts(serve=%q, work=%q, listen=%q, play=%q, resultStore=%q, retention=%q, adaptive=%v) = %v, want mention of %s",
				serve, work, listen, play, resultStore, retention, adaptive, err, want)
		}
	}
	// A plain sweep caches fine under drop or stream, and either service
	// mode keeps its usual retention (workers stream internally).
	cache("", "", "", "", "cache", "drop", false, "")
	cache("", "", "", "", "cache", "stream", false, "")
	cache(":8080", "", "", "", "cache", "retain", false, "")
	cache("", "host:8080", "", "", "cache", "retain", false, "")
	cache(":8080", "", "", "", "cache", "retain", true, "")
	cache(":8080", "", "", "", "", "retain", true, "")
	// Plain sweep + retain would keep traces the store can't hold.
	cache("", "", "", "", "cache", "retain", false, "-retention")
	// Live transport has no simulated cells to cache.
	cache("", "", "127.0.0.1", "", "cache", "drop", false, "-result-store")
	cache("", "", "", "127.0.0.1", "cache", "drop", false, "-result-store")
	// Lease sizing is coordinator policy.
	cache("", "", "", "", "", "retain", true, "-adaptive-leases")
	cache("", "host:8080", "", "", "", "retain", true, "-adaptive-leases")
}

// TestParsePairs pins the -pairs parser: names and suffixes resolve, the
// empty spec means the default axis, and typos fail loudly.
func TestParsePairs(t *testing.T) {
	keys, err := parsePairs("1/low,3/l,6/very-high,2/h")
	if err != nil {
		t.Fatal(err)
	}
	want := []turbulence.PairKey{
		{Set: 1, Class: turbulence.Low},
		{Set: 3, Class: turbulence.Low},
		{Set: 6, Class: turbulence.VeryHigh},
		{Set: 2, Class: turbulence.High},
	}
	if len(keys) != len(want) {
		t.Fatalf("parsed %d keys, want %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("key %d = %v, want %v", i, keys[i], want[i])
		}
	}
	if keys, err := parsePairs(""); err != nil || keys != nil {
		t.Fatalf("empty spec = %v, %v (want nil, nil)", keys, err)
	}
	for _, bad := range []string{"1", "1/", "/low", "0/low", "-1/h", "1/medium", "one/low", "1/low,", "1/low 3/low"} {
		if _, err := parsePairs(bad); err == nil {
			t.Errorf("pairs spec %q accepted", bad)
		}
	}
}
