// Command mediatracker streams one or more Windows Media clips from the
// simulated testbed and records application-layer statistics, mirroring
// the paper's MediaTracker tool (an instrumented MediaPlayer).
//
// Usage:
//
//	mediatracker [-seed N] [-clip set/M-class] [-playlist "1/M-h,5/M-l"] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"turbulence/internal/eventsim"
	"turbulence/internal/media"
	"turbulence/internal/tracker"

	"turbulence/internal/core"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	clip := flag.String("clip", "5/M-l", "clip reference (set/M-class, e.g. 1/M-h)")
	playlist := flag.String("playlist", "", "comma-separated clip refs; overrides -clip")
	csvPath := flag.String("csv", "", "write per-second samples to this CSV file")
	flag.Parse()

	refs := []string{*clip}
	if *playlist != "" {
		refs = strings.Split(*playlist, ",")
	}
	reports, err := runPlaylist(*seed, refs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mediatracker:", err)
		os.Exit(1)
	}
	for _, r := range reports {
		fmt.Println(r)
		fmt.Printf("  startup=%v playFrames=%d/%d loss=%.2f%%\n",
			r.StartupDelay(), r.FramesPlayed, r.FramesExpected, r.LossRate()*100)
	}
	if *csvPath != "" && len(reports) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mediatracker:", err)
			os.Exit(1)
		}
		defer f.Close()
		for _, r := range reports {
			if err := r.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "mediatracker:", err)
				os.Exit(1)
			}
		}
		fmt.Println("wrote", *csvPath)
	}
}

// runPlaylist streams the listed clips sequentially on a fresh testbed.
func runPlaylist(seed int64, refs []string) ([]*tracker.Report, error) {
	tb := core.NewTestbed(seed)
	var entries []tracker.PlaylistEntry
	var horizon float64 = 30
	for _, ref := range refs {
		ref = strings.TrimSpace(ref)
		clip, ok := findByRef(ref, media.WindowsMedia)
		if !ok {
			return nil, fmt.Errorf("unknown Windows Media clip %q", ref)
		}
		entries = append(entries, tracker.PlaylistEntry{ClipRef: ref, Format: media.WindowsMedia})
		horizon += clip.Duration.Seconds() + 60
	}
	// All Windows Media clips live at their set's site; a playlist may
	// span sites, so route each entry through its own site server. The
	// simplest faithful arrangement runs per-site playlists sequentially.
	var reports []*tracker.Report
	runOne := func(entry tracker.PlaylistEntry, after func()) {
		set := setOf(entry.ClipRef)
		site := tb.Site(set)
		tracker.StartMediaTracker(tb.Client, site.WMS, entry.ClipRef, 4101, 4102, func(r *tracker.Report) {
			reports = append(reports, r)
			after()
		})
	}
	var chain func(i int)
	chain = func(i int) {
		if i >= len(entries) {
			return
		}
		runOne(entries[i], func() { chain(i + 1) })
	}
	chain(0)
	if err := tb.Net.Run(eventsim.At(horizon)); err != nil {
		return nil, err
	}
	if len(reports) != len(entries) {
		return reports, fmt.Errorf("only %d/%d playlist entries completed", len(reports), len(entries))
	}
	return reports, nil
}

// findByRef parses "set/X-class" references.
func findByRef(ref string, f media.Format) (media.Clip, bool) {
	for _, c := range media.AllClips() {
		if c.Name() == ref && c.Format == f {
			return c, true
		}
	}
	return media.Clip{}, false
}

func setOf(ref string) int {
	var set int
	fmt.Sscanf(ref, "%d/", &set)
	return set
}
