package turbulence_test

import (
	"fmt"
	"time"

	"turbulence"
)

// ExampleRunPair runs the paper's unit experiment and prints the headline
// contrast between the two players.
func ExampleRunPair() {
	run, err := turbulence.RunPair(2002, 1, turbulence.High)
	if err != nil {
		panic(err)
	}
	cmp := turbulence.Compare(run)
	fmt.Printf("WMP CBR: %t, fragments: %t\n", cmp.WMP.CBR, cmp.WMP.FragShare > 0)
	fmt.Printf("Real CBR: %t, fragments: %t\n", cmp.Real.CBR, cmp.Real.FragShare > 0)
	// Output:
	// WMP CBR: true, fragments: true
	// Real CBR: false, fragments: false
}

// ExampleCompileFilter shows the Ethereal-style display-filter language.
func ExampleCompileFilter() {
	run, err := turbulence.RunPair(2002, 1, turbulence.High)
	if err != nil {
		panic(err)
	}
	fullFragments, err := turbulence.CompileFilter("ip.contfrag && size == 1514")
	if err != nil {
		panic(err)
	}
	sub := fullFragments.Apply(run.Trace)
	fmt.Printf("matched MTU-sized continuation fragments: %t\n", sub.Len() > 0)
	for i := 0; i < sub.Len(); i++ {
		if !sub.At(i).IsContinuationFragment() || sub.At(i).WireLen != 1514 {
			fmt.Println("filter leaked a non-matching record")
		}
	}
	// Output:
	// matched MTU-sized continuation fragments: true
}

// ExampleFitModel demonstrates the Section IV recipe: fit a flow model
// from a measurement, then generate synthetic traffic with the same
// turbulence.
func ExampleFitModel() {
	run, err := turbulence.RunPair(2002, 1, turbulence.High)
	if err != nil {
		panic(err)
	}
	model := turbulence.FitModel(run.WMPFlow)
	synthetic := turbulence.GenerateFlow(model, turbulence.NewRNG(1), 30*time.Second, run.WMPFlow.Flow)
	prof := turbulence.ProfileFlow(synthetic.SplitFlows()[0])
	fmt.Printf("synthetic flow is CBR: %t, fragmented: %t\n", prof.CBR, prof.FragShare > 0.5)
	// Output:
	// synthetic flow is CBR: true, fragmented: true
}

// ExampleLibrary lists the Table 1 data sets.
func ExampleLibrary() {
	for _, set := range turbulence.Library() {
		fmt.Printf("set %d: %s, %d clips\n", set.Set, set.Content, len(set.Clips()))
	}
	// Output:
	// set 1: Sports, 4 clips
	// set 2: Commercial, 4 clips
	// set 3: Sports, 4 clips
	// set 4: Music TV, 4 clips
	// set 5: News, 4 clips
	// set 6: Movie clip, 6 clips
}

// ExampleNewPlan declares a (scenario × pair × variant) run space and
// shards it — all pure description, no simulation runs.
func ExampleNewPlan() {
	dsl, err := turbulence.FindScenario("dsl")
	if err != nil {
		panic(err)
	}
	// All 13 Table 1 pairs, faithful and DSL paths, two ablation points.
	plan := turbulence.NewPlan(2002).
		UnderScenarios(nil, dsl).
		WithVariants(
			turbulence.Variant{Name: "faithful"},
			turbulence.Variant{Name: "nofrag", Opts: turbulence.Options{WMSUnitCap: 1400}},
		)
	fmt.Printf("cells: %d\n", plan.Size())
	shard := plan.Shard(1, 4)
	fmt.Printf("shard 1/4: %d cells, first %s\n", shard.Size(), shard.Keys()[0])
	// A Runner would execute it:
	//   results, err := turbulence.NewRunner(turbulence.WithWorkers(0)).Run(plan)
	// and MergeRuns over every shard's results reassembles the matrix.

	// Output:
	// cells: 52
	// shard 1/4: 13 cells, first faithful/set1/high
}
