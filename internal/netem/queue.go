package netem

import "turbulence/internal/eventsim"

// DropTail admits every packet the physical FIFO can hold — the classic
// (and the seed testbed's) queue discipline. Overflow drops are handled by
// the hop's limit check before the policy is consulted.
type DropTail struct{}

// Admit implements Queue.
func (DropTail) Admit(*eventsim.RNG, int, int) bool { return true }

// RED is Random Early Detection (Floyd & Jacobson 1993): the router
// tracks an EWMA of its queue occupancy and probabilistically drops
// arrivals once the average crosses MinTh, with the drop probability
// rising to MaxP at MaxTh and certain drop beyond. Early drops signal
// congestion to responsive flows before the queue overflows; against the
// paper's unresponsive streaming flows they act as a burst-smearing loss
// process tied to queue buildup.
type RED struct {
	MinTh, MaxTh float64 // thresholds on the average queue, in packets
	MaxP         float64 // drop probability at MaxTh
	Weight       float64 // EWMA weight per arrival (typically 0.002-0.05)

	avg   float64
	count int // packets since the last early drop
}

// NewRED builds a RED policy with the given thresholds; weight defaults to
// 0.02 if non-positive.
func NewRED(minTh, maxTh, maxP, weight float64) *RED {
	if weight <= 0 {
		weight = 0.02
	}
	if maxTh <= minTh {
		maxTh = minTh + 1
	}
	return &RED{MinTh: minTh, MaxTh: maxTh, MaxP: maxP, Weight: weight}
}

// AvgQueue exposes the current average occupancy estimate.
func (r *RED) AvgQueue() float64 { return r.avg }

// Admit implements Queue.
func (r *RED) Admit(rng *eventsim.RNG, queued, limit int) bool {
	r.avg += r.Weight * (float64(queued) - r.avg)
	switch {
	case r.avg < r.MinTh:
		r.count = 0
		return true
	case r.avg >= r.MaxTh:
		r.count = 0
		return false
	}
	pb := r.MaxP * (r.avg - r.MinTh) / (r.MaxTh - r.MinTh)
	// Spread drops out: scale by the run of admissions since the last
	// drop, as in the original gentle-RED recommendation.
	pa := pb
	if d := 1 - float64(r.count)*pb; d > pb {
		pa = pb / d
	} else {
		pa = 1
	}
	r.count++
	if rng.Bernoulli(pa) {
		r.count = 0
		return false
	}
	return true
}
