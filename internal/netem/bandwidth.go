package netem

import (
	"math"
	"time"

	"turbulence/internal/eventsim"
)

// minBandwidth floors every profile so a misconfigured schedule can never
// stall the link entirely (transmissionDelay at 0 bps would be instant,
// not infinite, which would be the wrong failure mode anyway).
const minBandwidth = 1e3

// Constant is a fixed-rate profile in bits/second.
type Constant float64

// BandwidthAt implements BandwidthProfile.
func (c Constant) BandwidthAt(eventsim.Time) float64 {
	return clampBW(float64(c))
}

// Scaled multiplies the hop's nominal bandwidth by a fixed factor; use it
// with Impairment.Bandwidth to derate a link without knowing its absolute
// rate.
func Scaled(factor float64) func(baseBps float64) BandwidthProfile {
	return func(base float64) BandwidthProfile { return Constant(base * factor) }
}

// Step is one segment boundary of a StepSchedule.
type Step struct {
	At  time.Duration // simulated time the new rate takes effect
	Bps float64
}

// StepSchedule is a piecewise-constant rate profile: Initial until the
// first change, then each Step's rate from its time onward. Changes must
// be time-ascending.
type StepSchedule struct {
	Initial float64
	Changes []Step

	idx int // first change not yet in effect; cached for O(1) forward scans
}

// NewStepSchedule builds a schedule; changes must be in ascending order.
func NewStepSchedule(initial float64, changes ...Step) *StepSchedule {
	for i := 1; i < len(changes); i++ {
		if changes[i].At < changes[i-1].At {
			panic("netem: StepSchedule changes out of order")
		}
	}
	return &StepSchedule{Initial: initial, Changes: changes}
}

// BandwidthAt implements BandwidthProfile. Calls with non-decreasing now
// advance a cached cursor; a backwards call rescans from the start.
func (s *StepSchedule) BandwidthAt(now eventsim.Time) float64 {
	if s.idx > 0 && eventsim.Time(s.Changes[s.idx-1].At) > now {
		s.idx = 0 // time went backwards (fresh run reusing the profile)
	}
	for s.idx < len(s.Changes) && eventsim.Time(s.Changes[s.idx].At) <= now {
		s.idx++
	}
	if s.idx == 0 {
		return clampBW(s.Initial)
	}
	return clampBW(s.Changes[s.idx-1].Bps)
}

// Sinusoid oscillates around a base rate: base + amplitude*sin(2πt/period
// + phase). Models diurnal-style or oscillatory congestion at the scale of
// a streaming session.
type Sinusoid struct {
	Base, Amplitude float64
	Period          time.Duration
	Phase           float64 // radians
}

// BandwidthAt implements BandwidthProfile.
func (s Sinusoid) BandwidthAt(now eventsim.Time) float64 {
	if s.Period <= 0 {
		return clampBW(s.Base)
	}
	omega := 2 * math.Pi * float64(now) / float64(s.Period)
	return clampBW(s.Base + s.Amplitude*math.Sin(omega+s.Phase))
}

// ScaledSinusoid builds a sinusoid profile relative to the hop's nominal
// bandwidth: mean base*meanFactor, swing base*swingFactor.
func ScaledSinusoid(meanFactor, swingFactor float64, period time.Duration) func(baseBps float64) BandwidthProfile {
	return func(base float64) BandwidthProfile {
		return Sinusoid{Base: base * meanFactor, Amplitude: base * swingFactor, Period: period}
	}
}

// TraceProfile replays recorded bandwidth samples at a fixed interval —
// the hook for driving a hop from a real-world throughput trace. With Loop
// set the trace repeats; otherwise the last sample holds.
type TraceProfile struct {
	Interval time.Duration
	Samples  []float64
	Loop     bool
}

// BandwidthAt implements BandwidthProfile.
func (t *TraceProfile) BandwidthAt(now eventsim.Time) float64 {
	if len(t.Samples) == 0 || t.Interval <= 0 {
		return minBandwidth
	}
	i := int(time.Duration(now) / t.Interval)
	if i < 0 {
		i = 0
	}
	if i >= len(t.Samples) {
		if t.Loop {
			i %= len(t.Samples)
		} else {
			i = len(t.Samples) - 1
		}
	}
	return clampBW(t.Samples[i])
}

func clampBW(bps float64) float64 {
	if bps < minBandwidth {
		return minBandwidth
	}
	return bps
}
