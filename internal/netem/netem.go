// Package netem provides pluggable per-hop network impairment models for
// the netsim substrate: loss processes, time-varying bandwidth profiles,
// delay-jitter distributions, active queue management, and cross-traffic
// injectors that consume link capacity without materialising packets. The
// paper measured streaming turbulence over real Internet paths whose
// conditions fluctuate; netem is what lets the simulated testbed reproduce
// those dynamics — bursty loss, queue buildup, bandwidth brownouts —
// instead of the seed's fixed bandwidth / independent loss / uniform
// jitter hops.
//
// Models carry per-hop mutable state (a Gilbert–Elliott chain remembers
// its channel state, RED its average queue), so hops never share model
// instances: an Impairment is a bundle of factories, and every
// unidirectional hop builds its own private set at connect time. All
// randomness flows through the simulation's deterministic RNG, passed in
// by the caller, so a seed fixes every draw and scenario runs are exactly
// reproducible — sequentially or on a worker pool.
//
// On top of the models, the package ships a registry of named Scenarios
// (paper-baseline, dsl, cable, lossy-wifi, congested-peering,
// transatlantic, ...) describing how a whole path is impaired by hop role.
package netem

import (
	"time"

	"turbulence/internal/eventsim"
)

// LossModel decides whether a packet arriving at a hop is dropped by the
// link's loss process (as opposed to queue overflow, which the hop's queue
// handles).
type LossModel interface {
	// Drop reports whether the current packet is lost. Implementations
	// advance their internal state exactly once per call.
	Drop(rng *eventsim.RNG) bool
}

// BandwidthProfile yields the hop's output-link rate over simulated time.
type BandwidthProfile interface {
	// BandwidthAt returns the link rate in bits/second at time now. Calls
	// are made with non-decreasing now within one simulation run.
	BandwidthAt(now eventsim.Time) float64
}

// DelayJitter samples the extra per-packet queueing delay a hop adds on
// top of its fixed propagation delay.
type DelayJitter interface {
	// Draw samples one packet's jitter. Must be non-negative.
	Draw(rng *eventsim.RNG) time.Duration
}

// Queue is the hop's active-queue-management policy, consulted after the
// physical FIFO limit check: a packet that fits may still be dropped early
// (RED), which is how real routers signal congestion before overflow.
type Queue interface {
	// Admit reports whether a packet may enter a queue currently holding
	// queued datagrams out of a physical limit. Returning false is an
	// early (AQM) drop, counted separately from overflow.
	Admit(rng *eventsim.RNG, queued, limit int) bool
}

// CrossTraffic models background load sharing a hop's output link. Rather
// than materialising competing packets, implementations report the
// background bits offered to the link over an interval; the hop converts
// that into a capacity share and slows foreground serialization
// accordingly, so queue buildup and drops emerge from the same FIFO the
// foreground traffic uses.
type CrossTraffic interface {
	// BitsBetween returns the background bits offered during (from, to].
	// Calls are made with non-decreasing, non-overlapping intervals;
	// implementations advance internal state (on/off periods, arrival
	// clocks) up to to.
	BitsBetween(rng *eventsim.RNG, from, to eventsim.Time) float64
}

// HopModels bundles the built model instances of one unidirectional hop.
// Nil fields leave that aspect of the hop on its spec-driven default
// behaviour.
type HopModels struct {
	Loss      LossModel
	Bandwidth BandwidthProfile
	Jitter    DelayJitter
	Queue     Queue
	Cross     CrossTraffic
}

// Impairment describes how to impair one hop: a bundle of model factories.
// Fields are factories, not instances, because models are stateful and
// every unidirectional hop (forward and reverse directions included) needs
// a private copy. Nil factories keep the hop's default behaviour.
type Impairment struct {
	// Loss builds the hop's loss process.
	Loss func() LossModel
	// Bandwidth builds the hop's rate profile around the hop's nominal
	// (spec) bandwidth, so profiles can scale or modulate whatever the
	// path provides rather than hard-coding absolute rates.
	Bandwidth func(baseBps float64) BandwidthProfile
	// Jitter builds the hop's delay-jitter distribution.
	Jitter func() DelayJitter
	// Queue builds the hop's AQM policy for a FIFO of the given physical
	// limit.
	Queue func(limit int) Queue
	// Cross builds the hop's background-traffic injector.
	Cross func() CrossTraffic
}

// Zero reports whether the impairment changes nothing.
func (im Impairment) Zero() bool {
	return im.Loss == nil && im.Bandwidth == nil && im.Jitter == nil &&
		im.Queue == nil && im.Cross == nil
}

// Build instantiates fresh models for one hop. baseBps is the hop's
// nominal bandwidth; limit its physical queue capacity.
func (im Impairment) Build(baseBps float64, limit int) HopModels {
	var m HopModels
	if im.Loss != nil {
		m.Loss = im.Loss()
	}
	if im.Bandwidth != nil {
		m.Bandwidth = im.Bandwidth(baseBps)
	}
	if im.Jitter != nil {
		m.Jitter = im.Jitter()
	}
	if im.Queue != nil {
		m.Queue = im.Queue(limit)
	}
	if im.Cross != nil {
		m.Cross = im.Cross()
	}
	return m
}
