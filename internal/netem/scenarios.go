package netem

import (
	"math"
	"time"
)

// The built-in scenario library. Every scenario is calibrated against the
// Table 1 workload: the heaviest pair (set 6 very-high, ~1.37 Mbps
// combined) must still stream to completion, so impairments create
// turbulence — loss bursts, queue buildup, rate dips — without starving a
// session outright.
func init() {
	Register(&Scenario{
		Name: "paper-baseline",
		Description: "The paper's testbed unchanged: fixed bandwidths, independent " +
			"rare loss, uniform jitter with Pareto spikes. Byte-identical to running " +
			"with no scenario at all.",
		Hop: func(HopRole, int, int) Impairment { return Impairment{} },
	})

	Register(&Scenario{
		Name: "dsl",
		Description: "Client behind a 1.536 Mbps interleaved DSL line: the access hop " +
			"is derated to DSL rate with the interleaver's bell-shaped latency jitter " +
			"and rare line-code errors.",
		Hop: ForRole(RoleAccess, Impairment{
			Bandwidth: func(base float64) BandwidthProfile {
				return Constant(math.Min(base, 1.536e6))
			},
			Jitter: func() DelayJitter {
				return TruncNormal{Mean: 8 * time.Millisecond, StdDev: 3 * time.Millisecond,
					Min: time.Millisecond, Max: 30 * time.Millisecond}
			},
			Loss: func() LossModel { return Bernoulli(0.0005) },
		}),
	})

	Register(&Scenario{
		Name: "cable",
		Description: "Client on a 4 Mbps DOCSIS cable modem sharing the plant with " +
			"bursty neighbours: heavy-tailed on/off cross traffic plus short error " +
			"bursts from plant noise.",
		Hop: ForRole(RoleAccess, Impairment{
			Bandwidth: func(float64) BandwidthProfile { return Constant(4e6) },
			Cross: func() CrossTraffic {
				return &ParetoOnOff{Sources: 4, Rate: 600e3, Alpha: 1.5,
					OnMean: 2 * time.Second, OffMean: 6 * time.Second}
			},
			Loss: func() LossModel { return GEFromBurst(0.003, 5, 0.2) },
		}),
	})

	Register(&Scenario{
		Name: "lossy-wifi",
		Description: "Client on an early 802.11b link: bursty Gilbert-Elliott loss " +
			"(2% average concentrated in ~8-packet fade bursts) and contention jitter " +
			"with occasional long spikes.",
		Hop: ForRole(RoleAccess, Impairment{
			Loss: func() LossModel { return GEFromBurst(0.02, 8, 0.3) },
			Jitter: func() DelayJitter {
				return UniformSpike{Max: 2 * time.Millisecond, SpikeProb: 0.01,
					SpikeMax: 30 * time.Millisecond}
			},
		}),
		HorizonSlack: 30 * time.Second,
	})

	Register(&Scenario{
		Name: "congested-peering",
		Description: "A mid-path peering point runs hot: self-similar cross traffic " +
			"episodically fills the 45 Mbps link, RED sheds load as queues build, and " +
			"transit jitter grows.",
		Hop: func(r HopRole, index, pathHops int) Impairment {
			if r != RoleBackbone || index != pathHops/2 {
				return Impairment{}
			}
			return Impairment{
				Cross: func() CrossTraffic {
					return &ParetoOnOff{Sources: 8, Rate: 5.5e6, Alpha: 1.5,
						OnMean: 3 * time.Second, OffMean: 7 * time.Second}
				},
				Queue: func(limit int) Queue {
					return NewRED(float64(limit)/20, float64(limit)/3, 0.1, 0.02)
				},
				Jitter: func() DelayJitter {
					return TruncNormal{Mean: time.Millisecond, StdDev: time.Millisecond,
						Max: 10 * time.Millisecond}
				},
			}
		},
		HorizonSlack: time.Minute,
	})

	Register(&Scenario{
		Name: "transatlantic",
		Description: "Every transit hop behaves like a long-haul segment: bell-shaped " +
			"queueing jitter on each backbone hop inflates and spreads the RTT, with " +
			"mild correlated loss from distant congestion.",
		Hop: ForRole(RoleBackbone, Impairment{
			Jitter: func() DelayJitter {
				return TruncNormal{Mean: 3 * time.Millisecond, StdDev: 2 * time.Millisecond,
					Max: 20 * time.Millisecond}
			},
			Loss: func() LossModel { return GEFromBurst(0.002, 4, 0.15) },
		}),
		HorizonSlack: 30 * time.Second,
	})

	Register(&Scenario{
		Name: "brownout",
		Description: "The server-side bottleneck browns out mid-session: at t=60s its " +
			"rate steps down to 45% of nominal for 30 seconds, then recovers — a route " +
			"change onto a congested backup path and back.",
		Hop: ForRole(RoleBottleneck, Impairment{
			Bandwidth: func(base float64) BandwidthProfile {
				return NewStepSchedule(base,
					Step{At: 60 * time.Second, Bps: base * 0.45},
					Step{At: 90 * time.Second, Bps: base})
			},
		}),
		HorizonSlack: time.Minute,
	})

	Register(&Scenario{
		Name: "flash-crowd",
		Description: "The server site rides a popularity wave: its access rate " +
			"oscillates (+-30% around nominal, 50s period) under other viewers' " +
			"load, with a Poisson haze of request traffic on the same link.",
		Hop: ForRole(RoleBottleneck, Impairment{
			Bandwidth: ScaledSinusoid(1.0, 0.3, 50*time.Second),
			Cross: func() CrossTraffic {
				return &Poisson{PacketsPerSec: 30, PacketBytes: 400}
			},
		}),
		HorizonSlack: time.Minute,
	})

	Register(&Scenario{
		Name: "trace-wireless",
		Description: "The access link replays a recorded wireless throughput trace " +
			"(5s samples, looped) with fade-correlated loss — the template for " +
			"driving a hop from real-world measurements.",
		Hop: ForRole(RoleAccess, Impairment{
			Bandwidth: func(float64) BandwidthProfile {
				return &TraceProfile{Interval: 5 * time.Second, Loop: true, Samples: []float64{
					2.2e6, 1.9e6, 1.4e6, 1.7e6, 2.4e6, 1.1e6, 0.8e6, 1.5e6,
					2.0e6, 2.3e6, 1.2e6, 0.9e6, 1.6e6, 2.1e6, 1.8e6, 1.0e6,
				}}
			},
			Loss: func() LossModel { return GEFromBurst(0.008, 6, 0.25) },
		}),
		HorizonSlack: time.Minute,
	})
}

// ForRole builds a Scenario.Hop function applying one impairment to every
// hop of the given role and leaving the rest faithful — the common shape
// of both the built-in library and custom user scenarios.
func ForRole(r HopRole, im Impairment) func(HopRole, int, int) Impairment {
	return func(hr HopRole, _, _ int) Impairment {
		if hr != r {
			return Impairment{}
		}
		return im
	}
}
