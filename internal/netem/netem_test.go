package netem

import (
	"math"
	"testing"
	"time"

	"turbulence/internal/eventsim"
)

func TestBernoulliExtremes(t *testing.T) {
	rng := eventsim.NewRNG(1)
	if Bernoulli(0).Drop(rng) {
		t.Fatal("p=0 dropped a packet")
	}
	if !Bernoulli(1).Drop(rng) {
		t.Fatal("p=1 admitted a packet")
	}
	const n, p = 200000, 0.03
	drops := 0
	for i := 0; i < n; i++ {
		if Bernoulli(p).Drop(rng) {
			drops++
		}
	}
	if got := float64(drops) / n; math.Abs(got-p) > 0.005 {
		t.Fatalf("empirical loss %.4f, want ~%.4f", got, p)
	}
}

// TestGilbertElliottStationaryConvergence pins the cross-seed determinism
// requirement for the bursty loss model: over a long run the empirical
// drop rate converges to the chain's stationary loss probability.
func TestGilbertElliottStationaryConvergence(t *testing.T) {
	for _, seed := range []int64{1, 2002, 77} {
		rng := eventsim.NewRNG(seed)
		g := GEFromBurst(0.02, 8, 0.3)
		if got := g.Stationary(); math.Abs(got-0.02) > 1e-9 {
			t.Fatalf("GEFromBurst stationary %.6f, want 0.02", got)
		}
		const n = 400000
		drops := 0
		for i := 0; i < n; i++ {
			if g.Drop(rng) {
				drops++
			}
		}
		got := float64(drops) / n
		if math.Abs(got-g.Stationary()) > 0.004 {
			t.Fatalf("seed %d: empirical loss %.4f, stationary %.4f", seed, got, g.Stationary())
		}
	}
}

func TestGEFromBurstRejectsBadCalibration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("avgLoss >= lossBad did not panic")
		}
	}()
	GEFromBurst(0.3, 5, 0.2)
}

// TestGilbertElliottBurstiness verifies the point of the model: at equal
// average loss, GE concentrates drops into longer consecutive runs than
// the independent process.
func TestGilbertElliottBurstiness(t *testing.T) {
	const n = 500000
	meanBurst := func(drop func() bool) float64 {
		bursts, inBurst, length, total := 0, false, 0, 0
		for i := 0; i < n; i++ {
			if drop() {
				if !inBurst {
					bursts++
					inBurst = true
					length = 0
				}
				length++
				total++
			} else if inBurst {
				inBurst = false
			}
		}
		_ = length
		if bursts == 0 {
			return 0
		}
		return float64(total) / float64(bursts)
	}
	rngGE := eventsim.NewRNG(5)
	ge := GEFromBurst(0.02, 8, 0.3)
	rngBer := eventsim.NewRNG(5)
	ber := Bernoulli(0.02)
	geBurst := meanBurst(func() bool { return ge.Drop(rngGE) })
	berBurst := meanBurst(func() bool { return ber.Drop(rngBer) })
	if geBurst <= berBurst*1.2 {
		t.Fatalf("GE mean burst %.2f not clearly above Bernoulli %.2f", geBurst, berBurst)
	}
}

func TestConstantAndScaled(t *testing.T) {
	if got := Constant(5e6).BandwidthAt(0); got != 5e6 {
		t.Fatalf("Constant = %g", got)
	}
	if got := Constant(0).BandwidthAt(0); got != minBandwidth {
		t.Fatalf("zero rate not clamped: %g", got)
	}
	p := Scaled(0.5)(10e6)
	if got := p.BandwidthAt(eventsim.At(100)); got != 5e6 {
		t.Fatalf("Scaled = %g", got)
	}
}

func TestStepSchedule(t *testing.T) {
	s := NewStepSchedule(1e6,
		Step{At: 10 * time.Second, Bps: 5e5},
		Step{At: 20 * time.Second, Bps: 2e6})
	cases := []struct {
		at   float64
		want float64
	}{{0, 1e6}, {9.99, 1e6}, {10, 5e5}, {15, 5e5}, {20, 2e6}, {1000, 2e6}}
	for _, c := range cases {
		if got := s.BandwidthAt(eventsim.At(c.at)); got != c.want {
			t.Fatalf("at %gs: %g, want %g", c.at, got, c.want)
		}
	}
	// A backwards query (profile reused from time zero) rescans correctly.
	if got := s.BandwidthAt(eventsim.At(5)); got != 1e6 {
		t.Fatalf("backwards query: %g, want 1e6", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order changes did not panic")
		}
	}()
	NewStepSchedule(1, Step{At: 2 * time.Second}, Step{At: time.Second})
}

func TestSinusoid(t *testing.T) {
	s := Sinusoid{Base: 1e6, Amplitude: 4e5, Period: 40 * time.Second}
	if got := s.BandwidthAt(0); math.Abs(got-1e6) > 1 {
		t.Fatalf("at 0: %g", got)
	}
	if got := s.BandwidthAt(eventsim.At(10)); math.Abs(got-1.4e6) > 1 {
		t.Fatalf("at quarter period: %g", got)
	}
	if got := s.BandwidthAt(eventsim.At(30)); math.Abs(got-6e5) > 1 {
		t.Fatalf("at three quarters: %g", got)
	}
	deep := Sinusoid{Base: 1e3, Amplitude: 1e6, Period: 40 * time.Second}
	if got := deep.BandwidthAt(eventsim.At(30)); got != minBandwidth {
		t.Fatalf("trough not clamped: %g", got)
	}
}

func TestTraceProfile(t *testing.T) {
	tr := &TraceProfile{Interval: 5 * time.Second, Samples: []float64{1e6, 2e6, 3e6}}
	if got := tr.BandwidthAt(eventsim.At(4)); got != 1e6 {
		t.Fatalf("sample 0: %g", got)
	}
	if got := tr.BandwidthAt(eventsim.At(7)); got != 2e6 {
		t.Fatalf("sample 1: %g", got)
	}
	if got := tr.BandwidthAt(eventsim.At(100)); got != 3e6 {
		t.Fatalf("hold last: %g", got)
	}
	tr.Loop = true
	if got := tr.BandwidthAt(eventsim.At(16)); got != 1e6 {
		t.Fatalf("loop: %g", got)
	}
}

func TestUniformSpikeBounds(t *testing.T) {
	rng := eventsim.NewRNG(9)
	plain := UniformSpike{Max: 2 * time.Millisecond}
	for i := 0; i < 10000; i++ {
		j := plain.Draw(rng)
		if j < 0 || j >= 2*time.Millisecond {
			t.Fatalf("uniform jitter %v out of [0, 2ms)", j)
		}
	}
	spiky := UniformSpike{Max: 2 * time.Millisecond, SpikeProb: 0.2, SpikeMax: 30 * time.Millisecond}
	sawSpike := false
	for i := 0; i < 10000; i++ {
		j := spiky.Draw(rng)
		if j < 0 || j > 32*time.Millisecond {
			t.Fatalf("spiky jitter %v out of range", j)
		}
		if j > 2*time.Millisecond {
			sawSpike = true
		}
	}
	if !sawSpike {
		t.Fatal("no spikes observed at 20% spike probability")
	}
}

func TestTruncNormalBounds(t *testing.T) {
	rng := eventsim.NewRNG(11)
	tn := TruncNormal{Mean: 8 * time.Millisecond, StdDev: 3 * time.Millisecond,
		Min: time.Millisecond, Max: 30 * time.Millisecond}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		j := tn.Draw(rng)
		if j < time.Millisecond || j > 30*time.Millisecond {
			t.Fatalf("trunc-normal jitter %v out of [1ms, 30ms]", j)
		}
		sum += j
	}
	mean := sum / n
	if mean < 7*time.Millisecond || mean > 9*time.Millisecond {
		t.Fatalf("trunc-normal mean %v, want ~8ms", mean)
	}
}

func TestDropTailAdmitsEverything(t *testing.T) {
	rng := eventsim.NewRNG(1)
	q := DropTail{}
	for queued := 0; queued < 100; queued++ {
		if !q.Admit(rng, queued, 100) {
			t.Fatalf("DropTail refused at %d/100", queued)
		}
	}
}

func TestREDRegimes(t *testing.T) {
	rng := eventsim.NewRNG(3)
	r := NewRED(5, 15, 0.1, 0.2)
	// Empty queue: always admit.
	for i := 0; i < 100; i++ {
		if !r.Admit(rng, 0, 100) {
			t.Fatal("RED dropped below MinTh")
		}
	}
	// Saturated queue drives the average over MaxTh: certain drop.
	for i := 0; i < 200; i++ {
		r.Admit(rng, 60, 100)
	}
	if r.AvgQueue() < r.MaxTh {
		t.Fatalf("average %.1f did not cross MaxTh", r.AvgQueue())
	}
	if r.Admit(rng, 60, 100) {
		t.Fatal("RED admitted above MaxTh")
	}
	// Intermediate occupancy: some but not all packets admitted.
	r2 := NewRED(5, 15, 0.5, 1) // weight 1 pins avg to the instantaneous queue
	admits, drops := 0, 0
	for i := 0; i < 2000; i++ {
		if r2.Admit(rng, 10, 100) {
			admits++
		} else {
			drops++
		}
	}
	if admits == 0 || drops == 0 {
		t.Fatalf("RED between thresholds: admits=%d drops=%d, want both", admits, drops)
	}
}

func TestOnOffCBRLongRunShare(t *testing.T) {
	rng := eventsim.NewRNG(21)
	c := &OnOffCBR{Rate: 1e6, OnMean: 2 * time.Second, OffMean: 6 * time.Second}
	const horizon = 4000.0 // seconds
	var bits float64
	step := 50 * time.Millisecond
	for at := eventsim.Time(0); at < eventsim.At(horizon); at = at.Add(step) {
		bits += c.BitsBetween(rng, at, at.Add(step))
	}
	want := c.MeanLoadBits() * horizon
	if math.Abs(bits-want)/want > 0.15 {
		t.Fatalf("on/off CBR delivered %.3g bits, want ~%.3g", bits, want)
	}
}

func TestPoissonLongRunRate(t *testing.T) {
	rng := eventsim.NewRNG(22)
	p := &Poisson{PacketsPerSec: 200, PacketBytes: 500}
	const horizon = 500.0
	var bits float64
	step := 20 * time.Millisecond
	for at := eventsim.Time(0); at < eventsim.At(horizon); at = at.Add(step) {
		bits += p.BitsBetween(rng, at, at.Add(step))
	}
	want := 200.0 * 500 * 8 * horizon
	if math.Abs(bits-want)/want > 0.1 {
		t.Fatalf("poisson delivered %.3g bits, want ~%.3g", bits, want)
	}
}

func TestParetoOnOffAggregate(t *testing.T) {
	rng := eventsim.NewRNG(23)
	p := &ParetoOnOff{Sources: 4, Rate: 1e6, Alpha: 1.5,
		OnMean: 2 * time.Second, OffMean: 6 * time.Second}
	const horizon = 4000.0
	var bits float64
	step := 50 * time.Millisecond
	for at := eventsim.Time(0); at < eventsim.At(horizon); at = at.Add(step) {
		b := p.BitsBetween(rng, at, at.Add(step))
		if b < 0 {
			t.Fatalf("negative bits %g", b)
		}
		if max := float64(p.Sources) * p.Rate * step.Seconds() * 1.01; b > max {
			t.Fatalf("interval bits %g exceed aggregate capacity %g", b, max)
		}
		bits += b
	}
	// Heavy-tailed periods converge slowly; just require the long-run load
	// to be in the right regime around the nominal 25% duty cycle.
	want := p.MeanLoadBits() * horizon
	if bits < want*0.5 || bits > want*1.6 {
		t.Fatalf("pareto aggregate delivered %.3g bits, want within [0.5, 1.6]x of %.3g", bits, want)
	}
}

func TestImpairmentBuild(t *testing.T) {
	var zero Impairment
	if !zero.Zero() {
		t.Fatal("zero Impairment not Zero")
	}
	if m := zero.Build(1e6, 100); m.Loss != nil || m.Bandwidth != nil || m.Jitter != nil ||
		m.Queue != nil || m.Cross != nil {
		t.Fatal("zero Impairment built models")
	}
	im := Impairment{
		Loss:      func() LossModel { return GEFromBurst(0.02, 8, 0.3) },
		Bandwidth: Scaled(0.5),
		Queue:     func(limit int) Queue { return NewRED(float64(limit)/10, float64(limit)/2, 0.1, 0.02) },
	}
	if im.Zero() {
		t.Fatal("non-zero Impairment reported Zero")
	}
	a, b := im.Build(2e6, 100), im.Build(2e6, 100)
	if a.Loss == b.Loss {
		t.Fatal("Build shared a stateful loss model between hops")
	}
	if got := a.Bandwidth.BandwidthAt(0); got != 1e6 {
		t.Fatalf("scaled bandwidth %g, want 1e6", got)
	}
}
