package netem

import (
	"time"

	"turbulence/internal/eventsim"
)

// UniformSpike is the seed testbed's jitter process as an explicit model:
// a uniform component in [0, Max) plus occasional heavy-tailed Pareto
// spikes — rare cross-traffic bursts that floor at an eighth of the spike
// cap so they are genuinely disruptive.
type UniformSpike struct {
	Max       time.Duration // uniform component upper bound
	SpikeProb float64       // probability of a heavy-tailed spike
	SpikeMax  time.Duration // spike upper bound; must exceed Max to fire
}

// Draw implements DelayJitter.
func (u UniformSpike) Draw(rng *eventsim.RNG) time.Duration {
	var j time.Duration
	if u.Max > 0 {
		j = time.Duration(rng.Uniform(0, float64(u.Max)))
	}
	if u.SpikeProb > 0 && u.SpikeMax > u.Max && rng.Bernoulli(u.SpikeProb) {
		lo := float64(u.SpikeMax) / 8
		if min := float64(u.Max + 1); lo < min {
			lo = min
		}
		j += time.Duration(rng.Pareto(1.2, lo, float64(u.SpikeMax)))
	}
	return j
}

// TruncNormal draws jitter from a Gaussian clamped to [Min, Max] — the
// bell-shaped queueing delay of a persistently but moderately loaded
// router, as opposed to UniformSpike's mostly-idle-with-bursts shape.
type TruncNormal struct {
	Mean, StdDev time.Duration
	Min, Max     time.Duration
}

// Draw implements DelayJitter.
func (t TruncNormal) Draw(rng *eventsim.RNG) time.Duration {
	lo := t.Min
	if lo < 0 {
		lo = 0
	}
	hi := t.Max
	if hi < lo {
		hi = lo
	}
	v := rng.TruncNormal(float64(t.Mean), float64(t.StdDev), float64(lo), float64(hi))
	return time.Duration(v)
}
