package netem

import (
	"fmt"

	"turbulence/internal/eventsim"
)

// Bernoulli drops each packet independently with fixed probability — the
// seed testbed's loss process, now available as an explicit model.
type Bernoulli float64

// Drop implements LossModel.
func (p Bernoulli) Drop(rng *eventsim.RNG) bool {
	return rng.Bernoulli(float64(p))
}

// GilbertElliott is the classic two-state Markov loss channel: a Good
// state with rare loss and a Bad state with heavy loss, with per-packet
// transition probabilities between them. It produces the bursty,
// correlated loss real Internet paths (and especially wireless links)
// exhibit, which independent Bernoulli drops cannot: the same average loss
// rate concentrated into bursts defeats packet-level recovery far more
// effectively.
type GilbertElliott struct {
	// PGB and PBG are the per-packet transition probabilities
	// Good->Bad and Bad->Good.
	PGB, PBG float64
	// LossGood and LossBad are the drop probabilities within each state.
	LossGood, LossBad float64

	bad bool
}

// NewGilbertElliott builds a chain that starts in the Good state.
func NewGilbertElliott(pgb, pbg, lossGood, lossBad float64) *GilbertElliott {
	return &GilbertElliott{PGB: pgb, PBG: pbg, LossGood: lossGood, LossBad: lossBad}
}

// GEFromBurst builds a Gilbert–Elliott chain from operational parameters:
// the long-run average loss rate, the mean loss-burst length in packets
// (the expected Bad-state sojourn), and the loss probability while Bad.
// The Good state is lossless. Requires 0 < avgLoss < lossBad and
// burstLen >= 1; a violation panics rather than silently simulating a
// different loss rate than the caller asked for.
func GEFromBurst(avgLoss, burstLen, lossBad float64) *GilbertElliott {
	if avgLoss <= 0 || lossBad <= 0 || avgLoss >= lossBad {
		panic(fmt.Sprintf("netem: GEFromBurst needs 0 < avgLoss < lossBad, got avgLoss=%g lossBad=%g", avgLoss, lossBad))
	}
	if burstLen < 1 {
		burstLen = 1
	}
	pbg := 1 / burstLen
	// Stationary Bad-state share piB satisfies piB*lossBad = avgLoss;
	// piB = pgb/(pgb+pbg) gives pgb = pbg*piB/(1-piB).
	piB := avgLoss / lossBad
	pgb := pbg * piB / (1 - piB)
	return NewGilbertElliott(pgb, pbg, 0, lossBad)
}

// Drop implements LossModel: advance the channel state, then draw loss
// from the state's rate.
func (g *GilbertElliott) Drop(rng *eventsim.RNG) bool {
	if g.bad {
		if rng.Bernoulli(g.PBG) {
			g.bad = false
		}
	} else if rng.Bernoulli(g.PGB) {
		g.bad = true
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return rng.Bernoulli(p)
}

// Stationary returns the chain's long-run average loss rate, the value the
// empirical drop fraction converges to over many packets.
func (g *GilbertElliott) Stationary() float64 {
	denom := g.PGB + g.PBG
	if denom <= 0 {
		if g.bad {
			return g.LossBad
		}
		return g.LossGood
	}
	piBad := g.PGB / denom
	return piBad*g.LossBad + (1-piBad)*g.LossGood
}
