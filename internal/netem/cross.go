package netem

import (
	"time"

	"turbulence/internal/eventsim"
)

// OnOffCBR is a single background source alternating between exponential
// On periods, during which it offers Rate bits/second to the link, and
// exponential Off periods of silence — the standard Markov-modulated
// fluid model of an interfering constant-bit-rate flow (another streaming
// session, a periodic backup) sharing the hop.
type OnOffCBR struct {
	Rate    float64 // bits/second while On
	OnMean  time.Duration
	OffMean time.Duration

	started bool
	on      bool
	until   eventsim.Time
}

// MeanLoadBits returns the source's long-run offered rate in bits/second.
func (c *OnOffCBR) MeanLoadBits() float64 {
	tot := c.OnMean + c.OffMean
	if tot <= 0 {
		return c.Rate
	}
	return c.Rate * float64(c.OnMean) / float64(tot)
}

// BitsBetween implements CrossTraffic.
func (c *OnOffCBR) BitsBetween(rng *eventsim.RNG, from, to eventsim.Time) float64 {
	if !c.started {
		c.started = true
		c.on = true // sources begin mid-activity; the first period is On
		c.until = from.Add(expDur(rng, c.OnMean))
	}
	var bits float64
	cur := from
	for cur < to {
		end := c.until
		if end > to {
			end = to
		}
		if c.on {
			bits += c.Rate * end.Sub(cur).Seconds()
		}
		cur = end
		if cur >= c.until {
			c.on = !c.on
			mean := c.OffMean
			if c.on {
				mean = c.OnMean
			}
			c.until = cur.Add(expDur(rng, mean))
		}
	}
	return bits
}

// Poisson models an aggregate of background packets arriving as a Poisson
// process with fixed packet size — smooth, memoryless cross traffic, the
// limiting mix of many thin independent flows.
type Poisson struct {
	PacketsPerSec float64
	PacketBytes   int

	started bool
	next    eventsim.Time
}

// BitsBetween implements CrossTraffic.
func (p *Poisson) BitsBetween(rng *eventsim.RNG, from, to eventsim.Time) float64 {
	if p.PacketsPerSec <= 0 || p.PacketBytes <= 0 {
		return 0
	}
	gapMean := time.Duration(float64(time.Second) / p.PacketsPerSec)
	if !p.started {
		p.started = true
		p.next = from.Add(expDur(rng, gapMean))
	}
	var bits float64
	for p.next <= to {
		bits += float64(8 * p.PacketBytes)
		p.next = p.next.Add(expDur(rng, gapMean))
	}
	return bits
}

// ParetoOnOff aggregates several independent On/Off sources whose period
// lengths are heavy-tailed (bounded Pareto) — the classical construction
// of self-similar background traffic (Willinger et al.): long-range burst
// correlation that a single exponential source cannot produce.
type ParetoOnOff struct {
	Sources int
	Rate    float64 // bits/second per source while On
	OnMean  time.Duration
	OffMean time.Duration
	Alpha   float64 // tail index, 1 < Alpha < 2 for self-similarity

	state []onOffState
}

type onOffState struct {
	started bool
	on      bool
	until   eventsim.Time
}

// MeanLoadBits returns the aggregate's long-run offered rate.
func (p *ParetoOnOff) MeanLoadBits() float64 {
	tot := p.OnMean + p.OffMean
	if tot <= 0 {
		return float64(p.Sources) * p.Rate
	}
	return float64(p.Sources) * p.Rate * float64(p.OnMean) / float64(tot)
}

// BitsBetween implements CrossTraffic.
func (p *ParetoOnOff) BitsBetween(rng *eventsim.RNG, from, to eventsim.Time) float64 {
	if p.Sources <= 0 {
		return 0
	}
	if p.state == nil {
		p.state = make([]onOffState, p.Sources)
	}
	alpha := p.Alpha
	if alpha <= 1 {
		alpha = 1.5
	}
	var bits float64
	for i := range p.state {
		s := &p.state[i]
		if !s.started {
			s.started = true
			s.on = i%2 == 0 // stagger initial phases across sources
			s.until = from.Add(paretoDur(rng, alpha, p.onOffMean(s.on)))
		}
		cur := from
		for cur < to {
			end := s.until
			if end > to {
				end = to
			}
			if s.on {
				bits += p.Rate * end.Sub(cur).Seconds()
			}
			cur = end
			if cur >= s.until {
				s.on = !s.on
				s.until = cur.Add(paretoDur(rng, alpha, p.onOffMean(s.on)))
			}
		}
	}
	return bits
}

func (p *ParetoOnOff) onOffMean(on bool) time.Duration {
	if on {
		return p.OnMean
	}
	return p.OffMean
}

// expDur draws an exponential duration with the given mean, floored at a
// microsecond so period state machines always advance.
func expDur(rng *eventsim.RNG, mean time.Duration) time.Duration {
	d := time.Duration(rng.Exp(float64(mean)))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}

// paretoDur draws a bounded-Pareto duration whose mean approximates mean:
// for shape alpha the unbounded Pareto mean is alpha*lo/(alpha-1), so
// lo = mean*(alpha-1)/alpha, with the tail truncated at 1000x lo.
func paretoDur(rng *eventsim.RNG, alpha float64, mean time.Duration) time.Duration {
	if mean <= 0 {
		return time.Microsecond
	}
	lo := float64(mean) * (alpha - 1) / alpha
	d := time.Duration(rng.Pareto(alpha, lo, 1000*lo))
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d
}
