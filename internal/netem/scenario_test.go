package netem

import (
	"strings"
	"testing"
)

func TestScenarioRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{
		"paper-baseline", "dsl", "cable", "lossy-wifi",
		"congested-peering", "transatlantic", "brownout", "flash-crowd",
		"trace-wireless",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("builtin scenario %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if len(All()) != len(names) {
		t.Fatalf("All returned %d scenarios, Names %d", len(All()), len(names))
	}

	if _, err := Find("no-such-scenario"); err == nil ||
		!strings.Contains(err.Error(), "no-such-scenario") {
		t.Fatalf("Find unknown: err = %v", err)
	}
	s, err := Find("lossy-wifi")
	if err != nil || s.Name != "lossy-wifi" {
		t.Fatalf("Find lossy-wifi: %v, %v", s, err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(&Scenario{Name: "test-dup-probe"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(&Scenario{Name: "test-dup-probe"})
}

// TestBuiltinsBuildEverywhere instantiates every builtin scenario's
// impairments for every hop of a representative path, catching factory
// panics and shared-state mistakes at registration level.
func TestBuiltinsBuildEverywhere(t *testing.T) {
	const hops = 16
	for _, sc := range All() {
		if strings.HasPrefix(sc.Name, "test-") {
			continue
		}
		for i := 0; i < hops; i++ {
			role := RoleBackbone
			switch i {
			case 0:
				role = RoleAccess
			case hops - 1:
				role = RoleBottleneck
			}
			im := sc.Impair(role, i, hops)
			m := im.Build(900e3, 100)
			if im.Zero() {
				continue
			}
			if m.Bandwidth != nil && m.Bandwidth.BandwidthAt(0) < minBandwidth {
				t.Fatalf("%s hop %d: bandwidth below floor", sc.Name, i)
			}
		}
		if sc.Name == "paper-baseline" {
			for i := 0; i < hops; i++ {
				if !sc.Impair(RoleBackbone, i, hops).Zero() {
					t.Fatal("paper-baseline impairs a hop")
				}
			}
		}
	}
}

// TestScenarioImpairNilSafe covers the nil accessors used when no
// scenario is installed.
func TestScenarioImpairNilSafe(t *testing.T) {
	var s *Scenario
	if !s.Impair(RoleAccess, 0, 10).Zero() {
		t.Fatal("nil scenario impaired a hop")
	}
	if s.Slack() != 0 {
		t.Fatal("nil scenario has slack")
	}
}
