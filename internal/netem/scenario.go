package netem

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// HopRole classifies a hop's position within a client<->site path, the
// granularity at which scenarios describe impairments. Roles are assigned
// in the client-to-site direction and stay attached to the same router on
// the mirrored reverse path, as a real path's last mile stays the last
// mile in both directions.
type HopRole int

const (
	// RoleAccess is the client-side access hop (the campus LAN link).
	RoleAccess HopRole = iota
	// RoleBackbone is an intermediate transit hop.
	RoleBackbone
	// RoleBottleneck is the server-side access hop, the path bottleneck in
	// the paper's testbed.
	RoleBottleneck
)

// String names the role.
func (r HopRole) String() string {
	switch r {
	case RoleAccess:
		return "access"
	case RoleBottleneck:
		return "bottleneck"
	default:
		return "backbone"
	}
}

// Scenario is a named, reusable recipe of per-hop impairments. A Scenario
// value holds only factories, never model state, so one Scenario serves
// any number of concurrent runs.
type Scenario struct {
	Name        string
	Description string

	// Hop returns the impairment for one hop, given its role, index and
	// the path's hop count. Called once per hop per path at testbed
	// construction; a zero Impairment leaves the hop faithful.
	Hop func(role HopRole, index, pathHops int) Impairment

	// HorizonSlack extends the experiment watchdog horizon, for scenarios
	// whose impairments stretch streaming (congestion episodes, heavy
	// loss).
	HorizonSlack time.Duration
}

// Impair is a nil-safe accessor for the scenario's hop recipe.
func (s *Scenario) Impair(role HopRole, index, pathHops int) Impairment {
	if s == nil || s.Hop == nil {
		return Impairment{}
	}
	return s.Hop(role, index, pathHops)
}

// Slack is a nil-safe accessor for HorizonSlack.
func (s *Scenario) Slack() time.Duration {
	if s == nil {
		return 0
	}
	return s.HorizonSlack
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Scenario{}
)

// Register adds a scenario to the library; duplicate names panic, as with
// experiment ids.
func Register(s *Scenario) {
	if s == nil || s.Name == "" {
		panic("netem: Register of unnamed scenario")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("netem: duplicate scenario " + s.Name)
	}
	registry[s.Name] = s
}

// Find returns the named scenario.
func Find(name string) (*Scenario, error) {
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		// Names re-locks; the RLock must be released first (a nested RLock
		// deadlocks against a waiting writer).
		return nil, fmt.Errorf("netem: unknown scenario %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists registered scenario names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns the registered scenarios ordered by name.
func All() []*Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
