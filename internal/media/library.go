package media

import (
	"time"
)

// ClipSet is one row group of Table 1: the same content served by the same
// site in both formats at one or more paired rates.
type ClipSet struct {
	Set      int
	Content  Content
	Duration time.Duration
	// Pairs maps each class present in the set to its (Real, WindowsMedia)
	// clip pair. Sets 1-5 have Low and High; set 6 adds VeryHigh.
	Pairs map[Class]Pair
}

// Pair is the Real/WindowsMedia encoding of the same content at the same
// advertised rate.
type Pair struct {
	Real, WindowsMedia Clip
}

// Classes lists the classes present in the set in ascending order.
func (s ClipSet) Classes() []Class {
	var out []Class
	for _, c := range []Class{Low, High, VeryHigh} {
		if _, ok := s.Pairs[c]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Clips lists every clip in the set (Real then WindowsMedia per class).
func (s ClipSet) Clips() []Clip {
	var out []Clip
	for _, c := range s.Classes() {
		p := s.Pairs[c]
		out = append(out, p.Real, p.WindowsMedia)
	}
	return out
}

// makeSet assembles a ClipSet from per-class encoded rates.
func makeSet(set int, content Content, dur time.Duration, rates map[Class][2]float64) ClipSet {
	s := ClipSet{Set: set, Content: content, Duration: dur, Pairs: make(map[Class]Pair)}
	for class, r := range rates {
		s.Pairs[class] = Pair{
			Real:         Clip{Set: set, Format: Real, Class: class, Content: content, EncodedKbps: r[0], Duration: dur},
			WindowsMedia: Clip{Set: set, Format: WindowsMedia, Class: class, Content: content, EncodedKbps: r[1], Duration: dur},
		}
	}
	return s
}

// Library returns the paper's Table 1 experiment data sets: six sets, 26
// clips in total, with the exact encoded rates the trackers captured.
//
// The OCR of Table 1 omits the duration of set 1; we use 2:00, in the
// middle of the paper's stated 30 s - 5 min selection range (documented in
// DESIGN.md).
func Library() []ClipSet {
	return []ClipSet{
		makeSet(1, Sports, 2*time.Minute, map[Class][2]float64{
			High: {284.0, 323.1},
			Low:  {36.0, 49.8},
		}),
		makeSet(2, Commercial, 39*time.Second, map[Class][2]float64{
			High: {268.0, 307.2},
			Low:  {84.0, 102.3},
		}),
		makeSet(3, Sports, 60*time.Second, map[Class][2]float64{
			High: {284.0, 307.2},
			Low:  {36.5, 37.9},
		}),
		makeSet(4, MusicTV, 4*time.Minute+5*time.Second, map[Class][2]float64{
			High: {180.9, 309.1},
			Low:  {26.0, 49.6},
		}),
		makeSet(5, News, time.Minute+47*time.Second, map[Class][2]float64{
			High: {217.6, 250.4},
			Low:  {22.0, 39.0},
		}),
		makeSet(6, Movie, 2*time.Minute+27*time.Second, map[Class][2]float64{
			VeryHigh: {636.9, 731.3},
			High:     {271.0, 347.2},
			Low:      {38.5, 102.3},
		}),
	}
}

// AllClips flattens the library into its 26 clips.
func AllClips() []Clip {
	var out []Clip
	for _, s := range Library() {
		out = append(out, s.Clips()...)
	}
	return out
}

// FindSet returns the library set with the given number, or a zero set.
func FindSet(set int) (ClipSet, bool) {
	for _, s := range Library() {
		if s.Set == set {
			return s, true
		}
	}
	return ClipSet{}, false
}

// FindClip locates a clip by set, format and class.
func FindClip(set int, f Format, class Class) (Clip, bool) {
	s, ok := FindSet(set)
	if !ok {
		return Clip{}, false
	}
	p, ok := s.Pairs[class]
	if !ok {
		return Clip{}, false
	}
	if f == Real {
		return p.Real, true
	}
	return p.WindowsMedia, true
}
