// Package media models the video content the paper streamed: the 26 clips
// of Table 1 (six server sites, identical content encoded in both RealVideo
// and Windows Media formats at paired data rates), and a deterministic
// synthetic frame generator that gives the simulated servers realistic
// per-frame payloads to packetise.
package media

import (
	"fmt"
	"sync"
	"time"

	"turbulence/internal/eventsim"
)

// Format distinguishes the two commercial encodings.
type Format int

const (
	// Real is RealNetworks RealVideo.
	Real Format = iota
	// WindowsMedia is Microsoft Windows Media Video.
	WindowsMedia
)

// String names the format as the paper abbreviates it.
func (f Format) String() string {
	if f == Real {
		return "Real"
	}
	return "WindowsMedia"
}

// Letter returns the Table 1 prefix ("R" or "M").
func (f Format) Letter() string {
	if f == Real {
		return "R"
	}
	return "M"
}

// Class is the paper's advertised-rate grouping: low (~56 Kbps modem
// class), high (~300 Kbps broadband class) and very high (~600 Kbps).
type Class int

const (
	Low Class = iota
	High
	VeryHigh
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Low:
		return "low"
	case High:
		return "high"
	default:
		return "very-high"
	}
}

// ParseClass resolves a class from its String name ("low", "high",
// "very-high") or Table 1 suffix ("l", "h", "v").
func ParseClass(s string) (Class, bool) {
	for _, c := range []Class{Low, High, VeryHigh} {
		if s == c.String() || s == c.Suffix() {
			return c, true
		}
	}
	return 0, false
}

// Suffix returns the Table 1 suffix ("l", "h", "v").
func (c Class) Suffix() string {
	switch c {
	case Low:
		return "l"
	case High:
		return "h"
	default:
		return "v"
	}
}

// AdvertisedKbps is the connection bandwidth the Web page label implies.
func (c Class) AdvertisedKbps() float64 {
	switch c {
	case Low:
		return 56
	case High:
		return 300
	default:
		return 600
	}
}

// Content is the clip's subject category from Table 1.
type Content int

const (
	Sports Content = iota
	Commercial
	MusicTV
	News
	Movie
)

// String names the content category.
func (c Content) String() string {
	switch c {
	case Sports:
		return "Sports"
	case Commercial:
		return "Commercial"
	case MusicTV:
		return "Music TV"
	case News:
		return "News"
	default:
		return "Movie clip"
	}
}

// Clip describes one encoded video clip.
type Clip struct {
	Set         int // data set number, 1-6
	Format      Format
	Class       Class
	Content     Content
	EncodedKbps float64 // actual encoded data rate captured by the trackers
	Duration    time.Duration
}

// Name returns the Table 1 identifier, e.g. "R-h" or "M-v", qualified with
// the set number: "1/R-h".
func (c Clip) Name() string {
	return fmt.Sprintf("%d/%s-%s", c.Set, c.Format.Letter(), c.Class.Suffix())
}

// EncodedBps returns the encoding rate in bits per second.
func (c Clip) EncodedBps() float64 { return c.EncodedKbps * 1000 }

// FrameRate returns the clip's encoded frame rate in frames/second.
//
// The ladder reproduces the paper's §3.H finding: both players reach
// full-motion 25 fps at high rates, but at low encoding rates RealVideo
// sacrifices spatial quality to keep the frame rate high (~19 fps) while
// Windows Media keeps frame quality and drops to ~13 fps (the paper's
// Figure 13 shows exactly 13 fps for the low-rate MediaPlayer clip).
func (c Clip) FrameRate() float64 {
	enc := c.EncodedKbps
	if c.Format == WindowsMedia {
		switch {
		case enc < 60:
			return 13
		case enc < 150:
			return 18
		default:
			return 25
		}
	}
	switch {
	case enc < 60:
		return 19
	case enc < 150:
		return 22
	default:
		return 25
	}
}

// TotalFrames returns the number of frames in the clip.
func (c Clip) TotalFrames() int {
	return int(c.Duration.Seconds() * c.FrameRate())
}

// MeanFrameBytes returns the average encoded frame size implied by the
// data rate and frame rate.
func (c Clip) MeanFrameBytes() int {
	return int(c.EncodedBps() / c.FrameRate() / 8)
}

// Frame is one encoded video frame.
type Frame struct {
	Index int
	// PTS is the frame's presentation time from clip start.
	PTS time.Duration
	// Bytes is the encoded size.
	Bytes int
	// Key marks intra-coded frames (larger, heading each GOP).
	Key bool
}

// GOPSize is the keyframe interval used by the synthetic encoder.
const GOPSize = 30

// Frames deterministically generates the clip's frame sequence. Windows
// Media output is near-constant (the paper finds WMP traffic essentially
// CBR); RealVideo output varies frame-to-frame with large keyframes (the
// paper finds Real packet sizes spread 0.6-1.8x the mean). The generator is
// seeded by the clip identity so every run sees identical content.
func (c Clip) Frames() []Frame {
	n := c.TotalFrames()
	mean := float64(c.MeanFrameBytes())
	rng := eventsim.NewRNG(clipSeed(c))
	frames := make([]Frame, n)
	frameDur := time.Duration(float64(time.Second) / c.FrameRate())
	for i := range frames {
		key := i%GOPSize == 0
		var size float64
		if c.Format == WindowsMedia {
			// Tight CBR: +-3% jitter around the mean, keyframes only
			// slightly larger; the server's pacer smooths the rest.
			size = rng.TruncNormal(mean, mean*0.03, mean*0.9, mean*1.1)
			if key {
				size *= 1.05
			}
		} else {
			// VBR: keyframes ~2.2x mean, delta frames spread widely.
			if key {
				size = rng.TruncNormal(mean*2.2, mean*0.3, mean*1.6, mean*3)
			} else {
				size = rng.TruncNormal(mean*0.92, mean*0.25, mean*0.45, mean*1.8)
			}
		}
		if size < 64 {
			size = 64
		}
		frames[i] = Frame{
			Index: i,
			PTS:   time.Duration(i) * frameDur,
			Bytes: int(size),
			Key:   key,
		}
	}
	return frames
}

// frameIndex caches the per-clip packetisation arrays. Clip is a small
// comparable value and Frames is a pure function of it, so one generation
// per distinct clip serves every session of every run.
var frameIndex struct {
	sync.RWMutex
	m map[Clip]frameArrays
}

type frameArrays struct {
	sizes []int
	keys  []bool
}

// FrameIndex returns the clip's frame sizes and keyframe flags — the two
// arrays the servers packetise from — memoised process-wide. Regenerating
// Frames per session start was one of the larger per-run allocations once
// testbeds became reusable; the index is built once per distinct clip and
// shared. The returned slices are shared and read-only: callers (and
// anything they hand the slices to, such as segment.Cutter) must not
// mutate them.
func FrameIndex(c Clip) (sizes []int, keys []bool) {
	frameIndex.RLock()
	fa, ok := frameIndex.m[c]
	frameIndex.RUnlock()
	if ok {
		return fa.sizes, fa.keys
	}
	frames := c.Frames()
	fa = frameArrays{sizes: make([]int, len(frames)), keys: make([]bool, len(frames))}
	for i, f := range frames {
		fa.sizes[i] = f.Bytes
		fa.keys[i] = f.Key
	}
	frameIndex.Lock()
	if prior, ok := frameIndex.m[c]; ok {
		fa = prior // a racing builder won; share its arrays
	} else {
		if frameIndex.m == nil {
			frameIndex.m = make(map[Clip]frameArrays)
		}
		frameIndex.m[c] = fa
	}
	frameIndex.Unlock()
	return fa.sizes, fa.keys
}

// clipSeed derives a stable seed from the clip identity.
func clipSeed(c Clip) int64 {
	h := int64(1469598103934665603)
	mix := func(v int64) {
		h ^= v
		h *= 1099511628211
	}
	mix(int64(c.Set))
	mix(int64(c.Format))
	mix(int64(c.Class))
	mix(int64(c.EncodedKbps * 10))
	return h
}

// String describes the clip.
func (c Clip) String() string {
	return fmt.Sprintf("%s %s %.1f Kbps %v %s", c.Name(), c.Content, c.EncodedKbps, c.Duration, c.Format)
}
