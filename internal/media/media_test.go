package media

import (
	"math"
	"testing"
	"time"
)

func TestLibraryMatchesTable1(t *testing.T) {
	lib := Library()
	if len(lib) != 6 {
		t.Fatalf("sets=%d, want 6", len(lib))
	}
	if len(AllClips()) != 26 {
		t.Fatalf("clips=%d, want 26", len(AllClips()))
	}
	// Spot-check exact Table 1 rates.
	checks := []struct {
		set   int
		f     Format
		class Class
		kbps  float64
	}{
		{1, Real, High, 284.0},
		{1, WindowsMedia, High, 323.1},
		{1, Real, Low, 36.0},
		{1, WindowsMedia, Low, 49.8},
		{2, Real, Low, 84.0},
		{2, WindowsMedia, Low, 102.3},
		{4, Real, High, 180.9},
		{5, WindowsMedia, High, 250.4},
		{5, Real, Low, 22.0},
		{6, Real, VeryHigh, 636.9},
		{6, WindowsMedia, VeryHigh, 731.3},
		{6, WindowsMedia, Low, 102.3},
	}
	for _, c := range checks {
		clip, ok := FindClip(c.set, c.f, c.class)
		if !ok {
			t.Fatalf("clip %d/%v/%v missing", c.set, c.f, c.class)
		}
		if clip.EncodedKbps != c.kbps {
			t.Fatalf("%s rate=%v, want %v", clip.Name(), clip.EncodedKbps, c.kbps)
		}
	}
	// Only set 6 has the very-high pair.
	for _, s := range lib {
		_, hasV := s.Pairs[VeryHigh]
		if hasV != (s.Set == 6) {
			t.Fatalf("set %d very-high presence wrong", s.Set)
		}
	}
}

func TestRealAlwaysEncodesBelowWindowsMedia(t *testing.T) {
	// Paper §3.B: "for the same advertised data rate, the RealPlayer clips
	// always have a lower encoding rate than the corresponding MediaPlayer
	// clip."
	for _, s := range Library() {
		for _, class := range s.Classes() {
			p := s.Pairs[class]
			if p.Real.EncodedKbps >= p.WindowsMedia.EncodedKbps {
				t.Fatalf("set %d %v: Real %v >= WMP %v", s.Set, class,
					p.Real.EncodedKbps, p.WindowsMedia.EncodedKbps)
			}
		}
	}
}

func TestDurationsMatchTable1(t *testing.T) {
	wants := map[int]time.Duration{
		2: 39 * time.Second,
		3: 60 * time.Second,
		4: 4*time.Minute + 5*time.Second,
		5: time.Minute + 47*time.Second,
		6: 2*time.Minute + 27*time.Second,
	}
	for set, want := range wants {
		s, ok := FindSet(set)
		if !ok || s.Duration != want {
			t.Fatalf("set %d duration=%v, want %v", set, s.Duration, want)
		}
	}
	// Every duration is within the paper's 30 s - 5 min selection rule.
	for _, s := range Library() {
		if s.Duration < 30*time.Second || s.Duration > 5*time.Minute {
			t.Fatalf("set %d duration %v outside selection range", s.Set, s.Duration)
		}
	}
}

func TestFrameRateLadder(t *testing.T) {
	low, _ := FindClip(5, WindowsMedia, Low) // 39 Kbps
	if low.FrameRate() != 13 {
		t.Fatalf("WMP low fps=%v, want 13 (paper Fig 13)", low.FrameRate())
	}
	rlow, _ := FindClip(5, Real, Low) // 22 Kbps
	if rlow.FrameRate() <= low.FrameRate() {
		t.Fatal("Real low fps must exceed WMP low fps")
	}
	high, _ := FindClip(5, WindowsMedia, High)
	rhigh, _ := FindClip(5, Real, High)
	if high.FrameRate() != 25 || rhigh.FrameRate() != 25 {
		t.Fatal("high-rate clips must reach full motion 25 fps")
	}
}

func TestFramesDeterministic(t *testing.T) {
	c, _ := FindClip(1, Real, High)
	a, b := c.Frames(), c.Frames()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("frame counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d differs across generations", i)
		}
	}
}

func TestFramesBudget(t *testing.T) {
	for _, c := range AllClips() {
		frames := c.Frames()
		if len(frames) != c.TotalFrames() {
			t.Fatalf("%s frames=%d, want %d", c.Name(), len(frames), c.TotalFrames())
		}
		var total float64
		for _, f := range frames {
			total += float64(f.Bytes)
		}
		// Total bytes must track the encoded rate within 15%.
		want := c.EncodedBps() / 8 * c.Duration.Seconds()
		if math.Abs(total-want)/want > 0.15 {
			t.Fatalf("%s generated %.0f bytes, want ~%.0f", c.Name(), total, want)
		}
	}
}

func TestFrameShapeByFormat(t *testing.T) {
	wmp, _ := FindClip(1, WindowsMedia, High)
	real_, _ := FindClip(1, Real, High)
	cv := func(frames []Frame) float64 {
		var sum, sumSq float64
		for _, f := range frames {
			sum += float64(f.Bytes)
		}
		mean := sum / float64(len(frames))
		for _, f := range frames {
			d := float64(f.Bytes) - mean
			sumSq += d * d
		}
		return math.Sqrt(sumSq/float64(len(frames))) / mean
	}
	wmpCV, realCV := cv(wmp.Frames()), cv(real_.Frames())
	if wmpCV >= realCV {
		t.Fatalf("WMP frame-size CV %.3f should be below Real's %.3f", wmpCV, realCV)
	}
	if wmpCV > 0.1 {
		t.Fatalf("WMP frames not CBR-like: CV=%.3f", wmpCV)
	}
	if realCV < 0.2 {
		t.Fatalf("Real frames not VBR-like: CV=%.3f", realCV)
	}
}

func TestFrameTimingAndKeys(t *testing.T) {
	c, _ := FindClip(3, Real, Low)
	frames := c.Frames()
	frameDur := time.Duration(float64(time.Second) / c.FrameRate())
	for i, f := range frames {
		if f.Index != i {
			t.Fatalf("index %d", i)
		}
		if f.PTS != time.Duration(i)*frameDur {
			t.Fatalf("PTS of frame %d = %v", i, f.PTS)
		}
		if (i%GOPSize == 0) != f.Key {
			t.Fatalf("keyframe flag wrong at %d", i)
		}
		if f.Bytes < 64 {
			t.Fatalf("frame %d below floor", i)
		}
	}
}

func TestNamesAndStrings(t *testing.T) {
	c, _ := FindClip(6, Real, VeryHigh)
	if c.Name() != "6/R-v" {
		t.Fatalf("Name=%q", c.Name())
	}
	m, _ := FindClip(2, WindowsMedia, Low)
	if m.Name() != "2/M-l" {
		t.Fatalf("Name=%q", m.Name())
	}
	if c.String() == "" || Real.String() == "" || WindowsMedia.String() == "" {
		t.Fatal("strings")
	}
	for _, cl := range []Class{Low, High, VeryHigh} {
		if cl.String() == "" || cl.Suffix() == "" || cl.AdvertisedKbps() <= 0 {
			t.Fatal("class accessors")
		}
	}
	for _, ct := range []Content{Sports, Commercial, MusicTV, News, Movie} {
		if ct.String() == "" {
			t.Fatal("content string")
		}
	}
}

func TestFindMisses(t *testing.T) {
	if _, ok := FindSet(99); ok {
		t.Fatal("found ghost set")
	}
	if _, ok := FindClip(99, Real, Low); ok {
		t.Fatal("found ghost clip")
	}
	if _, ok := FindClip(1, Real, VeryHigh); ok {
		t.Fatal("set 1 has no very-high pair")
	}
}

func TestMeanFrameBytes(t *testing.T) {
	c, _ := FindClip(5, WindowsMedia, High) // 250.4 Kbps at 25 fps
	want := int(250400.0 / 25 / 8)
	if got := c.MeanFrameBytes(); got != want {
		t.Fatalf("MeanFrameBytes=%d, want %d", got, want)
	}
}
