package netsim

import (
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
)

// Network owns the scheduler, the hosts and the directed paths between
// them. All model code runs on the network's single event loop.
type Network struct {
	Sched *eventsim.Scheduler
	rng   *eventsim.RNG
	hosts map[inet.Addr]*Host
	paths map[route]*Path

	// freeTransit recycles the per-packet forwarding state so the steady
	// streaming path does not allocate per hop traversal.
	freeTransit []*transit

	// pool recycles UDP wire-payload buffers across the whole simulation:
	// a buffer returns when its datagram's last fragment is dropped or
	// reassembled (capture copies what it keeps), so steady-state
	// streaming reuses a small working set instead of allocating per
	// packet.
	pool inet.BufPool

	// drainFn is the bound scheduler-drain callback, created once so Reset
	// does not allocate a method value per call.
	drainFn func(name string, arg any)
}

// transit is one datagram's journey along a path: the state threaded
// through the per-hop forwarding events. Pooled on the Network.
type transit struct {
	n   *Network
	p   *Path
	d   *inet.Datagram
	hop int
}

func (n *Network) newTransit(p *Path, d *inet.Datagram) *transit {
	if len(n.freeTransit) == 0 {
		return &transit{n: n, p: p, d: d}
	}
	t := n.freeTransit[len(n.freeTransit)-1]
	n.freeTransit = n.freeTransit[:len(n.freeTransit)-1]
	t.p = p
	t.d = d
	t.hop = 0
	return t
}

func (n *Network) releaseTransit(t *transit) {
	t.p = nil
	t.d = nil
	n.freeTransit = append(n.freeTransit, t)
}

// forwardStep and deliverStep are the static event callbacks of the
// forwarding hot path; passing the transit as the event argument avoids a
// closure allocation per hop per packet.
func forwardStep(now eventsim.Time, arg any) {
	t := arg.(*transit)
	t.n.forward(t, now)
}

func deliverStep(now eventsim.Time, arg any) {
	t := arg.(*transit)
	dst := t.n.hosts[t.p.dst]
	d := t.d
	t.n.releaseTransit(t)
	dst.deliver(d, now)
}

// hopDequeue frees one queue slot at a hop; the hop itself is the event
// argument.
func hopDequeue(_ eventsim.Time, arg any) {
	arg.(*hopState).queued--
}

type route struct{ src, dst inet.Addr }

// New creates an empty network with a deterministic RNG.
func New(seed int64) *Network {
	n := &Network{
		Sched: eventsim.NewScheduler(),
		rng:   eventsim.NewRNG(seed),
		hosts: make(map[inet.Addr]*Host),
		paths: make(map[route]*Path),
	}
	n.drainFn = n.drainEvent
	return n
}

// drainEvent reclaims pooled per-event payloads when the scheduler discards
// pending events on Reset: an in-flight transit releases its datagram's
// wire buffer to the pool and returns itself to the transit free list.
func (n *Network) drainEvent(_ string, arg any) {
	t, ok := arg.(*transit)
	if !ok {
		return
	}
	if t.d != nil {
		t.d.Release()
	}
	n.releaseTransit(t)
}

// Reset restores the network to its post-New state for the given seed
// without reallocating: the scheduler drains (in-flight datagrams return
// to the wire-buffer pool), the root RNG reseeds, and every host and hop
// rewinds to its just-connected state. Topology is retained — Reset
// rewinds state, it does not rewire hosts or paths — which is what lets a
// testbed built once serve every cell of a sweep. Host and hop resets draw
// nothing from the RNG, so map iteration order does not affect determinism.
func (n *Network) Reset(seed int64) {
	n.Sched.Reset(n.drainFn)
	n.rng.Reseed(seed)
	for _, h := range n.hosts {
		h.reset()
	}
	for _, p := range n.paths {
		for _, hop := range p.hops {
			hop.reset()
		}
	}
}

// RNG exposes the network's root random stream so models can Split from it.
func (n *Network) RNG() *eventsim.RNG { return n.rng }

// Now returns the current simulated time.
func (n *Network) Now() eventsim.Time { return n.Sched.Now() }

// AddHost creates and registers a host.
func (n *Network) AddHost(addr inet.Addr) *Host {
	if _, dup := n.hosts[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate host %s", addr))
	}
	h := newHost(n, addr)
	n.hosts[addr] = h
	return h
}

// Host returns the registered host for addr, or nil.
func (n *Network) Host(addr inet.Addr) *Host { return n.hosts[addr] }

// ConnectDuplex installs a forward path from a to b using specs, and a
// mirrored reverse path with independent queue state, as real duplex links
// have. The reverse path traverses the same router addresses in opposite
// order.
func (n *Network) ConnectDuplex(a, b inet.Addr, specs []HopSpec) (*Path, *Path) {
	fwd := n.connect(a, b, specs)
	rev := make([]HopSpec, len(specs))
	for i := range specs {
		rev[i] = specs[len(specs)-1-i]
	}
	back := n.connect(b, a, rev)
	return fwd, back
}

func (n *Network) connect(src, dst inet.Addr, specs []HopSpec) *Path {
	if src == dst {
		panic("netsim: cannot connect a host to itself")
	}
	p := &Path{src: src, dst: dst}
	for _, s := range specs {
		p.hops = append(p.hops, newHopState(s))
	}
	n.paths[route{src, dst}] = p
	return p
}

// PathBetween returns the installed directed path, or nil.
func (n *Network) PathBetween(src, dst inet.Addr) *Path {
	return n.paths[route{src, dst}]
}

// send injects a datagram from its source host into the network. Datagrams
// to unknown destinations or without a path are dropped silently, as a real
// network drops unroutable traffic (counted on the host).
func (n *Network) send(d *inet.Datagram, now eventsim.Time) bool {
	p := n.paths[route{d.Header.Src, d.Header.Dst}]
	if p == nil {
		return false
	}
	n.forward(n.newTransit(p, d), now)
	return true
}

// forward advances t's datagram through its current hop, scheduling its
// arrival at the next hop (or final delivery). Each stage delegates to the
// hop's netem models when installed and to the spec-driven legacy
// behaviour otherwise; either way the path is allocation-free per packet.
func (n *Network) forward(t *transit, now eventsim.Time) {
	p, i, d := t.p, t.hop, t.d
	hop := p.hops[i]
	// Random early loss from the hop's loss process.
	if hop.dropByLoss(n.rng) {
		hop.DroppedLoss++
		d.Release()
		n.releaseTransit(t)
		return
	}
	// Drop-tail: physical FIFO overflow.
	if hop.queued >= hop.queueCap() {
		hop.DroppedFull++
		d.Release()
		n.releaseTransit(t)
		return
	}
	// Active queue management: the policy may shed load before overflow.
	if !hop.admit(n.rng) {
		hop.DroppedAQM++
		d.Release()
		n.releaseTransit(t)
		return
	}
	// TTL handling: the router discards and reports expiry.
	if d.Header.TTL <= 1 {
		hop.TTLExpired++
		n.returnTimeExceeded(p, i, d, now)
		d.Release()
		n.releaseTransit(t)
		return
	}
	d.Header.TTL--

	// Bit corruption in transit: flip one payload byte. The receiving
	// host's transport checksums are what catch this.
	if hop.spec.Corrupt > 0 && len(d.Payload) > 0 && n.rng.Bernoulli(hop.spec.Corrupt) {
		d.Payload[n.rng.Intn(len(d.Payload))] ^= 1 << n.rng.Intn(8)
	}

	hop.queued++
	ser := transmissionDelay(d.WireLen(), hop.bandwidthAt(n.rng, now))
	start := now
	if hop.busyUntil > start {
		start = hop.busyUntil
	}
	departure := start.Add(ser)
	hop.busyUntil = departure
	n.Sched.AtArg(departure, "hop.dequeue", hopDequeue, hop)

	// Propagation plus cross-traffic jitter; FIFO order is preserved.
	delay := hop.spec.PropDelay + hop.drawJitter(n.rng)
	arrival := departure.Add(delay)
	if arrival < hop.lastExit {
		arrival = hop.lastExit
	}
	hop.lastExit = arrival
	hop.Forwarded++

	if i == len(p.hops)-1 {
		if n.hosts[p.dst] == nil {
			d.Release()
			n.releaseTransit(t)
			return
		}
		n.Sched.AtArg(arrival, "host.deliver", deliverStep, t)
		return
	}
	t.hop = i + 1
	n.Sched.AtArg(arrival, "hop.forward", forwardStep, t)
}

// returnTimeExceeded emits the ICMP error a router sends when TTL expires,
// delivering it back to the source after the accumulated upstream
// propagation delay (error packets skip detailed queue modelling).
func (n *Network) returnTimeExceeded(p *Path, i int, d *inet.Datagram, now eventsim.Time) {
	src := n.hosts[p.src]
	if src == nil {
		return
	}
	var back time.Duration
	for k := 0; k <= i; k++ {
		back += p.hops[k].spec.PropDelay
		back += time.Duration(n.rng.Uniform(0, float64(p.hops[k].spec.JitterMax)))
	}
	msg := inet.ICMPMessage{
		Type:    inet.ICMPTimeExceeded,
		Payload: inet.QuoteDatagram(d),
	}
	reply := inet.BuildICMP(p.hops[i].spec.Addr, p.src, inet.DefaultTTL, 0, msg)
	n.Sched.At(now.Add(back), "icmp.time-exceeded", func(t eventsim.Time) {
		src.deliver(reply, t)
	})
}

// Run drives the simulation until the horizon (0 = until idle).
func (n *Network) Run(horizon eventsim.Time) error { return n.Sched.Run(horizon) }
