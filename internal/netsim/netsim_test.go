package netsim

import (
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
)

var (
	clientAddr = inet.MakeAddr(130, 215, 10, 5)
	serverAddr = inet.MakeAddr(207, 46, 1, 9)
)

// lanSpecs builds a short low-jitter path for deterministic timing tests.
func lanSpecs(hops int, prop time.Duration, bw float64) []HopSpec {
	specs := make([]HopSpec, hops)
	for i := range specs {
		specs[i] = HopSpec{
			Addr:      inet.MakeAddr(10, 0, 1, byte(i+1)),
			Bandwidth: bw,
			PropDelay: prop,
		}
	}
	return specs
}

func newTestNet(t *testing.T, hops int) (*Network, *Host, *Host) {
	t.Helper()
	n := New(1)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	n.ConnectDuplex(clientAddr, serverAddr, lanSpecs(hops, time.Millisecond, 10e6))
	return n, c, s
}

func TestUDPDelivery(t *testing.T) {
	n, c, s := newTestNet(t, 3)
	var got []byte
	var from inet.Endpoint
	s.BindUDP(inet.PortMMSData, func(now eventsim.Time, f inet.Endpoint, p []byte) {
		got = append([]byte(nil), p...)
		from = f
	})
	payload := []byte("hello streaming world")
	wire, err := c.SendUDP(4000, inet.Endpoint{Addr: serverAddr, Port: inet.PortMMSData}, payload)
	if err != nil || wire != 1 {
		t.Fatalf("send: %d %v", wire, err)
	}
	n.Run(0)
	if string(got) != string(payload) {
		t.Fatalf("payload = %q", got)
	}
	if from.Addr != clientAddr || from.Port != 4000 {
		t.Fatalf("from = %v", from)
	}
	if s.ReceivedUDP != 1 || c.SentDatagrams != 1 {
		t.Fatalf("counters: %d %d", s.ReceivedUDP, c.SentDatagrams)
	}
}

func TestDeliveryLatencyMatchesPath(t *testing.T) {
	n, c, s := newTestNet(t, 4) // 4 hops x 1ms prop, 10 Mbps
	var deliveredAt eventsim.Time
	s.BindUDP(1, func(now eventsim.Time, _ inet.Endpoint, _ []byte) { deliveredAt = now })
	c.SendUDP(2, inet.Endpoint{Addr: serverAddr, Port: 1}, make([]byte, 972)) // 1000B IP, 1014B wire
	n.Run(0)
	prop := 4 * time.Millisecond
	ser := 4 * transmissionDelay(1014, 10e6) // store-and-forward at each hop
	want := eventsim.Time(prop + ser)
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestFragmentationOnSend(t *testing.T) {
	n, c, s := newTestNet(t, 2)
	var recvLen int
	s.BindUDP(9, func(_ eventsim.Time, _ inet.Endpoint, p []byte) { recvLen = len(p) })
	// A 4000-byte application frame exceeds the 1500 MTU: 3 wire packets.
	wire, err := c.SendUDP(9, inet.Endpoint{Addr: serverAddr, Port: 9}, make([]byte, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if wire != 3 {
		t.Fatalf("wire packets = %d, want 3", wire)
	}
	n.Run(0)
	if recvLen != 4000 {
		t.Fatalf("reassembled %d bytes", recvLen)
	}
	if s.ReceivedDatagrams != 3 || s.ReceivedUDP != 1 {
		t.Fatalf("datagrams=%d udp=%d", s.ReceivedDatagrams, s.ReceivedUDP)
	}
}

func TestTapSeesWireFragments(t *testing.T) {
	n, c, s := newTestNet(t, 2)
	s.BindUDP(9, func(eventsim.Time, inet.Endpoint, []byte) {})
	var sends, recvs, frags int
	c.Tap(func(_ eventsim.Time, dir Direction, d *inet.Datagram) {
		if dir == Send {
			sends++
		}
	})
	s.Tap(func(_ eventsim.Time, dir Direction, d *inet.Datagram) {
		if dir == Recv {
			recvs++
			if d.Header.IsFragment() {
				frags++
			}
		}
	})
	c.SendUDP(9, inet.Endpoint{Addr: serverAddr, Port: 9}, make([]byte, 4000))
	n.Run(0)
	if sends != 3 || recvs != 3 {
		t.Fatalf("tap counts send=%d recv=%d", sends, recvs)
	}
	if frags != 3 { // all three carry fragment flags/offsets
		t.Fatalf("fragment count=%d", frags)
	}
}

func TestLossDropsPackets(t *testing.T) {
	n := New(2)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := lanSpecs(2, time.Millisecond, 10e6)
	specs[1].Loss = 1.0 // everything dies at hop 2
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	got := 0
	s.BindUDP(9, func(eventsim.Time, inet.Endpoint, []byte) { got++ })
	for i := 0; i < 10; i++ {
		c.SendUDP(9, inet.Endpoint{Addr: serverAddr, Port: 9}, []byte("x"))
	}
	n.Run(0)
	if got != 0 {
		t.Fatalf("received %d through a 100%% loss hop", got)
	}
	p := n.PathBetween(clientAddr, serverAddr)
	if st := p.Stats(); st.DroppedLoss != 10 {
		t.Fatalf("loss counter=%d", st.DroppedLoss)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	n := New(3)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := []HopSpec{{
		Addr:      inet.MakeAddr(10, 0, 1, 1),
		Bandwidth: 64e3, // slow modem-class link
		PropDelay: time.Millisecond,
		QueueLen:  2,
	}}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	got := 0
	s.BindUDP(9, func(eventsim.Time, inet.Endpoint, []byte) { got++ })
	// Burst 20 packets instantaneously: at most queue+inflight survive.
	for i := 0; i < 20; i++ {
		c.SendUDP(9, inet.Endpoint{Addr: serverAddr, Port: 9}, make([]byte, 500))
	}
	n.Run(0)
	p := n.PathBetween(clientAddr, serverAddr)
	st := p.Stats()
	if st.DroppedFull == 0 {
		t.Fatal("no queue drops on overloaded bottleneck")
	}
	if got+int(st.DroppedFull) != 20 {
		t.Fatalf("accounting: got=%d dropped=%d", got, st.DroppedFull)
	}
}

func TestFIFOOrderingUnderJitter(t *testing.T) {
	n := New(4)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := lanSpecs(5, time.Millisecond, 10e6)
	for i := range specs {
		specs[i].JitterMax = 5 * time.Millisecond
		specs[i].SpikeProb = 0.2
		specs[i].SpikeMax = 50 * time.Millisecond
	}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	var seqs []int
	s.BindUDP(9, func(_ eventsim.Time, _ inet.Endpoint, p []byte) { seqs = append(seqs, int(p[0])) })
	for i := 0; i < 100; i++ {
		i := i
		n.Sched.At(eventsim.At(float64(i)*0.001), "send", func(eventsim.Time) {
			c.SendUDP(9, inet.Endpoint{Addr: serverAddr, Port: 9}, []byte{byte(i)})
		})
	}
	n.Run(0)
	if len(seqs) != 100 {
		t.Fatalf("received %d", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("reordering at %d: %v", i, seqs[i-1:i+1])
		}
	}
}

func TestICMPEchoAutoReply(t *testing.T) {
	n, c, _ := newTestNet(t, 3)
	var reply *inet.ICMPMessage
	var replyAt eventsim.Time
	c.OnICMP(func(now eventsim.Time, from inet.Addr, m inet.ICMPMessage) {
		if from == serverAddr && m.Type == inet.ICMPEchoReply {
			mm := m
			reply = &mm
			replyAt = now
		}
	})
	c.SendICMP(serverAddr, inet.DefaultTTL, inet.ICMPMessage{Type: inet.ICMPEchoRequest, ID: 42, Seq: 7})
	n.Run(0)
	if reply == nil {
		t.Fatal("no echo reply")
	}
	if reply.ID != 42 || reply.Seq != 7 {
		t.Fatalf("reply %+v", reply)
	}
	if replyAt < eventsim.At(0.006) { // >= 2 x 3 hops x 1ms
		t.Fatalf("reply too fast: %v", replyAt)
	}
}

func TestTTLExpiryReturnsTimeExceeded(t *testing.T) {
	n, c, _ := newTestNet(t, 4)
	var from inet.Addr
	var gotType byte
	c.OnICMP(func(_ eventsim.Time, f inet.Addr, m inet.ICMPMessage) {
		from = f
		gotType = m.Type
	})
	// TTL=2 expires at the second router.
	c.SendICMP(serverAddr, 2, inet.ICMPMessage{Type: inet.ICMPEchoRequest, ID: 1, Seq: 1})
	n.Run(0)
	if gotType != inet.ICMPTimeExceeded {
		t.Fatalf("got type %d", gotType)
	}
	want := inet.MakeAddr(10, 0, 1, 2)
	if from != want {
		t.Fatalf("time-exceeded from %s, want %s", from, want)
	}
	p := n.PathBetween(clientAddr, serverAddr)
	if st := p.Stats(); st.TTLExpired != 1 {
		t.Fatalf("TTLExpired=%d", st.TTLExpired)
	}
}

func TestUnroutableCounted(t *testing.T) {
	n := New(5)
	c := n.AddHost(clientAddr)
	c.SendUDP(1, inet.Endpoint{Addr: inet.MakeAddr(1, 2, 3, 4), Port: 5}, []byte("x"))
	n.Run(0)
	if c.Unroutable != 1 {
		t.Fatalf("Unroutable=%d", c.Unroutable)
	}
}

func TestUnboundPortCounted(t *testing.T) {
	n, c, s := newTestNet(t, 2)
	c.SendUDP(1, inet.Endpoint{Addr: serverAddr, Port: 12345}, []byte("x"))
	n.Run(0)
	if s.UndeliveredPort != 1 {
		t.Fatalf("UndeliveredPort=%d", s.UndeliveredPort)
	}
	s.BindUDP(12345, func(eventsim.Time, inet.Endpoint, []byte) {})
	s.UnbindUDP(12345)
	c.SendUDP(1, inet.Endpoint{Addr: serverAddr, Port: 12345}, []byte("x"))
	n.Run(0)
	if s.UndeliveredPort != 2 {
		t.Fatalf("UndeliveredPort=%d after unbind", s.UndeliveredPort)
	}
}

func TestPathAccessors(t *testing.T) {
	n, _, _ := newTestNet(t, 6)
	p := n.PathBetween(clientAddr, serverAddr)
	if p.Hops() != 6 {
		t.Fatalf("Hops=%d", p.Hops())
	}
	if len(p.HopAddrs()) != 6 {
		t.Fatal("HopAddrs")
	}
	if p.BasePropagation() != 6*time.Millisecond {
		t.Fatalf("BasePropagation=%v", p.BasePropagation())
	}
	if p.Bottleneck() != 10e6 {
		t.Fatalf("Bottleneck=%v", p.Bottleneck())
	}
	rev := n.PathBetween(serverAddr, clientAddr)
	if rev == nil || rev.Hops() != 6 {
		t.Fatal("reverse path missing")
	}
	// Reverse path hop order is mirrored.
	f, r := p.HopAddrs(), rev.HopAddrs()
	for i := range f {
		if f[i] != r[len(r)-1-i] {
			t.Fatal("reverse path not mirrored")
		}
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	n := New(1)
	n.AddHost(clientAddr)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate host did not panic")
		}
	}()
	n.AddHost(clientAddr)
}

func TestSelfConnectPanics(t *testing.T) {
	n := New(1)
	n.AddHost(clientAddr)
	defer func() {
		if recover() == nil {
			t.Fatal("self connect did not panic")
		}
	}()
	n.ConnectDuplex(clientAddr, clientAddr, lanSpecs(1, time.Millisecond, 1e6))
}

func TestSetMTU(t *testing.T) {
	n, c, s := newTestNet(t, 2)
	c.SetMTU(576)
	if c.MTU() != 576 {
		t.Fatal("MTU not set")
	}
	recvd := 0
	s.BindUDP(9, func(eventsim.Time, inet.Endpoint, []byte) { recvd++ })
	wire, err := c.SendUDP(9, inet.Endpoint{Addr: serverAddr, Port: 9}, make([]byte, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if wire < 4 {
		t.Fatalf("wire=%d at mtu 576, want >=4", wire)
	}
	n.Run(0)
	if recvd != 1 {
		t.Fatal("not reassembled at small MTU")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("absurd MTU accepted")
		}
	}()
	c.SetMTU(10)
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []eventsim.Time {
		n := New(99)
		c := n.AddHost(clientAddr)
		s := n.AddHost(serverAddr)
		specs := lanSpecs(8, 2*time.Millisecond, 10e6)
		for i := range specs {
			specs[i].JitterMax = 3 * time.Millisecond
			specs[i].Loss = 0.01
		}
		n.ConnectDuplex(clientAddr, serverAddr, specs)
		var arrivals []eventsim.Time
		s.BindUDP(9, func(now eventsim.Time, _ inet.Endpoint, _ []byte) { arrivals = append(arrivals, now) })
		for i := 0; i < 50; i++ {
			i := i
			n.Sched.At(eventsim.At(float64(i)*0.01), "send", func(eventsim.Time) {
				c.SendUDP(9, inet.Endpoint{Addr: serverAddr, Port: 9}, make([]byte, 700))
			})
		}
		n.Run(0)
		return arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different packet counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHostAfterConvenience(t *testing.T) {
	n, c, _ := newTestNet(t, 1)
	fired := false
	c.After(time.Second, "x", func(eventsim.Time) { fired = true })
	n.Run(0)
	if !fired {
		t.Fatal("After did not fire")
	}
	if c.Network() != n {
		t.Fatal("Network accessor")
	}
	if c.Addr() != clientAddr {
		t.Fatal("Addr accessor")
	}
}

func TestDirectionString(t *testing.T) {
	if Send.String() != "send" || Recv.String() != "recv" {
		t.Fatal("Direction strings")
	}
}

func TestHopString(t *testing.T) {
	h := &hopState{spec: HopSpec{Addr: inet.MakeAddr(1, 2, 3, 4), Bandwidth: 1e6, PropDelay: time.Millisecond}}
	if h.String() == "" {
		t.Fatal("empty hop string")
	}
}

func TestCorruptionCaughtByChecksums(t *testing.T) {
	n := New(6)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := []HopSpec{{
		Addr:      inet.MakeAddr(10, 0, 1, 1),
		Bandwidth: 10e6,
		PropDelay: time.Millisecond,
		Corrupt:   0.5, // flip a byte in half the packets
	}}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	delivered := 0
	s.BindUDP(9, func(eventsim.Time, inet.Endpoint, []byte) { delivered++ })
	const sent = 200
	for i := 0; i < sent; i++ {
		i := i
		n.Sched.At(eventsim.At(float64(i)*0.01), "send", func(eventsim.Time) {
			c.SendUDP(9, inet.Endpoint{Addr: serverAddr, Port: 9}, make([]byte, 400))
		})
	}
	n.Run(0)
	if s.ChecksumErrors == 0 {
		t.Fatal("no checksum errors despite heavy corruption")
	}
	if delivered+int(s.ChecksumErrors) != sent {
		t.Fatalf("accounting: delivered=%d checksumErrors=%d sent=%d",
			delivered, s.ChecksumErrors, sent)
	}
	// No corrupted payload ever reached the application.
	if delivered == 0 || delivered == sent {
		t.Fatalf("delivered=%d of %d; corruption model inert", delivered, sent)
	}
}

func TestCorruptionOfFragmentKillsDatagram(t *testing.T) {
	// A flipped byte in any fragment must discard the whole application
	// frame: the UDP checksum covers the reassembled datagram.
	n := New(7)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := []HopSpec{{
		Addr:      inet.MakeAddr(10, 0, 1, 1),
		Bandwidth: 10e6,
		PropDelay: time.Millisecond,
		Corrupt:   1.0, // every wire packet corrupted
	}}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	delivered := 0
	s.BindUDP(9, func(eventsim.Time, inet.Endpoint, []byte) { delivered++ })
	c.SendUDP(9, inet.Endpoint{Addr: serverAddr, Port: 9}, make([]byte, 4000)) // 3 fragments
	n.Run(0)
	if delivered != 0 {
		t.Fatal("corrupted fragmented datagram delivered")
	}
	if s.ChecksumErrors != 1 {
		t.Fatalf("ChecksumErrors=%d, want 1 (one reassembled datagram rejected)", s.ChecksumErrors)
	}
}
