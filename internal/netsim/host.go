package netsim

import (
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
)

// Direction distinguishes tap events.
type Direction int

const (
	// Send is a datagram leaving the host NIC.
	Send Direction = iota
	// Recv is a datagram arriving at the host NIC (pre-reassembly, so taps
	// observe individual IP fragments exactly as Ethereal did).
	Recv
)

// String names the direction.
func (d Direction) String() string {
	if d == Send {
		return "send"
	}
	return "recv"
}

// TapFunc observes wire datagrams at a host NIC. Taps must not mutate the
// datagram, and must not retain it (or its payload) beyond the call: the
// network mutates datagrams in transit and recycles their wire buffers
// once delivery completes. Observers copy what they keep — the capture
// layer's columnar arena is the canonical example.
type TapFunc func(now eventsim.Time, dir Direction, d *inet.Datagram)

// UDPHandler consumes a reassembled UDP payload addressed to a bound port.
type UDPHandler func(now eventsim.Time, from inet.Endpoint, payload []byte)

// ICMPHandler consumes ICMP messages delivered to the host (other than echo
// requests, which the host answers itself).
type ICMPHandler func(now eventsim.Time, from inet.Addr, msg inet.ICMPMessage)

// TCPHandler consumes reassembled TCP segments; the tcplite package
// registers one per host and demultiplexes by port internally.
type TCPHandler func(now eventsim.Time, from inet.Addr, segment []byte)

// Host is an endpoint attached to the network: an IP stack (fragmentation,
// reassembly, ICMP echo) plus a UDP port demultiplexer.
type Host struct {
	net   *Network
	addr  inet.Addr
	mtu   int
	ipID  uint16
	reasm *inet.Reassembler

	udpHandlers  map[inet.Port]UDPHandler
	icmpHandlers []ICMPHandler
	tcpHandler   TCPHandler
	taps         []TapFunc

	// frags is the send path's fragment-train scratch, reused across sends.
	// Safe to share across SendUDP and SendTCP: the network schedules hop
	// traversal as events, so a send never re-enters another send.
	frags []*inet.Datagram

	// Counters.
	SentDatagrams     uint64
	ReceivedDatagrams uint64
	ReceivedUDP       uint64
	Unroutable        uint64
	UndeliveredPort   uint64
	ChecksumErrors    uint64
}

func newHost(n *Network, addr inet.Addr) *Host {
	return &Host{
		net:         n,
		addr:        addr,
		mtu:         inet.DefaultMTU,
		reasm:       inet.NewReassemblerPooled(&n.pool),
		udpHandlers: make(map[inet.Port]UDPHandler),
	}
}

// reset restores the host to its just-created state without reallocating:
// port bindings, taps, counters, the IP ID sequence, and half-reassembled
// fragments all clear, while the handler map and reassembler keep their
// backing storage (and stale fragments release their pooled wire buffers).
func (h *Host) reset() {
	h.mtu = inet.DefaultMTU
	h.ipID = 0
	h.reasm.Reset()
	clear(h.udpHandlers)
	h.icmpHandlers = h.icmpHandlers[:0]
	h.tcpHandler = nil
	h.taps = h.taps[:0]
	clear(h.frags) // drop stale pointers into recycled datagrams
	h.frags = h.frags[:0]
	h.SentDatagrams = 0
	h.ReceivedDatagrams = 0
	h.ReceivedUDP = 0
	h.Unroutable = 0
	h.UndeliveredPort = 0
	h.ChecksumErrors = 0
}

// Addr returns the host's address.
func (h *Host) Addr() inet.Addr { return h.addr }

// MTU returns the host's interface MTU.
func (h *Host) MTU() int { return h.mtu }

// SetMTU overrides the interface MTU (default 1500, as on Windows 2000).
func (h *Host) SetMTU(mtu int) {
	if mtu < inet.IPv4HeaderLen+8 {
		panic(fmt.Sprintf("netsim: mtu %d too small", mtu))
	}
	h.mtu = mtu
}

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// Now returns the current simulated time.
func (h *Host) Now() eventsim.Time { return h.net.Now() }

// Tap registers a NIC observer (both directions).
func (h *Host) Tap(fn TapFunc) { h.taps = append(h.taps, fn) }

// BindUDP routes payloads addressed to port to fn. Binding a bound port
// replaces the handler (servers rebind between runs).
func (h *Host) BindUDP(port inet.Port, fn UDPHandler) { h.udpHandlers[port] = fn }

// UnbindUDP removes a port binding.
func (h *Host) UnbindUDP(port inet.Port) { delete(h.udpHandlers, port) }

// OnICMP registers an ICMP consumer; several probes may listen at once and
// each receives every message (consumers filter by ICMP ID).
func (h *Host) OnICMP(fn ICMPHandler) { h.icmpHandlers = append(h.icmpHandlers, fn) }

// OnTCP registers the host's TCP segment consumer (one per host; the
// transport layer demultiplexes by port).
func (h *Host) OnTCP(fn TCPHandler) { h.tcpHandler = fn }

// SendTCP transmits a raw TCP segment datagram to dst (fragmenting at the
// MTU if a jumbo segment is handed down).
func (h *Host) SendTCP(dst inet.Addr, seg []byte) error {
	d := &inet.Datagram{
		Header: inet.IPv4Header{
			ID:       h.nextID(),
			TTL:      inet.DefaultTTL,
			Protocol: inet.ProtoTCP,
			Src:      h.addr,
			Dst:      dst,
		},
		Payload: seg,
	}
	if d.Len() > 0xFFFF {
		return inet.ErrPayloadRange
	}
	d.Header.TotalLen = uint16(d.Len())
	var err error
	h.frags, err = inet.AppendFragments(h.frags[:0], d, h.mtu)
	if err != nil {
		return err
	}
	now := h.net.Now()
	for _, f := range h.frags {
		h.transmit(f, now)
	}
	return nil
}

// nextID returns the host's next IP identification value.
func (h *Host) nextID() uint16 {
	h.ipID++
	return h.ipID
}

// SendUDP builds a UDP datagram to dst and transmits it, fragmenting at the
// host MTU exactly as the OS IP layer does when handed an oversize
// application frame. It returns the number of wire packets emitted (the
// fragment train length), or an error if the datagram could not be built.
//
// The caller's payload is copied into a pooled wire buffer that recycles
// once every fragment has been dropped or reassembled, so the payload
// slice may be reused immediately and steady-state streaming does not
// allocate per datagram.
func (h *Host) SendUDP(srcPort inet.Port, dst inet.Endpoint, payload []byte) (int, error) {
	src := inet.Endpoint{Addr: h.addr, Port: srcPort}
	d, err := inet.BuildUDPPooled(&h.net.pool, src, dst, h.nextID(), payload)
	if err != nil {
		return 0, err
	}
	h.frags, err = inet.AppendFragments(h.frags[:0], d, h.mtu)
	if err != nil {
		d.Release()
		return 0, err
	}
	inet.SetFragmentRefs(h.frags)
	if len(h.frags) > 1 {
		// The parent's struct is dead once its payload has been sliced into
		// the fragments (which now own the buffer's references); recycle it.
		d.Recycle()
	}
	now := h.net.Now()
	for _, f := range h.frags {
		h.transmit(f, now)
	}
	return len(h.frags), nil
}

// SendICMP transmits an ICMP message to dst with the given TTL.
func (h *Host) SendICMP(dst inet.Addr, ttl byte, msg inet.ICMPMessage) {
	d := inet.BuildICMP(h.addr, dst, ttl, h.nextID(), msg)
	h.transmit(d, h.net.Now())
}

// transmit runs taps and injects into the network. Taps observe the
// datagram before the network mutates it in transit (TTL, corruption) and
// must copy anything they keep within the call — the capture layer's
// columnar store does exactly that — so no defensive clone is needed even
// on tapped hosts.
func (h *Host) transmit(d *inet.Datagram, now eventsim.Time) {
	for _, tap := range h.taps {
		tap(now, Send, d)
	}
	h.SentDatagrams++
	if !h.net.send(d, now) {
		h.Unroutable++
		d.Release()
	}
}

// deliver is called by the network when a wire datagram arrives at the NIC.
// Handlers (UDP, TCP, ICMP) receive payload views that are only valid for
// the duration of the call: once delivery completes, the datagram's pooled
// wire buffer may recycle.
func (h *Host) deliver(d *inet.Datagram, now eventsim.Time) {
	h.ReceivedDatagrams++
	for _, tap := range h.taps {
		tap(now, Recv, d)
	}
	whole, err := h.reasm.Add(d)
	if err != nil {
		d.Release()
		return
	}
	if whole == nil {
		return // fragment buffered; the reassembler owns its reference now
	}
	defer whole.Release()
	switch whole.Header.Protocol {
	case inet.ProtoUDP:
		udp, payload, err := whole.UDP()
		if err != nil {
			h.ChecksumErrors++
			return
		}
		h.ReceivedUDP++
		handler := h.udpHandlers[udp.DstPort]
		if handler == nil {
			h.UndeliveredPort++
			return
		}
		from := inet.Endpoint{Addr: whole.Header.Src, Port: udp.SrcPort}
		handler(now, from, payload)
	case inet.ProtoTCP:
		if h.tcpHandler != nil {
			h.tcpHandler(now, whole.Header.Src, whole.Payload)
		}
	case inet.ProtoICMP:
		msg, err := inet.ParseICMP(whole.Payload)
		if err != nil {
			h.ChecksumErrors++
			return
		}
		if msg.Type == inet.ICMPEchoRequest {
			reply := inet.ICMPMessage{Type: inet.ICMPEchoReply, ID: msg.ID, Seq: msg.Seq, Payload: msg.Payload}
			h.SendICMP(whole.Header.Src, inet.DefaultTTL, reply)
			return
		}
		for _, fn := range h.icmpHandlers {
			fn(now, whole.Header.Src, msg)
		}
	}
}

// After schedules fn on the shared event loop, a convenience for model code
// holding only a Host.
func (h *Host) After(d time.Duration, name string, fn func(now eventsim.Time)) eventsim.Timer {
	return h.net.Sched.After(d, name, fn)
}

// AfterArg is After with the closure-free static-callback form, for model
// code that schedules on a per-packet cadence.
func (h *Host) AfterArg(d time.Duration, name string, fn func(now eventsim.Time, arg any), arg any) eventsim.Timer {
	return h.net.Sched.AfterArg(d, name, fn, arg)
}
