package netsim

import (
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netem"
)

// impairHop returns lanSpecs with the given impairment installed on hop
// index k.
func impairSpecs(hops int, bw float64, k int, im netem.Impairment) []HopSpec {
	specs := lanSpecs(hops, time.Millisecond, bw)
	specs[k].Impair = im
	return specs
}

func TestImpairedHopBurstyLoss(t *testing.T) {
	n := New(42)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	im := netem.Impairment{Loss: func() netem.LossModel { return netem.GEFromBurst(0.05, 8, 0.3) }}
	fwd, _ := n.ConnectDuplex(clientAddr, serverAddr, impairSpecs(3, 10e6, 1, im))
	s.BindUDP(7, func(eventsim.Time, inet.Endpoint, []byte) {})

	const sent = 20000
	for i := 0; i < sent; i++ {
		c.SendUDP(7, inet.Endpoint{Addr: serverAddr, Port: 7}, make([]byte, 200))
		n.Run(0)
	}
	st := fwd.Stats()
	if st.DroppedLoss == 0 {
		t.Fatal("bursty loss model dropped nothing")
	}
	rate := float64(st.DroppedLoss) / sent
	if rate < 0.02 || rate > 0.10 {
		t.Fatalf("loss rate %.3f, want ~0.05", rate)
	}
	if st.DroppedFull != 0 || st.DroppedAQM != 0 {
		t.Fatalf("unexpected queue drops: full=%d aqm=%d", st.DroppedFull, st.DroppedAQM)
	}
	// The breakdown is visible per hop, attributed to the impaired router.
	hs := fwd.HopStats()
	if hs[1].DroppedLoss != st.DroppedLoss {
		t.Fatalf("hop 1 loss %d, path loss %d", hs[1].DroppedLoss, st.DroppedLoss)
	}
	if hs[0].DroppedLoss != 0 || hs[2].DroppedLoss != 0 {
		t.Fatal("loss attributed to unimpaired hops")
	}
}

func TestAQMDropsCountedSeparately(t *testing.T) {
	n := New(7)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	// A slow hop with a small FIFO and aggressive RED: blasting packets at
	// it must produce early (AQM) drops distinct from overflow drops.
	im := netem.Impairment{Queue: func(limit int) netem.Queue {
		return netem.NewRED(2, float64(limit)/2, 0.5, 1)
	}}
	specs := impairSpecs(2, 10e6, 1, im)
	specs[0].QueueLen = 1000 // deep ingress FIFO so pressure lands on the RED hop
	specs[1].Bandwidth = 64e3
	specs[1].QueueLen = 20
	fwd, _ := n.ConnectDuplex(clientAddr, serverAddr, specs)
	s.BindUDP(7, func(eventsim.Time, inet.Endpoint, []byte) {})

	for i := 0; i < 400; i++ {
		c.SendUDP(7, inet.Endpoint{Addr: serverAddr, Port: 7}, make([]byte, 500))
	}
	n.Run(0)
	st := fwd.Stats()
	if st.DroppedAQM == 0 {
		t.Fatalf("RED produced no early drops: %+v", st)
	}
	if st.DroppedLoss != 0 {
		t.Fatalf("queue pressure misattributed to link loss: %+v", st)
	}
	if st.Forwarded == 0 {
		t.Fatal("nothing forwarded")
	}
}

func TestBandwidthProfileGovernsSerialization(t *testing.T) {
	n := New(1)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	// Derate hop 0 to half its nominal rate via a profile; delivery time
	// must match serialization at the derated rate exactly.
	im := netem.Impairment{Bandwidth: netem.Scaled(0.5)}
	n.ConnectDuplex(clientAddr, serverAddr, impairSpecs(4, 10e6, 0, im))
	var deliveredAt eventsim.Time
	s.BindUDP(1, func(now eventsim.Time, _ inet.Endpoint, _ []byte) { deliveredAt = now })
	c.SendUDP(2, inet.Endpoint{Addr: serverAddr, Port: 1}, make([]byte, 972)) // 1014B wire
	n.Run(0)
	want := eventsim.Time(4*time.Millisecond +
		transmissionDelay(1014, 5e6) + 3*transmissionDelay(1014, 10e6))
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

// steadyCross is a deterministic always-on background source for exact
// latency assertions.
type steadyCross float64

func (r steadyCross) BitsBetween(_ *eventsim.RNG, from, to eventsim.Time) float64 {
	return float64(r) * to.Sub(from).Seconds()
}

func TestCrossTrafficConsumesCapacity(t *testing.T) {
	n := New(1)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	// 5 Mbps of steady background on a 10 Mbps hop: once the fluid state
	// is primed, foreground packets serialise at the residual 5 Mbps.
	im := netem.Impairment{Cross: func() netem.CrossTraffic { return steadyCross(5e6) }}
	n.ConnectDuplex(clientAddr, serverAddr, impairSpecs(2, 10e6, 0, im))
	var arrivals []eventsim.Time
	s.BindUDP(1, func(now eventsim.Time, _ inet.Endpoint, _ []byte) {
		arrivals = append(arrivals, now)
	})
	dst := inet.Endpoint{Addr: serverAddr, Port: 1}
	c.SendUDP(2, dst, make([]byte, 972)) // primes the cross integrator, full rate
	n.Run(0)
	c.SendUDP(2, dst, make([]byte, 972)) // sees the 50% load
	n.Run(0)
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	base := eventsim.Time(2*time.Millisecond + 2*transmissionDelay(1014, 10e6))
	if arrivals[0] != base {
		t.Fatalf("first packet at %v, want unimpaired %v", arrivals[0], base)
	}
	slowed := arrivals[1].Sub(arrivals[0])
	want := time.Duration(base) + transmissionDelay(1014, 5e6) - transmissionDelay(1014, 10e6)
	if slowed != want {
		t.Fatalf("second packet took %v, want %v", slowed, want)
	}
}

// TestForwardSteadyStateAllocFree pins the acceptance requirement that
// steady-state forwarding stays allocation-free under full impairment:
// bursty loss, a time-varying bandwidth profile, trunc-normal jitter, RED
// and two cross-traffic models, all active on every hop. The destination
// host is deliberately unregistered so the measurement isolates the
// forwarding path from delivery/reassembly.
func TestForwardSteadyStateAllocFree(t *testing.T) {
	n := New(99)
	c := n.AddHost(clientAddr)
	im := netem.Impairment{
		Loss:      func() netem.LossModel { return netem.GEFromBurst(0.01, 8, 0.3) },
		Bandwidth: netem.ScaledSinusoid(0.9, 0.3, 10*time.Second),
		Jitter: func() netem.DelayJitter {
			return netem.TruncNormal{Mean: time.Millisecond, StdDev: time.Millisecond, Max: 5 * time.Millisecond}
		},
		Queue: func(limit int) netem.Queue {
			return netem.NewRED(float64(limit)/10, float64(limit)/2, 0.1, 0.02)
		},
		Cross: func() netem.CrossTraffic {
			return &netem.ParetoOnOff{Sources: 4, Rate: 1e6, Alpha: 1.5,
				OnMean: time.Second, OffMean: 3 * time.Second}
		},
	}
	specs := lanSpecs(6, 100*time.Microsecond, 10e6)
	for i := range specs {
		specs[i].Impair = im
	}
	n.connect(clientAddr, serverAddr, specs)

	d, err := inet.BuildUDP(inet.Endpoint{Addr: clientAddr, Port: 2},
		inet.Endpoint{Addr: serverAddr, Port: 1}, 1, make([]byte, 500))
	if err != nil {
		t.Fatal(err)
	}
	send := func() {
		d.Header.TTL = inet.DefaultTTL
		n.send(d, n.Now())
		n.Run(0)
	}
	// Warm the event, transit and cross-traffic state pools.
	for i := 0; i < 200; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(500, send); allocs > 0 {
		t.Fatalf("impaired forwarding allocates %.2f allocs/packet, want 0", allocs)
	}
	_ = c
}

// TestDuplexBuildsPrivateModels ensures forward and reverse hops never
// share stateful model instances.
func TestDuplexBuildsPrivateModels(t *testing.T) {
	n := New(1)
	n.AddHost(clientAddr)
	n.AddHost(serverAddr)
	built := 0
	im := netem.Impairment{Loss: func() netem.LossModel {
		built++
		return netem.GEFromBurst(0.01, 4, 0.2)
	}}
	fwd, rev := n.ConnectDuplex(clientAddr, serverAddr, impairSpecs(3, 10e6, 1, im))
	if built != 2 {
		t.Fatalf("loss factory invoked %d times, want 2 (one per direction)", built)
	}
	if fwd.hops[1].models.Loss == rev.hops[1].models.Loss {
		t.Fatal("duplex directions share a loss model instance")
	}
}
