// Package netsim is the discrete-event network substrate the reproduction
// streams over. It models what the paper's testbed provided physically: a
// client PC on a 10 Mbps campus LAN, an Internet path of 13-25 router hops
// to each video server site, with propagation delay, per-hop FIFO queueing,
// serialization at link bandwidth, background-traffic jitter, and rare
// loss (the paper reports ~0% ping loss with a few observed drops).
//
// Hosts exchange real inet.Datagrams: the sending host's IP layer fragments
// at its MTU (the mechanism behind the paper's MediaPlayer findings) and
// the receiving host reassembles. Router hops decrement TTL and return
// ICMP time-exceeded errors, which is what makes tracert work.
package netsim

import (
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
)

// HopSpec describes one router hop of a path.
type HopSpec struct {
	Addr      inet.Addr     // router address reported to traceroute
	Bandwidth float64       // link bits/second leaving this hop
	PropDelay time.Duration // propagation to the next hop (or host)
	JitterMax time.Duration // uniform extra queueing delay from cross traffic
	SpikeProb float64       // probability of a heavy-tailed jitter spike
	SpikeMax  time.Duration // upper bound of a spike
	Loss      float64       // independent drop probability at this hop
	Corrupt   float64       // probability of flipping a payload byte in transit
	QueueLen  int           // max datagrams queued awaiting serialization (0 = default)
}

// DefaultQueueLen is used when a HopSpec leaves QueueLen zero; generous
// enough that drops come from the Loss model under typical conditions, as
// in the paper's uncongested runs.
const DefaultQueueLen = 100

// hopState is the runtime state of a unidirectional hop.
type hopState struct {
	spec HopSpec
	// busyUntil is when the output link finishes serialising the last
	// accepted datagram.
	busyUntil eventsim.Time
	// lastExit preserves FIFO ordering downstream of jitter draws.
	lastExit eventsim.Time
	// queued counts datagrams accepted but not yet fully serialised.
	queued int

	// Counters for diagnostics and the congestion experiments.
	Forwarded   uint64
	DroppedLoss uint64
	DroppedFull uint64
	TTLExpired  uint64
}

// transmissionDelay returns the serialization time of wireBytes at bps.
func transmissionDelay(wireBytes int, bps float64) time.Duration {
	if bps <= 0 {
		return 0
	}
	sec := float64(wireBytes*8) / bps
	return time.Duration(sec * float64(time.Second))
}

// queueCap returns the effective queue limit.
func (h *hopState) queueCap() int {
	if h.spec.QueueLen > 0 {
		return h.spec.QueueLen
	}
	return DefaultQueueLen
}

func (h *hopState) String() string {
	return fmt.Sprintf("hop %s bw=%.0f prop=%v loss=%.4f", h.spec.Addr, h.spec.Bandwidth, h.spec.PropDelay, h.spec.Loss)
}

// Path is a unidirectional chain of hops between two hosts. Reverse paths
// are separate Path values with their own queue state.
type Path struct {
	src, dst inet.Addr
	hops     []*hopState
}

// Hops returns the number of router hops on the path.
func (p *Path) Hops() int { return len(p.hops) }

// HopAddrs lists the router addresses in order.
func (p *Path) HopAddrs() []inet.Addr {
	out := make([]inet.Addr, len(p.hops))
	for i, h := range p.hops {
		out[i] = h.spec.Addr
	}
	return out
}

// BasePropagation sums the propagation delays of the path — the floor of
// the one-way delay, excluding queueing and serialization.
func (p *Path) BasePropagation() time.Duration {
	var d time.Duration
	for _, h := range p.hops {
		d += h.spec.PropDelay
	}
	return d
}

// Bottleneck returns the lowest hop bandwidth in bits/second.
func (p *Path) Bottleneck() float64 {
	if len(p.hops) == 0 {
		return 0
	}
	min := p.hops[0].spec.Bandwidth
	for _, h := range p.hops {
		if h.spec.Bandwidth > 0 && (min <= 0 || h.spec.Bandwidth < min) {
			min = h.spec.Bandwidth
		}
	}
	return min
}

// Stats aggregates hop counters for reporting.
type PathStats struct {
	Forwarded, DroppedLoss, DroppedFull, TTLExpired uint64
}

// Stats sums the counters across hops.
func (p *Path) Stats() PathStats {
	var s PathStats
	for _, h := range p.hops {
		s.Forwarded += h.Forwarded
		s.DroppedLoss += h.DroppedLoss
		s.DroppedFull += h.DroppedFull
		s.TTLExpired += h.TTLExpired
	}
	return s
}
