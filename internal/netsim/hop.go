// Package netsim is the discrete-event network substrate the reproduction
// streams over. It models what the paper's testbed provided physically: a
// client PC on a 10 Mbps campus LAN, an Internet path of 13-25 router hops
// to each video server site, with propagation delay, per-hop FIFO queueing,
// serialization at link bandwidth, background-traffic jitter, and rare
// loss (the paper reports ~0% ping loss with a few observed drops).
//
// Hosts exchange real inet.Datagrams: the sending host's IP layer fragments
// at its MTU (the mechanism behind the paper's MediaPlayer findings) and
// the receiving host reassembles. Router hops decrement TTL and return
// ICMP time-exceeded errors, which is what makes tracert work.
//
// Hops are impairable: a HopSpec may carry a netem.Impairment whose models
// replace the spec's fixed loss/bandwidth/jitter processes and add AQM and
// cross-traffic on top — the mechanism behind the scenario library's
// bursty, time-varying network conditions. Unimpaired hops run the exact
// legacy code path, draw for draw.
package netsim

import (
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netem"
)

// HopSpec describes one router hop of a path.
type HopSpec struct {
	Addr      inet.Addr     // router address reported to traceroute
	Bandwidth float64       // nominal link bits/second leaving this hop
	PropDelay time.Duration // propagation to the next hop (or host)
	JitterMax time.Duration // uniform extra queueing delay from cross traffic
	SpikeProb float64       // probability of a heavy-tailed jitter spike
	SpikeMax  time.Duration // upper bound of a spike
	Loss      float64       // independent drop probability at this hop
	Corrupt   float64       // probability of flipping a payload byte in transit
	QueueLen  int           // max datagrams queued awaiting serialization (0 = default)

	// Impair plugs netem models into the hop. Zero (no factories) keeps
	// the spec-driven fields above as the hop's behaviour; each non-nil
	// factory overrides its aspect. Factories are instantiated per
	// unidirectional hop at connect time, so duplex directions never share
	// model state.
	Impair netem.Impairment
}

// DefaultQueueLen is used when a HopSpec leaves QueueLen zero; generous
// enough that drops come from the Loss model under typical conditions, as
// in the paper's uncongested runs.
const DefaultQueueLen = 100

// maxCrossLoad caps the link share cross traffic may consume, so
// background load can brown a link out (down to 2% of capacity) but never
// wedge it entirely.
const maxCrossLoad = 0.98

// hopState is the runtime state of a unidirectional hop.
type hopState struct {
	spec HopSpec
	// models holds the hop's instantiated netem models; nil fields fall
	// back to the spec-driven legacy behaviour, keeping unimpaired hops
	// allocation- and draw-identical to the pre-netem code.
	models netem.HopModels
	// busyUntil is when the output link finishes serialising the last
	// accepted datagram.
	busyUntil eventsim.Time
	// lastExit preserves FIFO ordering downstream of jitter draws.
	lastExit eventsim.Time
	// queued counts datagrams accepted but not yet fully serialised.
	queued int

	// Cross-traffic fluid state: the last integration time and the load
	// share computed for that step.
	crossInit bool
	crossAt   eventsim.Time
	crossLoad float64

	// Counters for diagnostics and the congestion experiments. DroppedAQM
	// counts early drops by the queue policy (RED), distinct from
	// DroppedFull (physical FIFO overflow) and DroppedLoss (link loss
	// process).
	Forwarded   uint64
	DroppedLoss uint64
	DroppedFull uint64
	DroppedAQM  uint64
	TTLExpired  uint64
}

// newHopState instantiates one unidirectional hop, building private netem
// model instances from the spec's impairment factories.
func newHopState(spec HopSpec) *hopState {
	h := &hopState{spec: spec}
	h.models = spec.Impair.Build(spec.Bandwidth, h.queueCap())
	return h
}

// reset rewinds the hop to its just-connected state: queue and FIFO state,
// cross-traffic integration, and counters zero, and the netem models are
// rebuilt from the spec's factories — byte-identical to construction, and
// allocation-free for unimpaired hops (a zero Impairment builds no models).
func (h *hopState) reset() {
	h.models = h.spec.Impair.Build(h.spec.Bandwidth, h.queueCap())
	h.busyUntil = 0
	h.lastExit = 0
	h.queued = 0
	h.crossInit = false
	h.crossAt = 0
	h.crossLoad = 0
	h.Forwarded = 0
	h.DroppedLoss = 0
	h.DroppedFull = 0
	h.DroppedAQM = 0
	h.TTLExpired = 0
}

// transmissionDelay returns the serialization time of wireBytes at bps.
func transmissionDelay(wireBytes int, bps float64) time.Duration {
	if bps <= 0 {
		return 0
	}
	sec := float64(wireBytes*8) / bps
	return time.Duration(sec * float64(time.Second))
}

// queueCap returns the effective queue limit.
func (h *hopState) queueCap() int {
	if h.spec.QueueLen > 0 {
		return h.spec.QueueLen
	}
	return DefaultQueueLen
}

// dropByLoss runs the hop's loss process for one packet.
func (h *hopState) dropByLoss(rng *eventsim.RNG) bool {
	if h.models.Loss != nil {
		return h.models.Loss.Drop(rng)
	}
	return h.spec.Loss > 0 && rng.Bernoulli(h.spec.Loss)
}

// admit consults the hop's AQM policy after the physical limit check.
func (h *hopState) admit(rng *eventsim.RNG) bool {
	if h.models.Queue == nil {
		return true
	}
	return h.models.Queue.Admit(rng, h.queued, h.queueCap())
}

// bandwidthAt returns the hop's current output rate, after the bandwidth
// profile and the cross-traffic capacity share.
func (h *hopState) bandwidthAt(rng *eventsim.RNG, now eventsim.Time) float64 {
	bw := h.spec.Bandwidth
	if h.models.Bandwidth != nil {
		bw = h.models.Bandwidth.BandwidthAt(now)
	}
	if h.models.Cross != nil {
		bw *= 1 - h.crossShare(rng, now, bw)
	}
	return bw
}

// crossShare integrates the hop's background traffic up to now and returns
// the link share it consumes, as a fluid approximation: the bits offered
// over the last integration step, normalised by link capacity and capped
// at maxCrossLoad. Foreground packets then serialise at the residual rate,
// so queue buildup and overflow drops emerge in the same FIFO the
// foreground uses.
func (h *hopState) crossShare(rng *eventsim.RNG, now eventsim.Time, bw float64) float64 {
	if !h.crossInit {
		h.crossInit = true
		h.crossAt = now
		return 0
	}
	if now <= h.crossAt {
		return h.crossLoad
	}
	bits := h.models.Cross.BitsBetween(rng, h.crossAt, now)
	dt := now.Sub(h.crossAt).Seconds()
	load := 0.0
	if bw > 0 && dt > 0 {
		load = bits / (bw * dt)
	}
	if load > maxCrossLoad {
		load = maxCrossLoad
	}
	h.crossAt = now
	h.crossLoad = load
	return load
}

// drawJitter samples the hop's per-packet extra delay: the netem model if
// one is installed, otherwise the spec's uniform-plus-spike process (the
// legacy cross-traffic stand-in, the same sampler netem.UniformSpike
// models — a stack value, so the fallback stays allocation-free).
func (h *hopState) drawJitter(rng *eventsim.RNG) time.Duration {
	if h.models.Jitter != nil {
		return h.models.Jitter.Draw(rng)
	}
	return netem.UniformSpike{
		Max:       h.spec.JitterMax,
		SpikeProb: h.spec.SpikeProb,
		SpikeMax:  h.spec.SpikeMax,
	}.Draw(rng)
}

func (h *hopState) String() string {
	return fmt.Sprintf("hop %s bw=%.0f prop=%v loss=%.4f", h.spec.Addr, h.spec.Bandwidth, h.spec.PropDelay, h.spec.Loss)
}

// Path is a unidirectional chain of hops between two hosts. Reverse paths
// are separate Path values with their own queue state.
type Path struct {
	src, dst inet.Addr
	hops     []*hopState
}

// Hops returns the number of router hops on the path.
func (p *Path) Hops() int { return len(p.hops) }

// HopAddrs lists the router addresses in order.
func (p *Path) HopAddrs() []inet.Addr {
	out := make([]inet.Addr, len(p.hops))
	for i, h := range p.hops {
		out[i] = h.spec.Addr
	}
	return out
}

// BasePropagation sums the propagation delays of the path — the floor of
// the one-way delay, excluding queueing and serialization.
func (p *Path) BasePropagation() time.Duration {
	var d time.Duration
	for _, h := range p.hops {
		d += h.spec.PropDelay
	}
	return d
}

// Bottleneck returns the lowest nominal hop bandwidth in bits/second.
func (p *Path) Bottleneck() float64 {
	if len(p.hops) == 0 {
		return 0
	}
	min := p.hops[0].spec.Bandwidth
	for _, h := range p.hops {
		if h.spec.Bandwidth > 0 && (min <= 0 || h.spec.Bandwidth < min) {
			min = h.spec.Bandwidth
		}
	}
	return min
}

// PathStats aggregates hop counters for reporting. The three drop causes
// stay separate so model loss (the link's loss process), AQM early drops
// and queue overflow are distinguishable in every report.
type PathStats struct {
	Forwarded, DroppedLoss, DroppedFull, DroppedAQM, TTLExpired uint64
}

// Dropped sums every drop cause.
func (s PathStats) Dropped() uint64 {
	return s.DroppedLoss + s.DroppedFull + s.DroppedAQM
}

// Add accumulates another stats value.
func (s *PathStats) Add(o PathStats) {
	s.Forwarded += o.Forwarded
	s.DroppedLoss += o.DroppedLoss
	s.DroppedFull += o.DroppedFull
	s.DroppedAQM += o.DroppedAQM
	s.TTLExpired += o.TTLExpired
}

// Stats sums the counters across hops.
func (p *Path) Stats() PathStats {
	var s PathStats
	for _, h := range p.hops {
		s.Add(h.stats())
	}
	return s
}

func (h *hopState) stats() PathStats {
	return PathStats{
		Forwarded:   h.Forwarded,
		DroppedLoss: h.DroppedLoss,
		DroppedFull: h.DroppedFull,
		DroppedAQM:  h.DroppedAQM,
		TTLExpired:  h.TTLExpired,
	}
}

// HopCounters is one hop's counter snapshot, for per-hop breakdowns.
type HopCounters struct {
	Addr inet.Addr
	PathStats
}

// HopStats returns per-hop counter snapshots in path order.
func (p *Path) HopStats() []HopCounters {
	out := make([]HopCounters, len(p.hops))
	for i, h := range p.hops {
		out[i] = HopCounters{Addr: h.spec.Addr, PathStats: h.stats()}
	}
	return out
}
