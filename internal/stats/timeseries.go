package stats

import (
	"fmt"
	"time"
)

// Sample is one timestamped measurement (timestamp relative to the start of
// a flow or run).
type Sample struct {
	At    time.Duration
	Value float64
}

// TimeSeries accumulates timestamped measurements and reduces them into
// fixed-width buckets. It backs the paper's bandwidth-versus-time
// (Figure 10) and frame-rate-versus-time (Figure 13) plots.
type TimeSeries struct {
	samples []Sample
}

// Add records a measurement at the given offset.
func (ts *TimeSeries) Add(at time.Duration, v float64) {
	ts.samples = append(ts.samples, Sample{At: at, Value: v})
}

// Len reports the number of raw samples.
func (ts *TimeSeries) Len() int { return len(ts.samples) }

// Samples returns the raw samples (not a copy; callers must not mutate).
func (ts *TimeSeries) Samples() []Sample { return ts.samples }

// Span returns the timestamp of the last sample, or zero when empty.
func (ts *TimeSeries) Span() time.Duration {
	if len(ts.samples) == 0 {
		return 0
	}
	max := ts.samples[0].At
	for _, s := range ts.samples {
		if s.At > max {
			max = s.At
		}
	}
	return max
}

// Bucket is one reduced interval of a time series.
type Bucket struct {
	Start time.Duration // inclusive start of the interval
	Sum   float64
	Count int
}

// Mean returns the bucket's average value, or 0 for an empty bucket.
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// Buckets reduces the series into consecutive width-sized intervals covering
// [0, Span]. Empty intervals are included with zero sums so rate plots show
// silence as zero rather than skipping time.
func (ts *TimeSeries) Buckets(width time.Duration) []Bucket {
	if width <= 0 {
		panic(fmt.Sprintf("stats: bucket width must be positive, got %v", width))
	}
	span := ts.Span()
	n := int(span/width) + 1
	if len(ts.samples) == 0 {
		return nil
	}
	out := make([]Bucket, n)
	for i := range out {
		out[i].Start = time.Duration(i) * width
	}
	for _, s := range ts.samples {
		i := int(s.At / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		out[i].Sum += s.Value
		out[i].Count++
	}
	return out
}

// RateSeries converts the series into a rate-per-second curve: each bucket's
// summed value divided by the bucket width in seconds. Feeding per-packet
// byte counts yields bytes/second; the caller scales to bits as needed.
func (ts *TimeSeries) RateSeries(width time.Duration) []Point {
	bs := ts.Buckets(width)
	out := make([]Point, len(bs))
	sec := width.Seconds()
	for i, b := range bs {
		out[i] = Point{X: b.Start.Seconds(), Y: b.Sum / sec}
	}
	return out
}

// MeanSeries converts the series into a bucket-mean curve, used for
// frame-rate-over-time plots where samples are already rates.
func (ts *TimeSeries) MeanSeries(width time.Duration) []Point {
	bs := ts.Buckets(width)
	out := make([]Point, len(bs))
	for i, b := range bs {
		out[i] = Point{X: b.Start.Seconds(), Y: b.Mean()}
	}
	return out
}

// WindowMean returns the mean of samples with At in [from, to).
func (ts *TimeSeries) WindowMean(from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, s := range ts.samples {
		if s.At >= from && s.At < to {
			sum += s.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WindowSum returns the sum of samples with At in [from, to).
func (ts *TimeSeries) WindowSum(from, to time.Duration) float64 {
	sum := 0.0
	for _, s := range ts.samples {
		if s.At >= from && s.At < to {
			sum += s.Value
		}
	}
	return sum
}
