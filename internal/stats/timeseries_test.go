package stats

import (
	"testing"
	"time"
)

func sec(f float64) time.Duration { return time.Duration(f * float64(time.Second)) }

func TestTimeSeriesBuckets(t *testing.T) {
	var ts TimeSeries
	ts.Add(sec(0.1), 10)
	ts.Add(sec(0.9), 20)
	ts.Add(sec(1.5), 30)
	ts.Add(sec(3.2), 40)
	bs := ts.Buckets(time.Second)
	if len(bs) != 4 {
		t.Fatalf("buckets=%d, want 4", len(bs))
	}
	if bs[0].Sum != 30 || bs[0].Count != 2 {
		t.Fatalf("bucket0=%+v", bs[0])
	}
	if bs[1].Sum != 30 || bs[1].Count != 1 {
		t.Fatalf("bucket1=%+v", bs[1])
	}
	if bs[2].Sum != 0 || bs[2].Count != 0 {
		t.Fatalf("empty bucket2=%+v", bs[2])
	}
	if bs[3].Sum != 40 {
		t.Fatalf("bucket3=%+v", bs[3])
	}
	if bs[1].Start != time.Second {
		t.Fatalf("bucket1 start=%v", bs[1].Start)
	}
}

func TestBucketMean(t *testing.T) {
	b := Bucket{Sum: 30, Count: 3}
	if b.Mean() != 10 {
		t.Fatalf("Mean=%v", b.Mean())
	}
	if (Bucket{}).Mean() != 0 {
		t.Fatal("empty bucket mean")
	}
}

func TestRateSeries(t *testing.T) {
	var ts TimeSeries
	// 1000 "bytes" in second 0, 500 in second 1.
	ts.Add(sec(0.2), 400)
	ts.Add(sec(0.7), 600)
	ts.Add(sec(1.1), 500)
	rs := ts.RateSeries(time.Second)
	if len(rs) != 2 {
		t.Fatalf("rate points=%d", len(rs))
	}
	if rs[0].Y != 1000 || rs[1].Y != 500 {
		t.Fatalf("rates=%v", rs)
	}
	if rs[0].X != 0 || rs[1].X != 1 {
		t.Fatalf("rate X=%v", rs)
	}
}

func TestMeanSeries(t *testing.T) {
	var ts TimeSeries
	ts.Add(sec(0.1), 10)
	ts.Add(sec(0.2), 20)
	ts.Add(sec(1.1), 30)
	ms := ts.MeanSeries(time.Second)
	if ms[0].Y != 15 || ms[1].Y != 30 {
		t.Fatalf("means=%v", ms)
	}
}

func TestWindowMeanSum(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 10; i++ {
		ts.Add(time.Duration(i)*time.Second, float64(i))
	}
	if m := ts.WindowMean(sec(2), sec(5)); m != 3 {
		t.Fatalf("WindowMean=%v", m)
	}
	if s := ts.WindowSum(sec(2), sec(5)); s != 9 {
		t.Fatalf("WindowSum=%v", s)
	}
	if m := ts.WindowMean(sec(100), sec(200)); m != 0 {
		t.Fatalf("empty window mean=%v", m)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	var ts TimeSeries
	if ts.Span() != 0 || ts.Len() != 0 {
		t.Fatal("empty series span/len")
	}
	if ts.Buckets(time.Second) != nil {
		t.Fatal("empty series buckets should be nil")
	}
}

func TestBucketsPanicOnZeroWidth(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero width did not panic")
		}
	}()
	ts.Buckets(0)
}

func TestSamplesAccessor(t *testing.T) {
	var ts TimeSeries
	ts.Add(sec(1), 5)
	ss := ts.Samples()
	if len(ss) != 1 || ss[0].Value != 5 || ss[0].At != sec(1) {
		t.Fatalf("Samples=%v", ss)
	}
}
