package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolyEvalAndString(t *testing.T) {
	p := Poly{Coeffs: []float64{1, 2, 3}} // 1 + 2x + 3x^2
	if y := p.Eval(2); y != 17 {
		t.Fatalf("Eval=%v", y)
	}
	if p.Degree() != 2 {
		t.Fatalf("Degree=%d", p.Degree())
	}
	if s := p.String(); s != "1 + 2x + 3x^2" {
		t.Fatalf("String=%q", s)
	}
	if (Poly{}).String() != "0" {
		t.Fatal("empty poly string")
	}
	if (Poly{}).Eval(5) != 0 {
		t.Fatal("empty poly eval")
	}
}

func TestPolyFitExactQuadratic(t *testing.T) {
	// y = 3 - 2x + 0.5x^2 sampled exactly must be recovered exactly.
	truth := Poly{Coeffs: []float64{3, -2, 0.5}}
	var pts []Point
	for x := -5.0; x <= 5; x++ {
		pts = append(pts, Point{X: x, Y: truth.Eval(x)})
	}
	got, err := PolyFit(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range truth.Coeffs {
		if !almostEqual(got.Coeffs[i], c, 1e-8) {
			t.Fatalf("coeff %d = %v, want %v", i, got.Coeffs[i], c)
		}
	}
	if r := RMSE(got, pts); r > 1e-8 {
		t.Fatalf("RMSE=%v", r)
	}
}

func TestPolyFitLeastSquares(t *testing.T) {
	// Noisy line: fit must land near the true slope/intercept.
	pts := []Point{{0, 1.1}, {1, 2.9}, {2, 5.2}, {3, 6.8}, {4, 9.1}}
	slope, intercept, err := LinearFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 0.1 || math.Abs(intercept-1) > 0.25 {
		t.Fatalf("slope=%v intercept=%v", slope, intercept)
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]Point{{1, 1}}, 2); err == nil {
		t.Fatal("too few points should error")
	}
	if _, err := PolyFit([]Point{{1, 1}, {1, 2}, {1, 3}}, 2); err != ErrSingular {
		t.Fatalf("repeated x should be singular, got %v", err)
	}
	if _, err := PolyFit([]Point{{1, 1}}, -1); err == nil {
		t.Fatal("negative degree should error")
	}
}

func TestPolyFitDegreeZero(t *testing.T) {
	p, err := PolyFit([]Point{{0, 2}, {1, 4}, {2, 6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p.Coeffs[0], 4, 1e-9) {
		t.Fatalf("constant fit=%v, want mean 4", p.Coeffs[0])
	}
}

// Property: fitting points generated from a random quadratic recovers it.
func TestPolyFitRecoveryProperty(t *testing.T) {
	f := func(a, b, c int8) bool {
		truth := Poly{Coeffs: []float64{float64(a), float64(b), float64(c)}}
		var pts []Point
		for x := 0.0; x < 8; x++ {
			pts = append(pts, Point{X: x, Y: truth.Eval(x)})
		}
		got, err := PolyFit(pts, 2)
		if err != nil {
			return false
		}
		for i := range truth.Coeffs {
			if !almostEqual(got.Coeffs[i], truth.Coeffs[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSEEmpty(t *testing.T) {
	if RMSE(Poly{Coeffs: []float64{1}}, nil) != 0 {
		t.Fatal("empty RMSE should be 0")
	}
}
