package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N=%d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean=%v", s.Mean)
	}
	if !almostEqual(s.Variance, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance=%v", s.Variance)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max=%v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.StdErr, s.StdDev/math.Sqrt(8), 1e-12) {
		t.Fatalf("StdErr=%v", s.StdErr)
	}
	if s.Sum != 40 {
		t.Fatalf("Sum=%v", s.Sum)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	z := Summarize(nil)
	if z.N != 0 || z.Mean != 0 || z.StdDev != 0 {
		t.Fatalf("empty summary not zero: %+v", z)
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.Variance != 0 || one.StdErr != 0 {
		t.Fatalf("single-sample summary wrong: %+v", one)
	}
}

func TestMedianAndQuantile(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("odd median=%v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median=%v", m)
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := Quantile(xs, 0.5); q != 5 {
		t.Fatalf("q50=%v", q)
	}
	if q := Quantile(xs, 0); q != 0 {
		t.Fatalf("q0=%v", q)
	}
	if q := Quantile(xs, 1); q != 10 {
		t.Fatalf("q1=%v", q)
	}
	if q := Quantile(xs, 0.25); !almostEqual(q, 2.5, 1e-12) {
		t.Fatalf("q25=%v", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestQuantileUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{9, 1, 5}
	_ = Quantile(xs, 0.5)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatal("Quantile mutated its input")
	}
	_ = Median(xs)
	if xs[0] != 9 {
		t.Fatal("Median mutated its input")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 2, 3})
	if !almostEqual(Mean(out), 1, 1e-12) {
		t.Fatalf("normalized mean=%v", Mean(out))
	}
	if !almostEqual(out[0], 0.5, 1e-12) || !almostEqual(out[2], 1.5, 1e-12) {
		t.Fatalf("normalized=%v", out)
	}
	// Zero-mean samples are returned unchanged.
	z := Normalize([]float64{-1, 1})
	if z[0] != -1 || z[1] != 1 {
		t.Fatalf("zero-mean normalize=%v", z)
	}
	in := []float64{2, 4}
	_ = Normalize(in)
	if in[0] != 2 {
		t.Fatal("Normalize mutated input")
	}
}

func TestNormalizeMeanIsOneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, math.Abs(v)+1) // strictly positive sample
			}
		}
		if len(xs) == 0 {
			return true
		}
		return almostEqual(Mean(Normalize(xs)), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 2) != 3 {
		t.Fatal("ratio")
	}
	if Ratio(6, 0) != 0 {
		t.Fatal("zero denominator should yield 0")
	}
}
