package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-width binned count of a sample, the substrate for the
// paper's PDF figures. Bin i covers [Lo + i*Width, Lo + (i+1)*Width); values
// outside [Lo, Hi) are clamped into the first/last bin so no mass is lost.
type Histogram struct {
	Lo, Hi float64
	Width  float64
	Counts []int
	Total  int
}

// NewHistogram builds an empty histogram over [lo,hi) with the given number
// of bins. It panics on a non-positive bin count or an empty range, which
// are always programming errors in the analysis pipeline.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: histogram bins must be positive, got %d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%v,%v) is empty", lo, hi))
	}
	return &Histogram{
		Lo:     lo,
		Hi:     hi,
		Width:  (hi - lo) / float64(bins),
		Counts: make([]int, bins),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(math.Floor((x - h.Lo) / h.Width))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.Total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// Fraction returns the share of all observations that landed in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// PeakBin returns the index of the most populated bin (lowest index wins
// ties) and its fraction of the total mass.
func (h *Histogram) PeakBin() (int, float64) {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best, h.Fraction(best)
}

// MassIn returns the fraction of observations whose bin centers lie within
// [lo, hi].
func (h *Histogram) MassIn(lo, hi float64) float64 {
	if h.Total == 0 {
		return 0
	}
	n := 0
	for i, c := range h.Counts {
		if center := h.BinCenter(i); center >= lo && center <= hi {
			n += c
		}
	}
	return float64(n) / float64(h.Total)
}

// Point is one (X, Y) sample of a curve; the experiment harness emits series
// of Points for every figure.
type Point struct {
	X, Y float64
}

// PDF returns the histogram as a probability density series: for each bin, X
// is the bin center and Y is the *fraction of observations* in the bin, the
// same convention the paper's "Probability Density" axes use (mass per bin,
// not mass per unit). Empty leading/trailing bins are retained so series
// from different flows align.
func (h *Histogram) PDF() []Point {
	out := make([]Point, len(h.Counts))
	for i := range h.Counts {
		out[i] = Point{X: h.BinCenter(i), Y: h.Fraction(i)}
	}
	return out
}

// PDF computes a probability-density series directly from a sample.
func PDF(xs []float64, lo, hi float64, bins int) []Point {
	h := NewHistogram(lo, hi, bins)
	h.AddAll(xs)
	return h.PDF()
}

// CDF returns the empirical cumulative distribution of xs as a step series:
// for each distinct sorted value v, the fraction of observations <= v. This
// matches the paper's CDF figures (1, 2, 9). An empty sample returns nil.
func CDF(xs []float64) []Point {
	n := len(xs)
	if n == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]Point, 0, n)
	for i := 0; i < n; {
		j := i
		for j < n && s[j] == s[i] {
			j++
		}
		out = append(out, Point{X: s[i], Y: float64(j) / float64(n)})
		i = j
	}
	return out
}

// CDFAt evaluates an empirical CDF series at x (fraction of mass <= x).
func CDFAt(cdf []Point, x float64) float64 {
	y := 0.0
	for _, p := range cdf {
		if p.X <= x {
			y = p.Y
		} else {
			break
		}
	}
	return y
}

// InverseCDF returns the smallest x whose cumulative mass reaches q. It is
// the sampling primitive for the Section IV flow generator, which draws
// packet sizes and interarrivals from measured distributions.
func InverseCDF(cdf []Point, q float64) float64 {
	if len(cdf) == 0 {
		return 0
	}
	for _, p := range cdf {
		if p.Y >= q {
			return p.X
		}
	}
	return cdf[len(cdf)-1].X
}
