package stats

import (
	"errors"
	"fmt"
	"math"
)

// Poly is a polynomial with Coeffs[i] the coefficient of x^i.
type Poly struct {
	Coeffs []float64
}

// Eval evaluates the polynomial at x using Horner's rule.
func (p Poly) Eval(x float64) float64 {
	y := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// Degree returns the nominal degree (len-1); trailing zero coefficients are
// not trimmed.
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// String renders the polynomial like "1.5 + 2x + 0.25x^2".
func (p Poly) String() string {
	if len(p.Coeffs) == 0 {
		return "0"
	}
	s := ""
	for i, c := range p.Coeffs {
		term := ""
		switch i {
		case 0:
			term = fmt.Sprintf("%.6g", c)
		case 1:
			term = fmt.Sprintf("%.6gx", c)
		default:
			term = fmt.Sprintf("%.6gx^%d", c, i)
		}
		if i > 0 {
			s += " + "
		}
		s += term
	}
	return s
}

// ErrSingular is returned when the normal equations are not solvable, e.g.
// when there are fewer distinct x values than coefficients.
var ErrSingular = errors.New("stats: singular system in polynomial fit")

// PolyFit computes the least-squares polynomial of the given degree through
// the points, by solving the normal equations with Gaussian elimination and
// partial pivoting. The paper's Figure 3 uses degree-2 ("second order
// polynomial trend curves"); the system is tiny so exact solving is fine.
func PolyFit(pts []Point, degree int) (Poly, error) {
	if degree < 0 {
		return Poly{}, errors.New("stats: negative degree")
	}
	n := degree + 1
	if len(pts) < n {
		return Poly{}, fmt.Errorf("stats: need at least %d points for degree %d, have %d", n, degree, len(pts))
	}
	// Normal equations: A^T A c = A^T y with A the Vandermonde matrix.
	// m[i][j] = sum x^(i+j), rhs[i] = sum y * x^i.
	powSums := make([]float64, 2*n-1)
	rhs := make([]float64, n)
	for _, p := range pts {
		xp := 1.0
		for k := 0; k < len(powSums); k++ {
			powSums[k] += xp
			if k < n {
				rhs[k] += p.Y * xp
			}
			xp *= p.X
		}
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			m[i][j] = powSums[i+j]
		}
		m[i][n] = rhs[i]
	}
	coeffs, err := solve(m)
	if err != nil {
		return Poly{}, err
	}
	return Poly{Coeffs: coeffs}, nil
}

// solve performs Gaussian elimination with partial pivoting on an augmented
// matrix (n rows, n+1 columns) and returns the solution vector.
func solve(m [][]float64) ([]float64, error) {
	n := len(m)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}

// RMSE reports the root-mean-square error of the fit over pts.
func RMSE(p Poly, pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	var ss float64
	for _, pt := range pts {
		d := p.Eval(pt.X) - pt.Y
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(pts)))
}

// LinearFit is a convenience wrapper returning slope and intercept of the
// least-squares line through pts.
func LinearFit(pts []Point) (slope, intercept float64, err error) {
	p, err := PolyFit(pts, 1)
	if err != nil {
		return 0, 0, err
	}
	return p.Coeffs[1], p.Coeffs[0], nil
}
