// Package stats implements the statistical machinery the paper's analysis
// section relies on: probability density functions (Figures 6-8),
// cumulative density functions (Figures 1, 2, 9), per-clip normalisation
// (Figures 7, 9), second-order polynomial trend fitting (Figure 3), summary
// statistics with standard error bars (Figures 14, 15), and bandwidth /
// frame-rate time series bucketing (Figures 10, 12, 13).
//
// Everything operates on plain float64 slices so the capture and tracker
// packages can feed their measurements in directly.
package stats

import (
	"math"
	"sort"
)

// Summary holds the usual moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance
	StdDev   float64
	StdErr   float64 // standard error of the mean
	Min      float64
	Max      float64
	Sum      float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
		s.StdErr = s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median (average of middle pair for even n).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Normalize divides every element by the sample mean, as the paper does for
// "normalized packet size" (Figure 7) and "normalized interarrival time"
// (Figure 9). A zero-mean sample is returned unchanged (copied).
func Normalize(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	m := Mean(xs)
	if m == 0 {
		return out
	}
	for i := range out {
		out[i] /= m
	}
	return out
}

// Ratio returns a/b guarding against a zero denominator.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
