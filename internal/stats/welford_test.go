package stats

import (
	"math"
	"testing"
)

// TestWelfordMatchesSummarize checks the streaming summary against the
// batch Summarize on assorted samples: the mean and sum must match exactly
// (same in-order accumulation), the variance to tight relative tolerance.
func TestWelfordMatchesSummarize(t *testing.T) {
	cases := [][]float64{
		{},
		{42},
		{1, 2, 3, 4, 5},
		{1514, 1514, 1514, 1006, 1514, 590},
		{0.001, 0.0012, 0.0009, 0.0011, 0.0010, 0.0013},
		{-3, 7, -11, 1e6, 2.5, -0.0001},
	}
	for i, xs := range cases {
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		want := Summarize(xs)
		got := w.Summary()
		if got.N != want.N || got.Sum != want.Sum || got.Mean != want.Mean {
			t.Errorf("case %d: N/Sum/Mean = %d/%v/%v, want %d/%v/%v",
				i, got.N, got.Sum, got.Mean, want.N, want.Sum, want.Mean)
		}
		if got.Min != want.Min || got.Max != want.Max {
			t.Errorf("case %d: Min/Max = %v/%v, want %v/%v", i, got.Min, got.Max, want.Min, want.Max)
		}
		if relDiff(got.Variance, want.Variance) > 1e-12 {
			t.Errorf("case %d: Variance = %v, want %v", i, got.Variance, want.Variance)
		}
		if relDiff(got.StdDev, want.StdDev) > 1e-12 {
			t.Errorf("case %d: StdDev = %v, want %v", i, got.StdDev, want.StdDev)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestWelfordIntegerMeansExact pins the bit-exactness contract for
// integer-valued samples: Sum and Mean equal the batch path exactly, which
// is what lets online packet-size means match trace-derived ones.
func TestWelfordIntegerMeansExact(t *testing.T) {
	var w Welford
	xs := make([]float64, 0, 10000)
	v := 1
	for i := 0; i < 10000; i++ {
		v = (v*48271 + 11) % 1513
		x := float64(v + 1)
		xs = append(xs, x)
		w.Add(x)
	}
	s := Summarize(xs)
	if w.Sum != s.Sum || w.Mean() != s.Mean {
		t.Fatalf("integer sample drifted: sum %v vs %v, mean %v vs %v", w.Sum, s.Sum, w.Mean(), s.Mean)
	}
	if w.CV() == 0 {
		t.Fatal("CV unexpectedly zero")
	}
}
