package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{0.5, 1.5, 1.6, 9.9})
	if h.Total != 4 {
		t.Fatalf("Total=%d", h.Total)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("Counts=%v", h.Counts)
	}
	if c := h.BinCenter(1); c != 1.5 {
		t.Fatalf("BinCenter(1)=%v", c)
	}
	if f := h.Fraction(1); f != 0.5 {
		t.Fatalf("Fraction=%v", f)
	}
	bin, frac := h.PeakBin()
	if bin != 1 || frac != 0.5 {
		t.Fatalf("PeakBin=%d,%v", bin, frac)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	h.Add(10) // exactly hi clamps into last bin
	if h.Counts[0] != 1 || h.Counts[4] != 2 {
		t.Fatalf("clamping wrong: %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(5, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramMassIn(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.AddAll([]float64{5, 15, 25, 35, 45})
	if m := h.MassIn(10, 40); !almostEqual(m, 0.6, 1e-12) {
		t.Fatalf("MassIn=%v", m)
	}
	empty := NewHistogram(0, 1, 1)
	if empty.MassIn(0, 1) != 0 {
		t.Fatal("empty MassIn should be 0")
	}
	if empty.Fraction(0) != 0 {
		t.Fatal("empty Fraction should be 0")
	}
}

func TestPDFMassSumsToOne(t *testing.T) {
	pts := PDF([]float64{1, 2, 3, 4, 5, 2, 3, 3}, 0, 10, 20)
	sum := 0.0
	for _, p := range pts {
		sum += p.Y
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("PDF mass=%v", sum)
	}
	if len(pts) != 20 {
		t.Fatalf("PDF bins=%d", len(pts))
	}
}

func TestPDFMassProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(math.Abs(v), 100))
			}
		}
		if len(xs) == 0 {
			return true
		}
		sum := 0.0
		for _, p := range PDF(xs, 0, 100, 17) {
			sum += p.Y
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFProperties(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	cdf := CDF(xs)
	// Monotone nondecreasing in both X and Y, final Y exactly 1.
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X <= cdf[i-1].X {
			t.Fatalf("CDF X not increasing at %d: %v", i, cdf)
		}
		if cdf[i].Y < cdf[i-1].Y {
			t.Fatalf("CDF Y decreasing at %d: %v", i, cdf)
		}
	}
	if last := cdf[len(cdf)-1].Y; last != 1 {
		t.Fatalf("CDF final mass=%v", last)
	}
	// Duplicates collapse: 1 appears twice, so the first step is 2/8.
	if cdf[0].X != 1 || cdf[0].Y != 0.25 {
		t.Fatalf("first step=%+v", cdf[0])
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		cdf := CDF(xs)
		if len(xs) == 0 {
			return cdf == nil
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X <= cdf[i-1].X || cdf[i].Y < cdf[i-1].Y {
				return false
			}
		}
		return almostEqual(cdf[len(cdf)-1].Y, 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CDF([]float64{1, 2, 3, 4})
	if y := CDFAt(cdf, 0); y != 0 {
		t.Fatalf("CDFAt(0)=%v", y)
	}
	if y := CDFAt(cdf, 2); y != 0.5 {
		t.Fatalf("CDFAt(2)=%v", y)
	}
	if y := CDFAt(cdf, 2.5); y != 0.5 {
		t.Fatalf("CDFAt(2.5)=%v", y)
	}
	if y := CDFAt(cdf, 99); y != 1 {
		t.Fatalf("CDFAt(99)=%v", y)
	}
}

func TestInverseCDF(t *testing.T) {
	cdf := CDF([]float64{10, 20, 30, 40})
	if x := InverseCDF(cdf, 0.1); x != 10 {
		t.Fatalf("InverseCDF(0.1)=%v", x)
	}
	if x := InverseCDF(cdf, 0.5); x != 20 {
		t.Fatalf("InverseCDF(0.5)=%v", x)
	}
	if x := InverseCDF(cdf, 1); x != 40 {
		t.Fatalf("InverseCDF(1)=%v", x)
	}
	if InverseCDF(nil, 0.5) != 0 {
		t.Fatal("empty InverseCDF")
	}
}

// Round trip: sampling via InverseCDF over uniform quantiles reproduces the
// original empirical distribution.
func TestInverseCDFRoundTrip(t *testing.T) {
	xs := []float64{1, 1, 2, 5, 5, 5, 9, 12}
	cdf := CDF(xs)
	var resampled []float64
	n := 4000
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / float64(n)
		resampled = append(resampled, InverseCDF(cdf, q))
	}
	sort.Float64s(resampled)
	// The resampled median and quartiles must match the source values.
	if m := Median(resampled); m != 5 {
		t.Fatalf("resampled median=%v", m)
	}
	if q := Quantile(resampled, 0.1); q != 1 {
		t.Fatalf("resampled q10=%v", q)
	}
}
