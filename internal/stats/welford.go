package stats

import "math"

// Welford is a streaming Summary: it accumulates the same moments one
// sample at a time in O(1) state, so analyzers can characterise a flow at
// capture time without materialising the sample slice. The mean is exposed
// as Sum/N — the plain in-order accumulation Summarize performs — so means
// over integer-valued samples (packet sizes, bit counts) match the batch
// path bit for bit. The variance uses Welford's recurrence, whose result
// can differ from the two-pass batch variance by floating-point rounding
// in the last few ulps; everything built on Welford therefore uses it on
// *both* the streaming and the replay path, keeping the two identical.
type Welford struct {
	N        int
	Sum      float64
	Min, Max float64

	mean float64 // Welford running mean, used only by the M2 recurrence
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one sample into the summary.
func (w *Welford) Add(x float64) {
	if w.N == 0 {
		w.Min, w.Max = x, x
	} else {
		if x < w.Min {
			w.Min = x
		}
		if x > w.Max {
			w.Max = x
		}
	}
	w.N++
	w.Sum += x
	d := x - w.mean
	w.mean += d / float64(w.N)
	w.m2 += d * (x - w.mean)
}

// Mean returns Sum/N, or 0 when empty.
func (w *Welford) Mean() float64 {
	if w.N == 0 {
		return 0
	}
	return w.Sum / float64(w.N)
}

// Variance returns the unbiased (n-1) sample variance, or 0 for n < 2.
func (w *Welford) Variance() float64 {
	if w.N < 2 {
		return 0
	}
	return w.m2 / float64(w.N-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.N < 2 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.N))
}

// CV returns the coefficient of variation (StdDev/Mean), or 0 when the
// mean is not positive — the guard ProfileFlow applies.
func (w *Welford) CV() float64 {
	m := w.Mean()
	if m <= 0 {
		return 0
	}
	return w.StdDev() / m
}

// Summary renders the accumulated moments as a batch Summary value.
func (w *Welford) Summary() Summary {
	return Summary{
		N:        w.N,
		Mean:     w.Mean(),
		Variance: w.Variance(),
		StdDev:   w.StdDev(),
		StdErr:   w.StdErr(),
		Min:      w.Min,
		Max:      w.Max,
		Sum:      w.Sum,
	}
}
