package obs

import (
	"sync"
	"time"
)

// An Event is one timestamped entry in a lifecycle trace. The dispatcher
// records one per shard-lifecycle transition (grant, renew, complete,
// expire, reject, quarantine, requeue) so a stuck sweep can be diagnosed
// after the fact without log scraping.
type Event struct {
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Shard  int       `json:"shard"`
	Lease  string    `json:"lease,omitempty"`
	Worker string    `json:"worker,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// A Ring is a fixed-capacity event buffer: appends are O(1) and never
// grow memory; once full, the oldest entry is overwritten. Total keeps
// counting so readers can tell how much history was shed.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int
}

// NewRing returns a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records e, evicting the oldest event if the ring is full.
func (r *Ring) Append(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		out = append(out, r.buf...)
		return out
	}
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever appended, including any the
// ring has since overwritten.
func (r *Ring) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
