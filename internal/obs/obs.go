// Package obs is turbulence's dependency-free observability layer: atomic
// counters and gauges, fixed-bucket histograms, and a Registry that renders
// the Prometheus text exposition format.
//
// The package is built around one asymmetry: metric *updates* sit on hot
// paths (per packet, per simulated event, per lease transition) and must
// not allocate, while metric *rendering* happens only when an operator
// scrapes /metrics and may build whatever buffers it likes. Every update
// method below is a single atomic op (or a short CAS loop for float
// accumulation) on pre-allocated state; all string work is deferred to
// scrape time and rendered with strconv, never fmt — `make lint` enforces
// the fmt ban on this package.
package obs

import (
	"math"
	"sync/atomic"
)

// A Counter is a monotonically increasing uint64. The zero value is not
// usable on its own — obtain counters from a Registry so they render.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe for concurrent use; never allocates.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; Add with a wildly large n is the
// caller's bug, not checked here.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is an int64 that can go up and down (queue depths, active
// leases, high-water marks).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to v if v exceeds the current value — a
// lock-free high-water mark. Concurrent SetMax calls converge on the
// largest value offered.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A FloatGauge holds a float64 (rates, ratios, throughput). Stored as
// raw bits so Set/Value stay single atomic ops.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// A Histogram counts observations into fixed buckets chosen at
// construction. Buckets are cumulative at render time only; Observe
// touches exactly one bucket counter plus the running count and sum.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1; counts[len(bounds)] is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records v. Alloc-free: a linear scan over the (small, fixed)
// bucket list, two atomic adds, and a CAS loop for the float sum.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default bucket layout for per-cell and per-shard
// wall times, in seconds. Sim cells run seconds to minutes; the top
// bucket catches pathological stalls.
var DurationBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// BatchBuckets is the default layout for batch sizes (cells per
// completed shard).
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}
