package obs

import (
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

type kind int

const (
	kindCounter kind = iota
	kindCounterFunc
	kindGauge
	kindFloatGauge
	kindGaugeFunc
	kindHistogram
)

// series is one sample stream: an unlabelled metric has exactly one with
// an empty label value; a vec grows one per distinct label value.
type series struct {
	labelVal string
	c        *Counter
	g        *Gauge
	f        *FloatGauge
	fn       func() float64
	cfn      func() uint64
	h        *Histogram
}

type metric struct {
	name, help string
	kind       kind
	label      string // label key for vecs; empty for plain metrics

	mu      sync.Mutex // guards the two fields below (vec child creation)
	series  []*series
	byLabel map[string]*series
}

// A Registry owns a set of named metrics and renders them in Prometheus
// text exposition format. Registration is not hot-path: do it once at
// construction and hold the returned handles.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric

	snapMu   sync.Mutex
	snapshot func() func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// SetSnapshotLock installs a lock taken around every render: lock is
// called before the first metric is read and the function it returns
// after the last. The dispatcher points this at its state mutex so a
// scrape observes one consistent coordinator state (lease accounting
// balances exactly, mid-sweep). GaugeFunc callbacks run while the
// snapshot lock is held, so they must read their state without
// re-acquiring it.
func (r *Registry) SetSnapshotLock(lock func() func()) {
	r.snapMu.Lock()
	r.snapshot = lock
	r.snapMu.Unlock()
}

func (r *Registry) register(name, help string, k kind, label string) *metric {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	m := &metric{name: name, help: help, kind: k, label: label}
	if label != "" {
		m.byLabel = make(map[string]*series)
	}
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers and returns a new unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter, "")
	c := &Counter{}
	m.series = []*series{{c: c}}
	return c
}

// Gauge registers and returns a new unlabelled int gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge, "")
	g := &Gauge{}
	m.series = []*series{{g: g}}
	return g
}

// FloatGauge registers and returns a new unlabelled float gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	m := r.register(name, help, kindFloatGauge, "")
	f := &FloatGauge{}
	m.series = []*series{{f: f}}
	return f
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. If a snapshot lock is installed, fn runs under it.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, kindGaugeFunc, "")
	m.series = []*series{{fn: fn}}
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — for components that keep their own atomic tallies (the result
// store's hit/miss counters) and should render with the counter TYPE
// rather than masquerade as gauges. fn must be monotonic non-decreasing;
// if a snapshot lock is installed, it runs under it.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	m := r.register(name, help, kindCounterFunc, "")
	m.series = []*series{{cfn: fn}}
}

// Histogram registers and returns a histogram with the given ascending
// upper bucket bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, kindHistogram, "")
	h := newHistogram(bounds)
	m.series = []*series{{h: h}}
	return h
}

// A CounterVec is a family of counters keyed by one label value
// (typically a worker name or drop cause). With allocates only on the
// first sighting of a value — callers on hot paths cache the child.
type CounterVec struct{ m *metric }

// CounterVec registers a counter family with the given label key.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if label == "" {
		panic("obs: CounterVec needs a label key")
	}
	return &CounterVec{m: r.register(name, help, kindCounter, label)}
}

// With returns the child counter for the given label value, creating it
// on first use.
func (v *CounterVec) With(value string) *Counter {
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	if s, ok := v.m.byLabel[value]; ok {
		return s.c
	}
	s := &series{labelVal: value, c: &Counter{}}
	v.m.byLabel[value] = s
	v.m.series = append(v.m.series, s)
	return s.c
}

// A FloatGaugeVec is a family of float gauges keyed by one label value.
type FloatGaugeVec struct{ m *metric }

// FloatGaugeVec registers a float gauge family with the given label key.
func (r *Registry) FloatGaugeVec(name, help, label string) *FloatGaugeVec {
	if label == "" {
		panic("obs: FloatGaugeVec needs a label key")
	}
	return &FloatGaugeVec{m: r.register(name, help, kindFloatGauge, label)}
}

// With returns the child gauge for the given label value, creating it on
// first use.
func (v *FloatGaugeVec) With(value string) *FloatGauge {
	v.m.mu.Lock()
	defer v.m.mu.Unlock()
	if s, ok := v.m.byLabel[value]; ok {
		return s.f
	}
	s := &series{labelVal: value, f: &FloatGauge{}}
	v.m.byLabel[value] = s
	v.m.series = append(v.m.series, s)
	return s.f
}

// WriteText renders every registered metric in Prometheus text
// exposition format. Series within a vec are sorted by label value so
// output is deterministic. Rendering allocates (it is scrape-time, not
// hot-path) but uses strconv throughout.
func (r *Registry) WriteText(w io.Writer) error {
	r.snapMu.Lock()
	snap := r.snapshot
	r.snapMu.Unlock()

	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	buf := make([]byte, 0, 4096)
	if snap != nil {
		unlock := snap()
		defer unlock()
	}
	for _, m := range metrics {
		buf = m.render(buf)
	}
	_, err := w.Write(buf)
	return err
}

// Handler returns an http.Handler serving WriteText, suitable for
// mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

func (m *metric) render(buf []byte) []byte {
	m.mu.Lock()
	series := make([]*series, len(m.series))
	copy(series, m.series)
	m.mu.Unlock()
	if len(series) == 0 {
		return buf
	}
	sort.Slice(series, func(i, j int) bool { return series[i].labelVal < series[j].labelVal })

	buf = append(buf, "# HELP "...)
	buf = append(buf, m.name...)
	buf = append(buf, ' ')
	buf = appendEscapedHelp(buf, m.help)
	buf = append(buf, "\n# TYPE "...)
	buf = append(buf, m.name...)
	switch m.kind {
	case kindCounter, kindCounterFunc:
		buf = append(buf, " counter\n"...)
	case kindHistogram:
		buf = append(buf, " histogram\n"...)
	default:
		buf = append(buf, " gauge\n"...)
	}
	for _, s := range series {
		switch m.kind {
		case kindCounter:
			buf = appendSeriesName(buf, m.name, m.label, s.labelVal)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, s.c.Value(), 10)
			buf = append(buf, '\n')
		case kindCounterFunc:
			buf = appendSeriesName(buf, m.name, m.label, s.labelVal)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, s.cfn(), 10)
			buf = append(buf, '\n')
		case kindGauge:
			buf = appendSeriesName(buf, m.name, m.label, s.labelVal)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, s.g.Value(), 10)
			buf = append(buf, '\n')
		case kindFloatGauge:
			buf = appendSeriesName(buf, m.name, m.label, s.labelVal)
			buf = append(buf, ' ')
			buf = appendFloat(buf, s.f.Value())
			buf = append(buf, '\n')
		case kindGaugeFunc:
			buf = appendSeriesName(buf, m.name, m.label, s.labelVal)
			buf = append(buf, ' ')
			buf = appendFloat(buf, s.fn())
			buf = append(buf, '\n')
		case kindHistogram:
			buf = s.h.render(buf, m.name)
		}
	}
	return buf
}

// render emits the cumulative bucket series, then _sum and _count.
func (h *Histogram) render(buf []byte, name string) []byte {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		buf = append(buf, name...)
		buf = append(buf, `_bucket{le="`...)
		buf = appendFloat(buf, bound)
		buf = append(buf, `"} `...)
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	buf = append(buf, name...)
	buf = append(buf, `_bucket{le="+Inf"} `...)
	buf = strconv.AppendUint(buf, cum, 10)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_sum "...)
	buf = appendFloat(buf, h.Sum())
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count "...)
	buf = strconv.AppendUint(buf, h.Count(), 10)
	buf = append(buf, '\n')
	return buf
}

func appendSeriesName(buf []byte, name, label, value string) []byte {
	buf = append(buf, name...)
	if label != "" {
		buf = append(buf, '{')
		buf = append(buf, label...)
		buf = append(buf, `="`...)
		buf = appendEscapedLabel(buf, value)
		buf = append(buf, `"}`...)
	}
	return buf
}

// appendFloat renders a float the way Prometheus expects: shortest
// round-trip form, with integral values kept bare ("3" not "3e+00").
func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendEscapedHelp escapes backslash and newline, per the exposition
// format's HELP rules.
func appendEscapedHelp(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, `\\`...)
		case '\n':
			buf = append(buf, `\n`...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// appendEscapedLabel escapes backslash, double-quote, and newline, per
// the exposition format's label value rules.
func appendEscapedLabel(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, `\\`...)
		case '"':
			buf = append(buf, `\"`...)
		case '\n':
			buf = append(buf, `\n`...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}
