package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"turbulence/internal/racecheck"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return sb.String()
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	f := r.FloatGauge("f", "a float gauge")

	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	g.SetMax(2)
	if g.Value() != 4 {
		t.Fatalf("SetMax lowered the gauge to %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax(9) = %d", g.Value())
	}
	f.Set(1.5)
	if f.Value() != 1.5 {
		t.Fatalf("float gauge = %v, want 1.5", f.Value())
	}

	out := render(t, r)
	for _, want := range []string{
		"# HELP c_total a counter\n# TYPE c_total counter\nc_total 5\n",
		"# TYPE g gauge\ng 9\n",
		"# TYPE f gauge\nf 1.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramCumulative pins the exposition-format invariants: bucket
// counts are cumulative, the +Inf bucket equals _count, and _sum is the
// float sum of observations.
func TestHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.5, 1, 2})
	for _, v := range []float64{0.1, 0.5, 0.9, 1.5, 99} {
		h.Observe(v)
	}
	out := render(t, r)
	wantLines := []string{
		`lat_seconds_bucket{le="0.5"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="2"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 102`,
		`lat_seconds_count 5`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("histogram output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 || math.Abs(h.Sum()-102) > 1e-9 {
		t.Fatalf("Count=%d Sum=%v, want 5, 102", h.Count(), h.Sum())
	}
}

// TestRenderEscaping covers the exposition format's escape rules: label
// values escape backslash, quote and newline; HELP text escapes
// backslash and newline.
func TestRenderEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "line one\nwith \\ slash", "who").With("a\"b\\c\nd").Inc()
	out := render(t, r)
	if !strings.Contains(out, `# HELP esc_total line one\nwith \\ slash`+"\n") {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{who="a\"b\\c\nd"} 1`+"\n") {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestRenderLabelOrdering pins deterministic output: vec children render
// sorted by label value regardless of creation order.
func TestRenderLabelOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jobs_total", "jobs", "worker")
	v.With("zeta").Add(3)
	v.With("alpha").Add(1)
	v.With("mike").Add(2)
	out := render(t, r)
	a := strings.Index(out, `jobs_total{worker="alpha"} 1`)
	m := strings.Index(out, `jobs_total{worker="mike"} 2`)
	z := strings.Index(out, `jobs_total{worker="zeta"} 3`)
	if a < 0 || m < 0 || z < 0 || !(a < m && m < z) {
		t.Fatalf("vec series not sorted by label value (indices %d, %d, %d):\n%s", a, m, z, out)
	}
	// With returns the same child for the same value.
	if v.With("alpha") != v.With("alpha") {
		t.Fatal("With(value) not stable")
	}
}

func TestGaugeFuncAndSnapshotLock(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	locked := false
	val := 0.0
	r.SetSnapshotLock(func() func() {
		mu.Lock()
		locked = true
		return func() { locked = false; mu.Unlock() }
	})
	r.GaugeFunc("depth", "queue depth", func() float64 {
		if !locked {
			t.Error("GaugeFunc ran without the snapshot lock held")
		}
		return val
	})
	val = 42
	if out := render(t, r); !strings.Contains(out, "depth 42\n") {
		t.Fatalf("GaugeFunc output wrong:\n%s", out)
	}
	if locked {
		t.Fatal("snapshot lock not released after render")
	}
}

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	var hits uint64
	r.CounterFunc("cache_hits_total", "store hits", func() uint64 { return hits })
	hits = 17
	out := render(t, r)
	want := "# HELP cache_hits_total store hits\n# TYPE cache_hits_total counter\ncache_hits_total 17\n"
	if !strings.Contains(out, want) {
		t.Fatalf("CounterFunc output missing %q:\n%s", want, out)
	}
}

func TestRingWraparound(t *testing.T) {
	ring := NewRing(3)
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		ring.Append(Event{At: base.Add(time.Duration(i) * time.Second), Kind: "lease", Shard: i})
	}
	if ring.Total() != 5 {
		t.Fatalf("Total = %d, want 5", ring.Total())
	}
	got := ring.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Shard != i+2 {
			t.Fatalf("Snapshot[%d].Shard = %d, want %d (oldest-first order)", i, e.Shard, i+2)
		}
	}
}

// TestHotPathAllocFree is the obs allocation pin: every update method a
// hot path can reach — counter/gauge bumps, histogram observation,
// cached vec children, and the sink's feed methods — must not allocate.
func TestHotPathAllocFree(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation pins are unreliable under -race")
	}
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	f := r.FloatGauge("f", "f")
	h := r.Histogram("h", "h", DurationBuckets)
	child := r.CounterVec("v_total", "v", "k").With("cached")
	sink := NewSink(NewRegistry())

	i := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		c.Inc()
		c.Add(2)
		g.Set(i)
		g.Add(-1)
		g.SetMax(i)
		f.Set(float64(i))
		h.Observe(float64(i % 7))
		child.Inc()
		sink.ObserveCell(1.25, i%2 == 0)
		sink.AddSim(10, 9, int(i%100), int(i%50))
		sink.AddDrops(1, 2, 3, 4)
		sink.AddTestbeds(1, 12)
	})
	if allocs > 0 {
		t.Fatalf("hot-path update allocates %.3f times per round, want 0", allocs)
	}
}
