package obs

// A Sink aggregates sweep-level metrics from a running Runner: per-cell
// wall times from the Progress stream, eventsim scheduler counters,
// capture volume, and netem drop tallies. It is handed to the runner via
// a functional option; every feed method below is alloc-free so the
// runner can call them from its serialized finish path and the capture
// tap can bump the packet counters per packet.
//
// The Sink registers its metrics on the Registry passed to NewSink;
// serving that registry over HTTP (Registry.Handler) is the caller's
// choice — cmd/turbulence does it under the -metrics flag.
type Sink struct {
	// Cells.
	CellsDone   *Counter
	CellErrors  *Counter
	CellSeconds *Histogram

	// Eventsim scheduler totals, accumulated across cells.
	TimersScheduled *Counter
	EventsFired     *Counter
	HeapDepthPeak   *Gauge // high-water across all cells
	WheelDepthPeak  *Gauge // high-water timing-wheel bucket occupancy across all cells

	// Testbed economy under reset-reuse (fed once per sweep).
	TestbedsBuilt  *Counter
	TestbedsReused *Counter

	// Capture volume (fed per packet by capture.CounterTap).
	Packets *Counter
	Bytes   *Counter

	// Netem drops by cause.
	dropLoss *Counter
	dropFull *Counter
	dropAQM  *Counter
	dropTTL  *Counter
}

// NewSink registers the runner metric set on reg and returns the sink.
func NewSink(reg *Registry) *Sink {
	s := &Sink{
		CellsDone:   reg.Counter("turbulence_cells_completed_total", "Sweep cells finished (including failed ones)."),
		CellErrors:  reg.Counter("turbulence_cell_errors_total", "Sweep cells that finished with an error."),
		CellSeconds: reg.Histogram("turbulence_cell_seconds", "Wall-clock seconds per sweep cell.", DurationBuckets),

		TimersScheduled: reg.Counter("turbulence_sim_timers_scheduled_total", "Events pushed onto eventsim scheduler heaps."),
		EventsFired:     reg.Counter("turbulence_sim_events_fired_total", "Events dispatched by eventsim schedulers."),
		HeapDepthPeak:   reg.Gauge("turbulence_sim_heap_depth_peak", "High-water eventsim heap depth across all cells."),
		WheelDepthPeak:  reg.Gauge("turbulence_sim_wheel_depth_peak", "High-water eventsim timing-wheel bucket occupancy across all cells (zero under the heap backend)."),

		TestbedsBuilt:  reg.Counter("turbulence_testbeds_built_total", "Testbeds constructed from scratch by sweep workers."),
		TestbedsReused: reg.Counter("turbulence_testbeds_reused_total", "Sweep cells served by resetting a cached testbed instead of building one."),

		Packets: reg.Counter("turbulence_capture_packets_total", "Packets observed by the capture tap."),
		Bytes:   reg.Counter("turbulence_capture_bytes_total", "Payload bytes observed by the capture tap."),
	}
	drops := reg.CounterVec("turbulence_netem_drops_total", "Packets dropped in the network simulator, by cause.", "cause")
	s.dropLoss = drops.With("loss")
	s.dropFull = drops.With("full")
	s.dropAQM = drops.With("aqm")
	s.dropTTL = drops.With("ttl")
	return s
}

// ObserveCell records one finished cell: its wall time and whether it
// failed.
func (s *Sink) ObserveCell(seconds float64, failed bool) {
	s.CellsDone.Inc()
	if failed {
		s.CellErrors.Inc()
	}
	s.CellSeconds.Observe(seconds)
}

// AddSim folds in one cell's scheduler counters. wheelPeak is zero when
// the cell ran on the default heap backend.
func (s *Sink) AddSim(scheduled, fired uint64, heapPeak, wheelPeak int) {
	s.TimersScheduled.Add(scheduled)
	s.EventsFired.Add(fired)
	s.HeapDepthPeak.SetMax(int64(heapPeak))
	s.WheelDepthPeak.SetMax(int64(wheelPeak))
}

// AddTestbeds folds in one sweep's testbed economy: testbeds constructed
// versus cells served by reset-reuse.
func (s *Sink) AddTestbeds(built, reused uint64) {
	s.TestbedsBuilt.Add(built)
	s.TestbedsReused.Add(reused)
}

// AddDrops folds in one cell's netem drop tallies.
func (s *Sink) AddDrops(loss, full, aqm, ttl uint64) {
	s.dropLoss.Add(loss)
	s.dropFull.Add(full)
	s.dropAQM.Add(aqm)
	s.dropTTL.Add(ttl)
}
