package rdt

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
	"turbulence/internal/scaling"
	"turbulence/internal/segment"
	"turbulence/internal/transport"
)

// Tuning constants for the RealServer behavioural model. Values are chosen
// so the emergent traffic reproduces the paper's Figures 6-11; DESIGN.md
// records the calibration reasoning.
const (
	// MaxBufferRatio caps the buffering burst at three times the playout
	// rate (paper §3.F: "RealPlayer can buffer at up to three times the
	// playout rate").
	MaxBufferRatio = 3.0
	// ShareFactor is the fraction of the client-reported bottleneck
	// bandwidth the buffering burst may claim; the rest is headroom for
	// concurrent traffic (the paired MediaPlayer stream in the paper's
	// methodology).
	ShareFactor = 0.45
	// PlayOverhead is the post-burst pacing rate relative to the encoding
	// rate: protocol overhead plus resends make RealPlayer consume
	// slightly more than its encoding rate (paper §3.B, Figure 3).
	PlayOverhead = 1.05
	// BufferAheadTarget is how much media the burst pushes ahead of real
	// time before the server settles to the playout rate; with the
	// rate-dependent burst ratios this yields the paper's ~20 s (low rate)
	// to ~40+ s (high rate) burst durations.
	BufferAheadTarget = 30 * time.Second
	// MaxPayload keeps every RDT packet below the path MTU — the reason
	// the paper finds zero IP fragments in RealPlayer traces.
	MaxPayload = 1400
	// ResendWindow is how many recent packets the server retains for NAK
	// retransmission.
	ResendWindow = 512
	// PacingJitter is the +-fraction applied to packet pacing gaps,
	// producing the wide interarrival spread of Figures 8-9.
	PacingJitter = 0.35
)

// PacketSizeMean returns the target mean RDT payload for an encoding rate:
// larger packets at higher rates, always well under the MTU.
func PacketSizeMean(encodedBps float64) float64 {
	mu := 500 + 0.6*(encodedBps/1000)
	if mu < 450 {
		mu = 450
	}
	if mu > 1000 {
		mu = 1000
	}
	return mu
}

// BurstRate computes the buffering-phase send rate for an encoding rate
// and a client-reported bottleneck estimate: up to MaxBufferRatio x the
// encoding rate, capped by the share of the bottleneck the burst may take
// (paper Figure 11's declining ratio).
func BurstRate(encodedBps, bottleneckBps float64) float64 {
	rate := MaxBufferRatio * encodedBps
	if bottleneckBps > 0 {
		if cap_ := ShareFactor * bottleneckBps; cap_ < rate {
			rate = cap_
		}
	}
	if min := PlayOverhead * encodedBps; rate < min {
		rate = min
	}
	return rate
}

// Server is a RealServer host: RTSP control on port 554, RDT data to the
// client's chosen port.
type Server struct {
	host  transport.Transport
	rng   *eventsim.RNG
	clips map[string]media.Clip

	sessions map[inet.Endpoint]*session

	// uncappedBurst ignores the client's bottleneck estimate — the
	// ablation that shows Figure 11's ratio decline comes from the
	// bottleneck cap, not from the encoding rate itself.
	uncappedBurst bool

	// scalingOn enables SureStream-style thinning driven by REPORT
	// messages (the §VI media-scaling extension).
	scalingOn bool

	// ctrlFn is the bound control handler, created once so Reset can rebind
	// the control port without allocating a method value.
	ctrlFn transport.UDPHandler

	// Packet-economy pools, owned by the server so they survive both
	// session teardown and Reset: enc is the per-packet segment-list
	// scratch (copied into the data packet immediately), freePkts recycles
	// data-packet buffers evicted from resend windows, and ringPool
	// recycles whole resend rings between sessions. Together they make
	// steady-state streaming on a reused testbed allocation-free once the
	// first run has filled the window.
	enc      []byte
	freePkts [][]byte
	ringPool []*resendRing
	rngPool  []*eventsim.RNG
	// probes caches the SETUP bandwidth-probe train: packet i's bytes are
	// a pure function of i, and the UDP layer copies every send.
	probes [ProbeTrainLen][]byte

	// Counters.
	Described, Setup, Played, TornDown, NAKsReceived, Resent int
	// ThinSteps counts scaling level increases across sessions.
	ThinSteps int
}

type session struct {
	srv            *Server
	ctl            inet.Endpoint // client control endpoint
	data           inet.Endpoint // client data endpoint
	clip           media.Clip
	cutter         *segment.Cutter
	rng            *eventsim.RNG
	started        eventsim.Time
	seq            uint32
	burstBps       float64
	playBps        float64
	sentMediaBytes float64
	ctrl           scaling.Controller
	rateFactor     float64 // pacing-rate multiplier from media scaling
	byteFrac       [scaling.MaxLevel + 1]float64
	resend         *resendRing
	playing        bool
	done           bool
	nextSend       eventsim.Timer
}

// resendRing holds the last ResendWindow data packets for NAK
// retransmission, indexed by sequence number modulo the window. Sequence
// numbers are consecutive per session, so the ring holds exactly the same
// window a map keyed by seq would — without the map's per-insert churn.
// A slot's packet is valid only when its recorded seq matches the lookup
// (pkts[slot] non-nil guards the seq-0 zero value).
type resendRing struct {
	pkts [ResendWindow][]byte
	seqs [ResendWindow]uint32
}

// pktBufCap is the uniform recycled data-packet buffer capacity: sized for
// the largest packet any session can emit, so one server-wide free list
// serves every clip's size class. The slack beyond MaxPayload covers the
// segment-list framing — tiny delta frames can pack over a hundred
// segment headers into one packet.
const pktBufCap = dataHeaderLen + MaxPayload + 1024

// NewServer attaches a RealServer to a simulated host.
func NewServer(host *netsim.Host) *Server {
	return NewServerOn(transport.NewSim(host))
}

// NewServerOn attaches a RealServer to any transport (simulated or live).
func NewServerOn(t transport.Transport) *Server {
	s := &Server{
		host:     t,
		rng:      t.RNG("rdt.server"),
		clips:    make(map[string]media.Clip),
		sessions: make(map[inet.Endpoint]*session),
	}
	s.ctrlFn = s.onControl
	t.BindUDP(inet.PortRTSPCtl, s.ctrlFn)
	return s
}

// Reset restores the server to its post-NewServerOn state: sessions clear,
// ablation switches revert, counters zero, and the control port rebinds.
// The server RNG re-splits from the transport's (already reseeded) root —
// the same construction-time draw a fresh build performs, in the same
// order, which is what keeps reused runs byte-identical to fresh ones.
// Registered clips are retained.
func (s *Server) Reset() {
	for _, sess := range s.sessions {
		sess.done = true
		sess.recycle()
	}
	clear(s.sessions)
	s.uncappedBurst = false
	s.scalingOn = false
	s.Described = 0
	s.Setup = 0
	s.Played = 0
	s.TornDown = 0
	s.NAKsReceived = 0
	s.Resent = 0
	s.ThinSteps = 0
	s.rng = s.host.RNGInto("rdt.server", s.rng)
	s.host.BindUDP(inet.PortRTSPCtl, s.ctrlFn)
}

// Register serves a clip under rtsp://<host>/<ref>.
func (s *Server) Register(ref string, clip media.Clip) { s.clips[ref] = clip }

// SetUncappedBurst disables the bottleneck cap on the buffering burst (an
// ablation hook; see DESIGN.md §4).
func (s *Server) SetUncappedBurst(on bool) { s.uncappedBurst = on }

// EnableScaling turns on SureStream-style thinning: the server reacts to
// REPORTed loss by dropping delta frames, reducing its offered rate.
func (s *Server) EnableScaling(on bool) { s.scalingOn = on }

// Host returns the transport the server is attached to.
func (s *Server) Host() transport.Transport { return s.host }

// ActiveSessions reports streams in flight.
func (s *Server) ActiveSessions() int { return len(s.sessions) }

// clipRefFromURL extracts the clip reference from an rtsp:// URL.
func clipRefFromURL(url string) string {
	trimmed := strings.TrimPrefix(url, "rtsp://")
	if i := strings.IndexByte(trimmed, '/'); i >= 0 {
		return trimmed[i+1:]
	}
	return trimmed
}

func (s *Server) reply(to inet.Endpoint, resp Response) {
	s.host.SendUDP(inet.PortRTSPCtl, to, MarshalResponse(resp))
}

func (s *Server) onControl(now eventsim.Time, from inet.Endpoint, payload []byte) {
	if !IsRequest(payload) {
		return
	}
	req, err := ParseRequest(payload)
	if err != nil {
		return
	}
	switch req.Method {
	case MethodDescribe:
		s.handleDescribe(from, req)
	case MethodSetup:
		s.handleSetup(now, from, req)
	case MethodPlay:
		s.handlePlay(now, from, req)
	case MethodTeardown:
		s.handleTeardown(from, req)
	case MethodNAK:
		s.handleNAK(from, req)
	case MethodReport:
		s.handleReport(from, req)
	default:
		s.reply(from, Response{Status: 455, CSeq: req.CSeq})
	}
}

func (s *Server) handleDescribe(from inet.Endpoint, req Request) {
	s.Described++
	clip, ok := s.clips[clipRefFromURL(req.URL)]
	if !ok {
		s.reply(from, Response{Status: 404, CSeq: req.CSeq})
		return
	}
	s.reply(from, Response{Status: 200, CSeq: req.CSeq, Headers: map[string]string{
		"Encoded-Rate": strconv.Itoa(int(clip.EncodedBps())),
		"Frame-Rate":   fmt.Sprintf("%.3f", clip.FrameRate()),
		"Duration-Ms":  strconv.Itoa(int(clip.Duration / time.Millisecond)),
		"Total-Frames": strconv.Itoa(clip.TotalFrames()),
	}})
}

// handleSetup creates the session and fires the bandwidth-probe train at
// the client's data port: ProbeTrainLen back-to-back packets whose
// dispersion at the bottleneck lets the client estimate path capacity
// (RealPlayer's "bandwidth detection").
func (s *Server) handleSetup(now eventsim.Time, from inet.Endpoint, req Request) {
	clip, ok := s.clips[clipRefFromURL(req.URL)]
	if !ok {
		s.reply(from, Response{Status: 404, CSeq: req.CSeq})
		return
	}
	port := req.IntHeader("Client-Port", 0)
	if port <= 0 || port > 0xFFFF {
		s.reply(from, Response{Status: 455, CSeq: req.CSeq})
		return
	}
	s.Setup++
	dataEP := inet.Endpoint{Addr: from.Addr, Port: inet.Port(port)}
	if old := s.sessions[from]; old != nil {
		old.stop()
	}
	var sessRNG *eventsim.RNG
	if n := len(s.rngPool); n > 0 {
		sessRNG = s.rngPool[n-1]
		s.rngPool = s.rngPool[:n-1]
	}
	sess := &session{
		srv:  s,
		ctl:  from,
		data: dataEP,
		clip: clip,
		rng:  s.rng.SplitInto("session/"+from.String()+"/"+clip.Name(), sessRNG),
	}
	if n := len(s.ringPool); n > 0 {
		sess.resend = s.ringPool[n-1]
		s.ringPool = s.ringPool[:n-1]
	} else {
		sess.resend = new(resendRing)
	}
	s.sessions[from] = sess
	s.reply(from, Response{Status: 200, CSeq: req.CSeq, Headers: map[string]string{
		"Transport": fmt.Sprintf("x-real-rdt/udp;client_port=%d", port),
	}})
	for i := 0; i < ProbeTrainLen; i++ {
		if s.probes[i] == nil {
			s.probes[i] = MarshalProbe(i)
		}
		s.host.SendUDP(inet.PortRDTData, dataEP, s.probes[i])
	}
}

func (s *Server) handlePlay(now eventsim.Time, from inet.Endpoint, req Request) {
	sess := s.sessions[from]
	if sess == nil {
		s.reply(from, Response{Status: 455, CSeq: req.CSeq})
		return
	}
	s.reply(from, Response{Status: 200, CSeq: req.CSeq})
	if sess.playing {
		return // duplicate PLAY (client retry); stream already running
	}
	s.Played++
	bottleneck := float64(req.IntHeader("Bandwidth", 0))
	if s.uncappedBurst {
		bottleneck = 0
	}
	sess.start(now, bottleneck)
}

func (s *Server) handleTeardown(from inet.Endpoint, req Request) {
	s.TornDown++
	if sess := s.sessions[from]; sess != nil {
		sess.stop()
	}
	s.reply(from, Response{Status: 200, CSeq: req.CSeq})
}

// handleNAK retransmits requested packets from the resend window, marked
// with FlagRetrans.
func (s *Server) handleNAK(from inet.Endpoint, req Request) {
	sess := s.sessions[from]
	if sess == nil {
		return
	}
	s.NAKsReceived++
	for _, seq := range ParseSeqList(req.Header("Seqs")) {
		if pkt := sess.resendPkt(seq); pkt != nil {
			resent := append([]byte(nil), pkt...)
			resent[9] |= FlagRetrans
			s.host.SendUDP(inet.PortRDTData, sess.data, resent)
			s.Resent++
		}
	}
}

// handleReport applies media scaling from a reception-quality report:
// thinning filters frames and scales the pacing rate by the level's byte
// fraction so the offered bit rate actually falls.
func (s *Server) handleReport(from inet.Endpoint, req Request) {
	if !s.scalingOn {
		return
	}
	sess := s.sessions[from]
	if sess == nil || sess.cutter == nil {
		return
	}
	before := sess.ctrl.Level()
	level := sess.ctrl.Report(req.IntHeader("Loss", 0))
	if level > before {
		s.ThinSteps++
	}
	if level == scaling.Full {
		sess.cutter.SetFilter(nil)
		sess.rateFactor = 1
		return
	}
	sess.cutter.SetFilter(level.Admit)
	sess.rateFactor = sess.byteFrac[level]
	if sess.rateFactor < 0.05 {
		sess.rateFactor = 0.05
	}
}

// start launches the pacing loop for a session.
func (sess *session) start(now eventsim.Time, bottleneckBps float64) {
	// The frame index is shared and read-only; Cutter and ByteFractions
	// only ever read it.
	sizes, keys := media.FrameIndex(sess.clip)
	sess.cutter = segment.NewCutter(sizes, keys)
	sess.started = now
	sess.playing = true
	sess.rateFactor = 1
	sess.byteFrac = scaling.ByteFractions(sizes, keys)
	enc := sess.clip.EncodedBps()
	sess.burstBps = BurstRate(enc, bottleneckBps)
	sess.playBps = PlayOverhead * enc
	sess.sendNext(now)
}

// currentRate selects burst or playout pacing: the burst runs until the
// transmitted media leads real time by BufferAheadTarget.
func (sess *session) currentRate(now eventsim.Time) float64 {
	encBytesPerSec := sess.clip.EncodedBps() / 8
	mediaSent := time.Duration(sess.sentMediaBytes / encBytesPerSec * float64(time.Second))
	elapsed := now.Sub(sess.started)
	rate := sess.playBps
	if mediaSent < elapsed+BufferAheadTarget {
		rate = sess.burstBps
	}
	return rate * sess.rateFactor
}

// sendNextStep is the static event callback of the per-packet send timer;
// passing the session as the event argument keeps the pacing loop free of
// per-packet closure allocations.
func sendNextStep(now eventsim.Time, arg any) { arg.(*session).sendNext(now) }

// sendNext emits one variable-size packet and schedules its successor.
func (sess *session) sendNext(now eventsim.Time) {
	if sess.done {
		return
	}
	if sess.cutter.Done() {
		sess.finish()
		return
	}
	mu := PacketSizeMean(sess.clip.EncodedBps())
	size := sess.rng.TruncNormal(mu, 0.3*mu, 0.5*mu, 1.9*mu)
	if size > MaxPayload {
		size = MaxPayload
	}
	segs := sess.cutter.Next(int(size))
	srv := sess.srv
	srv.enc = segment.AppendList(srv.enc[:0], segs)
	encBytesPerSec := sess.clip.EncodedBps() / 8
	tsMs := uint32(sess.sentMediaBytes / encBytesPerSec * 1000)
	var buf []byte
	if n := len(srv.freePkts); n > 0 {
		buf = srv.freePkts[n-1][:0]
		srv.freePkts = srv.freePkts[:n-1]
	}
	if need := dataHeaderLen + len(srv.enc); cap(buf) < need {
		if buf != nil {
			srv.freePkts = append(srv.freePkts, buf) // undersized; back to the pool
		}
		if need < pktBufCap {
			need = pktBufCap
		}
		buf = make([]byte, 0, need)
	}
	pkt := AppendData(buf, DataHeader{Seq: sess.seq, TSms: tsMs}, srv.enc)
	sess.srv.host.SendUDP(inet.PortRDTData, sess.data, pkt)
	sess.remember(sess.seq, pkt)
	sess.seq++
	for _, sg := range segs {
		sess.sentMediaBytes += float64(sg.Length)
	}

	rate := sess.currentRate(now)
	gapSec := float64(len(pkt)*8) / rate
	gapSec = sess.rng.Jitter(gapSec, PacingJitter)
	sess.nextSend = sess.srv.host.AfterArg(time.Duration(gapSec*float64(time.Second)), "rdt.send",
		sendNextStep, sess)
}

// remember retains the packet for NAK retransmission, evicting beyond the
// window; evicted buffers are recycled for future data packets (the UDP
// layer copies every send, so a recycled buffer is never aliased by an
// in-flight packet).
func (sess *session) remember(seq uint32, pkt []byte) {
	slot := seq % ResendWindow
	r := sess.resend
	if old := r.pkts[slot]; old != nil {
		sess.srv.freePkts = append(sess.srv.freePkts, old)
	}
	r.pkts[slot], r.seqs[slot] = pkt, seq
}

// resendPkt looks up a NAKed sequence number in the resend window,
// returning nil when the packet has already been evicted (or was never
// sent).
func (sess *session) resendPkt(seq uint32) []byte {
	slot := seq % ResendWindow
	if sess.resend.seqs[slot] != seq {
		return nil
	}
	return sess.resend.pkts[slot]
}

// finish sends the end-of-stream marker (thrice, for loss robustness) and
// keeps the session alive briefly for trailing NAKs.
func (sess *session) finish() {
	if sess.done {
		return
	}
	final := sess.seq
	for i := 0; i < 3; i++ {
		delay := time.Duration(i) * 200 * time.Millisecond
		sess.srv.host.After(delay, "rdt.end", func(eventsim.Time) {
			if !sess.done {
				sess.srv.host.SendUDP(inet.PortRDTData, sess.data, MarshalEnd(final))
			}
		})
	}
	// Grace period for final NAK exchanges, then drop the session.
	sess.srv.host.After(5*time.Second, "rdt.sessionReap", func(eventsim.Time) { sess.stop() })
}

func (sess *session) stop() {
	if sess.done {
		return
	}
	sess.done = true
	sess.srv.host.Cancel(sess.nextSend)
	sess.recycle()
	delete(sess.srv.sessions, sess.ctl)
}

// recycle returns the session's resend window — packet buffers and ring —
// to the server's pools. Called exactly once, when the session ends (stop)
// or the server rewinds (Reset).
func (sess *session) recycle() {
	srv := sess.srv
	r := sess.resend
	for i, buf := range r.pkts {
		if buf != nil {
			srv.freePkts = append(srv.freePkts, buf)
			r.pkts[i] = nil
		}
		r.seqs[i] = 0
	}
	srv.ringPool = append(srv.ringPool, r)
	sess.resend = nil
	if sess.rng != nil {
		srv.rngPool = append(srv.rngPool, sess.rng)
		sess.rng = nil
	}
}
