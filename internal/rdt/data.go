package rdt

import (
	"encoding/binary"
	"errors"
)

// Data-channel packet kinds.
const (
	// KindData carries media segments.
	KindData byte = 'D'
	// KindProbe is one packet of the SETUP bandwidth-probe train.
	KindProbe byte = 'P'
	// KindEnd marks the end of the stream.
	KindEnd byte = 'E'
)

// Data flags.
const (
	// FlagRetrans marks a NAK-triggered retransmission.
	FlagRetrans byte = 0x01
)

// DataHeader precedes media payloads on the RDT data channel.
type DataHeader struct {
	Seq    uint32
	TSms   uint32 // media timestamp, milliseconds
	Flags  byte
	Stream byte // stream id (always 0: single video stream)
}

// dataHeaderLen is the wire size of the data header including the kind.
const dataHeaderLen = 1 + 10

// ErrShort reports an undecodable data-channel packet.
var ErrShort = errors.New("rdt: packet too short")

// ErrKind reports an unexpected packet kind.
var ErrKind = errors.New("rdt: unexpected packet kind")

// MarshalData encodes a media packet: header + encoded segment list.
func MarshalData(h DataHeader, segPayload []byte) []byte {
	return AppendData(nil, h, segPayload)
}

// AppendData is MarshalData appending into dst, returning the extended
// slice; the send path builds packets into recycled resend-window buffers
// this way.
func AppendData(dst []byte, h DataHeader, segPayload []byte) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, dataHeaderLen)...)
	b := dst[base:]
	b[0] = KindData
	binary.BigEndian.PutUint32(b[1:], h.Seq)
	binary.BigEndian.PutUint32(b[5:], h.TSms)
	b[9] = h.Flags
	b[10] = h.Stream
	return append(dst, segPayload...)
}

// ParseData decodes a media packet.
func ParseData(b []byte) (DataHeader, []byte, error) {
	if len(b) < dataHeaderLen {
		return DataHeader{}, nil, ErrShort
	}
	if b[0] != KindData {
		return DataHeader{}, nil, ErrKind
	}
	return DataHeader{
		Seq:    binary.BigEndian.Uint32(b[1:]),
		TSms:   binary.BigEndian.Uint32(b[5:]),
		Flags:  b[9],
		Stream: b[10],
	}, b[dataHeaderLen:], nil
}

// ProbeTrainLen is the number of back-to-back packets in the SETUP
// bandwidth probe; ProbeBytes is each packet's payload size. Eight
// 1200-byte packets give the dispersion estimator seven gaps to average.
const (
	ProbeTrainLen = 8
	ProbeBytes    = 1200
)

// MarshalProbe encodes probe packet i of the train.
func MarshalProbe(i int) []byte {
	b := make([]byte, 1+2+ProbeBytes)
	b[0] = KindProbe
	binary.BigEndian.PutUint16(b[1:], uint16(i))
	for j := 3; j < len(b); j++ {
		b[j] = byte(j)
	}
	return b
}

// ParseProbe decodes a probe packet, returning its index.
func ParseProbe(b []byte) (int, error) {
	if len(b) < 3 {
		return 0, ErrShort
	}
	if b[0] != KindProbe {
		return 0, ErrKind
	}
	return int(binary.BigEndian.Uint16(b[1:])), nil
}

// MarshalEnd encodes the end-of-stream marker carrying the final sequence
// count.
func MarshalEnd(finalSeq uint32) []byte {
	b := make([]byte, 5)
	b[0] = KindEnd
	binary.BigEndian.PutUint32(b[1:], finalSeq)
	return b
}

// ParseEnd decodes an end-of-stream marker.
func ParseEnd(b []byte) (uint32, error) {
	if len(b) < 5 {
		return 0, ErrShort
	}
	if b[0] != KindEnd {
		return 0, ErrKind
	}
	return binary.BigEndian.Uint32(b[1:]), nil
}

// PacketKind peeks a data-channel packet's kind byte.
func PacketKind(b []byte) (byte, error) {
	if len(b) < 1 {
		return 0, ErrShort
	}
	return b[0], nil
}
