package rdt

import (
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
)

// starvedTestbed builds a path whose bottleneck sits below the clip's
// encoding rate.
func starvedTestbed(t *testing.T, seed int64, bottleneck float64) (*netsim.Network, *netsim.Host, *Server) {
	t.Helper()
	n := netsim.New(seed)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := []netsim.HopSpec{
		{Addr: inet.MakeAddr(10, 8, 0, 1), Bandwidth: 10e6, PropDelay: 2 * time.Millisecond},
		{Addr: inet.MakeAddr(10, 8, 0, 2), Bandwidth: bottleneck, PropDelay: 5 * time.Millisecond, QueueLen: 20},
		{Addr: inet.MakeAddr(10, 8, 0, 3), Bandwidth: 45e6, PropDelay: 2 * time.Millisecond},
	}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	return n, c, NewServer(s)
}

func runStarved(t *testing.T, seed int64, scalingOn bool) (*Player, *Server) {
	t.Helper()
	clip, _ := media.FindClip(1, media.Real, media.High) // 284 Kbps
	n, c, srv := starvedTestbed(t, seed, 230e3)
	srv.Register(clip.Name(), clip)
	srv.EnableScaling(scalingOn)
	var done bool
	p := NewPlayer(c, serverAddr, clip.Name(), 5001, 5002, PlayerEvents{
		Done: func(eventsim.Time) { done = true },
	})
	p.Start()
	n.Run(eventsim.At(clip.Duration.Seconds() + 120))
	_ = done
	return p, srv
}

func TestScalingReducesRealLoss(t *testing.T) {
	unscaled, _ := runStarved(t, 81, false)
	scaled, srv := runStarved(t, 81, true)
	// Without scaling the starved path loses packets faster than NAK can
	// recover; with scaling the server backs off.
	if unscaled.PacketsLost == 0 {
		t.Fatal("bottleneck not binding for the unscaled run")
	}
	if scaled.PacketsLost >= unscaled.PacketsLost {
		t.Fatalf("scaling did not reduce loss: %d vs %d", scaled.PacketsLost, unscaled.PacketsLost)
	}
	if srv.ThinSteps == 0 {
		t.Fatal("server never thinned")
	}
}

func TestScalingPreservesCleanRuns(t *testing.T) {
	clip, _ := media.FindClip(3, media.Real, media.Low)
	run := func(on bool) *Player {
		n, c, srv := testbed(t, 82, 900e3, 0)
		srv.Register(clip.Name(), clip)
		srv.EnableScaling(on)
		p := NewPlayer(c, serverAddr, clip.Name(), 5001, 5002, PlayerEvents{})
		p.Start()
		n.Run(eventsim.At(clip.Duration.Seconds() + 90))
		return p
	}
	a, b := run(false), run(true)
	if a.FramesPlayed != b.FramesPlayed {
		t.Fatalf("clean-path divergence: %d vs %d frames", a.FramesPlayed, b.FramesPlayed)
	}
}

func TestReportMethodIgnoredWhenDisabled(t *testing.T) {
	_, srv := runStarved(t, 83, false)
	if srv.ThinSteps != 0 {
		t.Fatal("scaling engaged while disabled")
	}
}
