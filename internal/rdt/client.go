package rdt

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/segment"
	"turbulence/internal/transport"
)

// State is the player lifecycle.
type State int

const (
	// Idle: created, not started.
	Idle State = iota
	// Describing: DESCRIBE exchange in progress.
	Describing
	// SettingUp: SETUP exchange / probe train in progress.
	SettingUp
	// Buffering: PLAY accepted, filling the delay buffer.
	Buffering
	// Playing: playout clock running.
	Playing
	// Done: finished or aborted.
	Done
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Describing:
		return "describing"
	case SettingUp:
		return "setting-up"
	case Buffering:
		return "buffering"
	case Playing:
		return "playing"
	default:
		return "done"
	}
}

// Preroll is the delay buffer RealPlayer fills before starting playout.
// The same media depth as the MediaPlayer model — but the buffering burst
// fills it roughly three times faster, so RealPlayer starts sooner (paper
// §3.F).
const Preroll = 5 * time.Second

// probeTimeout bounds how long the client waits for the SETUP probe train.
const probeTimeout = 2 * time.Second

// nakDelay batches gap detections before requesting retransmission.
const nakDelay = 120 * time.Millisecond

// handshakeRetry is the control retransmit interval.
const handshakeRetry = 2 * time.Second

// maxRetries bounds control retransmissions.
const maxRetries = 5

// Meta is the stream description RealTracker records.
type Meta struct {
	EncodedBps  float64
	FrameRate   float64
	Duration    time.Duration
	TotalFrames int
}

// PlayerEvents are the observation hooks RealTracker attaches (mirroring
// the MediaTracker hooks; RealPlayer has no interleave stage, so
// application delivery coincides with OS delivery — the paper notes it
// could not gather application packets in RealTracker).
type PlayerEvents struct {
	OSPacket     func(now eventsim.Time, seq uint32, wirePackets int)
	SecondPlayed func(now eventsim.Time, second int, played, expected int)
	StateChange  func(now eventsim.Time, s State)
	Done         func(now eventsim.Time)
}

// Player is the RealOne Player model.
type Player struct {
	host     transport.Transport
	server   inet.Addr
	clipRef  string
	ctlPort  inet.Port
	dataPort inet.Port
	// segScratch is the per-packet segment-decode buffer, reused so the
	// receive path does not allocate per data packet.
	segScratch []segment.Segment
	events     PlayerEvents

	state State
	meta  Meta
	cseq  int

	probeTimes []eventsim.Time
	probeDone  bool
	// BandwidthEstimate is the packet-train bottleneck estimate sent in
	// the PLAY request's Bandwidth header (bits/second).
	BandwidthEstimate float64

	asm      *segment.Assembler
	nextSeq  uint32
	missing  map[uint32]bool
	nakArmed bool
	endSeq   uint32
	sawEnd   bool

	stopPlay   func()
	playSecond int
	retries    int

	// Reception-report interval accounting for media scaling.
	stopReport func()
	rpLastRecv int
	rpLastMiss int

	// Stats RealTracker reads.
	PacketsReceived  int
	PacketsLost      int
	PacketsRecovered int
	BytesReceived    int
	FramesPlayed     int
	FramesExpected   int
	StartedAt        eventsim.Time
	PlayBeganAt      eventsim.Time
	FinishedAt       eventsim.Time
}

// NewPlayer prepares a RealPlayer on a simulated host for
// rtsp://server/clipRef.
func NewPlayer(host *netsim.Host, server inet.Addr, clipRef string, ctlPort, dataPort inet.Port, ev PlayerEvents) *Player {
	return NewPlayerOn(transport.NewSim(host), server, clipRef, ctlPort, dataPort, ev)
}

// NewPlayerOn prepares a RealPlayer on any transport (simulated or live).
func NewPlayerOn(t transport.Transport, server inet.Addr, clipRef string, ctlPort, dataPort inet.Port, ev PlayerEvents) *Player {
	return &Player{
		host:     t,
		server:   server,
		clipRef:  clipRef,
		ctlPort:  ctlPort,
		dataPort: dataPort,
		events:   ev,
		asm:      segment.NewAssembler(),
		missing:  make(map[uint32]bool),
	}
}

// ReleaseResources recycles the player's pooled assembly state. Call only
// after the event loop has fully drained: a datagram delivered afterwards
// would touch recycled state (and now panics loudly instead).
func (p *Player) ReleaseResources() {
	if p.asm != nil {
		p.asm.Release()
		p.asm = nil
	}
}

// State returns the lifecycle state.
func (p *Player) State() State { return p.state }

// Meta returns the described stream parameters.
func (p *Player) Meta() Meta { return p.meta }

// URL returns the clip's RTSP URL.
func (p *Player) URL() string { return fmt.Sprintf("rtsp://%s/%s", p.server, p.clipRef) }

// Start begins the session.
func (p *Player) Start() {
	if p.state != Idle {
		panic(fmt.Sprintf("rdt: Start in state %v", p.state))
	}
	p.host.BindUDP(p.ctlPort, p.onControl)
	p.host.BindUDP(p.dataPort, p.onData)
	p.StartedAt = p.host.Now()
	p.setState(Describing)
	p.sendDescribe()
}

func (p *Player) setState(s State) {
	if p.state == s {
		return
	}
	p.state = s
	if p.events.StateChange != nil {
		p.events.StateChange(p.host.Now(), s)
	}
}

func (p *Player) serverCtl() inet.Endpoint {
	return inet.Endpoint{Addr: p.server, Port: inet.PortRTSPCtl}
}

func (p *Player) request(method string, headers map[string]string) {
	p.cseq++
	p.host.SendUDP(p.ctlPort, p.serverCtl(), MarshalRequest(Request{
		Method: method, URL: p.URL(), CSeq: p.cseq, Headers: headers,
	}))
}

func (p *Player) sendDescribe() {
	if p.state != Describing {
		return
	}
	if p.retries >= maxRetries {
		p.abort()
		return
	}
	p.retries++
	p.request(MethodDescribe, nil)
	p.host.After(handshakeRetry, "rdt.describeRetry", func(eventsim.Time) { p.sendDescribe() })
}

func (p *Player) sendSetup() {
	if p.state != SettingUp || p.probeDone {
		return
	}
	if p.retries >= maxRetries {
		p.abort()
		return
	}
	p.retries++
	p.request(MethodSetup, map[string]string{
		"Client-Port": strconv.Itoa(int(p.dataPort)),
	})
	p.host.After(handshakeRetry, "rdt.setupRetry", func(eventsim.Time) { p.sendSetup() })
}

func (p *Player) sendPlay() {
	if p.state != SettingUp || !p.probeDone {
		return
	}
	if p.retries >= maxRetries {
		p.abort()
		return
	}
	p.retries++
	p.request(MethodPlay, map[string]string{
		"Bandwidth": strconv.Itoa(int(p.BandwidthEstimate)),
	})
	p.host.After(handshakeRetry, "rdt.playRetry", func(eventsim.Time) { p.sendPlay() })
}

func (p *Player) onControl(now eventsim.Time, from inet.Endpoint, payload []byte) {
	if from.Addr != p.server || IsRequest(payload) {
		return
	}
	resp, err := ParseResponse(payload)
	if err != nil {
		return
	}
	switch p.state {
	case Describing:
		if resp.Status != 200 {
			p.abort()
			return
		}
		p.meta = Meta{
			EncodedBps:  float64(resp.IntHeader("Encoded-Rate", 0)),
			FrameRate:   resp.FloatHeader("Frame-Rate", 0),
			Duration:    time.Duration(resp.IntHeader("Duration-Ms", 0)) * time.Millisecond,
			TotalFrames: resp.IntHeader("Total-Frames", 0),
		}
		p.retries = 0
		p.setState(SettingUp)
		p.sendSetup()
	case SettingUp:
		if resp.Status != 200 {
			p.abort()
			return
		}
		if resp.Header("Transport") != "" && !p.probeDone {
			// SETUP accepted: the probe train is on its way. Fall back to
			// PLAY even if some probes are lost.
			p.host.After(probeTimeout, "rdt.probeTimeout", func(eventsim.Time) {
				p.finishProbe()
			})
		}
		// A bare 200 with no Transport is the PLAY acknowledgement.
		if resp.Header("Transport") == "" && p.probeDone {
			p.setState(Buffering)
		}
	}
}

// finishProbe computes the packet-train dispersion estimate and issues
// PLAY.
func (p *Player) finishProbe() {
	if p.probeDone || p.state != SettingUp {
		return
	}
	p.probeDone = true
	if len(p.probeTimes) >= 2 {
		first := p.probeTimes[0]
		last := p.probeTimes[len(p.probeTimes)-1]
		gaps := len(p.probeTimes) - 1
		wireBits := float64(gaps * (1 + 2 + ProbeBytes + inet.UDPHeaderLen + inet.IPv4HeaderLen + inet.EthernetOverhead) * 8)
		if d := last.Sub(first).Seconds(); d > 0 {
			p.BandwidthEstimate = wireBits / d
		}
	}
	p.retries = 0
	p.sendPlay()
}

func (p *Player) onData(now eventsim.Time, from inet.Endpoint, payload []byte) {
	if from.Addr != p.server || p.state == Done || p.state == Idle {
		return
	}
	kind, err := PacketKind(payload)
	if err != nil {
		return
	}
	switch kind {
	case KindProbe:
		if idx, err := ParseProbe(payload); err == nil && p.state == SettingUp && !p.probeDone {
			p.probeTimes = append(p.probeTimes, now)
			if idx == ProbeTrainLen-1 {
				p.finishProbe()
			}
		}
	case KindData:
		p.onMediaPacket(now, payload)
	case KindEnd:
		if final, err := ParseEnd(payload); err == nil {
			p.onEnd(final)
		}
	}
}

// ReportInterval is how often the client sends reception-quality reports.
const ReportInterval = 2 * time.Second

// startReporting begins the periodic loss reports once data flows.
func (p *Player) startReporting() {
	if p.stopReport != nil {
		return
	}
	missedSoFar := func() int {
		// Recovered packets no longer count as missing; report the gross
		// gap count seen this interval via received+missing deltas.
		return len(p.missing) + p.PacketsRecovered
	}
	p.stopReport = p.host.Ticker(ReportInterval, "rdt.report", func(eventsim.Time) bool {
		if p.state != Buffering && p.state != Playing {
			return false
		}
		recvDelta := p.PacketsReceived - p.rpLastRecv
		missDelta := missedSoFar() - p.rpLastMiss
		if missDelta < 0 {
			missDelta = 0
		}
		p.rpLastRecv = p.PacketsReceived
		p.rpLastMiss = missedSoFar()
		permille := 0
		if total := recvDelta + missDelta; total > 0 {
			permille = missDelta * 1000 / total
		}
		p.request(MethodReport, map[string]string{"Loss": strconv.Itoa(permille)})
		return true
	})
}

func (p *Player) onMediaPacket(now eventsim.Time, payload []byte) {
	h, segPayload, err := ParseData(payload)
	if err != nil {
		return
	}
	if p.state == SettingUp {
		// Data can outrun the PLAY 200 on a lossy control channel.
		p.setState(Buffering)
	}
	if p.state == Buffering || p.state == Playing {
		p.startReporting()
	}
	if h.Seq >= p.nextSeq {
		for s := p.nextSeq; s < h.Seq; s++ {
			p.missing[s] = true
		}
		if h.Seq > p.nextSeq {
			p.armNAK()
		}
		p.nextSeq = h.Seq + 1
	} else {
		// Out-of-window packet: a retransmission if we NAK'd it.
		if p.missing[h.Seq] {
			delete(p.missing, h.Seq)
			p.PacketsRecovered++
		} else {
			return // duplicate
		}
	}
	p.PacketsReceived++
	p.BytesReceived += len(payload)
	if p.events.OSPacket != nil {
		p.events.OSPacket(now, h.Seq, 1)
	}
	segs, err := segment.DecodeListInto(p.segScratch[:0], segPayload)
	if err != nil {
		return
	}
	p.segScratch = segs
	for _, s := range segs {
		p.asm.Add(s)
	}
	p.maybeStartPlayout(now)
}

// armNAK schedules a batched retransmission request.
func (p *Player) armNAK() {
	if p.nakArmed {
		return
	}
	p.nakArmed = true
	p.host.After(nakDelay, "rdt.nak", func(eventsim.Time) {
		p.nakArmed = false
		if p.state == Done || len(p.missing) == 0 {
			return
		}
		seqs := make([]uint32, 0, len(p.missing))
		for s := range p.missing {
			seqs = append(seqs, s)
		}
		// Sort the batch: map iteration order would otherwise leak into
		// the NAK wire format and the server's retransmission order,
		// breaking run-to-run determinism under bursty loss.
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		p.request(MethodNAK, map[string]string{"Seqs": FormatSeqList(seqs)})
	})
}

func (p *Player) onEnd(finalSeq uint32) {
	if p.sawEnd {
		return
	}
	p.sawEnd = true
	p.endSeq = finalSeq
	for s := p.nextSeq; s < finalSeq; s++ {
		p.missing[s] = true
	}
	if len(p.missing) > 0 {
		p.armNAK()
	}
	// Whatever is still missing after the grace window is lost for good.
	p.host.After(2*time.Second, "rdt.lossSettle", func(eventsim.Time) {
		p.PacketsLost = len(p.missing)
	})
	p.maybeStartPlayout(p.host.Now())
}

// bufferedMedia estimates buffered content from completed frames.
func (p *Player) bufferedMedia() time.Duration {
	if p.meta.FrameRate == 0 {
		return 0
	}
	sec := float64(p.asm.CompletedFrames) / p.meta.FrameRate
	return time.Duration(sec * float64(time.Second))
}

func (p *Player) maybeStartPlayout(now eventsim.Time) {
	if p.state != Buffering {
		return
	}
	if p.bufferedMedia() < Preroll && !p.sawEnd {
		return
	}
	p.PlayBeganAt = now
	p.setState(Playing)
	p.stopPlay = p.host.Ticker(time.Second, "rdt.playclock", func(now eventsim.Time) bool {
		return p.playOneSecond(now)
	})
}

func (p *Player) playOneSecond(now eventsim.Time) bool {
	if p.state != Playing {
		return false
	}
	fps := p.meta.FrameRate
	from := int(float64(p.playSecond) * fps)
	to := int(float64(p.playSecond+1) * fps)
	if total := p.meta.TotalFrames; to > total {
		to = total
	}
	played := 0
	for f := from; f < to; f++ {
		if p.asm.Complete(uint32(f)) {
			played++
		}
		p.asm.Drop(uint32(f))
	}
	p.FramesPlayed += played
	p.FramesExpected += to - from
	if p.events.SecondPlayed != nil {
		p.events.SecondPlayed(now, p.playSecond, played, to-from)
	}
	p.playSecond++
	if float64(p.playSecond) >= p.meta.Duration.Seconds() || from >= to {
		p.finish(now)
		return false
	}
	return true
}

func (p *Player) finish(now eventsim.Time) {
	if p.state == Done {
		return
	}
	p.FinishedAt = now
	p.setState(Done)
	p.request(MethodTeardown, nil)
	p.teardown()
	if p.events.Done != nil {
		p.events.Done(now)
	}
}

func (p *Player) abort() {
	if p.state == Done {
		return
	}
	p.FinishedAt = p.host.Now()
	p.setState(Done)
	p.teardown()
	if p.events.Done != nil {
		p.events.Done(p.host.Now())
	}
}

func (p *Player) teardown() {
	if p.stopPlay != nil {
		p.stopPlay()
	}
	if p.stopReport != nil {
		p.stopReport()
	}
	p.host.UnbindUDP(p.ctlPort)
	p.host.UnbindUDP(p.dataPort)
}

// LossRate reports the fraction of data packets neither received nor
// recovered.
func (p *Player) LossRate() float64 {
	total := p.PacketsReceived + p.PacketsLost
	if total == 0 {
		return 0
	}
	return float64(p.PacketsLost) / float64(total)
}

// AchievedFPS reports the mean played frame rate.
func (p *Player) AchievedFPS() float64 {
	if p.playSecond == 0 {
		return 0
	}
	return float64(p.FramesPlayed) / float64(p.playSecond)
}
