// Package rdt is the behavioural model of the RealNetworks streaming stack
// (RealOne Player against RealServer) reconstructed from the paper's
// observations:
//
//   - Control runs over an RTSP-style text protocol; data rides an RDT-like
//     UDP channel (the paper forces UDP transport).
//   - The server packetises below the MTU, so RealPlayer traces contain no
//     IP fragments at any rate (paper §3.C).
//   - Packet sizes vary widely, roughly 0.6-1.8x the mean, and interarrival
//     times vary correspondingly (paper §3.D, §3.E, Figures 6-9).
//   - At startup the server streams a buffering burst at up to three times
//     the playout rate; the achievable multiple falls with the encoding
//     rate because the path bottleneck caps it — the client measures the
//     bottleneck with a packet-train probe during SETUP and reports it in
//     the PLAY request (paper §3.F, Figures 10-11).
//   - Average playback bandwidth exceeds the encoding rate (paper §3.B,
//     Figure 3), from protocol overhead plus the buffering burst.
//   - At low encoding rates RealVideo keeps the frame rate high (~19 fps)
//     at reduced spatial quality (paper §3.H, Figures 13-15).
//   - Lost data packets are NAK'd and retransmitted once, feeding the
//     "packets recovered" statistic RealTracker-class tools expose.
package rdt

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RTSP methods used by the model. NAK is a protocol extension carrying
// retransmission requests (real RDT encodes NAKs in its transport framing;
// a control-channel request models the same round trip).
const (
	MethodDescribe = "DESCRIBE"
	MethodSetup    = "SETUP"
	MethodPlay     = "PLAY"
	MethodTeardown = "TEARDOWN"
	MethodNAK      = "NAK"
	// MethodReport carries periodic reception-quality reports ("Loss"
	// header, permille); SureStream-style media scaling consumes them.
	MethodReport = "REPORT"
)

// Version is the protocol version string on every message.
const Version = "RTSP/1.0"

// Request is an RTSP request.
type Request struct {
	Method  string
	URL     string
	CSeq    int
	Headers map[string]string
}

// Response is an RTSP response.
type Response struct {
	Status  int
	Reason  string
	CSeq    int
	Headers map[string]string
}

// Errors returned by the text codec.
var (
	ErrMalformed = errors.New("rdt: malformed RTSP message")
	ErrVersion   = errors.New("rdt: unsupported RTSP version")
)

// Header returns a request header value ("" when absent).
func (r *Request) Header(k string) string { return r.Headers[k] }

// IntHeader parses an integer header, returning def when absent or bad.
func (r *Request) IntHeader(k string, def int) int {
	v, err := strconv.Atoi(strings.TrimSpace(r.Headers[k]))
	if err != nil {
		return def
	}
	return v
}

// Header returns a response header value ("" when absent).
func (r *Response) Header(k string) string { return r.Headers[k] }

// IntHeader parses an integer response header.
func (r *Response) IntHeader(k string, def int) int {
	v, err := strconv.Atoi(strings.TrimSpace(r.Headers[k]))
	if err != nil {
		return def
	}
	return v
}

// FloatHeader parses a float response header.
func (r *Response) FloatHeader(k string, def float64) float64 {
	v, err := strconv.ParseFloat(strings.TrimSpace(r.Headers[k]), 64)
	if err != nil {
		return def
	}
	return v
}

// MarshalRequest renders the request in wire form.
func MarshalRequest(r Request) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, r.URL, Version)
	fmt.Fprintf(&b, "CSeq: %d\r\n", r.CSeq)
	for _, k := range sortedKeys(r.Headers) {
		fmt.Fprintf(&b, "%s: %s\r\n", k, r.Headers[k])
	}
	b.WriteString("\r\n")
	return []byte(b.String())
}

// MarshalResponse renders the response in wire form.
func MarshalResponse(r Response) []byte {
	var b strings.Builder
	reason := r.Reason
	if reason == "" {
		reason = reasonFor(r.Status)
	}
	fmt.Fprintf(&b, "%s %d %s\r\n", Version, r.Status, reason)
	fmt.Fprintf(&b, "CSeq: %d\r\n", r.CSeq)
	for _, k := range sortedKeys(r.Headers) {
		fmt.Fprintf(&b, "%s: %s\r\n", k, r.Headers[k])
	}
	b.WriteString("\r\n")
	return []byte(b.String())
}

func reasonFor(status int) string {
	switch status {
	case 200:
		return "OK"
	case 404:
		return "Stream Not Found"
	case 455:
		return "Method Not Valid in This State"
	default:
		return "Unknown"
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IsRequest peeks whether the wire bytes are a request (method first) or a
// response (version first).
func IsRequest(b []byte) bool {
	return !strings.HasPrefix(string(b), Version)
}

// ParseRequest decodes a request.
func ParseRequest(b []byte) (Request, error) {
	lines, err := splitLines(b)
	if err != nil {
		return Request{}, err
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 {
		return Request{}, fmt.Errorf("%w: request line %q", ErrMalformed, lines[0])
	}
	if parts[2] != Version {
		return Request{}, ErrVersion
	}
	req := Request{Method: parts[0], URL: parts[1], Headers: make(map[string]string)}
	if err := parseHeaders(lines[1:], req.Headers); err != nil {
		return Request{}, err
	}
	req.CSeq, _ = strconv.Atoi(req.Headers["CSeq"])
	delete(req.Headers, "CSeq")
	return req, nil
}

// ParseResponse decodes a response.
func ParseResponse(b []byte) (Response, error) {
	lines, err := splitLines(b)
	if err != nil {
		return Response{}, err
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || parts[0] != Version {
		return Response{}, fmt.Errorf("%w: status line %q", ErrMalformed, lines[0])
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return Response{}, fmt.Errorf("%w: status %q", ErrMalformed, parts[1])
	}
	resp := Response{Status: status, Headers: make(map[string]string)}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	if err := parseHeaders(lines[1:], resp.Headers); err != nil {
		return Response{}, err
	}
	resp.CSeq, _ = strconv.Atoi(resp.Headers["CSeq"])
	delete(resp.Headers, "CSeq")
	return resp, nil
}

func splitLines(b []byte) ([]string, error) {
	s := string(b)
	if !strings.HasSuffix(s, "\r\n\r\n") {
		return nil, fmt.Errorf("%w: missing terminator", ErrMalformed)
	}
	lines := strings.Split(strings.TrimSuffix(s, "\r\n\r\n"), "\r\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, fmt.Errorf("%w: empty message", ErrMalformed)
	}
	return lines, nil
}

func parseHeaders(lines []string, into map[string]string) error {
	for _, ln := range lines {
		k, v, ok := strings.Cut(ln, ":")
		if !ok {
			return fmt.Errorf("%w: header %q", ErrMalformed, ln)
		}
		into[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return nil
}

// ParseSeqList decodes a NAK "Seqs" header ("3,7,9") into sequence numbers.
func ParseSeqList(s string) []uint32 {
	var out []uint32
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err == nil {
			out = append(out, uint32(v))
		}
	}
	return out
}

// FormatSeqList renders sequence numbers for a NAK "Seqs" header.
func FormatSeqList(seqs []uint32) string {
	parts := make([]string, len(seqs))
	for i, s := range seqs {
		parts[i] = strconv.FormatUint(uint64(s), 10)
	}
	return strings.Join(parts, ",")
}
