package rdt

import (
	"math"
	"testing"
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

var (
	clientAddr = inet.MakeAddr(130, 215, 10, 5)
	serverAddr = inet.MakeAddr(209, 247, 1, 20)
)

// testbed wires a client to a RealServer over a path with the given
// bottleneck bandwidth.
func testbed(t *testing.T, seed int64, bottleneck float64, loss float64) (*netsim.Network, *netsim.Host, *Server) {
	t.Helper()
	n := netsim.New(seed)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := []netsim.HopSpec{
		{Addr: inet.MakeAddr(10, 2, 0, 1), Bandwidth: 10e6, PropDelay: 2 * time.Millisecond, JitterMax: 300 * time.Microsecond},
		{Addr: inet.MakeAddr(10, 2, 0, 2), Bandwidth: bottleneck, PropDelay: 8 * time.Millisecond, JitterMax: 500 * time.Microsecond, Loss: loss},
		{Addr: inet.MakeAddr(10, 2, 0, 3), Bandwidth: 45e6, PropDelay: 2 * time.Millisecond, JitterMax: 300 * time.Microsecond},
	}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	return n, c, NewServer(s)
}

func TestRTSPRoundTrips(t *testing.T) {
	req := Request{Method: MethodSetup, URL: "rtsp://209.247.1.20/5/R-l", CSeq: 3,
		Headers: map[string]string{"Client-Port": "6970"}}
	got, err := ParseRequest(MarshalRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != req.Method || got.URL != req.URL || got.CSeq != 3 {
		t.Fatalf("request: %+v", got)
	}
	if got.IntHeader("Client-Port", 0) != 6970 {
		t.Fatal("header")
	}
	if got.IntHeader("Missing", 42) != 42 {
		t.Fatal("default header")
	}
	resp := Response{Status: 200, CSeq: 3, Headers: map[string]string{
		"Encoded-Rate": "36000", "Frame-Rate": "19.000"}}
	gotR, err := ParseResponse(MarshalResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Status != 200 || gotR.CSeq != 3 || gotR.Reason != "OK" {
		t.Fatalf("response: %+v", gotR)
	}
	if gotR.FloatHeader("Frame-Rate", 0) != 19 || gotR.IntHeader("Encoded-Rate", 0) != 36000 {
		t.Fatal("response headers")
	}
	if gotR.FloatHeader("Nope", 7.5) != 7.5 {
		t.Fatal("default float header")
	}
	if !IsRequest(MarshalRequest(req)) || IsRequest(MarshalResponse(resp)) {
		t.Fatal("IsRequest")
	}
}

func TestRTSPParseErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("DESCRIBE\r\n\r\n"),
		[]byte("DESCRIBE rtsp://x RTSP/9.9\r\n\r\n"),
		[]byte("DESCRIBE rtsp://x RTSP/1.0\r\nno colon line\r\n\r\n"),
		[]byte("DESCRIBE rtsp://x RTSP/1.0"), // missing terminator
	}
	for _, b := range bad {
		if _, err := ParseRequest(b); err == nil {
			t.Errorf("ParseRequest(%q) accepted", b)
		}
	}
	badResp := [][]byte{
		[]byte("HTTP/1.0 200 OK\r\n\r\n"),
		[]byte("RTSP/1.0 abc OK\r\n\r\n"),
		[]byte("RTSP/1.0\r\n\r\n"),
	}
	for _, b := range badResp {
		if _, err := ParseResponse(b); err == nil {
			t.Errorf("ParseResponse(%q) accepted", b)
		}
	}
	// Unknown status reason text.
	r, err := ParseResponse(MarshalResponse(Response{Status: 418}))
	if err != nil || r.Reason != "Unknown" {
		t.Fatalf("reason: %+v %v", r, err)
	}
	if reasonFor(404) == "" || reasonFor(455) == "" {
		t.Fatal("reasons")
	}
}

func TestSeqListRoundTrip(t *testing.T) {
	seqs := []uint32{3, 7, 4096}
	got := ParseSeqList(FormatSeqList(seqs))
	if len(got) != 3 || got[0] != 3 || got[2] != 4096 {
		t.Fatalf("seq list: %v", got)
	}
	if got := ParseSeqList("1, junk ,5"); len(got) != 2 {
		t.Fatalf("lenient parse: %v", got)
	}
	if FormatSeqList(nil) != "" {
		t.Fatal("empty list")
	}
}

func TestDataPacketRoundTrips(t *testing.T) {
	h := DataHeader{Seq: 77, TSms: 123456, Flags: FlagRetrans, Stream: 0}
	got, payload, err := ParseData(MarshalData(h, []byte{9, 8, 7}))
	if err != nil || got != h || len(payload) != 3 {
		t.Fatalf("data: %+v %v", got, err)
	}
	idx, err := ParseProbe(MarshalProbe(5))
	if err != nil || idx != 5 {
		t.Fatalf("probe: %d %v", idx, err)
	}
	fin, err := ParseEnd(MarshalEnd(999))
	if err != nil || fin != 999 {
		t.Fatalf("end: %d %v", fin, err)
	}
	if _, _, err := ParseData([]byte{KindData}); err != ErrShort {
		t.Fatal("short data")
	}
	if _, _, err := ParseData(MarshalProbe(0)); err != ErrKind {
		t.Fatal("kind mismatch")
	}
	if _, err := ParseProbe([]byte{KindProbe}); err != ErrShort {
		t.Fatal("short probe")
	}
	if _, err := ParseEnd([]byte{KindEnd}); err != ErrShort {
		t.Fatal("short end")
	}
	if _, err := PacketKind(nil); err != ErrShort {
		t.Fatal("kind nil")
	}
}

func TestBurstRateModel(t *testing.T) {
	// Plenty of bandwidth: full 3x ratio.
	if r := BurstRate(36000, 10e6); r != 3*36000 {
		t.Fatalf("low-rate burst=%v", r)
	}
	// Bottleneck caps the ratio (paper Figure 11's decline).
	r := BurstRate(637000, 1.45e6)
	ratio := r / 637000
	if ratio < 1.0 || ratio > 1.15 {
		t.Fatalf("very-high burst ratio=%v, want ~1.0 (paper: close to 1)", ratio)
	}
	// Mid rates land between.
	r = BurstRate(284000, 900e3)
	ratio = r / 284000
	if ratio < 1.2 || ratio > 2.0 {
		t.Fatalf("high burst ratio=%v, want 1.2-2.0", ratio)
	}
	// Never below the playout rate.
	if r := BurstRate(100000, 1); r != PlayOverhead*100000 {
		t.Fatalf("floor=%v", r)
	}
	// Unknown bottleneck (0): uncapped.
	if r := BurstRate(50000, 0); r != 150000 {
		t.Fatalf("uncapped=%v", r)
	}
}

func TestPacketSizeMean(t *testing.T) {
	if mu := PacketSizeMean(36000); mu < 450 || mu > 600 {
		t.Fatalf("36K mean=%v", mu)
	}
	if mu := PacketSizeMean(637000); mu < 800 || mu > 1000 {
		t.Fatalf("637K mean=%v", mu)
	}
	if mu := PacketSizeMean(1); mu < 450 || mu > 510 {
		t.Fatalf("near-zero rate mean=%v", mu)
	}
	if PacketSizeMean(10e6) != 1000 {
		t.Fatal("ceiling")
	}
}

// streamClip runs a full Real session and returns the player and trace.
func streamClip(t *testing.T, clip media.Clip, seed int64, bottleneck float64) (*Player, *capture.Trace) {
	t.Helper()
	n, c, srv := testbed(t, seed, bottleneck, 0)
	srv.Register(clip.Name(), clip)
	sniff := capture.Attach(c)
	var done bool
	p := NewPlayer(c, serverAddr, clip.Name(), 5001, 5002, PlayerEvents{
		Done: func(eventsim.Time) { done = true },
	})
	p.Start()
	if err := n.Run(eventsim.At(clip.Duration.Seconds() + 90)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("session did not complete; state=%v", p.State())
	}
	return p, sniff.Trace()
}

func TestNoFragmentationEver(t *testing.T) {
	// Paper §3.C: "IP fragments were not observed in any of the RealPlayer
	// traces" — even at the very high rate.
	clip, _ := media.FindClip(6, media.Real, media.VeryHigh) // 636.9 Kbps
	_, trace := streamClip(t, clip, 31, 1.45e6)
	flow := trace.Recv().FlowTo(5002)
	if flow == nil {
		t.Fatal("no data flow")
	}
	if fs := flow.Fragmentation(); fs.AnyFragment != 0 {
		t.Fatalf("Real traffic fragmented: %+v", fs)
	}
	// Every wire packet under the MTU.
	for _, sz := range flow.PacketSizes() {
		if sz > float64(inet.MaxWirePacket) {
			t.Fatalf("packet %v exceeds wire MTU", sz)
		}
	}
}

func TestVariablePacketSizes(t *testing.T) {
	// Paper §3.D / Figure 7: Real packet sizes spread over ~0.6-1.8x the
	// mean with no single dominating size.
	clip, _ := media.FindClip(1, media.Real, media.Low) // 36 Kbps
	_, trace := streamClip(t, clip, 32, 900e3)
	flow := trace.Recv().FlowTo(5002)
	sizes := flow.PacketSizes()
	if len(sizes) < 100 {
		t.Fatalf("too few packets: %d", len(sizes))
	}
	norm := stats.Normalize(sizes)
	sum := stats.Summarize(norm)
	if cv := sum.StdDev; cv < 0.15 {
		t.Fatalf("normalized size spread %.3f too tight for VBR", cv)
	}
	if sum.Min > 0.7 || sum.Max < 1.4 {
		t.Fatalf("normalized range [%.2f,%.2f] too narrow", sum.Min, sum.Max)
	}
	// No single bin dominates like WMP's CBR spike.
	h := stats.NewHistogram(0, 2, 40)
	h.AddAll(norm)
	if _, frac := h.PeakBin(); frac > 0.5 {
		t.Fatalf("peak bin holds %.2f of mass; too CBR-like", frac)
	}
}

func TestVariableInterarrivals(t *testing.T) {
	clip, _ := media.FindClip(1, media.Real, media.Low)
	_, trace := streamClip(t, clip, 33, 900e3)
	flow := trace.Recv().FlowTo(5002)
	ia := flow.Interarrivals()
	sum := stats.Summarize(ia)
	// Paper §3.E: Real interarrivals vary widely; CV well above WMP's.
	if cv := sum.StdDev / sum.Mean; cv < 0.2 {
		t.Fatalf("interarrival CV=%.3f, want > 0.2", cv)
	}
}

func TestBufferingBurstThenSteady(t *testing.T) {
	// Paper §3.F / Figure 10: initial rate ~3x the steady rate for a
	// low-rate clip, then a drop to the playout rate.
	clip, _ := media.FindClip(4, media.Real, media.Low) // 26 Kbps, 4:05 long
	_, trace := streamClip(t, clip, 34, 900e3)
	flow := trace.Recv().FlowTo(5002)
	bw := flow.BandwidthSeries(time.Second)
	if len(bw) < 60 {
		t.Fatalf("series too short: %d", len(bw))
	}
	early := stats.Mean(ys(bw[1:8]))
	late := stats.Mean(ys(bw[40:60]))
	ratio := early / late
	if ratio < 2.0 || ratio > 3.6 {
		t.Fatalf("burst/steady ratio=%.2f, want ~3 (paper Fig 10/11)", ratio)
	}
}

func ys(pts []stats.Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Y
	}
	return out
}

func TestBottleneckCapsBurstRatio(t *testing.T) {
	// Paper Figure 11: at 637 Kbps the ratio collapses toward 1 because
	// the bottleneck cannot carry 3x.
	clip, _ := media.FindClip(6, media.Real, media.VeryHigh)
	p, trace := streamClip(t, clip, 35, 1.45e6)
	if p.BandwidthEstimate < 1.2e6 || p.BandwidthEstimate > 1.8e6 {
		t.Fatalf("probe estimate=%v, want ~1.45M", p.BandwidthEstimate)
	}
	flow := trace.Recv().FlowTo(5002)
	bw := flow.BandwidthSeries(time.Second)
	early := stats.Mean(ys(bw[1:8]))
	ratio := early / clip.EncodedBps()
	if ratio > 1.35 {
		t.Fatalf("very-high burst ratio=%.2f, want close to 1", ratio)
	}
}

func TestRealStartsPlayoutQuickly(t *testing.T) {
	// Buffering at ~3x fills the preroll in about a third of the time
	// MediaPlayer needs (paper §3.F: RealPlayer begins playback sooner).
	clip, _ := media.FindClip(1, media.Real, media.Low)
	n, c, srv := testbed(t, 36, 900e3, 0)
	srv.Register(clip.Name(), clip)
	var playStart eventsim.Time
	p := NewPlayer(c, serverAddr, clip.Name(), 5001, 5002, PlayerEvents{
		StateChange: func(now eventsim.Time, s State) {
			if s == Playing {
				playStart = now
			}
		},
	})
	p.Start()
	n.Run(eventsim.At(60))
	if playStart == 0 {
		t.Fatal("never started playing")
	}
	if playStart.Seconds() > 4.5 {
		t.Fatalf("playout began at %v, want < 4.5 s (burst-fed preroll)", playStart)
	}
}

func TestLowRateKeepsHighFrameRate(t *testing.T) {
	clip, _ := media.FindClip(5, media.Real, media.Low) // 22 Kbps
	p, _ := streamClip(t, clip, 37, 900e3)
	if p.Meta().FrameRate != 19 {
		t.Fatalf("meta fps=%v", p.Meta().FrameRate)
	}
	if fps := p.AchievedFPS(); math.Abs(fps-19) > 1.5 {
		t.Fatalf("achieved fps=%v, want ~19 (paper: Real low beats WMP's 13)", fps)
	}
}

func TestAveragePlaybackExceedsEncodingRate(t *testing.T) {
	// Paper §3.B / Figure 3: RealPlayer consumes more than its encoding
	// rate.
	clip, _ := media.FindClip(1, media.Real, media.High) // 284 Kbps
	_, trace := streamClip(t, clip, 38, 900e3)
	flow := trace.Recv().FlowTo(5002)
	avg := flow.AverageRate()
	if avg <= clip.EncodedBps()*1.02 {
		t.Fatalf("average rate %v <= encoded %v", avg, clip.EncodedBps())
	}
}

func TestNAKRecoversLoss(t *testing.T) {
	clip, _ := media.FindClip(3, media.Real, media.Low)
	n, c, srv := testbed(t, 39, 900e3, 0.03) // 3% loss at the bottleneck
	srv.Register(clip.Name(), clip)
	var done bool
	p := NewPlayer(c, serverAddr, clip.Name(), 5001, 5002, PlayerEvents{
		Done: func(eventsim.Time) { done = true },
	})
	p.Start()
	n.Run(eventsim.At(clip.Duration.Seconds() + 90))
	if !done {
		t.Fatalf("session incomplete: %v", p.State())
	}
	if p.PacketsRecovered == 0 {
		t.Fatal("no packets recovered over a lossy path")
	}
	if srv.NAKsReceived == 0 || srv.Resent == 0 {
		t.Fatalf("server NAK counters: %d %d", srv.NAKsReceived, srv.Resent)
	}
	// Recovery keeps the frame rate near the encoded ladder.
	if fps := p.AchievedFPS(); fps < p.Meta().FrameRate-3 {
		t.Fatalf("fps=%v despite recovery", fps)
	}
}

func TestUnknownClip404(t *testing.T) {
	n, c, _ := testbed(t, 40, 900e3, 0)
	var done bool
	p := NewPlayer(c, serverAddr, "ghost", 5001, 5002, PlayerEvents{
		Done: func(eventsim.Time) { done = true },
	})
	p.Start()
	n.Run(eventsim.At(30))
	if !done || p.State() != Done {
		t.Fatal("player did not abort on 404")
	}
}

func TestHandshakeSurvivesControlLoss(t *testing.T) {
	clip, _ := media.FindClip(2, media.Real, media.Low)
	n, c, srv := testbed(t, 41, 900e3, 0.25)
	srv.Register(clip.Name(), clip)
	var reached State
	p := NewPlayer(c, serverAddr, clip.Name(), 5001, 5002, PlayerEvents{
		StateChange: func(_ eventsim.Time, s State) {
			if s > reached && s != Done {
				reached = s
			}
		},
	})
	p.Start()
	n.Run(eventsim.At(120))
	if reached < Buffering {
		t.Fatalf("handshake never survived loss: %v", reached)
	}
}

func TestServerBookkeeping(t *testing.T) {
	clip, _ := media.FindClip(3, media.Real, media.Low)
	p, _ := streamClip(t, clip, 42, 900e3)
	_ = p
}

func TestSessionTeardownFreesServer(t *testing.T) {
	clip, _ := media.FindClip(3, media.Real, media.Low)
	n, c, srv := testbed(t, 43, 900e3, 0)
	srv.Register(clip.Name(), clip)
	p := NewPlayer(c, serverAddr, clip.Name(), 5001, 5002, PlayerEvents{})
	p.Start()
	n.Run(eventsim.At(clip.Duration.Seconds() + 90))
	if srv.ActiveSessions() != 0 {
		t.Fatalf("sessions leaked: %d", srv.ActiveSessions())
	}
	if srv.Described != 1 || srv.Setup < 1 || srv.Played < 1 {
		t.Fatalf("counters: %+v", srv)
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Idle, Describing, SettingUp, Buffering, Playing, Done} {
		if s.String() == "" {
			t.Fatal("state string")
		}
	}
}

func TestDoubleStartPanics(t *testing.T) {
	n, c, srv := testbed(t, 44, 900e3, 0)
	clip, _ := media.FindClip(3, media.Real, media.Low)
	srv.Register(clip.Name(), clip)
	p := NewPlayer(c, serverAddr, clip.Name(), 5001, 5002, PlayerEvents{})
	p.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	p.Start()
	_ = n
}

func TestClipRefFromURL(t *testing.T) {
	if got := clipRefFromURL("rtsp://209.247.1.20/5/R-l"); got != "5/R-l" {
		t.Fatalf("ref=%q", got)
	}
	if got := clipRefFromURL("rtsp://host"); got != "host" {
		t.Fatalf("bare=%q", got)
	}
}
