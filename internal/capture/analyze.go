package capture

import (
	"sort"
	"time"

	"turbulence/internal/inet"
	"turbulence/internal/stats"
)

// FlowTrace is the slice of a trace belonging to one UDP flow, with
// continuation fragments attributed to the flow via their IP ID (a sniffer
// sees no ports on non-first fragments; the paper's Ethereal resolved them
// the same way). It is an index-based view over the parent trace's
// columnar record storage: extracting flows copies indices, never records,
// and the metric reductions below scan the owning store's columns
// directly.
type FlowTrace struct {
	Flow inet.Flow

	owner *Trace
	idx   []int32
}

// Len reports the number of wire packets in the flow.
func (f *FlowTrace) Len() int { return len(f.idx) }

// At returns the i-th wire packet of the flow, materialised from the
// parent trace's storage.
func (f *FlowTrace) At(i int) Record { return f.owner.st.record(int(f.idx[i])) }

// Replay feeds the flow's records, in order, to an online analyzer — how
// trace-derived metrics and capture-time metrics stay one code path.
func (f *FlowTrace) Replay(t Tap) {
	st := &f.owner.st
	// One scratch record for the whole replay: records flow into a Tap
	// interface call, so a loop-local value would escape and allocate per
	// record.
	var r Record
	for _, i := range f.idx {
		r = st.record(int(i))
		t.Observe(&r)
	}
}

// Where returns the sub-flow of packets for which keep returns true, as a
// view sharing the same storage.
func (f *FlowTrace) Where(keep func(*Record) bool) *FlowTrace {
	idx := make([]int32, 0, len(f.idx))
	var r Record
	for _, i := range f.idx {
		r = f.owner.st.record(int(i))
		if keep(&r) {
			idx = append(idx, i)
		}
	}
	return &FlowTrace{Flow: f.Flow, owner: f.owner, idx: idx}
}

// SplitFlows partitions received UDP records into flows. Records are
// assumed time-ordered (as captured). Fragment trains are attributed to the
// flow of their first fragment by (src, dst, IP ID).
func (t *Trace) SplitFlows() []*FlowTrace {
	type trainKey struct {
		src, dst inet.Addr
		id       uint16
	}
	owner := t.owner()
	st := &owner.st
	byFlow := make(map[inet.Flow]*FlowTrace)
	var order []inet.Flow
	trains := make(map[trainKey]inet.Flow)
	n := t.Len()
	for i := 0; i < n; i++ {
		si := t.storageIndex(i)
		proto := st.proto[si]
		if proto != inet.ProtoUDP && proto != inet.ProtoTCP {
			continue
		}
		var flow inet.Flow
		if st.meta[si]&metaHasPorts != 0 {
			flow = inet.Flow{
				Src: inet.Endpoint{Addr: st.src[si], Port: st.srcPort[si]},
				Dst: inet.Endpoint{Addr: st.dst[si], Port: st.dstPort[si]},
			}
			if st.isFragment(int(si)) {
				trains[trainKey{st.src[si], st.dst[si], st.ipid[si]}] = flow
			}
		} else {
			var ok bool
			flow, ok = trains[trainKey{st.src[si], st.dst[si], st.ipid[si]}]
			if !ok {
				continue // orphan fragment; first never seen
			}
		}
		ft := byFlow[flow]
		if ft == nil {
			ft = &FlowTrace{Flow: flow, owner: owner}
			byFlow[flow] = ft
			order = append(order, flow)
		}
		ft.idx = append(ft.idx, si)
	}
	out := make([]*FlowTrace, 0, len(order))
	for _, f := range order {
		out = append(out, byFlow[f])
	}
	return out
}

// FlowTo returns the flow trace whose destination port matches, or nil.
// Streaming experiments key flows by their well-known data port.
func (t *Trace) FlowTo(dstPort inet.Port) *FlowTrace {
	for _, ft := range t.SplitFlows() {
		if ft.Flow.Dst.Port == dstPort {
			return ft
		}
	}
	return nil
}

// PacketSizes returns the wire sizes in bytes of every packet, the sample
// behind the paper's Figure 6/7 PDFs.
func (f *FlowTrace) PacketSizes() []float64 {
	wire := f.owner.st.wireLen
	out := make([]float64, len(f.idx))
	for i, si := range f.idx {
		out[i] = float64(wire[si])
	}
	return out
}

// Interarrivals returns successive packet spacing in seconds (Figure 8).
func (f *FlowTrace) Interarrivals() []float64 {
	n := len(f.idx)
	if n < 2 {
		return nil
	}
	at := f.owner.st.at
	out := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, (at[f.idx[i]] - at[f.idx[i-1]]).Seconds())
	}
	return out
}

// GroupInterarrivals returns the spacing between the *first packets* of
// successive datagrams, collapsing fragment trains into one arrival. The
// paper uses exactly this reduction for high-rate MediaPlayer clips in
// Figure 9 "to remove the noise caused by the IP fragments".
func (f *FlowTrace) GroupInterarrivals() []float64 {
	st := &f.owner.st
	var firsts []time.Duration
	for _, si := range f.idx {
		if st.fragOff[si] == 0 { // whole datagram or first fragment
			firsts = append(firsts, st.at[si])
		}
	}
	if len(firsts) < 2 {
		return nil
	}
	out := make([]float64, 0, len(firsts)-1)
	for i := 1; i < len(firsts); i++ {
		out = append(out, (firsts[i] - firsts[i-1]).Seconds())
	}
	return out
}

// FragmentStats summarises fragmentation in a flow.
type FragmentStats struct {
	Packets       int // wire packets
	Datagrams     int // distinct application datagrams (FragOff == 0)
	Continuations int // non-first fragments (Ethereal's "IP fragments")
	AnyFragment   int // packets carrying any fragment flag/offset
}

// ContinuationShare is the Figure 5 metric: the fraction of wire packets
// that are continuation fragments.
func (s FragmentStats) ContinuationShare() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.Continuations) / float64(s.Packets)
}

// Fragmentation computes the flow's fragment statistics.
func (f *FlowTrace) Fragmentation() FragmentStats {
	st := &f.owner.st
	var s FragmentStats
	s.Packets = len(f.idx)
	for _, si := range f.idx {
		if st.fragOff[si] == 0 {
			s.Datagrams++
		} else {
			s.Continuations++
		}
		if st.isFragment(int(si)) {
			s.AnyFragment++
		}
	}
	return s
}

// BandwidthSeries reduces the flow into a bits-per-second curve with the
// given bucket width (Figure 10 uses one-second buckets).
func (f *FlowTrace) BandwidthSeries(bucket time.Duration) []stats.Point {
	st := &f.owner.st
	var ts stats.TimeSeries
	for _, si := range f.idx {
		ts.Add(st.at[si], float64(int(st.wireLen[si])*8))
	}
	return ts.RateSeries(bucket)
}

// AverageRate returns the flow's mean throughput in bits/second across its
// active duration (first to last packet).
func (f *FlowTrace) AverageRate() float64 {
	n := len(f.idx)
	if n < 2 {
		return 0
	}
	st := &f.owner.st
	var bits float64
	for _, si := range f.idx {
		bits += float64(int(st.wireLen[si]) * 8)
	}
	span := (st.at[f.idx[n-1]] - st.at[f.idx[0]]).Seconds()
	if span <= 0 {
		return 0
	}
	return bits / span
}

// SequencePoints returns (time, packet index) points for an arrival window,
// reproducing Figure 4's sequence-number-versus-time view. Indexing starts
// at the first packet of the flow so concurrent flows can be overlaid.
func (f *FlowTrace) SequencePoints(from, to time.Duration) []stats.Point {
	st := &f.owner.st
	var out []stats.Point
	for i, si := range f.idx {
		at := st.at[si]
		if at >= from && at < to {
			out = append(out, stats.Point{X: at.Seconds(), Y: float64(i)})
		}
	}
	return out
}

// TrainLengths returns the wire-packet count of each datagram's fragment
// train, in arrival order: 1 for unfragmented datagrams.
func (f *FlowTrace) TrainLengths() []int {
	st := &f.owner.st
	var out []int
	count := 0
	for _, si := range f.idx {
		if st.fragOff[si] == 0 {
			if count > 0 {
				out = append(out, count)
			}
			count = 1
		} else {
			count++
		}
	}
	if count > 0 {
		out = append(out, count)
	}
	return out
}

// Window narrows the flow trace to records in [from, to), as a view over
// the same storage.
func (f *FlowTrace) Window(from, to time.Duration) *FlowTrace {
	return f.Where(func(r *Record) bool { return r.At >= from && r.At < to })
}

// DistinctSizes returns the sorted distinct wire sizes and their counts;
// useful to assert the CBR "all packets the same size" property.
func (f *FlowTrace) DistinctSizes() ([]int, []int) {
	wire := f.owner.st.wireLen
	counts := make(map[int]int)
	for _, si := range f.idx {
		counts[int(wire[si])]++
	}
	sizes := make([]int, 0, len(counts))
	for sz := range counts {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)
	ns := make([]int, len(sizes))
	for i, sz := range sizes {
		ns[i] = counts[sz]
	}
	return sizes, ns
}
