package capture

import (
	"testing"
	"time"

	"turbulence/internal/inet"
	"turbulence/internal/netsim"
)

// TestSnifferAppendAllocs is the allocation-regression guard for the
// capture hot path: once the record store has capacity, recording one wire
// packet (parse + append) must not allocate — no eager serialisation, no
// per-record copies.
func TestSnifferAppendAllocs(t *testing.T) {
	d, err := inet.BuildUDP(srvEP, cliEP, 7, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	tr.Grow(1 << 16)
	at := time.Duration(0)
	allocs := testing.AllocsPerRun(1000, func() {
		at += time.Millisecond
		tr.Append(parseRecord(at, netsim.Recv, d))
	})
	if allocs > 0 {
		t.Fatalf("sniffer append path allocates %.2f times per record, want 0", allocs)
	}
}

// TestFilterViewSharesStorage asserts Filter returns a view, not a copy:
// mutating a record through the view must be visible in the parent.
func TestFilterViewSharesStorage(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.Append(mkRecord(t, float64(i), 100, uint16(i)))
	}
	sub := tr.Filter(func(r *Record) bool { return r.IPID%2 == 0 })
	if sub.Len() != 5 {
		t.Fatalf("filtered len=%d, want 5", sub.Len())
	}
	sub.At(0).WireLen = 9999
	if tr.At(0).WireLen != 9999 {
		t.Fatal("Filter copied records instead of sharing parent storage")
	}
	// Views of views still resolve to the root storage.
	subsub := sub.Filter(func(r *Record) bool { return r.IPID >= 4 })
	if subsub.Len() != 3 {
		t.Fatalf("nested view len=%d, want 3", subsub.Len())
	}
	subsub.At(0).WireLen = 4444
	if tr.At(4).WireLen != 4444 {
		t.Fatal("nested view does not alias root storage")
	}
}

// TestCountIf asserts counting matches filtering without materialising a
// sub-trace.
func TestCountIf(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 20; i++ {
		tr.Append(mkRecord(t, float64(i), 100+i, uint16(i)))
	}
	big := func(r *Record) bool { return r.PayloadLen >= 110 }
	if got, want := tr.CountIf(big), tr.Filter(big).Len(); got != want {
		t.Fatalf("CountIf=%d, Filter.Len=%d", got, want)
	}
	if got := tr.CountIf(func(*Record) bool { return false }); got != 0 {
		t.Fatalf("CountIf(false)=%d", got)
	}
}

// TestAppendToViewPanics locks in that views are read-only.
func TestAppendToViewPanics(t *testing.T) {
	tr := &Trace{}
	tr.Append(mkRecord(t, 0, 100, 1))
	view := tr.Filter(func(*Record) bool { return true })
	defer func() {
		if recover() == nil {
			t.Fatal("Append on a view did not panic")
		}
	}()
	view.Append(mkRecord(t, 1, 100, 2))
}
