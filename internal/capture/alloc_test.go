package capture

import (
	"bytes"
	"testing"
	"time"

	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/racecheck"
)

// TestSnifferAppendAllocs is the allocation-regression guard for the
// capture hot path: once the record store and payload arena have capacity,
// recording one wire packet (parse + columnar append + arena copy) must
// not allocate.
func TestSnifferAppendAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation pins are unreliable under -race")
	}
	d, err := inet.BuildUDP(srvEP, cliEP, 7, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	tr.Grow(1 << 16)
	tr.GrowBytes(1 << 20)
	at := time.Duration(0)
	allocs := testing.AllocsPerRun(1000, func() {
		at += time.Millisecond
		tr.Append(parseRecord(at, netsim.Recv, d))
	})
	if allocs > 0 {
		t.Fatalf("sniffer append path allocates %.2f times per record, want 0", allocs)
	}
}

// TestFilterViewSharesStorage asserts Filter returns an index view over
// the owner's columnar storage, not a copy: the view's wire payload bytes
// alias the owner's arena, and nested views resolve to the root store.
func TestFilterViewSharesStorage(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.Append(mkRecord(t, float64(i), 100, uint16(i)))
	}
	sub := tr.Filter(func(r *Record) bool { return r.IPID%2 == 0 })
	if sub.Len() != 5 {
		t.Fatalf("filtered len=%d, want 5", sub.Len())
	}
	if &sub.At(0).Wire()[0] != &tr.At(0).Wire()[0] {
		t.Fatal("Filter copied payload bytes instead of sharing the owner's arena")
	}
	// Views of views still resolve to the root storage.
	subsub := sub.Filter(func(r *Record) bool { return r.IPID >= 4 })
	if subsub.Len() != 3 {
		t.Fatalf("nested view len=%d, want 3", subsub.Len())
	}
	if &subsub.At(0).Wire()[0] != &tr.At(4).Wire()[0] {
		t.Fatal("nested view does not alias root storage")
	}
}

// TestRecordRawRebuild asserts Raw rebuilds the exact wire bytes the
// original datagram marshalled to, from columns plus arena — the contract
// that lets the store drop datagram references entirely.
func TestRecordRawRebuild(t *testing.T) {
	d, err := inet.BuildUDP(srvEP, cliEP, 321, make([]byte, 700))
	if err != nil {
		t.Fatal(err)
	}
	d.Header.TTL = 97 // as it would arrive after hops
	want, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	tr.Append(parseRecord(time.Second, netsim.Recv, d))
	if got := tr.At(0).Raw(); !bytes.Equal(got, want) {
		t.Fatalf("Raw rebuilt %d bytes != marshalled %d bytes", len(got), len(want))
	}
	// Fragments rebuild too (offsets, MF flag, per-fragment checksums).
	big, err := inet.BuildUDP(srvEP, cliEP, 322, make([]byte, 4000))
	if err != nil {
		t.Fatal(err)
	}
	frags, err := inet.Fragment(big, inet.DefaultMTU)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frags {
		want, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		ftr := &Trace{}
		ftr.Append(parseRecord(0, netsim.Recv, f))
		if got := ftr.At(0).Raw(); !bytes.Equal(got, want) {
			t.Fatalf("fragment %d: Raw rebuild differs", i)
		}
	}
	// Synthetic records (no wire bytes) keep returning nil.
	var synth Record
	if synth.Raw() != nil {
		t.Fatal("synthetic record produced wire bytes")
	}
}

// TestCountIf asserts counting matches filtering without materialising a
// sub-trace.
func TestCountIf(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 20; i++ {
		tr.Append(mkRecord(t, float64(i), 100+i, uint16(i)))
	}
	big := func(r *Record) bool { return r.PayloadLen >= 110 }
	if got, want := tr.CountIf(big), tr.Filter(big).Len(); got != want {
		t.Fatalf("CountIf=%d, Filter.Len=%d", got, want)
	}
	if got := tr.CountIf(func(*Record) bool { return false }); got != 0 {
		t.Fatalf("CountIf(false)=%d", got)
	}
}

// TestAppendToViewPanics locks in that views are read-only.
func TestAppendToViewPanics(t *testing.T) {
	tr := &Trace{}
	tr.Append(mkRecord(t, 0, 100, 1))
	view := tr.Filter(func(*Record) bool { return true })
	defer func() {
		if recover() == nil {
			t.Fatal("Append on a view did not panic")
		}
	}()
	view.Append(mkRecord(t, 1, 100, 2))
}
