package capture

import (
	"bytes"
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
)

var (
	clientAddr = inet.MakeAddr(130, 215, 10, 5)
	serverAddr = inet.MakeAddr(207, 46, 1, 9)
	cliEP      = inet.Endpoint{Addr: clientAddr, Port: 4000}
	srvEP      = inet.Endpoint{Addr: serverAddr, Port: inet.PortMMSData}
)

// mkRecord fabricates a received UDP record without a network.
func mkRecord(t *testing.T, at float64, payloadLen int, id uint16) Record {
	t.Helper()
	d, err := inet.BuildUDP(srvEP, cliEP, id, make([]byte, payloadLen))
	if err != nil {
		t.Fatal(err)
	}
	return parseRecord(time.Duration(at*float64(time.Second)), netsim.Recv, d)
}

// mkFragTrain fabricates the records of one fragmented datagram.
func mkFragTrain(t *testing.T, at float64, payloadLen int, id uint16) []Record {
	t.Helper()
	d, err := inet.BuildUDP(srvEP, cliEP, id, make([]byte, payloadLen))
	if err != nil {
		t.Fatal(err)
	}
	frags, err := inet.Fragment(d, inet.DefaultMTU)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Record, len(frags))
	for i, f := range frags {
		// Fragments arrive back-to-back 1 ms apart.
		out[i] = parseRecord(time.Duration((at+float64(i)*0.001)*float64(time.Second)), netsim.Recv, f)
	}
	return out
}

func TestParseRecordFields(t *testing.T) {
	r := mkRecord(t, 1.5, 500, 42)
	if r.WireLen != 500+inet.UDPHeaderLen+inet.IPv4HeaderLen+inet.EthernetOverhead {
		t.Fatalf("WireLen=%d", r.WireLen)
	}
	if !r.HasPorts || r.SrcPort != srvEP.Port || r.DstPort != cliEP.Port {
		t.Fatalf("ports: %+v", r)
	}
	if r.PayloadLen != 500 || r.IPID != 42 || r.Proto != inet.ProtoUDP {
		t.Fatalf("fields: %+v", r)
	}
	if r.IsFragment() || r.IsContinuationFragment() {
		t.Fatal("whole datagram flagged as fragment")
	}
	flow, ok := r.Flow()
	if !ok || flow.Src != srvEP || flow.Dst != cliEP {
		t.Fatalf("flow: %v", flow)
	}
	if r.String() == "" {
		t.Fatal("String")
	}
}

func TestFragmentRecordConventions(t *testing.T) {
	train := mkFragTrain(t, 0, 4000, 7)
	if len(train) != 3 {
		t.Fatalf("train=%d", len(train))
	}
	first, mid, last := train[0], train[1], train[2]
	if !first.IsFragment() || first.IsContinuationFragment() {
		t.Fatal("first fragment conventions")
	}
	if !first.HasPorts {
		t.Fatal("first fragment should expose ports")
	}
	if !mid.IsContinuationFragment() || mid.HasPorts {
		t.Fatal("middle fragment conventions")
	}
	if !last.IsContinuationFragment() || last.MoreFrag {
		t.Fatal("last fragment conventions")
	}
	if first.WireLen != inet.MaxWirePacket {
		t.Fatalf("first fragment wire len=%d", first.WireLen)
	}
}

func buildTestTrace(t *testing.T) *Trace {
	tr := &Trace{}
	// Flow A: 10 unfragmented 900-byte-payload packets, 100 ms apart.
	for i := 0; i < 10; i++ {
		tr.Append(mkRecord(t, float64(i)*0.1, 900, uint16(i+1)))
	}
	// Flow B (different port): 5 fragmented datagrams 200 ms apart.
	srvB := inet.Endpoint{Addr: serverAddr, Port: inet.PortRDTData}
	for i := 0; i < 5; i++ {
		d, _ := inet.BuildUDP(srvB, cliEP, uint16(100+i), make([]byte, 4000))
		frags, _ := inet.Fragment(d, inet.DefaultMTU)
		for j, f := range frags {
			at := time.Duration((float64(i)*0.2 + float64(j)*0.001) * float64(time.Second))
			tr.Append(parseRecord(at, netsim.Recv, f))
		}
	}
	return tr
}

func TestSplitFlows(t *testing.T) {
	tr := buildTestTrace(t)
	flows := tr.SplitFlows()
	if len(flows) != 2 {
		t.Fatalf("flows=%d", len(flows))
	}
	a, b := flows[0], flows[1]
	if a.Flow.Src.Port != inet.PortMMSData {
		a, b = b, a
	}
	if a.Len() != 10 {
		t.Fatalf("flow A packets=%d", a.Len())
	}
	if b.Len() != 15 { // 5 datagrams x 3 fragments
		t.Fatalf("flow B packets=%d", b.Len())
	}
	// Continuation fragments were attributed via IP ID.
	fs := b.Fragmentation()
	if fs.Datagrams != 5 || fs.Continuations != 10 {
		t.Fatalf("fragmentation: %+v", fs)
	}
	if got := fs.ContinuationShare(); got < 0.66 || got > 0.67 {
		t.Fatalf("continuation share=%v", got)
	}
}

func TestOrphanFragmentsSkipped(t *testing.T) {
	tr := &Trace{}
	train := mkFragTrain(t, 0, 3000, 9)
	// Drop the first fragment: the rest cannot be attributed.
	for _, r := range train[1:] {
		tr.Append(r)
	}
	if flows := tr.SplitFlows(); len(flows) != 0 {
		t.Fatalf("orphans created %d flows", len(flows))
	}
}

func TestFlowTo(t *testing.T) {
	tr := buildTestTrace(t)
	if f := tr.FlowTo(cliEP.Port); f == nil {
		t.Fatal("FlowTo by destination port failed")
	}
	if f := tr.FlowTo(9999); f != nil {
		t.Fatal("FlowTo invented a flow")
	}
}

func TestInterarrivals(t *testing.T) {
	tr := buildTestTrace(t)
	a := tr.SplitFlows()[0]
	ia := a.Interarrivals()
	if len(ia) != 9 {
		t.Fatalf("interarrivals=%d", len(ia))
	}
	for _, v := range ia {
		if v < 0.099 || v > 0.101 {
			t.Fatalf("interarrival %v, want ~0.1", v)
		}
	}
	var empty FlowTrace
	if empty.Interarrivals() != nil {
		t.Fatal("empty interarrivals")
	}
}

func TestGroupInterarrivalsCollapseTrains(t *testing.T) {
	tr := buildTestTrace(t)
	flows := tr.SplitFlows()
	b := flows[1]
	if b.Flow.Src.Port != inet.PortRDTData {
		b = flows[0]
	}
	raw := b.Interarrivals()
	grouped := b.GroupInterarrivals()
	if len(grouped) != 4 {
		t.Fatalf("grouped=%d, want 4", len(grouped))
	}
	for _, v := range grouped {
		if v < 0.19 || v > 0.21 {
			t.Fatalf("group interarrival %v, want ~0.2", v)
		}
	}
	// Raw interarrivals include the 1 ms intra-train gaps.
	short := 0
	for _, v := range raw {
		if v < 0.01 {
			short++
		}
	}
	if short != 10 {
		t.Fatalf("raw intra-train gaps=%d, want 10", short)
	}
}

func TestPacketSizesAndDistinct(t *testing.T) {
	tr := buildTestTrace(t)
	a := tr.SplitFlows()[0]
	sizes := a.PacketSizes()
	if len(sizes) != 10 {
		t.Fatalf("sizes=%d", len(sizes))
	}
	distinct, counts := a.DistinctSizes()
	if len(distinct) != 1 || counts[0] != 10 {
		t.Fatalf("CBR flow has %d distinct sizes", len(distinct))
	}
}

func TestBandwidthSeriesAndAverageRate(t *testing.T) {
	tr := &Trace{}
	// 10 packets of 1000 wire bytes in the first second, none in the next.
	for i := 0; i < 10; i++ {
		r := mkRecord(t, float64(i)*0.1, 1000-inet.UDPHeaderLen-inet.IPv4HeaderLen-inet.EthernetOverhead, uint16(i))
		tr.Append(r)
	}
	f := tr.SplitFlows()[0]
	bw := f.BandwidthSeries(time.Second)
	if len(bw) != 1 {
		t.Fatalf("buckets=%d", len(bw))
	}
	if bw[0].Y != 80000 { // 10 kB/s = 80 kbit/s
		t.Fatalf("bandwidth=%v", bw[0].Y)
	}
	if ar := f.AverageRate(); ar < 80000 || ar > 90000 {
		t.Fatalf("average rate=%v", ar)
	}
	var empty FlowTrace
	if empty.AverageRate() != 0 {
		t.Fatal("empty average rate")
	}
}

func TestSequencePointsAndWindow(t *testing.T) {
	tr := buildTestTrace(t)
	a := tr.SplitFlows()[0]
	pts := a.SequencePoints(200*time.Millisecond, 600*time.Millisecond)
	if len(pts) != 4 {
		t.Fatalf("sequence points=%d", len(pts))
	}
	if pts[0].Y != 2 {
		t.Fatalf("first index=%v", pts[0].Y)
	}
	w := a.Window(0, 300*time.Millisecond)
	if w.Len() != 3 {
		t.Fatalf("window=%d", w.Len())
	}
}

func TestTrainLengths(t *testing.T) {
	tr := buildTestTrace(t)
	flows := tr.SplitFlows()
	b := flows[1]
	tl := b.TrainLengths()
	if len(tl) != 5 {
		t.Fatalf("trains=%d", len(tl))
	}
	for _, n := range tl {
		if n != 3 {
			t.Fatalf("train length=%d, want 3", n)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := buildTestTrace(t)
	var buf bytes.Buffer
	if err := WriteFile(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip len=%d, want %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		a, b := tr.At(i), got.At(i)
		if a.At != b.At || a.WireLen != b.WireLen || a.IPID != b.IPID ||
			a.FragOff != b.FragOff || a.HasPorts != b.HasPorts || a.Dir != b.Dir {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
	// Analysis over the reloaded trace matches.
	if len(got.SplitFlows()) != 2 {
		t.Fatal("reloaded trace flows")
	}
}

func TestTraceFileErrors(t *testing.T) {
	if _, err := ReadFile(bytes.NewReader([]byte("BOGUS!!!"))); err != ErrBadMagic {
		t.Fatalf("magic: %v", err)
	}
	if _, err := ReadFile(bytes.NewReader(nil)); err != ErrBadMagic {
		t.Fatalf("empty: %v", err)
	}
	// Truncated record.
	tr := buildTestTrace(t)
	var buf bytes.Buffer
	WriteFile(&buf, tr)
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadFile(bytes.NewReader(trunc)); err != ErrCorrupt {
		t.Fatalf("truncated: %v", err)
	}
	// Bad version.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[4], bad[5] = 0xFF, 0xFF
	if _, err := ReadFile(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestSnifferIntegration(t *testing.T) {
	n := netsim.New(1)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	n.ConnectDuplex(clientAddr, serverAddr, []netsim.HopSpec{{
		Addr: inet.MakeAddr(10, 0, 0, 1), Bandwidth: 10e6, PropDelay: time.Millisecond,
	}})
	c.BindUDP(5000, func(eventsim.Time, inet.Endpoint, []byte) {})
	sniff := Attach(c)
	// Server streams 20 oversize frames to the client.
	for i := 0; i < 20; i++ {
		i := i
		n.Sched.At(eventsim.At(float64(i)*0.1), "send", func(eventsim.Time) {
			s.SendUDP(inet.PortMMSData, inet.Endpoint{Addr: clientAddr, Port: 5000}, make([]byte, 3000))
		})
	}
	n.Run(0)
	tr := sniff.Trace().Recv()
	if tr.Len() != 60 { // 20 datagrams x 3 fragments
		t.Fatalf("captured %d", tr.Len())
	}
	flows := tr.SplitFlows()
	if len(flows) != 1 {
		t.Fatalf("flows=%d", len(flows))
	}
	fs := flows[0].Fragmentation()
	if fs.Datagrams != 20 || fs.Continuations != 40 {
		t.Fatalf("fragmentation %+v", fs)
	}
}

func TestSnifferRecvOnly(t *testing.T) {
	n := netsim.New(1)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	n.ConnectDuplex(clientAddr, serverAddr, []netsim.HopSpec{{
		Addr: inet.MakeAddr(10, 0, 0, 1), Bandwidth: 10e6, PropDelay: time.Millisecond,
	}})
	s.BindUDP(inet.PortMMSData, func(eventsim.Time, inet.Endpoint, []byte) {})
	sniff := Attach(c)
	sniff.RecvOnly = true
	c.SendUDP(5000, inet.Endpoint{Addr: serverAddr, Port: inet.PortMMSData}, []byte("x"))
	n.Run(0)
	if sniff.Trace().Len() != 0 {
		t.Fatal("RecvOnly captured an outbound packet")
	}
}

func TestTraceDuration(t *testing.T) {
	tr := buildTestTrace(t)
	if tr.Duration() <= 0 {
		t.Fatal("duration")
	}
	var empty Trace
	if empty.Duration() != 0 {
		t.Fatal("empty duration")
	}
}

func TestTCPRecordsAnalyzable(t *testing.T) {
	// TCP segments (for the transport-comparison experiments) flow through
	// the same capture pipeline: ports parsed, flows split, files round-
	// tripped.
	tr := &Trace{}
	for i := 0; i < 5; i++ {
		d, err := inet.BuildTCP(srvEP, cliEP, uint16(i+1), inet.TCPHeader{
			Seq: uint32(1000 + i*1460), Ack: 55, Flags: inet.TCPAck,
			Window: 65535,
		}, make([]byte, 1460))
		if err != nil {
			t.Fatal(err)
		}
		tr.Append(parseRecord(time.Duration(i)*50*time.Millisecond, netsim.Recv, d))
	}
	flows := tr.SplitFlows()
	if len(flows) != 1 {
		t.Fatalf("flows=%d", len(flows))
	}
	ft := flows[0]
	if ft.Flow.Src != srvEP || ft.Flow.Dst != cliEP {
		t.Fatalf("flow=%v", ft.Flow)
	}
	if ft.At(0).PayloadLen != 1460 {
		t.Fatalf("payload len=%d", ft.At(0).PayloadLen)
	}
	// File round trip preserves TCP records.
	var buf bytes.Buffer
	if err := WriteFile(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SplitFlows()) != 1 {
		t.Fatal("reloaded TCP flows")
	}
	// Display filters match TCP by protocol.
	f, err := Compile("ip.proto == tcp")
	if err != nil {
		t.Fatal(err)
	}
	if f.Apply(tr).Len() != 5 {
		t.Fatal("proto filter missed TCP records")
	}
}
