package capture

import (
	"testing"
	"testing/quick"
)

func compile(t *testing.T, expr string) *Filter {
	t.Helper()
	f, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	return f
}

func TestFilterBasicComparisons(t *testing.T) {
	tr := buildTestTrace(t)
	cases := []struct {
		expr string
		want int
	}{
		{"udp.srcport == 1755", 10},
		{"udp.srcport == 6970", 5}, // only first fragments expose ports
		{"udp.port == 4000", 15},   // matches dst port incl. first frags
		{"ip.contfrag", 10},
		{"ip.frag", 15},
		{"!ip.frag", 10},
		{"ip.mf", 10},
		{"size == 1514", 10},
		{"size > 1000", 15},
		{"size >= 1514", 10},
		{"size < 1000", 10},
		{"size <= 962", 10},
		{"ip.proto == udp", 25},
		{"ip.proto == icmp", 0},
		{"ip.proto == 17", 25},
		{"time < 0.35", 10},
		{"ip.id == 101", 3},
		{"ip.id != 101", 22},
		{"ip.len > 1400", 10},
		{"ip.fragoff > 0", 10},
		{"ip.src == 207.46.1.9", 25},
		{"ip.src != 207.46.1.9", 0},
		{"ip.dst == 130.215.10.5", 25},
		{"recv", 25},
		{"send", 0},
	}
	for _, c := range cases {
		f := compile(t, c.expr)
		got := f.Apply(tr).Len()
		if got != c.want {
			t.Errorf("%q matched %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestFilterBooleanStructure(t *testing.T) {
	tr := buildTestTrace(t)
	cases := []struct {
		expr string
		want int
	}{
		{"udp.srcport == 1755 && size < 1000", 10},
		{"udp.srcport == 1755 && size > 1000", 0},
		{"udp.srcport == 1755 || ip.contfrag", 20},
		{"!(udp.srcport == 1755) && !ip.frag", 0},
		{"(ip.frag || size < 1000) && recv", 25},
		{"!!recv", 25},
		{"ip.frag && ip.mf && ip.fragoff > 0", 5}, // middle fragments only
	}
	for _, c := range cases {
		f := compile(t, c.expr)
		if got := f.Apply(tr).Len(); got != c.want {
			t.Errorf("%q matched %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestFilterParseErrors(t *testing.T) {
	bad := []string{
		"",
		"size ==",
		"size = 5",
		"bogusfield == 3",
		"size == abc && ",
		"(size == 5",
		"size == 5)",
		"ip.src == 999.0.0.1",
		"ip.src > 1.2.3.4",
		"size & 5",
		"size | 5",
		"ip.proto == banana",
		"udp.port == banana",
		"size == 5 extra",
		"== 5",
		"ip.len == twelve",
		"#",
	}
	for _, expr := range bad {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	f := compile(t, "size > 100 && recv")
	if f.String() != "size > 100 && recv" {
		t.Fatalf("String=%q", f.String())
	}
}

func TestFilterPrecedence(t *testing.T) {
	tr := buildTestTrace(t)
	// && binds tighter than ||: A || B && C == A || (B && C).
	a := compile(t, "ip.contfrag || udp.srcport == 1755 && size > 9999")
	if got := a.Apply(tr).Len(); got != 10 {
		t.Fatalf("precedence: %d, want 10 (contfrag only)", got)
	}
	b := compile(t, "(ip.contfrag || udp.srcport == 1755) && size > 9999")
	if got := b.Apply(tr).Len(); got != 0 {
		t.Fatalf("parenthesised: %d, want 0", got)
	}
}

// Property: De Morgan — !(A && B) matches exactly !A || !B.
func TestFilterDeMorganProperty(t *testing.T) {
	tr := buildTestTrace(t)
	pairs := [][2]string{
		{"!(ip.frag && size > 1000)", "!ip.frag || size <= 1000"},
		{"!(recv && ip.mf)", "!recv || !ip.mf"},
	}
	for _, p := range pairs {
		a, b := compile(t, p[0]), compile(t, p[1])
		for i := 0; i < tr.Len(); i++ {
			r := tr.At(i)
			if a.Match(&r) != b.Match(&r) {
				t.Fatalf("De Morgan violated for %q vs %q on %v", p[0], p[1], r)
			}
		}
	}
}

// Property: numeric thresholds partition the trace: count(size < x) +
// count(size >= x) == len for random x.
func TestFilterPartitionProperty(t *testing.T) {
	tr := buildTestTrace(t)
	f := func(x uint16) bool {
		lt, err1 := Compile("size < " + itoa(int(x)))
		ge, err2 := Compile("size >= " + itoa(int(x)))
		if err1 != nil || err2 != nil {
			return false
		}
		return lt.Apply(tr).Len()+ge.Apply(tr).Len() == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
