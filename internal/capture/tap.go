package capture

import (
	"time"

	"turbulence/internal/inet"
	"turbulence/internal/stats"
)

// Tap observes captured records as they happen. The sniffer invokes Observe
// once per captured packet, synchronously, with zero allocation; the record
// (and its wire payload view) is valid only for the duration of the call,
// so taps that keep anything must copy it. Online analyzers implement Tap
// to compute flow metrics at capture time, which is what lets sweeps run
// without materialising a trace at all (see core's StreamProfiles).
type Tap interface {
	Observe(r *Record)
}

// Burst-ratio windows, shared by the online analyzer and the trace-replay
// path (core.ProfileFlow runs on FlowMetrics too, so the two agree
// exactly): the startup window compared against the steady-state sample at
// the end of the flow, past any buffering burst.
const (
	burstWindow = 8 * time.Second
	steadyTail  = 0.25 // final quarter of the flow
)

// tailRing is a growable ring of (time, bits) samples covering at least
// the final steadyTail share of a flow. The analyzer evicts from the front
// as the flow's elapsed time grows — a sample older than steadyTail of the
// current span can never land in the final steady window — so steady-state
// capture appends without allocating once the ring reaches the flow's
// quarter-window size.
type tailRing struct {
	at   []time.Duration
	bits []int32
	head int
	n    int
}

func (tr *tailRing) push(at time.Duration, bits int32) {
	if tr.n == len(tr.at) {
		size := 2 * tr.n
		if size < 64 {
			size = 64
		}
		ats := make([]time.Duration, size)
		bs := make([]int32, size)
		for i := 0; i < tr.n; i++ {
			j := (tr.head + i) % len(tr.at)
			ats[i] = tr.at[j]
			bs[i] = tr.bits[j]
		}
		tr.at, tr.bits, tr.head = ats, bs, 0
	}
	i := (tr.head + tr.n) % len(tr.at)
	tr.at[i] = at
	tr.bits[i] = bits
	tr.n++
}

func (tr *tailRing) evictBefore(cut time.Duration) {
	for tr.n > 0 && tr.at[tr.head] < cut {
		tr.head = (tr.head + 1) % len(tr.at)
		tr.n--
	}
}

// windowSum sums bits for samples with time in [from, to), in insertion
// order — the same reduction stats.TimeSeries.WindowSum performs, exact
// because the samples are integer bit counts.
func (tr *tailRing) windowSum(from, to time.Duration) float64 {
	sum := 0.0
	for i := 0; i < tr.n; i++ {
		j := (tr.head + i) % len(tr.at)
		if tr.at[j] >= from && tr.at[j] < to {
			sum += float64(tr.bits[j])
		}
	}
	return sum
}

// FlowMetrics is the online per-flow analyzer: it folds each captured
// record of one flow into constant-size accumulators (plus a ring bounded
// by the flow's final quarter window) and answers every reduction
// core.FlowProfile needs — packet and datagram counts, fragmentation
// stats, wire-size and group-interarrival summaries, average rate and
// burst ratio — without storing the records. Records must be observed in
// capture (time) order, the order a sniffer naturally delivers.
//
// core.ProfileFlow computes trace-derived profiles by replaying the flow's
// records through this same accumulator, so online and trace-derived
// profiles are identical by construction.
type FlowMetrics struct {
	frag       FragmentStats
	sizes      stats.Welford
	firstSizes stats.Welford
	groupIA    stats.Welford

	bits      float64 // Σ wire bits, exact (integer-valued samples)
	earlyBits float64 // Σ wire bits in the first burstWindow of the flow

	firstAt, lastAt time.Duration
	lastFirstAt     time.Duration // time of the last datagram-initial packet
	sawPacket       bool
	sawDatagram     bool

	tail tailRing
}

// Reset clears the accumulators for a new flow while retaining the tail
// ring's backing arrays, so a pooled analyzer observes its next flow
// without reallocating the ring it already grew.
func (m *FlowMetrics) Reset() {
	tail := m.tail
	*m = FlowMetrics{}
	tail.head, tail.n = 0, 0
	m.tail = tail
}

// Observe folds one record into the accumulators.
func (m *FlowMetrics) Observe(r *Record) {
	if !m.sawPacket {
		m.firstAt = r.At
		m.sawPacket = true
	}
	m.lastAt = r.At

	m.frag.Packets++
	if r.FragOff == 0 {
		m.frag.Datagrams++
		m.firstSizes.Add(float64(r.WireLen))
		if m.sawDatagram {
			m.groupIA.Add((r.At - m.lastFirstAt).Seconds())
		}
		m.lastFirstAt = r.At
		m.sawDatagram = true
	} else {
		m.frag.Continuations++
	}
	if r.IsFragment() {
		m.frag.AnyFragment++
	}

	m.sizes.Add(float64(r.WireLen))
	bits := float64(r.WireLen * 8)
	m.bits += bits

	at := r.At - m.firstAt
	if at < burstWindow {
		m.earlyBits += bits
	}
	m.tail.push(at, int32(r.WireLen*8))
	span := m.lastAt - m.firstAt
	m.tail.evictBefore(time.Duration(float64(span) * (1 - steadyTail)))
}

// Packets reports the number of wire packets observed.
func (m *FlowMetrics) Packets() int { return m.frag.Packets }

// Fragmentation returns the flow's fragment statistics.
func (m *FlowMetrics) Fragmentation() FragmentStats { return m.frag }

// Sizes returns the wire-size summary (all packets).
func (m *FlowMetrics) Sizes() *stats.Welford { return &m.sizes }

// FirstSizes returns the wire-size summary of datagram-initial packets —
// the sample the paper's CBR classification judges, with fragment trains
// collapsed.
func (m *FlowMetrics) FirstSizes() *stats.Welford { return &m.firstSizes }

// GroupInterarrivals returns the summary of spacings between the first
// packets of successive datagrams (seconds), the paper's Figure 9
// reduction.
func (m *FlowMetrics) GroupInterarrivals() *stats.Welford { return &m.groupIA }

// AverageRate returns the flow's mean throughput in bits/second across its
// active duration (first to last packet) — identical to
// FlowTrace.AverageRate.
func (m *FlowMetrics) AverageRate() float64 {
	if m.frag.Packets < 2 {
		return 0
	}
	span := (m.lastAt - m.firstAt).Seconds()
	if span <= 0 {
		return 0
	}
	return m.bits / span
}

// BurstRatio compares startup throughput to steady-state throughput —
// identical to the trace-based reduction core applied (startup window
// burstWindow, steady sample the final steadyTail of the flow).
func (m *FlowMetrics) BurstRatio() float64 {
	if m.frag.Packets < 2 {
		return 0
	}
	span := m.lastAt - m.firstAt
	if span <= burstWindow*2 {
		return 1
	}
	early := m.earlyBits / burstWindow.Seconds()
	tailStart := time.Duration(float64(span) * (1 - steadyTail))
	steady := m.tail.windowSum(tailStart, span) / (time.Duration(float64(span) * steadyTail)).Seconds()
	if steady <= 0 {
		return 0
	}
	return early / steady
}

// Span returns the flow's first and last packet times.
func (m *FlowMetrics) Span() (first, last time.Duration) { return m.firstAt, m.lastAt }

// RateAccumulator reduces observed packets into the same bits-per-second
// curve FlowTrace.BandwidthSeries produces, with O(buckets) state instead
// of O(packets).
type RateAccumulator struct {
	Width time.Duration // bucket width; BandwidthSeries' parameter

	sums  []float64
	maxAt time.Duration
	seen  bool
}

// Observe adds one packet's wire bits to its bucket.
func (ra *RateAccumulator) Observe(r *Record) {
	if ra.Width <= 0 {
		ra.Width = time.Second
	}
	i := int(r.At / ra.Width)
	if i < 0 {
		i = 0
	}
	for i >= len(ra.sums) {
		ra.sums = append(ra.sums, 0)
	}
	ra.sums[i] += float64(r.WireLen * 8)
	if r.At > ra.maxAt || !ra.seen {
		ra.maxAt = r.At
		ra.seen = true
	}
}

// Series renders the accumulated buckets as a rate-per-second curve,
// matching FlowTrace.BandwidthSeries exactly (integer bit sums, identical
// bucket count).
func (ra *RateAccumulator) Series() []stats.Point {
	if !ra.seen {
		return nil
	}
	n := int(ra.maxAt/ra.Width) + 1
	out := make([]stats.Point, n)
	sec := ra.Width.Seconds()
	for i := range out {
		sum := 0.0
		if i < len(ra.sums) {
			sum = ra.sums[i]
		}
		out[i] = stats.Point{X: (time.Duration(i) * ra.Width).Seconds(), Y: sum / sec}
	}
	return out
}

// TrainTally accumulates fragment-train lengths in arrival order —
// FlowTrace.TrainLengths computed online, O(datagrams) output state.
type TrainTally struct {
	lengths []int
	count   int
}

// Observe extends or starts a train.
func (tt *TrainTally) Observe(r *Record) {
	if r.FragOff == 0 {
		if tt.count > 0 {
			tt.lengths = append(tt.lengths, tt.count)
		}
		tt.count = 1
	} else {
		tt.count++
	}
}

// Lengths returns the train lengths observed so far, the in-progress train
// included — exactly TrainLengths over the same records.
func (tt *TrainTally) Lengths() []int {
	out := append([]int(nil), tt.lengths...)
	if tt.count > 0 {
		out = append(out, tt.count)
	}
	return out
}

// SequenceWindow collects (time, packet index) points for arrivals inside
// [From, To) — FlowTrace.SequencePoints computed online.
type SequenceWindow struct {
	From, To time.Duration

	next   int
	points []stats.Point
}

// Observe indexes one packet and records it if it falls in the window.
func (sw *SequenceWindow) Observe(r *Record) {
	i := sw.next
	sw.next++
	if r.At >= sw.From && r.At < sw.To {
		sw.points = append(sw.points, stats.Point{X: r.At.Seconds(), Y: float64(i)})
	}
}

// Points returns the collected points.
func (sw *SequenceWindow) Points() []stats.Point { return sw.points }

// FlowStream is one flow being analysed online by a FlowDemux.
type FlowStream struct {
	Flow    inet.Flow
	Metrics *FlowMetrics
	// Extra is the per-flow analyzer built by the demux's Extra factory,
	// nil when no factory is installed.
	Extra Tap
}

// addrPair keys fragment-train state by the (source, destination) address
// pair — IP IDs are only unique within one.
type addrPair struct{ src, dst inet.Addr }

// trainTable maps an IP ID to 1 + the flow index of the train's first
// fragment (0 = no train seen). A flat array rather than a map keeps the
// per-fragment hot path allocation-free and gives the same
// last-writer-wins, entries-persist semantics Trace.SplitFlows' train map
// has, which the online/trace parity depends on.
type trainTable [1 << 16]int32

// FlowDemux routes captured records to per-flow FlowMetrics online,
// attributing continuation fragments to the flow of their train's first
// fragment via the IP ID — exactly the reduction Trace.SplitFlows applies
// to a stored trace, flow order included. Steady-state observation (known
// flows, any fragmentation) performs no allocation.
type FlowDemux struct {
	// Extra, when set before observation starts, builds one extra analyzer
	// per discovered flow; the demux feeds it every record of that flow.
	Extra func(inet.Flow) Tap

	byFlow map[inet.Flow]int32
	flows  []FlowStream
	trains map[addrPair]*trainTable

	// freeMetrics recycles per-flow analyzers across Resets, so a pooled
	// demux discovers its flows without allocating accumulators again.
	freeMetrics []*FlowMetrics
}

// NewFlowDemux returns an empty demultiplexer.
func NewFlowDemux() *FlowDemux {
	return &FlowDemux{
		byFlow: make(map[inet.Flow]int32),
		trains: make(map[addrPair]*trainTable),
	}
}

// Reset returns the demux to its post-NewFlowDemux state while retaining
// every allocation it has made: flow analyzers move to a free list for the
// next discovery pass, the flow map empties in place, and the train tables
// (256 KB flat arrays, the demux's dominant allocation) are zeroed and
// kept. This is what lets a sweep worker analyse run after run with one
// demux instead of one per cell. The Extra factory is preserved; flow
// views handed out before the Reset must not be used afterwards.
func (dx *FlowDemux) Reset() {
	clear(dx.byFlow)
	for i := range dx.flows {
		dx.flows[i].Metrics.Reset()
		dx.freeMetrics = append(dx.freeMetrics, dx.flows[i].Metrics)
		dx.flows[i] = FlowStream{}
	}
	dx.flows = dx.flows[:0]
	for _, tt := range dx.trains {
		clear(tt[:])
	}
}

// Observe routes one record to its flow's analyzers.
func (dx *FlowDemux) Observe(r *Record) {
	if r.Proto != inet.ProtoUDP && r.Proto != inet.ProtoTCP {
		return
	}
	var fi int32
	if r.HasPorts {
		flow, _ := r.Flow()
		idx, ok := dx.byFlow[flow]
		if !ok {
			idx = int32(len(dx.flows))
			dx.byFlow[flow] = idx
			var m *FlowMetrics
			if n := len(dx.freeMetrics); n > 0 {
				m = dx.freeMetrics[n-1]
				dx.freeMetrics = dx.freeMetrics[:n-1]
			} else {
				m = &FlowMetrics{}
			}
			fs := FlowStream{Flow: flow, Metrics: m}
			if dx.Extra != nil {
				fs.Extra = dx.Extra(flow)
			}
			dx.flows = append(dx.flows, fs)
		}
		fi = idx
		if r.IsFragment() {
			tt := dx.trains[addrPair{r.Src, r.Dst}]
			if tt == nil {
				tt = new(trainTable)
				dx.trains[addrPair{r.Src, r.Dst}] = tt
			}
			tt[r.IPID] = fi + 1
		}
	} else {
		tt := dx.trains[addrPair{r.Src, r.Dst}]
		if tt == nil {
			return // orphan fragment; first never seen
		}
		v := tt[r.IPID]
		if v == 0 {
			return
		}
		fi = v - 1
	}
	fs := &dx.flows[fi]
	fs.Metrics.Observe(r)
	if fs.Extra != nil {
		fs.Extra.Observe(r)
	}
}

// Flows returns the analysed flows in first-seen order — the order
// SplitFlows yields them from a stored trace.
func (dx *FlowDemux) Flows() []FlowStream { return dx.flows }

// To returns the first flow whose destination port matches, or nil — the
// online counterpart of Trace.FlowTo.
func (dx *FlowDemux) To(dstPort inet.Port) *FlowStream {
	for i := range dx.flows {
		if dx.flows[i].Flow.Dst.Port == dstPort {
			return &dx.flows[i]
		}
	}
	return nil
}
