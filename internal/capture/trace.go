// Package capture reimplements the measurement role Ethereal 0.8.20 played
// in the paper: it taps a simulated host NIC, records every wire packet
// (including individual IP fragments) with timestamps, persists traces in a
// compact binary format, evaluates display-filter expressions, streams
// per-record observations to online analyzers, and derives the per-flow
// metrics the analysis section needs — packet sizes, interarrival times,
// fragment shares, bandwidth-over-time and sequence-number-over-time
// series.
package capture

import (
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

// Record is one captured wire packet, pre-parsed for analysis. It is a
// value materialised from the trace's columnar storage (or built fresh by
// the sniffer); the wire payload bytes live in the owning trace's arena
// and are referenced, not copied, by the record view.
type Record struct {
	At      time.Duration // capture time relative to the trace epoch
	Dir     netsim.Direction
	WireLen int // on-the-wire bytes including Ethernet framing

	// Parsed network-layer fields. TTL, TOS and Flags carry the full IPv4
	// header state as captured, so Raw can re-serialise the packet without
	// retaining the original datagram.
	Src, Dst inet.Addr
	Proto    byte
	TTL      byte
	TOS      byte
	IPID     uint16
	Flags    uint16 // raw IPv4 flag bits (DF | MF)
	FragOff  uint16 // 8-byte units
	MoreFrag bool
	IPLen    int

	// Parsed transport fields; valid only when HasPorts (unfragmented
	// datagrams and first fragments).
	HasPorts         bool
	SrcPort, DstPort inet.Port
	PayloadLen       int // UDP payload bytes in this wire packet

	// wire is the captured IP payload (transport header + data). It is nil
	// for synthetic records (e.g. from the Section IV flow generator),
	// which have no wire bytes. For records read back from a trace it is a
	// view into the owning trace's payload arena.
	wire []byte
}

// IsFragment reports whether the record is any fragment of a larger
// datagram (first, middle or last).
func (r Record) IsFragment() bool { return r.FragOff != 0 || r.MoreFrag }

// IsContinuationFragment reports whether the record is a non-first
// fragment. This matches the convention in the paper's Figure 5: Ethereal
// displays the first fragment (offset 0, which carries the UDP header) as a
// UDP packet and only subsequent fragments as "IP fragments".
func (r Record) IsContinuationFragment() bool { return r.FragOff != 0 }

// Flow returns the record's flow when ports are available.
func (r Record) Flow() (inet.Flow, bool) {
	if !r.HasPorts {
		return inet.Flow{}, false
	}
	return inet.Flow{
		Src: inet.Endpoint{Addr: r.Src, Port: r.SrcPort},
		Dst: inet.Endpoint{Addr: r.Dst, Port: r.DstPort},
	}, true
}

// Raw serialises the captured packet to IP wire bytes. It returns nil for
// synthetic records.
func (r Record) Raw() []byte { return r.AppendRaw(nil) }

// AppendRaw appends the captured packet's wire bytes to dst, returning the
// extended slice; trace writers reuse one scratch buffer across records
// this way. The header is rebuilt from the parsed columns (checksum
// included) and is byte-identical to what the original datagram marshalled
// to. Synthetic records append nothing.
func (r Record) AppendRaw(dst []byte) []byte {
	if r.wire == nil {
		return dst
	}
	h := inet.IPv4Header{
		TOS:      r.TOS,
		TotalLen: uint16(r.IPLen),
		ID:       r.IPID,
		Flags:    r.Flags,
		FragOff:  r.FragOff,
		TTL:      r.TTL,
		Protocol: r.Proto,
		Src:      r.Src,
		Dst:      r.Dst,
	}
	n := len(dst)
	dst = append(dst, make([]byte, inet.IPv4HeaderLen)...)
	h.MarshalTo(dst[n:])
	return append(dst, r.wire...)
}

// Wire returns the record's captured IP payload bytes (transport header
// plus data), nil for synthetic records. The slice aliases the trace's
// arena; callers must not mutate it.
func (r Record) Wire() []byte { return r.wire }

// String renders a one-line packet summary in the spirit of a sniffer's
// list view.
func (r Record) String() string {
	proto := "ip"
	switch r.Proto {
	case inet.ProtoUDP:
		proto = "udp"
	case inet.ProtoICMP:
		proto = "icmp"
	case inet.ProtoTCP:
		proto = "tcp"
	}
	frag := ""
	if r.IsFragment() {
		frag = fmt.Sprintf(" frag off=%d mf=%t", r.FragOff, r.MoreFrag)
	}
	ports := ""
	if r.HasPorts {
		ports = fmt.Sprintf(" %d->%d", r.SrcPort, r.DstPort)
	}
	return fmt.Sprintf("%10.6f %s %s %s -> %s len=%d%s%s",
		r.At.Seconds(), r.Dir, proto, r.Src, r.Dst, r.WireLen, ports, frag)
}

// arena is slab-backed storage for captured payload bytes. Slabs never
// move once allocated (payloads are placed only into a slab's spare
// capacity), so views into the arena stay valid as it grows, and growth
// never copies — total allocation stays proportional to the bytes stored.
type arena struct {
	slabs    [][]byte
	nextSize int
}

const (
	arenaMinSlab = 64 << 10
	arenaMaxSlab = 4 << 20
)

// place copies p into the arena and returns a packed (slab, offset)
// reference.
func (a *arena) place(p []byte) int64 {
	s := len(a.slabs) - 1
	if s < 0 || cap(a.slabs[s])-len(a.slabs[s]) < len(p) {
		a.grow(len(p))
		s = len(a.slabs) - 1
	}
	off := len(a.slabs[s])
	a.slabs[s] = append(a.slabs[s], p...)
	return int64(s)<<32 | int64(off)
}

// grow adds a slab with room for at least n more bytes.
func (a *arena) grow(n int) {
	size := a.nextSize
	if size < arenaMinSlab {
		size = arenaMinSlab
	}
	if size < n {
		size = n
	}
	a.slabs = append(a.slabs, make([]byte, 0, size))
	a.nextSize = size * 2
	if a.nextSize > arenaMaxSlab {
		a.nextSize = arenaMaxSlab
	}
}

// free reports the spare capacity of the active slab.
func (a *arena) free() int {
	s := len(a.slabs) - 1
	if s < 0 {
		return 0
	}
	return cap(a.slabs[s]) - len(a.slabs[s])
}

// view resolves a reference to its n bytes.
func (a *arena) view(ref int64, n int) []byte {
	if n == 0 {
		return a.slabs[ref>>32][:0]
	}
	off := int(ref & 0xFFFFFFFF)
	return a.slabs[ref>>32][off : off+n : off+n]
}

// store is the columnar (structure-of-arrays) record storage behind a
// Trace: one slice per field plus the payload arena. Analysis passes that
// touch a few fields (sizes, times, fragment offsets) scan small
// contiguous columns instead of striding across wide record structs, and
// the store holds no pointers into the simulator — captured payload bytes
// are copied into the arena at append time, so the network's datagram
// buffers can be recycled the moment delivery completes.
type store struct {
	at      []time.Duration
	wireLen []int32
	ipLen   []int32
	payLen  []int32
	src     []inet.Addr
	dst     []inet.Addr
	srcPort []inet.Port
	dstPort []inet.Port
	ipid    []uint16
	flags   []uint16
	fragOff []uint16
	proto   []byte
	ttl     []byte
	tos     []byte
	dir     []byte
	meta    []byte // bit 0: HasPorts; bit 1: has wire bytes
	wireRef []int64
	bytes   arena
}

const (
	metaHasPorts = 1 << 0
	metaHasWire  = 1 << 1
)

func (st *store) len() int { return len(st.at) }

// append scatters one record across the columns, copying its wire payload
// into the arena.
func (st *store) append(r Record) {
	st.at = append(st.at, r.At)
	st.wireLen = append(st.wireLen, int32(r.WireLen))
	st.ipLen = append(st.ipLen, int32(r.IPLen))
	st.payLen = append(st.payLen, int32(r.PayloadLen))
	st.src = append(st.src, r.Src)
	st.dst = append(st.dst, r.Dst)
	st.srcPort = append(st.srcPort, r.SrcPort)
	st.dstPort = append(st.dstPort, r.DstPort)
	st.ipid = append(st.ipid, r.IPID)
	flags := r.Flags
	if r.MoreFrag {
		// Records built without raw header state (synthetic generators) set
		// only the boolean; keep the flag bits authoritative in storage.
		flags |= inet.FlagMoreFrags
	}
	st.flags = append(st.flags, flags)
	st.fragOff = append(st.fragOff, r.FragOff)
	st.proto = append(st.proto, r.Proto)
	st.ttl = append(st.ttl, r.TTL)
	st.tos = append(st.tos, r.TOS)
	st.dir = append(st.dir, byte(r.Dir))
	var meta byte
	var ref int64
	if r.HasPorts {
		meta |= metaHasPorts
	}
	if r.wire != nil {
		meta |= metaHasWire
		ref = st.bytes.place(r.wire)
	}
	st.meta = append(st.meta, meta)
	st.wireRef = append(st.wireRef, ref)
}

// isFragment is Record.IsFragment over the columns — the one predicate
// SplitFlows, Fragmentation and the online demux all share, so fragment
// semantics cannot drift between the trace and streaming paths.
func (st *store) isFragment(i int) bool {
	return st.fragOff[i] != 0 || st.flags[i]&inet.FlagMoreFrags != 0
}

// record materialises the i-th row as a Record view.
func (st *store) record(i int) Record {
	meta := st.meta[i]
	r := Record{
		At:       st.at[i],
		Dir:      netsim.Direction(st.dir[i]),
		WireLen:  int(st.wireLen[i]),
		Src:      st.src[i],
		Dst:      st.dst[i],
		Proto:    st.proto[i],
		TTL:      st.ttl[i],
		TOS:      st.tos[i],
		IPID:     st.ipid[i],
		Flags:    st.flags[i],
		FragOff:  st.fragOff[i],
		MoreFrag: st.flags[i]&inet.FlagMoreFrags != 0,
		IPLen:    int(st.ipLen[i]),
		HasPorts: meta&metaHasPorts != 0,
		SrcPort:  st.srcPort[i],
		DstPort:  st.dstPort[i],
	}
	r.PayloadLen = int(st.payLen[i])
	if meta&metaHasWire != 0 {
		r.wire = st.bytes.view(st.wireRef[i], int(st.ipLen[i])-inet.IPv4HeaderLen)
	}
	return r
}

// grow preallocates capacity for n additional records across every column.
func (st *store) grow(n int) {
	if free := cap(st.at) - len(st.at); free >= n {
		return
	}
	growCol(&st.at, n)
	growCol(&st.wireLen, n)
	growCol(&st.ipLen, n)
	growCol(&st.payLen, n)
	growCol(&st.src, n)
	growCol(&st.dst, n)
	growCol(&st.srcPort, n)
	growCol(&st.dstPort, n)
	growCol(&st.ipid, n)
	growCol(&st.flags, n)
	growCol(&st.fragOff, n)
	growCol(&st.proto, n)
	growCol(&st.ttl, n)
	growCol(&st.tos, n)
	growCol(&st.dir, n)
	growCol(&st.meta, n)
	growCol(&st.wireRef, n)
}

func growCol[T any](col *[]T, n int) {
	if free := cap(*col) - len(*col); free >= n {
		return
	}
	grown := make([]T, len(*col), len(*col)+n)
	copy(grown, *col)
	*col = grown
}

// Trace is an ordered sequence of captured packets. A Trace is either an
// owner (it holds the columnar record store) or a view produced by
// Filter/Recv: an index list over an owner's records, sharing storage
// instead of copying it. Both kinds answer the full read-only analysis
// API.
type Trace struct {
	st     store
	parent *Trace  // non-nil for views; always the owning trace
	idx    []int32 // view positions within parent's store
}

// Len reports the number of captured packets.
func (t *Trace) Len() int {
	if t.parent != nil {
		return len(t.idx)
	}
	return t.st.len()
}

// At returns the i-th record, materialised from the owning trace's
// columnar storage. The record is a value; its wire payload (if any)
// aliases the owner's arena.
func (t *Trace) At(i int) Record {
	if t.parent != nil {
		return t.parent.st.record(int(t.idx[i]))
	}
	return t.st.record(i)
}

// Duration returns the timestamp of the last record.
func (t *Trace) Duration() time.Duration {
	n := t.Len()
	if n == 0 {
		return 0
	}
	if t.parent != nil {
		return t.parent.st.at[t.idx[n-1]]
	}
	return t.st.at[n-1]
}

// Append adds a record, keeping the trace usable as a streaming sink; the
// record's wire bytes (if any) are copied into the trace's arena.
// Appending to a view panics: views are read-only.
func (t *Trace) Append(r Record) {
	if t.parent != nil {
		panic("capture: Append on a trace view")
	}
	t.st.append(r)
}

// Grow preallocates capacity for at least n additional records, so
// streaming sinks that know their order of magnitude avoid repeated
// re-allocation of the record store.
func (t *Trace) Grow(n int) {
	if t.parent != nil {
		panic("capture: Grow on a trace view")
	}
	t.st.grow(n)
}

// GrowBytes preallocates arena capacity for at least n additional payload
// bytes.
func (t *Trace) GrowBytes(n int) {
	if t.parent != nil {
		panic("capture: GrowBytes on a trace view")
	}
	if t.st.bytes.free() < n {
		t.st.bytes.grow(n)
	}
}

// owner returns the trace holding the backing storage (itself, unless this
// trace is a view).
func (t *Trace) owner() *Trace {
	if t.parent != nil {
		return t.parent
	}
	return t
}

// storageIndex maps position i in this trace to an index in the owner's
// record storage.
func (t *Trace) storageIndex(i int) int32 {
	if t.parent != nil {
		return t.idx[i]
	}
	return int32(i)
}

// Filter returns the sub-trace of records for which keep returns true, as a
// view sharing this trace's storage. The index is preallocated to the
// input length, so one pass suffices.
func (t *Trace) Filter(keep func(*Record) bool) *Trace {
	n := t.Len()
	idx := make([]int32, 0, n)
	// One scratch record for the whole scan: a loop-local value would
	// escape through the predicate call and allocate per record.
	var r Record
	for i := 0; i < n; i++ {
		r = t.At(i)
		if keep(&r) {
			idx = append(idx, t.storageIndex(i))
		}
	}
	return &Trace{parent: t.owner(), idx: idx}
}

// CountIf reports how many records match keep, without materialising a
// sub-trace.
func (t *Trace) CountIf(keep func(*Record) bool) int {
	n := t.Len()
	count := 0
	var r Record
	for i := 0; i < n; i++ {
		r = t.At(i)
		if keep(&r) {
			count++
		}
	}
	return count
}

// Recv returns only received packets — the direction the paper analyses,
// since its client-side sniffer observed inbound media.
func (t *Trace) Recv() *Trace {
	return t.Filter(func(r *Record) bool { return r.Dir == netsim.Recv })
}

// parseRecord builds a Record from a wire datagram. The payload is
// referenced, not copied: the sniffer copies it into the trace arena when
// (and only when) the record is stored.
func parseRecord(at time.Duration, dir netsim.Direction, d *inet.Datagram) Record {
	r := Record{
		At:       at,
		Dir:      dir,
		WireLen:  d.WireLen(),
		Src:      d.Header.Src,
		Dst:      d.Header.Dst,
		Proto:    d.Header.Protocol,
		TTL:      d.Header.TTL,
		TOS:      d.Header.TOS,
		IPID:     d.Header.ID,
		Flags:    d.Header.Flags,
		FragOff:  d.Header.FragOff,
		MoreFrag: d.Header.MoreFragments(),
		IPLen:    d.Len(),
		wire:     d.Payload,
	}
	if f, ok := d.FlowOf(); ok {
		r.HasPorts = true
		r.SrcPort = f.Src.Port
		r.DstPort = f.Dst.Port
		hdr := inet.UDPHeaderLen
		if d.Header.Protocol == inet.ProtoTCP {
			hdr = inet.TCPHeaderLen
		}
		r.PayloadLen = len(d.Payload) - hdr
	} else if d.Header.IsFragment() {
		// Continuation fragment: payload bytes still count toward flow
		// bandwidth; ports resolved later via the IP ID.
		r.PayloadLen = len(d.Payload)
	}
	return r
}

// snifferPrealloc sizes the initial record store; a full paired streaming
// run captures tens of thousands of packets, so starting at a few thousand
// skips the noisy early growth steps without burdening short tests.
const snifferPrealloc = 4096

// Sniffer taps a host NIC, streams each parsed record to any registered
// observers (see Tap), and — unless storage is disabled — accumulates a
// Trace, timestamping records relative to the moment it was attached (the
// paper starts Ethereal as each experiment begins).
type Sniffer struct {
	trace Trace
	epoch eventsim.Time
	taps  []Tap
	drop  bool
	// rec is the persistent scratch record handed to taps: records flow
	// into Tap interface calls, so a per-packet stack value would escape
	// and cost one heap allocation per captured packet.
	rec Record
	// RecvOnly restricts capture to inbound packets.
	RecvOnly bool
}

// Attach starts capturing at h's NIC. The record store is sized on first
// use, so a sniffer that only streams to taps (SetStore(false)) holds no
// per-packet state at all.
func Attach(h *netsim.Host) *Sniffer {
	s := &Sniffer{epoch: h.Now()}
	h.Tap(func(now eventsim.Time, dir netsim.Direction, d *inet.Datagram) {
		if s.RecvOnly && dir != netsim.Recv {
			return
		}
		s.rec = parseRecord(now.Sub(s.epoch), dir, d)
		for _, tap := range s.taps {
			tap.Observe(&s.rec)
		}
		if !s.drop {
			if s.trace.st.len() == 0 {
				s.trace.Grow(snifferPrealloc)
			}
			s.trace.Append(s.rec)
		}
		s.rec.wire = nil // never outlive the datagram's buffer
	})
	return s
}

// AddTap registers an online observer invoked once per captured record, in
// registration order, before the record is stored. The *Record (and its
// wire payload view) is only valid for the duration of the call; taps must
// copy what they keep. The invocation itself never allocates.
func (s *Sniffer) AddTap(t Tap) { s.taps = append(s.taps, t) }

// SetStore selects whether records are retained in the sniffer's Trace
// (the default) or only streamed to taps. With storage off the sniffer
// holds no per-packet state at all — the memory shape behind
// StreamProfiles sweeps — and Trace stays empty.
func (s *Sniffer) SetStore(on bool) { s.drop = !on }

// Trace returns the accumulated trace. The sniffer keeps appending; take
// the trace only after the run completes.
func (s *Sniffer) Trace() *Trace { return &s.trace }

// Point re-exports the stats series point type for callers that only import
// capture.
type Point = stats.Point
