// Package capture reimplements the measurement role Ethereal 0.8.20 played
// in the paper: it taps a simulated host NIC, records every wire packet
// (including individual IP fragments) with timestamps, persists traces in a
// compact binary format, evaluates display-filter expressions, and derives
// the per-flow metrics the analysis section needs — packet sizes,
// interarrival times, fragment shares, bandwidth-over-time and
// sequence-number-over-time series.
package capture

import (
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

// Record is one captured wire packet, pre-parsed for analysis. The original
// datagram is retained by reference; its wire bytes are serialised lazily,
// only when a trace-file writer asks for them.
type Record struct {
	At      time.Duration // capture time relative to the trace epoch
	Dir     netsim.Direction
	WireLen int // on-the-wire bytes including Ethernet framing

	// Parsed network-layer fields.
	Src, Dst inet.Addr
	Proto    byte
	IPID     uint16
	FragOff  uint16 // 8-byte units
	MoreFrag bool
	IPLen    int

	// Parsed transport fields; valid only when HasPorts (unfragmented
	// datagrams and first fragments).
	HasPorts         bool
	SrcPort, DstPort inet.Port
	PayloadLen       int // UDP payload bytes in this wire packet

	// dgram is the captured datagram, serialised on demand. It is nil for
	// synthetic records (e.g. from the Section IV flow generator), which
	// have no wire bytes.
	dgram *inet.Datagram
}

// IsFragment reports whether the record is any fragment of a larger
// datagram (first, middle or last).
func (r *Record) IsFragment() bool { return r.FragOff != 0 || r.MoreFrag }

// IsContinuationFragment reports whether the record is a non-first
// fragment. This matches the convention in the paper's Figure 5: Ethereal
// displays the first fragment (offset 0, which carries the UDP header) as a
// UDP packet and only subsequent fragments as "IP fragments".
func (r *Record) IsContinuationFragment() bool { return r.FragOff != 0 }

// Flow returns the record's flow when ports are available.
func (r *Record) Flow() (inet.Flow, bool) {
	if !r.HasPorts {
		return inet.Flow{}, false
	}
	return inet.Flow{
		Src: inet.Endpoint{Addr: r.Src, Port: r.SrcPort},
		Dst: inet.Endpoint{Addr: r.Dst, Port: r.DstPort},
	}, true
}

// Raw serialises the captured datagram to IP wire bytes. It returns nil for
// synthetic records.
func (r *Record) Raw() []byte { return r.AppendRaw(nil) }

// AppendRaw appends the captured datagram's wire bytes to dst, returning
// the extended slice; trace writers reuse one scratch buffer across records
// this way. Synthetic records append nothing.
func (r *Record) AppendRaw(dst []byte) []byte {
	if r.dgram == nil {
		return dst
	}
	b, err := r.dgram.AppendMarshal(dst)
	if err != nil {
		return dst
	}
	return b
}

// String renders a one-line packet summary in the spirit of a sniffer's
// list view.
func (r *Record) String() string {
	proto := "ip"
	switch r.Proto {
	case inet.ProtoUDP:
		proto = "udp"
	case inet.ProtoICMP:
		proto = "icmp"
	case inet.ProtoTCP:
		proto = "tcp"
	}
	frag := ""
	if r.IsFragment() {
		frag = fmt.Sprintf(" frag off=%d mf=%t", r.FragOff, r.MoreFrag)
	}
	ports := ""
	if r.HasPorts {
		ports = fmt.Sprintf(" %d->%d", r.SrcPort, r.DstPort)
	}
	return fmt.Sprintf("%10.6f %s %s %s -> %s len=%d%s%s",
		r.At.Seconds(), r.Dir, proto, r.Src, r.Dst, r.WireLen, ports, frag)
}

// Trace is an ordered sequence of captured packets. A Trace is either an
// owner (it holds the record storage) or a view produced by Filter/Recv: an
// index list over an owner's records, sharing storage instead of copying
// it. Both kinds answer the full read-only analysis API.
type Trace struct {
	recs   []Record
	parent *Trace  // non-nil for views; always the owning trace
	idx    []int32 // view positions within parent.recs
}

// Len reports the number of captured packets.
func (t *Trace) Len() int {
	if t.parent != nil {
		return len(t.idx)
	}
	return len(t.recs)
}

// At returns the i-th record. Views resolve through to the parent's
// storage, so the pointer is stable and shared with the owner.
func (t *Trace) At(i int) *Record {
	if t.parent != nil {
		return &t.parent.recs[t.idx[i]]
	}
	return &t.recs[i]
}

// Duration returns the timestamp of the last record.
func (t *Trace) Duration() time.Duration {
	n := t.Len()
	if n == 0 {
		return 0
	}
	return t.At(n - 1).At
}

// Append adds a record, keeping the trace usable as a streaming sink.
// Appending to a view panics: views are read-only.
func (t *Trace) Append(r Record) {
	if t.parent != nil {
		panic("capture: Append on a trace view")
	}
	t.recs = append(t.recs, r)
}

// Grow preallocates capacity for at least n additional records, so
// streaming sinks that know their order of magnitude avoid repeated
// re-allocation of the record store.
func (t *Trace) Grow(n int) {
	if t.parent != nil {
		panic("capture: Grow on a trace view")
	}
	if free := cap(t.recs) - len(t.recs); free < n {
		recs := make([]Record, len(t.recs), len(t.recs)+n)
		copy(recs, t.recs)
		t.recs = recs
	}
}

// owner returns the trace holding the backing storage (itself, unless this
// trace is a view).
func (t *Trace) owner() *Trace {
	if t.parent != nil {
		return t.parent
	}
	return t
}

// storageIndex maps position i in this trace to an index in the owner's
// record storage.
func (t *Trace) storageIndex(i int) int32 {
	if t.parent != nil {
		return t.idx[i]
	}
	return int32(i)
}

// Filter returns the sub-trace of records for which keep returns true, as a
// view sharing this trace's storage. The index is preallocated to the
// input length, so one pass suffices.
func (t *Trace) Filter(keep func(*Record) bool) *Trace {
	n := t.Len()
	idx := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if keep(t.At(i)) {
			idx = append(idx, t.storageIndex(i))
		}
	}
	return &Trace{parent: t.owner(), idx: idx}
}

// CountIf reports how many records match keep, without materialising a
// sub-trace.
func (t *Trace) CountIf(keep func(*Record) bool) int {
	n := t.Len()
	count := 0
	for i := 0; i < n; i++ {
		if keep(t.At(i)) {
			count++
		}
	}
	return count
}

// Recv returns only received packets — the direction the paper analyses,
// since its client-side sniffer observed inbound media.
func (t *Trace) Recv() *Trace {
	return t.Filter(func(r *Record) bool { return r.Dir == netsim.Recv })
}

// parseRecord builds a Record from a wire datagram. The datagram is
// retained by reference (it is immutable once captured); serialisation is
// deferred until a writer needs the bytes.
func parseRecord(at time.Duration, dir netsim.Direction, d *inet.Datagram) Record {
	r := Record{
		At:       at,
		Dir:      dir,
		WireLen:  d.WireLen(),
		Src:      d.Header.Src,
		Dst:      d.Header.Dst,
		Proto:    d.Header.Protocol,
		IPID:     d.Header.ID,
		FragOff:  d.Header.FragOff,
		MoreFrag: d.Header.MoreFragments(),
		IPLen:    d.Len(),
		dgram:    d,
	}
	if f, ok := d.FlowOf(); ok {
		r.HasPorts = true
		r.SrcPort = f.Src.Port
		r.DstPort = f.Dst.Port
		hdr := inet.UDPHeaderLen
		if d.Header.Protocol == inet.ProtoTCP {
			hdr = inet.TCPHeaderLen
		}
		r.PayloadLen = len(d.Payload) - hdr
	} else if d.Header.IsFragment() {
		// Continuation fragment: payload bytes still count toward flow
		// bandwidth; ports resolved later via the IP ID.
		r.PayloadLen = len(d.Payload)
	}
	return r
}

// snifferPrealloc sizes the initial record store; a full paired streaming
// run captures tens of thousands of packets, so starting at a few thousand
// skips the noisy early growth steps without burdening short tests.
const snifferPrealloc = 4096

// Sniffer taps a host NIC and accumulates a Trace, timestamping records
// relative to the moment it was attached (the paper starts Ethereal as each
// experiment begins).
type Sniffer struct {
	trace Trace
	epoch eventsim.Time
	// RecvOnly restricts capture to inbound packets.
	RecvOnly bool
}

// Attach starts capturing at h's NIC.
func Attach(h *netsim.Host) *Sniffer {
	s := &Sniffer{epoch: h.Now()}
	s.trace.Grow(snifferPrealloc)
	h.Tap(func(now eventsim.Time, dir netsim.Direction, d *inet.Datagram) {
		if s.RecvOnly && dir != netsim.Recv {
			return
		}
		s.trace.Append(parseRecord(now.Sub(s.epoch), dir, d))
	})
	return s
}

// Trace returns the accumulated trace. The sniffer keeps appending; take
// the trace only after the run completes.
func (s *Sniffer) Trace() *Trace { return &s.trace }

// Point re-exports the stats series point type for callers that only import
// capture.
type Point = stats.Point
