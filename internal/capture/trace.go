// Package capture reimplements the measurement role Ethereal 0.8.20 played
// in the paper: it taps a simulated host NIC, records every wire packet
// (including individual IP fragments) with timestamps, persists traces in a
// compact binary format, evaluates display-filter expressions, and derives
// the per-flow metrics the analysis section needs — packet sizes,
// interarrival times, fragment shares, bandwidth-over-time and
// sequence-number-over-time series.
package capture

import (
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

// Record is one captured wire packet, pre-parsed for analysis. CapLen
// bytes of the original datagram are retained for file round trips.
type Record struct {
	At      time.Duration // capture time relative to the trace epoch
	Dir     netsim.Direction
	WireLen int // on-the-wire bytes including Ethernet framing

	// Parsed network-layer fields.
	Src, Dst inet.Addr
	Proto    byte
	IPID     uint16
	FragOff  uint16 // 8-byte units
	MoreFrag bool
	IPLen    int

	// Parsed transport fields; valid only when HasPorts (unfragmented
	// datagrams and first fragments).
	HasPorts         bool
	SrcPort, DstPort inet.Port
	PayloadLen       int // UDP payload bytes in this wire packet

	// Raw holds the captured datagram bytes for serialisation.
	Raw []byte
}

// IsFragment reports whether the record is any fragment of a larger
// datagram (first, middle or last).
func (r *Record) IsFragment() bool { return r.FragOff != 0 || r.MoreFrag }

// IsContinuationFragment reports whether the record is a non-first
// fragment. This matches the convention in the paper's Figure 5: Ethereal
// displays the first fragment (offset 0, which carries the UDP header) as a
// UDP packet and only subsequent fragments as "IP fragments".
func (r *Record) IsContinuationFragment() bool { return r.FragOff != 0 }

// Flow returns the record's flow when ports are available.
func (r *Record) Flow() (inet.Flow, bool) {
	if !r.HasPorts {
		return inet.Flow{}, false
	}
	return inet.Flow{
		Src: inet.Endpoint{Addr: r.Src, Port: r.SrcPort},
		Dst: inet.Endpoint{Addr: r.Dst, Port: r.DstPort},
	}, true
}

// String renders a one-line packet summary in the spirit of a sniffer's
// list view.
func (r *Record) String() string {
	proto := "ip"
	switch r.Proto {
	case inet.ProtoUDP:
		proto = "udp"
	case inet.ProtoICMP:
		proto = "icmp"
	case inet.ProtoTCP:
		proto = "tcp"
	}
	frag := ""
	if r.IsFragment() {
		frag = fmt.Sprintf(" frag off=%d mf=%t", r.FragOff, r.MoreFrag)
	}
	ports := ""
	if r.HasPorts {
		ports = fmt.Sprintf(" %d->%d", r.SrcPort, r.DstPort)
	}
	return fmt.Sprintf("%10.6f %s %s %s -> %s len=%d%s%s",
		r.At.Seconds(), r.Dir, proto, r.Src, r.Dst, r.WireLen, ports, frag)
}

// Trace is an ordered sequence of captured packets.
type Trace struct {
	Records []Record
}

// Len reports the number of captured packets.
func (t *Trace) Len() int { return len(t.Records) }

// Duration returns the timestamp of the last record.
func (t *Trace) Duration() time.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].At
}

// Append adds a record, keeping the trace usable as a streaming sink.
func (t *Trace) Append(r Record) { t.Records = append(t.Records, r) }

// Filter returns a new Trace containing the records for which keep returns
// true.
func (t *Trace) Filter(keep func(*Record) bool) *Trace {
	out := &Trace{}
	for i := range t.Records {
		if keep(&t.Records[i]) {
			out.Records = append(out.Records, t.Records[i])
		}
	}
	return out
}

// Recv returns only received packets — the direction the paper analyses,
// since its client-side sniffer observed inbound media.
func (t *Trace) Recv() *Trace {
	return t.Filter(func(r *Record) bool { return r.Dir == netsim.Recv })
}

// parseRecord builds a Record from a wire datagram.
func parseRecord(at time.Duration, dir netsim.Direction, d *inet.Datagram) Record {
	r := Record{
		At:       at,
		Dir:      dir,
		WireLen:  d.WireLen(),
		Src:      d.Header.Src,
		Dst:      d.Header.Dst,
		Proto:    d.Header.Protocol,
		IPID:     d.Header.ID,
		FragOff:  d.Header.FragOff,
		MoreFrag: d.Header.MoreFragments(),
		IPLen:    d.Len(),
	}
	if f, ok := d.FlowOf(); ok {
		r.HasPorts = true
		r.SrcPort = f.Src.Port
		r.DstPort = f.Dst.Port
		hdr := inet.UDPHeaderLen
		if d.Header.Protocol == inet.ProtoTCP {
			hdr = inet.TCPHeaderLen
		}
		r.PayloadLen = len(d.Payload) - hdr
	} else if d.Header.IsFragment() {
		// Continuation fragment: payload bytes still count toward flow
		// bandwidth; ports resolved later via the IP ID.
		r.PayloadLen = len(d.Payload)
	}
	if b, err := d.Marshal(); err == nil {
		r.Raw = b
	}
	return r
}

// Sniffer taps a host NIC and accumulates a Trace, timestamping records
// relative to the moment it was attached (the paper starts Ethereal as each
// experiment begins).
type Sniffer struct {
	trace Trace
	epoch eventsim.Time
	// RecvOnly restricts capture to inbound packets.
	RecvOnly bool
}

// Attach starts capturing at h's NIC.
func Attach(h *netsim.Host) *Sniffer {
	s := &Sniffer{epoch: h.Now()}
	h.Tap(func(now eventsim.Time, dir netsim.Direction, d *inet.Datagram) {
		if s.RecvOnly && dir != netsim.Recv {
			return
		}
		s.trace.Append(parseRecord(now.Sub(s.epoch), dir, d))
	})
	return s
}

// Trace returns the accumulated trace. The sniffer keeps appending; take
// the trace only after the run completes.
func (s *Sniffer) Trace() *Trace { return &s.trace }

// Point re-exports the stats series point type for callers that only import
// capture.
type Point = stats.Point
