package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"turbulence/internal/inet"
	"turbulence/internal/netsim"
)

// Trace file format ("TBC1"): a little binary capture container in the
// spirit of libpcap, so the ethereal CLI can dump and filter saved runs.
//
//	file   := magic(4) version(u16) reserved(u16) record*
//	record := tstampNanos(u64) dir(u8) wireLen(u16) capLen(u16) bytes[capLen]
//
// Records are EOF-terminated, allowing streaming writes. All integers are
// big-endian.
var traceMagic = [4]byte{'T', 'B', 'C', '1'}

const traceVersion = 1

// Errors returned by the trace file reader.
var (
	ErrBadMagic   = errors.New("capture: not a turbulence trace file")
	ErrBadVersion = errors.New("capture: unsupported trace file version")
	ErrCorrupt    = errors.New("capture: corrupt trace record")
)

// Writer streams records to a trace file.
type Writer struct {
	w       *bufio.Writer
	scratch []byte // reused per-record serialisation buffer
	err     error
}

// NewWriter writes the file header and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:], traceVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteRecord appends one record, serialising the captured datagram into
// the writer's scratch buffer (this is the only place wire bytes are
// materialised).
func (w *Writer) WriteRecord(r *Record) error {
	if w.err != nil {
		return w.err
	}
	w.scratch = r.AppendRaw(w.scratch[:0])
	raw := w.scratch
	capLen := len(raw)
	if capLen > 0xFFFF {
		capLen = 0xFFFF
	}
	var hdr [13]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(r.At))
	hdr[8] = byte(r.Dir)
	binary.BigEndian.PutUint16(hdr[9:], uint16(r.WireLen))
	binary.BigEndian.PutUint16(hdr[11:], uint16(capLen))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(raw[:capLen]); err != nil {
		w.err = err
		return err
	}
	return nil
}

// WriteTrace writes every record of t (views write their visible subset).
func (w *Writer) WriteTrace(t *Trace) error {
	n := t.Len()
	for i := 0; i < n; i++ {
		r := t.At(i)
		if err := w.WriteRecord(&r); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// WriteFile serialises a whole trace to w.
func WriteFile(w io.Writer, t *Trace) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	if err := tw.WriteTrace(t); err != nil {
		return err
	}
	return tw.Flush()
}

// ReadFile parses a trace file, re-deriving the analysis fields from the
// captured datagram bytes.
func ReadFile(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrBadMagic
	}
	if magic != traceMagic {
		return nil, ErrBadMagic
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(hdr[0:]); v != traceVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	t := &Trace{}
	for {
		var rh [13]byte
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			if err == io.EOF {
				return t, nil
			}
			return nil, ErrCorrupt
		}
		at := time.Duration(binary.BigEndian.Uint64(rh[0:]))
		dir := netsim.Direction(rh[8])
		wireLen := int(binary.BigEndian.Uint16(rh[9:]))
		capLen := int(binary.BigEndian.Uint16(rh[11:]))
		raw := make([]byte, capLen)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, ErrCorrupt
		}
		d, err := inet.ParseDatagram(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		rec := parseRecord(at, dir, d)
		rec.WireLen = wireLen // trust the header over re-derivation
		t.Append(rec)
	}
}
