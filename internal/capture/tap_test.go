package capture

import (
	"math"
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/obs"
	"turbulence/internal/racecheck"
	"turbulence/internal/stats"
)

// replayMetrics runs a flow trace through a fresh online analyzer.
func replayMetrics(f *FlowTrace) *FlowMetrics {
	m := &FlowMetrics{}
	f.Replay(m)
	return m
}

// randomTrace synthesises a capture with several interleaved flows,
// fragment trains, orphan continuations (first fragment "lost") and
// repeating IP IDs — the shapes heavy netem impairment produces at a
// client NIC.
func randomTrace(t *testing.T, rng *eventsim.RNG, packets int) *Trace {
	t.Helper()
	tr := &Trace{}
	ports := []inet.Port{inet.PortMMSData, inet.PortRDTData, 9000}
	at := time.Duration(0)
	id := uint16(0)
	for tr.Len() < packets {
		at += time.Duration(rng.Uniform(0.0001, 0.05) * float64(time.Second))
		port := ports[rng.Intn(len(ports))]
		size := 200 + rng.Intn(7000)
		id++
		d, err := inet.BuildUDP(inet.Endpoint{Addr: serverAddr, Port: port}, cliEP, id, make([]byte, size))
		if err != nil {
			t.Fatal(err)
		}
		frags, err := inet.Fragment(d, inet.DefaultMTU)
		if err != nil {
			t.Fatal(err)
		}
		dropFirst := len(frags) > 1 && rng.Bernoulli(0.15) // orphan train
		for j, f := range frags {
			if j == 0 && dropFirst {
				continue
			}
			tr.Append(parseRecord(at+time.Duration(j)*time.Millisecond, netsim.Recv, f))
		}
	}
	return tr
}

func close9(a, b float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/den < 1e-9
}

// TestFlowMetricsMatchSliceReductions is the online-versus-trace property
// test: on randomized synthetic flows, the one-pass analyzer must agree
// with the independent slice-based reductions — exactly for counts, sums,
// means, max and average rate (integer-valued samples), and to tight
// relative tolerance for the variance-derived CVs.
func TestFlowMetricsMatchSliceReductions(t *testing.T) {
	rng := eventsim.NewRNG(42)
	for round := 0; round < 20; round++ {
		tr := randomTrace(t, rng, 300)
		for _, f := range tr.SplitFlows() {
			m := replayMetrics(f)
			if m.Packets() != f.Len() {
				t.Fatalf("packets: %d vs %d", m.Packets(), f.Len())
			}
			if m.Fragmentation() != f.Fragmentation() {
				t.Fatalf("fragmentation: %+v vs %+v", m.Fragmentation(), f.Fragmentation())
			}
			ss := stats.Summarize(f.PacketSizes())
			if m.Sizes().Mean() != ss.Mean || m.Sizes().Sum != ss.Sum || m.Sizes().Max != ss.Max {
				t.Fatalf("sizes: mean %v vs %v", m.Sizes().Mean(), ss.Mean)
			}
			if !close9(m.Sizes().StdDev(), ss.StdDev) {
				t.Fatalf("size stddev: %v vs %v", m.Sizes().StdDev(), ss.StdDev)
			}
			is := stats.Summarize(f.GroupInterarrivals())
			if m.GroupInterarrivals().Mean() != is.Mean {
				t.Fatalf("group ia mean: %v vs %v", m.GroupInterarrivals().Mean(), is.Mean)
			}
			if !close9(m.GroupInterarrivals().StdDev(), is.StdDev) {
				t.Fatalf("group ia stddev: %v vs %v", m.GroupInterarrivals().StdDev(), is.StdDev)
			}
			if m.AverageRate() != f.AverageRate() {
				t.Fatalf("rate: %v vs %v", m.AverageRate(), f.AverageRate())
			}
			if m.BurstRatio() != traceBurstRatio(f) {
				t.Fatalf("burst: %v vs %v", m.BurstRatio(), traceBurstRatio(f))
			}
		}
	}
}

// traceBurstRatio is the original trace-based burst-ratio reduction,
// re-implemented here over the raw records so FlowMetrics.BurstRatio is
// checked against an independent computation, not itself.
func traceBurstRatio(ft *FlowTrace) float64 {
	if ft.Len() < 2 {
		return 0
	}
	start := ft.At(0).At
	end := ft.At(ft.Len() - 1).At
	span := end - start
	if span <= burstWindow*2 {
		return 1
	}
	var ts stats.TimeSeries
	for i, n := 0, ft.Len(); i < n; i++ {
		r := ft.At(i)
		ts.Add(r.At-start, float64(r.WireLen*8))
	}
	early := ts.WindowSum(0, burstWindow) / burstWindow.Seconds()
	tailStart := time.Duration(float64(span) * (1 - steadyTail))
	steady := ts.WindowSum(tailStart, span) / (time.Duration(float64(span) * steadyTail)).Seconds()
	if steady <= 0 {
		return 0
	}
	return early / steady
}

// TestFlowMetricsBurstRatioLongFlow exercises the tail ring across a flow
// long enough to need eviction and growth, against the independent
// reduction.
func TestFlowMetricsBurstRatioLongFlow(t *testing.T) {
	rng := eventsim.NewRNG(7)
	tr := &Trace{}
	at := time.Duration(0)
	// Bursty start, then steady pacing over ~120 s.
	for i := 0; i < 4000; i++ {
		gap := 0.03
		if i < 400 {
			gap = 0.01
		}
		at += time.Duration(rng.Uniform(0.2, 1.8) * gap * float64(time.Second))
		tr.Append(mkRecord(t, at.Seconds(), 400+rng.Intn(600), uint16(i)))
	}
	f := tr.SplitFlows()[0]
	m := replayMetrics(f)
	if got, want := m.BurstRatio(), traceBurstRatio(f); got != want {
		t.Fatalf("burst ratio: online %v vs trace %v", got, want)
	}
	if m.BurstRatio() <= 1 {
		t.Fatalf("expected a startup burst, got %v", m.BurstRatio())
	}
}

// TestFlowDemuxMatchesSplitFlows pins the online demultiplexer against the
// trace-based partition on randomized captures: same flows, same order,
// and per-flow analyzer state identical to replaying the split flows.
func TestFlowDemuxMatchesSplitFlows(t *testing.T) {
	rng := eventsim.NewRNG(99)
	for round := 0; round < 10; round++ {
		tr := randomTrace(t, rng, 500)
		dx := NewFlowDemux()
		n := tr.Len()
		for i := 0; i < n; i++ {
			r := tr.At(i)
			dx.Observe(&r)
		}
		split := tr.SplitFlows()
		online := dx.Flows()
		if len(online) != len(split) {
			t.Fatalf("flows: %d online vs %d split", len(online), len(split))
		}
		for i, ft := range split {
			if online[i].Flow != ft.Flow {
				t.Fatalf("flow %d order: %v vs %v", i, online[i].Flow, ft.Flow)
			}
			if !metricsEqual(online[i].Metrics, replayMetrics(ft)) {
				t.Fatalf("flow %v: online metrics differ from replayed trace metrics", ft.Flow)
			}
		}
		// FlowTo and demux To agree on port lookups.
		for _, port := range []inet.Port{inet.PortMMSData, inet.PortRDTData, 9000, 1} {
			ft, fs := tr.FlowTo(port), dx.To(port)
			if (ft == nil) != (fs == nil) {
				t.Fatalf("port %d: FlowTo nil=%v, demux nil=%v", port, ft == nil, fs == nil)
			}
			if ft != nil && fs.Flow != ft.Flow {
				t.Fatalf("port %d: different flows", port)
			}
		}
	}
}

// metricsEqual compares two analyzers through every derived reduction a
// profile consumes — bitwise, the online/trace parity contract.
func metricsEqual(a, b *FlowMetrics) bool {
	af, al := a.Span()
	bf, bl := b.Span()
	return a.Packets() == b.Packets() &&
		a.Fragmentation() == b.Fragmentation() &&
		a.Sizes().Summary() == b.Sizes().Summary() &&
		a.FirstSizes().Summary() == b.FirstSizes().Summary() &&
		a.GroupInterarrivals().Summary() == b.GroupInterarrivals().Summary() &&
		a.AverageRate() == b.AverageRate() &&
		a.BurstRatio() == b.BurstRatio() &&
		af == bf && al == bl
}

// TestRateAccumulatorMatchesBandwidthSeries pins the online bucketing
// against FlowTrace.BandwidthSeries exactly.
func TestRateAccumulatorMatchesBandwidthSeries(t *testing.T) {
	rng := eventsim.NewRNG(5)
	tr := randomTrace(t, rng, 400)
	for _, f := range tr.SplitFlows() {
		ra := &RateAccumulator{Width: time.Second}
		f.Replay(ra)
		got, want := ra.Series(), f.BandwidthSeries(time.Second)
		if len(got) != len(want) {
			t.Fatalf("buckets: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bucket %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
}

// TestTrainTallyMatchesTrainLengths pins the online train-length tally.
func TestTrainTallyMatchesTrainLengths(t *testing.T) {
	rng := eventsim.NewRNG(6)
	tr := randomTrace(t, rng, 400)
	for _, f := range tr.SplitFlows() {
		tt := &TrainTally{}
		f.Replay(tt)
		got, want := tt.Lengths(), f.TrainLengths()
		if len(got) != len(want) {
			t.Fatalf("trains: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("train %d: %d vs %d", i, got[i], want[i])
			}
		}
	}
}

// TestSequenceWindowMatchesSequencePoints pins the online sequence view.
func TestSequenceWindowMatchesSequencePoints(t *testing.T) {
	rng := eventsim.NewRNG(8)
	tr := randomTrace(t, rng, 400)
	from, to := 500*time.Millisecond, 3*time.Second
	for _, f := range tr.SplitFlows() {
		sw := &SequenceWindow{From: from, To: to}
		f.Replay(sw)
		got, want := sw.Points(), f.SequencePoints(from, to)
		if len(got) != len(want) {
			t.Fatalf("points: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("point %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
}

// TestDemuxExtraAnalyzers checks the per-flow Extra factory wiring.
func TestDemuxExtraAnalyzers(t *testing.T) {
	rng := eventsim.NewRNG(11)
	tr := randomTrace(t, rng, 200)
	dx := NewFlowDemux()
	dx.Extra = func(inet.Flow) Tap { return &TrainTally{} }
	n := tr.Len()
	for i := 0; i < n; i++ {
		r := tr.At(i)
		dx.Observe(&r)
	}
	for i, fs := range dx.Flows() {
		want := tr.SplitFlows()[i].TrainLengths()
		got := fs.Extra.(*TrainTally).Lengths()
		if len(got) != len(want) {
			t.Fatalf("flow %v extra tally: %d vs %d trains", fs.Flow, len(got), len(want))
		}
	}
}

// TestTapSteadyStateAllocFree is the allocation pin for the online path:
// once every flow and fragment-train table exists, demultiplexing and
// analysing one record — fragments, continuations and orphans included,
// the record mix full netem impairment produces — must not allocate.
func TestTapSteadyStateAllocFree(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation pins are unreliable under -race")
	}
	// One fragmented datagram's worth of records per flow, reused as the
	// steady-state observation stream.
	var recs []Record
	for _, port := range []inet.Port{inet.PortMMSData, inet.PortRDTData} {
		d, err := inet.BuildUDP(inet.Endpoint{Addr: serverAddr, Port: port}, cliEP, 1000, make([]byte, 4000))
		if err != nil {
			t.Fatal(err)
		}
		frags, err := inet.Fragment(d, inet.DefaultMTU)
		if err != nil {
			t.Fatal(err)
		}
		for j, f := range frags {
			recs = append(recs, parseRecord(time.Duration(j)*time.Millisecond, netsim.Recv, f))
		}
	}
	// An orphan continuation (unknown train) rides along.
	orphan := recs[1]
	orphan.IPID = 9999
	recs = append(recs, orphan)

	dx := NewFlowDemux()
	// Metrics collection rides the same per-packet path, so the pin runs
	// with it enabled: a CounterTap fed from a live obs registry observes
	// every record alongside the demux.
	reg := obs.NewRegistry()
	meter := &CounterTap{
		Records: reg.Counter("pkts_total", "packets"),
		Bytes:   reg.Counter("bytes_total", "bytes"),
	}
	at := time.Duration(0)
	id := uint16(0)
	// One persistent scratch record, as the sniffer keeps: a fresh stack
	// record per observation would escape through the Tap interface call
	// and charge a spurious allocation to the path under test.
	var r Record
	warm := func() {
		at += 40 * time.Millisecond
		id++
		for i := range recs {
			r = recs[i]
			r.At = at + time.Duration(i)*time.Millisecond
			r.IPID += id
			dx.Observe(&r)
			meter.Observe(&r)
		}
	}
	// Warm: discover flows, allocate train tables, grow tail rings past
	// the steady-state working set.
	for i := 0; i < 2000; i++ {
		warm()
	}
	allocs := testing.AllocsPerRun(1000, warm)
	if allocs > 0 {
		t.Fatalf("tap path allocates %.3f times per observation batch, want 0", allocs)
	}
}
