package capture

import (
	"fmt"
	"strconv"
	"strings"

	"turbulence/internal/inet"
)

// Filter is a compiled display-filter expression, in the spirit of
// Ethereal's filter language, evaluated against captured records.
//
// Grammar (precedence low to high):
//
//	expr   := or
//	or     := and ( "||" and )*
//	and    := not ( "&&" not )*
//	not    := "!" not | primary
//	primary:= "(" expr ")" | comparison | flag
//	comparison := field op value
//	op     := "==" | "!=" | "<" | "<=" | ">" | ">="
//
// Fields: ip.src, ip.dst (dotted quad), ip.proto ("udp"/"icmp"/"tcp" or a
// number), ip.id, ip.len, ip.fragoff, udp.srcport, udp.dstport, udp.port
// (either), size (wire bytes), time (seconds). Flags: ip.frag (any
// fragment), ip.contfrag (continuation fragment), ip.mf, recv, send.
type Filter struct {
	root node
	src  string
}

// Compile parses a filter expression.
func Compile(expr string) (*Filter, error) {
	toks, err := lex(expr)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("capture: trailing tokens at %q", p.peek().text)
	}
	return &Filter{root: n, src: expr}, nil
}

// String returns the original expression.
func (f *Filter) String() string { return f.src }

// Match evaluates the filter against one record.
func (f *Filter) Match(r *Record) bool { return f.root.eval(r) }

// Apply returns the sub-trace matching the filter.
func (f *Filter) Apply(t *Trace) *Trace { return t.Filter(f.Match) }

// --- lexer ---

type tokKind int

const (
	tokField tokKind = iota
	tokNumber
	tokString
	tokOp     // comparison operators
	tokAndAnd // &&
	tokOrOr   // ||
	tokBang   // !
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '&':
			if i+1 >= len(s) || s[i+1] != '&' {
				return nil, fmt.Errorf("capture: lone '&' at %d", i)
			}
			toks = append(toks, token{tokAndAnd, "&&"})
			i += 2
		case c == '|':
			if i+1 >= len(s) || s[i+1] != '|' {
				return nil, fmt.Errorf("capture: lone '|' at %d", i)
			}
			toks = append(toks, token{tokOrOr, "||"})
			i += 2
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokOp, "!="})
				i += 2
			} else {
				toks = append(toks, token{tokBang, "!"})
				i++
			}
		case c == '=':
			if i+1 >= len(s) || s[i+1] != '=' {
				return nil, fmt.Errorf("capture: lone '=' at %d (use ==)", i)
			}
			toks = append(toks, token{tokOp, "=="})
			i += 2
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(s) && s[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op})
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			text := s[i:j]
			if strings.Count(text, ".") >= 3 {
				// dotted quad literal
				toks = append(toks, token{tokString, text})
			} else {
				toks = append(toks, token{tokNumber, text})
			}
			i = j
		case isIdentStart(c):
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{tokField, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("capture: unexpected character %q at %d", c, i)
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool   { return p.pos >= len(p.toks) }
func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) accept(k tokKind) bool {
	if !p.eof() && p.toks[p.pos].kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOrOr) {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orNode{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAndAnd) {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = andNode{left, right}
	}
	return left, nil
}

func (p *parser) parseNot() (node, error) {
	if p.accept(tokBang) {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notNode{inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	if p.accept(tokLParen) {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokRParen) {
			return nil, fmt.Errorf("capture: missing ')'")
		}
		return inner, nil
	}
	if p.eof() || p.peek().kind != tokField {
		return nil, fmt.Errorf("capture: expected field")
	}
	field := p.next().text
	// Bare flag?
	if flag, ok := flagFields[field]; ok {
		if p.eof() || p.peek().kind != tokOp {
			return flagNode{fn: flag, name: field}, nil
		}
	}
	if p.eof() || p.peek().kind != tokOp {
		return nil, fmt.Errorf("capture: field %q needs a comparison", field)
	}
	op := p.next().text
	if p.eof() {
		return nil, fmt.Errorf("capture: missing value after %q", op)
	}
	val := p.next()
	return buildComparison(field, op, val)
}

// --- AST ---

type node interface{ eval(*Record) bool }

type andNode struct{ l, r node }

func (n andNode) eval(r *Record) bool { return n.l.eval(r) && n.r.eval(r) }

type orNode struct{ l, r node }

func (n orNode) eval(r *Record) bool { return n.l.eval(r) || n.r.eval(r) }

type notNode struct{ inner node }

func (n notNode) eval(r *Record) bool { return !n.inner.eval(r) }

type flagNode struct {
	fn   func(*Record) bool
	name string
}

func (n flagNode) eval(r *Record) bool { return n.fn(r) }

type numCmpNode struct {
	get func(*Record) (float64, bool)
	op  string
	val float64
}

func (n numCmpNode) eval(r *Record) bool {
	v, ok := n.get(r)
	if !ok {
		return false
	}
	switch n.op {
	case "==":
		return v == n.val
	case "!=":
		return v != n.val
	case "<":
		return v < n.val
	case "<=":
		return v <= n.val
	case ">":
		return v > n.val
	case ">=":
		return v >= n.val
	}
	return false
}

type addrCmpNode struct {
	get func(*Record) inet.Addr
	neq bool
	val inet.Addr
}

func (n addrCmpNode) eval(r *Record) bool {
	eq := n.get(r) == n.val
	if n.neq {
		return !eq
	}
	return eq
}

var flagFields = map[string]func(*Record) bool{
	"ip.frag":     func(r *Record) bool { return r.IsFragment() },
	"ip.contfrag": func(r *Record) bool { return r.IsContinuationFragment() },
	"ip.mf":       func(r *Record) bool { return r.MoreFrag },
	"recv":        func(r *Record) bool { return r.Dir == 1 },
	"send":        func(r *Record) bool { return r.Dir == 0 },
}

var numFields = map[string]func(*Record) (float64, bool){
	"ip.id":       func(r *Record) (float64, bool) { return float64(r.IPID), true },
	"ip.len":      func(r *Record) (float64, bool) { return float64(r.IPLen), true },
	"ip.fragoff":  func(r *Record) (float64, bool) { return float64(r.FragOff), true },
	"size":        func(r *Record) (float64, bool) { return float64(r.WireLen), true },
	"time":        func(r *Record) (float64, bool) { return r.At.Seconds(), true },
	"udp.srcport": func(r *Record) (float64, bool) { return float64(r.SrcPort), r.HasPorts },
	"udp.dstport": func(r *Record) (float64, bool) { return float64(r.DstPort), r.HasPorts },
}

var protoNames = map[string]float64{
	"udp":  float64(inet.ProtoUDP),
	"tcp":  float64(inet.ProtoTCP),
	"icmp": float64(inet.ProtoICMP),
}

func buildComparison(field, op string, val token) (node, error) {
	switch field {
	case "ip.src", "ip.dst":
		if op != "==" && op != "!=" {
			return nil, fmt.Errorf("capture: %s supports only == and !=", field)
		}
		addr, err := inet.ParseAddr(val.text)
		if err != nil {
			return nil, err
		}
		get := func(r *Record) inet.Addr { return r.Src }
		if field == "ip.dst" {
			get = func(r *Record) inet.Addr { return r.Dst }
		}
		return addrCmpNode{get: get, neq: op == "!=", val: addr}, nil
	case "ip.proto":
		v, ok := protoNames[val.text]
		if !ok {
			f, err := strconv.ParseFloat(val.text, 64)
			if err != nil {
				return nil, fmt.Errorf("capture: bad protocol %q", val.text)
			}
			v = f
		}
		return numCmpNode{get: func(r *Record) (float64, bool) { return float64(r.Proto), true }, op: op, val: v}, nil
	case "udp.port":
		f, err := strconv.ParseFloat(val.text, 64)
		if err != nil {
			return nil, fmt.Errorf("capture: bad number %q", val.text)
		}
		src := numCmpNode{get: numFields["udp.srcport"], op: op, val: f}
		dst := numCmpNode{get: numFields["udp.dstport"], op: op, val: f}
		if op == "!=" {
			return andNode{src, dst}, nil
		}
		return orNode{src, dst}, nil
	default:
		get, ok := numFields[field]
		if !ok {
			return nil, fmt.Errorf("capture: unknown field %q", field)
		}
		f, err := strconv.ParseFloat(val.text, 64)
		if err != nil {
			return nil, fmt.Errorf("capture: bad number %q for %s", val.text, field)
		}
		return numCmpNode{get: get, op: op, val: f}, nil
	}
}
