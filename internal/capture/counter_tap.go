package capture

import "turbulence/internal/obs"

// CounterTap is the observability bridge for the capture path: a Tap that
// bumps two obs counters per packet and touches nothing else. It rides
// the same zero-alloc tap seam as the online analyzers, so attaching it
// costs two atomic adds per packet — the steady-state allocation pin
// (TestTapSteadyStateAllocFree) runs with one attached to prove it.
type CounterTap struct {
	Records *obs.Counter // packets observed
	Bytes   *obs.Counter // on-the-wire bytes, Ethernet framing included
}

// Observe implements Tap.
func (t *CounterTap) Observe(r *Record) {
	t.Records.Inc()
	t.Bytes.Add(uint64(r.WireLen))
}
