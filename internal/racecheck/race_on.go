//go:build race

// Package racecheck reports whether the race detector is compiled in, so
// allocation-pin tests — whose counts the detector's instrumentation
// inflates — can exclude themselves under `go test -race` while still
// running everywhere else.
package racecheck

// Enabled is true when the build carries the race detector.
const Enabled = true
