package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/obs"
)

// DefaultTCPTunnelPort is the UDP port Live uses to carry raw tcplite
// segments (SendTCP/OnTCP). Both ends of a live tcplite conversation must
// agree on it.
const DefaultTCPTunnelPort inet.Port = 49151

// frameBuf is the per-frame receive buffer: the largest UDP payload a
// peer can hand the kernel, so a read never truncates.
const frameBuf = 64 << 10

// Config parameterises a Live transport.
type Config struct {
	// BindIP is the local IPv4 address sockets bind to (zero: 127.0.0.1).
	// Two Live transports in one process coexist on the same IP as long
	// as their port sets are disjoint.
	BindIP inet.Addr
	// Seed feeds the transport's deterministic RNG root (the seam behind
	// Transport.RNG); packet timing over real sockets is of course not
	// deterministic.
	Seed int64
	// MTU is used only to estimate SendUDP's fragment-train return value
	// (the kernel does the real fragmenting). Zero: inet.DefaultMTU.
	MTU int
	// Metrics receives the per-socket counter series
	// (turbulence_transport_*). Nil: a private registry, readable via
	// Registry(). A registry must not be shared by two Live transports —
	// the series names would collide.
	Metrics *obs.Registry
	// TCPTunnelPort carries SendTCP segments over UDP (zero:
	// DefaultTCPTunnelPort).
	TCPTunnelPort inet.Port
	// InboxDepth bounds frames queued between the socket readers and the
	// run loop; overflow drops the frame and counts it (zero: 4096).
	InboxDepth int
}

// Live is the real-socket Transport: the same protocol stacks that run
// inside the simulator stream over net.UDPConn instead. One goroutine —
// the run loop — owns a private eventsim.Scheduler and all protocol
// state, mirroring the simulator's single-threaded discipline over wall
// time: it drains timers that have come due, advances the clock, and
// interleaves inbound frames delivered by per-socket reader goroutines.
// Protocol code therefore runs exactly as it does in the simulator; use
// Do/DoWait to call into it from outside.
//
// The receive path is allocation-lean by construction: readers take
// pooled frames, ReadMsgUDPAddrPort fills them without allocating, and
// the loop hands the payload view to the bound handler before returning
// the frame to the pool (handlers must not retain it — the same contract
// the simulator's pooled wire buffers impose).
type Live struct {
	addr       inet.Addr
	mtu        int
	tunnelPort inet.Port

	sched *eventsim.Scheduler
	rng   *eventsim.RNG
	epoch time.Time

	// Loop-owned state (touched only on the run loop).
	binds    map[inet.Port]UDPHandler
	socks    map[inet.Port]*sock
	tracks   map[inet.Port]*seqTrack
	bindErrs map[inet.Port]error
	tcpFn    TCPHandler
	recvTap  func(now eventsim.Time, local inet.Port, from inet.Endpoint, payloadLen int)

	reg      *obs.Registry
	sent     *obs.CounterVec
	sentB    *obs.CounterVec
	recv     *obs.CounterVec
	recvB    *obs.CounterVec
	dropped  *obs.CounterVec
	sendErrs *obs.CounterVec
	unbound  *obs.CounterVec
	dupSeqs  *obs.CounterVec

	frames   sync.Pool
	inbox    chan *frame
	runq     chan func(now eventsim.Time)
	quit     chan struct{}
	loopDone chan struct{}
	readers  sync.WaitGroup
	closing  sync.Once
}

// sock is one bound UDP socket plus its cached counter children.
type sock struct {
	port    inet.Port
	conn    *net.UDPConn
	sent    *obs.Counter
	sentB   *obs.Counter
	recv    *obs.Counter
	recvB   *obs.Counter
	dropped *obs.Counter
	sendErr *obs.Counter
	unbound *obs.Counter
}

// seqTrack is the per-port duplicate accounting installed by TrackSeqs.
type seqTrack struct {
	win     *SeqWindow
	extract func(payload []byte) (uint32, bool)
	dup     *obs.Counter
}

// frame is one received datagram in flight between a reader and the loop.
type frame struct {
	buf  [frameBuf]byte
	n    int
	port inet.Port
	from netip.AddrPort
}

// newCore builds the transport without starting the run loop (tests pin
// the frame-delivery path on an idle core).
func newCore(cfg Config) (*Live, error) {
	if cfg.BindIP.IsZero() {
		cfg.BindIP = inet.MakeAddr(127, 0, 0, 1)
	}
	if cfg.MTU == 0 {
		cfg.MTU = inet.DefaultMTU
	}
	if cfg.MTU < inet.IPv4HeaderLen+8 {
		return nil, fmt.Errorf("transport: mtu %d too small", cfg.MTU)
	}
	if cfg.TCPTunnelPort == 0 {
		cfg.TCPTunnelPort = DefaultTCPTunnelPort
	}
	if cfg.InboxDepth == 0 {
		cfg.InboxDepth = 4096
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	t := &Live{
		addr:       cfg.BindIP,
		mtu:        cfg.MTU,
		tunnelPort: cfg.TCPTunnelPort,
		sched:      eventsim.NewScheduler(),
		rng:        eventsim.NewRNG(cfg.Seed),
		epoch:      time.Now(),
		binds:      make(map[inet.Port]UDPHandler),
		socks:      make(map[inet.Port]*sock),
		tracks:     make(map[inet.Port]*seqTrack),
		bindErrs:   make(map[inet.Port]error),
		reg:        cfg.Metrics,
		inbox:      make(chan *frame, cfg.InboxDepth),
		runq:       make(chan func(now eventsim.Time), 64),
		quit:       make(chan struct{}),
		loopDone:   make(chan struct{}),
	}
	t.frames.New = func() any { return new(frame) }
	reg := t.reg
	t.sent = reg.CounterVec("turbulence_transport_sent_packets_total", "UDP datagrams written per local port.", "port")
	t.sentB = reg.CounterVec("turbulence_transport_sent_bytes_total", "UDP payload bytes written per local port.", "port")
	t.recv = reg.CounterVec("turbulence_transport_recv_packets_total", "UDP datagrams delivered per local port.", "port")
	t.recvB = reg.CounterVec("turbulence_transport_recv_bytes_total", "UDP payload bytes delivered per local port.", "port")
	t.dropped = reg.CounterVec("turbulence_transport_dropped_frames_total", "Received frames dropped on run-loop inbox overflow, per local port.", "port")
	t.sendErrs = reg.CounterVec("turbulence_transport_send_errors_total", "UDP write failures per local port.", "port")
	t.unbound = reg.CounterVec("turbulence_transport_unbound_packets_total", "Datagrams arriving on a port with no bound handler, per local port.", "port")
	t.dupSeqs = reg.CounterVec("turbulence_transport_duplicate_seqs_total", "Duplicate sequence numbers observed by TrackSeqs, per local port.", "port")
	return t, nil
}

// NewLive opens a live transport and starts its run loop. Close releases
// the loop and every socket.
func NewLive(cfg Config) (*Live, error) {
	t, err := newCore(cfg)
	if err != nil {
		return nil, err
	}
	go t.loop()
	return t, nil
}

// Addr returns the local bind address.
func (t *Live) Addr() inet.Addr { return t.addr }

// MTU returns the configured MTU (fragment-train estimation only).
func (t *Live) MTU() int { return t.mtu }

// Registry returns the metrics registry the socket counters feed.
func (t *Live) Registry() *obs.Registry { return t.reg }

// Now returns wall time elapsed since the transport started, as seen by
// the run loop's clock. Call on the loop.
func (t *Live) Now() eventsim.Time { return t.sched.Now() }

// wallNow is the authoritative wall reading the loop advances toward.
func (t *Live) wallNow() eventsim.Time { return eventsim.Time(time.Since(t.epoch)) }

// Do schedules fn on the run loop (the only place protocol objects may be
// touched) and returns immediately. Must not be called from the loop
// itself — handlers and timer callbacks are already there.
func (t *Live) Do(fn func(now eventsim.Time)) {
	select {
	case t.runq <- fn:
	case <-t.quit:
	}
}

// DoWait runs fn on the run loop and blocks until it returns (or the
// transport closes).
func (t *Live) DoWait(fn func(now eventsim.Time)) {
	done := make(chan struct{})
	t.Do(func(now eventsim.Time) {
		defer close(done)
		fn(now)
	})
	select {
	case <-done:
	case <-t.quit:
	}
}

// Close stops the run loop, closes every socket and waits for the reader
// goroutines to exit. Idempotent.
func (t *Live) Close() error {
	t.closing.Do(func() {
		close(t.quit)
		<-t.loopDone
		// The loop has exited: its state is safe to touch from here.
		for _, s := range t.socks {
			if s.conn != nil {
				s.conn.Close()
			}
		}
		t.readers.Wait()
	})
	return nil
}

// --- run loop ---

// drainDue fires every timer due by wall-now and advances the loop clock
// to wall-now. Safe by construction: after draining, no pending event
// precedes the advance target.
func (t *Live) drainDue() {
	now := t.wallNow()
	for {
		next, ok := t.sched.NextEventAt()
		if !ok || next > now {
			break
		}
		t.sched.Step()
	}
	if d := now.Sub(t.sched.Now()); d > 0 {
		t.sched.Advance(d)
	}
}

func (t *Live) loop() {
	defer close(t.loopDone)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	stopTimer := func(armed bool) {
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	for {
		t.drainDue()
		armed := false
		var timerC <-chan time.Time
		if next, ok := t.sched.NextEventAt(); ok {
			d := time.Duration(next - t.wallNow())
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
			timerC = timer.C
			armed = true
		}
		select {
		case <-t.quit:
			stopTimer(armed)
			return
		case fn := <-t.runq:
			stopTimer(armed)
			t.drainDue()
			fn(t.sched.Now())
		case fr := <-t.inbox:
			stopTimer(armed)
			t.drainDue()
			t.deliver(fr)
		case <-timerC:
			// Timers fire at the top of the next iteration's drain.
		}
	}
}

// deliver hands one received frame to its port's handler. This is the
// per-packet hot path: counter bumps, optional sequence tracking, an
// endpoint conversion and a map lookup — no allocation (pinned by
// TestLiveDeliverAllocs).
func (t *Live) deliver(fr *frame) {
	now := t.sched.Now()
	payload := fr.buf[:fr.n]
	s := t.socks[fr.port]
	if s != nil {
		s.recv.Inc()
		s.recvB.Add(uint64(fr.n))
	}
	if tr := t.tracks[fr.port]; tr != nil {
		if seq, ok := tr.extract(payload); ok && tr.win.Observe(seq) {
			tr.dup.Inc()
		}
	}
	a := fr.from.Addr().Unmap()
	if !a.Is4() {
		t.frames.Put(fr)
		return
	}
	from := inet.Endpoint{Addr: inet.Addr(a.As4()), Port: inet.Port(fr.from.Port())}
	if t.recvTap != nil {
		t.recvTap(now, fr.port, from, fr.n)
	}
	switch {
	case fr.port == t.tunnelPort:
		if t.tcpFn != nil {
			t.tcpFn(now, from.Addr, payload)
		}
	default:
		if fn := t.binds[fr.port]; fn != nil {
			fn(now, from, payload)
		} else if s != nil {
			s.unbound.Inc()
		}
	}
	t.frames.Put(fr)
}

// --- sockets ---

// sock returns (opening if needed) the socket bound to port on the local
// IP. A port whose bind once failed stays failed until Close — the error
// is recorded for BindErr and returned on every use.
func (t *Live) sock(port inet.Port) (*sock, error) {
	if s := t.socks[port]; s != nil {
		return s, nil
	}
	if err := t.bindErrs[port]; err != nil {
		return nil, err
	}
	ip := net.IPv4(t.addr[0], t.addr[1], t.addr[2], t.addr[3])
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: ip, Port: int(port)})
	if err != nil {
		t.bindErrs[port] = err
		return nil, err
	}
	// Generous kernel buffers: the run loop serialises all protocol work,
	// so bursts ride in the kernel queue instead of dropping. Best-effort.
	conn.SetReadBuffer(1 << 20)
	conn.SetWriteBuffer(1 << 20)
	label := strconv.Itoa(int(port))
	s := &sock{
		port:    port,
		conn:    conn,
		sent:    t.sent.With(label),
		sentB:   t.sentB.With(label),
		recv:    t.recv.With(label),
		recvB:   t.recvB.With(label),
		dropped: t.dropped.With(label),
		sendErr: t.sendErrs.With(label),
		unbound: t.unbound.With(label),
	}
	t.socks[port] = s
	t.readers.Add(1)
	go t.readLoop(s)
	return s, nil
}

// readLoop is one socket's reader: pooled frame in, ReadMsgUDPAddrPort
// (no per-read allocation), non-blocking handoff to the run loop. An
// inbox overflow drops the frame and counts it — backpressure must never
// stall a socket reader, or the kernel queue overflows invisibly instead.
func (t *Live) readLoop(s *sock) {
	defer t.readers.Done()
	for {
		fr := t.frames.Get().(*frame)
		n, _, _, from, err := s.conn.ReadMsgUDPAddrPort(fr.buf[:], nil)
		if err != nil {
			t.frames.Put(fr)
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-t.quit:
				return
			default:
				continue // transient (e.g. ICMP-induced) read error
			}
		}
		fr.n = n
		fr.port = s.port
		fr.from = from
		select {
		case t.inbox <- fr:
		default:
			s.dropped.Inc()
			t.frames.Put(fr)
		}
	}
}

// --- Transport implementation (call on the run loop) ---

// SendUDP writes payload from srcPort to dst and returns the estimated
// fragment-train length at the configured MTU (the kernel fragments for
// real; loopback's 64 KB MTU usually means one wire packet).
func (t *Live) SendUDP(srcPort inet.Port, dst inet.Endpoint, payload []byte) (int, error) {
	s, err := t.sock(srcPort)
	if err != nil {
		return 0, err
	}
	to := netip.AddrPortFrom(netip.AddrFrom4(dst.Addr), uint16(dst.Port))
	if _, _, err := s.conn.WriteMsgUDPAddrPort(payload, nil, to); err != nil {
		s.sendErr.Inc()
		return 0, err
	}
	s.sent.Inc()
	s.sentB.Add(uint64(len(payload)))
	return fragTrainLen(len(payload), t.mtu), nil
}

// fragTrainLen mirrors the simulator's SendUDP return value: how many
// wire packets an OS IP layer emits for a UDP payload at the given MTU.
func fragTrainLen(payloadLen, mtu int) int {
	ipPayload := inet.UDPHeaderLen + payloadLen
	per := (mtu - inet.IPv4HeaderLen) &^ 7 // fragment offsets are 8-byte units
	n := (ipPayload + per - 1) / per
	if n < 1 {
		n = 1
	}
	return n
}

// BindUDP opens port's socket (if needed) and routes its datagrams to fn.
// Binding a bound port replaces the handler (servers rebind between
// runs). A socket that cannot be opened (port in use, privileged port
// without rights) records its error for BindErr; the handler is kept so a
// transport-level retry is possible, but no traffic will arrive.
func (t *Live) BindUDP(port inet.Port, fn UDPHandler) {
	t.binds[port] = fn
	t.sock(port)
}

// UnbindUDP removes the handler; the socket stays open (it may be a send
// source) and arriving datagrams count as unbound until a rebind.
func (t *Live) UnbindUDP(port inet.Port) { delete(t.binds, port) }

// BindErr reports why port's socket could not be opened (nil if it is
// open or was never used). Safe to call from any goroutine.
func (t *Live) BindErr(port inet.Port) error {
	var err error
	t.DoWait(func(eventsim.Time) { err = t.bindErrs[port] })
	return err
}

// SendTCP tunnels a raw tcplite segment to dst over the UDP tunnel port.
func (t *Live) SendTCP(dst inet.Addr, seg []byte) error {
	s, err := t.sock(t.tunnelPort)
	if err != nil {
		return err
	}
	to := netip.AddrPortFrom(netip.AddrFrom4(dst), uint16(t.tunnelPort))
	if _, _, err := s.conn.WriteMsgUDPAddrPort(seg, nil, to); err != nil {
		s.sendErr.Inc()
		return err
	}
	s.sent.Inc()
	s.sentB.Add(uint64(len(seg)))
	return nil
}

// OnTCP registers the tunnel consumer and opens the tunnel socket.
func (t *Live) OnTCP(fn TCPHandler) {
	t.tcpFn = fn
	t.sock(t.tunnelPort)
}

// After schedules fn on the run loop's clock.
func (t *Live) After(d time.Duration, name string, fn func(now eventsim.Time)) eventsim.Timer {
	return t.sched.After(d, name, fn)
}

// AfterArg is After's closure-free form.
func (t *Live) AfterArg(d time.Duration, name string, fn func(now eventsim.Time, arg any), arg any) eventsim.Timer {
	return t.sched.AfterArg(d, name, fn, arg)
}

// Ticker repeats fn on the run loop until stopped.
func (t *Live) Ticker(interval time.Duration, name string, fn func(now eventsim.Time) bool) (stop func()) {
	return t.sched.Ticker(interval, name, fn)
}

// Cancel revokes a pending timer.
func (t *Live) Cancel(tm eventsim.Timer) { t.sched.Cancel(tm) }

// RNG derives the labelled stream from the transport's seeded root.
func (t *Live) RNG(label string) *eventsim.RNG { return t.rng.Split(label) }

// RNGInto is RNG rewinding child in place; see Transport.
func (t *Live) RNGInto(label string, child *eventsim.RNG) *eventsim.RNG {
	return t.rng.SplitInto(label, child)
}

// SetRecvTap installs an observer on the receive path: every delivered
// datagram reports its arrival time, local port, remote endpoint and
// payload length before the handler runs. The live client mode feeds its
// online flow analyzers through this. Call on the run loop (DoWait)
// before traffic flows.
func (t *Live) SetRecvTap(fn func(now eventsim.Time, local inet.Port, from inet.Endpoint, payloadLen int)) {
	t.recvTap = fn
}

// TrackSeqs installs duplicate-sequence accounting on port: extract pulls
// the sequence number out of a payload (ok=false skips the packet), and
// duplicates within a sliding window feed the port's
// turbulence_transport_duplicate_seqs_total series. Observation only —
// duplicates are still delivered; protocol dedup stays authoritative.
// Call on the run loop before traffic flows.
func (t *Live) TrackSeqs(port inet.Port, window int, extract func(payload []byte) (uint32, bool)) {
	t.tracks[port] = &seqTrack{
		win:     NewSeqWindow(window),
		extract: extract,
		dup:     t.dupSeqs.With(strconv.Itoa(int(port))),
	}
}

var _ Transport = (*Live)(nil)
