package transport

import "testing"

// TestSeqWindowFreshAndDup pins the basic contract: first sight of a
// sequence is fresh, second sight within the window is a duplicate.
func TestSeqWindowFreshAndDup(t *testing.T) {
	w := NewSeqWindow(64)
	for seq := uint32(0); seq < 200; seq++ {
		if w.Observe(seq) {
			t.Fatalf("fresh seq %d reported dup", seq)
		}
	}
	if !w.Observe(199) {
		t.Fatal("immediate repeat of 199 not a dup")
	}
	if !w.Observe(150) {
		t.Fatal("in-window repeat of 150 not a dup")
	}
	if max, ok := w.Max(); !ok || max != 199 {
		t.Fatalf("Max = %d, %v; want 199, true", max, ok)
	}
}

// TestSeqWindowOutOfOrder pins that reordering within the window does not
// count as duplication: a late-but-first-sighted sequence is fresh.
func TestSeqWindowOutOfOrder(t *testing.T) {
	w := NewSeqWindow(64)
	w.Observe(10)
	w.Observe(12)
	if w.Observe(11) {
		t.Fatal("reordered first sighting of 11 reported dup")
	}
	if !w.Observe(11) {
		t.Fatal("second sighting of 11 not a dup")
	}
}

// TestSeqWindowAgeOut pins the conservative stance on ancient sequences: a
// sequence older than the window reports dup rather than corrupting the
// accounting.
func TestSeqWindowAgeOut(t *testing.T) {
	w := NewSeqWindow(64)
	w.Observe(0)
	w.Observe(100)
	if !w.Observe(0) {
		t.Fatal("aged-out seq 0 not treated as dup")
	}
	// 100-63 = 37 is the oldest in-window sequence; never sighted, so fresh.
	if w.Observe(37) {
		t.Fatal("in-window never-seen seq 37 reported dup")
	}
}

// TestSeqWindowWideJump pins that a jump wider than the window clears the
// slid-over bits exactly once: sequences under the new max are fresh on
// first sight even when their bit positions were set before the jump.
func TestSeqWindowWideJump(t *testing.T) {
	w := NewSeqWindow(64)
	for seq := uint32(0); seq < 64; seq++ {
		w.Observe(seq) // every bit in the window set
	}
	w.Observe(1000) // jump far past the window
	for seq := uint32(1000 - 63); seq < 1000; seq++ {
		if w.Observe(seq) {
			t.Fatalf("post-jump first sighting of %d reported dup", seq)
		}
	}
	if !w.Observe(990) {
		t.Fatal("post-jump second sighting of 990 not a dup")
	}
}

// TestSeqWindowRounding pins the size floor and power-of-two rounding via
// age-out behaviour: a window asked for 100 spans 128.
func TestSeqWindowRounding(t *testing.T) {
	w := NewSeqWindow(100)
	w.Observe(0)
	w.Observe(127) // max-0 = 127 < 128: still in window
	if w.Observe(1) {
		t.Fatal("seq 1 should be inside the rounded-up 128 window")
	}
	w.Observe(128) // max-0 = 128: seq 0 just aged out
	if !w.Observe(0) {
		t.Fatal("seq 0 should have aged out of the 128 window")
	}
}
