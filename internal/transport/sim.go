package transport

import (
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
)

// Sim adapts a *netsim.Host to the Transport interface. Every method is a
// one-line delegation to the host or the network's shared scheduler — the
// exact calls the protocol stacks made before the seam existed — so a
// stack running over Sim is byte-identical to the pre-seam code, including
// event ordering, RNG stream labels and the 0-allocs/packet steady state.
type Sim struct {
	h *netsim.Host
}

// NewSim wraps a simulated host.
func NewSim(h *netsim.Host) *Sim { return &Sim{h: h} }

// Host exposes the wrapped host for callers that need simulator-only
// surface (taps, counters, the network itself).
func (s *Sim) Host() *netsim.Host { return s.h }

// Addr returns the host's address.
func (s *Sim) Addr() inet.Addr { return s.h.Addr() }

// MTU returns the host's interface MTU.
func (s *Sim) MTU() int { return s.h.MTU() }

// Now returns the current simulated time.
func (s *Sim) Now() eventsim.Time { return s.h.Now() }

// SendUDP delegates to the host's IP layer (pooled wire buffers,
// RFC 791 fragmentation).
func (s *Sim) SendUDP(srcPort inet.Port, dst inet.Endpoint, payload []byte) (int, error) {
	return s.h.SendUDP(srcPort, dst, payload)
}

// BindUDP routes payloads addressed to port to fn; binding a bound port
// replaces the handler.
func (s *Sim) BindUDP(port inet.Port, fn UDPHandler) { s.h.BindUDP(port, fn) }

// UnbindUDP removes a port binding.
func (s *Sim) UnbindUDP(port inet.Port) { s.h.UnbindUDP(port) }

// SendTCP transmits a raw TCP segment datagram.
func (s *Sim) SendTCP(dst inet.Addr, seg []byte) error { return s.h.SendTCP(dst, seg) }

// OnTCP registers the host's TCP segment consumer.
func (s *Sim) OnTCP(fn TCPHandler) { s.h.OnTCP(fn) }

// After schedules fn on the network's shared event loop.
func (s *Sim) After(d time.Duration, name string, fn func(now eventsim.Time)) eventsim.Timer {
	return s.h.After(d, name, fn)
}

// AfterArg is After's closure-free form for per-packet cadences.
func (s *Sim) AfterArg(d time.Duration, name string, fn func(now eventsim.Time, arg any), arg any) eventsim.Timer {
	return s.h.AfterArg(d, name, fn, arg)
}

// Ticker repeats fn on the shared scheduler until stopped.
func (s *Sim) Ticker(interval time.Duration, name string, fn func(now eventsim.Time) bool) (stop func()) {
	return s.h.Network().Sched.Ticker(interval, name, fn)
}

// Cancel revokes a pending timer.
func (s *Sim) Cancel(t eventsim.Timer) { s.h.Network().Sched.Cancel(t) }

// RNG splits the labelled stream off the network's root RNG — the same
// call (and therefore the same draws) the stacks made directly.
func (s *Sim) RNG(label string) *eventsim.RNG { return s.h.Network().RNG().Split(label) }

// RNGInto is RNG rewinding child in place (same draws, no source
// allocation); the stacks' Reset paths use it to replay construction
// splits on reused testbeds.
func (s *Sim) RNGInto(label string, child *eventsim.RNG) *eventsim.RNG {
	return s.h.Network().RNG().SplitInto(label, child)
}

var _ Transport = (*Sim)(nil)
