package transport

import (
	"encoding/binary"
	"net/netip"
	"strconv"
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/racecheck"
)

// TestLiveDeliverAllocs pins the per-packet receive path at zero
// allocations: counter bumps, sequence tracking, endpoint conversion and
// handler dispatch all run on pooled frames and preallocated state. The
// pin runs deliver directly on an un-looped core so the measurement is not
// smeared across goroutines.
func TestLiveDeliverAllocs(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation pin is meaningless under the race detector")
	}
	tr, err := newCore(Config{})
	if err != nil {
		t.Fatal(err)
	}
	const port inet.Port = 4002
	label := strconv.Itoa(int(port))
	tr.socks[port] = &sock{
		port:    port,
		sent:    tr.sent.With(label),
		sentB:   tr.sentB.With(label),
		recv:    tr.recv.With(label),
		recvB:   tr.recvB.With(label),
		dropped: tr.dropped.With(label),
		sendErr: tr.sendErrs.With(label),
		unbound: tr.unbound.With(label),
	}
	delivered := 0
	tr.binds[port] = func(eventsim.Time, inet.Endpoint, []byte) { delivered++ }
	tr.TrackSeqs(port, 1024, func(p []byte) (uint32, bool) {
		if len(p) < 4 {
			return 0, false
		}
		return binary.BigEndian.Uint32(p), true
	})
	tr.SetRecvTap(func(eventsim.Time, inet.Port, inet.Endpoint, int) {})

	from := netip.AddrPortFrom(netip.AddrFrom4([4]byte{127, 0, 0, 1}), 9999)
	seq := uint32(0)
	allocs := testing.AllocsPerRun(1000, func() {
		fr := tr.frames.Get().(*frame)
		seq++
		binary.BigEndian.PutUint32(fr.buf[:4], seq)
		fr.n = 512
		fr.port = port
		fr.from = from
		tr.deliver(fr)
	})
	if allocs != 0 {
		t.Fatalf("deliver allocates %.1f per packet, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("handler never ran — the pin measured nothing")
	}
}

// TestLiveBindErrSticky pins the bind-failure contract: a port that cannot
// be bound (here: already taken by another transport on the same IP)
// records its error, BindErr reports it from any goroutine, and the port
// stays failed for senders too.
func TestLiveBindErrSticky(t *testing.T) {
	lo := inet.MakeAddr(127, 0, 0, 1)
	const port inet.Port = 47131
	first, err := NewLive(Config{BindIP: lo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	first.DoWait(func(eventsim.Time) { first.BindUDP(port, func(eventsim.Time, inet.Endpoint, []byte) {}) })
	if err := first.BindErr(port); err != nil {
		t.Fatalf("first bind of %d failed: %v", port, err)
	}

	second, err := NewLive(Config{BindIP: lo, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.DoWait(func(eventsim.Time) { second.BindUDP(port, func(eventsim.Time, inet.Endpoint, []byte) {}) })
	if err := second.BindErr(port); err == nil {
		t.Fatalf("second bind of %d on the same IP succeeded; want address-in-use", port)
	}
	second.DoWait(func(eventsim.Time) {
		if _, err := second.SendUDP(port, inet.Endpoint{Addr: lo, Port: port + 1}, []byte("x")); err == nil {
			t.Error("send from a failed port succeeded; want the cached bind error")
		}
	})
}

// TestLiveTrackSeqs pins duplicate-sequence accounting end to end over
// real loopback sockets: duplicates are counted and still delivered.
func TestLiveTrackSeqs(t *testing.T) {
	lo := inet.MakeAddr(127, 0, 0, 1)
	const srcPort, dstPort inet.Port = 47141, 47142
	a, err := NewLive(Config{BindIP: lo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewLive(Config{BindIP: lo, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	delivered := 0
	b.DoWait(func(eventsim.Time) {
		b.TrackSeqs(dstPort, 256, func(p []byte) (uint32, bool) {
			if len(p) < 4 {
				return 0, false
			}
			return binary.BigEndian.Uint32(p), true
		})
		b.BindUDP(dstPort, func(eventsim.Time, inet.Endpoint, []byte) { delivered++ })
	})

	var pkt [4]byte
	send := func(seq uint32) {
		binary.BigEndian.PutUint32(pkt[:], seq)
		a.DoWait(func(eventsim.Time) {
			if _, err := a.SendUDP(srcPort, inet.Endpoint{Addr: lo, Port: dstPort}, pkt[:]); err != nil {
				t.Errorf("send seq %d: %v", seq, err)
			}
		})
	}
	for _, seq := range []uint32{1, 2, 3, 2, 3, 4} { // two duplicates
		send(seq)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		var got int
		var dups uint64
		b.DoWait(func(eventsim.Time) {
			got = delivered
			dups = b.tracks[dstPort].dup.Value()
		})
		if got == 6 && dups == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered=%d dups=%d, want 6 and 2", got, dups)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkLiveLoopback measures one UDP round trip between two live
// transports on loopback — the serialized floor of the live data path.
func BenchmarkLiveLoopback(b *testing.B) {
	lo := inet.MakeAddr(127, 0, 0, 1)
	const echoPort, cliPort inet.Port = 47151, 47152
	srv, err := NewLive(Config{BindIP: lo, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewLive(Config{BindIP: lo, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()

	srv.DoWait(func(eventsim.Time) {
		srv.BindUDP(echoPort, func(_ eventsim.Time, from inet.Endpoint, payload []byte) {
			srv.SendUDP(echoPort, from, payload)
		})
	})
	got := make(chan struct{}, 1)
	cli.DoWait(func(eventsim.Time) {
		cli.BindUDP(cliPort, func(eventsim.Time, inet.Endpoint, []byte) {
			select {
			case got <- struct{}{}:
			default:
			}
		})
	})

	payload := make([]byte, 512)
	send := func(eventsim.Time) {
		if _, err := cli.SendUDP(cliPort, inet.Endpoint{Addr: lo, Port: echoPort}, payload); err != nil {
			b.Error(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.Do(send)
		<-got
	}
}
