// Package transport is the seam between the protocol stacks (wms, rdt,
// tcplite) and the thing that carries their packets. The stacks speak the
// small Transport interface — exactly what they used of *netsim.Host —
// and two implementations plug in underneath:
//
//   - Sim adapts a *netsim.Host: every call delegates to the host and the
//     network's shared scheduler, so behaviour is byte-identical to the
//     stacks' pre-seam wiring (pinned by the repo's golden digests).
//   - Live drives real net.UDPConn sockets: a private event loop mirrors
//     the simulator's single-threaded discipline over wall-clock time, so
//     the same protocol code streams over localhost — or a real network —
//     unchanged.
//
// The interface is deliberately host-shaped rather than idealised: the
// point is that the protocol port is mechanical (s/­*netsim.Host/
// transport.Transport/) and the sim path keeps its 0-allocs/packet steady
// state.
package transport

import (
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
)

// UDPHandler consumes a reassembled UDP payload addressed to a bound port.
// The payload view is only valid for the duration of the call on either
// implementation (the simulator recycles wire buffers; the live loop
// recycles frame buffers).
type UDPHandler = netsim.UDPHandler

// TCPHandler consumes reassembled TCP segments; tcplite registers one per
// transport and demultiplexes by port internally.
type TCPHandler = netsim.TCPHandler

// Transport is what the protocol stacks use of a host: UDP send and port
// binding, the raw-TCP seam tcplite needs, a clock, timers on the owning
// event loop, and a labelled deterministic RNG. All methods must be called
// from the transport's event loop (simulation callbacks on Sim; the run
// loop on Live — use Live.Do to get there), which is what keeps protocol
// state single-threaded and runs deterministic.
type Transport interface {
	// Addr returns the local address.
	Addr() inet.Addr
	// MTU returns the interface MTU (1500 on both implementations unless
	// overridden; Live uses it only to estimate fragment-train lengths —
	// the kernel does the actual fragmenting).
	MTU() int
	// Now returns the current time on the transport's clock: simulated
	// time on Sim, wall time since the transport started on Live.
	Now() eventsim.Time

	// SendUDP transmits payload from srcPort to dst and reports the
	// fragment-train length (wire packets emitted, or an estimate on
	// Live). The payload may be reused immediately after the call.
	SendUDP(srcPort inet.Port, dst inet.Endpoint, payload []byte) (int, error)
	// BindUDP routes payloads addressed to port to fn. Binding a bound
	// port replaces the handler (servers rebind between runs).
	BindUDP(port inet.Port, fn UDPHandler)
	// UnbindUDP removes a port binding; traffic to the port is dropped
	// until it is bound again.
	UnbindUDP(port inet.Port)

	// SendTCP transmits a raw TCP segment to dst; OnTCP registers the
	// single per-transport segment consumer. Live tunnels segments over a
	// dedicated UDP port (both ends must use the same tunnel port).
	SendTCP(dst inet.Addr, seg []byte) error
	OnTCP(fn TCPHandler)

	// After, AfterArg and Ticker schedule work on the transport's event
	// loop; Cancel revokes a pending timer. Semantics match
	// eventsim.Scheduler.
	After(d time.Duration, name string, fn func(now eventsim.Time)) eventsim.Timer
	AfterArg(d time.Duration, name string, fn func(now eventsim.Time, arg any), arg any) eventsim.Timer
	Ticker(interval time.Duration, name string, fn func(now eventsim.Time) bool) (stop func())
	Cancel(t eventsim.Timer)

	// RNG derives the labelled deterministic stream for a protocol
	// component (Sim: the network root RNG's Split; Live: a private
	// seeded root's Split).
	RNG(label string) *eventsim.RNG

	// RNGInto is RNG rewinding an existing generator in place instead of
	// allocating a new source — the stacks' Reset paths replay their
	// construction-time splits through it so reused testbeds stay
	// allocation-free. Identical draws to RNG; nil child allocates.
	RNGInto(label string, child *eventsim.RNG) *eventsim.RNG
}
