package transport

// SeqWindow is a sliding sequence-number dedup bitmap in the style of
// production UDP transports (one bit per sequence over a fixed recent
// window): O(1) per packet, fixed memory, no per-sequence map churn. The
// live receive path uses it for retransmit/duplicate accounting on ports
// whose payloads carry a sequence number — it observes, it never filters,
// so protocol dedup logic (rdt's missing-set) stays authoritative.
type SeqWindow struct {
	bits []uint64
	size uint32 // window span in sequence numbers (power of two)
	max  uint32 // highest sequence observed
	seen bool
}

// NewSeqWindow returns a window spanning at least size recent sequence
// numbers (rounded up to a power of two, minimum 64).
func NewSeqWindow(size int) *SeqWindow {
	n := uint32(64)
	for int(n) < size {
		n <<= 1
	}
	return &SeqWindow{bits: make([]uint64, n/64), size: n}
}

// test reports and sets the bit for seq.
func (w *SeqWindow) testAndSet(seq uint32) bool {
	i := seq & (w.size - 1)
	mask := uint64(1) << (i & 63)
	word := &w.bits[i>>6]
	was := *word&mask != 0
	*word |= mask
	return was
}

// clear zeroes the bit for seq.
func (w *SeqWindow) clear(seq uint32) {
	i := seq & (w.size - 1)
	w.bits[i>>6] &^= uint64(1) << (i & 63)
}

// Observe records seq and reports whether it was already seen. Sequences
// that have fallen out of the window (older than max-size+1) also report
// true: at that age a reappearing sequence is a duplicate or a
// pathologically late retransmit, and counting it as fresh would corrupt
// the dedup accounting the window exists for.
func (w *SeqWindow) Observe(seq uint32) (dup bool) {
	if !w.seen {
		w.seen = true
		w.max = seq
		w.testAndSet(seq)
		return false
	}
	switch {
	case seq > w.max:
		// Advancing: clear the bits the window slides over. A jump wider
		// than the window clears everything it wraps onto exactly once.
		step := seq - w.max
		if step > w.size {
			step = w.size
		}
		for s := seq - step + 1; s != seq; s++ {
			w.clear(s)
		}
		w.max = seq
		w.testAndSet(seq)
		return false
	case w.max-seq < w.size:
		return w.testAndSet(seq)
	default:
		return true // aged out of the window: treat as duplicate
	}
}

// Max returns the highest sequence observed (0, false before any).
func (w *SeqWindow) Max() (uint32, bool) { return w.max, w.seen }
