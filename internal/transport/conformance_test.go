package transport

import (
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
)

// The conformance harness abstracts the one thing Sim and Live differ on:
// how the world makes progress. Everything a stack does between runs —
// bind, rebind, unbind, rebind again — must behave identically on both,
// because the servers rebind their ports between sessions and a semantic
// drift here would only surface as a live-only hang.
type confEnv struct {
	// do runs fn in the transport's execution context (the run loop for
	// Live, directly for the single-threaded Sim).
	do func(fn func())
	// send transmits payload from the sender to the receiver's test port.
	send func(payload []byte)
	// settle lets in-flight traffic drain. With want=true it returns once
	// check (evaluated in the transport's context) holds, failing the test
	// if it never does; with want=false it waits out a grace period and
	// asserts check stayed false throughout.
	settle    func(check func() bool, want bool)
	bindUDP   func(fn UDPHandler)
	unbindUDP func()
}

const confPort inet.Port = 47121

// testRebindSemantics drives the shared conformance scenario.
func testRebindSemantics(t *testing.T, env *confEnv) {
	var got1, got2, got3 int
	bind := func(counter *int) UDPHandler {
		return func(eventsim.Time, inet.Endpoint, []byte) { *counter++ }
	}

	// A fresh bind delivers.
	env.do(func() { env.bindUDP(bind(&got1)) })
	env.send([]byte("one"))
	env.settle(func() bool { return got1 == 1 }, true)

	// Rebinding replaces the handler: the old one sees nothing more.
	env.do(func() { env.bindUDP(bind(&got2)) })
	env.send([]byte("two"))
	env.settle(func() bool { return got2 == 1 }, true)
	env.do(func() {
		if got1 != 1 {
			t.Errorf("replaced handler saw %d packets, want 1", got1)
		}
	})

	// Unbinding drops traffic on the floor — no handler runs.
	env.do(func() { env.unbindUDP() })
	env.send([]byte("three"))
	env.settle(func() bool { return got1 > 1 || got2 > 1 || got3 > 0 }, false)

	// A rebind after unbind works again (server restart between runs).
	env.do(func() { env.bindUDP(bind(&got3)) })
	env.send([]byte("four"))
	env.settle(func() bool { return got3 == 1 }, true)
}

func TestRebindSemanticsSim(t *testing.T) {
	n := netsim.New(1)
	src := inet.MakeAddr(10, 0, 0, 1)
	dst := inet.MakeAddr(10, 0, 0, 2)
	hSrc := n.AddHost(src)
	hDst := n.AddHost(dst)
	n.ConnectDuplex(src, dst, []netsim.HopSpec{
		{Addr: inet.MakeAddr(10, 0, 1, 1), Bandwidth: 100e6, PropDelay: time.Millisecond},
	})
	a, b := NewSim(hSrc), NewSim(hDst)

	horizon := eventsim.Time(0)
	env := &confEnv{
		do:        func(fn func()) { fn() },
		send:      func(p []byte) { a.SendUDP(confPort, inet.Endpoint{Addr: dst, Port: confPort}, p) },
		bindUDP:   func(fn UDPHandler) { b.BindUDP(confPort, fn) },
		unbindUDP: func() { b.UnbindUDP(confPort) },
	}
	env.settle = func(check func() bool, want bool) {
		horizon = horizon.Add(100 * time.Millisecond)
		if err := n.Run(horizon); err != nil {
			t.Fatal(err)
		}
		if check() != want {
			t.Fatalf("sim settle: condition = %v, want %v", !want, want)
		}
	}
	testRebindSemantics(t, env)
}

func TestRebindSemanticsLive(t *testing.T) {
	lo := inet.MakeAddr(127, 0, 0, 1)
	a, err := NewLive(Config{BindIP: lo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewLive(Config{BindIP: lo, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	env := &confEnv{
		do: func(fn func()) { b.DoWait(func(eventsim.Time) { fn() }) },
		send: func(p []byte) {
			a.DoWait(func(eventsim.Time) {
				if _, err := a.SendUDP(confPort+1, inet.Endpoint{Addr: lo, Port: confPort}, p); err != nil {
					t.Errorf("live send: %v", err)
				}
			})
		},
		bindUDP:   func(fn UDPHandler) { b.BindUDP(confPort, fn) },
		unbindUDP: func() { b.UnbindUDP(confPort) },
	}
	env.settle = func(check func() bool, want bool) {
		if !want {
			// Negative condition: wait out a grace period, then assert.
			time.Sleep(150 * time.Millisecond)
			var ok bool
			b.DoWait(func(eventsim.Time) { ok = check() })
			if ok {
				t.Fatal("live settle: condition became true during grace period")
			}
			return
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			var ok bool
			b.DoWait(func(eventsim.Time) { ok = check() })
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("live settle: condition never held")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	testRebindSemantics(t, env)
}
