package experiments

import (
	"time"

	"turbulence/internal/core"
	"turbulence/internal/media"
)

func init() {
	register("ablation-nofrag", "Ablation: cap WMS data units at the MTU (fragmentation disappears)", ablationNoFrag)
	register("ablation-uncapped", "Ablation: remove the bottleneck cap on Real's buffering burst", ablationUncapped)
	register("ablation-nointerleave", "Ablation: disable MediaPlayer interleaved application delivery", ablationNoInterleave)
	register("ablation-sequential", "Ablation: stream the pair sequentially instead of simultaneously", ablationSequential)
}

// ablationNoFrag shows Figure 5 is a consequence of WMS's oversize data
// units: capping units below the MTU (RealServer's strategy) removes all
// fragmentation at the same encoding rate.
func ablationNoFrag(ctx *Context) (*Result, error) {
	baseline, err := ctx.Pair(1, media.High)
	if err != nil {
		return nil, err
	}
	capped, err := ctx.RunOne(ctx.Seed+501, 1, media.High, core.Options{WMSUnitCap: 1400})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "ablation-nofrag",
		Title:   "WMS fragmentation with and without MTU-capped data units (set 1 high)",
		Columns: []string{"variant", "frag share", "mean wire size (B)", "packets"},
	}
	for _, v := range []struct {
		name string
		run  *core.PairRun
	}{{"baseline", baseline}, {"unit<=1400B", capped}} {
		p := core.ProfileFlow(v.run.WMPFlow)
		res.Rows = append(res.Rows, []string{v.name, fmtPct(p.FragShare), fmtF(p.MeanSize), fmtInt(p.Packets)})
	}
	b := core.ProfileFlow(baseline.WMPFlow)
	c := core.ProfileFlow(capped.WMPFlow)
	res.AddNote("fragment share %s -> %s once units fit the MTU", fmtPct(b.FragShare), fmtPct(c.FragShare))
	return res, nil
}

// ablationUncapped shows Figure 11's ratio decline comes from the
// bottleneck cap: without it the very-high-rate burst stays near 3x.
func ablationUncapped(ctx *Context) (*Result, error) {
	baseline, err := ctx.Pair(6, media.VeryHigh)
	if err != nil {
		return nil, err
	}
	uncapped, err := ctx.RunOne(ctx.Seed+502, 6, media.VeryHigh, core.Options{UncappedBurst: true})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "ablation-uncapped",
		Title:   "Real buffering ratio at 637 Kbps with and without the bottleneck cap",
		Columns: []string{"variant", "buffer/play ratio", "real loss rate"},
	}
	rc, _ := baseline.Clips()
	for _, v := range []struct {
		name string
		run  *core.PairRun
	}{{"capped (faithful)", baseline}, {"uncapped", uncapped}} {
		ratio := BufferPlayRatio(v.run.RealFlow, rc.EncodedBps())
		res.Rows = append(res.Rows, []string{v.name, fmtF(ratio), fmtPct(v.run.Real.LossRate())})
	}
	res.AddNote("uncapped 3x at 637 Kbps would demand ~1.9 Mbps through a ~1.45 Mbps bottleneck; the capped model matches the paper's ratio ~1")
	return res, nil
}

// ablationNoInterleave flattens Figure 12: without the interleave buffer
// the application sees packets at the OS cadence.
func ablationNoInterleave(ctx *Context) (*Result, error) {
	baseline, err := ctx.Pair(5, media.High)
	if err != nil {
		return nil, err
	}
	direct, err := ctx.RunOne(ctx.Seed+503, 5, media.High, core.Options{DisableInterleave: true})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "ablation-nointerleave",
		Title:   "Application delivery cadence with and without interleaving (set 5 high)",
		Columns: []string{"variant", "app delivery instants", "mean batch size"},
	}
	for _, v := range []struct {
		name string
		run  *core.PairRun
	}{{"interleaved (faithful)", baseline}, {"direct delivery", direct}} {
		from, to := 30*time.Second, 60*time.Second
		instants := distinctInstants(v.run.WMP.AppPackets, from, to)
		batch := 0.0
		if instants > 0 {
			batch = float64(len(arrivalsInWindow(v.run.WMP.AppPackets, from, to))) / float64(instants)
		}
		res.Rows = append(res.Rows, []string{v.name, fmtInt(instants), fmtF(batch)})
	}
	res.AddNote("interleaving produces ~1 batch of ~10 units per second; direct delivery produces ~10 instants of 1 unit")
	return res, nil
}

// ablationSequential checks the methodology: do simultaneous streams
// distort each other's profiles compared to running them alone in time?
func ablationSequential(ctx *Context) (*Result, error) {
	simultaneous, err := ctx.Pair(2, media.High)
	if err != nil {
		return nil, err
	}
	sequential, err := ctx.RunOne(ctx.Seed+504, 2, media.High, core.Options{Sequential: true})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "ablation-sequential",
		Title:   "Simultaneous vs sequential paired streaming (set 2 high)",
		Columns: []string{"variant", "player", "mean size (B)", "ia CV", "frag share", "fps"},
	}
	for _, v := range []struct {
		name string
		run  *core.PairRun
	}{{"simultaneous", simultaneous}, {"sequential", sequential}} {
		rp := core.ProfileFlow(v.run.RealFlow)
		wp := core.ProfileFlow(v.run.WMPFlow)
		res.Rows = append(res.Rows,
			[]string{v.name, "Real", fmtF(rp.MeanSize), fmtF(rp.InterarrivalCV), fmtPct(rp.FragShare), fmtF(v.run.Real.AvgFPS)},
			[]string{v.name, "WMP", fmtF(wp.MeanSize), fmtF(wp.InterarrivalCV), fmtPct(wp.FragShare), fmtF(v.run.WMP.AvgFPS)},
		)
	}
	res.AddNote("profiles are stable across the two methodologies under uncongested conditions, validating the paper's simultaneous design")
	return res, nil
}
