package experiments

import (
	"time"

	"turbulence/internal/media"
	"turbulence/internal/stats"
	"turbulence/internal/tracker"
)

func init() {
	registerTraceFree("fig12", "Figure 12: packets received by network vs application layer (MediaPlayer)", fig12)
	registerTraceFree("fig13", "Figure 13: frame rate vs time (data set 5)", fig13)
	registerTraceFree("fig14", "Figure 14: frame rate vs average encoding rate (all data sets)", fig14)
	registerTraceFree("fig15", "Figure 15: frame rate vs average bandwidth (all data sets)", fig15)
}

// fig12 contrasts OS-layer and application-layer packet receipt for one
// MediaPlayer clip over a four-second window: steady per-tick arrivals
// against once-per-second interleave batches.
func fig12(ctx *Context) (*Result, error) {
	run, err := ctx.Pair(5, media.High)
	if err != nil {
		return nil, err
	}
	from, to := 32*time.Second, 36*time.Second
	osSeries := arrivalsInWindow(run.WMP.OSPackets, from, to)
	appSeries := arrivalsInWindow(run.WMP.AppPackets, from, to)
	res := &Result{
		ID:    "fig12",
		Title: "Packets received by network vs application layer (MediaPlayer)",
		Series: []Series{
			{Name: "Transport Layer Packets", Points: osSeries},
			{Name: "Application Layer Packets", Points: appSeries},
		},
	}
	osInstants := distinctInstants(run.WMP.OSPackets, from, to)
	appInstants := distinctInstants(run.WMP.AppPackets, from, to)
	res.AddNote("OS delivery instants in window: %d; app delivery instants: %d (paper: 100 ms vs 1 s cadence)",
		osInstants, appInstants)
	if appInstants > 0 {
		res.AddNote("mean app batch size: %.1f units (paper: groups of 10)",
			float64(len(appSeries))/float64(appInstants))
	}
	return res, nil
}

func arrivalsInWindow(arr []tracker.Arrival, from, to time.Duration) []stats.Point {
	var out []stats.Point
	for _, a := range arr {
		if a.At >= from && a.At < to {
			out = append(out, stats.Point{X: a.At.Seconds(), Y: float64(a.Seq)})
		}
	}
	return out
}

func distinctInstants(arr []tracker.Arrival, from, to time.Duration) int {
	seen := make(map[time.Duration]bool)
	for _, a := range arr {
		if a.At >= from && a.At < to {
			seen[a.At] = true
		}
	}
	return len(seen)
}

// fig13 plots the per-second frame rate of all four data set 5 flows
// (paper: both high-rate clips at 25 fps; the low WMP clip at 13 fps; the
// low Real clip well above it).
func fig13(ctx *Context) (*Result, error) {
	res := &Result{ID: "fig13", Title: "Frame rate vs time, data set 5 (frames/s)"}
	type row struct {
		name string
		fps  float64
	}
	var notes []row
	for _, class := range []media.Class{media.High, media.Low} {
		run, err := ctx.Pair(5, class)
		if err != nil {
			return nil, err
		}
		rc, wc := run.Clips()
		res.Series = append(res.Series,
			Series{Name: seriesName("Real Player", rc), Points: run.Real.FPS.MeanSeries(time.Second)},
			Series{Name: seriesName("Windows Media Player", wc), Points: run.WMP.FPS.MeanSeries(time.Second)},
		)
		notes = append(notes,
			row{seriesName("Real", rc), run.Real.AvgFPS},
			row{seriesName("WMP", wc), run.WMP.AvgFPS},
		)
	}
	for _, n := range notes {
		res.AddNote("%s: %.1f fps", n.name, n.fps)
	}
	return res, nil
}

// classStats aggregates per-class frame rate statistics for figures 14-15.
type classStats struct {
	xs, ys []float64
}

// fig14 plots per-clip frame rate against encoding rate, plus class means
// with standard error bars (paper: at low rates Real beats WMP; at high
// rates both reach ~25 fps).
func fig14(ctx *Context) (*Result, error) {
	return frameRateFigure(ctx, "fig14",
		"Frame rate vs average encoding rate (all data sets)",
		func(r *tracker.Report) float64 { return r.EncodedKbps() })
}

// fig15 plots frame rate against measured playout bandwidth (paper: for
// the same bandwidth Real achieves the higher frame rate).
func fig15(ctx *Context) (*Result, error) {
	return frameRateFigure(ctx, "fig15",
		"Frame rate vs average bandwidth (all data sets)",
		func(r *tracker.Report) float64 { return r.AvgPlaybackBps / 1000 })
}

func frameRateFigure(ctx *Context, id, title string, x func(*tracker.Report) float64) (*Result, error) {
	runs, err := ctx.All()
	if err != nil {
		return nil, err
	}
	var realPts, wmpPts []stats.Point
	classAgg := map[string]*classStats{}
	agg := func(player string, class media.Class, xv, fps float64) {
		key := player + "/" + class.String()
		cs := classAgg[key]
		if cs == nil {
			cs = &classStats{}
			classAgg[key] = cs
		}
		cs.xs = append(cs.xs, xv)
		cs.ys = append(cs.ys, fps)
	}
	for _, run := range runs {
		rx, wx := x(run.Real), x(run.WMP)
		realPts = append(realPts, stats.Point{X: rx, Y: run.Real.AvgFPS})
		wmpPts = append(wmpPts, stats.Point{X: wx, Y: run.WMP.AvgFPS})
		agg("Real", run.Class, rx, run.Real.AvgFPS)
		agg("WMP", run.Class, wx, run.WMP.AvgFPS)
	}
	res := &Result{
		ID:    id,
		Title: title,
		Series: []Series{
			{Name: "Real Media", Points: realPts},
			{Name: "Windows Media", Points: wmpPts},
		},
		Columns: []string{"player/class", "mean x", "mean fps", "stderr fps", "n"},
	}
	for _, player := range []string{"Real", "WMP"} {
		for _, class := range []media.Class{media.Low, media.High, media.VeryHigh} {
			cs := classAgg[player+"/"+class.String()]
			if cs == nil {
				continue
			}
			ySum := stats.Summarize(cs.ys)
			res.Rows = append(res.Rows, []string{
				player + "/" + class.String(),
				fmtF(stats.Mean(cs.xs)),
				fmtF(ySum.Mean),
				fmtF(ySum.StdErr),
				fmtInt(ySum.N),
			})
		}
	}
	lowReal := stats.Mean(classAgg["Real/low"].ys)
	lowWMP := stats.Mean(classAgg["WMP/low"].ys)
	res.AddNote("low-rate mean fps: Real=%.1f vs WMP=%.1f (paper: Real higher)", lowReal, lowWMP)
	highReal := stats.Mean(classAgg["Real/high"].ys)
	highWMP := stats.Mean(classAgg["WMP/high"].ys)
	res.AddNote("high-rate mean fps: Real=%.1f vs WMP=%.1f (paper: both ~25)", highReal, highWMP)
	return res, nil
}

func fmtInt(n int) string {
	return fmtF(float64(n))
}
