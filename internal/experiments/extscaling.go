package experiments

import (
	"turbulence/internal/core"
	"turbulence/internal/media"
)

func init() {
	register("ext-scaling", "Extension (§VI): media scaling under constrained bandwidth", extScaling)
}

// extScaling runs the paper's future-work experiment: the set 1 high pair
// (demand ~750 Kbps) through a 500 Kbps bottleneck, with the players'
// media-scaling capability off (the faithful 2002 measurement
// configuration) and on (what §VI proposes studying). Scaling trades frame
// rate for loss: the servers thin to delta-free streams instead of
// flooding the bottleneck.
func extScaling(ctx *Context) (*Result, error) {
	res := &Result{
		ID:      "ext-scaling",
		Title:   "Media scaling under a 500 Kbps bottleneck (set 1 high pair)",
		Columns: []string{"scaling", "player", "loss %", "recovered", "fps"},
	}
	type variant struct {
		name    string
		scaling bool
	}
	var realLoss, wmpLoss [2]float64
	for i, v := range []variant{{"off (faithful)", false}, {"on", true}} {
		run, err := ctx.RunOne(ctx.Seed+601, 1, media.High, core.Options{
			BottleneckBps: 500e3,
			EnableScaling: v.scaling,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows,
			[]string{v.name, "Real", fmtF(run.Real.LossRate() * 100),
				fmtInt(run.Real.PacketsRecovered), fmtF(run.Real.AvgFPS)},
			[]string{v.name, "WMP", fmtF(run.WMP.LossRate() * 100),
				fmtInt(run.WMP.PacketsRecovered), fmtF(run.WMP.AvgFPS)},
		)
		realLoss[i], wmpLoss[i] = run.Real.LossRate(), run.WMP.LossRate()
	}
	res.AddNote("without scaling the pair floods the 500 Kbps bottleneck: WMP loses %.0f%% of units (each lost fragment discards a whole frame)", wmpLoss[0]*100)
	res.AddNote("with scaling both servers thin to reduce offered load; loss falls to Real %.1f%% / WMP %.1f%%", realLoss[1]*100, wmpLoss[1]*100)
	res.AddNote("neither player reduces its packet rate under loss without scaling: the unresponsive-flow concern of §I stands")
	return res, nil
}
