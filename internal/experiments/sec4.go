package experiments

import (
	"time"

	"turbulence/internal/core"
	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
)

func init() {
	register("sec4", "Section IV: simulation of video flows (fitted generator vs measurement)", sec4)
}

// sec4 realises the paper's Section IV proposal: fit flow models from the
// measured distributions, generate synthetic flows, and verify the
// synthetic traffic reproduces the measured turbulence profile. The rows
// compare measured versus generated properties for both players.
func sec4(ctx *Context) (*Result, error) {
	run, err := ctx.Pair(1, media.High)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "sec4",
		Title:   "Fitted flow generator vs measured flows (data set 1 high pair)",
		Columns: []string{"flow", "source", "mean size (B)", "size CV", "mean ia (ms)", "frag %", "CBR"},
	}
	rng := eventsim.NewRNG(ctx.Seed + 99)
	for _, tc := range []struct {
		name string
		flow *core.PairRun
		wmp  bool
	}{
		{"Real", run, false},
		{"WMP", run, true},
	} {
		ft := tc.flow.RealFlow
		dst := core.DataEndpointReal()
		if tc.wmp {
			ft = tc.flow.WMPFlow
			dst = core.DataEndpointWMP()
		}
		measured := core.ProfileFlow(ft)
		model := core.FitModel(ft)
		gen := model.Generate(rng.Split(tc.name), 60*time.Second, inet.Flow{
			Src: inet.Endpoint{Addr: tc.flow.Site.Addr, Port: 9000},
			Dst: dst,
		})
		flows := gen.SplitFlows()
		if len(flows) == 0 {
			res.AddNote("%s: generator produced no flow", tc.name)
			continue
		}
		synth := core.ProfileFlow(flows[0])
		for _, row := range []struct {
			src string
			p   core.FlowProfile
		}{{"measured", measured}, {"generated", synth}} {
			res.Rows = append(res.Rows, []string{
				tc.name, row.src,
				fmtF(row.p.MeanSize),
				fmtF(row.p.SizeCV),
				fmtF(row.p.MeanInterarrival * 1000),
				fmtF(row.p.FragShare * 100),
				boolStr(row.p.CBR),
			})
		}
		res.AddNote("%s: generated/measured mean size ratio %.2f, frag delta %.1f points",
			tc.name, ratioOr0(synth.MeanSize, measured.MeanSize),
			(synth.FragShare-measured.FragShare)*100)
	}
	res.AddNote("simulation recipe per paper §IV: RTT from Fig 1, rates from Table 1, sizes from Figs 6-7, intervals from Figs 8-9, fragmentation from Fig 5, burst from Fig 11")
	return res, nil
}

func boolStr(b bool) string {
	if b {
		return "CBR"
	}
	return "VBR"
}

func ratioOr0(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
