package experiments

import (
	"fmt"

	"turbulence/internal/media"
)

func init() {
	registerTraceFree("table1", "Table 1: experiment data sets (encoded rates captured by the trackers)", table1)
}

// table1 regenerates the paper's Table 1: for every data set and class,
// the Real and MediaPlayer encoded rates as *measured by the instrumented
// players*, not as read from the clip library — the whole point of the
// paper's table is that the trackers captured the true encoding rates.
func table1(ctx *Context) (*Result, error) {
	res := &Result{
		ID:      "table1",
		Title:   "Experiment data sets",
		Columns: []string{"Set", "Pair", "Encode (Kbps)", "Clip Info", "Length"},
	}
	runs, err := ctx.All()
	if err != nil {
		return nil, err
	}
	for _, run := range runs {
		set, _ := media.FindSet(run.Set)
		label := fmt.Sprintf("R-%s/M-%s", run.Class.Suffix(), run.Class.Suffix())
		rates := fmt.Sprintf("%.1f/%.1f", run.Real.EncodedKbps(), run.WMP.EncodedKbps())
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", run.Set),
			label,
			rates,
			set.Content.String(),
			fmt.Sprintf("%d:%02d", int(set.Duration.Minutes()), int(set.Duration.Seconds())%60),
		})
	}
	// The paper's §3.B observation about Table 1.
	lowerEverywhere := true
	for _, run := range runs {
		if run.Real.EncodedKbps() >= run.WMP.EncodedKbps() {
			lowerEverywhere = false
		}
	}
	if lowerEverywhere {
		res.AddNote("Real encodes below MediaPlayer for every advertised rate (paper §3.B)")
	} else {
		res.AddNote("MISMATCH: some Real clip encoded at or above its MediaPlayer pair")
	}
	res.AddNote("26 clips in 6 sets; measured rates come from DESCRIBE responses captured by the trackers")
	return res, nil
}
