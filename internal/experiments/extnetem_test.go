package experiments

import (
	"strings"
	"testing"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
)

func TestExtNetemLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("full pair runs in -short mode")
	}
	res, err := Run(NewContext(2002), "ext-netem-loss")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	// The impaired variants must show materially more link drops than the
	// faithful baseline (column 1 holds the downlink model-drop count).
	if res.Rows[0][1] == res.Rows[2][1] {
		t.Fatalf("bursty variant shows baseline drop count: %v", res.Rows)
	}
	if len(res.Notes) == 0 {
		t.Fatal("no notes")
	}
}

func TestExtNetemBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("full pair runs in -short mode")
	}
	res, err := Run(NewContext(2002), "ext-netem-bandwidth")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || len(res.Notes) == 0 {
		t.Fatalf("rows=%d notes=%d", len(res.Rows), len(res.Notes))
	}
}

func TestExtNetemScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario matrix in -short mode")
	}
	res, err := Run(NewContext(2002).SetParallel(0), "ext-netem-scenarios")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, sc := range netem.All() {
		if sc.Hop != nil {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want one per scenario (%d)", len(res.Rows), want)
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		seen[row[0]] = true
	}
	for _, name := range []string{"paper-baseline", "lossy-wifi", "congested-peering"} {
		if !seen[name] {
			t.Fatalf("scenario %s missing from matrix: %v", name, res.Rows)
		}
	}
}

// TestScenarioContextDeterminism enforces the CLI acceptance guarantee at
// the experiments layer: the same seed and scenario regenerate identical
// reports across repeated invocations and across worker-pool sizes.
func TestScenarioContextDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full pair runs in -short mode")
	}
	sc, err := netem.Find("lossy-wifi")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		ctx := NewContext(2002).SetParallel(workers).SetScenario(sc)
		var b strings.Builder
		for _, id := range []string{"fig01", "table1"} {
			res, err := Run(ctx, id)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, id, err)
			}
			b.WriteString(res.String())
		}
		return b.String()
	}
	seq := render(1)
	if par := render(4); par != seq {
		t.Fatal("parallel scenario regeneration differs from sequential")
	}
	if again := render(1); again != seq {
		t.Fatal("repeated scenario regeneration differs")
	}
	if !strings.Contains(seq, `under scenario "lossy-wifi"`) {
		t.Fatal("drop-breakdown note does not name the scenario")
	}
}

// TestDropNoteOnEveryReport checks the satellite requirement: any report
// built from cached pair runs carries the drop breakdown.
func TestDropNoteOnEveryReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full pair runs in -short mode")
	}
	ctx := NewContext(2002).SetParallel(0)
	for _, id := range []string{"fig01", "table1"} {
		res, err := Run(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range res.Notes {
			if strings.Contains(n, "model-loss") && strings.Contains(n, "queue-overflow") {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: drop-breakdown note missing: %v", id, res.Notes)
		}
	}
}

func TestSetScenarioAfterRunsPanics(t *testing.T) {
	ctx := NewContext(2002)
	ctx.mu.Lock()
	ctx.runs[core.PairKey{Set: 1, Class: media.Low}] = nil
	ctx.mu.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("SetScenario after cached runs did not panic")
		}
	}()
	ctx.SetScenario(nil)
}
