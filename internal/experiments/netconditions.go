package experiments

import (
	"turbulence/internal/probe"
	"turbulence/internal/stats"
)

func init() {
	registerTraceFree("fig01", "Figure 1: CDF of round-trip time", fig01)
	registerTraceFree("fig02", "Figure 2: CDF of number of hops", fig02)
}

// fig01 rebuilds the RTT CDF from the ping runs around every experiment
// (paper: median ~40 ms, maximum ~160 ms).
func fig01(ctx *Context) (*Result, error) {
	runs, err := ctx.All()
	if err != nil {
		return nil, err
	}
	var reports []*probe.PingReport
	var all []float64
	for _, run := range runs {
		for _, r := range []*probe.PingReport{run.PingBefore, run.PingAfter} {
			if r != nil {
				reports = append(reports, r)
				all = append(all, r.RTTMillis()...)
			}
		}
	}
	cdf := probe.RTTCDF(reports)
	res := &Result{
		ID:     "fig01",
		Title:  "CDF of RTT (ms)",
		Series: []Series{{Name: "RTT", Points: cdf}},
	}
	res.AddNote("median RTT = %.0f ms (paper: ~40 ms)", stats.Median(all))
	res.AddNote("max RTT = %.0f ms (paper: ~160 ms)", stats.Summarize(all).Max)
	res.AddNote("mean ping loss = %s (paper: near 0%%)", fmtPct(meanLoss(reports)))
	return res, nil
}

func meanLoss(reports []*probe.PingReport) float64 {
	if len(reports) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range reports {
		sum += r.LossRate()
	}
	return sum / float64(len(reports))
}

// fig02 rebuilds the hop-count CDF from the traceroutes (paper: most
// servers 15-20 hops away).
func fig02(ctx *Context) (*Result, error) {
	runs, err := ctx.All()
	if err != nil {
		return nil, err
	}
	var reports []*probe.TraceReport
	var hops []float64
	for _, run := range runs {
		if run.Route != nil {
			reports = append(reports, run.Route)
			hops = append(hops, float64(run.Route.HopCount()))
		}
	}
	cdf := probe.HopsCDF(reports)
	res := &Result{
		ID:     "fig02",
		Title:  "CDF of number of hops",
		Series: []Series{{Name: "hops", Points: cdf}},
	}
	in1520 := 0
	for _, h := range hops {
		if h >= 15 && h <= 20 {
			in1520++
		}
	}
	res.AddNote("median hops = %.0f; %d/%d paths within 15-20 hops (paper: most)", stats.Median(hops), in1520, len(hops))
	return res, nil
}
