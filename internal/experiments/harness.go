// Package experiments regenerates every table and figure in the paper's
// evaluation from the simulated testbed. Each experiment is a registered
// generator producing a Result: tabular rows, plottable series, or both,
// in the same units and with the same reductions the paper used. The
// cmd/turbulence binary prints Results; bench_test.go wraps the same
// generators; EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

// Series is one named curve of a figure.
type Series struct {
	Name   string
	Points []stats.Point
}

// Result is the regenerated artifact for one experiment.
type Result struct {
	ID    string
	Title string

	// Tabular part.
	Columns []string
	Rows    [][]string

	// Figure part.
	Series []Series

	// Headline observations, used for quick comparison against the paper.
	Notes []string
}

// AddNote appends a formatted observation.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render prints the result as aligned text.
func (r *Result) Render(w *strings.Builder) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Columns) > 0 {
		widths := make([]int, len(r.Columns))
		for i, c := range r.Columns {
			widths[i] = len(c)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		for i, c := range r.Columns {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		w.WriteString("\n")
		for _, row := range r.Rows {
			for i, cell := range row {
				fmt.Fprintf(w, "%-*s  ", widths[i], cell)
			}
			w.WriteString("\n")
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "series %s (%d points)\n", s.Name, len(s.Points))
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %g\t%g\n", p.X, p.Y)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// Context caches pair runs so one invocation of several experiments runs
// each Table 1 pair at most once. With SetParallel, cache misses in All
// fan out across a worker pool of independent single-threaded schedulers;
// because every run is seeded via core.SeedFor regardless of which worker
// executes it, the cached results — and every figure derived from them —
// are byte-identical to a sequential regeneration.
type Context struct {
	Seed    int64
	workers int

	// scenario, when set, streams every cached Table 1 pair run under a
	// netem scenario, turning the whole regenerated evaluation into a
	// what-if under impaired network conditions. Experiments that build
	// their own testbeds (ablations, extensions) are unaffected.
	scenario *netem.Scenario

	// runMu serialises cache-miss execution so concurrent callers never
	// duplicate a multi-second pair simulation; mu guards only the map.
	runMu sync.Mutex
	mu    sync.Mutex
	runs  map[core.PairKey]*core.PairRun
}

// NewContext creates a run cache for the given base seed.
func NewContext(seed int64) *Context {
	return &Context{Seed: seed, workers: 1, runs: make(map[core.PairKey]*core.PairRun)}
}

// SetParallel sets the worker-pool size used when All must execute several
// uncached pair runs (1 = sequential, 0 = GOMAXPROCS). Results are
// unaffected; only wall-clock time changes.
func (c *Context) SetParallel(workers int) *Context {
	if workers < 0 {
		workers = 1
	}
	c.workers = workers
	return c
}

// SetScenario streams the context's Table 1 pair runs under a netem
// scenario. Must be called before the first run executes; the cache is
// keyed by pair only, so mixing scenarios within one context is not
// supported. Results stay deterministic for any SetParallel value.
func (c *Context) SetScenario(sc *netem.Scenario) *Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.runs) > 0 {
		panic("experiments: SetScenario after runs are cached")
	}
	c.scenario = sc
	return c
}

// Scenario returns the context's installed scenario (nil = faithful).
func (c *Context) Scenario() *netem.Scenario { return c.scenario }

// options builds the run options the context applies to cached pair runs.
func (c *Context) options() core.Options {
	return core.Options{Scenario: c.scenario}
}

// Pair returns the (cached) run for one pair experiment.
func (c *Context) Pair(set int, class media.Class) (*core.PairRun, error) {
	k := core.PairKey{Set: set, Class: class}
	c.mu.Lock()
	r, ok := c.runs[k]
	c.mu.Unlock()
	if ok {
		return r, nil
	}
	c.runMu.Lock()
	defer c.runMu.Unlock()
	c.mu.Lock()
	r, ok = c.runs[k]
	c.mu.Unlock()
	if ok { // another caller filled it while we waited
		return r, nil
	}
	r, err := core.RunPairWith(core.SeedFor(c.Seed, k), set, class, c.options())
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.runs[k] = r
	c.mu.Unlock()
	return r, nil
}

// All returns runs for every Table 1 pair, in Table 1 order. Uncached
// pairs execute on the context's worker pool.
func (c *Context) All() ([]*core.PairRun, error) {
	keys := core.AllPairs()
	c.runMu.Lock()
	defer c.runMu.Unlock()
	c.mu.Lock()
	var missing []core.PairKey
	for _, k := range keys {
		if _, ok := c.runs[k]; !ok {
			missing = append(missing, k)
		}
	}
	c.mu.Unlock()
	if len(missing) > 0 {
		runs, err := core.RunPairsWith(c.Seed, missing, c.options(), c.workers)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		for i, k := range missing {
			c.runs[k] = runs[i]
		}
		c.mu.Unlock()
	}
	out := make([]*core.PairRun, len(keys))
	c.mu.Lock()
	for i, k := range keys {
		out[i] = c.runs[k]
	}
	c.mu.Unlock()
	return out, nil
}

// Generator produces one experiment's Result.
type Generator func(*Context) (*Result, error)

// Experiment is one registry entry.
type Experiment struct {
	ID       string
	Title    string
	Generate Generator
}

var registry = map[string]Experiment{}

func register(id, title string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Generate: g}
}

// Lookup returns a registered experiment.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id. Every report gains a path-drop
// breakdown note covering the context's cached pair runs, so model loss
// (the links' loss processes) stays distinguishable from AQM early drops
// and queue overflow in whatever the experiment measured.
func Run(ctx *Context, id string) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	res, err := e.Generate(ctx)
	if err != nil {
		return nil, err
	}
	if note, ok := ctx.dropNote(); ok {
		res.AddNote("%s", note)
	}
	return res, nil
}

// dropNote summarises the drop breakdown across the context's cached pair
// runs. Summation over the cache map is order-independent, so the note is
// deterministic for a given set of executed runs.
func (c *Context) dropNote() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.runs) == 0 {
		return "", false
	}
	var down, up netsim.PathStats
	for _, r := range c.runs {
		down.Add(r.Downlink)
		up.Add(r.Uplink)
	}
	label := ""
	if c.scenario != nil {
		label = fmt.Sprintf(" under scenario %q", c.scenario.Name)
	}
	return fmt.Sprintf(
		"path drops across %d pair runs%s — downlink: %d model-loss, %d queue-overflow, %d aqm-early, %d ttl (%d forwarded); uplink: %d model-loss, %d queue-overflow, %d aqm-early, %d ttl (%d forwarded)",
		len(c.runs), label,
		down.DroppedLoss, down.DroppedFull, down.DroppedAQM, down.TTLExpired, down.Forwarded,
		up.DroppedLoss, up.DroppedFull, up.DroppedAQM, up.TTLExpired, up.Forwarded), true
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
