// Package experiments regenerates every table and figure in the paper's
// evaluation from the simulated testbed. Each experiment is a registered
// generator producing a Result: tabular rows, plottable series, or both,
// in the same units and with the same reductions the paper used. The
// cmd/turbulence binary prints Results; bench_test.go wraps the same
// generators; EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/stats"
)

// Series is one named curve of a figure.
type Series struct {
	Name   string
	Points []stats.Point
}

// Result is the regenerated artifact for one experiment.
type Result struct {
	ID    string
	Title string

	// Tabular part.
	Columns []string
	Rows    [][]string

	// Figure part.
	Series []Series

	// Headline observations, used for quick comparison against the paper.
	Notes []string
}

// AddNote appends a formatted observation.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render prints the result as aligned text.
func (r *Result) Render(w *strings.Builder) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Columns) > 0 {
		widths := make([]int, len(r.Columns))
		for i, c := range r.Columns {
			widths[i] = len(c)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		for i, c := range r.Columns {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		w.WriteString("\n")
		for _, row := range r.Rows {
			for i, cell := range row {
				fmt.Fprintf(w, "%-*s  ", widths[i], cell)
			}
			w.WriteString("\n")
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "series %s (%d points)\n", s.Name, len(s.Points))
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %g\t%g\n", p.X, p.Y)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// Context caches pair runs so one invocation of several experiments runs
// each Table 1 pair at most once.
type Context struct {
	Seed int64
	runs map[core.PairKey]*core.PairRun
}

// NewContext creates a run cache for the given base seed.
func NewContext(seed int64) *Context {
	return &Context{Seed: seed, runs: make(map[core.PairKey]*core.PairRun)}
}

// Pair returns the (cached) run for one pair experiment.
func (c *Context) Pair(set int, class media.Class) (*core.PairRun, error) {
	k := core.PairKey{Set: set, Class: class}
	if r, ok := c.runs[k]; ok {
		return r, nil
	}
	r, err := core.RunPair(c.pairSeed(k), set, class)
	if err != nil {
		return nil, err
	}
	c.runs[k] = r
	return r, nil
}

func (c *Context) pairSeed(k core.PairKey) int64 {
	return c.Seed*1000003 + int64(k.Set)*101 + int64(k.Class)*13
}

// All returns runs for every Table 1 pair.
func (c *Context) All() ([]*core.PairRun, error) {
	var out []*core.PairRun
	for _, k := range core.AllPairs() {
		r, err := c.Pair(k.Set, k.Class)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Generator produces one experiment's Result.
type Generator func(*Context) (*Result, error)

// Experiment is one registry entry.
type Experiment struct {
	ID       string
	Title    string
	Generate Generator
}

var registry = map[string]Experiment{}

func register(id, title string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Generate: g}
}

// Lookup returns a registered experiment.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(ctx *Context, id string) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Generate(ctx)
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
