// Package experiments regenerates every table and figure in the paper's
// evaluation from the simulated testbed. Each experiment is a registered
// generator producing a Result: tabular rows, plottable series, or both,
// in the same units and with the same reductions the paper used. The
// cmd/turbulence binary prints Results; bench_test.go wraps the same
// generators; EXPERIMENTS.md records paper-versus-measured values.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/netsim"
	"turbulence/internal/obs"
	"turbulence/internal/stats"
)

// Series is one named curve of a figure.
type Series struct {
	Name   string
	Points []stats.Point
}

// Result is the regenerated artifact for one experiment.
type Result struct {
	ID    string
	Title string

	// Provenance metadata, so merged shard outputs are self-describing:
	// Scenario names the netem scenario the context streamed under ("" =
	// the faithful testbed), Seed is the base seed, and Shard is the
	// "i/n" slice a sharded CLI invocation ran (set by cmd/turbulence).
	Scenario string `json:",omitempty"`
	Seed     int64  `json:",omitempty"`
	Shard    string `json:",omitempty"`

	// Tabular part.
	Columns []string
	Rows    [][]string

	// Figure part.
	Series []Series

	// Headline observations, used for quick comparison against the paper.
	Notes []string
}

// AddNote appends a formatted observation.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render prints the result as aligned text.
func (r *Result) Render(w *strings.Builder) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Columns) > 0 {
		widths := make([]int, len(r.Columns))
		for i, c := range r.Columns {
			widths[i] = len(c)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		for i, c := range r.Columns {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		w.WriteString("\n")
		for _, row := range r.Rows {
			for i, cell := range row {
				fmt.Fprintf(w, "%-*s  ", widths[i], cell)
			}
			w.WriteString("\n")
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "series %s (%d points)\n", s.Name, len(s.Points))
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %g\t%g\n", p.X, p.Y)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// Context is a thin cache over a core.Runner: it remembers each Table 1
// pair run so one invocation of several experiments executes each pair at
// most once, and delegates all execution — worker fan-out, cancellation,
// progress — to the Plan/Runner engine. Because every run is seeded via
// core.SeedFor regardless of execution shape, the cached results — and
// every figure derived from them — are byte-identical to a sequential
// regeneration.
type Context struct {
	Seed    int64
	workers int

	// retention selects what the cached Table 1 sweep keeps per run (see
	// core.TraceRetention). Under DropTracesAfterProfile or StreamProfiles
	// the cached runs carry no packet captures, so only trace-free
	// experiments (reports, probes, profiles) can regenerate; Run rejects
	// the others with a clear error instead of letting them crash.
	retention core.TraceRetention

	// cancel, when set, aborts in-flight pair runs when the context is
	// cancelled (checked between simulation events); progress, when set,
	// observes each completed pair run.
	cancel   context.Context
	progress func(core.Progress)
	sink     *obs.Sink
	store    core.ResultStore

	// scenario, when set, streams every cached Table 1 pair run under a
	// netem scenario, turning the whole regenerated evaluation into a
	// what-if under impaired network conditions. Experiments that build
	// their own testbeds (ablations, extensions) are unaffected.
	scenario *netem.Scenario

	// runMu serialises cache-miss execution so concurrent callers never
	// duplicate a multi-second pair simulation; mu guards only the map.
	runMu sync.Mutex
	mu    sync.Mutex
	runs  map[core.PairKey]*core.PairRun
}

// NewContext creates a run cache for the given base seed.
func NewContext(seed int64) *Context {
	return &Context{Seed: seed, workers: 1, runs: make(map[core.PairKey]*core.PairRun)}
}

// SetParallel sets the worker-pool size used when All must execute several
// uncached pair runs (1 = sequential, 0 = GOMAXPROCS). Results are
// unaffected; only wall-clock time changes.
func (c *Context) SetParallel(workers int) *Context {
	if workers < 0 {
		workers = 1
	}
	c.workers = workers
	return c
}

// SetCancel installs a cancellation context on the underlying Runner:
// cancelling it makes in-flight pair runs abort promptly (between
// simulation events) and cache-miss execution return its error. Completed
// runs stay cached.
func (c *Context) SetCancel(ctx context.Context) *Context {
	c.cancel = ctx
	return c
}

// SetProgress installs a completion callback on the underlying Runner,
// invoked serially after each uncached pair run finishes.
func (c *Context) SetProgress(fn func(core.Progress)) *Context {
	c.progress = fn
	return c
}

// SetMetrics installs an obs.Sink on the underlying Runner: every
// uncached pair run feeds cell timing, simulator counters, capture
// volume, and netem drop causes into it. Results are unaffected — the
// sink observes the sweep, it does not steer it.
func (c *Context) SetMetrics(s *obs.Sink) *Context {
	c.sink = s
	return c
}

// SetResultStore installs a content-addressed result store on the
// underlying Runner, write-through only: completed cells are inserted so
// later Comparison-space sweeps (a dispatched rerun, a Runner with
// WithResultStore) hit on them, but the context's own sweeps never serve
// from the store — experiments reduce the full player reports and packet
// flows of a PairRun, which the store's Comparisons do not hold, so a
// cache hit here would leave the experiment nothing to regenerate from.
// Inserts need a Comparison, so pair it with
// SetRetention(DropTracesAfterProfile) or StreamProfiles — under the
// default RetainTraces it is inert.
func (c *Context) SetResultStore(s core.ResultStore) *Context {
	c.store = s
	return c
}

// insertOnly adapts a ResultStore to the harness's write-through
// discipline: every lookup misses locally (without touching the store's
// hit/miss counters), every insert persists.
type insertOnly struct{ core.ResultStore }

func (insertOnly) LookupResult(core.PairKey, core.Options, int64) (*core.Comparison, bool) {
	return nil, false
}

// SetRetention selects what the cached Table 1 sweep keeps of each pair
// run (default core.RetainTraces). Must be called before the first run
// executes. With StreamProfiles the sweep never materialises a trace —
// records stream through online analyzers — so only trace-free
// experiments can regenerate from this context; Run reports which.
// One-off runs (RunOne) and Matrix sweeps are unaffected: their consumers
// own their runs and retention.
func (c *Context) SetRetention(tr core.TraceRetention) *Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.runs) > 0 {
		panic("experiments: SetRetention after runs are cached")
	}
	c.retention = tr
	return c
}

// Retention returns the context's Table 1 sweep retention.
func (c *Context) Retention() core.TraceRetention { return c.retention }

// runner assembles the Runner the context delegates execution to; extra
// options (the cached sweep's retention) are appended last.
func (c *Context) runner(extra ...core.RunnerOption) *core.Runner {
	opts := []core.RunnerOption{core.WithWorkers(c.workers)}
	if c.cancel != nil {
		opts = append(opts, core.WithContext(c.cancel))
	}
	if c.progress != nil {
		opts = append(opts, core.WithProgress(c.progress))
	}
	if c.sink != nil {
		opts = append(opts, core.WithMetrics(c.sink))
	}
	if c.store != nil {
		opts = append(opts, core.WithResultStore(insertOnly{c.store}))
	}
	opts = append(opts, extra...)
	return core.NewRunner(opts...)
}

// execute runs the listed uncached pairs through the Runner and caches
// every run that completed — even when the sweep was cancelled partway,
// honouring SetCancel's promise that completed runs stay cached — before
// reporting the sweep's error.
func (c *Context) execute(keys []core.PairKey) error {
	// The scenario rides on the plan's scenario axis, not in variant
	// options, so Progress keys (and run labels) carry it. Seeding is
	// unaffected: SeedCommon derives from the pair alone either way.
	plan := core.NewPlan(c.Seed).ForPairs(keys...)
	if c.scenario != nil {
		plan.UnderScenarios(c.scenario)
	}
	results, err := c.runner(core.WithTraceRetention(c.retention)).Run(plan)
	c.mu.Lock()
	for _, res := range results {
		if res.Err == nil && res.Run != nil {
			c.runs[res.Key.Pair] = res.Run
		}
	}
	c.mu.Unlock()
	return err
}

// RunOne executes one uncached pair run with an explicit literal seed —
// how ablations and extensions keep their runs off the Table 1 cache —
// under the context's cancellation, so ctrl-C lands mid-simulation in
// every experiment, not just the cached sweep. A completed run is
// reported to SetProgress as a 1-of-1 sweep.
func (c *Context) RunOne(seed int64, set int, class media.Class, opts core.Options) (*core.PairRun, error) {
	run, err := core.RunPairContext(c.cancel, seed, set, class, opts)
	interrupted := c.cancel != nil && c.cancel.Err() != nil
	if c.progress != nil && !interrupted {
		c.progress(core.Progress{Done: 1, Total: 1, Err: err,
			Key: core.RunKey{Pair: core.PairKey{Set: set, Class: class}, Scenario: opts.Scenario}})
	}
	return run, err
}

// Matrix executes a (pairs × scenarios) sweep through the context's
// Runner, honouring SetParallel, SetCancel and SetProgress. Output is
// byte-identical to core.RunScenarioMatrix at the same seed.
func (c *Context) Matrix(seed int64, keys []core.PairKey, scenarios []*netem.Scenario) ([]core.ScenarioRuns, error) {
	return c.runner().RunMatrix(seed, keys, scenarios)
}

// SetScenario streams the context's Table 1 pair runs under a netem
// scenario. Must be called before the first run executes; the cache is
// keyed by pair only, so mixing scenarios within one context is not
// supported. Results stay deterministic for any SetParallel value.
func (c *Context) SetScenario(sc *netem.Scenario) *Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.runs) > 0 {
		panic("experiments: SetScenario after runs are cached")
	}
	c.scenario = sc
	return c
}

// Scenario returns the context's installed scenario (nil = faithful).
func (c *Context) Scenario() *netem.Scenario { return c.scenario }

// Pair returns the (cached) run for one pair experiment.
func (c *Context) Pair(set int, class media.Class) (*core.PairRun, error) {
	k := core.PairKey{Set: set, Class: class}
	c.mu.Lock()
	r, ok := c.runs[k]
	c.mu.Unlock()
	if ok {
		return r, nil
	}
	c.runMu.Lock()
	defer c.runMu.Unlock()
	c.mu.Lock()
	r, ok = c.runs[k]
	c.mu.Unlock()
	if ok { // another caller filled it while we waited
		return r, nil
	}
	if err := c.execute([]core.PairKey{k}); err != nil {
		return nil, err
	}
	c.mu.Lock()
	r = c.runs[k]
	c.mu.Unlock()
	return r, nil
}

// All returns runs for every Table 1 pair, in Table 1 order. Uncached
// pairs execute on the context's worker pool.
func (c *Context) All() ([]*core.PairRun, error) {
	keys := core.AllPairs()
	c.runMu.Lock()
	defer c.runMu.Unlock()
	c.mu.Lock()
	var missing []core.PairKey
	for _, k := range keys {
		if _, ok := c.runs[k]; !ok {
			missing = append(missing, k)
		}
	}
	c.mu.Unlock()
	if len(missing) > 0 {
		if err := c.execute(missing); err != nil {
			return nil, err
		}
	}
	out := make([]*core.PairRun, len(keys))
	c.mu.Lock()
	for i, k := range keys {
		out[i] = c.runs[k]
	}
	c.mu.Unlock()
	return out, nil
}

// Generator produces one experiment's Result.
type Generator func(*Context) (*Result, error)

// Experiment is one registry entry.
type Experiment struct {
	ID       string
	Title    string
	Generate Generator
	// TraceFree marks experiments that regenerate without retained packet
	// captures (see registerTraceFree).
	TraceFree bool
}

var registry = map[string]Experiment{}

func register(id, title string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Generate: g}
}

// registerTraceFree registers an experiment whose reductions never touch
// the cached runs' packet captures (tracker reports, probe logs and
// profiles only), so it regenerates under any Table 1 sweep retention —
// including StreamProfiles, where no trace ever exists. The flag is
// declared here, at the registration site, so it lives next to the code
// it describes.
func registerTraceFree(id, title string, g Generator) {
	register(id, title, g)
	e := registry[id]
	e.TraceFree = true
	registry[id] = e
}

// Lookup returns a registered experiment.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// TraceFree reports whether the experiment regenerates without retained
// packet captures (and therefore works under -retention drop/stream).
func TraceFree(id string) bool { return registry[id].TraceFree }

// Run executes one experiment by id. Every report gains a path-drop
// breakdown note covering the context's cached pair runs, so model loss
// (the links' loss processes) stays distinguishable from AQM early drops
// and queue overflow in whatever the experiment measured.
func Run(ctx *Context, id string) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if ctx.Retention() != core.RetainTraces && !e.TraceFree {
		return nil, fmt.Errorf("experiments: %s reduces packet captures, which the context's trace retention discards; rerun with retained traces", id)
	}
	res, err := e.Generate(ctx)
	if err != nil {
		return nil, err
	}
	if sc := ctx.Scenario(); sc != nil {
		res.Scenario = sc.Name
	}
	res.Seed = ctx.Seed
	if note, ok := ctx.dropNote(); ok {
		res.AddNote("%s", note)
	}
	return res, nil
}

// dropNote summarises the drop breakdown across the context's cached pair
// runs. Summation over the cache map is order-independent, so the note is
// deterministic for a given set of executed runs.
func (c *Context) dropNote() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.runs) == 0 {
		return "", false
	}
	var down, up netsim.PathStats
	for _, r := range c.runs {
		down.Add(r.Downlink)
		up.Add(r.Uplink)
	}
	label := ""
	if c.scenario != nil {
		label = fmt.Sprintf(" under scenario %q", c.scenario.Name)
	}
	return fmt.Sprintf(
		"path drops across %d pair runs%s — downlink: %d model-loss, %d queue-overflow, %d aqm-early, %d ttl (%d forwarded); uplink: %d model-loss, %d queue-overflow, %d aqm-early, %d ttl (%d forwarded)",
		len(c.runs), label,
		down.DroppedLoss, down.DroppedFull, down.DroppedAQM, down.TTLExpired, down.Forwarded,
		up.DroppedLoss, up.DroppedFull, up.DroppedAQM, up.TTLExpired, up.Forwarded), true
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
