package experiments

import (
	"fmt"
	"time"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/netem"
)

func init() {
	register("ext-netem-loss", "Extension (netem): turbulence vs loss burstiness at equal average loss", extNetemLoss)
	register("ext-netem-bandwidth", "Extension (netem): turbulence vs bottleneck bandwidth profile", extNetemBandwidth)
	register("ext-netem-scenarios", "Extension (netem): the scenario matrix — every pair under every named scenario", extNetemScenarios)
}

// bottleneckScenario builds an unregistered one-off scenario impairing
// only the server-side bottleneck hop.
func bottleneckScenario(name string, im netem.Impairment) *netem.Scenario {
	return &netem.Scenario{
		Name: name,
		Hop: func(role netem.HopRole, _, _ int) netem.Impairment {
			if role != netem.RoleBottleneck {
				return netem.Impairment{}
			}
			return im
		},
		HorizonSlack: time.Minute,
	}
}

// extNetemLoss streams the set 1 high pair under three loss processes of
// identical 2% long-run average rate — independent drops, short fade
// bursts, long fade bursts — plus the faithful baseline. The shape of
// loss, not just its rate, is what the netem layer makes measurable: the
// two players wear the same link weather very differently (RealPlayer
// repairs it with NAK retransmissions; MediaPlayer has no recovery and
// additionally loses whole packets to single lost fragments), and long
// fades concentrate a session's drops into few episodes, so a single
// realization scatters widely around the stationary rate.
func extNetemLoss(ctx *Context) (*Result, error) {
	variants := []struct {
		name string
		sc   *netem.Scenario
	}{
		{"faithful (~0%)", nil},
		{"bernoulli 2%", bottleneckScenario("bernoulli-2", netem.Impairment{
			Loss: func() netem.LossModel { return netem.Bernoulli(0.02) },
		})},
		{"bursty 2% (8-pkt)", bottleneckScenario("ge-2-8", netem.Impairment{
			Loss: func() netem.LossModel { return netem.GEFromBurst(0.02, 8, 0.3) },
		})},
		{"bursty 2% (25-pkt)", bottleneckScenario("ge-2-25", netem.Impairment{
			Loss: func() netem.LossModel { return netem.GEFromBurst(0.02, 25, 0.5) },
		})},
	}
	res := &Result{
		ID:      "ext-netem-loss",
		Title:   "Loss burstiness at equal average rate (set 1 high pair, 2% bottleneck loss)",
		Columns: []string{"loss process", "link drops", "Real loss %", "Real recovered", "Real fps", "WMP loss %", "WMP fps", "longest gap (ms)"},
	}
	type outcome struct {
		realLoss, wmpLoss float64
		recovered         int
		linkDrops         uint64
	}
	var outcomes []outcome
	for _, v := range variants {
		run, err := ctx.RunOne(ctx.Seed+801, 1, media.High, core.Options{Scenario: v.sc})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			v.name,
			fmtInt(int(run.Downlink.DroppedLoss)),
			fmtF(run.Real.LossRate() * 100),
			fmtInt(run.Real.PacketsRecovered),
			fmtF(run.Real.AvgFPS),
			fmtF(run.WMP.LossRate() * 100),
			fmtF(run.WMP.AvgFPS),
			fmtF(longestGap(run.RealFlow).Seconds() * 1000),
		})
		outcomes = append(outcomes, outcome{run.Real.LossRate(), run.WMP.LossRate(),
			run.Real.PacketsRecovered, run.Downlink.DroppedLoss})
	}
	res.AddNote("RealPlayer's NAK recovery repairs the 2%% link (unrecovered %.1f%%/%.1f%%/%.1f%% across shapes) at the cost of %d/%d/%d retransmissions",
		outcomes[1].realLoss*100, outcomes[2].realLoss*100, outcomes[3].realLoss*100,
		outcomes[1].recovered, outcomes[2].recovered, outcomes[3].recovered)
	res.AddNote("WMP has no recovery: its application loss (%.1f%% vs %.1f%%) tracks the realized link drops, amplified by fragmentation (one lost fragment discards the whole packet)",
		outcomes[1].wmpLoss*100, outcomes[3].wmpLoss*100)
	res.AddNote("long fades concentrate drops into few episodes: the 25-pkt realization saw %d link drops vs bernoulli's %d at the same stationary rate",
		outcomes[3].linkDrops, outcomes[1].linkDrops)
	return res, nil
}

// extNetemBandwidth streams the set 1 high pair under four bottleneck
// rate profiles — the constant faithful link, a sinusoidal oscillation, a
// mid-session brownout step, and a replayed wireless trace — and compares
// delivery smoothness. This is the paper's "network turbulence" question
// inverted: how much turbulence does the *network's own* variability
// inject into each player's delivery?
func extNetemBandwidth(ctx *Context) (*Result, error) {
	variants := []struct {
		name string
		sc   *netem.Scenario
	}{
		{"constant (faithful)", nil},
		{"sinusoid ±35%", bottleneckScenario("bw-sin", netem.Impairment{
			Bandwidth: netem.ScaledSinusoid(0.9, 0.35, 50*time.Second),
		})},
		{"brownout 45% @60-90s", bottleneckScenario("bw-brown", netem.Impairment{
			Bandwidth: func(base float64) netem.BandwidthProfile {
				return netem.NewStepSchedule(base,
					netem.Step{At: 60 * time.Second, Bps: base * 0.45},
					netem.Step{At: 90 * time.Second, Bps: base})
			},
		})},
		{"wireless trace", bottleneckScenario("bw-trace", netem.Impairment{
			Bandwidth: func(float64) netem.BandwidthProfile {
				return &netem.TraceProfile{Interval: 5 * time.Second, Loop: true, Samples: []float64{
					1.8e6, 1.2e6, 0.9e6, 1.5e6, 0.7e6, 1.9e6, 1.1e6, 0.8e6,
				}}
			},
		})},
	}
	res := &Result{
		ID:      "ext-netem-bandwidth",
		Title:   "Bottleneck bandwidth profile vs delivery turbulence (set 1 high pair)",
		Columns: []string{"profile", "queue drops", "Real rate CV", "WMP rate CV", "Real fps", "WMP fps", "longest gap (ms)"},
	}
	var cvs []float64
	for _, v := range variants {
		run, err := ctx.RunOne(ctx.Seed+802, 1, media.High, core.Options{Scenario: v.sc})
		if err != nil {
			return nil, err
		}
		queueDrops := run.Downlink.DroppedFull + run.Downlink.DroppedAQM
		wmpCV := rateCV(run.WMPFlow)
		res.Rows = append(res.Rows, []string{
			v.name,
			fmtInt(int(queueDrops)),
			fmt.Sprintf("%.2f", rateCV(run.RealFlow)),
			fmt.Sprintf("%.2f", wmpCV),
			fmtF(run.Real.AvgFPS),
			fmtF(run.WMP.AvgFPS),
			fmtF(longestGap(run.WMPFlow).Seconds() * 1000),
		})
		cvs = append(cvs, wmpCV)
	}
	worst := cvs[1]
	for _, cv := range cvs[1:] {
		if cv > worst {
			worst = cv
		}
	}
	res.AddNote("a varying bottleneck turns CBR delivery bursty: WMP 1s-rate CV rises from %.2f (constant) to as high as %.2f",
		cvs[0], worst)
	res.AddNote("rate dips surface as queue-overflow drops at the bottleneck FIFO, not as link loss — the breakdown separates the two causes")
	return res, nil
}

// extNetemScenarios is the scenario-matrix runner as a report: every high
// class Table 1 pair streamed under every registered scenario, one row per
// scenario, sharing the context's seed (common random numbers) and worker
// pool. The deterministic what-if laboratory the ROADMAP's scenario
// diversity goal asks for.
func extNetemScenarios(ctx *Context) (*Result, error) {
	var keys []core.PairKey
	for _, k := range core.AllPairs() {
		if k.Class == media.High {
			keys = append(keys, k)
		}
	}
	var scenarios []*netem.Scenario
	for _, sc := range netem.All() {
		if sc.Hop != nil { // skip test-registered stubs
			scenarios = append(scenarios, sc)
		}
	}
	rows, err := ctx.Matrix(ctx.Seed+803, keys, scenarios)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "ext-netem-scenarios",
		Title:   "Scenario matrix: all high-rate pairs under every named scenario",
		Columns: []string{"scenario", "Real loss %", "WMP loss %", "Real fps", "WMP fps", "model drops", "queue drops", "aqm drops"},
	}
	for _, row := range rows {
		var realLoss, wmpLoss, realFPS, wmpFPS float64
		var modelDrops, queueDrops, aqmDrops uint64
		for _, run := range row.Runs {
			realLoss += run.Real.LossRate()
			wmpLoss += run.WMP.LossRate()
			realFPS += run.Real.AvgFPS
			wmpFPS += run.WMP.AvgFPS
			modelDrops += run.Downlink.DroppedLoss
			queueDrops += run.Downlink.DroppedFull
			aqmDrops += run.Downlink.DroppedAQM
		}
		n := float64(len(row.Runs))
		res.Rows = append(res.Rows, []string{
			row.Scenario.Name,
			fmtF(realLoss / n * 100),
			fmtF(wmpLoss / n * 100),
			fmtF(realFPS / n),
			fmtF(wmpFPS / n),
			fmtInt(int(modelDrops)),
			fmtInt(int(queueDrops)),
			fmtInt(int(aqmDrops)),
		})
	}
	res.AddNote("%d scenarios x %d pairs, common random numbers: row differences are the impairments, not sampling noise", len(scenarios), len(keys))
	res.AddNote("identical seed reproduces this table byte for byte at any -parallel setting")
	return res, nil
}
