package experiments

import (
	"time"

	"turbulence/internal/media"
	"turbulence/internal/stats"
)

func init() {
	register("fig04", "Figure 4: packet arrivals vs time (data set 5 high pair)", fig04)
	register("fig05", "Figure 5: MediaPlayer IP fragmentation vs encoded rate", fig05)
	register("fig06", "Figure 6: PDF of packet size (data set 1 low pair)", fig06)
	register("fig07", "Figure 7: PDF of normalized packet size (all data sets)", fig07)
	register("fig08", "Figure 8: PDF of packet interarrival times (data set 1 low pair)", fig08)
	register("fig09", "Figure 9: CDF of normalized packet interarrival times (all data sets)", fig09)
}

// fig04 shows a one-second window of packet arrivals at t~30 s for the
// data set 5 high pair: MediaPlayer's fragment-train staircase against
// RealPlayer's even spread.
func fig04(ctx *Context) (*Result, error) {
	run, err := ctx.Pair(5, media.High)
	if err != nil {
		return nil, err
	}
	rc, wc := run.Clips()
	from, to := 30*time.Second, 31*time.Second
	res := &Result{
		ID:    "fig04",
		Title: "Packet arrivals vs time (sequence number over one second)",
		Series: []Series{
			{Name: seriesName("Real Player", rc), Points: run.RealFlow.SequencePoints(from, to)},
			{Name: seriesName("Windows Media Player", wc), Points: run.WMPFlow.SequencePoints(from, to)},
		},
	}
	// The WMP window decomposes into groups of a constant packet count.
	trains := run.WMPFlow.Window(from, to).TrainLengths()
	constant := len(trains) > 0
	for _, n := range trains {
		if n != trains[0] {
			constant = false
		}
	}
	if constant && len(trains) > 0 {
		res.AddNote("WMP arrives in groups of %d packets (1 UDP + %d fragments), constant per group (paper §3.C)", trains[0], trains[0]-1)
	}
	res.AddNote("window %v-%v; Real packets=%d, WMP packets=%d", from, to,
		len(res.Series[0].Points), len(res.Series[1].Points))
	return res, nil
}

// fig05 plots the continuation-fragment share of each MediaPlayer flow
// against its encoding rate (paper: 0 below 100 Kbps, ~66% at 300 Kbps,
// up to ~80%+ at the top rate). Real flows are checked to be fragment
// free.
func fig05(ctx *Context) (*Result, error) {
	runs, err := ctx.All()
	if err != nil {
		return nil, err
	}
	var pts []stats.Point
	realFrags := 0
	for _, run := range runs {
		_, wc := run.Clips()
		share := run.WMPFlow.Fragmentation().ContinuationShare()
		pts = append(pts, stats.Point{X: wc.EncodedKbps, Y: share * 100})
		realFrags += run.RealFlow.Fragmentation().AnyFragment
	}
	res := &Result{
		ID:     "fig05",
		Title:  "MediaPlayer IP fragmentation (%) vs encoded rate (Kbps)",
		Series: []Series{{Name: "MediaPlayer", Points: pts}},
	}
	var sub100, at300, top []float64
	for _, p := range pts {
		switch {
		case p.X < 100:
			sub100 = append(sub100, p.Y)
		case p.X >= 240 && p.X <= 360:
			at300 = append(at300, p.Y)
		case p.X > 500:
			top = append(top, p.Y)
		}
	}
	res.AddNote("below 100 Kbps: %.1f%% fragments (paper: 0%%)", stats.Mean(sub100))
	res.AddNote("around 300 Kbps: %.1f%% fragments (paper: ~66%%)", stats.Mean(at300))
	res.AddNote("top rate: %.1f%% fragments (paper: up to ~80%%)", stats.Mean(top))
	res.AddNote("Real flows contained %d fragments across all runs (paper: none)", realFrags)
	return res, nil
}

// fig06 is the packet-size PDF of the data set 1 low pair, 50-byte bins.
func fig06(ctx *Context) (*Result, error) {
	run, err := ctx.Pair(1, media.Low)
	if err != nil {
		return nil, err
	}
	rc, wc := run.Clips()
	res := &Result{
		ID:    "fig06",
		Title: "PDF of packet size (bytes), data set 1 low pair",
		Series: []Series{
			{Name: seriesName("Real Player", rc), Points: stats.PDF(run.RealFlow.PacketSizes(), 0, 1600, 32)},
			{Name: seriesName("Windows Media Player", wc), Points: stats.PDF(run.WMPFlow.PacketSizes(), 0, 1600, 32)},
		},
	}
	// Paper: over 80% of WMP packets between 800 and 1000 bytes.
	h := stats.NewHistogram(0, 1600, 32)
	h.AddAll(run.WMPFlow.PacketSizes())
	res.AddNote("WMP mass in 800-1000B band: %s (paper: >80%%)", fmtPct(h.MassIn(800, 1000)))
	_, peak := h.PeakBin()
	res.AddNote("WMP peak-bin mass %s; Real spreads with no single peak (paper §3.D)", fmtPct(peak))
	return res, nil
}

// fig07 aggregates normalized packet sizes (per-clip mean = 1) over all
// data sets (paper: WMP concentrated at 1.0; Real spread ~0.6-1.8).
func fig07(ctx *Context) (*Result, error) {
	runs, err := ctx.All()
	if err != nil {
		return nil, err
	}
	var realNorm, wmpNorm []float64
	for _, run := range runs {
		realNorm = append(realNorm, stats.Normalize(run.RealFlow.PacketSizes())...)
		wmpNorm = append(wmpNorm, stats.Normalize(run.WMPFlow.PacketSizes())...)
	}
	res := &Result{
		ID:    "fig07",
		Title: "PDF of normalized packet size (all data sets)",
		Series: []Series{
			{Name: "Real Player", Points: stats.PDF(realNorm, 0, 2, 40)},
			{Name: "Windows Media", Points: stats.PDF(wmpNorm, 0, 2, 40)},
		},
	}
	rh := stats.NewHistogram(0, 2, 40)
	rh.AddAll(realNorm)
	res.AddNote("Real mass in 0.6-1.8: %s (paper: spread over that range)", fmtPct(rh.MassIn(0.6, 1.8)))
	wh := stats.NewHistogram(0, 2, 40)
	wh.AddAll(wmpNorm)
	res.AddNote("WMP mass in 0.85-1.15: %s (paper: concentrated at the mean)", fmtPct(wh.MassIn(0.85, 1.15)))
	_, rPeak := rh.PeakBin()
	_, wPeak := wh.PeakBin()
	res.AddNote("peak bin density: WMP %s vs Real %s", fmtPct(wPeak), fmtPct(rPeak))
	return res, nil
}

// fig08 is the interarrival PDF of the data set 1 low pair, 10 ms bins
// over 0-0.2 s.
func fig08(ctx *Context) (*Result, error) {
	run, err := ctx.Pair(1, media.Low)
	if err != nil {
		return nil, err
	}
	rc, wc := run.Clips()
	res := &Result{
		ID:    "fig08",
		Title: "PDF of packet interarrival time (s), data set 1 low pair",
		Series: []Series{
			{Name: seriesName("Real Player", rc), Points: stats.PDF(run.RealFlow.Interarrivals(), 0, 0.2, 20)},
			{Name: seriesName("Windows Media Player", wc), Points: stats.PDF(run.WMPFlow.Interarrivals(), 0, 0.2, 20)},
		},
	}
	ws := stats.Summarize(run.WMPFlow.Interarrivals())
	rs := stats.Summarize(run.RealFlow.Interarrivals())
	res.AddNote("WMP interarrival CV=%.2f (approximately constant); Real CV=%.2f (wide range) — paper §3.E",
		stats.Ratio(ws.StdDev, ws.Mean), stats.Ratio(rs.StdDev, rs.Mean))
	return res, nil
}

// fig09 is the CDF of normalized interarrival times over all data sets,
// with MediaPlayer fragment trains collapsed to their first packet exactly
// as the paper prescribes.
func fig09(ctx *Context) (*Result, error) {
	runs, err := ctx.All()
	if err != nil {
		return nil, err
	}
	var realNorm, wmpNorm []float64
	for _, run := range runs {
		realNorm = append(realNorm, stats.Normalize(run.RealFlow.GroupInterarrivals())...)
		wmpNorm = append(wmpNorm, stats.Normalize(run.WMPFlow.GroupInterarrivals())...)
	}
	res := &Result{
		ID:    "fig09",
		Title: "CDF of normalized packet interarrival time (all data sets)",
		Series: []Series{
			{Name: "Real Player", Points: downsampleCDF(stats.CDF(realNorm), 200)},
			{Name: "Windows Media Player", Points: downsampleCDF(stats.CDF(wmpNorm), 200)},
		},
	}
	// Steepness at the mean: mass within 10% of normalized 1.0.
	res.AddNote("WMP mass within [0.9,1.1]: %s (paper: steep step at 1)", fmtPct(massNear1(wmpNorm)))
	res.AddNote("Real mass within [0.9,1.1]: %s (paper: gradual slope)", fmtPct(massNear1(realNorm)))
	return res, nil
}

func massNear1(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v >= 0.9 && v <= 1.1 {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// downsampleCDF thins a CDF series for readable output while keeping the
// endpoints.
func downsampleCDF(cdf []stats.Point, max int) []stats.Point {
	if len(cdf) <= max {
		return cdf
	}
	out := make([]stats.Point, 0, max)
	step := float64(len(cdf)-1) / float64(max-1)
	for i := 0; i < max; i++ {
		out = append(out, cdf[int(float64(i)*step)])
	}
	out[len(out)-1] = cdf[len(cdf)-1]
	return out
}
