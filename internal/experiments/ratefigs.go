package experiments

import (
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/media"
	"turbulence/internal/stats"
)

func init() {
	registerTraceFree("fig03", "Figure 3: average playback data rate vs encoding data rate", fig03)
	register("fig10", "Figure 10: bandwidth vs time for one clip set (data set 1)", fig10)
	register("fig11", "Figure 11: buffering rate / playing rate vs encoding rate (Real)", fig11)
}

// fig03 plots per-clip (encoding rate, average playback rate) for both
// players with second-order polynomial trend fits, as the paper does. The
// paper finds MediaPlayer tracking y=x while RealPlayer sits above it.
func fig03(ctx *Context) (*Result, error) {
	runs, err := ctx.All()
	if err != nil {
		return nil, err
	}
	var realPts, wmpPts []stats.Point
	for _, run := range runs {
		realPts = append(realPts, stats.Point{X: run.Real.EncodedKbps(), Y: run.Real.AvgPlaybackBps / 1000})
		wmpPts = append(wmpPts, stats.Point{X: run.WMP.EncodedKbps(), Y: run.WMP.AvgPlaybackBps / 1000})
	}
	res := &Result{
		ID:    "fig03",
		Title: "Average playback data rate vs encoding data rate (Kbps)",
		Series: []Series{
			{Name: "RealPlayer", Points: realPts},
			{Name: "MediaPlayer", Points: wmpPts},
		},
	}
	for _, s := range []struct {
		name string
		pts  []stats.Point
	}{{"Poly(RealPlayer)", realPts}, {"Poly(MediaPlayer)", wmpPts}} {
		poly, err := stats.PolyFit(s.pts, 2)
		if err != nil {
			continue
		}
		var curve []stats.Point
		for x := 0.0; x <= 800; x += 25 {
			curve = append(curve, stats.Point{X: x, Y: poly.Eval(x)})
		}
		res.Series = append(res.Series, Series{Name: s.name, Points: curve})
		res.AddNote("%s: %s", s.name, poly.String())
	}
	res.AddNote("mean playback/encoding ratio: Real=%.2f (paper: >1), WMP=%.2f (paper: ~1)",
		meanRatio(realPts), meanRatio(wmpPts))
	return res, nil
}

func meanRatio(pts []stats.Point) float64 {
	var rs []float64
	for _, p := range pts {
		if p.X > 0 {
			rs = append(rs, p.Y/p.X)
		}
	}
	return stats.Mean(rs)
}

// fig10 rebuilds the bandwidth-versus-time view of data set 1: four
// curves (Real high/low, WMP high/low) in one-second buckets, showing
// RealPlayer's startup burst against MediaPlayer's flat CBR.
func fig10(ctx *Context) (*Result, error) {
	res := &Result{ID: "fig10", Title: "Bandwidth vs time, data set 1 (Kbits/s)"}
	for _, class := range []media.Class{media.High, media.Low} {
		run, err := ctx.Pair(1, class)
		if err != nil {
			return nil, err
		}
		rc, wc := run.Clips()
		for _, f := range []struct {
			name string
			flow *capture.FlowTrace
		}{
			{seriesName("Real Player", rc), run.RealFlow},
			{seriesName("Windows Media Player", wc), run.WMPFlow},
		} {
			pts := f.flow.BandwidthSeries(time.Second)
			for i := range pts {
				pts[i].Y /= 1000
			}
			res.Series = append(res.Series, Series{Name: f.name, Points: pts})
		}
		// Streaming duration comparison (paper: Real finishes sending
		// sooner because the burst front-loads the clip).
		realSpan := flowSpan(run.RealFlow)
		wmpSpan := flowSpan(run.WMPFlow)
		res.AddNote("%v pair: Real stream lasted %.0fs, WMP %.0fs (paper: Real shorter)",
			class, realSpan.Seconds(), wmpSpan.Seconds())
	}
	return res, nil
}

func seriesName(player string, clip media.Clip) string {
	return player + " (" + fmtF(clip.EncodedKbps) + "K)"
}

func flowSpan(ft *capture.FlowTrace) time.Duration {
	if ft.Len() < 2 {
		return 0
	}
	return ft.At(ft.Len()-1).At - ft.At(0).At
}

// BufferPlayRatio is the Figure 11 metric for one Real flow: throughput
// over the first buffering seconds divided by the clip's encoding rate
// (the playout rate). Exported for the ablation benches.
func BufferPlayRatio(ft *capture.FlowTrace, encodedBps float64) float64 {
	if ft.Len() == 0 || encodedBps <= 0 {
		return 0
	}
	const window = 8 * time.Second
	start := ft.At(0).At
	var bits float64
	for i, n := 0, ft.Len(); i < n; i++ {
		if r := ft.At(i); r.At-start <= window {
			bits += float64(r.WireLen * 8)
		}
	}
	return bits / window.Seconds() / encodedBps
}

// fig11 plots Real's buffering-to-playing rate ratio against encoding
// rate across all data sets (paper: ~3 at low rates declining toward 1 at
// 637 Kbps; MediaPlayer's ratio is 1 by construction).
func fig11(ctx *Context) (*Result, error) {
	runs, err := ctx.All()
	if err != nil {
		return nil, err
	}
	var pts []stats.Point
	for _, run := range runs {
		rc, _ := run.Clips()
		ratio := BufferPlayRatio(run.RealFlow, rc.EncodedBps())
		pts = append(pts, stats.Point{X: rc.EncodedKbps, Y: ratio})
	}
	res := &Result{
		ID:     "fig11",
		Title:  "Buffering rate / playing rate vs encoding rate (RealPlayer)",
		Series: []Series{{Name: "Real", Points: pts}},
	}
	var lowRatios, vhRatios []float64
	for _, p := range pts {
		if p.X < 56 {
			lowRatios = append(lowRatios, p.Y)
		}
		if p.X > 500 {
			vhRatios = append(vhRatios, p.Y)
		}
	}
	res.AddNote("low-rate (<56K) mean ratio = %.2f (paper: ~3)", stats.Mean(lowRatios))
	res.AddNote("very-high (637K) ratio = %.2f (paper: close to 1)", stats.Mean(vhRatios))
	res.AddNote("MediaPlayer buffering/playing ratio is 1 for all clips (paper §3.F)")
	return res, nil
}
