package experiments

import (
	"context"
	"strings"
	"testing"

	"turbulence/internal/core"
	"turbulence/internal/media"
	"turbulence/internal/resultstore"
	"turbulence/internal/stats"
)

func TestContextCachesRuns(t *testing.T) {
	ctx := NewContext(55)
	a, err := ctx.Pair(3, media.Low)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Pair(3, media.Low)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("context re-ran a cached pair")
	}
}

func TestContextDistinctSeedsDistinctRuns(t *testing.T) {
	a, err := NewContext(1).Pair(3, media.Low)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewContext(2).Pair(3, media.Low)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.Len() == b.Trace.Len() {
		// Lengths can collide; compare a timestamp too.
		same := true
		for i := 0; i < a.Trace.Len() && i < b.Trace.Len(); i++ {
			if a.Trace.At(i).At != b.Trace.At(i).At {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		ID:      "demo",
		Title:   "Demo result",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Series:  []Series{{Name: "curve", Points: []stats.Point{{X: 1, Y: 2}}}},
	}
	r.AddNote("observation %d", 42)
	out := r.String()
	for _, want := range []string{"demo", "Demo result", "long-column", "333", "curve", "observation 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDownsampleCDF(t *testing.T) {
	var cdf []stats.Point
	for i := 0; i < 1000; i++ {
		cdf = append(cdf, stats.Point{X: float64(i), Y: float64(i+1) / 1000})
	}
	ds := downsampleCDF(cdf, 50)
	if len(ds) != 50 {
		t.Fatalf("len=%d", len(ds))
	}
	if ds[0] != cdf[0] || ds[len(ds)-1] != cdf[len(cdf)-1] {
		t.Fatal("endpoints not preserved")
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].X <= ds[i-1].X {
			t.Fatal("downsample broke monotonicity")
		}
	}
	// Short series pass through untouched.
	short := cdf[:10]
	if got := downsampleCDF(short, 50); len(got) != 10 {
		t.Fatalf("short series resampled: %d", len(got))
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	register("table1", "dup", nil)
}

func TestFormattingHelpers(t *testing.T) {
	if fmtF(1.26) != "1.3" {
		t.Fatalf("fmtF=%q", fmtF(1.26))
	}
	if fmtPct(0.666) != "66.6%" {
		t.Fatalf("fmtPct=%q", fmtPct(0.666))
	}
	if fmtInt(7) != "7.0" {
		t.Fatalf("fmtInt=%q", fmtInt(7))
	}
}

// TestContextCancelKeepsCompletedRuns pins SetCancel's promise: a sweep
// cancelled partway reports the context error but keeps every completed
// pair run cached, so a later All on the same context resumes instead of
// re-simulating from scratch.
func TestContextCancelKeepsCompletedRuns(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	const stopAfter = 2
	ctx := NewContext(55).SetCancel(cctx).SetProgress(func(p core.Progress) {
		if p.Done == stopAfter {
			cancel()
		}
	})
	if _, err := ctx.All(); err != context.Canceled {
		t.Fatalf("cancelled All returned %v", err)
	}
	ctx.mu.Lock()
	cached := len(ctx.runs)
	ctx.mu.Unlock()
	if cached != stopAfter {
		t.Fatalf("%d runs cached after cancel, want %d", cached, stopAfter)
	}
	// The cached pair must come back without touching the (still
	// cancelled) runner.
	k := core.AllPairs()[0]
	run, err := ctx.Pair(k.Set, k.Class)
	if err != nil || run == nil {
		t.Fatalf("cached pair after cancel: %v, %v", run, err)
	}
}

// TestResultStoreWriteThroughOnly pins the harness's store discipline:
// experiments reduce full PairRuns (player reports, packet flows), which
// the store's Comparisons cannot reconstruct, so a context must populate
// the store without ever serving its own sweeps from it — a warm rerun
// against a full store still regenerates every experiment, run data
// intact.
func TestResultStoreWriteThroughOnly(t *testing.T) {
	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cold := NewContext(55).SetRetention(core.StreamProfiles).SetResultStore(st)
	coldRes, err := Run(cold, "table1")
	if err != nil {
		t.Fatal(err)
	}
	entries := st.Stats().Entries
	if entries == 0 {
		t.Fatal("cold experiment sweep inserted nothing into the store")
	}

	// Warm context, same seed, same (now fully covering) store: the
	// lookup path must not be taken — every run needs its full reports.
	warm := NewContext(55).SetRetention(core.StreamProfiles).SetResultStore(st)
	warmRes, err := Run(warm, "table1")
	if err != nil {
		t.Fatalf("warm experiment sweep against a populated store: %v", err)
	}
	if len(warmRes.Rows) != len(coldRes.Rows) {
		t.Fatalf("warm run rendered %d rows, cold %d", len(warmRes.Rows), len(coldRes.Rows))
	}
	for i := range coldRes.Rows {
		if strings.Join(warmRes.Rows[i], "|") != strings.Join(coldRes.Rows[i], "|") {
			t.Fatalf("row %d differs warm vs cold:\n  %v\n  %v", i, warmRes.Rows[i], coldRes.Rows[i])
		}
	}
	runs, err := warm.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range runs {
		if run == nil || run.WMP == nil || run.Real == nil {
			t.Fatal("warm run served from the store: missing player reports")
		}
	}
	// No double inserts, no hits, and crucially no store-level misses:
	// the harness short-circuits lookups locally.
	s := st.Stats()
	if s.Entries != entries {
		t.Fatalf("warm sweep changed the store: %d -> %d entries", entries, s.Entries)
	}
	if s.Hits != 0 {
		t.Fatalf("harness served %d cells from the store", s.Hits)
	}
}
