package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"turbulence/internal/stats"
)

// sharedCtx caches pair runs across the test file, like a real analysis
// session would.
var sharedCtx = NewContext(2002)

func mustRun(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(sharedCtx, id)
	if err != nil {
		t.Fatalf("experiment %s: %v", id, err)
	}
	if res.ID != id || res.Title == "" {
		t.Fatalf("experiment %s: malformed result", id)
	}
	return res
}

func series(t *testing.T, res *Result, name string) []stats.Point {
	t.Helper()
	for _, s := range res.Series {
		if s.Name == name || strings.HasPrefix(s.Name, name) {
			return s.Points
		}
	}
	t.Fatalf("%s: series %q missing (have %v)", res.ID, name, seriesNames(res))
	return nil
}

func seriesNames(res *Result) []string {
	var out []string
	for _, s := range res.Series {
		out = append(out, s.Name)
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1",
		"fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
		"fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"sec4", "ext-scaling", "ext-tcp",
		"ext-netem-loss", "ext-netem-bandwidth", "ext-netem-scenarios",
		"ablation-nofrag", "ablation-uncapped", "ablation-nointerleave", "ablation-sequential",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
	if _, err := Run(sharedCtx, "bogus"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1(t *testing.T) {
	res := mustRun(t, "table1")
	if len(res.Rows) != 13 {
		t.Fatalf("rows=%d, want 13 pairs", len(res.Rows))
	}
	joined := res.String()
	// Exact Table 1 rates must appear, as measured by the trackers.
	for _, rate := range []string{"284.0/323.1", "36.0/49.8", "636.9/731.3", "22.0/39.0"} {
		if !strings.Contains(joined, rate) {
			t.Fatalf("Table 1 rate %s missing from:\n%s", rate, joined)
		}
	}
	for _, note := range res.Notes {
		if strings.Contains(note, "MISMATCH") {
			t.Fatalf("table1 mismatch note: %s", note)
		}
	}
}

func TestFig01RTT(t *testing.T) {
	res := mustRun(t, "fig01")
	cdf := series(t, res, "RTT")
	if len(cdf) < 20 {
		t.Fatalf("RTT CDF too small: %d", len(cdf))
	}
	median := stats.InverseCDF(cdf, 0.5)
	if median < 25 || median > 70 {
		t.Fatalf("median RTT=%v ms, paper ~40", median)
	}
	max := cdf[len(cdf)-1].X
	if max < 60 || max > 200 {
		t.Fatalf("max RTT=%v ms, paper ~160", max)
	}
	if cdf[0].X < 25 {
		t.Fatalf("min RTT=%v ms below plausible floor", cdf[0].X)
	}
}

func TestFig02Hops(t *testing.T) {
	res := mustRun(t, "fig02")
	cdf := series(t, res, "hops")
	lo, hi := cdf[0].X, cdf[len(cdf)-1].X
	if lo < 10 || hi > 30 {
		t.Fatalf("hop range [%v,%v] outside Figure 2 axis", lo, hi)
	}
	// Most paths within 15-20 hops.
	within := stats.CDFAt(cdf, 20) - stats.CDFAt(cdf, 14.99)
	if within < 0.5 {
		t.Fatalf("mass in 15-20 hops=%v, paper: most", within)
	}
}

func TestFig03PlaybackVsEncoding(t *testing.T) {
	res := mustRun(t, "fig03")
	real_ := series(t, res, "RealPlayer")
	wmp := series(t, res, "MediaPlayer")
	if len(real_) != 13 || len(wmp) != 13 {
		t.Fatalf("points: real=%d wmp=%d", len(real_), len(wmp))
	}
	// WMP tracks y=x; Real sits above it.
	for _, p := range wmp {
		if r := p.Y / p.X; r < 0.8 || r > 1.35 {
			t.Fatalf("WMP playback/encoding=%v at %v Kbps", r, p.X)
		}
	}
	above := 0
	for _, p := range real_ {
		if p.Y > p.X*1.02 {
			above++
		}
	}
	if above < 11 {
		t.Fatalf("only %d/13 Real clips play back above encoding rate", above)
	}
	// Polynomial fit series present.
	series(t, res, "Poly(RealPlayer)")
	series(t, res, "Poly(MediaPlayer)")
}

func TestFig04SequenceWindow(t *testing.T) {
	res := mustRun(t, "fig04")
	real_ := series(t, res, "Real Player")
	wmp := series(t, res, "Windows Media Player")
	if len(real_) == 0 || len(wmp) == 0 {
		t.Fatal("empty windows")
	}
	// WMP sequence numbers advance faster than Real's per unit time in
	// the window because of fragment trains (paper Fig 4: ~40 vs ~35
	// packets in the second; exact counts vary).
	if len(wmp) < 15 {
		t.Fatalf("WMP packets in 1 s window=%d, want >= 15 (fragment trains)", len(wmp))
	}
	hasGroupNote := false
	for _, n := range res.Notes {
		if strings.Contains(n, "groups of") {
			hasGroupNote = true
		}
	}
	if !hasGroupNote {
		t.Fatalf("constant-group-size note missing: %v", res.Notes)
	}
}

func TestFig05Fragmentation(t *testing.T) {
	res := mustRun(t, "fig05")
	pts := series(t, res, "MediaPlayer")
	if len(pts) != 13 {
		t.Fatalf("points=%d", len(pts))
	}
	for _, p := range pts {
		switch {
		case p.X < 100:
			if p.Y != 0 {
				t.Fatalf("fragmentation %v%% below 100 Kbps", p.Y)
			}
		case p.X >= 240 && p.X <= 360:
			if p.Y < 55 || p.Y > 72 {
				t.Fatalf("fragmentation %v%% at %v Kbps, paper ~66%%", p.Y, p.X)
			}
		case p.X > 500:
			if p.Y < 75 || p.Y > 92 {
				t.Fatalf("fragmentation %v%% at top rate, paper ~80%%+", p.Y)
			}
		}
	}
	// Fragmentation increases with rate overall.
	slope, _, err := stats.LinearFit(pts)
	if err != nil || slope <= 0 {
		t.Fatalf("fragmentation not increasing with rate: slope=%v err=%v", slope, err)
	}
}

func TestFig06PacketSizePDF(t *testing.T) {
	res := mustRun(t, "fig06")
	wmp := series(t, res, "Windows Media Player")
	real_ := series(t, res, "Real Player")
	peak := func(pts []stats.Point) float64 {
		best := 0.0
		for _, p := range pts {
			if p.Y > best {
				best = p.Y
			}
		}
		return best
	}
	if peak(wmp) < 2*peak(real_) {
		t.Fatalf("WMP peak density %.2f should dwarf Real's %.2f", peak(wmp), peak(real_))
	}
	// WMP mass concentrated in the 800-1000B band per the note.
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "800-1000B") {
			found = true
		}
	}
	if !found {
		t.Fatal("800-1000B note missing")
	}
}

func TestFig07NormalizedSizes(t *testing.T) {
	res := mustRun(t, "fig07")
	wmp := series(t, res, "Windows Media")
	real_ := series(t, res, "Real Player")
	mass := func(pts []stats.Point, lo, hi float64) float64 {
		sum := 0.0
		for _, p := range pts {
			if p.X >= lo && p.X <= hi {
				sum += p.Y
			}
		}
		return sum
	}
	if m := mass(wmp, 0.85, 1.15); m < 0.55 {
		t.Fatalf("WMP normalized mass near 1.0 = %.2f, want concentrated", m)
	}
	if m := mass(real_, 0.85, 1.15); m > 0.75 {
		t.Fatalf("Real normalized mass near 1.0 = %.2f, want spread", m)
	}
	if m := mass(real_, 0.55, 1.9); m < 0.9 {
		t.Fatalf("Real mass in 0.6-1.8 range = %.2f", m)
	}
}

func TestFig08InterarrivalPDF(t *testing.T) {
	res := mustRun(t, "fig08")
	wmp := series(t, res, "Windows Media Player")
	var wmpPeak float64
	for _, p := range wmp {
		if p.Y > wmpPeak {
			wmpPeak = p.Y
		}
	}
	if wmpPeak < 0.5 {
		t.Fatalf("WMP interarrival peak=%.2f, want a dominant constant interval", wmpPeak)
	}
	real_ := series(t, res, "Real Player")
	var realPeak float64
	for _, p := range real_ {
		if p.Y > realPeak {
			realPeak = p.Y
		}
	}
	if realPeak > 0.6*wmpPeak {
		t.Fatalf("Real interarrival peak=%.2f vs WMP %.2f: Real should be flatter", realPeak, wmpPeak)
	}
}

func TestFig09NormalizedInterarrivalCDF(t *testing.T) {
	res := mustRun(t, "fig09")
	wmp := series(t, res, "Windows Media Player")
	real_ := series(t, res, "Real Player")
	// WMP: steep step at 1.0 — the CDF jumps across [0.9, 1.1].
	wmpJump := stats.CDFAt(wmp, 1.1) - stats.CDFAt(wmp, 0.9)
	if wmpJump < 0.6 {
		t.Fatalf("WMP CDF jump across 1.0=%.2f, want steep (paper Fig 9)", wmpJump)
	}
	realJump := stats.CDFAt(real_, 1.1) - stats.CDFAt(real_, 0.9)
	if realJump > 0.6*wmpJump {
		t.Fatalf("Real CDF jump=%.2f vs WMP %.2f, want gradual", realJump, wmpJump)
	}
}

func TestFig10BandwidthTimeline(t *testing.T) {
	res := mustRun(t, "fig10")
	if len(res.Series) != 4 {
		t.Fatalf("series=%d, want 4 (R-h, M-h, R-l, M-l)", len(res.Series))
	}
	// Real streams end earlier than WMP streams per the notes.
	count := 0
	for _, n := range res.Notes {
		if strings.Contains(n, "Real stream lasted") {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("duration notes=%d", count)
	}
}

func TestFig11BufferingRatio(t *testing.T) {
	res := mustRun(t, "fig11")
	pts := series(t, res, "Real")
	if len(pts) != 13 {
		t.Fatalf("points=%d", len(pts))
	}
	for _, p := range pts {
		if p.X < 56 && p.Y < 2.2 {
			t.Fatalf("low-rate ratio %.2f at %.0fK, paper ~3", p.Y, p.X)
		}
		if p.X > 500 && (p.Y < 0.8 || p.Y > 1.4) {
			t.Fatalf("very-high ratio %.2f at %.0fK, paper ~1", p.Y, p.X)
		}
	}
	// Declining trend with encoding rate.
	slope, _, err := stats.LinearFit(pts)
	if err != nil || slope >= 0 {
		t.Fatalf("buffering ratio should decline with rate: slope=%v", slope)
	}
}

func TestFig12Interleaving(t *testing.T) {
	res := mustRun(t, "fig12")
	osPts := series(t, res, "Transport Layer Packets")
	appPts := series(t, res, "Application Layer Packets")
	if len(osPts) < 20 || len(appPts) < 20 {
		t.Fatalf("window points: os=%d app=%d", len(osPts), len(appPts))
	}
	// App deliveries cluster into few instants; OS deliveries into many.
	distinct := func(pts []stats.Point) int {
		seen := map[float64]bool{}
		for _, p := range pts {
			seen[p.X] = true
		}
		return len(seen)
	}
	if distinct(appPts) >= distinct(osPts)/3 {
		t.Fatalf("app instants=%d vs os instants=%d: batching invisible", distinct(appPts), distinct(osPts))
	}
}

func TestFig13FrameRateTimeline(t *testing.T) {
	res := mustRun(t, "fig13")
	if len(res.Series) != 4 {
		t.Fatalf("series=%d", len(res.Series))
	}
	// Identify the low WMP series (39.0K) and check its plateau at 13.
	var wmpLow, realLow []stats.Point
	for _, s := range res.Series {
		if strings.Contains(s.Name, "Windows") && strings.Contains(s.Name, "39.0K") {
			wmpLow = s.Points
		}
		if strings.Contains(s.Name, "Real") && strings.Contains(s.Name, "22.0K") {
			realLow = s.Points
		}
	}
	if wmpLow == nil || realLow == nil {
		t.Fatalf("low-rate series missing: %v", seriesNames(res))
	}
	if m := steadyMean(wmpLow); math.Abs(m-13) > 1.5 {
		t.Fatalf("WMP low plateau=%.1f, want 13 (paper Fig 13)", m)
	}
	if m := steadyMean(realLow); m < 17 {
		t.Fatalf("Real low plateau=%.1f, want ~19", m)
	}
}

func steadyMean(pts []stats.Point) float64 {
	if len(pts) < 10 {
		return 0
	}
	var ys []float64
	for _, p := range pts[2 : len(pts)-2] {
		ys = append(ys, p.Y)
	}
	return stats.Mean(ys)
}

func TestFig14And15FrameRates(t *testing.T) {
	for _, id := range []string{"fig14", "fig15"} {
		res := mustRun(t, id)
		if len(res.Rows) < 5 {
			t.Fatalf("%s: class rows=%d", id, len(res.Rows))
		}
		real_ := series(t, res, "Real Media")
		wmp := series(t, res, "Windows Media")
		if len(real_) != 13 || len(wmp) != 13 {
			t.Fatalf("%s: points", id)
		}
		// Class means: Real low > WMP low; both high classes ~25.
		var lowNote string
		for _, n := range res.Notes {
			if strings.Contains(n, "low-rate mean fps") {
				lowNote = n
			}
		}
		if lowNote == "" {
			t.Fatalf("%s: low-rate note missing", id)
		}
	}
	// Quantitative check on fig14's underlying points.
	res := mustRun(t, "fig14")
	real_ := series(t, res, "Real Media")
	wmp := series(t, res, "Windows Media")
	lowMean := func(pts []stats.Point) float64 {
		var ys []float64
		for _, p := range pts {
			if p.X < 110 {
				ys = append(ys, p.Y)
			}
		}
		return stats.Mean(ys)
	}
	if lowMean(real_) <= lowMean(wmp) {
		t.Fatalf("low-rate fps: real=%.1f should beat wmp=%.1f", lowMean(real_), lowMean(wmp))
	}
}

func TestSec4Generator(t *testing.T) {
	res := mustRun(t, "sec4")
	if len(res.Rows) != 4 { // measured+generated for Real and WMP
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// Each pair of rows: CBR flag must agree between measured and
	// generated.
	for i := 0; i < len(res.Rows); i += 2 {
		if res.Rows[i][6] != res.Rows[i+1][6] {
			t.Fatalf("CBR flag diverges: %v vs %v", res.Rows[i], res.Rows[i+1])
		}
	}
}

func TestAblations(t *testing.T) {
	nofrag := mustRun(t, "ablation-nofrag")
	// Capped variant's frag share cell must be 0.
	if got := nofrag.Rows[1][1]; got != "0.0%" {
		t.Fatalf("capped frag share=%q", got)
	}
	if base := nofrag.Rows[0][1]; base == "0.0%" {
		t.Fatalf("baseline lost its fragmentation")
	}

	uncapped := mustRun(t, "ablation-uncapped")
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	baseRatio := parse(uncapped.Rows[0][1])
	freeRatio := parse(uncapped.Rows[1][1])
	if baseRatio > 1.4 {
		t.Fatalf("capped ratio=%v, want ~1", baseRatio)
	}
	if freeRatio < baseRatio+0.2 {
		t.Fatalf("uncapped ratio=%v should exceed capped=%v", freeRatio, baseRatio)
	}

	noil := mustRun(t, "ablation-nointerleave")
	baseInstants := parse(noil.Rows[0][1])
	directInstants := parse(noil.Rows[1][1])
	if directInstants < 3*baseInstants {
		t.Fatalf("direct delivery instants=%v vs interleaved=%v", directInstants, baseInstants)
	}

	seq := mustRun(t, "ablation-sequential")
	if len(seq.Rows) != 4 {
		t.Fatalf("sequential rows=%d", len(seq.Rows))
	}
}

func TestExtScaling(t *testing.T) {
	res := mustRun(t, "ext-scaling")
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	// Rows: off/Real, off/WMP, on/Real, on/WMP; loss column index 2.
	offWMP, onWMP := parse(res.Rows[1][2]), parse(res.Rows[3][2])
	if offWMP < 30 {
		t.Fatalf("unscaled WMP loss=%v%%, bottleneck not binding", offWMP)
	}
	if onWMP > offWMP/2 {
		t.Fatalf("scaling did not help WMP: %v%% vs %v%%", onWMP, offWMP)
	}
	offReal, onReal := parse(res.Rows[0][2]), parse(res.Rows[2][2])
	if onReal >= offReal && offReal > 0.5 {
		t.Fatalf("scaling did not help Real: %v%% vs %v%%", onReal, offReal)
	}
}

func TestExtTCP(t *testing.T) {
	res := mustRun(t, "ext-tcp")
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	udpCV, tcpCV := parse(res.Rows[0][2]), parse(res.Rows[1][2])
	if tcpCV < 3*udpCV {
		t.Fatalf("TCP should be far burstier: cv %v vs %v", tcpCV, udpCV)
	}
	udpGap, tcpGap := parse(res.Rows[0][4]), parse(res.Rows[1][4])
	if tcpGap < 2*udpGap {
		t.Fatalf("TCP stalls should dominate: gap %v vs %v ms", tcpGap, udpGap)
	}
	// TCP never fragments; WMS over UDP does.
	if res.Rows[1][5] != "0.0%" {
		t.Fatalf("TCP fragmented: %v", res.Rows[1][5])
	}
	if res.Rows[0][5] == "0.0%" {
		t.Fatal("UDP/WMS lost its fragmentation")
	}
}

// fmtSscan parses the leading float of a table cell.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(strings.TrimSuffix(s, "%"), v)
}
