package experiments

import (
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/core"
	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
	"turbulence/internal/tcplite"
	"turbulence/internal/wms"
)

func init() {
	register("ext-tcp", "Extension (§II.D/§I): the same media workload over UDP vs TCP", extTCP)
}

// extTCP makes the paper's motivating claim measurable: §I argues that
// streaming prefers UDP because window-based transports deliver "bursty"
// rates. Both players could stream over TCP (§II.D); the paper forced UDP.
// Here the same CBR media workload (the set 1 high WMP clip) crosses the
// same mildly lossy path twice — once over the WMS UDP stack, once written
// into a tcplite connection at the encoding rate — and the two deliveries'
// turbulence is compared.
func extTCP(ctx *Context) (*Result, error) {
	clip, _ := media.FindClip(1, media.WindowsMedia, media.High) // 323.1 Kbps CBR
	const pathLoss = 0.005                                       // enough to provoke TCP recovery

	udpFlow, err := extTCPRunUDP(ctx.Seed+701, clip, pathLoss)
	if err != nil {
		return nil, err
	}
	tcpFlow, err := extTCPRunTCP(ctx.Seed+702, clip, pathLoss)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:      "ext-tcp",
		Title:   "Same media workload over UDP (WMS) vs TCP (set 1 high clip, 0.5% path loss)",
		Columns: []string{"transport", "packets", "group ia CV", "rate CV (1s)", "longest gap (ms)", "frag %"},
	}
	for _, v := range []struct {
		name string
		flow *capture.FlowTrace
	}{{"UDP (WMS)", udpFlow}, {"TCP (tcplite)", tcpFlow}} {
		prof := core.ProfileFlow(v.flow)
		res.Rows = append(res.Rows, []string{
			v.name,
			fmtInt(prof.Packets),
			fmtF(prof.InterarrivalCV),
			fmtF(rateCV(v.flow)),
			fmtF(longestGap(v.flow).Seconds() * 1000),
			fmtPct(prof.FragShare),
		})
	}
	udpProf, tcpProf := core.ProfileFlow(udpFlow), core.ProfileFlow(tcpFlow)
	res.AddNote("TCP interarrival CV %.2f vs UDP %.2f: window-based delivery is the burstier transport (paper §I)",
		tcpProf.InterarrivalCV, udpProf.InterarrivalCV)
	res.AddNote("longest delivery gap: TCP %.0f ms vs UDP %.0f ms — loss recovery stalls the ordered byte stream",
		longestGap(tcpFlow).Seconds()*1000, longestGap(udpFlow).Seconds()*1000)
	res.AddNote("TCP never IP-fragments (MSS fits the MTU); WMS over UDP fragments %.0f%% of packets", udpProf.FragShare*100)
	return res, nil
}

// extTCPPath builds the shared test path with the given loss.
func extTCPPath(seed int64, loss float64) (*netsim.Network, *netsim.Host, *netsim.Host) {
	n := netsim.New(seed)
	client := n.AddHost(inet.MakeAddr(130, 215, 10, 5))
	server := n.AddHost(inet.MakeAddr(207, 46, 1, 9))
	site, _ := core.SiteFor(1)
	specs := site.HopSpecs()
	// Concentrate the experiment's loss at the bottleneck hop.
	specs[len(specs)-1].Loss = loss
	n.ConnectDuplex(client.Addr(), server.Addr(), specs)
	return n, client, server
}

// extTCPRunUDP streams the clip via the WMS stack and returns the data
// flow from the client capture.
func extTCPRunUDP(seed int64, clip media.Clip, loss float64) (*capture.FlowTrace, error) {
	n, client, server := extTCPPath(seed, loss)
	srv := wms.NewServer(server)
	srv.Register(clip.Name(), clip)
	sniff := capture.Attach(client)
	sniff.RecvOnly = true
	p := wms.NewPlayer(client, server.Addr(), clip.Name(), 4001, 4002, wms.PlayerEvents{})
	p.Start()
	if err := n.Run(eventsim.At(clip.Duration.Seconds() + 60)); err != nil {
		return nil, err
	}
	return sniff.Trace().FlowTo(4002), nil
}

// extTCPRunTCP writes the clip's byte stream into a TCP connection at the
// encoding rate — a server streaming "over TCP" as §II.D describes — and
// returns the client-side data flow.
func extTCPRunTCP(seed int64, clip media.Clip, loss float64) (*capture.FlowTrace, error) {
	n, client, server := extTCPPath(seed, loss)
	clientStack := tcplite.NewStack(client)
	serverStack := tcplite.NewStack(server)
	sniff := capture.Attach(client)
	sniff.RecvOnly = true

	// Server: on accept, pace clip bytes into the connection.
	bytesPerTick := int(clip.EncodedBps() * 0.1 / 8)
	totalBytes := int(clip.EncodedBps() / 8 * clip.Duration.Seconds())
	serverStack.Listen(inet.PortMMSData, func(conn *tcplite.Conn) {
		sent := 0
		chunk := make([]byte, bytesPerTick)
		server.Network().Sched.Ticker(100*time.Millisecond, "tcp.mediaWriter", func(eventsim.Time) bool {
			if sent >= totalBytes || conn.State() == tcplite.Closed {
				conn.Close()
				return false
			}
			conn.Send(chunk)
			sent += len(chunk)
			return true
		})
	})
	if _, err := clientStack.Dial(4002, inet.Endpoint{Addr: server.Addr(), Port: inet.PortMMSData}, nil); err != nil {
		return nil, err
	}
	if err := n.Run(eventsim.At(clip.Duration.Seconds() + 120)); err != nil {
		return nil, err
	}
	// The data flow runs server->client from the MMS port.
	for _, ft := range sniff.Trace().SplitFlows() {
		if ft.Flow.Src.Port == inet.PortMMSData {
			return dataOnly(ft), nil
		}
	}
	return nil, errNoTCPFlow
}

var errNoTCPFlow = errTCP("ext-tcp: no TCP data flow captured")

type errTCP string

func (e errTCP) Error() string { return string(e) }

// dataOnly strips pure-ACK segments so the comparison covers media
// delivery, not control chatter.
func dataOnly(ft *capture.FlowTrace) *capture.FlowTrace {
	return ft.Where(func(r *capture.Record) bool { return r.PayloadLen > 0 })
}

// rateCV is the coefficient of variation of the one-second delivery rate
// over the flow's active middle (trimming the first and last 5 seconds).
func rateCV(ft *capture.FlowTrace) float64 {
	series := ft.BandwidthSeries(time.Second)
	if len(series) < 12 {
		return 0
	}
	var ys []float64
	for _, p := range series[5 : len(series)-5] {
		ys = append(ys, p.Y)
	}
	s := stats.Summarize(ys)
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}

// longestGap returns the maximum spacing between consecutive deliveries.
func longestGap(ft *capture.FlowTrace) time.Duration {
	var max time.Duration
	for i := 1; i < ft.Len(); i++ {
		if gap := ft.At(i).At - ft.At(i-1).At; gap > max {
			max = gap
		}
	}
	return max
}
