// Package tcplite is a compact but real TCP implementation over the
// simulated network: three-way handshake, MSS segmentation, cumulative
// acknowledgements, retransmission timeouts with SRTT estimation, fast
// retransmit on triple duplicate ACKs, and Reno-style congestion control
// (slow start, congestion avoidance, multiplicative decrease).
//
// The paper needs it twice. First, §II.D notes both players *can* stream
// over TCP (the study forces UDP). Second, §I motivates the whole study
// with the observation that streaming prefers a steady rate over "the
// bursty data rate often associated with window-based network protocols" —
// a claim the ext-tcp experiment makes measurable by streaming the same
// media workload over both transports and comparing their turbulence.
package tcplite

import (
	"errors"
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/transport"
)

// MSS is the maximum segment payload; with headers it fills the Ethernet
// MTU exactly, so TCP never IP-fragments.
const MSS = inet.DefaultMTU - inet.IPv4HeaderLen - inet.TCPHeaderLen

// Protocol tuning.
const (
	initialRTO   = time.Second
	minRTO       = 200 * time.Millisecond
	maxRTO       = 10 * time.Second
	initialCwnd  = 2 * MSS
	recvWindow   = 0xFFFF // classic no-window-scaling maximum
	dupAckThresh = 3
	maxSynRetry  = 5
)

// Errors.
var (
	ErrClosed         = errors.New("tcplite: connection closed")
	ErrInUse          = errors.New("tcplite: port in use")
	ErrConnectTimeout = errors.New("tcplite: connect timed out")
)

// Stack is the per-host TCP endpoint table. Create one per host.
type Stack struct {
	host          transport.Transport
	listeners     map[inet.Port]*Listener
	conns         map[connKey]*Conn
	nextEphemeral inet.Port

	// segFn is the bound segment consumer, created once so Reset can rebind
	// without allocating a method value.
	segFn transport.TCPHandler
}

type connKey struct {
	local  inet.Port
	remote inet.Endpoint
}

// NewStack attaches a TCP stack to a simulated host.
func NewStack(host *netsim.Host) *Stack {
	return NewStackOn(transport.NewSim(host))
}

// NewStackOn attaches a TCP stack to any transport (simulated or live).
func NewStackOn(t transport.Transport) *Stack {
	s := &Stack{
		host:          t,
		listeners:     make(map[inet.Port]*Listener),
		conns:         make(map[connKey]*Conn),
		nextEphemeral: 49152,
	}
	s.segFn = s.onSegment
	t.OnTCP(s.segFn)
	return s
}

// Reset restores the stack to its post-NewStackOn state without
// reallocating: listeners and connections clear (their retransmission
// timers were already drained by the owning scheduler's reset), the
// ephemeral port sequence rewinds, and the segment consumer rebinds on the
// freshly reset transport.
func (s *Stack) Reset() {
	clear(s.listeners)
	clear(s.conns)
	s.nextEphemeral = 49152
	s.host.OnTCP(s.segFn)
}

// Host returns the transport the stack is attached to.
func (s *Stack) Host() transport.Transport { return s.host }

// Listener accepts inbound connections on a port.
type Listener struct {
	stack  *Stack
	port   inet.Port
	accept func(*Conn)
}

// Listen starts accepting connections on port; accept runs for each new
// established connection.
func (s *Stack) Listen(port inet.Port, accept func(*Conn)) (*Listener, error) {
	if _, dup := s.listeners[port]; dup {
		return nil, ErrInUse
	}
	l := &Listener{stack: s, port: port, accept: accept}
	s.listeners[port] = l
	return l, nil
}

// Close stops accepting.
func (l *Listener) Close() { delete(l.stack.listeners, l.port) }

// State is the connection lifecycle.
type State int

// Connection states (subset of the RFC 793 machine sufficient for
// streaming workloads).
const (
	SynSent State = iota
	SynReceived
	Established
	FinWait
	Closed
)

// String names the state.
func (st State) String() string {
	switch st {
	case SynSent:
		return "syn-sent"
	case SynReceived:
		return "syn-received"
	case Established:
		return "established"
	case FinWait:
		return "fin-wait"
	default:
		return "closed"
	}
}

// Conn is one TCP connection.
type Conn struct {
	stack  *Stack
	local  inet.Endpoint
	remote inet.Endpoint
	state  State

	// Send side.
	sndBuf   []byte // bytes accepted from the application, unsent or unacked
	sndUna   uint32 // oldest unacknowledged sequence
	sndNxt   uint32 // next sequence to send
	iss      uint32 // initial send sequence
	cwnd     float64
	ssthresh float64
	dupAcks  int
	// recover is the NewReno recovery point: the highest sequence
	// outstanding when loss recovery began. Partial ACKs below it trigger
	// immediate retransmission of the next hole.
	recover   uint32
	rto       time.Duration
	srtt      time.Duration
	rttvar    time.Duration
	rtoTimer  eventsim.Timer
	rttSeq    uint32
	rttSentAt eventsim.Time
	sentFin   bool
	finSeq    uint32

	// Receive side.
	rcvNxt uint32
	irs    uint32
	ooo    map[uint32][]byte // out-of-order segments by sequence

	// Callbacks.
	onData    func(now eventsim.Time, b []byte)
	onConnect func(now eventsim.Time)
	onClose   func(now eventsim.Time)

	// Handshake retry state.
	synRetries int
	// acceptFn runs once a passively-opened connection establishes.
	acceptFn func(*Conn)
	// closeRequested defers Close issued before establishment.
	closeRequested bool

	// Stats.
	Retransmits   int
	FastRetrans   int
	Timeouts      int
	BytesSent     int
	BytesReceived int
}

// OnData registers the ordered byte-stream consumer.
func (c *Conn) OnData(fn func(now eventsim.Time, b []byte)) { c.onData = fn }

// OnClose registers the teardown notification.
func (c *Conn) OnClose(fn func(now eventsim.Time)) { c.onClose = fn }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Local and Remote identify the connection.
func (c *Conn) Local() inet.Endpoint  { return c.local }
func (c *Conn) Remote() inet.Endpoint { return c.remote }

// Cwnd exposes the congestion window in bytes (for instrumentation).
func (c *Conn) Cwnd() int { return int(c.cwnd) }

// Dial opens a connection to dst; onConnect fires when established. A zero
// localPort allocates an ephemeral port.
func (s *Stack) Dial(localPort inet.Port, dst inet.Endpoint, onConnect func(now eventsim.Time)) (*Conn, error) {
	if localPort == 0 {
		localPort = s.allocEphemeral()
	}
	key := connKey{local: localPort, remote: dst}
	if _, dup := s.conns[key]; dup {
		return nil, ErrInUse
	}
	c := s.newConn(localPort, dst)
	c.onConnect = onConnect
	c.state = SynSent
	// Deterministic ISS derived from the 4-tuple keeps runs reproducible.
	c.iss = uint32(uint16(localPort))<<16 | uint32(uint16(dst.Port))
	c.sndUna, c.sndNxt = c.iss, c.iss
	s.conns[key] = c
	c.sendSyn()
	return c, nil
}

func (s *Stack) allocEphemeral() inet.Port {
	for {
		p := s.nextEphemeral
		s.nextEphemeral++
		if s.nextEphemeral == 0 {
			s.nextEphemeral = 49152
		}
		inUse := false
		for k := range s.conns {
			if k.local == p {
				inUse = true
			}
		}
		if !inUse {
			return p
		}
	}
}

func (s *Stack) newConn(local inet.Port, remote inet.Endpoint) *Conn {
	return &Conn{
		stack:    s,
		local:    inet.Endpoint{Addr: s.host.Addr(), Port: local},
		remote:   remote,
		cwnd:     initialCwnd,
		ssthresh: 64 * 1024,
		rto:      initialRTO,
		ooo:      make(map[uint32][]byte),
	}
}

// Send queues application bytes for reliable delivery.
func (c *Conn) Send(b []byte) error {
	if c.state != Established && c.state != SynSent && c.state != SynReceived {
		return ErrClosed
	}
	c.sndBuf = append(c.sndBuf, b...)
	if c.state == Established {
		c.trySend(c.stack.host.Now())
	}
	return nil
}

// Buffered reports bytes queued but not yet acknowledged.
func (c *Conn) Buffered() int { return len(c.sndBuf) }

// Close sends FIN after the queued data drains. Closing before the
// handshake completes defers the FIN until establishment.
func (c *Conn) Close() {
	if c.state == Closed || c.state == FinWait {
		return
	}
	c.closeRequested = true
	if c.state == Established {
		c.state = FinWait
		c.trySend(c.stack.host.Now())
	}
}

// --- segment transmission ---

func (c *Conn) sendSegment(flags byte, seq uint32, payload []byte) {
	h := inet.TCPHeader{
		Seq:    seq,
		Ack:    c.rcvNxt,
		Flags:  flags,
		Window: recvWindow,
	}
	seg, err := inet.MarshalTCP(c.local.Addr, c.remote.Addr, inet.TCPHeader{
		SrcPort: c.local.Port, DstPort: c.remote.Port,
		Seq: h.Seq, Ack: h.Ack, Flags: h.Flags, Window: h.Window,
	}, payload)
	if err != nil {
		return
	}
	c.stack.host.SendTCP(c.remote.Addr, seg)
}

func (c *Conn) sendSyn() {
	if c.synRetries >= maxSynRetry {
		c.teardown(c.stack.host.Now())
		return
	}
	c.synRetries++
	flags := byte(inet.TCPSyn)
	if c.state == SynReceived {
		flags |= inet.TCPAck
	}
	c.sendSegment(flags, c.iss, nil)
	retry := c.rto * time.Duration(c.synRetries)
	c.stack.host.After(retry, "tcp.synRetry", func(eventsim.Time) {
		if c.state == SynSent || c.state == SynReceived {
			c.sendSyn()
		}
	})
}

// trySend pushes as much buffered data as the congestion window allows.
func (c *Conn) trySend(now eventsim.Time) {
	if c.state != Established && c.state != FinWait {
		return
	}
	for {
		inFlight := int(c.sndNxt - c.sndUna)
		window := int(c.cwnd)
		if window > recvWindow {
			window = recvWindow
		}
		avail := window - inFlight
		unsent := len(c.sndBuf) - inFlight
		if avail <= 0 || unsent <= 0 {
			break
		}
		n := unsent
		if n > MSS {
			n = MSS
		}
		if n > avail {
			n = avail
		}
		start := inFlight
		payload := c.sndBuf[start : start+n]
		flags := byte(inet.TCPAck)
		if start+n == len(c.sndBuf) {
			flags |= inet.TCPPsh
		}
		seq := c.sndNxt
		c.sendSegment(flags, seq, payload)
		c.BytesSent += n
		// RTT sampling: time one segment per window (Karn's algorithm:
		// never sample retransmitted data).
		if c.rttSeq == 0 {
			c.rttSeq = seq + uint32(n)
			c.rttSentAt = now
		}
		c.sndNxt += uint32(n)
		c.armRTO(now)
	}
	// FIN once everything is out.
	if c.state == FinWait && int(c.sndNxt-c.sndUna) == len(c.sndBuf) && !c.sentFin {
		c.sentFin = true
		c.finSeq = c.sndNxt
		c.sendSegment(inet.TCPFin|inet.TCPAck, c.sndNxt, nil)
		c.sndNxt++
		c.armRTO(now)
	}
}

func (c *Conn) armRTO(now eventsim.Time) {
	if !c.rtoTimer.Cancelled() {
		return
	}
	c.rtoTimer = c.stack.host.AfterArg(c.rto, "tcp.rto", onRTOStep, c)
}

func (c *Conn) cancelRTO() {
	c.stack.host.Cancel(c.rtoTimer)
	c.rtoTimer = eventsim.Timer{}
}

// onRTOStep is the static event callback of the RTO timer.
func onRTOStep(now eventsim.Time, arg any) { arg.(*Conn).onRTO(now) }

// onRTO fires when the oldest unacked segment times out: retransmit it,
// collapse the window, back off the timer.
func (c *Conn) onRTO(now eventsim.Time) {
	if c.state == Closed || c.sndUna == c.sndNxt {
		return
	}
	c.Timeouts++
	debugf("RTO", c)
	c.Retransmits++
	c.recover = c.sndNxt
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2*MSS {
		c.ssthresh = 2 * MSS
	}
	c.cwnd = initialCwnd
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	c.rttSeq = 0 // Karn: invalidate the outstanding sample
	c.retransmitFirst(now)
	c.rtoTimer = eventsim.Timer{}
	c.armRTO(now)
}

// retransmitFirst resends the oldest unacknowledged segment.
func (c *Conn) retransmitFirst(now eventsim.Time) {
	if c.sentFin && c.sndUna == c.finSeq {
		c.sendSegment(inet.TCPFin|inet.TCPAck, c.finSeq, nil)
		return
	}
	n := len(c.sndBuf)
	if n > MSS {
		n = MSS
	}
	if n == 0 {
		return
	}
	c.sendSegment(inet.TCPAck, c.sndUna, c.sndBuf[:n])
}

// --- segment reception ---

func (s *Stack) onSegment(now eventsim.Time, from inet.Addr, segment []byte) {
	h, payload, err := inet.ParseTCP(from, s.host.Addr(), segment)
	if err != nil {
		return
	}
	key := connKey{local: h.DstPort, remote: inet.Endpoint{Addr: from, Port: h.SrcPort}}
	if c, ok := s.conns[key]; ok {
		c.onSegmentIn(now, h, payload)
		return
	}
	// New inbound connection?
	if h.HasFlag(inet.TCPSyn) && !h.HasFlag(inet.TCPAck) {
		l := s.listeners[h.DstPort]
		if l == nil {
			return
		}
		c := s.newConn(h.DstPort, key.remote)
		c.state = SynReceived
		c.irs = h.Seq
		c.rcvNxt = h.Seq + 1
		c.iss = h.Seq ^ 0x5A5A5A5A // deterministic, distinct from peer
		c.sndUna, c.sndNxt = c.iss, c.iss+1
		c.acceptFn = l.accept
		s.conns[key] = c
		c.sendSegment(inet.TCPSyn|inet.TCPAck, c.iss, nil)
	}
}

func (c *Conn) onSegmentIn(now eventsim.Time, h inet.TCPHeader, payload []byte) {
	switch c.state {
	case SynSent:
		if h.HasFlag(inet.TCPSyn|inet.TCPAck) && h.Ack == c.iss+1 {
			c.irs = h.Seq
			c.rcvNxt = h.Seq + 1
			c.sndUna = h.Ack
			c.sndNxt = h.Ack
			c.state = Established
			c.sendSegment(inet.TCPAck, c.sndNxt, nil)
			if c.onConnect != nil {
				c.onConnect(now)
			}
			if c.closeRequested {
				c.state = FinWait
			}
			c.trySend(now)
		}
		return
	case SynReceived:
		if h.HasFlag(inet.TCPAck) && h.Ack == c.iss+1 {
			c.sndUna = h.Ack
			c.state = Established
			if c.acceptFn != nil {
				c.acceptFn(c)
				c.acceptFn = nil
			}
		}
		// Data may ride on the handshake-completing segment: fall through.
	case Closed:
		return
	}
	if c.state != Established && c.state != FinWait && c.state != SynReceived {
		return
	}
	if h.HasFlag(inet.TCPAck) {
		c.processAck(now, h.Ack)
	}
	if len(payload) > 0 {
		c.processData(now, h.Seq, payload)
	}
	if h.HasFlag(inet.TCPFin) && h.Seq == c.rcvNxt {
		c.rcvNxt++
		c.sendSegment(inet.TCPAck, c.sndNxt, nil)
		c.teardown(now)
	}
}

// processAck advances the send window and drives congestion control.
func (c *Conn) processAck(now eventsim.Time, ack uint32) {
	if ack == c.sndUna && c.sndNxt != c.sndUna {
		// Duplicate ACK.
		c.dupAcks++
		if c.dupAcks == dupAckThresh {
			// Fast retransmit + multiplicative decrease (NewReno entry).
			c.FastRetrans++
			c.Retransmits++
			c.ssthresh = c.cwnd / 2
			if c.ssthresh < 2*MSS {
				c.ssthresh = 2 * MSS
			}
			c.cwnd = c.ssthresh
			c.recover = c.sndNxt
			c.retransmitFirst(now)
			debugf("fast-rtx", c)
		}
		return
	}
	if ack <= c.sndUna || ack > c.sndNxt {
		return
	}
	// RTT sample (only if the timed segment was not retransmitted).
	if c.rttSeq != 0 && ack >= c.rttSeq {
		c.updateRTT(now.Sub(c.rttSentAt))
		c.rttSeq = 0
	}
	acked := int(ack - c.sndUna)
	finAcked := c.sentFin && ack == c.finSeq+1
	dataAcked := acked
	if finAcked {
		dataAcked--
	}
	if dataAcked > len(c.sndBuf) {
		dataAcked = len(c.sndBuf)
	}
	c.sndBuf = c.sndBuf[dataAcked:]
	c.sndUna = ack
	c.dupAcks = 0
	// Congestion control: slow start below ssthresh, else AIMD.
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(dataAcked)
	} else {
		c.cwnd += float64(MSS) * float64(MSS) / c.cwnd
	}
	// Progress undoes exponential RTO backoff (RFC 6298 §5.7 behaviour);
	// without this, multi-loss windows stall behind a 10-second timer.
	if c.srtt > 0 {
		c.rto = c.srtt + 4*c.rttvar
		if c.rto < minRTO {
			c.rto = minRTO
		}
	}
	// NewReno partial ACK: still inside a recovery window, so the next
	// hole is already known lost — retransmit it now rather than waiting
	// for three more duplicate ACKs or a timeout.
	if c.recover != 0 && ack < c.recover && c.sndUna != c.sndNxt {
		c.Retransmits++
		c.retransmitFirst(now)
	}
	if c.recover != 0 && ack >= c.recover {
		c.recover = 0
	}
	c.cancelRTO()
	if c.sndUna != c.sndNxt {
		c.armRTO(now)
	}
	if finAcked {
		c.teardown(now)
		return
	}
	c.trySend(now)
}

// processData delivers in-order bytes and buffers out-of-order segments.
func (c *Conn) processData(now eventsim.Time, seq uint32, payload []byte) {
	switch {
	case seq == c.rcvNxt:
		c.deliver(now, payload)
		// Drain any contiguous out-of-order segments.
		for {
			next, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.deliver(now, next)
		}
	case seq > c.rcvNxt:
		if len(c.ooo) < 256 {
			c.ooo[seq] = append([]byte(nil), payload...)
		}
	}
	// ACK everything we have (duplicate ACKs signal gaps to the sender).
	c.sendSegment(inet.TCPAck, c.sndNxt, nil)
}

func (c *Conn) deliver(now eventsim.Time, b []byte) {
	c.rcvNxt += uint32(len(b))
	c.BytesReceived += len(b)
	if c.onData != nil {
		c.onData(now, b)
	}
}

// updateRTT runs the Jacobson/Karels estimator.
func (c *Conn) updateRTT(sample time.Duration) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	debugf("rtt-sample", c)
	if c.rto < minRTO {
		c.rto = minRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}

// SRTT exposes the smoothed RTT estimate.
func (c *Conn) SRTT() time.Duration { return c.srtt }

func (c *Conn) teardown(now eventsim.Time) {
	if c.state == Closed {
		return
	}
	c.state = Closed
	c.cancelRTO()
	delete(c.stack.conns, connKey{local: c.local.Port, remote: c.remote})
	if c.onClose != nil {
		c.onClose(now)
	}
}

// String describes the connection.
func (c *Conn) String() string {
	return fmt.Sprintf("tcp %s -> %s %s cwnd=%d", c.local, c.remote, c.state, int(c.cwnd))
}

// debugHook, when set, observes protocol events (tests only).
var debugHook func(event string, c *Conn)

func debugf(event string, c *Conn) {
	if debugHook != nil {
		debugHook(event, c)
	}
}
