package tcplite

import (
	"bytes"
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/transport"
)

var (
	clientAddr = inet.MakeAddr(130, 215, 10, 5)
	serverAddr = inet.MakeAddr(207, 46, 1, 9)
)

func buildNet(t *testing.T, seed int64, loss float64, bw float64) (*netsim.Network, *Stack, *Stack) {
	t.Helper()
	n := netsim.New(seed)
	c := n.AddHost(clientAddr)
	s := n.AddHost(serverAddr)
	specs := []netsim.HopSpec{
		{Addr: inet.MakeAddr(10, 7, 0, 1), Bandwidth: 10e6, PropDelay: 3 * time.Millisecond},
		{Addr: inet.MakeAddr(10, 7, 0, 2), Bandwidth: bw, PropDelay: 10 * time.Millisecond, Loss: loss},
		{Addr: inet.MakeAddr(10, 7, 0, 3), Bandwidth: 45e6, PropDelay: 3 * time.Millisecond},
	}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	return n, NewStack(c), NewStack(s)
}

func TestHandshakeAndTransfer(t *testing.T) {
	n, cs, ss := buildNet(t, 1, 0, 10e6)
	var received bytes.Buffer
	var serverConn *Conn
	ss.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnData(func(_ eventsim.Time, b []byte) { received.Write(b) })
	})
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var connected bool
	conn, err := cs.Dial(0, inet.Endpoint{Addr: serverAddr, Port: 80}, func(eventsim.Time) {
		connected = true
	})
	if err != nil {
		t.Fatal(err)
	}
	conn.Send(payload)
	n.Run(eventsim.At(30))
	if !connected {
		t.Fatal("never connected")
	}
	if serverConn == nil || serverConn.State() != Established {
		t.Fatal("server side not established")
	}
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatalf("received %d bytes, want %d, equal=%t",
			received.Len(), len(payload), bytes.Equal(received.Bytes(), payload))
	}
	if conn.Retransmits != 0 {
		t.Fatalf("retransmits on a clean path: %d", conn.Retransmits)
	}
	if conn.SRTT() < 30*time.Millisecond || conn.SRTT() > 60*time.Millisecond {
		t.Fatalf("SRTT=%v, path RTT ~32ms + queueing", conn.SRTT())
	}
}

func TestReliableUnderLoss(t *testing.T) {
	n, cs, ss := buildNet(t, 2, 0.03, 10e6)
	var received bytes.Buffer
	ss.Listen(80, func(c *Conn) {
		c.OnData(func(_ eventsim.Time, b []byte) { received.Write(b) })
	})
	payload := make([]byte, 300_000)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	conn, err := cs.Dial(0, inet.Endpoint{Addr: serverAddr, Port: 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.Send(payload)
	n.Run(eventsim.At(300))
	if !bytes.Equal(received.Bytes(), payload) {
		t.Fatalf("lossy transfer corrupt: got %d bytes want %d", received.Len(), len(payload))
	}
	if conn.Retransmits == 0 {
		t.Fatal("no retransmissions on a 3% lossy path")
	}
	if conn.FastRetrans == 0 {
		t.Fatal("fast retransmit never triggered")
	}
}

func TestCongestionControlRespectsBottleneck(t *testing.T) {
	// Through a 1 Mbps bottleneck, a bulk transfer must pace itself: its
	// goodput approaches but does not exceed the link rate.
	n, cs, ss := buildNet(t, 3, 0, 1e6)
	var lastByteAt eventsim.Time
	var got int
	ss.Listen(80, func(c *Conn) {
		c.OnData(func(now eventsim.Time, b []byte) {
			got += len(b)
			lastByteAt = now
		})
	})
	payload := make([]byte, 1_000_000) // 8 Mbit through 1 Mbps ~ 8s minimum
	conn, _ := cs.Dial(0, inet.Endpoint{Addr: serverAddr, Port: 80}, nil)
	conn.Send(payload)
	n.Run(eventsim.At(120))
	if got != len(payload) {
		t.Fatalf("transferred %d/%d", got, len(payload))
	}
	rate := float64(got*8) / lastByteAt.Seconds()
	if rate > 1.05e6 {
		t.Fatalf("goodput %v exceeds the bottleneck", rate)
	}
	if rate < 0.5e6 {
		t.Fatalf("goodput %v too low; window never opened", rate)
	}
}

func TestCloseHandshake(t *testing.T) {
	n, cs, ss := buildNet(t, 4, 0, 10e6)
	var serverClosed, clientClosed bool
	var received int
	ss.Listen(80, func(c *Conn) {
		c.OnData(func(_ eventsim.Time, b []byte) { received += len(b) })
		c.OnClose(func(eventsim.Time) { serverClosed = true })
	})
	conn, _ := cs.Dial(0, inet.Endpoint{Addr: serverAddr, Port: 80}, nil)
	conn.OnClose(func(eventsim.Time) { clientClosed = true })
	conn.Send(make([]byte, 5000))
	conn.Close()
	n.Run(eventsim.At(30))
	if received != 5000 {
		t.Fatalf("short delivery before close: %d", received)
	}
	if !serverClosed || !clientClosed {
		t.Fatalf("close callbacks: server=%t client=%t", serverClosed, clientClosed)
	}
	if conn.State() != Closed {
		t.Fatalf("client state=%v", conn.State())
	}
	if err := conn.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

func TestConnectTimeoutToNowhere(t *testing.T) {
	n := netsim.New(5)
	c := n.AddHost(clientAddr)
	cs := NewStack(c)
	var closed bool
	conn, err := cs.Dial(0, inet.Endpoint{Addr: serverAddr, Port: 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnClose(func(eventsim.Time) { closed = true })
	n.Run(eventsim.At(120))
	if !closed || conn.State() != Closed {
		t.Fatalf("unreachable dial never gave up: %v", conn.State())
	}
}

func TestListenerErrors(t *testing.T) {
	n, cs, ss := buildNet(t, 6, 0, 10e6)
	_ = n
	if _, err := ss.Listen(80, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Listen(80, func(*Conn) {}); err != ErrInUse {
		t.Fatalf("duplicate listen: %v", err)
	}
	// Dial to a non-listening port gets no reply and eventually dies.
	conn, _ := cs.Dial(0, inet.Endpoint{Addr: serverAddr, Port: 81}, nil)
	n.Run(eventsim.At(120))
	if conn.State() != Closed {
		t.Fatalf("dial to closed port: %v", conn.State())
	}
}

func TestSegmentsNeverFragment(t *testing.T) {
	n, cs, ss := buildNet(t, 7, 0, 10e6)
	ss.Listen(80, func(c *Conn) { c.OnData(func(eventsim.Time, []byte) {}) })
	frags := 0
	ss.Host().(*transport.Sim).Host().Tap(func(_ eventsim.Time, dir netsim.Direction, d *inet.Datagram) {
		if dir == netsim.Recv && d.Header.IsFragment() {
			frags++
		}
	})
	conn, _ := cs.Dial(0, inet.Endpoint{Addr: serverAddr, Port: 80}, nil)
	conn.Send(make([]byte, 200_000))
	n.Run(eventsim.At(60))
	if frags != 0 {
		t.Fatalf("TCP produced %d IP fragments; MSS must fit the MTU", frags)
	}
}

func TestTwoConnectionsShareStack(t *testing.T) {
	n, cs, ss := buildNet(t, 8, 0, 10e6)
	got := map[inet.Port]int{}
	ss.Listen(80, func(c *Conn) {
		local := c.Remote().Port
		c.OnData(func(_ eventsim.Time, b []byte) { got[local] += len(b) })
	})
	c1, _ := cs.Dial(1001, inet.Endpoint{Addr: serverAddr, Port: 80}, nil)
	c2, _ := cs.Dial(1002, inet.Endpoint{Addr: serverAddr, Port: 80}, nil)
	c1.Send(make([]byte, 40_000))
	c2.Send(make([]byte, 60_000))
	n.Run(eventsim.At(60))
	if got[1001] != 40_000 || got[1002] != 60_000 {
		t.Fatalf("demux broken: %v", got)
	}
}

func TestDialErrors(t *testing.T) {
	_, cs, _ := buildNet(t, 9, 0, 10e6)
	if _, err := cs.Dial(1001, inet.Endpoint{Addr: serverAddr, Port: 80}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Dial(1001, inet.Endpoint{Addr: serverAddr, Port: 80}, nil); err != ErrInUse {
		t.Fatalf("duplicate dial: %v", err)
	}
}

func TestStateStrings(t *testing.T) {
	for _, st := range []State{SynSent, SynReceived, Established, FinWait, Closed} {
		if st.String() == "" {
			t.Fatal("state string")
		}
	}
	_, cs, _ := buildNet(t, 10, 0, 10e6)
	conn, _ := cs.Dial(0, inet.Endpoint{Addr: serverAddr, Port: 80}, nil)
	if conn.String() == "" || conn.Local().Addr != clientAddr || conn.Cwnd() <= 0 {
		t.Fatal("accessors")
	}
	if conn.Buffered() != 0 {
		t.Fatal("fresh conn buffered")
	}
}
