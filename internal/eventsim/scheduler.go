package eventsim

import (
	"errors"
	"fmt"
)

// Event is a unit of scheduled work. The callback runs exactly once, at the
// event's due time, unless the event is cancelled first. Events are owned
// and recycled by their Scheduler; model code holds Timer handles, never
// bare events.
type Event struct {
	when  Time
	seq   uint64 // tiebreak: FIFO among events at the same instant
	index int32  // heap index; -1 once removed
	gen   uint32 // incremented on every recycle; validates Timer handles
	name  string

	// Exactly one of fn / afn is set. The afn+arg form lets hot paths
	// schedule work without allocating a closure per event.
	fn  func(now Time)
	afn func(now Time, arg any)
	arg any
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and behaves as an already-fired event. Because events are pooled,
// the handle carries the generation it was issued at: a stale handle
// (fired or cancelled event, possibly recycled since) is detected and
// ignored rather than cancelling an unrelated event.
type Timer struct {
	e   *Event
	gen uint32
}

// Cancelled reports whether the timer's event is no longer pending (fired,
// cancelled, or never scheduled).
func (t Timer) Cancelled() bool { return t.e == nil || t.e.gen != t.gen }

// When returns the simulated time the event is due (zero if no longer
// pending).
func (t Timer) When() Time {
	if t.Cancelled() {
		return 0
	}
	return t.e.when
}

// Name returns the diagnostic label given at scheduling time ("" if no
// longer pending).
func (t Timer) Name() string {
	if t.Cancelled() {
		return ""
	}
	return t.e.name
}

// ErrStopped is returned by Run when the simulation was halted by Stop
// rather than by draining the event queue or reaching the horizon.
var ErrStopped = errors.New("eventsim: stopped")

// ErrInterrupted is returned by Run when the interrupt poll installed via
// SetInterrupt reported true between events (typically: a context was
// cancelled outside the simulation).
var ErrInterrupted = errors.New("eventsim: interrupted")

// interruptStride is how many events fire between interrupt polls. The
// poll may be as costly as a context.Context.Err call, so it stays off the
// per-event hot path; at simulation speed (millions of events per second of
// wall clock) a poll every 2048 events still aborts within microseconds.
const interruptStride = 2048

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all model code runs inside event callbacks on one
// goroutine, which is what makes runs deterministic. (Concurrency in this
// repository happens one level up: independent experiment runs each own a
// private Scheduler and fan out across OS threads.)
//
// The pending queue is a 4-ary heap: shallower than a binary heap, so the
// common churn of scheduling and firing touches fewer cache lines per
// operation. Fired and cancelled events return to a free list, making the
// steady-state schedule/fire cycle allocation-free.
type Scheduler struct {
	now       Time
	queue     []*Event
	free      []*Event
	seq       uint64
	stopped   bool
	fired     uint64
	peak      int
	interrupt func() bool
}

// NewScheduler returns a scheduler positioned at the epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now implements Clock.
func (s *Scheduler) Now() Time { return s.now }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Fired reports how many events have run so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Scheduled reports how many events have ever been scheduled. Together
// with Fired it gives a cheap liveness meter: a large standing gap means
// timers are piling up faster than they run.
func (s *Scheduler) Scheduled() uint64 { return s.seq }

// PeakQueue reports the high-water pending-event count — the deepest the
// heap has ever been. Deterministic for a given seed, so it doubles as a
// regression canary for scheduling blowups.
func (s *Scheduler) PeakQueue() int { return s.peak }

// alloc takes an event from the free list, refilling it in batches so cold
// starts amortise to one allocation per 64 events.
func (s *Scheduler) alloc() *Event {
	if len(s.free) == 0 {
		batch := make([]Event, 64)
		for i := range batch {
			s.free = append(s.free, &batch[i])
		}
	}
	e := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return e
}

// release invalidates outstanding Timer handles to e and returns it to the
// free list.
func (s *Scheduler) release(e *Event) {
	e.gen++
	e.index = -1
	e.name = ""
	e.fn = nil
	e.afn = nil
	e.arg = nil
	s.free = append(s.free, e)
}

func (s *Scheduler) schedule(when Time, name string, fn func(now Time), afn func(now Time, arg any), arg any) Timer {
	if when < s.now {
		panic(fmt.Sprintf("eventsim: scheduling %q at %v, before now %v", name, when, s.now))
	}
	e := s.alloc()
	e.when = when
	e.seq = s.seq
	e.name = name
	e.fn = fn
	e.afn = afn
	e.arg = arg
	s.seq++
	s.push(e)
	return Timer{e: e, gen: e.gen}
}

// At schedules fn to run at absolute time when. Scheduling in the past
// (before Now) panics: the simulation cannot rewind.
func (s *Scheduler) At(when Time, name string, fn func(now Time)) Timer {
	return s.schedule(when, name, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, name string, fn func(now Time)) Timer {
	CheckNonNegative(d)
	return s.At(s.now.Add(d), name, fn)
}

// AtArg schedules fn(now, arg) at absolute time when. Passing context via
// arg instead of closing over it keeps hot paths free of per-event closure
// allocations; fn should be a static function.
func (s *Scheduler) AtArg(when Time, name string, fn func(now Time, arg any), arg any) Timer {
	return s.schedule(when, name, nil, fn, arg)
}

// AfterArg schedules fn(now, arg) to run d after the current time.
func (s *Scheduler) AfterArg(d Duration, name string, fn func(now Time, arg any), arg any) Timer {
	CheckNonNegative(d)
	return s.AtArg(s.now.Add(d), name, fn, arg)
}

// Cancel removes a pending event. Cancelling a timer whose event already
// fired or was already cancelled is a no-op, even if the underlying event
// has since been recycled for other work.
func (s *Scheduler) Cancel(t Timer) {
	if t.Cancelled() {
		return
	}
	s.remove(int(t.e.index))
	s.release(t.e)
}

// Step runs the single earliest pending event, advancing the clock to its
// due time. It reports false if the queue was empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.popMin()
	s.now = e.when
	s.fired++
	fn, afn, arg := e.fn, e.afn, e.arg
	s.release(e)
	if afn != nil {
		afn(s.now, arg)
	} else if fn != nil {
		fn(s.now)
	}
	return true
}

// NextEventAt reports the due time of the earliest pending event. The
// second result is false when the queue is empty. This is the peek a
// wall-clock-driven loop needs: drain events due by now with Step, then
// sleep exactly until the next one (or until external input arrives).
func (s *Scheduler) NextEventAt() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].when, true
}

// SetInterrupt installs a poll function Run consults between events, every
// interruptStride firings. A true return aborts Run with ErrInterrupted,
// leaving the pending queue intact. Pass nil to clear. This is the
// cooperative-cancellation seam the Runner uses to abort a simulation
// mid-run when its context is cancelled.
func (s *Scheduler) SetInterrupt(fn func() bool) { s.interrupt = fn }

// Run executes events until the queue drains or the clock passes horizon
// (horizon <= 0 means no horizon). It returns ErrStopped if Stop was called
// from inside a callback, and ErrInterrupted if an installed interrupt poll
// fired.
func (s *Scheduler) Run(horizon Time) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		if s.interrupt != nil && s.fired%interruptStride == 0 && s.interrupt() {
			return ErrInterrupted
		}
		if horizon > 0 && s.queue[0].when > horizon {
			s.now = horizon
			return nil
		}
		s.Step()
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunUntilIdle executes events until none remain, with no horizon.
func (s *Scheduler) RunUntilIdle() error { return s.Run(0) }

// Stop halts Run after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Advance moves the clock forward by d without running events, panicking if
// doing so would skip over a pending event. It exists for tests that need
// to position the clock between events.
func (s *Scheduler) Advance(d Duration) {
	CheckNonNegative(d)
	target := s.now.Add(d)
	if len(s.queue) > 0 && s.queue[0].when < target {
		panic(fmt.Sprintf("eventsim: Advance(%v) would skip event %q at %v", d, s.queue[0].name, s.queue[0].when))
	}
	s.now = target
}

// Ticker invokes fn every interval starting at the next interval boundary
// from now, until the returned stop function is called or fn returns false.
func (s *Scheduler) Ticker(interval Duration, name string, fn func(now Time) bool) (stop func()) {
	if interval <= 0 {
		panic("eventsim: Ticker interval must be positive")
	}
	var tm Timer
	stopped := false
	var tick func(now Time)
	tick = func(now Time) {
		if stopped {
			return
		}
		if !fn(now) {
			stopped = true
			return
		}
		tm = s.After(interval, name, tick)
	}
	tm = s.After(interval, name, tick)
	return func() {
		stopped = true
		s.Cancel(tm)
	}
}

// --- 4-ary heap on s.queue, ordered by (when, seq) ---

func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(e *Event) {
	e.index = int32(len(s.queue))
	s.queue = append(s.queue, e)
	if len(s.queue) > s.peak {
		s.peak = len(s.queue)
	}
	s.siftUp(len(s.queue) - 1)
}

func (s *Scheduler) popMin() *Event {
	q := s.queue
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[0].index = 0
	q[n] = nil
	s.queue = q[:n]
	if n > 0 {
		s.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at heap position i.
func (s *Scheduler) remove(i int) {
	q := s.queue
	n := len(q) - 1
	e := q[i]
	if i != n {
		q[i] = q[n]
		q[i].index = int32(i)
	}
	q[n] = nil
	s.queue = q[:n]
	if i < n {
		s.siftDown(i)
		s.siftUp(i)
	}
	e.index = -1
}

func (s *Scheduler) siftUp(i int) {
	q := s.queue
	e := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = int32(i)
		i = parent
	}
	q[i] = e
	e.index = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	q := s.queue
	n := len(q)
	e := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(q[c], q[min]) {
				min = c
			}
		}
		if !eventLess(q[min], e) {
			break
		}
		q[i] = q[min]
		q[i].index = int32(i)
		i = min
	}
	q[i] = e
	e.index = int32(i)
}
