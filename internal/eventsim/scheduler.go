package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Event is a unit of scheduled work. The callback runs exactly once, at the
// event's due time, unless the event is cancelled first.
type Event struct {
	when     Time
	seq      uint64 // tiebreak: FIFO among events at the same instant
	index    int    // heap index; -1 once removed
	callback func(now Time)
	name     string
}

// When returns the simulated time the event is due.
func (e *Event) When() Time { return e.when }

// Name returns the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Cancelled reports whether the event has been removed from its scheduler
// (either cancelled or already fired).
func (e *Event) Cancelled() bool { return e.index < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ErrStopped is returned by Run when the simulation was halted by Stop
// rather than by draining the event queue or reaching the horizon.
var ErrStopped = errors.New("eventsim: stopped")

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all model code runs inside event callbacks on one
// goroutine, which is what makes runs deterministic.
type Scheduler struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// NewScheduler returns a scheduler positioned at the epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now implements Clock.
func (s *Scheduler) Now() Time { return s.now }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Fired reports how many events have run so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute time when. Scheduling in the past
// (before Now) panics: the simulation cannot rewind.
func (s *Scheduler) At(when Time, name string, fn func(now Time)) *Event {
	if when < s.now {
		panic(fmt.Sprintf("eventsim: scheduling %q at %v, before now %v", name, when, s.now))
	}
	e := &Event{when: when, seq: s.seq, callback: fn, name: name}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, name string, fn func(now Time)) *Event {
	CheckNonNegative(d)
	return s.At(s.now.Add(d), name, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	e.callback = nil
}

// Step runs the single earliest pending event, advancing the clock to its
// due time. It reports false if the queue was empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.when
	s.fired++
	cb := e.callback
	e.callback = nil
	if cb != nil {
		cb(s.now)
	}
	return true
}

// Run executes events until the queue drains or the clock passes horizon
// (horizon <= 0 means no horizon). It returns ErrStopped if Stop was called
// from inside a callback.
func (s *Scheduler) Run(horizon Time) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		if horizon > 0 && s.queue[0].when > horizon {
			s.now = horizon
			return nil
		}
		s.Step()
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunUntilIdle executes events until none remain, with no horizon.
func (s *Scheduler) RunUntilIdle() error { return s.Run(0) }

// Stop halts Run after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Advance moves the clock forward by d without running events, panicking if
// doing so would skip over a pending event. It exists for tests that need
// to position the clock between events.
func (s *Scheduler) Advance(d Duration) {
	CheckNonNegative(d)
	target := s.now.Add(d)
	if len(s.queue) > 0 && s.queue[0].when < target {
		panic(fmt.Sprintf("eventsim: Advance(%v) would skip event %q at %v", d, s.queue[0].name, s.queue[0].when))
	}
	s.now = target
}

// Ticker invokes fn every interval starting at the next interval boundary
// from now, until the returned stop function is called or fn returns false.
func (s *Scheduler) Ticker(interval Duration, name string, fn func(now Time) bool) (stop func()) {
	if interval <= 0 {
		panic("eventsim: Ticker interval must be positive")
	}
	var ev *Event
	stopped := false
	var tick func(now Time)
	tick = func(now Time) {
		if stopped {
			return
		}
		if !fn(now) {
			stopped = true
			return
		}
		ev = s.After(interval, name, tick)
	}
	ev = s.After(interval, name, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
