package eventsim

import (
	"errors"
	"fmt"
)

// Event is a unit of scheduled work. The callback runs exactly once, at the
// event's due time, unless the event is cancelled first. Events are owned
// and recycled by their Scheduler; model code holds Timer handles, never
// bare events.
type Event struct {
	when  Time
	seq   uint64 // tiebreak: FIFO among events at the same instant
	index int32  // position in heap or bucket; -1 removed; -2 in-flight
	slot  int32  // wheel bucket index; -1 when heap-resident
	gen   uint32 // incremented on every recycle; validates Timer handles
	name  string

	// Exactly one of fn / afn is set. The afn+arg form lets hot paths
	// schedule work without allocating a closure per event.
	fn  func(now Time)
	afn func(now Time, arg any)
	arg any
}

// inFlight marks an event popped into the current dispatch batch but not yet
// fired. Such events are in no queue, so Cancel must neutralise them in
// place rather than remove them.
const inFlight = -2

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and behaves as an already-fired event. Because events are pooled,
// the handle carries the generation it was issued at: a stale handle
// (fired or cancelled event, possibly recycled since) is detected and
// ignored rather than cancelling an unrelated event.
type Timer struct {
	e   *Event
	gen uint32
}

// Cancelled reports whether the timer's event is no longer pending (fired,
// cancelled, or never scheduled).
func (t Timer) Cancelled() bool { return t.e == nil || t.e.gen != t.gen }

// When returns the simulated time the event is due (zero if no longer
// pending).
func (t Timer) When() Time {
	if t.Cancelled() {
		return 0
	}
	return t.e.when
}

// Name returns the diagnostic label given at scheduling time ("" if no
// longer pending).
func (t Timer) Name() string {
	if t.Cancelled() {
		return ""
	}
	return t.e.name
}

// ErrStopped is returned by Run when the simulation was halted by Stop
// rather than by draining the event queue or reaching the horizon.
var ErrStopped = errors.New("eventsim: stopped")

// ErrInterrupted is returned by Run when the interrupt poll installed via
// SetInterrupt reported true between events (typically: a context was
// cancelled outside the simulation).
var ErrInterrupted = errors.New("eventsim: interrupted")

// interruptStride is how many events fire between interrupt polls. The
// poll may be as costly as a context.Context.Err call, so it stays off the
// per-event hot path; at simulation speed (millions of events per second of
// wall clock) a poll every 2048 events still aborts within microseconds.
const interruptStride = 2048

// eventQueue is the pending-set abstraction behind the Scheduler: a 4-ary
// heap by default, or a hierarchical timing wheel when dense short-horizon
// timers dominate (EnableWheel). Both order events by (when, seq), so the
// Scheduler's observable firing order is identical regardless of backend.
type eventQueue interface {
	push(e *Event)
	// peek returns the earliest pending event without removing it, or nil.
	peek() *Event
	// popMin removes and returns the earliest pending event, or nil.
	popMin() *Event
	// popRun removes every event sharing the earliest due time, appending
	// them to batch in (when, seq) order. This is the batched-dispatch
	// seam: the wheel extracts a whole same-timestamp run in one bucket
	// scan instead of one heap pop per event.
	popRun(batch []*Event) []*Event
	// remove deletes a specific pending event (Cancel path).
	remove(e *Event)
	len() int
	// reset restores the post-construction state, retaining backing
	// arrays. The queue must already be empty.
	reset()
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all model code runs inside event callbacks on one
// goroutine, which is what makes runs deterministic. (Concurrency in this
// repository happens one level up: independent experiment runs each own a
// private Scheduler and fan out across OS threads.)
//
// The pending queue is a 4-ary heap by default: shallower than a binary
// heap, so the common churn of scheduling and firing touches fewer cache
// lines per operation. EnableWheel swaps in a hierarchical timing wheel for
// dense short-horizon workloads; firing order is identical. Fired and
// cancelled events return to a free list, making the steady-state
// schedule/fire cycle allocation-free.
type Scheduler struct {
	now       Time
	q         eventQueue
	heap      heapQueue // default backend; retained across EnableWheel for Reset reuse
	wheel     *wheelQueue
	free      []*Event
	batch     []*Event // reused same-timestamp dispatch buffer
	seq       uint64
	stopped   bool
	fired     uint64
	peak      int
	interrupt func() bool
}

// NewScheduler returns a scheduler positioned at the epoch.
func NewScheduler() *Scheduler {
	s := &Scheduler{}
	s.q = &s.heap
	return s
}

// EnableWheel switches the pending queue to a hierarchical timing wheel:
// near-future events hash into fixed-width buckets (granularity wide, slots
// of them), far-future events overflow to a 4-ary heap and cascade into
// buckets as the window advances. Firing order is identical to the heap —
// (when, seq) — the wheel only changes the constant factor for dense
// short-horizon timer workloads. Zero arguments select the defaults
// (250µs × 1024 slots ≈ a 256ms window). It panics if events are pending:
// the backend may only change while the queue is empty.
func (s *Scheduler) EnableWheel(granularity Duration, slots int) {
	if s.q.len() != 0 {
		panic("eventsim: EnableWheel with pending events")
	}
	if granularity <= 0 {
		granularity = defaultWheelGranularity
	}
	if slots <= 0 {
		slots = defaultWheelSlots
	}
	if s.wheel == nil || s.wheel.granularity != granularity || len(s.wheel.buckets) != slots {
		s.wheel = newWheelQueue(granularity, slots)
	}
	s.q = s.wheel
}

// WheelEnabled reports whether the timing-wheel backend is active.
func (s *Scheduler) WheelEnabled() bool { return s.q == eventQueue(s.wheel) && s.wheel != nil }

// Now implements Clock.
func (s *Scheduler) Now() Time { return s.now }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return s.q.len() }

// Fired reports how many events have run so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Scheduled reports how many events have ever been scheduled. Together
// with Fired it gives a cheap liveness meter: a large standing gap means
// timers are piling up faster than they run.
func (s *Scheduler) Scheduled() uint64 { return s.seq }

// PeakQueue reports the high-water pending-event count — the deepest the
// queue has ever been. Deterministic for a given seed, so it doubles as a
// regression canary for scheduling blowups. Reset(nil) zeroes it along
// with the other per-run counters, so under testbed reuse each run reports
// its own high-water mark, not the maximum across every run so far.
func (s *Scheduler) PeakQueue() int { return s.peak }

// WheelPeak reports the high-water bucket occupancy of the timing wheel:
// the largest number of events resident in wheel buckets (excluding the
// overflow heap) at any point. Zero when the wheel was never enabled.
// Reset zeroes it with the other per-run counters.
func (s *Scheduler) WheelPeak() int {
	if s.wheel == nil {
		return 0
	}
	return s.wheel.peakResident
}

// Reset returns the scheduler to its post-NewScheduler state — clock at the
// epoch, no pending events, counters zeroed — while retaining the event
// free list, dispatch buffer, and queue backing arrays, so a reset
// scheduler schedules its next million events without allocating. Pending
// events are discarded; drain, if non-nil, observes each one first so
// owners of pooled per-event payloads (netsim's in-flight datagrams) can
// reclaim them. The queue backend (heap or wheel) is preserved.
func (s *Scheduler) Reset(drain func(name string, arg any)) {
	for {
		e := s.q.popMin()
		if e == nil {
			break
		}
		if drain != nil {
			drain(e.name, e.arg)
		}
		s.release(e)
	}
	s.q.reset()
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.stopped = false
	s.peak = 0
	s.interrupt = nil
}

// alloc takes an event from the free list, refilling it in batches so cold
// starts amortise to one allocation per 64 events.
func (s *Scheduler) alloc() *Event {
	if len(s.free) == 0 {
		batch := make([]Event, 64)
		for i := range batch {
			batch[i].index = -1
			batch[i].slot = -1
			s.free = append(s.free, &batch[i])
		}
	}
	e := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return e
}

// release invalidates outstanding Timer handles to e and returns it to the
// free list.
func (s *Scheduler) release(e *Event) {
	e.gen++
	e.index = -1
	e.slot = -1
	e.name = ""
	e.fn = nil
	e.afn = nil
	e.arg = nil
	s.free = append(s.free, e)
}

func (s *Scheduler) schedule(when Time, name string, fn func(now Time), afn func(now Time, arg any), arg any) Timer {
	if when < s.now {
		panic(fmt.Sprintf("eventsim: scheduling %q at %v, before now %v", name, when, s.now))
	}
	e := s.alloc()
	e.when = when
	e.seq = s.seq
	e.name = name
	e.fn = fn
	e.afn = afn
	e.arg = arg
	s.seq++
	s.q.push(e)
	if n := s.q.len(); n > s.peak {
		s.peak = n
	}
	return Timer{e: e, gen: e.gen}
}

// At schedules fn to run at absolute time when. Scheduling in the past
// (before Now) panics: the simulation cannot rewind.
func (s *Scheduler) At(when Time, name string, fn func(now Time)) Timer {
	return s.schedule(when, name, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, name string, fn func(now Time)) Timer {
	CheckNonNegative(d)
	return s.At(s.now.Add(d), name, fn)
}

// AtArg schedules fn(now, arg) at absolute time when. Passing context via
// arg instead of closing over it keeps hot paths free of per-event closure
// allocations; fn should be a static function.
func (s *Scheduler) AtArg(when Time, name string, fn func(now Time, arg any), arg any) Timer {
	return s.schedule(when, name, nil, fn, arg)
}

// AfterArg schedules fn(now, arg) to run d after the current time.
func (s *Scheduler) AfterArg(d Duration, name string, fn func(now Time, arg any), arg any) Timer {
	CheckNonNegative(d)
	return s.AtArg(s.now.Add(d), name, fn, arg)
}

// Cancel removes a pending event. Cancelling a timer whose event already
// fired or was already cancelled is a no-op, even if the underlying event
// has since been recycled for other work. An event popped into the current
// dispatch batch but not yet fired is neutralised in place: it will be
// skipped and recycled when the batch reaches it.
func (s *Scheduler) Cancel(t Timer) {
	if t.Cancelled() {
		return
	}
	e := t.e
	if e.index == inFlight {
		e.gen++ // stales every handle now; the later release bumps again, harmlessly
		e.fn = nil
		e.afn = nil
		e.arg = nil
		return
	}
	s.q.remove(e)
	s.release(e)
}

// Step runs the single earliest pending event, advancing the clock to its
// due time. It reports false if the queue was empty.
func (s *Scheduler) Step() bool {
	e := s.q.popMin()
	if e == nil {
		return false
	}
	s.now = e.when
	s.fired++
	fn, afn, arg := e.fn, e.afn, e.arg
	s.release(e)
	if afn != nil {
		afn(s.now, arg)
	} else if fn != nil {
		fn(s.now)
	}
	return true
}

// NextEventAt reports the due time of the earliest pending event. The
// second result is false when the queue is empty. This is the peek a
// wall-clock-driven loop needs: drain events due by now with Step, then
// sleep exactly until the next one (or until external input arrives).
func (s *Scheduler) NextEventAt() (Time, bool) {
	e := s.q.peek()
	if e == nil {
		return 0, false
	}
	return e.when, true
}

// SetInterrupt installs a poll function Run consults between events, every
// interruptStride firings. A true return aborts Run with ErrInterrupted,
// leaving the pending queue intact. Pass nil to clear. This is the
// cooperative-cancellation seam the Runner uses to abort a simulation
// mid-run when its context is cancelled.
func (s *Scheduler) SetInterrupt(fn func() bool) { s.interrupt = fn }

// Run executes events until the queue drains or the clock passes horizon
// (horizon <= 0 means no horizon). It returns ErrStopped if Stop was called
// from inside a callback, and ErrInterrupted if an installed interrupt poll
// fired.
//
// Dispatch is batched: all events sharing the earliest due time are popped
// in one queue operation and fired back-to-back in (when, seq) order, so a
// burst of simultaneous timers costs one head access, not one per event.
// Events a callback schedules at the current instant carry later sequence
// numbers and fire in the next batch at the same timestamp, exactly as the
// unbatched loop ordered them.
func (s *Scheduler) Run(horizon Time) error {
	s.stopped = false
	sincePoll := uint64(0)
	for {
		head := s.q.peek()
		if head == nil {
			break
		}
		if s.stopped {
			return ErrStopped
		}
		if s.interrupt != nil && sincePoll >= interruptStride {
			sincePoll = 0
			if s.interrupt() {
				return ErrInterrupted
			}
		}
		if horizon > 0 && head.when > horizon {
			s.now = horizon
			return nil
		}
		s.batch = s.q.popRun(s.batch[:0])
		s.now = head.when
		sincePoll += uint64(len(s.batch))
		for i, e := range s.batch {
			s.batch[i] = nil
			if s.stopped {
				s.requeue(s.batch[i:], e)
				return ErrStopped
			}
			s.fired++
			fn, afn, arg := e.fn, e.afn, e.arg
			s.release(e)
			if afn != nil {
				afn(s.now, arg)
			} else if fn != nil {
				fn(s.now)
			}
		}
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return nil
}

// requeue returns the unfired remainder of a dispatch batch to the queue
// after Stop halted Run mid-batch. Sequence numbers are preserved, so a
// subsequent Run resumes in exactly the order the batch would have fired.
func (s *Scheduler) requeue(rest []*Event, first *Event) {
	if first.fn == nil && first.afn == nil {
		s.release(first) // cancelled in flight
	} else {
		s.q.push(first)
	}
	for i, e := range rest {
		if e == nil {
			continue
		}
		rest[i] = nil
		if e.fn == nil && e.afn == nil {
			s.release(e)
			continue
		}
		s.q.push(e)
	}
}

// RunUntilIdle executes events until none remain, with no horizon.
func (s *Scheduler) RunUntilIdle() error { return s.Run(0) }

// Stop halts Run after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Advance moves the clock forward by d without running events, panicking if
// doing so would skip over a pending event. It exists for tests that need
// to position the clock between events.
func (s *Scheduler) Advance(d Duration) {
	CheckNonNegative(d)
	target := s.now.Add(d)
	if e := s.q.peek(); e != nil && e.when < target {
		panic(fmt.Sprintf("eventsim: Advance(%v) would skip event %q at %v", d, e.name, e.when))
	}
	s.now = target
}

// Ticker invokes fn every interval starting at the next interval boundary
// from now, until the returned stop function is called or fn returns false.
func (s *Scheduler) Ticker(interval Duration, name string, fn func(now Time) bool) (stop func()) {
	if interval <= 0 {
		panic("eventsim: Ticker interval must be positive")
	}
	var tm Timer
	stopped := false
	var tick func(now Time)
	tick = func(now Time) {
		if stopped {
			return
		}
		if !fn(now) {
			stopped = true
			return
		}
		tm = s.After(interval, name, tick)
	}
	tm = s.After(interval, name, tick)
	return func() {
		stopped = true
		s.Cancel(tm)
	}
}

// --- 4-ary heap ordered by (when, seq) ---

func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// heapQueue is the default eventQueue: a 4-ary heap on a flat slice, with
// each event carrying its own index for O(log n) removal.
type heapQueue struct {
	q []*Event
}

func (h *heapQueue) len() int { return len(h.q) }

func (h *heapQueue) reset() { h.q = h.q[:0] }

func (h *heapQueue) peek() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

func (h *heapQueue) push(e *Event) {
	e.slot = -1
	e.index = int32(len(h.q))
	h.q = append(h.q, e)
	h.siftUp(len(h.q) - 1)
}

func (h *heapQueue) popMin() *Event {
	q := h.q
	if len(q) == 0 {
		return nil
	}
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[0].index = 0
	q[n] = nil
	h.q = q[:n]
	if n > 0 {
		h.siftDown(0)
	}
	e.index = inFlight
	return e
}

func (h *heapQueue) popRun(batch []*Event) []*Event {
	e := h.popMin()
	if e == nil {
		return batch
	}
	batch = append(batch, e)
	for len(h.q) > 0 && h.q[0].when == e.when {
		batch = append(batch, h.popMin())
	}
	return batch
}

// remove deletes event e, which must be resident at heap position e.index.
func (h *heapQueue) remove(e *Event) {
	i := int(e.index)
	q := h.q
	n := len(q) - 1
	if i != n {
		q[i] = q[n]
		q[i].index = int32(i)
	}
	q[n] = nil
	h.q = q[:n]
	if i < n {
		h.siftDown(i)
		h.siftUp(i)
	}
	e.index = -1
}

func (h *heapQueue) siftUp(i int) {
	q := h.q
	e := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = int32(i)
		i = parent
	}
	q[i] = e
	e.index = int32(i)
}

func (h *heapQueue) siftDown(i int) {
	q := h.q
	n := len(q)
	e := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(q[c], q[min]) {
				min = c
			}
		}
		if !eventLess(q[min], e) {
			break
		}
		q[i] = q[min]
		q[i].index = int32(i)
		i = min
	}
	q[i] = e
	e.index = int32(i)
}
