// Package eventsim provides the discrete-event simulation engine that the
// turbulence network and player models run on: a virtual clock, an event
// scheduler backed by a pooled 4-ary heap, and deterministic random number
// utilities. Everything in the repository that "takes time" is an event on a
// Scheduler; no wall-clock time is ever consulted, so runs are exactly
// reproducible for a given seed. Each Scheduler is single-threaded;
// concurrency lives one level up, where independent experiment runs each
// own a private Scheduler and fan out across OS threads.
package eventsim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured as a Duration since the start
// of the simulation. The zero Time is the simulation epoch.
type Time time.Duration

// Duration re-exports time.Duration for call-site clarity.
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the time like "12.345s".
func (t Time) String() string { return time.Duration(t).String() }

// Since is a convenience for now.Sub(start) that reads like time.Since.
func Since(now, start Time) Duration { return now.Sub(start) }

// Clock exposes the current simulated time. The Scheduler implements Clock;
// components hold a Clock so tests can substitute a fixed time.
type Clock interface {
	// Now returns the current simulated time.
	Now() Time
}

// FixedClock is a Clock pinned to a single instant, for tests.
type FixedClock Time

// Now implements Clock.
func (c FixedClock) Now() Time { return Time(c) }

// At builds a Time from floating-point seconds since the epoch.
func At(seconds float64) Time {
	return Time(time.Duration(seconds * float64(time.Second)))
}

// CheckNonNegative panics if d is negative; schedule distances must not go
// backwards in time. It returns d so it can be used inline.
func CheckNonNegative(d Duration) Duration {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative duration %v", d))
	}
	return d
}
