package eventsim

// Hierarchical timing wheel: an eventQueue tuned for the dense short-horizon
// timers the packet paths generate (serialization completions, tick trains,
// per-packet delivery events). Near-future events hash into fixed-width
// buckets by due time; far-future events (player stalls, session watchdogs,
// end-of-clip horizons) overflow into a 4-ary heap and cascade into buckets
// as the window advances past them. Every operation preserves the exact
// (when, seq) order of the heap — the wheel is a constant-factor trade, not
// a semantic one — which is what lets the golden digests pin wheel runs
// byte-identical to heap runs.
//
// Shape of the win: a heap pays O(log n) pointer-chasing per push/pop with
// n the total pending count (often thousands when six sites stream at
// once). The wheel pays O(1) per push and a short linear scan of one small
// bucket per pop, because the dense timers cluster into the next few
// milliseconds while the heap's depth is inflated by the long idle tail.

const (
	defaultWheelGranularity = Duration(250_000) // 250µs buckets
	defaultWheelSlots       = 1024              // × 250µs = 256ms window
)

type wheelQueue struct {
	granularity Duration
	mask        int        // len(buckets)-1; len is a power of two
	buckets     [][]*Event // ring of due-time buckets, backing arrays reused
	resident    int        // events across all buckets (excludes overflow)
	base        Time       // start of buckets[cursor]'s interval
	cursor      int
	overflow    heapQueue // events at or beyond base + window

	// peakResident is the bucket-occupancy high-water mark — the telemetry
	// counterpart of Scheduler.PeakQueue for the wheel path. Reset zeroes it.
	peakResident int
}

func newWheelQueue(granularity Duration, slots int) *wheelQueue {
	n := 1
	for n < slots {
		n <<= 1
	}
	return &wheelQueue{
		granularity: granularity,
		mask:        n - 1,
		buckets:     make([][]*Event, n),
	}
}

func (w *wheelQueue) len() int { return w.resident + w.overflow.len() }

func (w *wheelQueue) reset() {
	w.resident = 0
	w.base = 0
	w.cursor = 0
	w.peakResident = 0
	w.overflow.reset()
}

// window is the span of simulated time the buckets cover from base.
func (w *wheelQueue) window() Duration {
	return w.granularity * Duration(len(w.buckets))
}

func (w *wheelQueue) push(e *Event) {
	d := e.when.Sub(w.base)
	if d < 0 {
		// The cursor already advanced into or past e's instant (it can sit
		// mid-bucket while the clock trails behind). The current bucket is
		// scanned first and scanned fully, so ordering still holds.
		d = 0
	}
	idx := int(d / w.granularity)
	if idx >= len(w.buckets) {
		w.overflow.push(e)
		return
	}
	b := (w.cursor + idx) & w.mask
	e.slot = int32(b)
	e.index = int32(len(w.buckets[b]))
	w.buckets[b] = append(w.buckets[b], e)
	w.resident++
	if w.resident > w.peakResident {
		w.peakResident = w.resident
	}
}

// advance moves the cursor one bucket forward and cascades any overflow
// events the enlarged window now covers. Callers only advance past empty
// buckets, so no resident event is ever skipped.
func (w *wheelQueue) advance() {
	w.cursor = (w.cursor + 1) & w.mask
	w.base = w.base.Add(w.granularity)
	w.cascade()
}

// cascade drains overflow events that now fall inside the bucket window.
func (w *wheelQueue) cascade() {
	end := w.base.Add(w.window())
	for {
		e := w.overflow.peek()
		if e == nil || e.when >= end {
			return
		}
		w.overflow.popMin()
		w.push(e)
	}
}

// rebase recenters an all-overflow wheel at t, so subsequent near-future
// pushes land in buckets again instead of degenerating into the heap.
// Only legal when every bucket is empty.
func (w *wheelQueue) rebase(t Time) {
	w.base = Time(Duration(t) / w.granularity * w.granularity)
	w.cursor = 0
	w.cascade()
}

// minBucket advances the cursor to the first non-empty bucket and returns
// its slice. Requires resident > 0.
func (w *wheelQueue) minBucket() []*Event {
	for len(w.buckets[w.cursor]) == 0 {
		w.advance()
	}
	return w.buckets[w.cursor]
}

func (w *wheelQueue) peek() *Event {
	if w.resident == 0 {
		// All pending events are beyond the window; the overflow min is
		// the global min.
		return w.overflow.peek()
	}
	b := w.minBucket()
	min := b[0]
	for _, e := range b[1:] {
		if eventLess(e, min) {
			min = e
		}
	}
	return min
}

// removeFromBucket swap-removes e from its resident bucket.
func (w *wheelQueue) removeFromBucket(e *Event) {
	b := w.buckets[e.slot]
	i := int(e.index)
	last := len(b) - 1
	if i != last {
		b[i] = b[last]
		b[i].index = int32(i)
	}
	b[last] = nil
	w.buckets[e.slot] = b[:last]
	w.resident--
	e.slot = -1
}

func (w *wheelQueue) popMin() *Event {
	if w.resident == 0 {
		e := w.overflow.popMin()
		if e != nil {
			w.rebase(e.when)
		}
		return e
	}
	b := w.minBucket()
	mi := 0
	for i := 1; i < len(b); i++ {
		if eventLess(b[i], b[mi]) {
			mi = i
		}
	}
	e := b[mi]
	w.removeFromBucket(e)
	e.index = inFlight
	return e
}

// popRun extracts every event sharing the earliest due time in one pass
// over the min bucket: scan once for the min instant, sweep once to
// collect its cohort, then order the (typically tiny) cohort by seq with
// an insertion sort. The heap equivalent pays a full pop per event.
func (w *wheelQueue) popRun(batch []*Event) []*Event {
	if w.resident == 0 {
		e := w.popMin() // rebases around the overflow min
		if e == nil {
			return batch
		}
		batch = append(batch, e)
		// Rebasing may have cascaded same-instant events into buckets.
		for {
			n := w.peek()
			if n == nil || n.when != e.when {
				return batch
			}
			batch = append(batch, w.popMin())
		}
	}
	b := w.minBucket()
	when := b[0].when
	for _, e := range b[1:] {
		if e.when < when {
			when = e.when
		}
	}
	start := len(batch)
	for i := 0; i < len(b); {
		e := b[i]
		if e.when != when {
			i++
			continue
		}
		// Swap-remove shrinks b in place; revisit index i.
		last := len(b) - 1
		if i != last {
			b[i] = b[last]
			b[i].index = int32(i)
		}
		b[last] = nil
		b = b[:last]
		w.resident--
		e.slot = -1
		e.index = inFlight
		batch = append(batch, e)
	}
	w.buckets[w.cursor] = b
	// Restore FIFO order within the instant: insertion sort by seq.
	run := batch[start:]
	for i := 1; i < len(run); i++ {
		e := run[i]
		j := i - 1
		for j >= 0 && run[j].seq > e.seq {
			run[j+1] = run[j]
			j--
		}
		run[j+1] = e
	}
	return batch
}

func (w *wheelQueue) remove(e *Event) {
	if e.slot >= 0 {
		w.removeFromBucket(e)
		e.index = -1
		return
	}
	w.overflow.remove(e)
}
