package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for _, sec := range []float64{3, 1, 2, 0.5, 2.5} {
		s.At(At(sec), "e", func(now Time) { got = append(got, now) })
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
	if s.Now() != At(3) {
		t.Fatalf("final clock %v, want 3s", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(At(1), "same", func(Time) { order = append(order, i) })
	}
	s.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(At(1), "x", func(Time) {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(At(0.5), "past", func(Time) {})
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(At(1), "x", func(Time) { fired = true })
	s.Cancel(e)
	s.Cancel(e)       // double cancel is a no-op
	s.Cancel(Timer{}) // zero handle is a no-op
	s.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestSchedulerCancelFromCallback(t *testing.T) {
	s := NewScheduler()
	fired := false
	var victim Timer
	s.At(At(1), "killer", func(Time) { s.Cancel(victim) })
	victim = s.At(At(2), "victim", func(Time) { fired = true })
	s.RunUntilIdle()
	if fired {
		t.Fatal("victim fired despite cancellation from earlier event")
	}
}

func TestSchedulerHorizon(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(At(float64(i)), "e", func(Time) { count++ })
	}
	if err := s.Run(At(5)); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("fired %d events before horizon, want 5", count)
	}
	if s.Now() != At(5) {
		t.Fatalf("clock %v, want horizon 5s", s.Now())
	}
	if s.Len() != 5 {
		t.Fatalf("%d events pending, want 5", s.Len())
	}
}

func TestSchedulerHorizonAdvancesIdleClock(t *testing.T) {
	s := NewScheduler()
	if err := s.Run(At(7)); err != nil {
		t.Fatal(err)
	}
	if s.Now() != At(7) {
		t.Fatalf("idle run left clock at %v, want 7s", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(At(float64(i)), "e", func(Time) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	if err := s.RunUntilIdle(); err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("fired %d events, want 3", count)
	}
}

func TestSchedulerAfterAndAdvance(t *testing.T) {
	s := NewScheduler()
	s.After(2*time.Second, "later", func(Time) {})
	s.Advance(time.Second)
	if s.Now() != At(1) {
		t.Fatalf("clock %v after Advance, want 1s", s.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Advance over a pending event did not panic")
		}
	}()
	s.Advance(5 * time.Second)
}

func TestSchedulerReentrantScheduling(t *testing.T) {
	// Events scheduled from inside callbacks at the current instant run in
	// the same pass, after already-queued same-instant events.
	s := NewScheduler()
	var order []string
	s.At(At(1), "a", func(now Time) {
		order = append(order, "a")
		s.At(now, "c", func(Time) { order = append(order, "c") })
	})
	s.At(At(1), "b", func(Time) { order = append(order, "b") })
	s.RunUntilIdle()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	s.Ticker(time.Second, "tick", func(now Time) bool {
		ticks = append(ticks, now)
		return len(ticks) < 4
	})
	s.RunUntilIdle()
	if len(ticks) != 4 {
		t.Fatalf("got %d ticks, want 4", len(ticks))
	}
	for i, tk := range ticks {
		if want := At(float64(i + 1)); tk != want {
			t.Fatalf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	stop := s.Ticker(time.Second, "tick", func(Time) bool { n++; return true })
	s.At(At(2.5), "stopper", func(Time) { stop() })
	if err := s.Run(At(10)); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ticker fired %d times, want 2", n)
	}
}

func TestTickerZeroIntervalPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	s.Ticker(0, "bad", func(Time) bool { return true })
}

// Property: for any batch of scheduled offsets, firing order is a stable
// sort by time.
func TestSchedulerOrderingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler()
		type rec struct {
			at  Time
			idx int
		}
		var fired []rec
		for i, off := range offsets {
			i := i
			at := Time(time.Duration(off) * time.Millisecond)
			s.At(at, "p", func(now Time) { fired = append(fired, rec{now, i}) })
		}
		s.RunUntilIdle()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].idx < fired[i-1].idx {
				return false // FIFO violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStaleTimerDoesNotCancelRecycledEvent(t *testing.T) {
	// Events are pooled: after a timer's event fires, the Event object may
	// be reissued for unrelated work. A stale handle must not cancel it.
	s := NewScheduler()
	first := s.At(At(1), "first", func(Time) {})
	s.RunUntilIdle() // first fires; its Event returns to the pool
	fired := false
	s.At(At(2), "second", func(Time) { fired = true })
	s.Cancel(first) // stale: must be a no-op even if the Event was recycled
	s.RunUntilIdle()
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
	if !first.Cancelled() {
		t.Fatal("fired timer does not report cancelled")
	}
}

func TestAtArg(t *testing.T) {
	s := NewScheduler()
	got := 0
	bump := func(_ Time, arg any) { *arg.(*int) += 2 }
	s.AtArg(At(1), "arg", bump, &got)
	s.AfterArg(2*time.Second, "arg", bump, &got)
	s.RunUntilIdle()
	if got != 4 {
		t.Fatalf("arg callbacks produced %d, want 4", got)
	}
}

func TestSchedulerSteadyStateAllocFree(t *testing.T) {
	// Once the pool is warm, a schedule/fire cycle must not allocate.
	s := NewScheduler()
	var tick func(now Time)
	n := 0
	tick = func(now Time) {
		if n++; n < 100 {
			s.After(time.Millisecond, "tick", tick)
		}
	}
	s.After(time.Millisecond, "tick", tick)
	s.Step() // warm the pool
	allocs := testing.AllocsPerRun(50, func() { s.Step() })
	if allocs > 0 {
		t.Fatalf("steady-state Step allocates %.1f times per event, want 0", allocs)
	}
}

func TestTimeHelpers(t *testing.T) {
	a := At(1.5)
	b := a.Add(500 * time.Millisecond)
	if b != At(2) {
		t.Fatalf("Add: %v", b)
	}
	if d := b.Sub(a); d != 500*time.Millisecond {
		t.Fatalf("Sub: %v", d)
	}
	if !a.Before(b) || !b.After(a) {
		t.Fatal("Before/After inconsistent")
	}
	if a.Seconds() != 1.5 {
		t.Fatalf("Seconds: %v", a.Seconds())
	}
	if got := Since(b, a); got != 500*time.Millisecond {
		t.Fatalf("Since: %v", got)
	}
	if FixedClock(a).Now() != a {
		t.Fatal("FixedClock")
	}
}

func TestCheckNonNegative(t *testing.T) {
	if CheckNonNegative(time.Second) != time.Second {
		t.Fatal("positive duration altered")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	CheckNonNegative(-time.Second)
}

func TestSchedulerFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, "e", func(Time) {})
	}
	s.RunUntilIdle()
	if s.Fired() != 7 {
		t.Fatalf("Fired()=%d, want 7", s.Fired())
	}
}

func TestEventAccessors(t *testing.T) {
	s := NewScheduler()
	e := s.At(At(3), "named", func(Time) {})
	if e.When() != At(3) {
		t.Fatalf("When=%v", e.When())
	}
	if e.Name() != "named" {
		t.Fatalf("Name=%q", e.Name())
	}
	if e.Cancelled() {
		t.Fatal("fresh event reports cancelled")
	}
}

func TestHeapRandomCancel(t *testing.T) {
	// Exercise push/pop/remove on the 4-ary heap with random data to cover
	// the slice bookkeeping (index maintenance on removal).
	r := rand.New(rand.NewSource(1))
	s := NewScheduler()
	events := make([]Timer, 0, 64)
	for i := 0; i < 64; i++ {
		e := s.At(Time(time.Duration(r.Intn(1000))*time.Millisecond), "h", func(Time) {})
		events = append(events, e)
	}
	// Cancel a random half; indices must stay consistent.
	for _, i := range r.Perm(64)[:32] {
		s.Cancel(events[i])
	}
	if s.Len() != 32 {
		t.Fatalf("Len=%d after cancelling half, want 32", s.Len())
	}
	s.RunUntilIdle()
	if s.Len() != 0 {
		t.Fatalf("queue not drained: %d", s.Len())
	}
}

// TestSchedulerInterrupt exercises the cooperative-cancellation seam: an
// interrupt poll that trips mid-run aborts with ErrInterrupted after at
// most interruptStride further events, leaving the rest of the queue
// intact, and a cleared poll lets Run resume where it left off.
func TestSchedulerInterrupt(t *testing.T) {
	s := NewScheduler()
	const total = 3 * interruptStride
	fired := 0
	for i := 0; i < total; i++ {
		s.At(At(float64(i)), "e", func(now Time) { fired++ })
	}
	tripAt := interruptStride / 2
	s.SetInterrupt(func() bool { return fired > tripAt })
	if err := s.RunUntilIdle(); err != ErrInterrupted {
		t.Fatalf("Run returned %v, want ErrInterrupted", err)
	}
	if fired <= tripAt || fired > tripAt+interruptStride {
		t.Fatalf("interrupt after %d events, want within one stride past %d", fired, tripAt)
	}
	if s.Len() != total-fired {
		t.Fatalf("pending queue %d, want %d", s.Len(), total-fired)
	}
	s.SetInterrupt(nil)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if fired != total {
		t.Fatalf("resumed run fired %d, want %d", fired, total)
	}
}
