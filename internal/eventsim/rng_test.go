package eventsim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical first draws")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Split("alpha")
	b := root.Split("beta")
	collisions := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			collisions++
		}
	}
	if collisions > 2 {
		t.Fatalf("split streams look correlated: %d equal draws", collisions)
	}
	// Same label from identically-seeded parents gives the same stream.
	p1, p2 := NewRNG(9), NewRNG(9)
	c1, c2 := p1.Split("x"), p2.Split("x")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("identical parents+label diverged")
		}
	}
}

func TestUniformBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
	// Swapped bounds are tolerated.
	v := g.Uniform(5, 2)
	if v < 2 || v >= 5 {
		t.Fatalf("Uniform(5,2) = %v out of range", v)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(2)
	const n = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Fatalf("stddev %v, want ~3", math.Sqrt(variance))
	}
}

func TestTruncNormalBounds(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 2000; i++ {
		v := g.TruncNormal(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
	// Impossible bounds fall back to clamped mean.
	v := g.TruncNormal(100, 0.0001, -1, 1)
	if v != 1 {
		t.Fatalf("fallback clamp = %v, want 1", v)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(4)
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.2 {
		t.Fatalf("Exp mean %v, want ~5", mean)
	}
	if g.Exp(0) != 0 || g.Exp(-1) != 0 {
		t.Fatal("nonpositive mean should yield 0")
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 2000; i++ {
		v := g.Pareto(1.2, 1, 100)
		if v < 1 || v > 100+1e-9 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
	if g.Pareto(0, 1, 10) != 1 || g.Pareto(1, 0, 10) != 0 || g.Pareto(1, 5, 5) != 5 {
		t.Fatal("degenerate Pareto parameters should return lo")
	}
}

func TestBernoulli(t *testing.T) {
	g := NewRNG(6)
	if g.Bernoulli(0) {
		t.Fatal("p=0 returned true")
	}
	if !g.Bernoulli(1) {
		t.Fatal("p=1 returned false")
	}
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("Bernoulli(0.25) frequency %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(8)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestJitterRange(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := g.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter out of range: %v", v)
		}
	}
}
