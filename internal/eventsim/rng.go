package eventsim

import (
	"math"
	"math/rand"
)

// RNG wraps a deterministic math/rand source with the distribution helpers
// the traffic models need. Each simulation run owns one root RNG; components
// derive independent child streams with Split so adding a new consumer does
// not perturb the draws seen by existing ones.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Reseed rewinds the generator to the deterministic stream for seed, as if
// freshly constructed by NewRNG(seed), without allocating. This is the RNG
// half of testbed reuse: a Reset(seed) replays the exact construction-time
// Split sequence a fresh build would perform, so child streams come out
// identical.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// Split derives an independent child stream labelled by name. The child's
// seed is a hash of the parent seed position and the label, so two children
// with different labels never share a stream.
func (g *RNG) Split(name string) *RNG {
	return NewRNG(g.splitSeed(name))
}

// SplitInto is Split reusing an existing child generator: the parent
// advances by the same single draw, and child is rewound to exactly the
// stream Split(name) would have returned — without allocating a source
// (math/rand sources are ~5 KB each, which matters on the testbed-reuse
// Reset paths that replay construction splits every run). A nil child
// falls back to Split.
func (g *RNG) SplitInto(name string, child *RNG) *RNG {
	seed := g.splitSeed(name)
	if child == nil {
		return NewRNG(seed)
	}
	child.Reseed(seed)
	return child
}

// splitSeed derives (and consumes) the child seed for a labelled split.
func (g *RNG) splitSeed(name string) int64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= g.r.Uint64()
	return int64(h)
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform draw in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// TruncNormal returns a Gaussian draw clamped to [lo,hi] by resampling, with
// a clamping fallback so pathological bounds cannot loop forever.
func (g *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 32; i++ {
		v := g.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// Exp returns an exponential draw with the given mean (not rate).
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Pareto returns a bounded Pareto draw with shape alpha on [lo,hi]; used for
// heavy-tailed jitter spikes.
func (g *RNG) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		return lo
	}
	u := g.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Bernoulli reports true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac].
func (g *RNG) Jitter(base float64, frac float64) float64 {
	return base * g.Uniform(1-frac, 1+frac)
}
