package eventsim

import (
	"testing"
	"time"
)

// fireLog records one firing as observed by a callback.
type fireLog struct {
	when Time
	id   int
}

// runWorkload drives one seeded pseudo-random timer workload on s and
// returns the observed firing sequence. The workload mixes everything the
// wheel handles differently from the heap: dense near-future timers inside
// the bucket window, far-future timers that overflow and cascade back,
// same-instant cohorts (batched dispatch), pre-run and re-entrant
// cancellation — including cancelling a same-instant sibling that is
// already in the dispatch batch — and callbacks that reschedule at the
// current instant.
func runWorkload(s *Scheduler, seed int64) []fireLog {
	rng := NewRNG(seed)
	var fired []fireLog
	id := 0
	var timers []Timer

	schedule := func(at Time) {
		myID := id
		id++
		timers = append(timers, s.At(at, "w", func(now Time) {
			fired = append(fired, fireLog{now, myID})
			switch rng.Intn(6) {
			case 0:
				// Reschedule at the current instant: must land in a later
				// same-timestamp batch, after every pending event at now.
				reID := id
				id++
				timers = append(timers, s.At(now, "re", func(n2 Time) {
					fired = append(fired, fireLog{n2, reID})
				}))
			case 1:
				// Chain a short follow-up (stays inside the wheel window).
				reID := id
				id++
				timers = append(timers, s.After(Duration(rng.Intn(2000))*time.Microsecond, "chain", func(n2 Time) {
					fired = append(fired, fireLog{n2, reID})
				}))
			case 2:
				// Cancel a random outstanding timer — possibly one sharing
				// this instant, i.e. already popped into the batch.
				s.Cancel(timers[rng.Intn(len(timers))])
			}
		}))
	}

	for i := 0; i < 400; i++ {
		var d Duration
		switch rng.Intn(4) {
		case 0:
			// Dense near future: well inside the 256ms default window.
			d = Duration(rng.Intn(5000)) * time.Microsecond
		case 1:
			// Same-instant cohorts on a coarse grid.
			d = Duration(rng.Intn(20)) * 10 * time.Millisecond
		case 2:
			// Beyond the window: overflow heap, cascades back in.
			d = Duration(300+rng.Intn(700)) * time.Millisecond
		default:
			// Far future with an idle gap before it: exercises rebase.
			d = Duration(2+rng.Intn(5)) * Duration(time.Second)
		}
		schedule(Time(d))
	}
	// Cancel a swathe before running.
	for i := 0; i < 60; i++ {
		s.Cancel(timers[rng.Intn(len(timers))])
	}
	s.RunUntilIdle()
	return fired
}

// TestWheelMatchesHeapOrder is the backend-parity property: for seeded
// random workloads, the timing wheel fires exactly the sequence the heap
// fires — same events, same order, same timestamps. This is the test that
// licenses flipping sweeps onto the wheel without re-pinning any golden.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		heap := NewScheduler()
		wheel := NewScheduler()
		wheel.EnableWheel(0, 0)
		if !wheel.WheelEnabled() {
			t.Fatal("EnableWheel did not switch backends")
		}
		h := runWorkload(heap, seed)
		w := runWorkload(wheel, seed)
		if len(h) != len(w) {
			t.Fatalf("seed %d: heap fired %d events, wheel %d", seed, len(h), len(w))
		}
		for i := range h {
			if h[i] != w[i] {
				t.Fatalf("seed %d: firing %d diverges: heap %+v, wheel %+v", seed, i, h[i], w[i])
			}
		}
		if heap.Fired() != wheel.Fired() || heap.Scheduled() != wheel.Scheduled() {
			t.Fatalf("seed %d: counters diverge: heap %d/%d, wheel %d/%d",
				seed, heap.Scheduled(), heap.Fired(), wheel.Scheduled(), wheel.Fired())
		}
	}
}

// TestWheelMatchesHeapAcrossGranularities re-runs the parity property on a
// coarse and a tiny wheel, so bucket-boundary rounding is exercised at
// more than the default shape.
func TestWheelMatchesHeapAcrossGranularities(t *testing.T) {
	shapes := []struct {
		g     Duration
		slots int
	}{
		{Duration(time.Millisecond), 64},
		{Duration(50 * time.Microsecond), 8},
	}
	for _, sh := range shapes {
		heap := NewScheduler()
		wheel := NewScheduler()
		wheel.EnableWheel(sh.g, sh.slots)
		h := runWorkload(heap, 42)
		w := runWorkload(wheel, 42)
		if len(h) != len(w) {
			t.Fatalf("wheel %v×%d: heap fired %d, wheel %d", sh.g, sh.slots, len(h), len(w))
		}
		for i := range h {
			if h[i] != w[i] {
				t.Fatalf("wheel %v×%d: firing %d diverges: heap %+v, wheel %+v", sh.g, sh.slots, i, h[i], w[i])
			}
		}
	}
}

// TestWheelOverflowCascade pins the overflow path specifically: events far
// beyond the bucket window must come back in time order as the window
// advances over them, interleaved correctly with near-future events.
func TestWheelOverflowCascade(t *testing.T) {
	s := NewScheduler()
	s.EnableWheel(Duration(time.Millisecond), 16) // 16ms window
	var got []Time
	log := func(now Time) { got = append(got, now) }
	want := []Time{
		Time(1 * time.Millisecond),
		Time(10 * time.Millisecond),
		Time(100 * time.Millisecond), // overflow, cascades in
		Time(101 * time.Millisecond),
		Time(1 * time.Second), // deep overflow: rebase after idle gap
	}
	s.At(Time(time.Second), "deep", log)
	s.At(Time(100*time.Millisecond), "far", log)
	s.At(Time(101*time.Millisecond), "far2", log)
	s.At(Time(time.Millisecond), "near", log)
	s.At(Time(10*time.Millisecond), "mid", log)
	s.RunUntilIdle()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, got[i], want[i])
		}
	}
}

// TestWheelPeakAndReset pins the wheel telemetry and its Reset semantics:
// WheelPeak reports the bucket-occupancy high-water of the current run and
// Reset zeroes it (the PeakQueue stale-semantics fix, wheel edition).
func TestWheelPeakAndReset(t *testing.T) {
	s := NewScheduler()
	if s.WheelPeak() != 0 {
		t.Fatal("WheelPeak nonzero before EnableWheel")
	}
	s.EnableWheel(0, 0)
	for i := 1; i <= 10; i++ {
		s.After(Duration(i)*time.Millisecond, "e", func(Time) {})
	}
	if s.WheelPeak() != 10 {
		t.Fatalf("WheelPeak %d with 10 resident events, want 10", s.WheelPeak())
	}
	if s.PeakQueue() != 10 {
		t.Fatalf("PeakQueue %d, want 10", s.PeakQueue())
	}
	s.RunUntilIdle()
	s.Reset(nil)
	if s.WheelPeak() != 0 || s.PeakQueue() != 0 {
		t.Fatalf("peaks survive Reset: wheel %d, queue %d", s.WheelPeak(), s.PeakQueue())
	}
	if !s.WheelEnabled() {
		t.Fatal("Reset dropped the wheel backend")
	}
	// The reset wheel must still order correctly from the epoch.
	var got []Time
	s.After(Duration(2*time.Millisecond), "b", func(now Time) { got = append(got, now) })
	s.After(Duration(time.Millisecond), "a", func(now Time) { got = append(got, now) })
	s.RunUntilIdle()
	if len(got) != 2 || got[0] != Time(time.Millisecond) || got[1] != Time(2*time.Millisecond) {
		t.Fatalf("post-Reset firing order wrong: %v", got)
	}
}

// TestEnableWheelPanicsWithPending pins the backend-switch precondition.
func TestEnableWheelPanicsWithPending(t *testing.T) {
	s := NewScheduler()
	s.After(Duration(time.Millisecond), "pending", func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("EnableWheel with pending events did not panic")
		}
	}()
	s.EnableWheel(0, 0)
}

// TestWheelSteadyStateAllocFree is the heap pin's wheel counterpart: a warm
// schedule/fire cycle on the wheel backend must not allocate.
func TestWheelSteadyStateAllocFree(t *testing.T) {
	s := NewScheduler()
	s.EnableWheel(0, 0)
	var tick func(now Time)
	n := 0
	tick = func(now Time) {
		if n++; n < 1000 {
			s.After(time.Millisecond, "tick", tick)
		}
	}
	s.After(time.Millisecond, "tick", tick)
	// Warm a full wheel revolution so every bucket the workload touches has
	// grown its backing array; steady state begins once the wheel has
	// lapped itself.
	for i := 0; i < 300; i++ {
		s.Step()
	}
	allocs := testing.AllocsPerRun(50, func() { s.Step() })
	if allocs > 0 {
		t.Fatalf("steady-state wheel Step allocates %.1f times per event, want 0", allocs)
	}
}

// TestSchedulerResetDrainsPending pins Reset's drain contract: every
// pending event is surfaced to the drain callback exactly once, with its
// name and argument, and the scheduler comes back empty at the epoch.
func TestSchedulerResetDrainsPending(t *testing.T) {
	for _, wheel := range []bool{false, true} {
		s := NewScheduler()
		if wheel {
			s.EnableWheel(0, 0)
		}
		payload := &struct{ n int }{7}
		s.AtArg(Time(time.Millisecond), "drainme", func(Time, any) {}, payload)
		s.At(Time(2*time.Second), "faraway", func(Time) {}) // overflow on the wheel
		var drained []string
		var gotArg any
		s.Reset(func(name string, arg any) {
			drained = append(drained, name)
			if arg != nil {
				gotArg = arg
			}
		})
		if len(drained) != 2 {
			t.Fatalf("wheel=%t: drained %d events, want 2", wheel, len(drained))
		}
		if gotArg != payload {
			t.Fatalf("wheel=%t: drain did not surface the event argument", wheel)
		}
		if s.Len() != 0 || s.Now() != 0 || s.Scheduled() != 0 || s.Fired() != 0 {
			t.Fatalf("wheel=%t: Reset left state behind: len=%d now=%v sched=%d fired=%d",
				wheel, s.Len(), s.Now(), s.Scheduled(), s.Fired())
		}
	}
}

// TestBatchedDispatchStopResumes pins the Stop-mid-batch contract on both
// backends: the unfired remainder of a same-instant batch is requeued with
// sequence numbers intact, so a subsequent Run resumes in the exact order
// the batch would have fired.
func TestBatchedDispatchStopResumes(t *testing.T) {
	for _, wheel := range []bool{false, true} {
		s := NewScheduler()
		if wheel {
			s.EnableWheel(0, 0)
		}
		var got []int
		at := Time(time.Millisecond)
		for i := 0; i < 5; i++ {
			i := i
			s.At(at, "batch", func(Time) {
				got = append(got, i)
				if i == 1 {
					s.Stop()
				}
			})
		}
		if err := s.Run(0); err != ErrStopped {
			t.Fatalf("wheel=%t: Run returned %v, want ErrStopped", wheel, err)
		}
		if err := s.Run(0); err != nil {
			t.Fatalf("wheel=%t: resume Run returned %v", wheel, err)
		}
		want := []int{0, 1, 2, 3, 4}
		if len(got) != len(want) {
			t.Fatalf("wheel=%t: fired %v, want %v", wheel, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("wheel=%t: fired %v, want %v", wheel, got, want)
			}
		}
	}
}
