package scaling

import (
	"testing"
	"testing/quick"
)

func TestLevelAdmit(t *testing.T) {
	// Full admits everything.
	for i := 0; i < 10; i++ {
		if !Full.Admit(i, i%5 == 0) {
			t.Fatal("Full rejected a frame")
		}
	}
	// HalfDelta admits keys and even indices.
	if !HalfDelta.Admit(3, true) || !HalfDelta.Admit(4, false) {
		t.Fatal("HalfDelta rejected an admissible frame")
	}
	if HalfDelta.Admit(3, false) {
		t.Fatal("HalfDelta admitted an odd delta frame")
	}
	// KeyOnly admits keys only.
	if !KeyOnly.Admit(7, true) || KeyOnly.Admit(8, false) {
		t.Fatal("KeyOnly admission wrong")
	}
}

func TestLevelAdmitMonotone(t *testing.T) {
	// Stronger levels never admit a frame a weaker level rejects.
	f := func(idx uint16, key bool) bool {
		i := int(idx)
		if KeyOnly.Admit(i, key) && !HalfDelta.Admit(i, key) {
			return false
		}
		if HalfDelta.Admit(i, key) && !Full.Admit(i, key) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerStepsDownOnLoss(t *testing.T) {
	var c Controller
	if c.Level() != Full {
		t.Fatal("controller should start at Full")
	}
	c.Report(100) // 10% loss
	if c.Level() != HalfDelta {
		t.Fatalf("level=%v after heavy loss", c.Level())
	}
	c.Report(100)
	if c.Level() != KeyOnly {
		t.Fatalf("level=%v after second heavy loss", c.Level())
	}
	c.Report(999)
	if c.Level() != KeyOnly {
		t.Fatal("level exceeded MaxLevel")
	}
	if c.StepsDown != 2 {
		t.Fatalf("StepsDown=%d", c.StepsDown)
	}
}

func TestControllerRecoversSlowly(t *testing.T) {
	var c Controller
	c.Report(100)
	c.Report(100) // at KeyOnly
	// Two clean reports are not enough.
	c.Report(0)
	c.Report(0)
	if c.Level() != KeyOnly {
		t.Fatalf("recovered too eagerly: %v", c.Level())
	}
	c.Report(0) // third clean: step up
	if c.Level() != HalfDelta {
		t.Fatalf("level=%v after 3 clean reports", c.Level())
	}
	// Mild loss resets the clean streak without stepping down.
	c.Report(10)
	c.Report(0)
	c.Report(0)
	if c.Level() != HalfDelta {
		t.Fatalf("mild loss handling wrong: %v", c.Level())
	}
	c.Report(0)
	if c.Level() != Full {
		t.Fatalf("never recovered: %v", c.Level())
	}
	if c.StepsUp != 2 {
		t.Fatalf("StepsUp=%d", c.StepsUp)
	}
}

func TestControllerNeverBelowFull(t *testing.T) {
	var c Controller
	for i := 0; i < 10; i++ {
		c.Report(0)
	}
	if c.Level() != Full {
		t.Fatalf("level=%v", c.Level())
	}
}

func TestPermille(t *testing.T) {
	if Permille(5, 100) != 50 {
		t.Fatal("Permille")
	}
	if Permille(0, 0) != 0 || Permille(3, 0) != 0 {
		t.Fatal("Permille zero total")
	}
	if Permille(100, 100) != 1000 {
		t.Fatal("Permille full loss")
	}
}

func TestLevelStrings(t *testing.T) {
	for _, l := range []Level{Full, HalfDelta, KeyOnly} {
		if l.String() == "" {
			t.Fatal("level string")
		}
	}
}

func TestByteFractions(t *testing.T) {
	// 10 frames of 100 B, keyframes at 0 and 5.
	sizes := make([]int, 10)
	keys := make([]bool, 10)
	for i := range sizes {
		sizes[i] = 100
		keys[i] = i == 0 || i == 5
	}
	f := ByteFractions(sizes, keys)
	if f[Full] != 1 {
		t.Fatalf("full fraction=%v", f[Full])
	}
	// HalfDelta admits keys (0,5) plus even indices: 0,2,4,5,6,8 = 6/10.
	if f[HalfDelta] != 0.6 {
		t.Fatalf("half fraction=%v", f[HalfDelta])
	}
	if f[KeyOnly] != 0.2 {
		t.Fatalf("key fraction=%v", f[KeyOnly])
	}
	// Fractions are monotone nonincreasing with level.
	if !(f[Full] >= f[HalfDelta] && f[HalfDelta] >= f[KeyOnly]) {
		t.Fatalf("fractions not monotone: %v", f)
	}
	// Nil keys: no keyframes, KeyOnly admits nothing.
	fn := ByteFractions([]int{10, 10}, nil)
	if fn[KeyOnly] != 0 || fn[HalfDelta] != 0.5 {
		t.Fatalf("nil keys: %v", fn)
	}
	// Empty input degrades to all-ones.
	fe := ByteFractions(nil, nil)
	if fe[Full] != 1 || fe[KeyOnly] != 1 {
		t.Fatalf("empty: %v", fe)
	}
}
