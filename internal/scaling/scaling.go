// Package scaling implements the media-scaling capability the paper's
// future-work section attributes to both commercial players ("capabilities
// that employ media scaling to reduce application level data rates in the
// presence of reduced bandwidth", §VI): a loss-feedback controller that
// selects a stream-thinning level, and the frame-admission rule each
// server's packetiser applies at that level.
//
// Thinning preserves decodability by dropping only delta frames first:
// level 1 halves the delta-frame rate, level 2 sends keyframes only. Both
// 2002 stacks used this family of techniques (Windows Media "intelligent
// streaming" thinned to keyframes; RealSystem's SureStream switched down
// its encoding ladder).
package scaling

// Level is the degree of stream thinning.
type Level int

const (
	// Full sends every frame.
	Full Level = iota
	// HalfDelta sends keyframes plus every other delta frame.
	HalfDelta
	// KeyOnly sends keyframes only.
	KeyOnly
)

// MaxLevel is the strongest thinning available.
const MaxLevel = KeyOnly

// String names the level.
func (l Level) String() string {
	switch l {
	case Full:
		return "full"
	case HalfDelta:
		return "half-delta"
	default:
		return "key-only"
	}
}

// Admit reports whether a frame passes the thinning filter at this level.
func (l Level) Admit(frameIndex int, key bool) bool {
	switch l {
	case Full:
		return true
	case HalfDelta:
		return key || frameIndex%2 == 0
	default:
		return key
	}
}

// Controller thresholds: step down when reported loss exceeds
// DownThreshold permille; step back up after UpAfterClean consecutive
// clean reports.
const (
	DownThreshold = 40 // 4% loss
	UpAfterClean  = 3
)

// Controller turns periodic loss reports into a thinning level with
// hysteresis, so a single clean interval does not bounce the quality back
// into a congested path.
type Controller struct {
	level Level
	clean int

	// Steps counts level changes, for diagnostics and tests.
	StepsDown, StepsUp int
}

// Level returns the current thinning level.
func (c *Controller) Level() Level { return c.level }

// Report feeds one feedback interval's loss (in permille of packets) and
// returns the possibly-updated level.
func (c *Controller) Report(lossPermille int) Level {
	switch {
	case lossPermille > DownThreshold:
		c.clean = 0
		if c.level < MaxLevel {
			c.level++
			c.StepsDown++
		}
	case lossPermille == 0:
		c.clean++
		if c.clean >= UpAfterClean && c.level > Full {
			c.level--
			c.StepsUp++
			c.clean = 0
		}
	default:
		// Mild loss: hold the line.
		c.clean = 0
	}
	return c.level
}

// ByteFractions precomputes, for each level, the fraction of the clip's
// bytes that level admits. Servers scale their pacing rate by the active
// level's fraction so thinning reduces the *offered bit rate*, not just
// the total bytes.
func ByteFractions(sizes []int, keys []bool) [MaxLevel + 1]float64 {
	var admitted [MaxLevel + 1]float64
	var total float64
	for i, sz := range sizes {
		key := keys != nil && keys[i]
		total += float64(sz)
		for l := Full; l <= MaxLevel; l++ {
			if l.Admit(i, key) {
				admitted[l] += float64(sz)
			}
		}
	}
	if total == 0 {
		return [MaxLevel + 1]float64{1, 1, 1}
	}
	for l := range admitted {
		admitted[l] /= total
	}
	return admitted
}

// Permille converts a loss count out of a total into the report unit.
func Permille(lost, total int) int {
	if total <= 0 {
		return 0
	}
	return lost * 1000 / total
}
