package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/transport"
)

// tinyClip is a deliberately short synthetic Windows Media clip for the
// in-tree live loopback test: live sessions run in real time, so the full
// Table 1 clips (tens of seconds) are reserved for scripts/live_smoke.sh.
// Set 9 keeps its Name clear of the real library.
func tinyClip() media.Clip {
	return media.Clip{
		Set:         9,
		Format:      media.WindowsMedia,
		Class:       media.Low,
		Content:     media.Sports,
		EncodedKbps: 56,
		Duration:    1200 * time.Millisecond,
	}
}

// TestLiveLoopbackMatchesSim is the headline parity pin: a clip streamed
// between two live transports over real loopback UDP sockets delivers
// exactly the payload set the simulator delivers over a clean path — same
// unit count, same order-independent digest, zero loss.
func TestLiveLoopbackMatchesSim(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback session runs in real time")
	}
	clip := tinyClip()
	wantDigest, wantUnits, err := WMSPayloadDigest(clip)
	if err != nil {
		t.Fatal(err)
	}

	lo := inet.MakeAddr(127, 0, 0, 1)
	ltSrv, err := transport.NewLive(transport.Config{BindIP: lo, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ltSrv.Close()
	ltCli, err := transport.NewLive(transport.Config{BindIP: lo, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ltCli.Close()

	ls, err := ServeLive(ltSrv, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ltSrv.DoWait(func(eventsim.Time) { ls.WMS.Register(clip.Name(), clip) })

	rep, err := PlayLive(ltCli, lo, clip, 30*time.Second, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnitsLost != 0 {
		t.Errorf("live loopback lost %d units; parity needs a lossless path", rep.UnitsLost)
	}
	if rep.Units != wantUnits {
		t.Errorf("live delivered %d units, sim delivered %d", rep.Units, wantUnits)
	}
	if rep.Digest != wantDigest {
		t.Errorf("live digest %s != sim digest %s", rep.Digest, wantDigest)
	}
	if rep.Bytes == 0 || rep.Profile.Packets == 0 {
		t.Errorf("report looks empty: bytes=%d packets=%d", rep.Bytes, rep.Profile.Packets)
	}
}

// TestWMSPayloadDigestGolden pins the simulated reference digest of the
// paper's clip 2/low against the committed golden that
// scripts/live_smoke.sh also checks a real -play session against. If an
// intentional protocol change moves this, regenerate the file with
// UPDATE_GOLDEN=1 and re-run the smoke test.
func TestWMSPayloadDigestGolden(t *testing.T) {
	clip, ok := media.FindClip(2, media.WindowsMedia, media.Low)
	if !ok {
		t.Fatal("clip 2/low missing from the library")
	}
	digest, units, err := WMSPayloadDigest(clip)
	if err != nil {
		t.Fatal(err)
	}
	if units == 0 {
		t.Fatal("reference session delivered no units")
	}
	path := filepath.Join("testdata", "live_digest_2low.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(digest+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := digest; got != strings.TrimSpace(string(want)) {
		t.Errorf("digest %s != golden %s", got, strings.TrimSpace(string(want)))
	}
}
