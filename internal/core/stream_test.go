package core

import (
	"testing"

	"turbulence/internal/media"
	"turbulence/internal/netem"
)

// streamParityPlanCheck runs one plan in both worlds — traces retained and
// profiled (the reference), then StreamProfiles at several worker counts —
// and requires the online profiles to be *exactly* equal to the
// trace-derived ones, cell by cell.
func streamParityPlanCheck(t *testing.T, plan *Plan, workerSet []int) {
	t.Helper()
	ref, err := NewRunner(WithWorkers(0), WithTraceRetention(DropTracesAfterProfile)).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]Comparison, len(ref))
	for _, res := range ref {
		if res.Comparison == nil {
			t.Fatalf("reference cell %v missing profiles", res.Key)
		}
		want[res.Key.Index] = *res.Comparison
	}
	for _, workers := range workerSet {
		results, err := NewRunner(WithWorkers(workers), WithTraceRetention(StreamProfiles)).Run(plan)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(ref) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(results), len(ref))
		}
		for _, res := range results {
			if res.Err != nil {
				t.Fatalf("workers=%d cell %v: %v", workers, res.Key, res.Err)
			}
			if res.Run.Trace != nil || res.Run.WMPFlow != nil || res.Run.RealFlow != nil {
				t.Fatalf("workers=%d cell %v: StreamProfiles retained a trace", workers, res.Key)
			}
			if res.Comparison == nil {
				t.Fatalf("workers=%d cell %v: no online profiles", workers, res.Key)
			}
			if *res.Comparison != want[res.Key.Index] {
				t.Fatalf("workers=%d cell %v: online profiles differ from trace-derived:\nonline WMP:  %v\ntrace  WMP:  %v\nonline Real: %v\ntrace  Real: %v",
					workers, res.Key,
					res.Comparison.WMP, want[res.Key.Index].WMP,
					res.Comparison.Real, want[res.Key.Index].Real)
			}
			// Everything that isn't the trace survives streaming.
			if res.Run.WMP == nil || res.Run.Real == nil || res.Run.Downlink.Forwarded == 0 {
				t.Fatalf("workers=%d cell %v: non-trace results missing", workers, res.Key)
			}
		}
	}
}

// TestStreamProfilesMatchTraceProfilesQuick is the always-on parity
// sample: two pairs under the faithful testbed and one impaired scenario.
func TestStreamProfilesMatchTraceProfilesQuick(t *testing.T) {
	plan := NewPlan(2002).
		ForPairs(PairKey{2, media.High}, PairKey{4, media.Low}).
		UnderScenarios(nil, mustScenario(t, "lossy-wifi"))
	streamParityPlanCheck(t, plan, []int{2})
}

// TestStreamProfilesMatchTraceProfiles is the acceptance pin for online
// analysis: across all 13 Table 1 pairs, the faithful testbed and every
// named netem scenario, at workers ∈ {1, 4, all}, StreamProfiles produces
// profiles exactly equal to profiling retained traces — while never
// materialising a trace.
func TestStreamProfilesMatchTraceProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps in -short mode")
	}
	scenarios := append([]*netem.Scenario{nil}, netem.All()...)
	plan := NewPlan(2002).UnderScenarios(scenarios...)
	streamParityPlanCheck(t, plan, []int{1, 4, 0})
}
