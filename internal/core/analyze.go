package core

import (
	"fmt"

	"turbulence/internal/capture"
)

// FlowProfile is the turbulence characterisation of one streaming flow —
// the paper's analytical output, condensing a capture into the properties
// its figures plot.
type FlowProfile struct {
	Packets   int
	Datagrams int // application datagrams (fragment trains collapsed)

	// Size structure (Figures 6-7).
	MeanSize float64 // wire bytes
	SizeCV   float64 // coefficient of variation of wire sizes

	// Timing structure (Figures 8-9); group interarrivals collapse
	// fragment trains as the paper does.
	MeanInterarrival float64 // seconds
	InterarrivalCV   float64

	// Fragmentation (Figures 4-5).
	FragShare   float64 // continuation fragments / wire packets
	MeanTrain   float64 // wire packets per datagram
	MaxWireSize int

	// Rate structure (Figures 10-11).
	AvgRateBps float64
	BurstRatio float64 // startup rate over steady rate

	// Classification (the paper's CBR-versus-varied distinction).
	CBR bool
}

// Thresholds for the CBR classification: MediaPlayer-like flows show
// near-zero size and interarrival variation once fragment trains are
// collapsed.
const (
	cbrSizeCV = 0.12
	cbrIACV   = 0.15
)

// ProfileFlow computes the turbulence profile of a captured flow by
// replaying its records through the online analyzer — the same accumulator
// a StreamProfiles sweep feeds at capture time. One code path computes the
// profile in both worlds, which is what makes online and trace-derived
// profiles exactly equal (pinned by TestStreamProfilesMatchTraceProfiles).
func ProfileFlow(ft *capture.FlowTrace) FlowProfile {
	var m capture.FlowMetrics
	ft.Replay(&m)
	return ProfileFromMetrics(&m)
}

// ProfileFromMetrics renders an online analyzer's accumulated state as a
// FlowProfile.
func ProfileFromMetrics(m *capture.FlowMetrics) FlowProfile {
	var p FlowProfile
	p.Packets = m.Packets()
	if p.Packets == 0 {
		return p
	}
	fs := m.Fragmentation()
	p.Datagrams = fs.Datagrams
	p.FragShare = fs.ContinuationShare()
	if fs.Datagrams > 0 {
		p.MeanTrain = float64(fs.Packets) / float64(fs.Datagrams)
	}

	p.MeanSize = m.Sizes().Mean()
	p.SizeCV = m.Sizes().CV()
	p.MaxWireSize = int(m.Sizes().Max)

	p.MeanInterarrival = m.GroupInterarrivals().Mean()
	p.InterarrivalCV = m.GroupInterarrivals().CV()

	p.AvgRateBps = m.AverageRate()
	p.BurstRatio = m.BurstRatio()
	// Classify: collapse trains first, as the paper does, so WMP's
	// fragment bursts don't disguise its CBR pacing. Size regularity is
	// judged on first-packets-of-train too.
	p.CBR = m.FirstSizes().CV() <= cbrSizeCV && p.InterarrivalCV <= cbrIACV
	return p
}

// firstPacketSizes returns wire sizes of datagram-initial packets — the
// Section IV model fitter's sample.
func firstPacketSizes(ft *capture.FlowTrace) []float64 {
	var out []float64
	for i, n := 0, ft.Len(); i < n; i++ {
		if r := ft.At(i); r.FragOff == 0 {
			out = append(out, float64(r.WireLen))
		}
	}
	return out
}

// String renders the profile compactly.
func (p FlowProfile) String() string {
	kind := "VBR"
	if p.CBR {
		kind = "CBR"
	}
	return fmt.Sprintf("%s pkts=%d meanSize=%.0fB sizeCV=%.2f ia=%.0fms iaCV=%.2f frag=%.0f%% burst=%.2f rate=%.0fKbps",
		kind, p.Packets, p.MeanSize, p.SizeCV, p.MeanInterarrival*1000, p.InterarrivalCV,
		p.FragShare*100, p.BurstRatio, p.AvgRateBps/1000)
}

// Comparison is the paper's headline side-by-side of the two players for
// one pair run.
type Comparison struct {
	Set       int
	ClassName string
	Real, WMP FlowProfile
}

// Compare profiles both flows of a pair run.
func Compare(run *PairRun) Comparison {
	return Comparison{
		Set:       run.Set,
		ClassName: run.Class.String(),
		Real:      ProfileFlow(run.RealFlow),
		WMP:       ProfileFlow(run.WMPFlow),
	}
}
