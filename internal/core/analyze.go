package core

import (
	"fmt"
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/stats"
)

// FlowProfile is the turbulence characterisation of one streaming flow —
// the paper's analytical output, condensing a capture into the properties
// its figures plot.
type FlowProfile struct {
	Packets   int
	Datagrams int // application datagrams (fragment trains collapsed)

	// Size structure (Figures 6-7).
	MeanSize float64 // wire bytes
	SizeCV   float64 // coefficient of variation of wire sizes

	// Timing structure (Figures 8-9); group interarrivals collapse
	// fragment trains as the paper does.
	MeanInterarrival float64 // seconds
	InterarrivalCV   float64

	// Fragmentation (Figures 4-5).
	FragShare   float64 // continuation fragments / wire packets
	MeanTrain   float64 // wire packets per datagram
	MaxWireSize int

	// Rate structure (Figures 10-11).
	AvgRateBps float64
	BurstRatio float64 // startup rate over steady rate

	// Classification (the paper's CBR-versus-varied distinction).
	CBR bool
}

// Thresholds for the CBR classification: MediaPlayer-like flows show
// near-zero size and interarrival variation once fragment trains are
// collapsed.
const (
	cbrSizeCV = 0.12
	cbrIACV   = 0.15
)

// burstWindow is the startup window used for the burst ratio; steadyTail
// selects the steady-state sample at the end of the flow, past any
// buffering burst.
const (
	burstWindow = 8 * time.Second
	steadyTail  = 0.25 // final quarter of the flow
)

// ProfileFlow computes the turbulence profile of a captured flow.
func ProfileFlow(ft *capture.FlowTrace) FlowProfile {
	var p FlowProfile
	p.Packets = ft.Len()
	if p.Packets == 0 {
		return p
	}
	fs := ft.Fragmentation()
	p.Datagrams = fs.Datagrams
	p.FragShare = fs.ContinuationShare()
	if fs.Datagrams > 0 {
		p.MeanTrain = float64(fs.Packets) / float64(fs.Datagrams)
	}

	sizes := ft.PacketSizes()
	ss := stats.Summarize(sizes)
	p.MeanSize = ss.Mean
	if ss.Mean > 0 {
		p.SizeCV = ss.StdDev / ss.Mean
	}
	p.MaxWireSize = int(ss.Max)

	ia := ft.GroupInterarrivals()
	is := stats.Summarize(ia)
	p.MeanInterarrival = is.Mean
	if is.Mean > 0 {
		p.InterarrivalCV = is.StdDev / is.Mean
	}

	p.AvgRateBps = ft.AverageRate()
	p.BurstRatio = burstRatio(ft)
	// Classify: collapse trains first, as the paper does, so WMP's
	// fragment bursts don't disguise its CBR pacing. Size regularity is
	// judged on first-packets-of-train too.
	firstSizes := firstPacketSizes(ft)
	fss := stats.Summarize(firstSizes)
	firstCV := 0.0
	if fss.Mean > 0 {
		firstCV = fss.StdDev / fss.Mean
	}
	p.CBR = firstCV <= cbrSizeCV && p.InterarrivalCV <= cbrIACV
	return p
}

// firstPacketSizes returns wire sizes of datagram-initial packets.
func firstPacketSizes(ft *capture.FlowTrace) []float64 {
	var out []float64
	for i, n := 0, ft.Len(); i < n; i++ {
		if r := ft.At(i); r.FragOff == 0 {
			out = append(out, float64(r.WireLen))
		}
	}
	return out
}

// burstRatio compares startup throughput to steady-state throughput.
func burstRatio(ft *capture.FlowTrace) float64 {
	if ft.Len() < 2 {
		return 0
	}
	start := ft.At(0).At
	end := ft.At(ft.Len() - 1).At
	span := end - start
	if span <= burstWindow*2 {
		return 1
	}
	var ts stats.TimeSeries
	for i, n := 0, ft.Len(); i < n; i++ {
		r := ft.At(i)
		ts.Add(r.At-start, float64(r.WireLen*8))
	}
	early := ts.WindowSum(0, burstWindow) / burstWindow.Seconds()
	tailStart := time.Duration(float64(span) * (1 - steadyTail))
	steady := ts.WindowSum(tailStart, span) / (time.Duration(float64(span) * steadyTail)).Seconds()
	if steady <= 0 {
		return 0
	}
	return early / steady
}

// String renders the profile compactly.
func (p FlowProfile) String() string {
	kind := "VBR"
	if p.CBR {
		kind = "CBR"
	}
	return fmt.Sprintf("%s pkts=%d meanSize=%.0fB sizeCV=%.2f ia=%.0fms iaCV=%.2f frag=%.0f%% burst=%.2f rate=%.0fKbps",
		kind, p.Packets, p.MeanSize, p.SizeCV, p.MeanInterarrival*1000, p.InterarrivalCV,
		p.FragShare*100, p.BurstRatio, p.AvgRateBps/1000)
}

// Comparison is the paper's headline side-by-side of the two players for
// one pair run.
type Comparison struct {
	Set       int
	ClassName string
	Real, WMP FlowProfile
}

// Compare profiles both flows of a pair run.
func Compare(run *PairRun) Comparison {
	return Comparison{
		Set:       run.Set,
		ClassName: run.Class.String(),
		Real:      ProfileFlow(run.RealFlow),
		WMP:       ProfileFlow(run.WMPFlow),
	}
}
