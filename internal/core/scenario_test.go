package core

import (
	"testing"

	"turbulence/internal/media"
	"turbulence/internal/netem"
)

// mustScenario resolves a built-in scenario.
func mustScenario(t *testing.T, name string) *netem.Scenario {
	t.Helper()
	sc, err := netem.Find(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// tracesEqual compares two runs' captures byte for byte.
func tracesEqual(t *testing.T, a, b *PairRun) {
	t.Helper()
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", a.Trace.Len(), b.Trace.Len())
	}
	for j := 0; j < a.Trace.Len(); j++ {
		if !recordsEqual(a.Trace.At(j), b.Trace.At(j)) {
			t.Fatalf("record %d differs:\n%v\n%v", j, a.Trace.At(j), b.Trace.At(j))
		}
	}
}

// TestPaperBaselineScenarioIsFaithful pins the scenario layer's zero-cost
// guarantee: streaming under "paper-baseline" is byte-identical to
// streaming with no scenario at all — same packets, same draws, same
// counters.
func TestPaperBaselineScenarioIsFaithful(t *testing.T) {
	plain, err := RunPair(2002, 2, media.High)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunPairWith(2002, 2, media.High, Options{Scenario: mustScenario(t, "paper-baseline")})
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, plain, base)
	if plain.Downlink != base.Downlink || plain.Uplink != base.Uplink {
		t.Fatalf("path stats differ: %+v vs %+v", plain.Downlink, base.Downlink)
	}
	if base.Scenario != "paper-baseline" || plain.Scenario != "" {
		t.Fatalf("scenario labels: %q, %q", base.Scenario, plain.Scenario)
	}
}

// TestScenarioDeterminismAcrossWorkers is the acceptance guarantee for
// the scenario engine: identical seed+scenario produces byte-identical
// PairRun output whether runs execute sequentially or on a worker pool,
// and across repeated invocations.
func TestScenarioDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full pair runs in -short mode")
	}
	keys := []PairKey{{Set: 1, Class: media.High}, {Set: 6, Class: media.VeryHigh}}
	opts := Options{Scenario: mustScenario(t, "lossy-wifi")}
	seq, err := RunPairsWith(77, keys, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, workers := range map[string]int{"parallel": 4, "repeat-sequential": 1} {
		again, err := RunPairsWith(77, keys, opts, workers)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range seq {
			tracesEqual(t, seq[i], again[i])
			if seq[i].Downlink != again[i].Downlink || seq[i].Uplink != again[i].Uplink {
				t.Fatalf("%s run %d: path stats differ", name, i)
			}
			if pa, pb := ProfileFlow(seq[i].WMPFlow), ProfileFlow(again[i].WMPFlow); pa != pb {
				t.Fatalf("%s run %d: WMP profiles differ", name, i)
			}
		}
	}
}

// TestScenarioChangesTheNetwork guards against a scenario that silently
// fails to wire in: bursty wifi loss must show up in the downlink drop
// breakdown as model loss, not queue drops.
func TestScenarioChangesTheNetwork(t *testing.T) {
	base, err := RunPair(11, 1, media.High)
	if err != nil {
		t.Fatal(err)
	}
	wifi, err := RunPairWith(11, 1, media.High, Options{Scenario: mustScenario(t, "lossy-wifi")})
	if err != nil {
		t.Fatal(err)
	}
	if wifi.Downlink.DroppedLoss <= base.Downlink.DroppedLoss*2 {
		t.Fatalf("lossy-wifi downlink loss %d not clearly above baseline %d",
			wifi.Downlink.DroppedLoss, base.Downlink.DroppedLoss)
	}
	if base.Downlink.Forwarded == 0 || wifi.Downlink.Forwarded == 0 {
		t.Fatal("no forwarded packets recorded")
	}
}

// TestScenarioMatrixCompletes streams every Table 1 pair under every
// registered scenario: the whole library must keep every session
// completing within its horizon, the calibration contract of
// scenarios.go.
func TestScenarioMatrixCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario matrix in -short mode")
	}
	var scenarios []*netem.Scenario
	for _, sc := range netem.All() {
		if sc.Hop != nil { // skip test-registered stubs
			scenarios = append(scenarios, sc)
		}
	}
	rows, err := RunScenarioMatrix(2002, AllPairs(), scenarios, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if len(row.Runs) != len(AllPairs()) {
			t.Fatalf("%s: %d runs", row.Scenario.Name, len(row.Runs))
		}
		for _, run := range row.Runs {
			if run.Scenario != row.Scenario.Name {
				t.Fatalf("run labelled %q under %q", run.Scenario, row.Scenario.Name)
			}
			if !run.WMP.Completed || !run.Real.Completed {
				t.Fatalf("%s %d/%v: incomplete playback", row.Scenario.Name, run.Set, run.Class)
			}
			if run.Downlink.Forwarded == 0 {
				t.Fatalf("%s %d/%v: empty downlink stats", row.Scenario.Name, run.Set, run.Class)
			}
		}
	}
}
