package core

import (
	"fmt"
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netsim"
	"turbulence/internal/rdt"
	"turbulence/internal/transport"
	"turbulence/internal/wms"
)

// liveServerAddr is the simulated server address WMSPayloadDigest uses for
// the reference run. Arbitrary but fixed: the digest covers payload bytes,
// not addresses.
var liveServerAddr = inet.MakeAddr(207, 46, 1, 9)

// WMSPayloadDigest streams clip over a clean (impairment-free) simulated
// path and returns the order-independent digest of the delivered data
// units. This is the parity reference for a live loopback session: with
// no loss on either path, the live client must deliver exactly the same
// (seq, payload) set the simulated client does, whatever the packet
// timing looked like.
func WMSPayloadDigest(clip media.Clip) (digest string, units int, err error) {
	n := netsim.New(1)
	client := n.AddHost(ClientAddr)
	srv := n.AddHost(liveServerAddr)
	// A clean fat path: no loss, jitter or queue pressure — nothing that
	// could drop a unit and make the reference diverge from lossless
	// loopback delivery.
	n.ConnectDuplex(ClientAddr, liveServerAddr, []netsim.HopSpec{
		{Addr: inet.MakeAddr(10, 99, 0, 1), Bandwidth: 100e6, PropDelay: time.Millisecond},
		{Addr: inet.MakeAddr(10, 99, 0, 2), Bandwidth: 100e6, PropDelay: time.Millisecond},
	})
	server := wms.NewServer(srv)
	server.Register(clip.Name(), clip)
	var dig wms.UnitDigest
	player := wms.NewPlayer(client, liveServerAddr, clip.Name(), WMPCtlPort, WMPDataPort, wms.PlayerEvents{
		DataUnit: func(_ eventsim.Time, seq uint32, payload []byte) { dig.Add(seq, payload) },
	})
	player.Start()
	horizon := eventsim.Time(clip.Duration + wms.Preroll + time.Minute)
	if err := n.Run(horizon); err != nil {
		return "", 0, err
	}
	if player.State() != wms.Done {
		return "", 0, fmt.Errorf("core: reference session stalled in state %v", player.State())
	}
	return dig.Sum(), dig.Units(), nil
}

// LiveServers are the protocol servers ServeLive attached to a live
// transport.
type LiveServers struct {
	WMS *wms.Server
	RDT *rdt.Server
}

// ServeLive attaches a WMS and an RDT server to the live transport and
// registers the full clip library on both. It returns an error if the WMS
// control port cannot be bound (the primary live path is unusable);
// lesser failures — the RTSP control port is privileged (554) and
// typically needs root — are reported through logf and leave that server
// reachable only in theory.
func ServeLive(lt *transport.Live, logf func(format string, args ...any)) (*LiveServers, error) {
	var ls LiveServers
	lt.DoWait(func(eventsim.Time) {
		ls.WMS = wms.NewServerOn(lt)
		ls.RDT = rdt.NewServerOn(lt)
		for _, clip := range media.AllClips() {
			if clip.Format == media.WindowsMedia {
				ls.WMS.Register(clip.Name(), clip)
			} else {
				ls.RDT.Register(clip.Name(), clip)
			}
		}
	})
	if err := lt.BindErr(inet.PortMMSCtl); err != nil {
		return nil, fmt.Errorf("core: wms control port: %w", err)
	}
	if err := lt.BindErr(inet.PortRTSPCtl); err != nil && logf != nil {
		logf("rdt control port %d unavailable (privileged port?): %v", inet.PortRTSPCtl, err)
	}
	return &ls, nil
}

// LiveReport is the outcome of one live client session.
type LiveReport struct {
	Clip       media.Clip
	Digest     string // order-independent payload digest (wms.UnitDigest)
	Units      int    // data units delivered
	UnitsLost  int    // sequence gaps the player observed
	Bytes      int    // payload bytes received
	SendErrors int    // control-plane send failures
	Elapsed    time.Duration
	Profile    FlowProfile // online analyzer profile of the data flow
}

// PlayLive streams clip from a live WMS server at the given address and
// blocks until the session completes (or timeout expires). The receive
// path feeds the same online flow analyzer the simulator uses, so the
// report's Profile is directly comparable to a sim Comparison's WMP
// column; the Digest is comparable to WMSPayloadDigest of the same clip.
func PlayLive(lt *transport.Live, server inet.Addr, clip media.Clip, timeout time.Duration, logf func(format string, args ...any)) (*LiveReport, error) {
	var (
		dig     wms.UnitDigest
		metrics capture.FlowMetrics
		player  *wms.Player
		done    = make(chan struct{})
	)
	started := time.Now()
	lt.DoWait(func(now eventsim.Time) {
		lt.SetRecvTap(func(now eventsim.Time, local inet.Port, from inet.Endpoint, payloadLen int) {
			if local != WMPDataPort || from.Addr != server {
				return
			}
			// Synthesize the capture record a simulated tap would produce
			// for an unfragmented datagram of this payload (loopback's
			// 64 KB MTU means the kernel does not fragment these).
			metrics.Observe(&capture.Record{
				At:      time.Duration(now),
				WireLen: payloadLen + inet.UDPHeaderLen + inet.IPv4HeaderLen + inet.EthernetOverhead,
			})
		})
		lt.TrackSeqs(WMPDataPort, 4096, func(payload []byte) (uint32, bool) {
			h, _, err := wms.ParseData(payload)
			return h.Seq, err == nil
		})
		player = wms.NewPlayerOn(lt, server, clip.Name(), WMPCtlPort, WMPDataPort, wms.PlayerEvents{
			DataUnit: func(_ eventsim.Time, seq uint32, payload []byte) { dig.Add(seq, payload) },
			SendError: func(_ eventsim.Time, err error) {
				if logf != nil {
					logf("send error: %v", err)
				}
			},
			Done: func(eventsim.Time) { close(done) },
		})
		player.Start()
	})
	select {
	case <-done:
	case <-time.After(timeout):
		return nil, fmt.Errorf("core: live session timed out after %v (server %s unreachable or clip stalled)", timeout, server)
	}
	rep := &LiveReport{Clip: clip, Elapsed: time.Since(started)}
	lt.DoWait(func(eventsim.Time) {
		rep.Digest = dig.Sum()
		rep.Units = dig.Units()
		rep.UnitsLost = player.UnitsLost
		rep.Bytes = player.BytesReceived
		rep.SendErrors = player.SendErrors
		rep.Profile = ProfileFromMetrics(&metrics)
	})
	return rep, nil
}
