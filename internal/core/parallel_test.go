package core

import (
	"bytes"
	"testing"

	"turbulence/internal/capture"
	"turbulence/internal/media"
)

// recordsEqual compares two captured records field by field, including the
// wire bytes rebuilt from the columnar store.
func recordsEqual(a, b capture.Record) bool {
	if a.At != b.At || a.Dir != b.Dir || a.WireLen != b.WireLen ||
		a.Src != b.Src || a.Dst != b.Dst || a.Proto != b.Proto ||
		a.IPID != b.IPID || a.FragOff != b.FragOff || a.MoreFrag != b.MoreFrag ||
		a.IPLen != b.IPLen || a.HasPorts != b.HasPorts ||
		a.SrcPort != b.SrcPort || a.DstPort != b.DstPort || a.PayloadLen != b.PayloadLen {
		return false
	}
	return bytes.Equal(a.Raw(), b.Raw())
}

// TestRunPairsParallelDeterminism is the determinism-under-parallelism
// guarantee: fanning pair runs out across a worker pool must yield
// byte-identical traces and identical per-flow profiles to the sequential
// path, in the same order.
func TestRunPairsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full pair runs in -short mode")
	}
	keys := AllPairs()[:4]
	seq, err := RunPairs(77, keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunPairs(77, keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Set != b.Set || a.Class != b.Class {
			t.Fatalf("run %d ordering differs: %d/%v vs %d/%v", i, a.Set, a.Class, b.Set, b.Class)
		}
		if a.Trace.Len() != b.Trace.Len() {
			t.Fatalf("run %d trace lengths differ: %d vs %d", i, a.Trace.Len(), b.Trace.Len())
		}
		for j := 0; j < a.Trace.Len(); j++ {
			if !recordsEqual(a.Trace.At(j), b.Trace.At(j)) {
				t.Fatalf("run %d record %d differs:\n%v\n%v", i, j, a.Trace.At(j), b.Trace.At(j))
			}
		}
		for _, flows := range [][2]*capture.FlowTrace{{a.WMPFlow, b.WMPFlow}, {a.RealFlow, b.RealFlow}} {
			pa, pb := ProfileFlow(flows[0]), ProfileFlow(flows[1])
			if pa != pb {
				t.Fatalf("run %d flow profiles differ:\n%v\n%v", i, pa, pb)
			}
		}
		if a.WMP.AvgFPS != b.WMP.AvgFPS || a.WMP.PacketsReceived != b.WMP.PacketsReceived ||
			a.Real.AvgPlaybackBps != b.Real.AvgPlaybackBps || a.Real.PacketsReceived != b.Real.PacketsReceived {
			t.Fatalf("run %d tracker reports differ", i)
		}
	}
}

// TestRunPairsErrorPropagates asserts the worker pool surfaces failures.
func TestRunPairsErrorPropagates(t *testing.T) {
	keys := []PairKey{{Set: 1, Class: media.Low}, {Set: 99, Class: media.Low}}
	if _, err := RunPairs(7, keys, 2); err == nil {
		t.Fatal("unknown set did not error through the worker pool")
	}
}
