package core

import (
	"math"
	"testing"
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/stats"
)

func TestSitesMatchLibrary(t *testing.T) {
	if len(Sites()) != len(media.Library()) {
		t.Fatal("site count != data set count")
	}
	for _, s := range Sites() {
		if s.Hops < 10 || s.Hops > 30 {
			t.Fatalf("site %d hops %d outside Figure 2 axis", s.Set, s.Hops)
		}
		if s.BaseRTT < 20*time.Millisecond || s.BaseRTT > 160*time.Millisecond {
			t.Fatalf("site %d base RTT %v outside Figure 1 range", s.Set, s.BaseRTT)
		}
		if _, ok := SiteFor(s.Set); !ok {
			t.Fatalf("SiteFor(%d) missing", s.Set)
		}
		specs := s.HopSpecs()
		if len(specs) != s.Hops {
			t.Fatalf("site %d specs=%d", s.Set, len(specs))
		}
		if specs[0].Bandwidth != campusBandwidth {
			t.Fatal("first hop must be the campus link")
		}
		if specs[len(specs)-1].Bandwidth != s.Bottleneck {
			t.Fatal("last hop must carry the bottleneck")
		}
	}
	if _, ok := SiteFor(99); ok {
		t.Fatal("ghost site")
	}
}

func TestNewTestbedRegistersEverything(t *testing.T) {
	tb := NewTestbed(1)
	if len(tb.Sites) != 6 {
		t.Fatalf("sites=%d", len(tb.Sites))
	}
	for set := 1; set <= 6; set++ {
		site := tb.Site(set)
		if site.WMS == nil || site.RDT == nil {
			t.Fatalf("site %d servers missing", set)
		}
		if tb.Net.PathBetween(ClientAddr, site.Profile.Addr) == nil {
			t.Fatalf("site %d not connected", set)
		}
		if tb.Net.PathBetween(site.Profile.Addr, ClientAddr) == nil {
			t.Fatalf("site %d reverse path missing", set)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown site did not panic")
		}
	}()
	tb.Site(42)
}

func TestAllPairsEnumeration(t *testing.T) {
	pairs := AllPairs()
	if len(pairs) != 13 { // 5 sets x 2 classes + set 6 x 3
		t.Fatalf("pairs=%d, want 13", len(pairs))
	}
	seen := make(map[PairKey]bool)
	for _, k := range pairs {
		if seen[k] {
			t.Fatalf("duplicate pair %+v", k)
		}
		seen[k] = true
	}
	if !seen[(PairKey{Set: 6, Class: media.VeryHigh})] {
		t.Fatal("set 6 very-high pair missing")
	}
}

// TestRunPairHeadlineFindings executes the paper's unit experiment on the
// shortest data set and asserts every §3 headline on the result.
func TestRunPairHeadlineFindings(t *testing.T) {
	run, err := RunPair(7, 2, media.High) // set 2: 39 s commercial, 268/307.2 Kbps
	if err != nil {
		t.Fatal(err)
	}
	// (1) MediaPlayer fragments at high rates; RealPlayer never does.
	wmpProf := ProfileFlow(run.WMPFlow)
	realProf := ProfileFlow(run.RealFlow)
	if wmpProf.FragShare < 0.5 {
		t.Fatalf("WMP frag share=%.2f, want ~0.66", wmpProf.FragShare)
	}
	if realProf.FragShare != 0 {
		t.Fatalf("Real frag share=%.2f, want 0", realProf.FragShare)
	}
	// (2) WMP is CBR; Real is varied.
	if !wmpProf.CBR {
		t.Fatalf("WMP not classified CBR: %v", wmpProf)
	}
	if realProf.CBR {
		t.Fatalf("Real classified CBR: %v", realProf)
	}
	if realProf.SizeCV <= wmpProf.SizeCV {
		t.Fatal("Real size variation should exceed WMP's")
	}
	// (3) Real bursts at startup; WMP does not. On this 39 s clip the
	// burst spans most of the stream (the whole clip fits in the buffer),
	// so compare the startup rate to the encoding rate directly.
	realClip, wmpClip := run.Clips()
	realEarly := earlyRate(run.RealFlow)
	if ratio := realEarly / realClip.EncodedBps(); ratio < 1.2 {
		t.Fatalf("Real startup rate ratio=%.2f, want > 1.2", ratio)
	}
	wmpEarly := earlyRate(run.WMPFlow)
	if ratio := wmpEarly / wmpClip.EncodedBps(); ratio < 0.85 || ratio > 1.25 {
		t.Fatalf("WMP startup rate ratio=%.2f, want ~1", ratio)
	}
	// (4) Both reach full motion at high rate.
	if math.Abs(run.WMP.AvgFPS-25) > 2 || math.Abs(run.Real.AvgFPS-25) > 2 {
		t.Fatalf("fps: wmp=%.1f real=%.1f", run.WMP.AvgFPS, run.Real.AvgFPS)
	}
	// (5) Real begins playback sooner.
	if run.Real.StartupDelay() >= run.WMP.StartupDelay() {
		t.Fatalf("startup: real=%v wmp=%v", run.Real.StartupDelay(), run.WMP.StartupDelay())
	}
	// (6) Network checks ran and look like Figure 1/2 conditions.
	if run.PingBefore == nil || run.PingBefore.Received == 0 {
		t.Fatal("pre-run ping missing")
	}
	if run.PingAfter == nil || run.PingAfter.Received == 0 {
		t.Fatal("post-run ping missing")
	}
	if !run.Route.Reached || run.Route.HopCount() != run.Site.Hops {
		t.Fatalf("route: reached=%t hops=%d want %d", run.Route.Reached, run.Route.HopCount(), run.Site.Hops)
	}
	rtt := run.PingBefore.AvgRTT
	if rtt < run.Site.BaseRTT || rtt > run.Site.BaseRTT+40*time.Millisecond {
		t.Fatalf("ping RTT=%v vs base %v", rtt, run.Site.BaseRTT)
	}
	// (7) Comparison wrapper works.
	cmp := Compare(run)
	if cmp.Set != 2 || cmp.ClassName != "high" {
		t.Fatalf("comparison: %+v", cmp)
	}
	if cmp.Real.String() == "" || cmp.WMP.String() == "" {
		t.Fatal("profile strings")
	}
}

func TestRunPairLowRate(t *testing.T) {
	run, err := RunPair(8, 3, media.Low) // set 3: 60 s sports, 36.5/37.9 Kbps
	if err != nil {
		t.Fatal(err)
	}
	wmpProf := ProfileFlow(run.WMPFlow)
	realProf := ProfileFlow(run.RealFlow)
	// No fragmentation below 100 Kbps for either player (Figure 5).
	if wmpProf.FragShare != 0 || realProf.FragShare != 0 {
		t.Fatalf("low-rate fragmentation: wmp=%.2f real=%.2f", wmpProf.FragShare, realProf.FragShare)
	}
	// Real's burst ratio approaches 3 at low rates (Figure 11).
	if realProf.BurstRatio < 2.0 {
		t.Fatalf("Real low-rate burst=%.2f, want ~3", realProf.BurstRatio)
	}
	// Frame rates: Real ~19, WMP ~13 (Figure 13).
	if run.Real.AvgFPS <= run.WMP.AvgFPS {
		t.Fatalf("low-rate fps: real=%.1f should beat wmp=%.1f", run.Real.AvgFPS, run.WMP.AvgFPS)
	}
	if math.Abs(run.WMP.AvgFPS-13) > 2 {
		t.Fatalf("WMP low fps=%.1f, want ~13", run.WMP.AvgFPS)
	}
	// Real's average playback bandwidth exceeds encoding; WMP's tracks it.
	if run.Real.AvgPlaybackBps <= run.Real.EncodedBps {
		t.Fatal("Real playback bandwidth should exceed encoding rate")
	}
	ratio := run.WMP.AvgPlaybackBps / run.WMP.EncodedBps
	if ratio < 0.8 || ratio > 1.35 {
		t.Fatalf("WMP playback/encoded=%.2f, want ~1", ratio)
	}
}

func TestRunPairErrors(t *testing.T) {
	if _, err := RunPair(1, 99, media.Low); err == nil {
		t.Fatal("unknown set accepted")
	}
	if _, err := RunPair(1, 1, media.VeryHigh); err == nil {
		t.Fatal("missing class accepted")
	}
}

func TestRunPairDeterminism(t *testing.T) {
	a, err := RunPair(9, 2, media.Low)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPair(9, 2, media.Low)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", a.Trace.Len(), b.Trace.Len())
	}
	for i := 0; i < a.Trace.Len(); i++ {
		ra, rb := a.Trace.At(i), b.Trace.At(i)
		if ra.At != rb.At || ra.WireLen != rb.WireLen {
			t.Fatalf("record %d differs", i)
		}
	}
	if a.WMP.AvgFPS != b.WMP.AvgFPS || a.Real.AvgPlaybackBps != b.Real.AvgPlaybackBps {
		t.Fatal("reports differ across identical seeds")
	}
}

func TestFlowModelRoundTrip(t *testing.T) {
	// Section IV: fit a model from a measured flow, generate a synthetic
	// flow, and verify the synthetic flow reproduces the measured
	// turbulence profile.
	run, err := RunPair(10, 2, media.High)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		flow *capture.FlowTrace
	}{
		{"wmp", run.WMPFlow},
		{"real", run.RealFlow},
	} {
		t.Run(tc.name, func(t *testing.T) {
			measured := ProfileFlow(tc.flow)
			model := FitModel(tc.flow)
			rng := eventsim.NewRNG(4)
			gen := model.Generate(rng, 60*time.Second, inet.Flow{
				Src: inet.Endpoint{Addr: inet.MakeAddr(1, 1, 1, 1), Port: 9000},
				Dst: DataEndpointWMP(),
			})
			if gen.Len() == 0 {
				t.Fatal("generator produced nothing")
			}
			flows := gen.SplitFlows()
			if len(flows) != 1 {
				t.Fatalf("generated flows=%d", len(flows))
			}
			synth := ProfileFlow(flows[0])
			// Mean size within 15%.
			if rel(synth.MeanSize, measured.MeanSize) > 0.15 {
				t.Fatalf("mean size: synth=%.0f measured=%.0f", synth.MeanSize, measured.MeanSize)
			}
			// Fragment share within 0.1 absolute.
			if math.Abs(synth.FragShare-measured.FragShare) > 0.1 {
				t.Fatalf("frag share: synth=%.2f measured=%.2f", synth.FragShare, measured.FragShare)
			}
			// CBR classification preserved.
			if synth.CBR != measured.CBR {
				t.Fatalf("CBR flag: synth=%t measured=%t", synth.CBR, measured.CBR)
			}
		})
	}
}

func TestModelFromPair(t *testing.T) {
	run, err := RunPair(11, 3, media.Low)
	if err != nil {
		t.Fatal(err)
	}
	realM, wmpM := ModelFromPair(run)
	if len(realM.SizeCDF) == 0 || len(wmpM.SizeCDF) == 0 {
		t.Fatal("models missing size CDFs")
	}
	// Real's burst survives into the model; WMP's does not.
	if realM.BurstRatio < 1.5 {
		t.Fatalf("real model burst=%.2f", realM.BurstRatio)
	}
	if wmpM.BurstRatio > 1.2 {
		t.Fatalf("wmp model burst=%.2f", wmpM.BurstRatio)
	}
	if realM.BurstDuration == 0 {
		t.Fatal("real model should have a burst duration")
	}
	if wmpM.BurstDuration != 0 {
		t.Fatal("wmp model should have no burst")
	}
}

func TestGeneratorBurstShape(t *testing.T) {
	m := FlowModel{
		SizeCDF:       []stats.Point{{X: 600, Y: 1}},
		IntervalCDF:   []stats.Point{{X: 0.1, Y: 1}},
		TrainLen:      1,
		BurstRatio:    3,
		BurstDuration: 10 * time.Second,
	}
	rng := eventsim.NewRNG(5)
	tr := m.Generate(rng, 40*time.Second, inet.Flow{
		Src: inet.Endpoint{Addr: inet.MakeAddr(1, 1, 1, 1), Port: 9000},
		Dst: DataEndpointReal(),
	})
	ft := tr.SplitFlows()[0]
	prof := ProfileFlow(ft)
	if prof.BurstRatio < 2.2 {
		t.Fatalf("generated burst ratio=%.2f, want ~3", prof.BurstRatio)
	}
}

func TestGeneratorEmptyModel(t *testing.T) {
	var m FlowModel
	tr := m.Generate(eventsim.NewRNG(1), time.Second, inet.Flow{})
	if tr.Len() != 0 {
		t.Fatal("empty model generated packets")
	}
}

// earlyRate measures a flow's mean throughput over its first 8 seconds.
func earlyRate(ft *capture.FlowTrace) float64 {
	if ft.Len() == 0 {
		return 0
	}
	start := ft.At(0).At
	var bits float64
	for i, n := 0, ft.Len(); i < n; i++ {
		if r := ft.At(i); r.At-start <= 8*time.Second {
			bits += float64(r.WireLen * 8)
		}
	}
	return bits / 8
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestRunSubset(t *testing.T) {
	keys := []PairKey{{Set: 2, Class: media.Low}, {Set: 3, Class: media.Low}}
	runs, err := RunSubset(12, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Set != 2 || runs[1].Set != 3 {
		t.Fatalf("subset: %d runs", len(runs))
	}
	// Subset results equal standalone runs with the derived seeds.
	solo, err := RunPair(SeedFor(12, keys[0]), 2, media.Low)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Trace.Len() != runs[0].Trace.Len() {
		t.Fatal("subset seed derivation diverges from standalone runs")
	}
}

func TestDataEndpoints(t *testing.T) {
	if DataEndpointWMP().Port != WMPDataPort || DataEndpointReal().Port != RDTDataPort {
		t.Fatal("data endpoints")
	}
	if DataEndpointWMP().Addr != ClientAddr {
		t.Fatal("client address")
	}
}

func TestRunPairWithBottleneckOverride(t *testing.T) {
	// Starving the bottleneck must hurt the WMP stream measurably.
	healthy, err := RunPairWith(13, 1, media.High, Options{})
	if err != nil {
		t.Fatal(err)
	}
	starved, err := RunPairWith(13, 1, media.High, Options{BottleneckBps: 400e3})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.WMP.LossRate() > 0.02 {
		t.Fatalf("healthy run lossy: %v", healthy.WMP.LossRate())
	}
	if starved.WMP.LossRate() < 0.2 {
		t.Fatalf("starved run not lossy: %v", starved.WMP.LossRate())
	}
	if starved.Site.Bottleneck != 400e3 {
		t.Fatal("override not recorded in site profile")
	}
}

func TestRunPairWithScalingReducesStarvedLoss(t *testing.T) {
	base, err := RunPairWith(14, 1, media.High, Options{BottleneckBps: 500e3})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := RunPairWith(14, 1, media.High, Options{BottleneckBps: 500e3, EnableScaling: true})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.WMP.LossRate() >= base.WMP.LossRate() {
		t.Fatalf("scaling did not reduce WMP loss: %v vs %v",
			scaled.WMP.LossRate(), base.WMP.LossRate())
	}
}
