package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"turbulence/internal/media"
	"turbulence/internal/netem"
)

// TestPlanShape pins the pure-description side of the Plan API: canonical
// ordering, sizes, default axes and seed policies, all with zero
// simulation cost.
func TestPlanShape(t *testing.T) {
	if n := NewPlan(1).Size(); n != len(AllPairs()) {
		t.Fatalf("default plan size %d, want %d", n, len(AllPairs()))
	}
	sc := mustScenario(t, "lossy-wifi")
	plan := NewPlan(1).
		ForPairs(PairKey{1, media.High}, PairKey{6, media.VeryHigh}).
		UnderScenarios(nil, sc).
		WithVariants(Variant{Name: "faithful"}, Variant{Name: "nofrag", Opts: Options{WMSUnitCap: 1400}})
	if plan.Size() != 2*2*2 {
		t.Fatalf("size %d, want 8", plan.Size())
	}
	keys := plan.Keys()
	if len(keys) != 8 {
		t.Fatalf("keys %d, want 8", len(keys))
	}
	// Canonical order is scenario-major, then variant, then pair.
	if keys[0].Scenario != nil || keys[0].Variant.Name != "faithful" || keys[0].Pair.Set != 1 {
		t.Fatalf("first key %v", keys[0])
	}
	if keys[7].Scenario != sc || keys[7].Variant.Name != "nofrag" || keys[7].Pair.Set != 6 {
		t.Fatalf("last key %v", keys[7])
	}
	for i, k := range keys {
		if k.Index != i {
			t.Fatalf("key %d has index %d", i, k.Index)
		}
	}
	if got := keys[7].String(); got != "lossy-wifi/nofrag/set6/very-high" {
		t.Fatalf("key label %q", got)
	}
	// SeedCommon: same pair ⇒ same seed across scenario/variant cells.
	if plan.Seed(keys[0]) != plan.Seed(keys[6]) || plan.Seed(keys[0]) != SeedFor(1, keys[0].Pair) {
		t.Fatal("SeedCommon seeds diverge across treatment axes")
	}
	// SeedPerCell: every cell an independent draw.
	per := plan.WithSeedPolicy(SeedPerCell)
	seen := map[int64]bool{}
	for _, k := range per.Keys() {
		s := per.Seed(k)
		if seen[s] {
			t.Fatalf("SeedPerCell repeats seed %d", s)
		}
		seen[s] = true
	}
}

// TestPlanShardPartitions pins that shards partition the cell space: every
// cell lands in exactly one shard, sizes match Size(), and re-sharding
// panics.
func TestPlanShardPartitions(t *testing.T) {
	plan := NewPlan(3).UnderScenarios(nil, mustScenario(t, "dsl"))
	total := plan.Size()
	seen := make(map[int]int)
	for i := 0; i < 4; i++ {
		sh := plan.Shard(i, 4)
		keys := sh.Keys()
		if len(keys) != sh.Size() {
			t.Fatalf("shard %d: %d keys, Size says %d", i, len(keys), sh.Size())
		}
		for _, k := range keys {
			seen[k.Index]++
			if k.Index%4 != i {
				t.Fatalf("cell %d in shard %d", k.Index, i)
			}
		}
	}
	if len(seen) != total {
		t.Fatalf("shards cover %d cells, want %d", len(seen), total)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d appears %d times", idx, n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-sharding did not panic")
		}
	}()
	plan.Shard(0, 2).Shard(0, 2)
}

// TestPlanShardSizes pins the lease-aware iteration: ShardSizes agrees
// with materialised shard keys for every shard, reports zero-size shards
// (the ones a dispatcher must never lease), and refuses sharded plans.
func TestPlanShardSizes(t *testing.T) {
	plan := NewPlan(3).UnderScenarios(nil, mustScenario(t, "dsl"))
	for _, n := range []int{1, 3, 4, 7, 100} {
		sizes := plan.ShardSizes(n)
		if len(sizes) != n {
			t.Fatalf("ShardSizes(%d) has %d entries", n, len(sizes))
		}
		sum := 0
		for i, sz := range sizes {
			if got := plan.Shard(i, n).Size(); got != sz {
				t.Fatalf("shard %d/%d: ShardSizes says %d, Shard.Size says %d", i, n, sz, got)
			}
			sum += sz
		}
		if sum != plan.Size() {
			t.Fatalf("ShardSizes(%d) sums to %d, want %d", n, sum, plan.Size())
		}
	}
	if sizes := plan.ShardSizes(100); sizes[len(sizes)-1] != 0 {
		t.Fatal("oversharded plan should have empty tail shards")
	}
	if plan.IsSharded() {
		t.Fatal("unsharded plan reports IsSharded")
	}
	sh := plan.Shard(0, 2)
	if !sh.IsSharded() {
		t.Fatal("Shard(0,2) does not report IsSharded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ShardSizes of a sharded plan did not panic")
		}
	}()
	sh.ShardSizes(2)
}

// runsIdentical compares two pair runs byte for byte: capture, path
// counters, tracker reports, profiles.
func runsIdentical(t *testing.T, label string, a, b *PairRun) {
	t.Helper()
	if a.Set != b.Set || a.Class != b.Class || a.Scenario != b.Scenario {
		t.Fatalf("%s: identity differs: %d/%v/%q vs %d/%v/%q", label, a.Set, a.Class, a.Scenario, b.Set, b.Class, b.Scenario)
	}
	tracesEqual(t, a, b)
	if a.Downlink != b.Downlink || a.Uplink != b.Uplink {
		t.Fatalf("%s: path stats differ", label)
	}
	if a.WMP.PacketsReceived != b.WMP.PacketsReceived || a.Real.PacketsReceived != b.Real.PacketsReceived {
		t.Fatalf("%s: tracker reports differ", label)
	}
	if pa, pb := ProfileFlow(a.WMPFlow), ProfileFlow(b.WMPFlow); pa != pb {
		t.Fatalf("%s: WMP profiles differ", label)
	}
	if pa, pb := ProfileFlow(a.RealFlow), ProfileFlow(b.RealFlow); pa != pb {
		t.Fatalf("%s: Real profiles differ", label)
	}
}

// TestRunnerMatchesLegacyEntryPoints is the acceptance pin for the API
// redesign: a Runner executing the default Plan reproduces legacy RunAll
// byte for byte at workers ∈ {1, 4, all}, and a scenario Plan reproduces
// legacy RunScenarioMatrix the same way.
func TestRunnerMatchesLegacyEntryPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps in -short mode")
	}
	legacy, err := RunAll(2002)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		results, err := NewRunner(WithWorkers(workers)).Run(NewPlan(2002))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(legacy) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(legacy))
		}
		for i, res := range results {
			if res.Err != nil || res.Seed != SeedFor(2002, res.Key.Pair) {
				t.Fatalf("workers=%d cell %d: err=%v seed=%d", workers, i, res.Err, res.Seed)
			}
			runsIdentical(t, res.Key.String(), legacy[i], res.Run)
		}
	}

	keys := []PairKey{{1, media.High}, {4, media.Low}}
	scenarios := []*netem.Scenario{mustScenario(t, "dsl"), mustScenario(t, "lossy-wifi")}
	matrix, err := RunScenarioMatrix(7, keys, scenarios, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewPlan(7).ForPairs(keys...).UnderScenarios(scenarios...)
	for _, workers := range []int{1, 4, 0} {
		results, err := NewRunner(WithWorkers(workers)).Run(plan)
		if err != nil {
			t.Fatalf("matrix workers=%d: %v", workers, err)
		}
		for _, res := range results {
			want := matrix[res.Key.ScenarioIndex].Runs[res.Key.Index%len(keys)]
			runsIdentical(t, res.Key.String(), want, res.Run)
		}
	}
}

// TestShardMergeReproducesUnsharded is the distributed-matrix guarantee:
// running every shard independently (as separate processes would) and
// recombining with MergeRuns yields exactly the unsharded matrix.
func TestShardMergeReproducesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps in -short mode")
	}
	plan := NewPlan(11).
		ForPairs(PairKey{1, media.Low}, PairKey{2, media.High}, PairKey{5, media.Low}).
		UnderScenarios(mustScenario(t, "paper-baseline"), mustScenario(t, "dsl"))
	whole, err := NewRunner(WithWorkers(0)).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	parts := make([][]RunResult, shards)
	for i := 0; i < shards; i++ {
		part, err := NewRunner(WithWorkers(2)).Run(plan.Shard(i, shards))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		parts[i] = part
	}
	merged := MergeRuns(parts...)
	if len(merged) != len(whole) {
		t.Fatalf("merged %d cells, want %d", len(merged), len(whole))
	}
	for i := range whole {
		if merged[i].Key != whole[i].Key || merged[i].Seed != whole[i].Seed {
			t.Fatalf("cell %d: key %v vs %v", i, merged[i].Key, whole[i].Key)
		}
		runsIdentical(t, merged[i].Key.String(), whole[i].Run, merged[i].Run)
	}
}

// TestRunnerCancellation pins the cancellation contract: cancelling the
// context mid-sweep returns promptly with only the already-completed runs
// and the context's error.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const stopAfter = 2
	runner := NewRunner(
		WithWorkers(1),
		WithContext(ctx),
		WithProgress(func(p Progress) {
			if p.Done == stopAfter {
				cancel()
			}
		}),
	)
	start := time.Now()
	results, err := runner.Run(NewPlan(2002))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != stopAfter {
		t.Fatalf("%d results after cancel, want %d completed", len(results), stopAfter)
	}
	for _, res := range results {
		if res.Err != nil || res.Run == nil || res.Run.Trace.Len() == 0 {
			t.Fatalf("cancelled sweep returned an incomplete run: %+v", res)
		}
	}
	// "Promptly": the sweep must not have run to its 13-cell end. Allow
	// generous wall-clock slack for slow CI, but far below a full sweep.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunnerCancelMidSimulation pins the between-events interrupt: a
// context cancelled from outside while a single long run is in flight
// aborts that run without waiting for its horizon.
func TestRunnerCancelMidSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	results, err := NewRunner(WithContext(ctx)).Run(NewPlan(2002))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Whatever completed before the cancel landed must be whole runs.
	for _, res := range results {
		if res.Run == nil || res.Err != nil {
			t.Fatalf("partial run leaked out: %+v", res)
		}
	}
	// A cancelled-before-start sweep delivers nothing at all.
	results, err = NewRunner(WithContext(ctx)).Run(NewPlan(2002))
	if err != context.Canceled || len(results) != 0 {
		t.Fatalf("pre-cancelled sweep: %d results, err %v", len(results), err)
	}
}

// TestRunnerStreamAndRetention pins the streaming surface: Seq delivers
// every cell exactly once in completion order, DropTracesAfterProfile
// replaces raw captures with profiles identical to what Compare computes
// on a retained run, and an early break terminates the sweep.
func TestRunnerStreamAndRetention(t *testing.T) {
	keys := []PairKey{{1, media.Low}, {3, media.Low}, {4, media.Low}}
	plan := NewPlan(5).ForPairs(keys...)
	full, err := NewRunner(WithWorkers(0)).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for res := range NewRunner(WithWorkers(2), WithTraceRetention(DropTracesAfterProfile)).Seq(plan) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if seen[res.Key.Index] {
			t.Fatalf("cell %d delivered twice", res.Key.Index)
		}
		seen[res.Key.Index] = true
		if res.Run.Trace != nil || res.Run.WMPFlow != nil || res.Run.RealFlow != nil {
			t.Fatal("raw traces retained under DropTracesAfterProfile")
		}
		if res.Comparison == nil {
			t.Fatal("no Comparison under DropTracesAfterProfile")
		}
		if want := Compare(full[res.Key.Index].Run); *res.Comparison != want {
			t.Fatalf("cell %d: dropped-trace profile differs from retained run", res.Key.Index)
		}
		if res.Run.WMP == nil || res.Run.Downlink.Forwarded == 0 {
			t.Fatal("non-trace results should survive trace dropping")
		}
	}
	if len(seen) != plan.Size() {
		t.Fatalf("stream delivered %d cells, want %d", len(seen), plan.Size())
	}
	// Early break cancels the remainder without deadlocking.
	delivered := 0
	for res := range NewRunner(WithWorkers(2)).Seq(plan) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		delivered++
		break
	}
	if delivered != 1 {
		t.Fatalf("broke after %d deliveries", delivered)
	}
}

// TestRunnerFailFast pins that a cell error stops later cells from
// starting (the legacy sequential early-exit): with the failing cell
// first in canonical order and one worker, nothing after it runs.
func TestRunnerFailFast(t *testing.T) {
	plan := NewPlan(7).ForPairs(PairKey{99, media.Low}, PairKey{1, media.Low})
	results, err := NewRunner().Run(plan)
	if err == nil {
		t.Fatal("unknown set did not error")
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("fail-fast sweep delivered %d cells, want just the failure", len(results))
	}
	// The zero Runner value must work too (all-cores pool, no context).
	var zero Runner
	ok, err := zero.Run(NewPlan(7).ForPairs(PairKey{1, media.Low}))
	if err != nil || len(ok) != 1 || ok[0].Run == nil {
		t.Fatalf("zero Runner: %d results, err %v", len(ok), err)
	}
}

// traceDigest folds a run's full capture — wire bytes included — into one
// FNV-64a value.
func traceDigest(run *PairRun) uint64 {
	h := fnv.New64a()
	for i := 0; i < run.Trace.Len(); i++ {
		rec := run.Trace.At(i)
		fmt.Fprintf(h, "%d|%d|%v|", rec.At, rec.WireLen, rec.Dir)
		h.Write(rec.Raw())
	}
	return h.Sum64()
}

// TestPairRunGoldenDigest anchors the engine to committed constants, so
// "byte-identical to legacy" is checked against history rather than
// against another path through the same code. The digests were recorded
// from this tree after diffing six experiment families byte-for-byte
// against a pre-Plan/Runner build (PR 2 HEAD); any change to the
// simulation's draws, packetisation or capture breaks them loudly.
func TestPairRunGoldenDigest(t *testing.T) {
	golden := []struct {
		scenario string
		packets  int
		digest   uint64
	}{
		{"", 3132, 0x5cd19e7859a15b04},
		{"lossy-wifi", 3123, 0x8c1e7a6510f82158},
	}
	for _, g := range golden {
		opts := Options{}
		if g.scenario != "" {
			opts.Scenario = mustScenario(t, g.scenario)
		}
		run, err := RunPairWith(SeedFor(2002, PairKey{2, media.High}), 2, media.High, opts)
		if err != nil {
			t.Fatal(err)
		}
		if run.Trace.Len() != g.packets || traceDigest(run) != g.digest {
			t.Errorf("scenario %q: %d packets digest %#016x, want %d / %#016x — the engine's byte-level output drifted from the committed golden",
				g.scenario, run.Trace.Len(), traceDigest(run), g.packets, g.digest)
		}
	}
}

// TestScenarioAxisWinsOverVariantScenario pins the axis-composition rule:
// with a scenario axis declared, a variant's stray Options.Scenario is
// replaced for every cell — the nil (faithful) entry included — so labels
// never lie; without an axis, the variant's scenario stands.
func TestScenarioAxisWinsOverVariantScenario(t *testing.T) {
	dsl, cable := mustScenario(t, "dsl"), mustScenario(t, "cable")
	plan := NewPlan(1).ForPairs(PairKey{1, media.Low}).
		UnderScenarios(nil, dsl).
		WithOptions(Options{Scenario: cable})
	keys := plan.Keys()
	if got := plan.OptionsFor(keys[0]).Scenario; got != nil {
		t.Fatalf("faithful axis cell runs under %q", got.Name)
	}
	if got := plan.OptionsFor(keys[1]).Scenario; got != dsl {
		t.Fatalf("dsl axis cell runs under %v", got)
	}
	noAxis := NewPlan(1).ForPairs(PairKey{1, media.Low}).WithOptions(Options{Scenario: cable})
	if got := noAxis.OptionsFor(noAxis.Keys()[0]).Scenario; got != cable {
		t.Fatalf("axis-less plan dropped the variant scenario: %v", got)
	}
}
