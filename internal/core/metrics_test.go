package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"turbulence/internal/media"
	"turbulence/internal/obs"
)

// TestProgressTimingAndMetricsSink pins the runner's observability seams:
// each Progress report carries the cell's start time and wall-clock
// elapsed, and an installed obs.Sink sees the sweep — cell completions
// with their timing histogram, the simulator's event and timer counters,
// and the captured packet volume — without changing any result.
func TestProgressTimingAndMetricsSink(t *testing.T) {
	plan := NewPlan(2002).ForPairs(PairKey{1, media.Low}, PairKey{3, media.Low})
	reg := obs.NewRegistry()
	sink := obs.NewSink(reg)
	before := time.Now()
	var reports []Progress
	results, err := NewRunner(
		WithWorkers(1),
		WithProgress(func(p Progress) { reports = append(reports, p) }),
		WithMetrics(sink),
	).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != plan.Size() || len(reports) != plan.Size() {
		t.Fatalf("%d results, %d reports, want %d of each", len(results), len(reports), plan.Size())
	}
	for _, p := range reports {
		if p.Start.Before(before) || p.Start.After(time.Now()) {
			t.Fatalf("progress start %v outside the sweep window", p.Start)
		}
		if p.Elapsed <= 0 {
			t.Fatalf("progress for %s carries no elapsed time: %+v", p.Key, p)
		}
	}
	if got := sink.CellsDone.Value(); got != uint64(plan.Size()) {
		t.Fatalf("sink counted %d cells, want %d", got, plan.Size())
	}
	if got := sink.CellErrors.Value(); got != 0 {
		t.Fatalf("sink counted %d cell errors on a clean sweep", got)
	}
	if sink.EventsFired.Value() == 0 || sink.TimersScheduled.Value() == 0 {
		t.Fatalf("sink saw no simulator activity: fired=%d scheduled=%d",
			sink.EventsFired.Value(), sink.TimersScheduled.Value())
	}
	if sink.HeapDepthPeak.Value() <= 0 {
		t.Fatalf("sink heap high-water = %d", sink.HeapDepthPeak.Value())
	}
	if sink.Packets.Value() == 0 || sink.Bytes.Value() == 0 {
		t.Fatalf("sink saw no captured traffic: packets=%d bytes=%d",
			sink.Packets.Value(), sink.Bytes.Value())
	}

	// The sweep above reused its testbed: one shape on one worker means one
	// build, and every further cell served by Reset.
	if got := sink.TestbedsBuilt.Value(); got != 1 {
		t.Fatalf("sink counted %d testbeds built, want 1 (one shape, one worker)", got)
	}
	if got, want := sink.TestbedsReused.Value(), uint64(plan.Size()-1); got != want {
		t.Fatalf("sink counted %d testbed reuses, want %d", got, want)
	}
	if got := sink.WheelDepthPeak.Value(); got != 0 {
		t.Fatalf("heap-backed sweep reports wheel occupancy %d", got)
	}

	// The new series render under their exposition names with the sweep's
	// values.
	var text strings.Builder
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"turbulence_testbeds_built_total 1\n",
		fmt.Sprintf("turbulence_testbeds_reused_total %d\n", plan.Size()-1),
		"turbulence_sim_wheel_depth_peak 0\n",
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("rendered exposition lacks %q:\n%s", want, text.String())
		}
	}

	// The meter observes; it must not steer. Same plan without a sink is
	// profile-identical.
	bare, err := NewRunner(WithWorkers(1)).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bare {
		a, b := Compare(results[i].Run), Compare(bare[i].Run)
		if a.Real != b.Real {
			t.Fatalf("cell %d: metered profile differs from bare run", i)
		}
	}

	// A wheel-backed reused sweep reports its bucket high-water through the
	// same sink — and stays profile-identical to the heap runs above.
	wreg := obs.NewRegistry()
	wsink := obs.NewSink(wreg)
	wheeled, err := NewRunner(WithWorkers(1), WithTimingWheel(), WithMetrics(wsink)).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := wsink.WheelDepthPeak.Value(); got <= 0 {
		t.Fatalf("wheel sweep sink wheel high-water = %d, want > 0", got)
	}
	if got, want := wsink.TestbedsBuilt.Value(), uint64(1); got != want {
		t.Fatalf("wheel sweep built %d testbeds, want %d", got, want)
	}
	for i := range wheeled {
		a, b := Compare(wheeled[i].Run), Compare(bare[i].Run)
		if a.Real != b.Real {
			t.Fatalf("cell %d: wheel-backed profile differs from heap run", i)
		}
	}
}
