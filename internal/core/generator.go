package core

import (
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

// FlowModel is the paper's Section IV proposal made concrete: a synthetic
// streaming-flow generator parameterised entirely by measured
// distributions — packet sizes from Figures 6/7, interarrivals from
// Figures 8/9, fragmentation from Figure 5, and the buffering burst from
// Figure 11. Fit one from a captured flow, then Generate as many
// simulated flows as a network study needs without running player stacks.
type FlowModel struct {
	// SizeCDF is the empirical CDF of datagram-initial wire packet sizes.
	SizeCDF []stats.Point
	// IntervalCDF is the empirical CDF of datagram interarrival seconds
	// (fragment trains collapsed).
	IntervalCDF []stats.Point
	// TrainLen is the wire packets per datagram (1 = no fragmentation);
	// fractional values are realised probabilistically.
	TrainLen float64
	// FragmentWire is the wire size of full fragments (MTU-sized).
	FragmentWire int
	// BurstRatio scales the packet rate during the startup burst.
	BurstRatio float64
	// BurstDuration is how long the startup burst lasts.
	BurstDuration time.Duration
}

// FitModel extracts a FlowModel from a captured flow.
func FitModel(ft *capture.FlowTrace) FlowModel {
	m := FlowModel{
		SizeCDF:      stats.CDF(firstPacketSizes(ft)),
		IntervalCDF:  stats.CDF(ft.GroupInterarrivals()),
		FragmentWire: inet.MaxWirePacket,
	}
	prof := ProfileFlow(ft)
	m.TrainLen = prof.MeanTrain
	m.BurstRatio = prof.BurstRatio
	if m.BurstRatio < 1 {
		m.BurstRatio = 1
	}
	m.BurstDuration = defaultBurstDuration(prof)
	return m
}

// defaultBurstDuration estimates the burst length from the profile: flows
// without a burst get zero.
func defaultBurstDuration(p FlowProfile) time.Duration {
	if p.BurstRatio < 1.2 {
		return 0
	}
	// The paper reports ~20 s bursts for low rates up to ~40 s for high;
	// interpolate on the burst ratio (stronger burst drains sooner).
	sec := 45 - 10*p.BurstRatio
	if sec < 10 {
		sec = 10
	}
	return time.Duration(sec * float64(time.Second))
}

// Generate synthesises a flow trace of the given duration. The generator
// draws sizes and intervals via inverse-CDF sampling, applies the startup
// burst by compressing intervals, and emits fragment trains for models
// with TrainLen > 1. The result is a capture.Trace, so every analysis in
// this repository runs identically on generated and measured flows.
func (m FlowModel) Generate(rng *eventsim.RNG, duration time.Duration, flow inet.Flow) *capture.Trace {
	tr := &capture.Trace{}
	if len(m.SizeCDF) == 0 || len(m.IntervalCDF) == 0 {
		return tr
	}
	now := time.Duration(0)
	var ipID uint16
	for now < duration {
		interval := stats.InverseCDF(m.IntervalCDF, rng.Float64())
		if m.BurstRatio > 1 && now < m.BurstDuration {
			interval /= m.BurstRatio
		}
		if interval <= 0 {
			interval = 0.001
		}
		now += time.Duration(interval * float64(time.Second))
		if now >= duration {
			break
		}
		size := stats.InverseCDF(m.SizeCDF, rng.Float64())
		ipID++
		train := m.drawTrainLen(rng)
		emitTrain(tr, now, flow, ipID, int(size), train, m.FragmentWire)
	}
	return tr
}

// drawTrainLen realises the fractional mean train length.
func (m FlowModel) drawTrainLen(rng *eventsim.RNG) int {
	if m.TrainLen <= 1 {
		return 1
	}
	base := int(m.TrainLen)
	if rng.Float64() < m.TrainLen-float64(base) {
		base++
	}
	return base
}

// emitTrain appends the wire packets of one datagram: for fragmented
// datagrams, train-1 full-MTU fragments precede the remainder, spaced by
// the serialization gap a 10 Mbps access link imposes (~1.2 ms), matching
// the back-to-back trains in captured traces.
func emitTrain(tr *capture.Trace, at time.Duration, flow inet.Flow, ipID uint16, firstWire, train, fragWire int) {
	const serGap = 1200 * time.Microsecond
	mkRecord := func(offset time.Duration, wire int, fragOff uint16, more, hasPorts bool) capture.Record {
		r := capture.Record{
			At:       at + offset,
			Dir:      netsim.Recv,
			WireLen:  wire,
			Src:      flow.Src.Addr,
			Dst:      flow.Dst.Addr,
			Proto:    inet.ProtoUDP,
			IPID:     ipID,
			FragOff:  fragOff,
			MoreFrag: more,
			IPLen:    wire - inet.EthernetOverhead,
		}
		if hasPorts {
			r.HasPorts = true
			r.SrcPort = flow.Src.Port
			r.DstPort = flow.Dst.Port
			r.PayloadLen = r.IPLen - inet.IPv4HeaderLen - inet.UDPHeaderLen
		} else {
			r.PayloadLen = r.IPLen - inet.IPv4HeaderLen
		}
		return r
	}
	if train <= 1 {
		tr.Append(mkRecord(0, firstWire, 0, false, true))
		return
	}
	chunk := uint16((fragWire - inet.EthernetOverhead - inet.IPv4HeaderLen) / 8)
	for i := 0; i < train; i++ {
		last := i == train-1
		wire := fragWire
		if last {
			wire = firstWire // remainder approximates the first-packet draw
			if wire >= fragWire {
				wire = fragWire / 2
			}
		}
		tr.Append(mkRecord(time.Duration(i)*serGap, wire, uint16(i)*chunk, !last, i == 0))
	}
}

// ModelFromPair fits the Section IV models for both flows of a pair run.
func ModelFromPair(run *PairRun) (realModel, wmpModel FlowModel) {
	return FitModel(run.RealFlow), FitModel(run.WMPFlow)
}
