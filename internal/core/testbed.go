// Package core assembles the substrates into the paper's experiment: a WPI
// client PC streaming identical content simultaneously in both formats
// from six Internet server sites, instrumented by MediaTracker,
// RealTracker, a packet sniffer, ping and tracert. It also implements the
// paper's analytical contribution — the characterisation of streaming
// "turbulence" (per-flow packet size/interarrival/fragmentation/burst
// structure) — and the Section IV synthetic flow generator fitted from
// measured distributions.
package core

import (
	"fmt"
	"time"

	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/netsim"
	"turbulence/internal/rdt"
	"turbulence/internal/wms"
)

// ClientAddr is the measurement client (a WPI campus address, as in the
// paper).
var ClientAddr = inet.MakeAddr(130, 215, 10, 5)

// SiteProfile describes one server site's network path, calibrated so the
// probe CDFs reproduce Figures 1-2 (median RTT ~40 ms, max ~160 ms, most
// paths 15-20 hops) and the bottlenecks reproduce Figure 11's buffering
// ratios.
type SiteProfile struct {
	Set        int
	Addr       inet.Addr
	Hops       int           // router hops client<->site
	BaseRTT    time.Duration // propagation-only round trip
	Bottleneck float64       // server-side access bandwidth, bits/second

	// Scenario impairs the path's hops by role (nil = the faithful
	// testbed). Installed via WithScenario at testbed construction.
	Scenario *netem.Scenario
}

// Sites returns the six server sites matching Table 1's data sets.
func Sites() []SiteProfile {
	return []SiteProfile{
		{Set: 1, Addr: inet.MakeAddr(207, 46, 1, 9), Hops: 16, BaseRTT: 33 * time.Millisecond, Bottleneck: 900e3},
		{Set: 2, Addr: inet.MakeAddr(209, 247, 2, 7), Hops: 15, BaseRTT: 27 * time.Millisecond, Bottleneck: 900e3},
		{Set: 3, Addr: inet.MakeAddr(64, 28, 3, 11), Hops: 18, BaseRTT: 37 * time.Millisecond, Bottleneck: 950e3},
		{Set: 4, Addr: inet.MakeAddr(216, 52, 4, 15), Hops: 19, BaseRTT: 45 * time.Millisecond, Bottleneck: 850e3},
		{Set: 5, Addr: inet.MakeAddr(204, 202, 5, 19), Hops: 17, BaseRTT: 33 * time.Millisecond, Bottleneck: 900e3},
		{Set: 6, Addr: inet.MakeAddr(63, 241, 6, 23), Hops: 22, BaseRTT: 88 * time.Millisecond, Bottleneck: 1.45e6},
	}
}

// SiteFor returns the profile serving a data set.
func SiteFor(set int) (SiteProfile, bool) {
	for _, s := range Sites() {
		if s.Set == set {
			return s, true
		}
	}
	return SiteProfile{}, false
}

// Path-shape constants. The client sits on a 10 Mbps campus LAN (the
// paper's PC has a PCI 10 Mbps NIC); intermediate hops are fast backbone
// links; the final hop carries the site's bottleneck bandwidth.
const (
	campusBandwidth   = 10e6
	backboneBandwidth = 45e6 // T3-class backbone links
	hopJitterMax      = 400 * time.Microsecond
	hopSpikeProb      = 0.005
	hopSpikeMax       = 55 * time.Millisecond
	hopLoss           = 0.0001
)

// HopSpecs expands a site profile into per-hop specs for the
// client-to-site direction, applying the profile's scenario (if any) by
// hop role: hop 0 is the client access link, the final hop the server-side
// bottleneck, everything between backbone transit. ConnectDuplex mirrors
// the specs for the reverse direction, so a role stays attached to the
// same router both ways while each direction builds private model state.
func (p SiteProfile) HopSpecs() []netsim.HopSpec {
	perHop := time.Duration(int64(p.BaseRTT) / 2 / int64(p.Hops))
	specs := make([]netsim.HopSpec, p.Hops)
	for i := range specs {
		bw := backboneBandwidth
		role := netem.RoleBackbone
		switch i {
		case 0:
			bw = campusBandwidth
			role = netem.RoleAccess
		case p.Hops - 1:
			bw = p.Bottleneck
			role = netem.RoleBottleneck
		}
		specs[i] = netsim.HopSpec{
			Addr:      inet.MakeAddr(10, byte(p.Set), byte(i/250), byte(i%250+1)),
			Bandwidth: bw,
			PropDelay: perHop,
			JitterMax: hopJitterMax,
			SpikeProb: hopSpikeProb,
			SpikeMax:  hopSpikeMax,
			Loss:      hopLoss,
			Impair:    p.Scenario.Impair(role, i, p.Hops),
		}
	}
	return specs
}

// Site is one instantiated server site: a host running both stacks, since
// the paper selected sites where the two servers were co-located.
type Site struct {
	Profile SiteProfile
	Host    *netsim.Host
	WMS     *wms.Server
	RDT     *rdt.Server
}

// Testbed is the full experimental apparatus.
type Testbed struct {
	Net    *netsim.Network
	Client *netsim.Host
	Sites  map[int]*Site
}

// TestbedOption adjusts site profiles at construction time (e.g. for the
// constrained-bandwidth future-work experiments).
type TestbedOption func(*SiteProfile)

// WithBottleneck overrides one site's server-access bandwidth.
func WithBottleneck(set int, bps float64) TestbedOption {
	return func(p *SiteProfile) {
		if p.Set == set {
			p.Bottleneck = bps
		}
	}
}

// WithScenario installs a netem scenario on every site path: each hop's
// impairment is chosen by the scenario from the hop's role (client access,
// backbone transit, server-side bottleneck). A nil scenario — and the
// built-in "paper-baseline" — leaves the testbed byte-identical to the
// faithful reproduction.
func WithScenario(sc *netem.Scenario) TestbedOption {
	return func(p *SiteProfile) { p.Scenario = sc }
}

// NewTestbed builds the network, client, all six sites, and registers
// every Table 1 clip at its site's servers.
func NewTestbed(seed int64, opts ...TestbedOption) *Testbed {
	n := netsim.New(seed)
	client := n.AddHost(ClientAddr)
	tb := &Testbed{Net: n, Client: client, Sites: make(map[int]*Site)}
	for _, prof := range Sites() {
		for _, opt := range opts {
			opt(&prof)
		}
		host := n.AddHost(prof.Addr)
		n.ConnectDuplex(ClientAddr, prof.Addr, prof.HopSpecs())
		site := &Site{
			Profile: prof,
			Host:    host,
			WMS:     wms.NewServer(host),
			RDT:     rdt.NewServer(host),
		}
		tb.Sites[prof.Set] = site
	}
	for _, set := range media.Library() {
		site := tb.Sites[set.Set]
		for _, clip := range set.Clips() {
			if clip.Format == media.WindowsMedia {
				site.WMS.Register(clip.Name(), clip)
			} else {
				site.RDT.Register(clip.Name(), clip)
			}
		}
	}
	return tb
}

// Site returns the site serving a data set.
func (tb *Testbed) Site(set int) *Site {
	s, ok := tb.Sites[set]
	if !ok {
		panic(fmt.Sprintf("core: no site for set %d", set))
	}
	return s
}
