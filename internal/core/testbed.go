// Package core assembles the substrates into the paper's experiment: a WPI
// client PC streaming identical content simultaneously in both formats
// from six Internet server sites, instrumented by MediaTracker,
// RealTracker, a packet sniffer, ping and tracert. It also implements the
// paper's analytical contribution — the characterisation of streaming
// "turbulence" (per-flow packet size/interarrival/fragmentation/burst
// structure) — and the Section IV synthetic flow generator fitted from
// measured distributions.
package core

import (
	"fmt"
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/netsim"
	"turbulence/internal/rdt"
	"turbulence/internal/wms"
)

// ClientAddr is the measurement client (a WPI campus address, as in the
// paper).
var ClientAddr = inet.MakeAddr(130, 215, 10, 5)

// SiteProfile describes one server site's network path, calibrated so the
// probe CDFs reproduce Figures 1-2 (median RTT ~40 ms, max ~160 ms, most
// paths 15-20 hops) and the bottlenecks reproduce Figure 11's buffering
// ratios.
type SiteProfile struct {
	Set        int
	Addr       inet.Addr
	Hops       int           // router hops client<->site
	BaseRTT    time.Duration // propagation-only round trip
	Bottleneck float64       // server-side access bandwidth, bits/second

	// Scenario impairs the path's hops by role (nil = the faithful
	// testbed). Installed via WithScenario at testbed construction.
	Scenario *netem.Scenario
}

// Sites returns the six server sites matching Table 1's data sets.
func Sites() []SiteProfile {
	return []SiteProfile{
		{Set: 1, Addr: inet.MakeAddr(207, 46, 1, 9), Hops: 16, BaseRTT: 33 * time.Millisecond, Bottleneck: 900e3},
		{Set: 2, Addr: inet.MakeAddr(209, 247, 2, 7), Hops: 15, BaseRTT: 27 * time.Millisecond, Bottleneck: 900e3},
		{Set: 3, Addr: inet.MakeAddr(64, 28, 3, 11), Hops: 18, BaseRTT: 37 * time.Millisecond, Bottleneck: 950e3},
		{Set: 4, Addr: inet.MakeAddr(216, 52, 4, 15), Hops: 19, BaseRTT: 45 * time.Millisecond, Bottleneck: 850e3},
		{Set: 5, Addr: inet.MakeAddr(204, 202, 5, 19), Hops: 17, BaseRTT: 33 * time.Millisecond, Bottleneck: 900e3},
		{Set: 6, Addr: inet.MakeAddr(63, 241, 6, 23), Hops: 22, BaseRTT: 88 * time.Millisecond, Bottleneck: 1.45e6},
	}
}

// SiteFor returns the profile serving a data set.
func SiteFor(set int) (SiteProfile, bool) {
	for _, s := range Sites() {
		if s.Set == set {
			return s, true
		}
	}
	return SiteProfile{}, false
}

// Path-shape constants. The client sits on a 10 Mbps campus LAN (the
// paper's PC has a PCI 10 Mbps NIC); intermediate hops are fast backbone
// links; the final hop carries the site's bottleneck bandwidth.
const (
	campusBandwidth   = 10e6
	backboneBandwidth = 45e6 // T3-class backbone links
	hopJitterMax      = 400 * time.Microsecond
	hopSpikeProb      = 0.005
	hopSpikeMax       = 55 * time.Millisecond
	hopLoss           = 0.0001
)

// HopSpecs expands a site profile into per-hop specs for the
// client-to-site direction, applying the profile's scenario (if any) by
// hop role: hop 0 is the client access link, the final hop the server-side
// bottleneck, everything between backbone transit. ConnectDuplex mirrors
// the specs for the reverse direction, so a role stays attached to the
// same router both ways while each direction builds private model state.
func (p SiteProfile) HopSpecs() []netsim.HopSpec {
	perHop := time.Duration(int64(p.BaseRTT) / 2 / int64(p.Hops))
	specs := make([]netsim.HopSpec, p.Hops)
	for i := range specs {
		bw := backboneBandwidth
		role := netem.RoleBackbone
		switch i {
		case 0:
			bw = campusBandwidth
			role = netem.RoleAccess
		case p.Hops - 1:
			bw = p.Bottleneck
			role = netem.RoleBottleneck
		}
		specs[i] = netsim.HopSpec{
			Addr:      inet.MakeAddr(10, byte(p.Set), byte(i/250), byte(i%250+1)),
			Bandwidth: bw,
			PropDelay: perHop,
			JitterMax: hopJitterMax,
			SpikeProb: hopSpikeProb,
			SpikeMax:  hopSpikeMax,
			Loss:      hopLoss,
			Impair:    p.Scenario.Impair(role, i, p.Hops),
		}
	}
	return specs
}

// Site is one instantiated server site: a host running both stacks, since
// the paper selected sites where the two servers were co-located.
type Site struct {
	Profile SiteProfile
	Host    *netsim.Host
	WMS     *wms.Server
	RDT     *rdt.Server
}

// Testbed is the full experimental apparatus.
type Testbed struct {
	Net    *netsim.Network
	Client *netsim.Host
	Sites  map[int]*Site
}

// TestbedOption adjusts site profiles at construction time (e.g. for the
// constrained-bandwidth future-work experiments).
type TestbedOption func(*SiteProfile)

// WithBottleneck overrides one site's server-access bandwidth.
func WithBottleneck(set int, bps float64) TestbedOption {
	return func(p *SiteProfile) {
		if p.Set == set {
			p.Bottleneck = bps
		}
	}
}

// WithScenario installs a netem scenario on every site path: each hop's
// impairment is chosen by the scenario from the hop's role (client access,
// backbone transit, server-side bottleneck). A nil scenario — and the
// built-in "paper-baseline" — leaves the testbed byte-identical to the
// faithful reproduction.
func WithScenario(sc *netem.Scenario) TestbedOption {
	return func(p *SiteProfile) { p.Scenario = sc }
}

// NewTestbed builds the network, client, all six sites, and registers
// every Table 1 clip at its site's servers.
func NewTestbed(seed int64, opts ...TestbedOption) *Testbed {
	n := netsim.New(seed)
	client := n.AddHost(ClientAddr)
	tb := &Testbed{Net: n, Client: client, Sites: make(map[int]*Site)}
	for _, prof := range Sites() {
		for _, opt := range opts {
			opt(&prof)
		}
		host := n.AddHost(prof.Addr)
		n.ConnectDuplex(ClientAddr, prof.Addr, prof.HopSpecs())
		site := &Site{
			Profile: prof,
			Host:    host,
			WMS:     wms.NewServer(host),
			RDT:     rdt.NewServer(host),
		}
		tb.Sites[prof.Set] = site
	}
	for _, set := range media.Library() {
		site := tb.Sites[set.Set]
		for _, clip := range set.Clips() {
			if clip.Format == media.WindowsMedia {
				site.WMS.Register(clip.Name(), clip)
			} else {
				site.RDT.Register(clip.Name(), clip)
			}
		}
	}
	return tb
}

// Site returns the site serving a data set.
func (tb *Testbed) Site(set int) *Site {
	s, ok := tb.Sites[set]
	if !ok {
		panic(fmt.Sprintf("core: no site for set %d", set))
	}
	return s
}

// Reset rewinds the testbed to its post-NewTestbed state for seed without
// reallocating anything: the network drains and reseeds, every host and hop
// rewinds, and both stacks at every site re-arm on their freshly cleared
// hosts. Construction draws from the root RNG exactly once per site (the
// RDT server's stream split), in Sites() order — Reset replays the same
// sequence in the same order, which is what makes a reset testbed
// byte-identical to a newly built one under the same seed.
//
// Topology and clip registration are construction-time and retained; the
// per-run ablation switches (unit cap, uncapped burst, scaling) revert to
// their defaults, so callers reapply Options per run exactly as runPair
// does on a fresh testbed.
func (tb *Testbed) Reset(seed int64) {
	tb.Net.Reset(seed)
	for _, prof := range Sites() {
		site := tb.Sites[prof.Set]
		site.WMS.Reset()
		site.RDT.Reset()
	}
}

// testbedShape identifies the construction-time configuration of a testbed:
// two testbeds with the same shape are interchangeable after a Reset. The
// scenario is compared by pointer — a Plan shares one *Scenario across its
// cells, and distinct pointers conservatively build distinct testbeds.
type testbedShape struct {
	scenario      *netem.Scenario
	bottleneckSet int
	bottleneckBps float64
}

// shapeFor derives the testbed shape a pair run needs from its options.
func shapeFor(set int, opts Options) testbedShape {
	sh := testbedShape{scenario: opts.Scenario}
	if opts.BottleneckBps > 0 {
		sh.bottleneckSet, sh.bottleneckBps = set, opts.BottleneckBps
	}
	return sh
}

// options expands a shape back into testbed construction options.
func (sh testbedShape) options() []TestbedOption {
	var tbOpts []TestbedOption
	if sh.bottleneckBps > 0 {
		tbOpts = append(tbOpts, WithBottleneck(sh.bottleneckSet, sh.bottleneckBps))
	}
	if sh.scenario != nil {
		tbOpts = append(tbOpts, WithScenario(sh.scenario))
	}
	return tbOpts
}

// TestbedCache reuses testbeds across the runs of one worker. The first
// run of each shape builds a testbed; subsequent runs Reset it to the new
// seed instead of reconstructing the whole apparatus, which removes the
// dominant allocation cost of a sweep (building six sites' paths, hosts and
// stacks per cell). A cache is single-goroutine, like the runs it serves:
// the Runner creates one per worker.
//
// The cache also owns the worker's online-analysis scratch (the capture
// flow demux), pooled for the same reason.
type TestbedCache struct {
	// Wheel selects the timing-wheel scheduler backend for every testbed
	// the cache builds (see eventsim.Scheduler.EnableWheel). Firing order —
	// and therefore simulation output — is identical to the default heap.
	Wheel bool
	// Fresh disables reuse: every Get builds a new testbed (still honouring
	// Wheel). The A/B switch the identity tests and benchmarks use.
	Fresh bool

	tbs           map[testbedShape]*Testbed
	dx            *capture.FlowDemux
	built, reused int
}

// NewTestbedCache returns an empty cache with default settings (reuse on,
// heap scheduler).
func NewTestbedCache() *TestbedCache {
	return &TestbedCache{tbs: make(map[testbedShape]*Testbed)}
}

// Get returns a testbed for the run's shape, reset to seed: a cached one
// when the shape was seen before (and Fresh is off), a newly built one
// otherwise.
func (c *TestbedCache) Get(seed int64, set int, opts Options) *Testbed {
	sh := shapeFor(set, opts)
	if !c.Fresh {
		if tb, ok := c.tbs[sh]; ok {
			c.reused++
			tb.Reset(seed)
			return tb
		}
	}
	tb := NewTestbed(seed, sh.options()...)
	if c.Wheel {
		tb.Net.Sched.EnableWheel(0, 0)
	}
	c.built++
	if !c.Fresh {
		c.tbs[sh] = tb
	}
	return tb
}

// Built reports how many testbeds the cache constructed.
func (c *TestbedCache) Built() int { return c.built }

// Reused reports how many Gets were served by resetting a cached testbed.
func (c *TestbedCache) Reused() int { return c.reused }

// demux returns the worker's pooled flow demultiplexer, reset for a new
// run. Under Fresh each call builds a new one, matching the legacy path.
func (c *TestbedCache) demux() *capture.FlowDemux {
	if c.Fresh {
		return capture.NewFlowDemux()
	}
	if c.dx == nil {
		c.dx = capture.NewFlowDemux()
	} else {
		c.dx.Reset()
	}
	return c.dx
}
