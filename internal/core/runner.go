package core

import (
	"context"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"turbulence/internal/obs"
)

// TraceRetention selects what a Runner keeps of each completed run.
type TraceRetention int

const (
	// RetainTraces keeps every run's full packet capture and flow views —
	// the default, and what the figure generators need.
	RetainTraces TraceRetention = iota
	// DropTracesAfterProfile profiles both flows (RunResult.Comparison),
	// then releases the run's raw capture (Trace, WMPFlow, RealFlow set to
	// nil). On huge matrices this bounds memory to the per-run working set
	// plus a small summary per cell, instead of every packet ever sniffed.
	DropTracesAfterProfile
	// StreamProfiles never stores records at all: each captured packet
	// streams through online per-flow analyzers (capture.FlowDemux) at the
	// client NIC and is gone, so a run's capture state is a few KB of
	// accumulators instead of a trace. RunResult.Comparison carries the
	// profiles — exactly equal to trace-derived ones, because ProfileFlow
	// replays stored traces through the same analyzer — and Run keeps
	// everything but Trace/WMPFlow/RealFlow. The shape matrix-scale sweeps
	// run in: memory is O(workers × analyzer state), not O(workers ×
	// trace).
	StreamProfiles
)

// Progress is one completion notification delivered to a WithProgress
// callback: cell Key finished (successfully or with Err) as the Done-th of
// Total cells. Callbacks are serialised; they may be invoked from worker
// goroutines but never concurrently.
type Progress struct {
	Done  int
	Total int
	Key   RunKey
	Err   error

	// Start and Elapsed are the cell's wall-clock execution window,
	// measured around the simulation itself — progress meters and metrics
	// sinks report per-cell durations without re-deriving them.
	Start   time.Time
	Elapsed time.Duration
}

// RunResult is one executed Plan cell.
type RunResult struct {
	Key  RunKey
	Seed int64

	// Run is the full pair-run result (nil when Err is set, and stripped
	// of raw traces under DropTracesAfterProfile and StreamProfiles).
	Run *PairRun
	// Comparison holds both flows' turbulence profiles: computed before
	// the raw traces were dropped (DropTracesAfterProfile) or accumulated
	// online at capture time (StreamProfiles). Nil under RetainTraces —
	// call Compare on the retained run instead.
	Comparison *Comparison

	Err error
}

// Runner executes Plans. The zero configuration (NewRunner with no
// options) runs sequentially with no cancellation, progress or trace
// dropping — exactly the legacy sequential entry points. (A zero Runner
// value also works; lacking the constructor's default it fans out across
// all cores.) Configuration is fixed at construction by functional
// options. A Runner is safe for concurrent use; its only mutable state is
// the pool of per-worker testbed caches it retains between executions, so
// back-to-back sweeps on one Runner start with the previous sweep's warm
// testbeds and arenas instead of rebuilding them (each cache is handed to
// at most one worker at a time; output is unaffected — reuse is pinned
// byte-identical to construction).
type Runner struct {
	workers    int
	ctx        context.Context
	progress   func(Progress)
	retention  TraceRetention
	sink       *obs.Sink
	fresh      bool
	wheel      bool
	sweepStats func(SweepStats)
	store      ResultStore
	pool       *tallyPool
}

// tallyPool holds the worker tallies a Runner retains across executions.
// It lives behind a pointer so the shallow Runner copies Seq makes share
// it, and so the zero Runner (nil pool, nothing retained) stays valid.
type tallyPool struct {
	mu    sync.Mutex
	spare []*workerTally
}

// workerTally is one worker's sweep accounting plus the testbed cache it
// owns for the duration of an execution. The AtStart snapshots mark where
// the current sweep's counting begins on a cache whose lifetime counters
// span many sweeps.
type workerTally struct {
	cache         *TestbedCache
	wheelPeak     int
	builtAtStart  int
	reusedAtStart int
}

// acquireTallies checks out n worker tallies: retained ones first, newly
// built caches for the rest. Each tally's per-sweep accounting is rewound
// to this execution's start.
func (r *Runner) acquireTallies(n int) []*workerTally {
	ts := make([]*workerTally, n)
	if r.pool != nil {
		r.pool.mu.Lock()
		for i := range ts {
			if m := len(r.pool.spare); m > 0 {
				ts[i] = r.pool.spare[m-1]
				r.pool.spare[m-1] = nil
				r.pool.spare = r.pool.spare[:m-1]
			}
		}
		r.pool.mu.Unlock()
	}
	for i, t := range ts {
		if t == nil {
			c := NewTestbedCache()
			c.Wheel = r.wheel
			c.Fresh = r.fresh
			t = &workerTally{cache: c}
			ts[i] = t
		}
		t.wheelPeak = 0
		t.builtAtStart = t.cache.Built()
		t.reusedAtStart = t.cache.Reused()
	}
	return ts
}

// releaseTallies returns an execution's tallies to the pool for the next
// sweep. The zero Runner retains nothing.
func (r *Runner) releaseTallies(ts []*workerTally) {
	if r.pool == nil {
		return
	}
	r.pool.mu.Lock()
	r.pool.spare = append(r.pool.spare, ts...)
	r.pool.mu.Unlock()
}

// SweepStats summarises one executed sweep's testbed economy: how many
// testbeds were constructed versus served by reset-reuse, and the deepest
// any run's timing-wheel buckets got (zero when the heap backend ran).
// Delivered once per execution via WithSweepStats, after the last cell.
type SweepStats struct {
	TestbedsBuilt  int
	TestbedsReused int
	WheelPeak      int
}

// ResultStore is a content-addressed cache of completed cell results: the
// hook WithResultStore installs so warm reruns skip simulation. A cell is
// addressed by everything that determines its Comparison — pair, effective
// options (Plan.OptionsFor), and seed; implementations fold in the engine
// generation (internal/resultstore does, via wire.CellSpecFrom). Both
// methods must be safe for concurrent use from every Runner worker.
// LookupResult's Comparison must not be mutated by the caller —
// implementations may return a shared pointer.
type ResultStore interface {
	LookupResult(pair PairKey, opts Options, seed int64) (*Comparison, bool)
	InsertResult(pair PairKey, opts Options, seed int64, cmp *Comparison)
}

// context is the nil-safe accessor keeping the zero Runner usable.
func (r *Runner) context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// RunnerOption configures a Runner at construction.
type RunnerOption func(*Runner)

// WithWorkers sets the worker-pool size for independent cells: 1 runs
// sequentially on the calling goroutine, 0 uses GOMAXPROCS. Because every
// cell's seed comes from Plan.Seed regardless of which worker executes it,
// results are byte-identical for any value; only wall-clock time changes.
func WithWorkers(n int) RunnerOption {
	return func(r *Runner) {
		if n < 0 {
			n = 1
		}
		r.workers = n
	}
}

// WithContext installs a cancellation context. It is checked before each
// cell starts and — via the scheduler's interrupt seam — between simulation
// events inside each run, so cancelling aborts a sweep promptly even
// mid-run. After cancellation a Runner delivers only the cells that had
// already completed; Run additionally reports ctx.Err().
func WithContext(ctx context.Context) RunnerOption {
	return func(r *Runner) { r.ctx = ctx }
}

// WithProgress installs a completion callback, invoked serially after each
// cell finishes — the hook behind live progress meters on long sweeps.
func WithProgress(fn func(Progress)) RunnerOption {
	return func(r *Runner) { r.progress = fn }
}

// WithTraceRetention selects what each completed run keeps (see
// TraceRetention).
func WithTraceRetention(tr TraceRetention) RunnerOption {
	return func(r *Runner) { r.retention = tr }
}

// WithMetrics installs an observability sink: per-cell wall times and
// error counts, eventsim scheduler totals, netem drop tallies, and — via
// a capture tap attached to each run's sniffer — packet and byte volume.
// Collection is alloc-free on the per-packet path and adds a handful of
// atomic ops per cell elsewhere; it never changes simulation output.
func WithMetrics(s *obs.Sink) RunnerOption {
	return func(r *Runner) { r.sink = s }
}

// WithFreshTestbeds disables per-worker testbed reuse: every cell builds
// its apparatus from scratch, the pre-reuse behaviour. Output is identical
// either way (reuse is pinned byte-equal to construction); this is the A/B
// switch for the identity tests and the reset benchmarks.
func WithFreshTestbeds() RunnerOption {
	return func(r *Runner) { r.fresh = true }
}

// WithTimingWheel runs every cell's scheduler on the hierarchical
// timing-wheel backend instead of the default 4-ary heap (see
// eventsim.Scheduler.EnableWheel). Firing order — and therefore every byte
// of simulation output — is identical; only the queue's constant factor
// changes.
func WithTimingWheel() RunnerOption {
	return func(r *Runner) { r.wheel = true }
}

// WithSweepStats installs a callback receiving the sweep's testbed-economy
// summary (builds, reuses, wheel high-water) once execution finishes — the
// hook the dispatch worker uses to ship those numbers to the coordinator.
func WithSweepStats(fn func(SweepStats)) RunnerOption {
	return func(r *Runner) { r.sweepStats = fn }
}

// WithResultStore installs a content-addressed result cache: before
// simulating a cell the Runner consults the store, and a hit becomes the
// cell's RunResult directly — Comparison set, Run nil, merged in canonical
// order exactly as a fresh execution would be. Callers that consume
// RunResult.Run (player reports, packet flows) rather than Comparisons
// must not install a store with a lookup path; the experiments harness
// wraps its store insert-only for exactly this reason. Misses simulate
// normally and their Comparisons are inserted for the next sweep. The
// store is consulted only under DropTracesAfterProfile and StreamProfiles:
// RetainTraces promises full packet captures, which the store does not
// hold, so it bypasses the cache entirely rather than silently degrade the
// result shape. Errored cells are never cached.
func WithResultStore(s ResultStore) RunnerOption {
	return func(r *Runner) { r.store = s }
}

// NewRunner builds a Runner from functional options.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{workers: 1, ctx: context.Background(), pool: &tallyPool{}}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// execute runs every cell of the plan on the worker pool, delivering each
// completed cell to emit exactly once. The progress callback is serialised
// under a mutex; emit is NOT — it may be invoked from several workers at
// once (and, for streaming, may block on the consumer without stalling the
// other workers), so collectors must do their own locking. emit returning
// false stops delivery. A cell error stops further cells from starting
// (fail-fast; in-flight cells still finish and are delivered). Cells that
// never started, or that were interrupted mid-simulation by cancellation,
// are not emitted — completed work only.
func (r *Runner) execute(p *Plan, emit func(RunResult) bool) {
	ctx := r.context()
	keys := p.Keys()
	workers := r.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}

	var mu sync.Mutex
	done := 0
	var failed, stopped atomic.Bool
	finish := func(res RunResult, start time.Time, elapsed time.Duration) bool {
		if res.Err != nil {
			failed.Store(true)
		}
		mu.Lock()
		done++
		if r.progress != nil {
			r.progress(Progress{Done: done, Total: len(keys), Key: res.Key, Err: res.Err, Start: start, Elapsed: elapsed})
		}
		mu.Unlock()
		if stopped.Load() {
			return false
		}
		if !emit(res) {
			stopped.Store(true)
			return false
		}
		return true
	}

	runCell := func(k RunKey, t *workerTally) bool {
		if ctx.Err() != nil || failed.Load() {
			return false
		}
		seed := p.Seed(k)
		start := time.Now()
		useStore := r.store != nil && r.retention != RetainTraces
		if useStore {
			if cmp, ok := r.store.LookupResult(k.Pair, p.OptionsFor(k), seed); ok {
				elapsed := time.Since(start)
				if r.sink != nil {
					r.sink.ObserveCell(elapsed.Seconds(), false)
				}
				return finish(RunResult{Key: k, Seed: seed, Comparison: cmp}, start, elapsed)
			}
		}
		run, cmp, err := runPair(ctx, seed, k.Pair.Set, k.Pair.Class, p.OptionsFor(k), r.retention == StreamProfiles, r.sink, t.cache)
		elapsed := time.Since(start)
		if err != nil && ctx.Err() != nil {
			// Interrupted mid-simulation: not a completed cell.
			return false
		}
		if run != nil && run.Sim.WheelPeak > t.wheelPeak {
			t.wheelPeak = run.Sim.WheelPeak
		}
		if r.sink != nil {
			r.sink.ObserveCell(elapsed.Seconds(), err != nil)
			if run != nil {
				r.sink.AddSim(run.Sim.TimersScheduled, run.Sim.EventsFired, run.Sim.HeapPeak, run.Sim.WheelPeak)
				d, u := &run.Downlink, &run.Uplink
				r.sink.AddDrops(d.DroppedLoss+u.DroppedLoss, d.DroppedFull+u.DroppedFull,
					d.DroppedAQM+u.DroppedAQM, d.TTLExpired+u.TTLExpired)
			}
		}
		res := RunResult{Key: k, Seed: seed, Run: run, Err: err, Comparison: cmp}
		if err == nil && r.retention == DropTracesAfterProfile {
			c := Compare(run)
			res.Comparison = &c
			run.Trace, run.WMPFlow, run.RealFlow = nil, nil, nil
		}
		if useStore && err == nil && res.Comparison != nil {
			r.store.InsertResult(k.Pair, p.OptionsFor(k), seed, res.Comparison)
		}
		return finish(res, start, elapsed)
	}

	// Each worker owns a testbed cache: cells reuse the worker's testbeds
	// via Reset instead of rebuilding the apparatus per run (unless the
	// Runner was configured fresh — the cache then builds every time but
	// still carries the wheel setting and the sweep tallies). Caches come
	// from the Runner's retained pool, so a Runner driving many sweeps
	// builds its testbeds once, not once per sweep.
	tallies := r.acquireTallies(max(workers, 1))
	// finishSweep folds the per-worker tallies into the sink and the
	// WithSweepStats callback once no more cells will run, counting only
	// this sweep's deltas on the long-lived caches, then returns the
	// tallies to the pool.
	finishSweep := func() {
		var sw SweepStats
		for _, t := range tallies {
			sw.TestbedsBuilt += t.cache.Built() - t.builtAtStart
			sw.TestbedsReused += t.cache.Reused() - t.reusedAtStart
			if t.wheelPeak > sw.WheelPeak {
				sw.WheelPeak = t.wheelPeak
			}
		}
		if r.sink != nil {
			r.sink.AddTestbeds(uint64(sw.TestbedsBuilt), uint64(sw.TestbedsReused))
		}
		if r.sweepStats != nil {
			r.sweepStats(sw)
		}
		r.releaseTallies(tallies)
	}
	defer finishSweep()

	if workers <= 1 {
		for _, k := range keys {
			if !runCell(k, tallies[0]) {
				return
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(t *workerTally) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(keys) {
					return
				}
				if !runCell(keys[i], t) {
					return
				}
			}
		}(tallies[w])
	}
	wg.Wait()
}

// Run executes the plan and collects every completed cell in canonical
// plan order. The returned error is the context's error if the run was
// cancelled, else the first collected cell error in canonical order, else
// nil. On either kind of failure the sweep stops starting new cells
// (in-flight ones finish) and the slice holds what completed — partial
// results survive, and a failing sequential sweep aborts at the failure
// exactly as the legacy path did.
func (r *Runner) Run(p *Plan) ([]RunResult, error) {
	var mu sync.Mutex
	var out []RunResult
	r.execute(p, func(res RunResult) bool {
		mu.Lock()
		out = append(out, res)
		mu.Unlock()
		return true
	})
	out = MergeRuns(out)
	if err := r.context().Err(); err != nil {
		return out, err
	}
	for _, res := range out {
		if res.Err != nil {
			return out, res.Err
		}
	}
	return out, nil
}

// Stream executes the plan and delivers completed cells in completion
// order on the returned channel, which closes when the sweep finishes or
// the context is cancelled. Consumption is the backpressure: at most one
// finished cell per worker is in flight, so huge sweeps never hold all
// traces at once (pair with DropTracesAfterProfile to shrink even that).
// Consumers that may abandon the channel early must install a cancellable
// WithContext and cancel it, or workers block forever on the send.
func (r *Runner) Stream(p *Plan) <-chan RunResult {
	ch := make(chan RunResult)
	done := r.context().Done()
	go func() {
		defer close(ch)
		r.execute(p, func(res RunResult) bool {
			select {
			case ch <- res:
				return true
			case <-done:
				return false
			}
		})
	}()
	return ch
}

// Seq is Stream as a range-over-func iterator: results arrive in
// completion order, and breaking out of the loop cancels the remaining
// work and returns once in-flight cells wind down.
func (r *Runner) Seq(p *Plan) iter.Seq[RunResult] {
	return func(yield func(RunResult) bool) {
		ctx, cancel := context.WithCancel(r.context())
		defer cancel()
		sub := *r
		sub.ctx = ctx
		ch := sub.Stream(p)
		for res := range ch {
			if !yield(res) {
				cancel()
				for range ch { // release blocked workers
				}
				return
			}
		}
	}
}
