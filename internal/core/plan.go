package core

import (
	"fmt"
	"sort"

	"turbulence/internal/netem"
)

// Variant is one named point on a Plan's ablation axis: a set of Options
// applied to every (scenario, pair) cell it crosses. When the plan also
// declares a scenario axis, that axis replaces the variant's
// Options.Scenario for every cell — nil axis entries included — so cells
// labelled faithful always run faithful.
type Variant struct {
	Name string
	Opts Options
}

// SeedPolicy selects how a Plan derives each cell's seed from BaseSeed.
type SeedPolicy int

const (
	// SeedCommon derives every cell's seed from the clip pair alone, so
	// all scenarios and variants stream that pair under common random
	// numbers: differences between cells reflect the treatment, not
	// sampling noise. This is the policy of every legacy entry point.
	SeedCommon SeedPolicy = iota
	// SeedPerCell additionally mixes the scenario and variant indices
	// into the seed, making every cell an independent draw — for
	// replication studies where cells must not share randomness.
	SeedPerCell
)

// Plan declares an experiment run space without executing anything: the
// clip pairs to stream, the netem scenarios to stream them under, the
// ablation variants to cross with both, and the seed policy tying cells to
// random streams. The zero axes default to the paper's evaluation — all 13
// Table 1 pairs, the faithful testbed, faithful options — so
// NewPlan(seed) alone declares the paper's full sweep.
//
// Cells are totally ordered scenario-major (scenario, then variant, then
// pair); Keys enumerates them in that canonical order and Shard carves a
// deterministic 1/n slice of it for cross-process fan-out. A Plan is a
// pure description: it can be built, sharded, sized and enumerated with no
// simulation cost, and any Runner can execute it.
type Plan struct {
	BaseSeed int64

	// Pairs lists the clip pairs to stream (nil = AllPairs()).
	Pairs []PairKey
	// Scenarios lists the netem scenarios to stream under; a nil entry is
	// the faithful testbed (nil slice = just the faithful testbed).
	Scenarios []*netem.Scenario
	// Variants lists the ablation-option points to cross with every
	// (scenario, pair) (nil = the single faithful zero Variant).
	Variants []Variant
	// Seeds is the seed policy (default SeedCommon, the legacy policy).
	Seeds SeedPolicy

	// shard/shards carve the strided slice {cell : Index%shards == shard};
	// zero values mean unsharded. Set only via Shard.
	shard, shards int

	// omit drops individual cells by canonical Index on top of the shard
	// carve; nil means none. Set only via Omitting. Omitted cells keep
	// their Index: the remaining cells still merge into canonical order.
	omit map[int]bool
}

// NewPlan declares the paper's full evaluation sweep for a base seed: all
// 13 Table 1 pairs on the faithful testbed with faithful options. Adjust
// the axes with ForPairs, UnderScenarios, WithVariants and WithOptions.
func NewPlan(baseSeed int64) *Plan {
	return &Plan{BaseSeed: baseSeed}
}

// ForPairs restricts the plan to the listed clip pairs (no arguments
// restores the default, all Table 1 pairs). Returns p for chaining.
func (p *Plan) ForPairs(keys ...PairKey) *Plan {
	p.Pairs = keys
	return p
}

// UnderScenarios sets the scenario axis (no arguments restores the
// default, the faithful testbed only). Returns p for chaining.
func (p *Plan) UnderScenarios(scs ...*netem.Scenario) *Plan {
	p.Scenarios = scs
	return p
}

// WithVariants sets the ablation axis (no arguments restores the default,
// the single faithful variant). Returns p for chaining.
func (p *Plan) WithVariants(vs ...Variant) *Plan {
	p.Variants = vs
	return p
}

// WithOptions sets the ablation axis to one unnamed variant carrying opts
// — the common case of a sweep under fixed options. Returns p for
// chaining.
func (p *Plan) WithOptions(opts Options) *Plan {
	p.Variants = []Variant{{Opts: opts}}
	return p
}

// WithSeedPolicy sets the seed policy. Returns p for chaining.
func (p *Plan) WithSeedPolicy(sp SeedPolicy) *Plan {
	p.Seeds = sp
	return p
}

// pairs, scenarios and variants resolve the axes with their defaults.
func (p *Plan) pairs() []PairKey {
	if p.Pairs == nil {
		return AllPairs()
	}
	return p.Pairs
}

func (p *Plan) scenarios() []*netem.Scenario {
	if len(p.Scenarios) == 0 {
		return []*netem.Scenario{nil}
	}
	return p.Scenarios
}

func (p *Plan) variants() []Variant {
	if len(p.Variants) == 0 {
		return []Variant{{}}
	}
	return p.Variants
}

// Shard returns a copy of the plan covering the i-th of n deterministic
// slices of the cell space: the cells whose canonical Index ≡ i (mod n), a
// stride that balances load across shards even when the pair axis is
// sorted by clip length. Every shard of the same Plan agrees on Index and
// seed per cell, so n processes can each run one shard and MergeRuns
// recombines their outputs into exactly the unsharded result. Sharding an
// already-sharded plan panics.
func (p *Plan) Shard(i, n int) *Plan {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("core: Plan.Shard(%d, %d) out of range", i, n))
	}
	if p.shards != 0 {
		panic("core: Plan.Shard of an already-sharded plan")
	}
	q := *p
	q.shard, q.shards = i, n
	return &q
}

// Sharded reports the plan's shard coordinates (0, 1 when unsharded).
func (p *Plan) Sharded() (shard, shards int) {
	if p.shards == 0 {
		return 0, 1
	}
	return p.shard, p.shards
}

// IsSharded reports whether the plan is a Shard slice of a larger plan.
// Sharded() alone cannot tell Shard(0, 1) from the unsharded plan, and a
// dispatcher must refuse to serve a slice as if it were the whole space.
func (p *Plan) IsSharded() bool { return p.shards != 0 }

// ShardSizes reports the cell count of each of the n strided shards of the
// plan, with no key materialisation — the lease-aware iteration a
// dispatcher needs: shards whose size is zero carry no work and need never
// be issued as leases. Panics on a sharded plan (slicing a slice is not
// meaningful) or n <= 0, mirroring Shard's contract.
func (p *Plan) ShardSizes(n int) []int {
	if n <= 0 {
		panic(fmt.Sprintf("core: Plan.ShardSizes(%d) out of range", n))
	}
	if p.shards != 0 {
		panic("core: Plan.ShardSizes of an already-sharded plan")
	}
	out := make([]int, n)
	for i := range out {
		out[i] = p.Shard(i, n).Size()
	}
	return out
}

// Omitting returns a copy of the plan that skips the cells with the listed
// canonical Indexes — how a worker honours a lease grant's CachedCells: the
// coordinator already holds those results, so the worker runs the shard's
// remaining cells and the batch merges around the cached ones. Indexes
// outside the plan (or outside its shard slice) are ignored. The copy's
// cells keep their global Index.
func (p *Plan) Omitting(indexes ...int) *Plan {
	if len(indexes) == 0 {
		return p
	}
	q := *p
	q.omit = make(map[int]bool, len(indexes)+len(p.omit))
	for i := range p.omit {
		q.omit[i] = true
	}
	for _, i := range indexes {
		q.omit[i] = true
	}
	return &q
}

// Size reports how many cells this plan executes (after sharding and
// omissions), with no simulation cost.
func (p *Plan) Size() int {
	total := len(p.pairs()) * len(p.scenarios()) * len(p.variants())
	n := total
	if p.shards != 0 {
		n = total / p.shards
		if p.shard < total%p.shards {
			n++
		}
	}
	for idx := range p.omit {
		if idx >= 0 && idx < total && (p.shards == 0 || idx%p.shards == p.shard) {
			n--
		}
	}
	return n
}

// RunKey identifies one cell of a Plan's run space.
type RunKey struct {
	// Index is the cell's position in the unsharded plan's canonical
	// (scenario-major, then variant, then pair) order. It is global across
	// shards: MergeRuns sorts by it to recombine shard outputs.
	Index int

	Pair PairKey

	// Scenario is the cell's netem scenario (nil = faithful testbed);
	// ScenarioIndex its position on the plan's scenario axis.
	Scenario      *netem.Scenario
	ScenarioIndex int

	// Variant is the cell's ablation point; VariantIndex its position on
	// the plan's variant axis.
	Variant      Variant
	VariantIndex int
}

// String labels the cell compactly for progress lines and errors.
func (k RunKey) String() string {
	s := fmt.Sprintf("set%d/%v", k.Pair.Set, k.Pair.Class)
	if k.Variant.Name != "" {
		s = k.Variant.Name + "/" + s
	}
	if k.Scenario != nil {
		s = k.Scenario.Name + "/" + s
	}
	return s
}

// OptionsFor composes a cell's effective run Options: the variant's
// options, with the scenario axis — when the plan declares one —
// replacing the Scenario field outright. A nil axis entry then really
// means the faithful testbed, so a variant's stray Options.Scenario can
// never run impaired under a faithful label. The effective options are
// part of a cell's identity: content addressing (wire.CellSpecFrom) must
// digest these, not the raw variant options.
func (p *Plan) OptionsFor(k RunKey) Options {
	o := k.Variant.Opts
	if len(p.Scenarios) > 0 {
		o.Scenario = k.Scenario
	}
	return o
}

// Keys enumerates the plan's cells in canonical order (after sharding),
// with no simulation cost. Tooling can use it to preview, label or
// partition a sweep.
func (p *Plan) Keys() []RunKey {
	pairs, scs, vars := p.pairs(), p.scenarios(), p.variants()
	out := make([]RunKey, 0, p.Size())
	idx := 0
	for si, sc := range scs {
		for vi, v := range vars {
			for _, pk := range pairs {
				if (p.shards == 0 || idx%p.shards == p.shard) && !p.omit[idx] {
					out = append(out, RunKey{
						Index:    idx,
						Pair:     pk,
						Scenario: sc, ScenarioIndex: si,
						Variant: v, VariantIndex: vi,
					})
				}
				idx++
			}
		}
	}
	return out
}

// Seed derives the cell's seed under the plan's policy. Under SeedCommon
// it equals SeedFor(BaseSeed, k.Pair) — exactly how every legacy entry
// point seeded the same pair, which is what keeps Runner output
// byte-identical to them.
func (p *Plan) Seed(k RunKey) int64 {
	s := SeedFor(p.BaseSeed, k.Pair)
	if p.Seeds == SeedPerCell {
		s += int64(k.ScenarioIndex)*1_000_033 + int64(k.VariantIndex)*7_919
	}
	return s
}

// MergeRuns recombines result batches from shards of one Plan (or any
// partition of its cells) into the canonical plan order, so
//
//	MergeRuns(run(plan.Shard(0,n)), ..., run(plan.Shard(n-1,n)))
//
// reproduces the unsharded run exactly. Inputs may arrive in any order;
// the merge is a stable sort on each cell's global Index.
func MergeRuns(shards ...[]RunResult) []RunResult {
	var out []RunResult
	for _, s := range shards {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key.Index < out[j].Key.Index })
	return out
}

// PairRuns projects results onto their PairRun payloads, preserving order
// — the bridge from the Runner API to the []*PairRun the analysis and
// legacy surfaces consume.
func PairRuns(results []RunResult) []*PairRun {
	out := make([]*PairRun, len(results))
	for i, r := range results {
		out[i] = r.Run
	}
	return out
}
