package core

import (
	"context"
	"runtime"
	"testing"

	"turbulence/internal/media"
	"turbulence/internal/racecheck"
)

// TestReusedAndWheelMatchFresh is the reuse tentpole's identity pin:
// reset-reused testbeds and the timing-wheel scheduler backend must both
// produce byte-identical traces to fresh heap-backed construction, at
// every worker count. The reference is a fresh-testbed sequential sweep;
// every (workers, wheel) combination is compared against it cell by cell
// via the full trace digest.
func TestReusedAndWheelMatchFresh(t *testing.T) {
	plan := NewPlan(2002).
		ForPairs(PairKey{2, media.High}, PairKey{4, media.Low}).
		UnderScenarios(nil, mustScenario(t, "lossy-wifi"))
	ref, err := NewRunner(WithWorkers(1), WithFreshTestbeds()).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != plan.Size() {
		t.Fatalf("reference sweep yielded %d cells, want %d", len(ref), plan.Size())
	}
	refDigest := make([]uint64, len(ref))
	for i, res := range ref {
		refDigest[i] = traceDigest(res.Run)
	}

	for _, workers := range []int{1, 4, 0} {
		for _, wheel := range []bool{false, true} {
			opts := []RunnerOption{WithWorkers(workers)}
			if wheel {
				opts = append(opts, WithTimingWheel())
			}
			var sw SweepStats
			opts = append(opts, WithSweepStats(func(s SweepStats) { sw = s }))
			got, err := NewRunner(opts...).Run(plan)
			if err != nil {
				t.Fatalf("workers=%d wheel=%t: %v", workers, wheel, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("workers=%d wheel=%t: %d cells, want %d", workers, wheel, len(got), len(ref))
			}
			for i := range got {
				if got[i].Seed != ref[i].Seed || got[i].Key.Pair != ref[i].Key.Pair {
					t.Fatalf("workers=%d wheel=%t: cell %d is %v seed %d, reference has %v seed %d",
						workers, wheel, i, got[i].Key.Pair, got[i].Seed, ref[i].Key.Pair, ref[i].Seed)
				}
				if d := traceDigest(got[i].Run); d != refDigest[i] {
					t.Fatalf("workers=%d wheel=%t: cell %v trace digest %#x diverges from fresh heap run %#x",
						workers, wheel, got[i].Key.Pair, d, refDigest[i])
				}
			}
			// Testbed economy: every cell was served, by build or reuse.
			if sw.TestbedsBuilt+sw.TestbedsReused != plan.Size() {
				t.Fatalf("workers=%d wheel=%t: built %d + reused %d != %d cells",
					workers, wheel, sw.TestbedsBuilt, sw.TestbedsReused, plan.Size())
			}
			if workers == 1 {
				// Sequential: one worker, two shapes (faithful, lossy-wifi),
				// four cells — exactly two builds and two reuses.
				if sw.TestbedsBuilt != 2 || sw.TestbedsReused != 2 {
					t.Fatalf("wheel=%t: sequential sweep built %d, reused %d, want 2 and 2",
						wheel, sw.TestbedsBuilt, sw.TestbedsReused)
				}
			}
			if wheel && sw.WheelPeak <= 0 {
				t.Fatalf("workers=%d: wheel sweep reports no bucket occupancy", workers)
			}
			if !wheel && sw.WheelPeak != 0 {
				t.Fatalf("workers=%d: heap sweep reports wheel occupancy %d", workers, sw.WheelPeak)
			}
		}
	}
}

// TestResetAllocFree pins the steady-state cost of Testbed.Reset: rewinding
// the whole apparatus — network, hosts, hops, both stacks at six sites —
// must cost at most the small constant replay budget (the six per-site RDT
// stream splits), not a rebuild.
func TestResetAllocFree(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation pin: race instrumentation inflates counts")
	}
	tb := NewTestbed(1)
	tb.Reset(2) // warm any lazily grown internals
	allocs := testing.AllocsPerRun(10, func() { tb.Reset(3) })
	if allocs > 30 {
		t.Fatalf("Testbed.Reset allocates %.0f objects per call, want the constant replay budget (≤30)", allocs)
	}
}

// TestReusedRunAllocatesFarLess pins the payoff the cache exists for: a
// cell served by resetting a warm testbed must allocate at least 5× less
// than the same cell building its apparatus from scratch.
func TestReusedRunAllocatesFarLess(t *testing.T) {
	if racecheck.Enabled {
		t.Skip("allocation pin: race instrumentation dominates both measurements")
	}
	seed := SeedFor(2002, PairKey{Set: 2, Class: media.High})
	ctx := context.Background()
	measure := func(cache *TestbedCache) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, _, err := runPair(ctx, seed, 2, media.High, Options{}, true, nil, cache); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	cache := NewTestbedCache()
	if _, _, err := runPair(ctx, seed, 2, media.High, Options{}, true, nil, cache); err != nil {
		t.Fatal(err) // warm: builds the testbed and the pooled demux
	}
	reused := measure(cache)
	fresh := measure(nil)
	if fresh < 5*reused {
		t.Fatalf("fresh run allocates %d bytes, reused run %d bytes — want ≥5× reduction, got %.1f×",
			fresh, reused, float64(fresh)/float64(reused))
	}
}

// BenchmarkReusedPairRun measures one streamed cell served from a warm
// cache — the steady-state unit of a reused sweep.
func BenchmarkReusedPairRun(b *testing.B) {
	seed := SeedFor(2002, PairKey{Set: 2, Class: media.High})
	ctx := context.Background()
	cache := NewTestbedCache()
	if _, _, err := runPair(ctx, seed, 2, media.High, Options{}, true, nil, cache); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := runPair(ctx, seed, 2, media.High, Options{}, true, nil, cache); err != nil {
			b.Fatal(err)
		}
	}
}
