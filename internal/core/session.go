package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"turbulence/internal/capture"
	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/media"
	"turbulence/internal/netem"
	"turbulence/internal/netsim"
	"turbulence/internal/obs"
	"turbulence/internal/probe"
	"turbulence/internal/tracker"
)

// Port conventions for experiment sessions on the client.
const (
	WMPCtlPort  = 4001
	WMPDataPort = 4002
	RDTCtlPort  = 5001
	RDTDataPort = 5002
)

// PairRun is the result of the paper's unit experiment: one clip pair
// (identical content, both formats) streamed simultaneously from its site
// to the client, with full instrumentation.
type PairRun struct {
	Set   int
	Class media.Class
	Site  SiteProfile

	// Application-layer reports from the two instrumented players.
	WMP  *tracker.Report
	Real *tracker.Report

	// Network-layer capture at the client NIC (inbound only).
	Trace    *capture.Trace
	WMPFlow  *capture.FlowTrace
	RealFlow *capture.FlowTrace

	// Network-conditions checks run around the experiment, per the
	// methodology (§2.D: "Before and after each run, ping and tracert
	// were run").
	PingBefore, PingAfter *probe.PingReport
	Route                 *probe.TraceReport

	// Scenario names the netem scenario the run streamed under ("" = the
	// faithful testbed).
	Scenario string

	// Path drop breakdowns, collected from the hop counters after the
	// run: Downlink is the site-to-client direction (the media flows),
	// Uplink the client-to-site control direction. The three drop causes
	// stay separate so model loss is distinguishable from AQM early drops
	// and queue overflow in every report.
	Downlink, Uplink netsim.PathStats

	// Sim holds the run's scheduler counters. Deterministic for a given
	// seed — the same cell yields the same counts on any worker layout —
	// so they feed metrics without threatening reproducibility.
	Sim SimCounters
}

// SimCounters is one run's eventsim activity summary.
type SimCounters struct {
	TimersScheduled uint64 // events ever pushed onto the scheduler
	EventsFired     uint64 // events dispatched
	HeapPeak        int    // high-water pending-event count
	// WheelPeak is the high-water timing-wheel bucket occupancy, zero when
	// the run used the default heap backend.
	WheelPeak int
}

// Clips returns the pair's clips (Real, WindowsMedia).
func (r *PairRun) Clips() (media.Clip, media.Clip) {
	set, _ := media.FindSet(r.Set)
	p := set.Pairs[r.Class]
	return p.Real, p.WindowsMedia
}

// Options select ablation variants of the pair experiment (DESIGN.md §4).
// The zero value is the faithful reproduction.
type Options struct {
	// WMSUnitCap bounds the WMS data-unit payload; sub-MTU values
	// eliminate fragmentation ("what if WMS packetised like RealServer").
	WMSUnitCap int
	// UncappedBurst removes the bottleneck cap on Real's buffering burst.
	UncappedBurst bool
	// DisableInterleave delivers WMP units to the application as they
	// arrive rather than in one-second batches.
	DisableInterleave bool
	// Sequential streams the two formats one after the other instead of
	// simultaneously (methodology ablation).
	Sequential bool
	// BottleneckBps overrides the site's server-access bandwidth for the
	// constrained-bandwidth experiments the paper's future work proposes
	// (0 = the site's faithful value).
	BottleneckBps float64
	// EnableScaling turns on both stacks' media scaling (loss-feedback
	// stream thinning), the capability §VI says both players have. The
	// faithful reproduction leaves it off: the paper measured typical
	// uncongested conditions where scaling never engages.
	EnableScaling bool
	// Scenario streams the pair under a netem scenario: every site path's
	// hops are impaired by role (bursty loss, time-varying bandwidth,
	// AQM, cross traffic). Nil — and the built-in "paper-baseline" —
	// reproduce the faithful testbed byte for byte.
	Scenario *netem.Scenario
}

// RunPair executes one paired experiment on a fresh testbed. The seed
// fixes every random draw, so a (seed, set, class) triple is exactly
// reproducible.
//
// Deprecated-ish: RunPair remains fully supported, but new sweep code
// should declare a Plan and execute it with a Runner, which adds
// cancellation, progress, streaming and sharding for free.
func RunPair(seed int64, set int, class media.Class) (*PairRun, error) {
	return RunPairWith(seed, set, class, Options{})
}

// RunPairWith is RunPair with ablation options.
func RunPairWith(seed int64, set int, class media.Class, opts Options) (*PairRun, error) {
	run, _, err := runPair(context.Background(), seed, set, class, opts, false, nil, nil)
	return run, err
}

// RunPairContext is RunPairWith under a cancellation context, for callers
// that run one-off experiments (explicit literal seed, no Plan) but still
// need ctrl-C to land mid-simulation. Identical ctx-less behaviour to
// RunPairWith; on cancellation it returns ctx.Err() promptly.
func RunPairContext(ctx context.Context, seed int64, set int, class media.Class, opts Options) (*PairRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	run, _, err := runPair(ctx, seed, set, class, opts, false, nil, nil)
	return run, err
}

// runPair is the single pair-experiment executor every entry point —
// legacy or Runner — funnels through. The context is polled between
// simulation events (the scheduler's interrupt seam), so a cancelled ctx
// aborts the run promptly mid-stream and returns ctx.Err().
//
// With stream set (the Runner's StreamProfiles retention) the sniffer
// stores nothing: each captured record streams through an online
// flow-demultiplexing analyzer and is gone, the returned PairRun carries
// no Trace or flow views, and both flows' profiles come back as a
// Comparison computed from the analyzer state. Everything else — tracker
// reports, probes, path stats — is identical, and the profiles themselves
// are exactly equal to what profiling a retained trace yields, because
// ProfileFlow replays stored traces through the same analyzer.
//
// A non-nil sink attaches a capture.CounterTap to the sniffer (packet and
// byte volume, two atomic adds per record — the tap path's allocation pin
// covers it). Sim counters and drop tallies are read from the finished
// PairRun by the Runner, not here, keeping the sink out of the sim.
//
// A non-nil cache serves the testbed (reset-reused across the worker's
// runs, or fresh if the cache says so) and the pooled analysis scratch;
// nil builds everything fresh, the legacy one-off path. Either way the
// run's bytes are identical: reuse is pinned equal to construction.
func runPair(ctx context.Context, seed int64, set int, class media.Class, opts Options, stream bool, sink *obs.Sink, cache *TestbedCache) (*PairRun, *Comparison, error) {
	clipSet, ok := media.FindSet(set)
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown data set %d", set)
	}
	pair, ok := clipSet.Pairs[class]
	if !ok {
		return nil, nil, fmt.Errorf("core: set %d has no %v pair", set, class)
	}
	var tb *Testbed
	if cache != nil {
		tb = cache.Get(seed, set, opts)
	} else {
		tb = NewTestbed(seed, shapeFor(set, opts).options()...)
	}
	site := tb.Site(set)
	run := &PairRun{Set: set, Class: class, Site: site.Profile}
	if opts.Scenario != nil {
		run.Scenario = opts.Scenario.Name
	}
	if opts.WMSUnitCap > 0 {
		site.WMS.SetUnitCap(opts.WMSUnitCap)
	}
	if opts.UncappedBurst {
		site.RDT.SetUncappedBurst(true)
	}
	if opts.EnableScaling {
		site.WMS.EnableScaling(true)
		site.RDT.EnableScaling(true)
	}

	sniff := capture.Attach(tb.Client)
	sniff.RecvOnly = true
	if sink != nil {
		sniff.AddTap(&capture.CounterTap{Records: sink.Packets, Bytes: sink.Bytes})
	}
	var demux *capture.FlowDemux
	if stream {
		// Online analysis: records stream through the flow demultiplexer's
		// per-flow accumulators and are never stored.
		sniff.SetStore(false)
		if cache != nil {
			demux = cache.demux()
		} else {
			demux = capture.NewFlowDemux()
		}
		sniff.AddTap(demux)
	}

	// Pre-run network checks.
	pingBefore := probe.StartPing(tb.Client, site.Profile.Addr, probe.PingOptions{Count: 10, Interval: 200 * time.Millisecond, ID: 100}, nil)
	tracer := probe.StartTrace(tb.Client, site.Profile.Addr, probe.TraceOptions{ID: 101}, nil)

	// Start both players simultaneously once the checks have had a
	// moment, mirroring the methodology.
	const checksLead = 5 * time.Second
	var wmpDone, realDone bool
	var realTrk *tracker.RealTracker
	var wmpTrk *tracker.MediaTracker
	startReal := func() {
		realTrk = tracker.StartRealTracker(tb.Client, site.RDT, pair.Real.Name(), RDTCtlPort, RDTDataPort,
			func(rep *tracker.Report) { run.Real = rep; realDone = true })
	}
	// startWMP honours the interleave ablation on every path — including
	// the Sequential branch, so Sequential+DisableInterleave composes.
	startWMP := func(onDone func()) {
		mt := tracker.StartMediaTracker(tb.Client, site.WMS, pair.WindowsMedia.Name(), WMPCtlPort, WMPDataPort,
			func(rep *tracker.Report) {
				run.WMP = rep
				wmpDone = true
				if onDone != nil {
					onDone()
				}
			})
		if opts.DisableInterleave {
			mt.Player().DisableInterleave()
		}
		wmpTrk = mt
	}
	tb.Net.Sched.After(checksLead, "session.startPair", func(eventsim.Time) {
		if opts.Sequential {
			// Methodology ablation: WMP first, then Real.
			startWMP(startReal)
			return
		}
		startWMP(nil)
		startReal()
	})

	// Post-run ping, fired once both players finish.
	var pingAfter *probe.Pinger
	horizon := checksLead + clipSet.Duration + 3*time.Minute + opts.Scenario.Slack()
	if opts.Sequential {
		horizon += clipSet.Duration + 3*time.Minute
	}
	stopWatch := tb.Net.Sched.Ticker(time.Second, "session.watch", func(now eventsim.Time) bool {
		if wmpDone && realDone && pingAfter == nil {
			pingAfter = probe.StartPing(tb.Client, site.Profile.Addr, probe.PingOptions{Count: 10, Interval: 200 * time.Millisecond, ID: 102}, nil)
			return false
		}
		return true
	})
	if ctx != nil && ctx.Done() != nil {
		tb.Net.Sched.SetInterrupt(func() bool { return ctx.Err() != nil })
	}
	if err := tb.Net.Run(eventsim.Time(horizon)); err != nil {
		if errors.Is(err, eventsim.ErrInterrupted) {
			return nil, nil, ctx.Err()
		}
		return nil, nil, err
	}
	stopWatch()
	if !wmpDone || !realDone {
		return nil, nil, fmt.Errorf("core: pair %d/%v did not complete within horizon (wmp=%t real=%t)", set, class, wmpDone, realDone)
	}
	// The event loop has fully drained — nothing can deliver to the
	// players anymore — so their pooled assembly state can recycle for
	// the next run.
	realTrk.Player().ReleaseResources()
	wmpTrk.Player().ReleaseResources()

	run.PingBefore = pingBefore.Report()
	if pingAfter != nil {
		run.PingAfter = pingAfter.Report()
	}
	run.Route = tracer.Report()
	if p := tb.Net.PathBetween(site.Profile.Addr, ClientAddr); p != nil {
		run.Downlink = p.Stats()
	}
	if p := tb.Net.PathBetween(ClientAddr, site.Profile.Addr); p != nil {
		run.Uplink = p.Stats()
	}
	run.Sim = SimCounters{
		TimersScheduled: tb.Net.Sched.Scheduled(),
		EventsFired:     tb.Net.Sched.Fired(),
		HeapPeak:        tb.Net.Sched.PeakQueue(),
		WheelPeak:       tb.Net.Sched.WheelPeak(),
	}
	if stream {
		wmp, real := demux.To(WMPDataPort), demux.To(RDTDataPort)
		if wmp == nil || real == nil {
			return nil, nil, fmt.Errorf("core: pair %d/%v missing data flows in capture", set, class)
		}
		cmp := &Comparison{
			Set:       run.Set,
			ClassName: run.Class.String(),
			Real:      ProfileFromMetrics(real.Metrics),
			WMP:       ProfileFromMetrics(wmp.Metrics),
		}
		return run, cmp, nil
	}
	run.Trace = sniff.Trace()
	run.WMPFlow = run.Trace.FlowTo(WMPDataPort)
	run.RealFlow = run.Trace.FlowTo(RDTDataPort)
	if run.WMPFlow == nil || run.RealFlow == nil {
		return nil, nil, fmt.Errorf("core: pair %d/%v missing data flows in capture", set, class)
	}
	return run, nil, nil
}

// PairKey identifies one pair experiment.
type PairKey struct {
	Set   int
	Class media.Class
}

// AllPairs lists the 13 pair experiments of Table 1 in order.
func AllPairs() []PairKey {
	var out []PairKey
	for _, s := range media.Library() {
		for _, c := range s.Classes() {
			out = append(out, PairKey{Set: s.Set, Class: c})
		}
	}
	return out
}

// SeedFor derives a per-pair seed from a base seed so runs are independent
// but reproducible. Every execution path — sequential or parallel — seeds
// a pair experiment through this one function, which is what makes the two
// paths byte-identical.
func SeedFor(base int64, k PairKey) int64 {
	return base*1000003 + int64(k.Set)*101 + int64(k.Class)*13
}

// RunPairs executes the listed pair experiments, fanning out across up to
// workers goroutines (workers <= 1 runs sequentially on the calling
// goroutine; workers == 0 uses GOMAXPROCS). Each run owns a private
// single-threaded Scheduler and testbed seeded via SeedFor, so every run
// is bit-for-bit identical to its sequential counterpart, and results come
// back in key order regardless of completion order. On error the first
// failure (in key order) is reported.
//
// Deprecated-ish: kept as a thin wrapper over Plan + Runner, pinned
// byte-identical by TestRunnerMatchesLegacyEntryPoints.
func RunPairs(baseSeed int64, keys []PairKey, workers int) ([]*PairRun, error) {
	return RunPairsWith(baseSeed, keys, Options{}, workers)
}

// RunPairsWith is RunPairs with shared ablation/scenario options applied
// to every run. Because each run is seeded by SeedFor regardless of which
// worker executes it, output is byte-identical for any workers value —
// scenarios included.
//
// Deprecated-ish: kept as a thin wrapper over Plan + Runner.
func RunPairsWith(baseSeed int64, keys []PairKey, opts Options, workers int) ([]*PairRun, error) {
	if keys == nil {
		keys = []PairKey{}
	}
	results, err := NewRunner(WithWorkers(workers)).Run(NewPlan(baseSeed).ForPairs(keys...).WithOptions(opts))
	if err != nil {
		return nil, err
	}
	return PairRuns(results), nil
}

// ScenarioRuns couples one scenario with its pair-run results, in key
// order.
type ScenarioRuns struct {
	Scenario *netem.Scenario
	Runs     []*PairRun
}

// RunScenarioMatrix streams every listed clip pair under every listed
// scenario: the what-if laboratory the netem layer enables. All scenarios
// share the same base seed (common random numbers), so differences between
// scenario rows reflect the impairments, not sampling noise. Each
// (scenario, pair) run is seeded via SeedFor and owns a private testbed,
// so the matrix is deterministic for any workers value.
//
// Deprecated-ish: kept as a thin wrapper over Plan + Runner; a Plan with
// UnderScenarios additionally shards, streams, cancels and reports
// progress.
func RunScenarioMatrix(baseSeed int64, keys []PairKey, scenarios []*netem.Scenario, workers int) ([]ScenarioRuns, error) {
	return NewRunner(WithWorkers(workers)).RunMatrix(baseSeed, keys, scenarios)
}

// RunMatrix executes the (pairs × scenarios) plan on r and groups the
// results into one ScenarioRuns row per scenario — the matrix-shaped view
// of a Runner sweep, honouring whatever workers/context/progress the
// Runner carries.
func (r *Runner) RunMatrix(baseSeed int64, keys []PairKey, scenarios []*netem.Scenario) ([]ScenarioRuns, error) {
	if len(scenarios) == 0 {
		return nil, nil
	}
	if keys == nil {
		keys = []PairKey{}
	}
	plan := NewPlan(baseSeed).ForPairs(keys...).UnderScenarios(scenarios...)
	results, err := r.Run(plan)
	if err != nil {
		// Attribute the first failure (canonical order — results are
		// sorted) to its scenario, as the per-scenario engine did; a
		// faithful (nil-scenario) row's error passes through unwrapped.
		for _, res := range results {
			if res.Err != nil {
				if res.Key.Scenario != nil {
					return nil, fmt.Errorf("scenario %s: %w", res.Key.Scenario.Name, res.Err)
				}
				break
			}
		}
		return nil, err
	}
	out := make([]ScenarioRuns, len(scenarios))
	for i, sc := range scenarios {
		out[i] = ScenarioRuns{Scenario: sc, Runs: PairRuns(results[i*len(keys) : (i+1)*len(keys)])}
	}
	return out, nil
}

// RunAll executes every Table 1 pair experiment sequentially. It is the
// workhorse behind the all-data-set figures (3, 5, 7, 9, 11, 14, 15).
func RunAll(baseSeed int64) ([]*PairRun, error) {
	return RunPairs(baseSeed, AllPairs(), 1)
}

// RunAllParallel is RunAll with the pair runs fanned out across a worker
// pool; output is deterministic and identical to RunAll.
func RunAllParallel(baseSeed int64, workers int) ([]*PairRun, error) {
	return RunPairs(baseSeed, AllPairs(), workers)
}

// RunSubset executes the listed pair experiments only; figure generators
// that need a single set use this to stay fast.
func RunSubset(baseSeed int64, keys []PairKey) ([]*PairRun, error) {
	return RunPairs(baseSeed, keys, 1)
}

// DataEndpointWMP returns the client data endpoint for MediaPlayer flows.
func DataEndpointWMP() inet.Endpoint {
	return inet.Endpoint{Addr: ClientAddr, Port: WMPDataPort}
}

// DataEndpointReal returns the client data endpoint for RealPlayer flows.
func DataEndpointReal() inet.Endpoint {
	return inet.Endpoint{Addr: ClientAddr, Port: RDTDataPort}
}
