package probe

import (
	"encoding/binary"
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

// TraceHop is one row of a traceroute: the router that answered at a TTL.
type TraceHop struct {
	TTL     int
	Addr    inet.Addr
	RTT     time.Duration
	Timeout bool
}

// TraceReport is a completed route discovery, like tracert output.
type TraceReport struct {
	Target  inet.Addr
	Hops    []TraceHop
	Reached bool
}

// HopCount returns the number of router hops to the destination: the TTL at
// which the destination itself answered minus the destination's own hop.
// If the destination was never reached it returns the probed depth.
func (r *TraceReport) HopCount() int {
	if r.Reached {
		// The final answering TTL is the destination; routers are one fewer.
		return len(r.Hops) - 1
	}
	return len(r.Hops)
}

// String renders tracert-style rows.
func (r *TraceReport) String() string {
	s := fmt.Sprintf("tracert to %s (%d hops, reached=%t)\n", r.Target, r.HopCount(), r.Reached)
	for _, h := range r.Hops {
		if h.Timeout {
			s += fmt.Sprintf("%3d  *  request timed out\n", h.TTL)
			continue
		}
		s += fmt.Sprintf("%3d  %-15s  %.1f ms\n", h.TTL, h.Addr, float64(h.RTT)/float64(time.Millisecond))
	}
	return s
}

// TraceOptions configures a traceroute.
type TraceOptions struct {
	MaxTTL  int           // probe depth limit (default 30, like tracert)
	Timeout time.Duration // per-probe deadline (default 2s)
	ID      uint16        // ICMP identifier
}

func (o *TraceOptions) defaults() {
	if o.MaxTTL <= 0 {
		o.MaxTTL = 30
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
}

// Tracer runs an asynchronous traceroute on the event loop, probing one TTL
// at a time as the Windows tracert does.
type Tracer struct {
	host   *netsim.Host
	target inet.Addr
	opts   TraceOptions
	report TraceReport
	done   func(*TraceReport)

	ttl      int
	seq      uint16
	sentAt   eventsim.Time
	settled  bool
	finished bool
}

// StartTrace begins a route discovery; done (optional) fires at completion.
func StartTrace(h *netsim.Host, target inet.Addr, opts TraceOptions, done func(*TraceReport)) *Tracer {
	opts.defaults()
	t := &Tracer{host: h, target: target, opts: opts, done: done}
	t.report.Target = target
	h.OnICMP(t.onICMP)
	t.host.After(0, "tracert.start", func(now eventsim.Time) { t.probe(now) })
	return t
}

func (t *Tracer) probe(now eventsim.Time) {
	if t.finished {
		return
	}
	t.ttl++
	t.seq++
	t.settled = false
	t.sentAt = now
	seq := t.seq
	t.host.SendICMP(t.target, byte(t.ttl), inet.ICMPMessage{
		Type: inet.ICMPEchoRequest, ID: t.opts.ID, Seq: seq,
		Payload: make([]byte, 32),
	})
	t.host.After(t.opts.Timeout, "tracert.timeout", func(now eventsim.Time) {
		if t.finished || t.settled || t.seq != seq {
			return
		}
		t.settled = true
		t.report.Hops = append(t.report.Hops, TraceHop{TTL: t.ttl, Timeout: true})
		t.advance(now)
	})
}

func (t *Tracer) onICMP(now eventsim.Time, from inet.Addr, m inet.ICMPMessage) {
	if t.finished || t.settled {
		return
	}
	switch m.Type {
	case inet.ICMPTimeExceeded:
		// Match via the quoted original datagram: its ICMP header carries
		// our ID and the current sequence number.
		id, seq, ok := quotedEchoIDs(m.Payload)
		if !ok || id != t.opts.ID || seq != t.seq {
			return
		}
		t.settled = true
		t.report.Hops = append(t.report.Hops, TraceHop{TTL: t.ttl, Addr: from, RTT: now.Sub(t.sentAt)})
		t.advance(now)
	case inet.ICMPEchoReply:
		if m.ID != t.opts.ID || m.Seq != t.seq || from != t.target {
			return
		}
		t.settled = true
		t.report.Hops = append(t.report.Hops, TraceHop{TTL: t.ttl, Addr: from, RTT: now.Sub(t.sentAt)})
		t.report.Reached = true
		t.finish()
	}
}

func (t *Tracer) advance(now eventsim.Time) {
	if t.ttl >= t.opts.MaxTTL {
		t.finish()
		return
	}
	t.probe(now)
}

func (t *Tracer) finish() {
	if t.finished {
		return
	}
	t.finished = true
	if t.done != nil {
		t.done(&t.report)
	}
}

// Report returns the (possibly still filling) report.
func (t *Tracer) Report() *TraceReport { return &t.report }

// quotedEchoIDs extracts the ICMP ID and sequence from the quoted datagram
// inside a time-exceeded payload (IP header + first 8 transport bytes).
func quotedEchoIDs(quote []byte) (id, seq uint16, ok bool) {
	need := inet.IPv4HeaderLen + 8
	if len(quote) < need {
		return 0, 0, false
	}
	if quote[9] != inet.ProtoICMP {
		return 0, 0, false
	}
	icmp := quote[inet.IPv4HeaderLen:]
	return binary.BigEndian.Uint16(icmp[4:]), binary.BigEndian.Uint16(icmp[6:]), true
}

// HopsCDF builds the Figure 2 curve: the empirical CDF of hop counts
// across trace reports.
func HopsCDF(reports []*TraceReport) []stats.Point {
	var all []float64
	for _, r := range reports {
		all = append(all, float64(r.HopCount()))
	}
	return stats.CDF(all)
}
