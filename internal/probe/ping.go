// Package probe reimplements the two network-conditions tools the paper's
// methodology runs before and after every experiment: ping (RTT and loss,
// feeding the Figure 1 CDF) and tracert (hop discovery, feeding the
// Figure 2 CDF). Both operate over the simulated network's real ICMP path:
// echo requests answered by the destination host, and TTL-limited probes
// answered by routers with time-exceeded errors.
package probe

import (
	"fmt"
	"time"

	"turbulence/internal/eventsim"
	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

// PingEcho is one echo exchange.
type PingEcho struct {
	Seq  int
	RTT  time.Duration
	Lost bool
}

// PingReport summarises a ping run, like the tool's closing statistics.
type PingReport struct {
	Target         inet.Addr
	Sent, Received int
	Echoes         []PingEcho
	MinRTT, MaxRTT time.Duration
	AvgRTT         time.Duration
}

// LossRate returns the fraction of unanswered probes.
func (r *PingReport) LossRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Sent-r.Received) / float64(r.Sent)
}

// RTTSeconds returns the successful RTT samples in seconds, ready for the
// Figure 1 CDF.
func (r *PingReport) RTTSeconds() []float64 {
	var out []float64
	for _, e := range r.Echoes {
		if !e.Lost {
			out = append(out, e.RTT.Seconds())
		}
	}
	return out
}

// RTTMillis returns the successful RTT samples in milliseconds.
func (r *PingReport) RTTMillis() []float64 {
	out := r.RTTSeconds()
	for i := range out {
		out[i] *= 1000
	}
	return out
}

// String renders a ping-style summary line.
func (r *PingReport) String() string {
	return fmt.Sprintf("ping %s: %d sent, %d received, %.1f%% loss, rtt min/avg/max = %v/%v/%v",
		r.Target, r.Sent, r.Received, r.LossRate()*100, r.MinRTT, r.AvgRTT, r.MaxRTT)
}

// PingOptions configures a ping run.
type PingOptions struct {
	Count    int           // echo requests to send (default 10)
	Interval time.Duration // spacing between requests (default 1s)
	Timeout  time.Duration // per-echo reply deadline (default 2s)
	ID       uint16        // ICMP identifier; pick distinct IDs per prober
}

func (o *PingOptions) defaults() {
	if o.Count <= 0 {
		o.Count = 10
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
}

// Pinger runs an asynchronous ping session on the event loop.
type Pinger struct {
	host   *netsim.Host
	target inet.Addr
	opts   PingOptions
	report PingReport

	sentAt   map[uint16]eventsim.Time
	answered map[uint16]bool
	done     func(*PingReport)
	pending  int
	finished bool
}

// StartPing begins a ping session; done (optional) fires when every echo
// has been answered or timed out. The report is also available from
// Report after the network run completes.
func StartPing(h *netsim.Host, target inet.Addr, opts PingOptions, done func(*PingReport)) *Pinger {
	opts.defaults()
	p := &Pinger{
		host:     h,
		target:   target,
		opts:     opts,
		sentAt:   make(map[uint16]eventsim.Time),
		answered: make(map[uint16]bool),
		done:     done,
	}
	p.report.Target = target
	h.OnICMP(p.onICMP)
	for i := 0; i < opts.Count; i++ {
		seq := uint16(i + 1)
		delay := time.Duration(i) * opts.Interval
		h.After(delay, "ping.send", func(now eventsim.Time) { p.send(seq, now) })
	}
	p.pending = opts.Count
	return p
}

func (p *Pinger) send(seq uint16, now eventsim.Time) {
	p.sentAt[seq] = now
	p.report.Sent++
	p.host.SendICMP(p.target, inet.DefaultTTL, inet.ICMPMessage{
		Type: inet.ICMPEchoRequest, ID: p.opts.ID, Seq: seq,
		Payload: make([]byte, 32), // classic ping payload size
	})
	p.host.After(p.opts.Timeout, "ping.timeout", func(eventsim.Time) { p.expire(seq) })
}

func (p *Pinger) onICMP(now eventsim.Time, from inet.Addr, m inet.ICMPMessage) {
	if m.Type != inet.ICMPEchoReply || m.ID != p.opts.ID || from != p.target {
		return
	}
	if p.answered[m.Seq] {
		return // duplicate
	}
	sent, ok := p.sentAt[m.Seq]
	if !ok {
		return
	}
	p.answered[m.Seq] = true
	rtt := now.Sub(sent)
	p.report.Received++
	p.report.Echoes = append(p.report.Echoes, PingEcho{Seq: int(m.Seq), RTT: rtt})
	p.settle()
}

func (p *Pinger) expire(seq uint16) {
	if p.answered[seq] {
		return
	}
	p.answered[seq] = true
	p.report.Echoes = append(p.report.Echoes, PingEcho{Seq: int(seq), Lost: true})
	p.settle()
}

func (p *Pinger) settle() {
	p.pending--
	if p.pending > 0 || p.finished {
		return
	}
	p.finished = true
	var sum time.Duration
	n := 0
	for _, e := range p.report.Echoes {
		if e.Lost {
			continue
		}
		if n == 0 || e.RTT < p.report.MinRTT {
			p.report.MinRTT = e.RTT
		}
		if e.RTT > p.report.MaxRTT {
			p.report.MaxRTT = e.RTT
		}
		sum += e.RTT
		n++
	}
	if n > 0 {
		p.report.AvgRTT = sum / time.Duration(n)
	}
	if p.done != nil {
		p.done(&p.report)
	}
}

// Report returns the (possibly still filling) report.
func (p *Pinger) Report() *PingReport { return &p.report }

// RTTCDF builds the Figure 1 curve from a collection of reports: the
// empirical CDF of all successful RTTs across runs, in milliseconds.
func RTTCDF(reports []*PingReport) []stats.Point {
	var all []float64
	for _, r := range reports {
		all = append(all, r.RTTMillis()...)
	}
	return stats.CDF(all)
}
