package probe

import (
	"strings"
	"testing"
	"time"

	"turbulence/internal/inet"
	"turbulence/internal/netsim"
	"turbulence/internal/stats"
)

var (
	clientAddr = inet.MakeAddr(130, 215, 10, 5)
	serverAddr = inet.MakeAddr(207, 46, 1, 9)
)

func buildNet(t *testing.T, hops int, prop time.Duration, loss float64) (*netsim.Network, *netsim.Host) {
	t.Helper()
	n := netsim.New(7)
	c := n.AddHost(clientAddr)
	n.AddHost(serverAddr)
	specs := make([]netsim.HopSpec, hops)
	for i := range specs {
		specs[i] = netsim.HopSpec{
			Addr:      inet.MakeAddr(10, 0, 2, byte(i+1)),
			Bandwidth: 10e6,
			PropDelay: prop,
			Loss:      loss,
		}
	}
	n.ConnectDuplex(clientAddr, serverAddr, specs)
	return n, c
}

func TestPingMeasuresRTT(t *testing.T) {
	n, c := buildNet(t, 5, 4*time.Millisecond, 0)
	var got *PingReport
	StartPing(c, serverAddr, PingOptions{Count: 10, ID: 1}, func(r *PingReport) { got = r })
	n.Run(0)
	if got == nil {
		t.Fatal("ping never completed")
	}
	if got.Sent != 10 || got.Received != 10 {
		t.Fatalf("sent=%d received=%d", got.Sent, got.Received)
	}
	if got.LossRate() != 0 {
		t.Fatalf("loss=%v", got.LossRate())
	}
	// RTT floor: 2 x 5 hops x 4 ms = 40 ms, plus serialization.
	if got.MinRTT < 40*time.Millisecond || got.MinRTT > 50*time.Millisecond {
		t.Fatalf("MinRTT=%v", got.MinRTT)
	}
	if got.AvgRTT < got.MinRTT || got.MaxRTT < got.AvgRTT {
		t.Fatal("RTT ordering broken")
	}
	if len(got.RTTSeconds()) != 10 || len(got.RTTMillis()) != 10 {
		t.Fatal("RTT samples")
	}
	if !strings.Contains(got.String(), "10 received") {
		t.Fatalf("String=%q", got.String())
	}
}

func TestPingCountsLoss(t *testing.T) {
	n, c := buildNet(t, 2, time.Millisecond, 0.25) // heavy loss per hop
	var got *PingReport
	StartPing(c, serverAddr, PingOptions{Count: 40, Interval: 100 * time.Millisecond, ID: 2},
		func(r *PingReport) { got = r })
	n.Run(0)
	if got == nil {
		t.Fatal("ping never completed")
	}
	if got.Received == 0 || got.Received == got.Sent {
		t.Fatalf("expected partial loss, got %d/%d", got.Received, got.Sent)
	}
	lost := 0
	for _, e := range got.Echoes {
		if e.Lost {
			lost++
		}
	}
	if lost != got.Sent-got.Received {
		t.Fatalf("echo bookkeeping: lost=%d", lost)
	}
}

func TestPingUnreachableTarget(t *testing.T) {
	n := netsim.New(1)
	c := n.AddHost(clientAddr)
	var got *PingReport
	StartPing(c, serverAddr, PingOptions{Count: 3, ID: 3}, func(r *PingReport) { got = r })
	n.Run(0)
	if got == nil {
		t.Fatal("ping never settled")
	}
	if got.Received != 0 || got.LossRate() != 1 {
		t.Fatalf("unreachable: %+v", got)
	}
}

func TestConcurrentPingersDistinctIDs(t *testing.T) {
	n, c := buildNet(t, 3, 2*time.Millisecond, 0)
	a := StartPing(c, serverAddr, PingOptions{Count: 5, ID: 10}, nil)
	b := StartPing(c, serverAddr, PingOptions{Count: 5, ID: 11}, nil)
	n.Run(0)
	if a.Report().Received != 5 || b.Report().Received != 5 {
		t.Fatalf("concurrent pingers interfered: %d %d", a.Report().Received, b.Report().Received)
	}
}

func TestTracertDiscoversRoute(t *testing.T) {
	n, c := buildNet(t, 6, 3*time.Millisecond, 0)
	var got *TraceReport
	StartTrace(c, serverAddr, TraceOptions{ID: 4}, func(r *TraceReport) { got = r })
	n.Run(0)
	if got == nil {
		t.Fatal("trace never completed")
	}
	if !got.Reached {
		t.Fatal("destination not reached")
	}
	if got.HopCount() != 6 {
		t.Fatalf("HopCount=%d, want 6", got.HopCount())
	}
	// Rows: 6 routers + the destination.
	if len(got.Hops) != 7 {
		t.Fatalf("rows=%d", len(got.Hops))
	}
	for i := 0; i < 6; i++ {
		want := inet.MakeAddr(10, 0, 2, byte(i+1))
		if got.Hops[i].Addr != want {
			t.Fatalf("hop %d = %s, want %s", i+1, got.Hops[i].Addr, want)
		}
		if got.Hops[i].RTT <= 0 {
			t.Fatalf("hop %d rtt=%v", i+1, got.Hops[i].RTT)
		}
	}
	if got.Hops[6].Addr != serverAddr {
		t.Fatalf("final row=%s", got.Hops[6].Addr)
	}
	// RTTs grow with depth (monotone within jitter-free network).
	for i := 1; i < len(got.Hops); i++ {
		if got.Hops[i].RTT < got.Hops[i-1].RTT {
			t.Fatalf("RTT shrank at hop %d", i+1)
		}
	}
	if !strings.Contains(got.String(), "tracert") {
		t.Fatal("String")
	}
}

func TestTracertMaxTTL(t *testing.T) {
	n, c := buildNet(t, 10, time.Millisecond, 0)
	var got *TraceReport
	StartTrace(c, serverAddr, TraceOptions{MaxTTL: 4, ID: 5}, func(r *TraceReport) { got = r })
	n.Run(0)
	if got == nil {
		t.Fatal("trace never completed")
	}
	if got.Reached {
		t.Fatal("reached through MaxTTL 4 on a 10-hop path")
	}
	if got.HopCount() != 4 || len(got.Hops) != 4 {
		t.Fatalf("rows=%d", len(got.Hops))
	}
}

func TestTracertUnreachableTimesOut(t *testing.T) {
	n := netsim.New(1)
	c := n.AddHost(clientAddr)
	var got *TraceReport
	StartTrace(c, serverAddr, TraceOptions{MaxTTL: 3, Timeout: 100 * time.Millisecond, ID: 6},
		func(r *TraceReport) { got = r })
	n.Run(0)
	if got == nil {
		t.Fatal("trace never settled")
	}
	if got.Reached || len(got.Hops) != 3 {
		t.Fatalf("%+v", got)
	}
	for _, h := range got.Hops {
		if !h.Timeout {
			t.Fatal("phantom responder")
		}
	}
	if !strings.Contains(got.String(), "timed out") {
		t.Fatal("timeout rows missing from output")
	}
}

func TestPingAndTraceConcurrently(t *testing.T) {
	// The methodology runs ping and tracert around each experiment; they
	// must not cross-match each other's replies.
	n, c := buildNet(t, 4, 2*time.Millisecond, 0)
	p := StartPing(c, serverAddr, PingOptions{Count: 8, ID: 21}, nil)
	tr := StartTrace(c, serverAddr, TraceOptions{ID: 22}, nil)
	n.Run(0)
	if p.Report().Received != 8 {
		t.Fatalf("ping received=%d", p.Report().Received)
	}
	if !tr.Report().Reached || tr.Report().HopCount() != 4 {
		t.Fatalf("trace: %+v", tr.Report())
	}
}

func TestRTTAndHopsCDFs(t *testing.T) {
	n, c := buildNet(t, 5, 4*time.Millisecond, 0)
	p := StartPing(c, serverAddr, PingOptions{Count: 20, ID: 30}, nil)
	tr := StartTrace(c, serverAddr, TraceOptions{ID: 31}, nil)
	n.Run(0)
	rttCDF := RTTCDF([]*PingReport{p.Report()})
	if len(rttCDF) == 0 {
		t.Fatal("empty RTT CDF")
	}
	if last := rttCDF[len(rttCDF)-1]; last.Y != 1 {
		t.Fatalf("CDF mass=%v", last.Y)
	}
	// All RTTs above the 40 ms propagation floor.
	if rttCDF[0].X < 40 {
		t.Fatalf("min RTT %v ms below floor", rttCDF[0].X)
	}
	hopsCDF := HopsCDF([]*TraceReport{tr.Report()})
	if len(hopsCDF) != 1 || hopsCDF[0].X != 5 {
		t.Fatalf("hops CDF=%v", hopsCDF)
	}
	if stats.CDFAt(hopsCDF, 5) != 1 {
		t.Fatal("hops CDF mass")
	}
}

func TestQuotedEchoIDs(t *testing.T) {
	if _, _, ok := quotedEchoIDs(nil); ok {
		t.Fatal("empty quote accepted")
	}
	if _, _, ok := quotedEchoIDs(make([]byte, 10)); ok {
		t.Fatal("short quote accepted")
	}
	// Non-ICMP quote rejected.
	d, _ := inet.BuildUDP(
		inet.Endpoint{Addr: clientAddr, Port: 1},
		inet.Endpoint{Addr: serverAddr, Port: 2}, 1, make([]byte, 16))
	if _, _, ok := quotedEchoIDs(inet.QuoteDatagram(d)); ok {
		t.Fatal("UDP quote accepted as echo")
	}
	// Genuine echo quote round-trips the IDs.
	echo := inet.BuildICMP(clientAddr, serverAddr, 3, 1,
		inet.ICMPMessage{Type: inet.ICMPEchoRequest, ID: 77, Seq: 9, Payload: make([]byte, 32)})
	id, seq, ok := quotedEchoIDs(inet.QuoteDatagram(echo))
	if !ok || id != 77 || seq != 9 {
		t.Fatalf("quote ids: %d %d %t", id, seq, ok)
	}
}
