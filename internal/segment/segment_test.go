package segment

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	segs := []Segment{
		{FrameIndex: 0, Offset: 0, Length: 500, Key: true},
		{FrameIndex: 0, Offset: 500, Length: 300, Last: true},
		{FrameIndex: 1, Offset: 0, Length: 200, Last: true},
	}
	b := EncodeList(segs)
	if len(b) != ListWireSize(segs) {
		t.Fatalf("wire size %d, predicted %d", len(b), ListWireSize(segs))
	}
	got, err := DecodeList(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(segs) {
		t.Fatalf("count=%d", len(got))
	}
	for i := range segs {
		if got[i] != segs[i] {
			t.Fatalf("segment %d: %+v != %+v", i, got[i], segs[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeList(nil); err != ErrCorrupt {
		t.Fatalf("nil: %v", err)
	}
	if _, err := DecodeList([]byte{0, 5}); err != ErrCorrupt {
		t.Fatalf("short: %v", err)
	}
	b := EncodeList([]Segment{{FrameIndex: 1, Length: 100, Last: true}})
	if _, err := DecodeList(b[:len(b)-1]); err != ErrCorrupt {
		t.Fatalf("truncated payload: %v", err)
	}
	if _, err := DecodeList(append(b, 0)); err != ErrCorrupt {
		t.Fatalf("trailing garbage: %v", err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var segs []Segment
		for i, v := range raw {
			if i >= 20 {
				break
			}
			segs = append(segs, Segment{
				FrameIndex: uint32(i),
				Offset:     v % 1000,
				Length:     v%1400 + 1,
				Key:        v%3 == 0,
				Last:       v%2 == 0,
			})
		}
		got, err := DecodeList(EncodeList(segs))
		if err != nil {
			return false
		}
		if len(got) != len(segs) {
			return false
		}
		for i := range segs {
			if got[i] != segs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCutterWalksFrames(t *testing.T) {
	sizes := []int{1000, 500, 1500}
	keys := []bool{true, false, false}
	c := NewCutter(sizes, keys)
	if c.BytesRemaining() != 3000 {
		t.Fatalf("remaining=%d", c.BytesRemaining())
	}
	// Budget 800: first segment cuts frame 0 partially.
	segs := c.Next(800)
	if len(segs) != 1 || segs[0].Length != 800 || segs[0].Last || !segs[0].Key {
		t.Fatalf("first cut: %+v", segs)
	}
	// Budget 800: finishes frame 0 (200), all of frame 1 (500), then 100 of
	// frame 2 — the cutter fills the whole budget.
	segs = c.Next(800)
	if len(segs) != 3 {
		t.Fatalf("second cut: %+v", segs)
	}
	if segs[0].FrameIndex != 0 || segs[0].Offset != 800 || segs[0].Length != 200 || !segs[0].Last {
		t.Fatalf("finish frame 0: %+v", segs[0])
	}
	if segs[1].FrameIndex != 1 || segs[1].Length != 500 || !segs[1].Last || segs[1].Key {
		t.Fatalf("frame 1: %+v", segs[1])
	}
	if segs[2].FrameIndex != 2 || segs[2].Length != 100 || segs[2].Last {
		t.Fatalf("frame 2 partial: %+v", segs[2])
	}
	if c.FramesCut() != 2 {
		t.Fatalf("FramesCut=%d", c.FramesCut())
	}
	// Drain the remaining 1400 bytes of frame 2.
	segs = c.Next(10000)
	if len(segs) != 1 || segs[0].Length != 1400 || !segs[0].Last {
		t.Fatalf("drain: %+v", segs)
	}
	if !c.Done() || c.BytesRemaining() != 0 {
		t.Fatal("not done after drain")
	}
	if c.Next(100) != nil {
		t.Fatal("cut past end")
	}
}

func TestCutterZeroBudget(t *testing.T) {
	c := NewCutter([]int{100}, nil)
	if c.Next(0) != nil {
		t.Fatal("zero budget produced segments")
	}
}

func TestCutterMismatchedKeysPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCutter([]int{1, 2}, []bool{true})
}

func TestAssemblerInOrder(t *testing.T) {
	a := NewAssembler()
	if a.Add(Segment{FrameIndex: 0, Offset: 0, Length: 500}) {
		t.Fatal("incomplete frame reported complete")
	}
	if !a.Partial(0) || a.Complete(0) {
		t.Fatal("partial state")
	}
	if !a.Add(Segment{FrameIndex: 0, Offset: 500, Length: 500, Last: true}) {
		t.Fatal("completion not reported")
	}
	if !a.Complete(0) || a.Partial(0) {
		t.Fatal("complete state")
	}
	if a.CompletedFrames != 1 {
		t.Fatalf("CompletedFrames=%d", a.CompletedFrames)
	}
}

func TestAssemblerOutOfOrderAndDuplicates(t *testing.T) {
	a := NewAssembler()
	a.Add(Segment{FrameIndex: 3, Offset: 600, Length: 400, Last: true})
	a.Add(Segment{FrameIndex: 3, Offset: 600, Length: 400, Last: true}) // dup
	if a.Complete(3) {
		t.Fatal("complete with a gap")
	}
	a.Add(Segment{FrameIndex: 3, Offset: 0, Length: 600})
	if !a.Complete(3) {
		t.Fatal("out-of-order completion failed")
	}
	if a.CompletedFrames != 1 {
		t.Fatalf("duplicate inflated count: %d", a.CompletedFrames)
	}
	// Adding to a complete frame is a no-op.
	if a.Add(Segment{FrameIndex: 3, Offset: 0, Length: 600}) {
		t.Fatal("re-completed")
	}
}

func TestAssemblerGapNeverCompletes(t *testing.T) {
	a := NewAssembler()
	a.Add(Segment{FrameIndex: 1, Offset: 0, Length: 100})
	a.Add(Segment{FrameIndex: 1, Offset: 300, Length: 100, Last: true})
	if a.Complete(1) {
		t.Fatal("hole ignored")
	}
	// Filling the hole completes.
	a.Add(Segment{FrameIndex: 1, Offset: 100, Length: 200})
	if !a.Complete(1) {
		t.Fatal("filled hole not detected")
	}
}

func TestAssemblerDrop(t *testing.T) {
	a := NewAssembler()
	a.Add(Segment{FrameIndex: 5, Offset: 0, Length: 10})
	a.Drop(5)
	if a.Partial(5) {
		t.Fatal("dropped frame still tracked")
	}
	if a.String() == "" {
		t.Fatal("String")
	}
}

// Property: cutting random frame sizes with random budgets and reassembling
// every segment completes every frame.
func TestCutterAssemblerRoundTripProperty(t *testing.T) {
	f := func(rawSizes []uint16, budgetSeed uint8) bool {
		var sizes []int
		for i, v := range rawSizes {
			if i >= 30 {
				break
			}
			sizes = append(sizes, int(v%5000)+1)
		}
		if len(sizes) == 0 {
			return true
		}
		budget := int(budgetSeed)%1400 + 64
		c := NewCutter(sizes, nil)
		a := NewAssembler()
		for !c.Done() {
			for _, s := range c.Next(budget) {
				a.Add(s)
			}
		}
		if c.FramesCut() != len(sizes) {
			return false
		}
		for i := range sizes {
			if !a.Complete(uint32(i)) {
				return false
			}
		}
		return a.CompletedFrames == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode through the wire preserves cutter output.
func TestCutterWireProperty(t *testing.T) {
	f := func(n uint8) bool {
		sizes := make([]int, int(n)%10+1)
		for i := range sizes {
			sizes[i] = (i+1)*700 + 13
		}
		c := NewCutter(sizes, nil)
		a := NewAssembler()
		for !c.Done() {
			segs := c.Next(1200)
			decoded, err := DecodeList(EncodeList(segs))
			if err != nil {
				return false
			}
			for _, s := range decoded {
				a.Add(s)
			}
		}
		return a.CompletedFrames == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
