package segment

import (
	"testing"
)

func TestCutterFilterSkipsFrames(t *testing.T) {
	sizes := []int{100, 200, 300, 400}
	keys := []bool{true, false, true, false}
	c := NewCutter(sizes, keys)
	// Admit keyframes only.
	c.SetFilter(func(idx int, key bool) bool { return key })
	var got []uint32
	for !c.Done() {
		for _, s := range c.Next(1000) {
			got = append(got, s.FrameIndex)
		}
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("filtered frames: %v", got)
	}
	if c.SkippedFrames != 2 {
		t.Fatalf("SkippedFrames=%d", c.SkippedFrames)
	}
}

func TestCutterFilterNeverSplitsMidFrame(t *testing.T) {
	sizes := []int{1000, 1000}
	c := NewCutter(sizes, nil)
	// Start cutting frame 0, then install a filter that rejects it; the
	// already-started frame must still complete.
	segs := c.Next(300)
	if len(segs) != 1 || segs[0].FrameIndex != 0 {
		t.Fatalf("first cut: %v", segs)
	}
	c.SetFilter(func(idx int, key bool) bool { return idx != 0 })
	var rest []Segment
	for !c.Done() {
		rest = append(rest, c.Next(400)...)
	}
	// Frame 0's remaining 700 bytes must appear with a Last flag.
	var frame0Bytes int
	sawLast0 := false
	for _, s := range rest {
		if s.FrameIndex == 0 {
			frame0Bytes += int(s.Length)
			if s.Last {
				sawLast0 = true
			}
		}
	}
	if frame0Bytes != 700 || !sawLast0 {
		t.Fatalf("mid-frame filter corrupted frame 0: bytes=%d last=%t", frame0Bytes, sawLast0)
	}
}

func TestCutterFilterClear(t *testing.T) {
	sizes := []int{100, 100, 100}
	c := NewCutter(sizes, nil)
	c.SetFilter(func(int, bool) bool { return false })
	if !c.Done() {
		t.Fatal("all-reject filter should exhaust the cutter")
	}
	// A fresh cutter with the filter cleared emits everything.
	c2 := NewCutter(sizes, nil)
	c2.SetFilter(func(int, bool) bool { return false })
	c2.SetFilter(nil)
	total := 0
	for !c2.Done() {
		for _, s := range c2.Next(1000) {
			total += int(s.Length)
		}
	}
	if total != 300 {
		t.Fatalf("cleared filter total=%d", total)
	}
}

func TestCutterFilteredAssembly(t *testing.T) {
	// Filtered streams still reassemble cleanly: admitted frames complete,
	// skipped frames never appear.
	sizes := make([]int, 30)
	keys := make([]bool, 30)
	for i := range sizes {
		sizes[i] = 500 + i*13
		keys[i] = i%10 == 0
	}
	c := NewCutter(sizes, keys)
	c.SetFilter(func(idx int, key bool) bool { return key || idx%2 == 0 })
	a := NewAssembler()
	for !c.Done() {
		for _, s := range c.Next(700) {
			a.Add(s)
		}
	}
	for i := range sizes {
		admitted := keys[i] || i%2 == 0
		if a.Complete(uint32(i)) != admitted {
			t.Fatalf("frame %d completeness=%t, admitted=%t", i, a.Complete(uint32(i)), admitted)
		}
	}
}
