// Package segment defines the application-layer framing shared by the two
// simulated streaming stacks: encoded video frames are cut into segments,
// segments are packed into protocol data packets (large ASF-style data
// units for Windows Media, sub-MTU variable packets for Real), and the
// receiving player reassembles segments back into frames to drive playback
// and the frame-rate statistics the trackers record.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Segment is a contiguous byte range of one encoded frame.
type Segment struct {
	FrameIndex uint32
	Offset     uint16 // byte offset within the frame
	Length     uint16 // bytes carried (header does not carry the bytes themselves; packets carry opaque payload)
	Key        bool   // frame is a keyframe
	Last       bool   // segment ends the frame (Offset+Length == frame size)
}

// headerLen is the wire size of one segment descriptor.
const headerLen = 10

// Flag bits.
const (
	flagKey  = 0x01
	flagLast = 0x02
)

// ErrCorrupt reports an undecodable segment list.
var ErrCorrupt = errors.New("segment: corrupt segment list")

// EncodeList serialises segment descriptors followed by a synthetic payload
// of the summed segment lengths. The payload bytes are generated (not real
// video), but their count is exact, which is all the network cares about.
//
//	list := count(u16) descriptor*count padding[sum(Length)]
func EncodeList(segs []Segment) []byte {
	return AppendList(nil, segs)
}

// AppendList is EncodeList appending into dst, returning the extended
// slice. The encoding is copied onward by the UDP layer, so senders on a
// per-packet cadence reuse one scratch buffer (AppendList(scratch[:0], …))
// and keep the encode step allocation-free.
func AppendList(dst []byte, segs []Segment) []byte {
	total := 0
	for _, s := range segs {
		total += int(s.Length)
	}
	base := len(dst)
	dst = append(dst, make([]byte, 2+headerLen*len(segs)+total)...)
	out := dst[base:]
	binary.BigEndian.PutUint16(out[0:], uint16(len(segs)))
	off := 2
	for _, s := range segs {
		binary.BigEndian.PutUint32(out[off:], s.FrameIndex)
		binary.BigEndian.PutUint16(out[off+4:], s.Offset)
		binary.BigEndian.PutUint16(out[off+6:], s.Length)
		var flags byte
		if s.Key {
			flags |= flagKey
		}
		if s.Last {
			flags |= flagLast
		}
		out[off+8] = flags
		out[off+9] = 0 // reserved
		off += headerLen
	}
	// Deterministic filler so traces are reproducible byte-for-byte.
	for i := off; i < len(out); i++ {
		out[i] = byte(i * 131)
	}
	return dst
}

// DecodeList parses an encoded segment list, returning the descriptors.
func DecodeList(b []byte) ([]Segment, error) {
	return DecodeListInto(nil, b)
}

// DecodeListInto is DecodeList appending into dst — receivers on a
// per-packet cadence decode into one reused scratch slice
// (DecodeListInto(scratch[:0], b)) and stay allocation-free.
func DecodeListInto(dst []Segment, b []byte) ([]Segment, error) {
	if len(b) < 2 {
		return nil, ErrCorrupt
	}
	n := int(binary.BigEndian.Uint16(b[0:]))
	off := 2
	segs := dst
	total := 0
	for i := 0; i < n; i++ {
		if off+headerLen > len(b) {
			return nil, ErrCorrupt
		}
		s := Segment{
			FrameIndex: binary.BigEndian.Uint32(b[off:]),
			Offset:     binary.BigEndian.Uint16(b[off+4:]),
			Length:     binary.BigEndian.Uint16(b[off+6:]),
			Key:        b[off+8]&flagKey != 0,
			Last:       b[off+8]&flagLast != 0,
		}
		segs = append(segs, s)
		total += int(s.Length)
		off += headerLen
	}
	if off+total != len(b) {
		return nil, ErrCorrupt
	}
	return segs, nil
}

// ListWireSize predicts the encoded size of a list without building it.
func ListWireSize(segs []Segment) int {
	total := 2 + headerLen*len(segs)
	for _, s := range segs {
		total += int(s.Length)
	}
	return total
}

// Cutter slices a sequence of frame sizes into segments on demand. It is
// the server-side packetiser core: both stacks pull segments up to a byte
// budget per outgoing packet.
type Cutter struct {
	sizes []int // frame sizes in bytes
	keys  []bool
	frame int // current frame index
	off   int // offset within current frame
	// filter, when set, decides whether each frame is emitted at all;
	// media-scaling servers install one to thin the stream under loss.
	// It is consulted only at frame boundaries, never mid-frame.
	filter func(frameIndex int, key bool) bool
	// SkippedFrames counts frames the filter suppressed.
	SkippedFrames int
	// scratch backs the slice Next returns, reused across calls.
	scratch []Segment
}

// SetFilter installs (or clears, with nil) the frame-admission filter.
// Frames already partially emitted are always finished.
func (c *Cutter) SetFilter(f func(frameIndex int, key bool) bool) { c.filter = f }

// skipFiltered advances past frames the filter rejects. Only applies at
// frame boundaries (off == 0).
func (c *Cutter) skipFiltered() {
	if c.filter == nil || c.off != 0 {
		return
	}
	for c.frame < len(c.sizes) {
		key := false
		if c.keys != nil {
			key = c.keys[c.frame]
		}
		if c.filter(c.frame, key) {
			return
		}
		c.frame++
		c.SkippedFrames++
	}
}

// NewCutter builds a cutter over the clip's frame sizes and key flags.
func NewCutter(sizes []int, keys []bool) *Cutter {
	if keys != nil && len(keys) != len(sizes) {
		panic("segment: sizes/keys length mismatch")
	}
	return &Cutter{sizes: sizes, keys: keys}
}

// Done reports whether all frames have been cut.
func (c *Cutter) Done() bool {
	c.skipFiltered()
	return c.frame >= len(c.sizes)
}

// FramesCut reports how many frames have been fully emitted.
func (c *Cutter) FramesCut() int { return c.frame }

// BytesRemaining reports the bytes not yet emitted.
func (c *Cutter) BytesRemaining() int {
	if c.Done() {
		return 0
	}
	total := c.sizes[c.frame] - c.off
	for i := c.frame + 1; i < len(c.sizes); i++ {
		total += c.sizes[i]
	}
	return total
}

// Next cuts up to budget payload bytes into segments, advancing through
// frames (and past filtered-out frames). It returns fewer bytes only when
// the clip is exhausted. A zero budget returns nil. The returned slice is
// reused by the following Next call; callers that keep segments across
// calls must copy them (appending the elements somewhere does).
func (c *Cutter) Next(budget int) []Segment {
	out := c.scratch[:0]
	for budget > 0 && !c.Done() {
		c.skipFiltered()
		if c.frame >= len(c.sizes) {
			break
		}
		remain := c.sizes[c.frame] - c.off
		take := remain
		if take > budget {
			take = budget
		}
		if take > 0xFFFF {
			take = 0xFFFF
		}
		key := false
		if c.keys != nil {
			key = c.keys[c.frame]
		}
		out = append(out, Segment{
			FrameIndex: uint32(c.frame),
			Offset:     uint16(c.off),
			Length:     uint16(take),
			Key:        key,
			Last:       c.off+take == c.sizes[c.frame],
		})
		c.off += take
		budget -= take
		if c.off == c.sizes[c.frame] {
			c.frame++
			c.off = 0
		}
	}
	c.scratch = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// Assembler tracks frame completeness on the receiving side: a frame is
// complete once every byte from offset 0 through its Last segment has
// arrived (segments may arrive out of order; duplicates are tolerated).
// Frame state dropped by the player recycles onto a free list, so the
// steady playout loop (add segments, check, drop) does not allocate per
// frame.
type Assembler struct {
	frames map[uint32]*frameState
	free   []*frameState
	// CompletedFrames counts frames fully received.
	CompletedFrames int
}

// segRun is one received (offset, length) run; a frame rarely holds more
// than a handful, so a small slice beats a map on both allocation and
// scan cost.
type segRun struct {
	off, length uint16
}

type frameState struct {
	runs     []segRun // received runs, deduped by offset (max length wins)
	expected int      // frame size, known once the Last segment arrives
	received int      // distinct bytes received
	complete bool
	key      bool
}

// asmPool recycles whole assemblers across player lifetimes: one playout
// ramps hundreds of in-flight frames through the map and the free list,
// and reusing that grown storage is what keeps a reused-testbed run from
// paying the ramp again. sync.Pool because sweep workers acquire and
// release concurrently.
var asmPool = sync.Pool{New: func() any {
	return &Assembler{frames: make(map[uint32]*frameState)}
}}

// NewAssembler returns an empty assembler, reusing a released one's
// storage when available.
func NewAssembler() *Assembler {
	return asmPool.Get().(*Assembler)
}

// Reset rewinds the assembler to its empty state, keeping the frame map
// and free-list storage.
func (a *Assembler) Reset() {
	for k, fs := range a.frames {
		a.free = append(a.free, fs)
		delete(a.frames, k)
	}
	a.CompletedFrames = 0
}

// Release resets the assembler and returns it to the package pool. Call
// only once nothing can touch the assembler again — players release via
// their owners after the simulation has fully drained.
func (a *Assembler) Release() {
	a.Reset()
	asmPool.Put(a)
}

// Add records one received segment and reports whether it completed its
// frame.
func (a *Assembler) Add(s Segment) bool {
	fs := a.frames[s.FrameIndex]
	if fs == nil {
		if n := len(a.free); n > 0 {
			fs = a.free[n-1]
			a.free = a.free[:n-1]
			fs.runs = fs.runs[:0]
			fs.expected, fs.received = 0, 0
			fs.complete, fs.key = false, false
		} else {
			fs = &frameState{}
		}
		a.frames[s.FrameIndex] = fs
	}
	if fs.complete {
		return false
	}
	if s.Key {
		fs.key = true
	}
	dup := false
	for i := range fs.runs {
		if fs.runs[i].off == s.Offset {
			dup = true
			if fs.runs[i].length < s.Length {
				fs.received += int(s.Length) - int(fs.runs[i].length)
				fs.runs[i].length = s.Length
			}
			break
		}
	}
	if !dup {
		fs.runs = append(fs.runs, segRun{off: s.Offset, length: s.Length})
		fs.received += int(s.Length)
	}
	if s.Last {
		fs.expected = int(s.Offset) + int(s.Length)
	}
	if fs.expected > 0 && fs.received >= fs.expected && contiguous(fs.runs, fs.expected) {
		fs.complete = true
		a.CompletedFrames++
		return true
	}
	return false
}

// Complete reports whether the frame has fully arrived.
func (a *Assembler) Complete(frameIndex uint32) bool {
	fs := a.frames[frameIndex]
	return fs != nil && fs.complete
}

// Partial reports whether some but not all of the frame arrived.
func (a *Assembler) Partial(frameIndex uint32) bool {
	fs := a.frames[frameIndex]
	return fs != nil && !fs.complete && fs.received > 0
}

// Drop forgets a frame's state (players discard frames past their playout
// deadline to bound memory); the state recycles for a future frame.
func (a *Assembler) Drop(frameIndex uint32) {
	if fs := a.frames[frameIndex]; fs != nil {
		a.free = append(a.free, fs)
		delete(a.frames, frameIndex)
	}
}

// contiguous verifies the received runs cover [0, expected) without gaps.
func contiguous(runs []segRun, expected int) bool {
	next := 0
	for next < expected {
		l := uint16(0)
		for i := range runs {
			if int(runs[i].off) == next {
				l = runs[i].length
				break
			}
		}
		if l == 0 {
			return false
		}
		next += int(l)
	}
	return true
}

// String describes the assembler for diagnostics.
func (a *Assembler) String() string {
	return fmt.Sprintf("assembler: %d frames tracked, %d complete", len(a.frames), a.CompletedFrames)
}
