// Package inet implements the wire-format substrate of the reproduction:
// byte-accurate IPv4 and UDP header codecs, internet checksums, and RFC 791
// fragmentation and reassembly.
//
// The paper's most network-visible finding is that Windows MediaPlayer
// servers hand application frames larger than the path MTU to the OS, which
// then emits trains of IP fragments (one 1514-byte wire packet per MTU of
// payload plus a remainder), while RealServer packetises below the MTU and
// never fragments. To make those findings *emergent* rather than painted
// on, the simulated hosts serialise real IPv4/UDP datagrams and the
// simulated IP layer fragments them exactly as RFC 791 prescribes.
package inet

import (
	"fmt"
)

// Addr is an IPv4 address. It is a value type usable as a map key, in the
// spirit of gopacket's fixed-size Endpoint.
type Addr [4]byte

// MakeAddr assembles an address from four octets.
func MakeAddr(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether the address is the unspecified 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	var fields [4]int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &fields[0], &fields[1], &fields[2], &fields[3])
	if err != nil || n != 4 {
		return a, fmt.Errorf("inet: bad address %q", s)
	}
	for i, f := range fields {
		if f < 0 || f > 255 {
			return a, fmt.Errorf("inet: octet %d out of range in %q", f, s)
		}
		a[i] = byte(f)
	}
	return a, nil
}

// Port is a UDP port number.
type Port uint16

// Endpoint is an (address, port) pair.
type Endpoint struct {
	Addr Addr
	Port Port
}

// String renders "a.b.c.d:port".
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Flow identifies a unidirectional UDP flow by its endpoints, in the spirit
// of gopacket's Flow. It is comparable and usable as a map key, which the
// capture analysis uses to split traces per player.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders "src -> dst".
func (f Flow) String() string { return fmt.Sprintf("%s -> %s", f.Src, f.Dst) }

// Well-known ports used across the reproduction. The 2002 players used
// server-chosen UDP data ports; we pin conventional values so traces are
// self-describing.
const (
	PortMMSData  Port = 1755 // Windows Media (MMS) data channel
	PortRDTData  Port = 6970 // RealNetworks RDT data channel
	PortMMSCtl   Port = 1756 // simulated MMS control channel
	PortRTSPCtl  Port = 554  // RTSP control channel
	PortICMPEcho Port = 7    // echo-style probe port used by internal/probe
)
