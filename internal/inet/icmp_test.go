package inet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestICMPRoundTrip(t *testing.T) {
	m := ICMPMessage{Type: ICMPEchoRequest, ID: 77, Seq: 3, Payload: []byte("probe")}
	b := MarshalICMP(m)
	got, err := ParseICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.ID != m.ID || got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestICMPChecksum(t *testing.T) {
	b := MarshalICMP(ICMPMessage{Type: ICMPEchoReply, ID: 1, Seq: 2})
	b[4] ^= 0x10
	if _, err := ParseICMP(b); err != ErrBadChecksum {
		t.Fatalf("corruption undetected: %v", err)
	}
	if _, err := ParseICMP(make([]byte, 4)); err != ErrShortHeader {
		t.Fatalf("short: %v", err)
	}
}

func TestBuildICMPDatagram(t *testing.T) {
	src, dst := MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 0, 2)
	d := BuildICMP(src, dst, 30, 9, ICMPMessage{Type: ICMPEchoRequest, ID: 5, Seq: 1})
	if d.Header.Protocol != ProtoICMP || d.Header.TTL != 30 {
		t.Fatalf("header: %+v", d.Header)
	}
	m, err := ParseICMP(d.Payload)
	if err != nil || m.ID != 5 {
		t.Fatalf("payload: %v %v", m, err)
	}
	// Marshal/parse the whole datagram too.
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDatagram(b); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteDatagram(t *testing.T) {
	d := buildTestUDP(t, 100)
	q := QuoteDatagram(d)
	if len(q) != IPv4HeaderLen+8 {
		t.Fatalf("quote len=%d", len(q))
	}
	// The quote begins with a parseable IP header whose ID matches; pad the
	// buffer so ParseIPv4's TotalLen consistency check passes.
	padded := append(append([]byte(nil), q...), make([]byte, 4096)...)
	h, _, err := ParseIPv4(padded)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != d.Header.ID {
		t.Fatalf("quoted ID=%#x, want %#x", h.ID, d.Header.ID)
	}
	tiny := &Datagram{Header: IPv4Header{Protocol: ProtoICMP, TotalLen: IPv4HeaderLen}}
	if q := QuoteDatagram(tiny); len(q) != IPv4HeaderLen {
		t.Fatalf("tiny quote len=%d", len(q))
	}
}

func TestICMPString(t *testing.T) {
	if (ICMPMessage{Type: ICMPEchoRequest}).String() == "" {
		t.Fatal("empty string")
	}
	if (ICMPMessage{Type: 99}).String() == "" {
		t.Fatal("unknown type string")
	}
}

func TestICMPRoundTripProperty(t *testing.T) {
	f := func(typ, code byte, id, seq uint16, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		m := ICMPMessage{Type: typ, Code: code, ID: id, Seq: seq, Payload: payload}
		got, err := ParseICMP(MarshalICMP(m))
		if err != nil {
			return false
		}
		return got.Type == typ && got.Code == code && got.ID == id && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
