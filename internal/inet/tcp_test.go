package inet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTCPRoundTrip(t *testing.T) {
	h := TCPHeader{Seq: 1000, Ack: 2000, Flags: TCPAck | TCPPsh, Window: 65535}
	payload := []byte("segment data")
	d, err := BuildTCP(srcEP, dstEP, 42, h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if d.Header.Protocol != ProtoTCP {
		t.Fatal("protocol")
	}
	got, data, err := ParseTCP(d.Header.Src, d.Header.Dst, d.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1000 || got.Ack != 2000 || got.Window != 65535 {
		t.Fatalf("header: %+v", got)
	}
	if got.SrcPort != srcEP.Port || got.DstPort != dstEP.Port {
		t.Fatal("ports")
	}
	if !got.HasFlag(TCPAck) || !got.HasFlag(TCPPsh) || got.HasFlag(TCPSyn) {
		t.Fatal("flags")
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("payload")
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	seg, _ := MarshalTCP(srcEP.Addr, dstEP.Addr, TCPHeader{SrcPort: 1, DstPort: 2, Seq: 7}, []byte("x"))
	seg[4] ^= 0xFF
	if _, _, err := ParseTCP(srcEP.Addr, dstEP.Addr, seg); err != ErrBadChecksum {
		t.Fatalf("corruption: %v", err)
	}
	// Different address in the pseudo-header fails too.
	seg2, _ := MarshalTCP(srcEP.Addr, dstEP.Addr, TCPHeader{SrcPort: 1, DstPort: 2}, nil)
	if _, _, err := ParseTCP(MakeAddr(9, 9, 9, 9), dstEP.Addr, seg2); err != ErrBadChecksum {
		t.Fatalf("pseudo-header: %v", err)
	}
}

func TestTCPParseErrors(t *testing.T) {
	if _, _, err := ParseTCP(srcEP.Addr, dstEP.Addr, make([]byte, 10)); err != ErrShortHeader {
		t.Fatalf("short: %v", err)
	}
	seg, _ := MarshalTCP(srcEP.Addr, dstEP.Addr, TCPHeader{}, nil)
	seg[12] = 6 << 4 // claim options
	if _, _, err := ParseTCP(srcEP.Addr, dstEP.Addr, seg); err == nil {
		t.Fatal("options accepted")
	}
	if _, err := MarshalTCP(srcEP.Addr, dstEP.Addr, TCPHeader{}, make([]byte, 0x10000)); err != ErrPayloadRange {
		t.Fatal("oversize")
	}
}

func TestTCPString(t *testing.T) {
	h := TCPHeader{SrcPort: 80, DstPort: 1000, Flags: TCPSyn | TCPAck, Seq: 5}
	s := h.String()
	if s == "" || !bytes.Contains([]byte(s), []byte("SA")) {
		t.Fatalf("String=%q", s)
	}
}

func TestTCPRoundTripProperty(t *testing.T) {
	f := func(seq, ack uint32, flags byte, win uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := TCPHeader{Seq: seq, Ack: ack, Flags: flags, Window: win}
		seg, err := MarshalTCP(srcEP.Addr, dstEP.Addr, h, payload)
		if err != nil {
			return false
		}
		got, data, err := ParseTCP(srcEP.Addr, dstEP.Addr, seg)
		if err != nil {
			return false
		}
		return got.Seq == seq && got.Ack == ack && got.Flags == flags &&
			got.Window == win && bytes.Equal(data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
