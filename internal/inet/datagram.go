package inet

import (
	"fmt"
)

// Datagram is a fully-formed IPv4 packet: header plus IP payload bytes. It
// is the unit handed to the simulated network. Wire() adds the Ethernet
// framing overhead that a sniffer (and the paper's figures) would observe.
type Datagram struct {
	Header  IPv4Header
	Payload []byte // IP payload (e.g. UDP header + application data)

	// owner is the pooled wire buffer backing Payload, nil for datagrams
	// built outside a pool. Fragments of one datagram share the owner;
	// see WireBuf.
	owner *WireBuf
}

// Len returns the IP-level length (header + payload).
func (d *Datagram) Len() int { return IPv4HeaderLen + len(d.Payload) }

// WireLen returns the on-the-wire length including Ethernet framing; a full
// 1500-byte IP packet reads 1514 here, matching the paper's traces.
func (d *Datagram) WireLen() int { return d.Len() + EthernetOverhead }

// Marshal serialises the datagram to IP wire bytes (header checksum
// included, no Ethernet framing).
func (d *Datagram) Marshal() ([]byte, error) {
	return d.AppendMarshal(nil)
}

// AppendMarshal serialises the datagram to IP wire bytes appended to dst,
// returning the extended slice. Trace writers reuse one scratch buffer
// across records this way.
func (d *Datagram) AppendMarshal(dst []byte) ([]byte, error) {
	if d.Len() > 0xFFFF {
		return dst, ErrPayloadRange
	}
	d.Header.TotalLen = uint16(d.Len())
	n := len(dst)
	dst = append(dst, make([]byte, IPv4HeaderLen)...)
	d.Header.MarshalTo(dst[n:])
	return append(dst, d.Payload...), nil
}

// ParseDatagram decodes IP wire bytes into a Datagram. The payload is
// copied so the caller may reuse b.
func ParseDatagram(b []byte) (*Datagram, error) {
	h, payload, err := ParseIPv4(b)
	if err != nil {
		return nil, err
	}
	return &Datagram{Header: h, Payload: append([]byte(nil), payload...)}, nil
}

// String summarises the datagram.
func (d *Datagram) String() string {
	return fmt.Sprintf("%s payload=%dB", d.Header.String(), len(d.Payload))
}

// DefaultTTL is the initial TTL hosts assign, matching Windows 2000's 128.
const DefaultTTL = 128

// BuildUDP assembles a complete UDP/IPv4 datagram carrying payload from src
// to dst. id is the IP identification value (the sending host's counter).
func BuildUDP(src, dst Endpoint, id uint16, payload []byte) (*Datagram, error) {
	udp, err := MarshalUDP(src, dst, payload)
	if err != nil {
		return nil, err
	}
	d := &Datagram{
		Header: IPv4Header{
			ID:       id,
			TTL:      DefaultTTL,
			Protocol: ProtoUDP,
			Src:      src.Addr,
			Dst:      dst.Addr,
		},
		Payload: udp,
	}
	if d.Len() > 0xFFFF {
		return nil, ErrPayloadRange
	}
	d.Header.TotalLen = uint16(d.Len())
	return d, nil
}

// UDP extracts the UDP header and application payload from the datagram.
// It fails on fragments (offset > 0 has no UDP header) — reassemble first.
func (d *Datagram) UDP() (UDPHeader, []byte, error) {
	if d.Header.Protocol != ProtoUDP {
		return UDPHeader{}, nil, fmt.Errorf("inet: protocol %d is not UDP", d.Header.Protocol)
	}
	if d.Header.FragOff != 0 {
		return UDPHeader{}, nil, ErrBadFragment
	}
	return ParseUDP(d.Header.Src, d.Header.Dst, d.Payload)
}

// FlowOf returns the transport flow of the datagram, usable only on
// unfragmented datagrams or first fragments (where the transport header is
// present). For non-first fragments it returns ok=false; the capture
// analysis associates those with their train via the IP ID. Both UDP and
// TCP carry their ports in the first four transport bytes.
func (d *Datagram) FlowOf() (Flow, bool) {
	if d.Header.Protocol != ProtoUDP && d.Header.Protocol != ProtoTCP {
		return Flow{}, false
	}
	if d.Header.FragOff != 0 || len(d.Payload) < UDPHeaderLen {
		return Flow{}, false
	}
	// Ports sit in the first 4 bytes of both transport headers; no
	// checksum needed just to identify the flow.
	sp := Port(uint16(d.Payload[0])<<8 | uint16(d.Payload[1]))
	dp := Port(uint16(d.Payload[2])<<8 | uint16(d.Payload[3]))
	return Flow{
		Src: Endpoint{Addr: d.Header.Src, Port: sp},
		Dst: Endpoint{Addr: d.Header.Dst, Port: dp},
	}, true
}

// Clone returns a deep copy of the datagram; the network layer clones before
// mutating TTLs so captured packets stay immutable.
func (d *Datagram) Clone() *Datagram {
	return &Datagram{Header: d.Header, Payload: append([]byte(nil), d.Payload...)}
}
