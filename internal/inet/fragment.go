package inet

import (
	"fmt"
)

// Fragment splits a datagram into MTU-sized fragments per RFC 791. The
// first fragment carries the UDP header (so its ports remain parseable);
// every fragment shares the original IP ID; offsets are in 8-byte units;
// all fragments except the last have the MoreFragments flag set.
//
// A datagram that already fits within the MTU is returned unchanged (as a
// single-element slice, not copied). A datagram with DontFragment set that
// exceeds the MTU returns an error — the simulated hosts never set DF on
// media traffic, matching 2002 behaviour where PMTUD was commonly off for
// UDP streaming.
func Fragment(d *Datagram, mtu int) ([]*Datagram, error) {
	return AppendFragments(nil, d, mtu)
}

// AppendFragments is Fragment appending to dst, so per-packet senders can
// reuse one scratch slice across sends instead of allocating a train slice
// per datagram. Fragment structs come from the parent's buffer pool when it
// has one.
func AppendFragments(dst []*Datagram, d *Datagram, mtu int) ([]*Datagram, error) {
	if mtu < IPv4HeaderLen+8 {
		return dst, fmt.Errorf("inet: mtu %d too small to fragment", mtu)
	}
	if d.Len() <= mtu {
		return append(dst, d), nil
	}
	if d.Header.DontFragment() {
		return dst, fmt.Errorf("inet: datagram %d bytes exceeds mtu %d with DF set", d.Len(), mtu)
	}
	var pool *BufPool
	if d.owner != nil {
		pool = d.owner.pool
	}
	// Payload bytes per fragment must be a multiple of 8 (offset units).
	chunk := (mtu - IPv4HeaderLen) &^ 7
	for off := 0; off < len(d.Payload); off += chunk {
		end := off + chunk
		last := false
		if end >= len(d.Payload) {
			end = len(d.Payload)
			last = true
		}
		h := d.Header
		h.FragOff = uint16(off / 8)
		if last {
			h.Flags &^= FlagMoreFrags
		} else {
			h.Flags |= FlagMoreFrags
		}
		// Fragments share the parent payload: the ranges are disjoint, and
		// every consumer (hops, taps, reassembly) either reads or mutates
		// only its own range, so no copy is needed. They share the pooled
		// owner too; the caller fixes its reference count to the train
		// length.
		var frag *Datagram
		if pool != nil {
			frag = pool.getDatagram()
		} else {
			frag = &Datagram{}
		}
		frag.Header = h
		frag.Payload = d.Payload[off:end:end]
		frag.owner = d.owner
		frag.Header.TotalLen = uint16(frag.Len())
		dst = append(dst, frag)
	}
	return dst, nil
}

// SetFragmentRefs points a fragment train's shared wire buffer at the
// number of live fragments, so the buffer returns to its pool only when
// the last fragment is dropped or reassembled. No-op for unpooled
// datagrams.
func SetFragmentRefs(frags []*Datagram) {
	if len(frags) > 0 && frags[0].owner != nil {
		frags[0].owner.refs = int32(len(frags))
	}
}

// FragmentTrainLen predicts how many wire packets a UDP payload of the given
// size produces at the given MTU, without building the datagram. The
// experiment code uses it to cross-check observed fragment trains.
func FragmentTrainLen(udpPayload, mtu int) int {
	total := IPv4HeaderLen + UDPHeaderLen + udpPayload
	if total <= mtu {
		return 1
	}
	chunk := (mtu - IPv4HeaderLen) &^ 7
	ipPayload := UDPHeaderLen + udpPayload
	n := ipPayload / chunk
	if ipPayload%chunk != 0 {
		n++
	}
	return n
}

// reassemblyKey identifies one datagram's fragment set.
type reassemblyKey struct {
	src, dst Addr
	proto    byte
	id       uint16
}

type reassemblyBuf struct {
	frags   []*Datagram
	gotLast bool
}

// Reassembler collects fragments and reconstitutes original datagrams, as
// the receiving host's IP layer does. It is the component that makes a lost
// fragment discard the whole application frame — the goodput hazard the
// paper highlights (§3.C, citing [FF99]).
type Reassembler struct {
	pending map[reassemblyKey]*reassemblyBuf
	// freeBufs recycles reassembly buffers between fragment sets, so a
	// steady stream of fragmented datagrams does not allocate per train.
	freeBufs []*reassemblyBuf
	// pool, when set, supplies the assembled datagrams' payload buffers;
	// the consumer (the host's delivery path) releases them after the
	// transport handler returns.
	pool *BufPool
	// Completed counts successfully reassembled datagrams; Discarded counts
	// datagrams flushed while incomplete.
	Completed, Discarded int
}

// getBuf returns an empty reassembly buffer, recycled when possible.
func (r *Reassembler) getBuf() *reassemblyBuf {
	if n := len(r.freeBufs); n > 0 {
		buf := r.freeBufs[n-1]
		r.freeBufs = r.freeBufs[:n-1]
		return buf
	}
	return &reassemblyBuf{}
}

// putBuf releases a buffer's fragments and recycles it.
func (r *Reassembler) putBuf(buf *reassemblyBuf) {
	for _, f := range buf.frags {
		f.Release()
	}
	buf.frags = buf.frags[:0]
	buf.gotLast = false
	r.freeBufs = append(r.freeBufs, buf)
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[reassemblyKey]*reassemblyBuf)}
}

// NewReassemblerPooled is NewReassembler drawing assembled payloads from a
// wire-buffer pool.
func NewReassemblerPooled(p *BufPool) *Reassembler {
	r := NewReassembler()
	r.pool = p
	return r
}

// PendingDatagrams reports how many datagrams are partially assembled.
func (r *Reassembler) PendingDatagrams() int { return len(r.pending) }

// Add offers one received datagram. If it is not a fragment it is returned
// immediately. If it completes a fragment set, the reassembled datagram is
// returned. Otherwise nil is returned and the fragment is buffered.
func (r *Reassembler) Add(d *Datagram) (*Datagram, error) {
	if !d.Header.IsFragment() {
		return d, nil
	}
	key := reassemblyKey{src: d.Header.Src, dst: d.Header.Dst, proto: d.Header.Protocol, id: d.Header.ID}
	buf := r.pending[key]
	if buf == nil {
		buf = r.getBuf()
		r.pending[key] = buf
	}
	buf.frags = append(buf.frags, d)
	if !d.Header.MoreFragments() {
		buf.gotLast = true
	}
	if !buf.gotLast {
		return nil, nil
	}
	whole, ok := tryAssemble(buf.frags, r.pool)
	if !ok {
		return nil, nil // still missing a middle fragment
	}
	delete(r.pending, key)
	// The fragments' bytes are spliced into the whole datagram; their
	// shared wire buffer can recycle, as can the buffer that collected them.
	r.putBuf(buf)
	r.Completed++
	return whole, nil
}

// Reset restores the reassembler to its freshly constructed state without
// reallocating: pending fragments release their wire buffers back to the
// pool, the pending map is cleared in place, and the counters zero. Unlike
// FlushIncomplete, discarded fragments are not counted — Reset rewinds
// state between runs rather than accounting for the end of one.
func (r *Reassembler) Reset() {
	for k, buf := range r.pending {
		r.putBuf(buf)
		delete(r.pending, k)
	}
	r.Completed = 0
	r.Discarded = 0
}

// FlushIncomplete drops all partially assembled datagrams (e.g. at end of
// trace or on a reassembly timeout) and returns how many were discarded.
func (r *Reassembler) FlushIncomplete() int {
	n := len(r.pending)
	for _, buf := range r.pending {
		for _, f := range buf.frags {
			f.Release()
		}
	}
	r.pending = make(map[reassemblyKey]*reassemblyBuf)
	r.Discarded += n
	return n
}

// tryAssemble attempts to splice a fragment list into the original
// datagram. It requires a contiguous byte range starting at offset 0 and
// ending at a fragment without MF.
func tryAssemble(frags []*Datagram, pool *BufPool) (*Datagram, bool) {
	// Sorting in place is fine: the buffer is private to the reassembler
	// and fragment order within a pending set carries no meaning. Insertion
	// sort, not sort.Slice: trains are short (≤ ~45 fragments) and this is
	// the per-packet path, where the closure and swapper allocations of the
	// generic sort would dominate.
	sorted := frags
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Header.FragOff < sorted[j-1].Header.FragOff; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	tail := sorted[len(sorted)-1]
	size := int(tail.Header.FragOff)*8 + len(tail.Payload)
	// Validate the byte range first, so a corrupt set never costs a
	// buffer.
	next := 0
	for i, f := range sorted {
		off := int(f.Header.FragOff) * 8
		if off != next {
			return nil, false // gap (or overlap, which we treat as corrupt)
		}
		next = off + len(f.Payload)
		last := i == len(sorted)-1
		if f.Header.MoreFragments() == last {
			// MF set on the final fragment, or cleared mid-train: corrupt.
			return nil, false
		}
	}
	if IPv4HeaderLen+size > 0xFFFF {
		return nil, false
	}
	var payload []byte
	var wb *WireBuf
	if pool != nil {
		wb = pool.get(size)
		payload = wb.b
	} else {
		payload = make([]byte, 0, size)
	}
	for _, f := range sorted {
		payload = append(payload, f.Payload...)
	}
	if wb != nil {
		wb.b = payload
	}
	h := sorted[0].Header
	h.FragOff = 0
	h.Flags &^= FlagMoreFrags
	var whole *Datagram
	if pool != nil {
		whole = pool.getDatagram()
	} else {
		whole = &Datagram{}
	}
	whole.Header = h
	whole.Payload = payload
	whole.owner = wb
	whole.Header.TotalLen = uint16(whole.Len())
	return whole, true
}
