package inet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header and size constants. EthernetOverhead is why the paper's Ethereal
// traces report 1514-byte packets for a 1500-byte IP MTU: libpcap counts the
// 14-byte Ethernet header.
const (
	IPv4HeaderLen    = 20 // we do not model IP options
	UDPHeaderLen     = 8
	DefaultMTU       = 1500 // Windows 2000 default Ethernet MTU (paper §3.C)
	EthernetOverhead = 14   // dest MAC + src MAC + ethertype
	MaxWirePacket    = DefaultMTU + EthernetOverhead
)

// Protocol numbers carried in the IPv4 header.
const (
	ProtoICMP byte = 1
	ProtoTCP  byte = 6
	ProtoUDP  byte = 17
)

// IPv4 flag bits (in the flags/fragment-offset word).
const (
	FlagDontFragment = 0x4000
	FlagMoreFrags    = 0x2000
	fragOffsetMask   = 0x1FFF
)

// IPv4Header is a fixed 20-byte IPv4 header (no options).
type IPv4Header struct {
	TOS      byte
	TotalLen uint16 // header + payload, in bytes
	ID       uint16 // identification, shared by all fragments of a datagram
	Flags    uint16 // FlagDontFragment | FlagMoreFrags
	FragOff  uint16 // fragment offset in 8-byte units
	TTL      byte
	Protocol byte
	Checksum uint16 // computed on marshal, verified on parse
	Src, Dst Addr
}

// MoreFragments reports whether the MF bit is set.
func (h *IPv4Header) MoreFragments() bool { return h.Flags&FlagMoreFrags != 0 }

// DontFragment reports whether the DF bit is set.
func (h *IPv4Header) DontFragment() bool { return h.Flags&FlagDontFragment != 0 }

// IsFragment reports whether this header belongs to a fragment of a larger
// datagram: either a non-first fragment (offset > 0) or a first fragment
// with more to come. This is the predicate the trace analysis uses to count
// "IP fragments" for Figure 5.
func (h *IPv4Header) IsFragment() bool {
	return h.FragOff != 0 || h.MoreFragments()
}

// PayloadLen returns the number of payload bytes after the header.
func (h *IPv4Header) PayloadLen() int { return int(h.TotalLen) - IPv4HeaderLen }

// Marshal serialises the header into a fresh 20-byte slice, computing the
// header checksum.
func (h *IPv4Header) Marshal() []byte {
	b := make([]byte, IPv4HeaderLen)
	h.MarshalTo(b)
	return b
}

// MarshalTo serialises the header into b, which must hold at least
// IPv4HeaderLen bytes, computing the header checksum. Callers that manage
// their own buffers use this to serialise without allocating.
func (h *IPv4Header) MarshalTo(b []byte) {
	b = b[:IPv4HeaderLen]
	b[0] = 0x45 // version 4, IHL 5 words
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	flagsOff := (h.Flags & 0x6000) | (h.FragOff & fragOffsetMask)
	binary.BigEndian.PutUint16(b[6:], flagsOff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0 // checksum computed over the header with the field zeroed
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	cs := Checksum(b)
	binary.BigEndian.PutUint16(b[10:], cs)
	h.Checksum = cs
}

// Errors returned by the parsers.
var (
	ErrShortHeader  = errors.New("inet: buffer shorter than header")
	ErrBadVersion   = errors.New("inet: not an IPv4 header")
	ErrBadChecksum  = errors.New("inet: header checksum mismatch")
	ErrBadLength    = errors.New("inet: total length inconsistent with buffer")
	ErrBadFragment  = errors.New("inet: inconsistent fragment set")
	ErrReassemble   = errors.New("inet: reassembly incomplete")
	ErrPayloadRange = errors.New("inet: payload exceeds representable length")
)

// ParseIPv4 decodes a header from the front of b and returns it along with
// the payload sub-slice. The checksum is verified.
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, nil, ErrShortHeader
	}
	if b[0] != 0x45 {
		return h, nil, ErrBadVersion
	}
	if Checksum(b[:IPv4HeaderLen]) != 0 {
		return h, nil, ErrBadChecksum
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	flagsOff := binary.BigEndian.Uint16(b[6:])
	h.Flags = flagsOff & 0x6000
	h.FragOff = flagsOff & fragOffsetMask
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < IPv4HeaderLen || int(h.TotalLen) > len(b) {
		return h, nil, ErrBadLength
	}
	return h, b[IPv4HeaderLen:h.TotalLen], nil
}

// Checksum computes the RFC 1071 internet checksum of b. Verifying a buffer
// that already contains its checksum yields 0.
func Checksum(b []byte) uint16 { return checksumWithInitial(0, b) }

// checksumWithInitial folds b into a running 16-bit one's-complement sum
// (e.g. a pre-summed pseudo-header) and finalises it.
//
// Because 2^16 ≡ 1 (mod 2^16−1), a big-endian 32-bit word is congruent to
// the sum of its two 16-bit halves, so the sum can be accumulated eight
// bytes at a time in a uint64 and folded once at the end — ~4× fewer loop
// iterations than word-at-a-time on the full-MTU payloads UDP checksums
// cover. The uint64 cannot overflow below ~2^31 input bytes, far beyond
// any packet.
func checksumWithInitial(sum uint32, b []byte) uint16 {
	s := uint64(sum)
	for len(b) >= 8 {
		s += uint64(binary.BigEndian.Uint32(b)) + uint64(binary.BigEndian.Uint32(b[4:]))
		b = b[8:]
	}
	if len(b) >= 4 {
		s += uint64(binary.BigEndian.Uint32(b))
		b = b[4:]
	}
	if len(b) >= 2 {
		s += uint64(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		s += uint64(b[0]) << 8
	}
	for s>>16 != 0 {
		s = (s & 0xFFFF) + (s >> 16)
	}
	return ^uint16(s)
}

// String summarises the header for diagnostics.
func (h *IPv4Header) String() string {
	frag := ""
	if h.IsFragment() {
		frag = fmt.Sprintf(" frag(off=%d,mf=%t)", h.FragOff, h.MoreFragments())
	}
	return fmt.Sprintf("IPv4 %s -> %s proto=%d len=%d id=%#04x ttl=%d%s",
		h.Src, h.Dst, h.Protocol, h.TotalLen, h.ID, h.TTL, frag)
}
