package inet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func buildTestUDP(t testing.TB, payloadLen int) *Datagram {
	t.Helper()
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	d, err := BuildUDP(srcEP, dstEP, 0x1234, payload)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFragmentSmallPacketUntouched(t *testing.T) {
	d := buildTestUDP(t, 500)
	frags, err := Fragment(d, DefaultMTU)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0] != d {
		t.Fatal("small datagram should pass through unfragmented")
	}
}

func TestFragmentTrainShape(t *testing.T) {
	// A 3000-byte application frame at 250 Kbps-style encoding: the paper
	// observes trains of 1514-byte wire packets plus a remainder.
	d := buildTestUDP(t, 3000)
	frags, err := Fragment(d, DefaultMTU)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("train length=%d, want 3", len(frags))
	}
	// All but the last are full MTU (1514 on the wire), same size.
	for i, f := range frags[:len(frags)-1] {
		if f.WireLen() != MaxWirePacket {
			t.Fatalf("fragment %d wire len=%d, want %d", i, f.WireLen(), MaxWirePacket)
		}
		if !f.Header.MoreFragments() {
			t.Fatalf("fragment %d missing MF", i)
		}
	}
	last := frags[len(frags)-1]
	if last.Header.MoreFragments() {
		t.Fatal("last fragment has MF set")
	}
	if last.WireLen() >= MaxWirePacket {
		t.Fatal("last fragment should be the remainder")
	}
	// First fragment carries the UDP header and parseable ports.
	if flow, ok := frags[0].FlowOf(); !ok || flow.Src.Port != srcEP.Port {
		t.Fatal("first fragment lost the UDP ports")
	}
	// Non-first fragments have no UDP header.
	if _, ok := frags[1].FlowOf(); ok {
		t.Fatal("middle fragment claims a flow")
	}
	// Offsets are 8-byte aligned and contiguous.
	next := 0
	for _, f := range frags {
		if int(f.Header.FragOff)*8 != next {
			t.Fatalf("offset gap at %d", f.Header.FragOff)
		}
		next += len(f.Payload)
	}
	// All fragments share the IP ID.
	for _, f := range frags {
		if f.Header.ID != 0x1234 {
			t.Fatal("fragment train lost its IP ID")
		}
	}
}

func TestFragmentReassembleIdentity(t *testing.T) {
	d := buildTestUDP(t, 9000)
	orig := append([]byte(nil), d.Payload...)
	frags, err := Fragment(d, DefaultMTU)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler()
	var whole *Datagram
	for i, f := range frags {
		got, err := r.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(frags)-1 && got != nil {
			t.Fatal("reassembled before last fragment")
		}
		whole = got
	}
	if whole == nil {
		t.Fatal("no datagram reassembled")
	}
	if !bytes.Equal(whole.Payload, orig) {
		t.Fatal("reassembled payload differs")
	}
	if whole.Header.IsFragment() {
		t.Fatal("reassembled datagram still flagged as fragment")
	}
	if _, appData, err := whole.UDP(); err != nil || len(appData) != 9000 {
		t.Fatalf("UDP extract after reassembly: %v len=%d", err, len(appData))
	}
	if r.Completed != 1 {
		t.Fatalf("Completed=%d", r.Completed)
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	d := buildTestUDP(t, 5000)
	orig := append([]byte(nil), d.Payload...)
	frags, _ := Fragment(d, DefaultMTU)
	if len(frags) < 3 {
		t.Fatalf("need >=3 fragments, got %d", len(frags))
	}
	// Deliver in reverse.
	r := NewReassembler()
	var whole *Datagram
	for i := len(frags) - 1; i >= 0; i-- {
		got, err := r.Add(frags[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			whole = got
		}
	}
	if whole == nil || !bytes.Equal(whole.Payload, orig) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassembleMissingFragmentDiscards(t *testing.T) {
	d := buildTestUDP(t, 5000)
	frags, _ := Fragment(d, DefaultMTU)
	r := NewReassembler()
	// Drop a middle fragment: the datagram must never complete.
	for i, f := range frags {
		if i == 1 {
			continue
		}
		got, err := r.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			t.Fatal("completed despite missing fragment")
		}
	}
	if r.PendingDatagrams() != 1 {
		t.Fatalf("pending=%d", r.PendingDatagrams())
	}
	if n := r.FlushIncomplete(); n != 1 {
		t.Fatalf("flushed=%d", n)
	}
	if r.Discarded != 1 || r.PendingDatagrams() != 0 {
		t.Fatal("discard accounting wrong")
	}
}

func TestReassemblerPassesWholeDatagrams(t *testing.T) {
	d := buildTestUDP(t, 100)
	r := NewReassembler()
	got, err := r.Add(d)
	if err != nil || got != d {
		t.Fatalf("whole datagram not passed through: %v %v", got, err)
	}
}

func TestInterleavedTrains(t *testing.T) {
	// Two datagrams with different IDs fragment and interleave on the wire;
	// both must reassemble correctly.
	p1 := make([]byte, 4000)
	p2 := make([]byte, 4000)
	for i := range p1 {
		p1[i], p2[i] = 0xAA, 0x55
	}
	d1, _ := BuildUDP(srcEP, dstEP, 1, p1)
	d2, _ := BuildUDP(srcEP, dstEP, 2, p2)
	f1, _ := Fragment(d1, DefaultMTU)
	f2, _ := Fragment(d2, DefaultMTU)
	r := NewReassembler()
	var done []*Datagram
	for i := 0; i < len(f1) || i < len(f2); i++ {
		for _, fs := range [][]*Datagram{f1, f2} {
			if i < len(fs) {
				if got, err := r.Add(fs[i]); err != nil {
					t.Fatal(err)
				} else if got != nil {
					done = append(done, got)
				}
			}
		}
	}
	if len(done) != 2 {
		t.Fatalf("reassembled %d datagrams, want 2", len(done))
	}
	if r.Completed != 2 {
		t.Fatalf("Completed=%d", r.Completed)
	}
}

func TestFragmentDFError(t *testing.T) {
	d := buildTestUDP(t, 3000)
	d.Header.Flags |= FlagDontFragment
	if _, err := Fragment(d, DefaultMTU); err == nil {
		t.Fatal("DF oversize datagram fragmented")
	}
}

func TestFragmentTinyMTUError(t *testing.T) {
	d := buildTestUDP(t, 100)
	if _, err := Fragment(d, 20); err == nil {
		t.Fatal("absurd MTU accepted")
	}
}

func TestFragmentTrainLen(t *testing.T) {
	cases := []struct {
		payload, want int
	}{
		{100, 1},
		{1472, 1}, // exactly fits: 20+8+1472 = 1500
		{1473, 2}, // one byte over
		{3000, 3}, // ~paper's 250 Kbps case
		{9000, 7}, // ~637-731 Kbps very high rate case
		{0, 1},
	}
	for _, c := range cases {
		if got := FragmentTrainLen(c.payload, DefaultMTU); got != c.want {
			t.Fatalf("FragmentTrainLen(%d)=%d, want %d", c.payload, got, c.want)
		}
	}
}

// Property: fragmentation at any sane MTU followed by reassembly is the
// identity on the payload, offsets stay 8-byte aligned, and every fragment
// respects the MTU.
func TestFragmentReassemblyProperty(t *testing.T) {
	f := func(sizeSeed uint16, mtuSeed uint8) bool {
		payloadLen := int(sizeSeed)%20000 + 1
		mtu := 576 + int(mtuSeed)*4 // classic minimum up to ~1596
		payload := make([]byte, payloadLen)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		d, err := BuildUDP(srcEP, dstEP, sizeSeed, payload)
		if err != nil {
			return false
		}
		frags, err := Fragment(d, mtu)
		if err != nil {
			return false
		}
		r := NewReassembler()
		var whole *Datagram
		for _, fr := range frags {
			if fr.Len() > mtu {
				return false
			}
			if fr.Header.FragOff != 0 && int(fr.Header.FragOff)*8%8 != 0 {
				return false
			}
			got, err := r.Add(fr)
			if err != nil {
				return false
			}
			if got != nil {
				whole = got
			}
		}
		if whole == nil {
			return false
		}
		_, appData, err := whole.UDP()
		return err == nil && bytes.Equal(appData, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDatagramMarshalParseRoundTrip(t *testing.T) {
	d := buildTestUDP(t, 333)
	b, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDatagram(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, d.Payload) || got.Header.ID != d.Header.ID {
		t.Fatal("datagram round trip mismatch")
	}
	if got.String() == "" || d.WireLen() != d.Len()+EthernetOverhead {
		t.Fatal("accessors")
	}
}

func TestDatagramClone(t *testing.T) {
	d := buildTestUDP(t, 10)
	c := d.Clone()
	c.Payload[0] ^= 0xFF
	c.Header.TTL--
	if d.Payload[0] == c.Payload[0] || d.Header.TTL == c.Header.TTL {
		t.Fatal("clone shares state")
	}
}

func TestUDPExtractErrors(t *testing.T) {
	d := buildTestUDP(t, 2000)
	frags, _ := Fragment(d, DefaultMTU)
	if _, _, err := frags[1].UDP(); err != ErrBadFragment {
		t.Fatalf("UDP on fragment: %v", err)
	}
	notUDP := &Datagram{Header: IPv4Header{Protocol: ProtoICMP}}
	if _, _, err := notUDP.UDP(); err == nil {
		t.Fatal("UDP on ICMP datagram accepted")
	}
}

func TestBuildUDPTooBig(t *testing.T) {
	if _, err := BuildUDP(srcEP, dstEP, 1, make([]byte, 70000)); err == nil {
		t.Fatal("oversize UDP build accepted")
	}
}
