package inet

import (
	"encoding/binary"
	"fmt"
)

// ICMP message types used by the probe tooling (a subset of RFC 792
// sufficient for ping and tracert, the two tools the paper's methodology
// runs before and after every experiment).
const (
	ICMPEchoReply    byte = 0
	ICMPEchoRequest  byte = 8
	ICMPTimeExceeded byte = 11
	ICMPDestUnreach  byte = 3
	icmpHeaderLen         = 8
)

// ICMPMessage is a parsed ICMP header plus payload. For TimeExceeded and
// DestUnreach, Payload carries the leading bytes of the offending datagram
// (IP header + 8 bytes), exactly as real routers return, which is how
// tracert matches replies to probes.
type ICMPMessage struct {
	Type, Code byte
	ID, Seq    uint16
	Payload    []byte
}

// MarshalICMP serialises the message with its checksum.
func MarshalICMP(m ICMPMessage) []byte {
	b := make([]byte, icmpHeaderLen+len(m.Payload))
	b[0] = m.Type
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[icmpHeaderLen:], m.Payload)
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return b
}

// ParseICMP decodes and checksum-verifies an ICMP message.
func ParseICMP(b []byte) (ICMPMessage, error) {
	var m ICMPMessage
	if len(b) < icmpHeaderLen {
		return m, ErrShortHeader
	}
	if Checksum(b) != 0 {
		return m, ErrBadChecksum
	}
	m.Type = b[0]
	m.Code = b[1]
	m.ID = binary.BigEndian.Uint16(b[4:])
	m.Seq = binary.BigEndian.Uint16(b[6:])
	m.Payload = append([]byte(nil), b[icmpHeaderLen:]...)
	return m, nil
}

// BuildICMP assembles a complete ICMP/IPv4 datagram.
func BuildICMP(src, dst Addr, ttl byte, id uint16, m ICMPMessage) *Datagram {
	d := &Datagram{
		Header: IPv4Header{
			ID:       id,
			TTL:      ttl,
			Protocol: ProtoICMP,
			Src:      src,
			Dst:      dst,
		},
		Payload: MarshalICMP(m),
	}
	d.Header.TotalLen = uint16(d.Len())
	return d
}

// QuoteDatagram returns the ICMP error payload for an offending datagram:
// its IP header plus the first 8 payload bytes (RFC 792).
func QuoteDatagram(d *Datagram) []byte {
	b, err := d.Marshal()
	if err != nil {
		return nil
	}
	n := IPv4HeaderLen + 8
	if n > len(b) {
		n = len(b)
	}
	return append([]byte(nil), b[:n]...)
}

// String summarises the message.
func (m ICMPMessage) String() string {
	name := map[byte]string{
		ICMPEchoReply:    "echo-reply",
		ICMPEchoRequest:  "echo-request",
		ICMPTimeExceeded: "time-exceeded",
		ICMPDestUnreach:  "dest-unreach",
	}[m.Type]
	if name == "" {
		name = fmt.Sprintf("type-%d", m.Type)
	}
	return fmt.Sprintf("ICMP %s id=%d seq=%d", name, m.ID, m.Seq)
}
