package inet

import (
	"encoding/binary"
	"fmt"
)

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
)

// TCPHeaderLen is the fixed header size (no options).
const TCPHeaderLen = 20

// TCPHeader is a fixed 20-byte TCP header. It exists so the paper's
// "players can also stream over TCP" comparison (§II.D) and the window-
// based-transport burstiness analysis (§I) run over real TCP segments that
// the capture tooling can parse.
type TCPHeader struct {
	SrcPort, DstPort Port
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
	Checksum         uint16
}

// HasFlag reports whether all given flag bits are set.
func (h TCPHeader) HasFlag(f byte) bool { return h.Flags&f == f }

// MarshalTCP serialises a segment (header + payload) with the
// pseudo-header checksum.
func MarshalTCP(src, dst Addr, h TCPHeader, payload []byte) ([]byte, error) {
	total := TCPHeaderLen + len(payload)
	if total > 0xFFFF {
		return nil, ErrPayloadRange
	}
	b := make([]byte, total)
	binary.BigEndian.PutUint16(b[0:], uint16(h.SrcPort))
	binary.BigEndian.PutUint16(b[2:], uint16(h.DstPort))
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	copy(b[TCPHeaderLen:], payload)
	cs := tcpChecksum(src, dst, b)
	binary.BigEndian.PutUint16(b[16:], cs)
	return b, nil
}

// ParseTCP decodes and checksum-verifies a segment from the IP payload.
func ParseTCP(src, dst Addr, b []byte) (TCPHeader, []byte, error) {
	var h TCPHeader
	if len(b) < TCPHeaderLen {
		return h, nil, ErrShortHeader
	}
	if off := int(b[12]>>4) * 4; off != TCPHeaderLen {
		return h, nil, fmt.Errorf("%w: tcp options unsupported (offset %d)", ErrBadLength, off)
	}
	if tcpChecksum(src, dst, b) != 0 {
		return h, nil, ErrBadChecksum
	}
	h.SrcPort = Port(binary.BigEndian.Uint16(b[0:]))
	h.DstPort = Port(binary.BigEndian.Uint16(b[2:]))
	h.Seq = binary.BigEndian.Uint32(b[4:])
	h.Ack = binary.BigEndian.Uint32(b[8:])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:])
	h.Checksum = binary.BigEndian.Uint16(b[16:])
	return h, b[TCPHeaderLen:], nil
}

func tcpChecksum(src, dst Addr, seg []byte) uint16 {
	pseudo := make([]byte, 12, 12+len(seg)+1)
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = ProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(seg)))
	return Checksum(append(pseudo, seg...))
}

// BuildTCP assembles a complete TCP/IPv4 datagram.
func BuildTCP(src, dst Endpoint, ipID uint16, h TCPHeader, payload []byte) (*Datagram, error) {
	h.SrcPort, h.DstPort = src.Port, dst.Port
	seg, err := MarshalTCP(src.Addr, dst.Addr, h, payload)
	if err != nil {
		return nil, err
	}
	d := &Datagram{
		Header: IPv4Header{
			ID:       ipID,
			TTL:      DefaultTTL,
			Protocol: ProtoTCP,
			Src:      src.Addr,
			Dst:      dst.Addr,
		},
		Payload: seg,
	}
	if d.Len() > 0xFFFF {
		return nil, ErrPayloadRange
	}
	d.Header.TotalLen = uint16(d.Len())
	return d, nil
}

// String summarises the header.
func (h TCPHeader) String() string {
	flags := ""
	for _, f := range []struct {
		bit  byte
		name string
	}{{TCPSyn, "S"}, {TCPAck, "A"}, {TCPFin, "F"}, {TCPRst, "R"}, {TCPPsh, "P"}} {
		if h.Flags&f.bit != 0 {
			flags += f.name
		}
	}
	return fmt.Sprintf("TCP %d -> %d [%s] seq=%d ack=%d win=%d", h.SrcPort, h.DstPort, flags, h.Seq, h.Ack, h.Window)
}
