package inet

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	srcEP = Endpoint{Addr: MakeAddr(130, 215, 10, 5), Port: 4000}
	dstEP = Endpoint{Addr: MakeAddr(207, 46, 1, 9), Port: PortMMSData}
)

func TestAddrStringParse(t *testing.T) {
	a := MakeAddr(130, 215, 10, 5)
	if a.String() != "130.215.10.5" {
		t.Fatalf("String=%q", a.String())
	}
	got, err := ParseAddr("130.215.10.5")
	if err != nil || got != a {
		t.Fatalf("ParseAddr=%v,%v", got, err)
	}
	if _, err := ParseAddr("300.1.1.1"); err == nil {
		t.Fatal("out-of-range octet accepted")
	}
	if _, err := ParseAddr("nonsense"); err == nil {
		t.Fatal("garbage accepted")
	}
	if !(Addr{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestEndpointFlowStrings(t *testing.T) {
	f := Flow{Src: srcEP, Dst: dstEP}
	if f.String() != "130.215.10.5:4000 -> 207.46.1.9:1755" {
		t.Fatalf("Flow.String=%q", f.String())
	}
	r := f.Reverse()
	if r.Src != dstEP || r.Dst != srcEP {
		t.Fatal("Reverse wrong")
	}
	if r.Reverse() != f {
		t.Fatal("double reverse is not identity")
	}
}

func TestIPv4HeaderRoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS: 0, TotalLen: 100, ID: 0xBEEF, TTL: 64,
		Protocol: ProtoUDP,
		Src:      srcEP.Addr, Dst: dstEP.Addr,
	}
	b := h.Marshal()
	if len(b) != IPv4HeaderLen {
		t.Fatalf("marshal len=%d", len(b))
	}
	padded := append(b, make([]byte, 80)...) // payload space for TotalLen
	got, payload, err := ParseIPv4(padded)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != h.ID || got.TTL != h.TTL || got.Protocol != h.Protocol ||
		got.Src != h.Src || got.Dst != h.Dst || got.TotalLen != h.TotalLen {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
	}
	if len(payload) != 80 {
		t.Fatalf("payload len=%d", len(payload))
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	h := IPv4Header{TotalLen: 20, ID: 7, TTL: 10, Protocol: ProtoUDP, Src: srcEP.Addr, Dst: dstEP.Addr}
	b := h.Marshal()
	b[8] ^= 0xFF // flip TTL bits
	if _, _, err := ParseIPv4(b); err != ErrBadChecksum {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestIPv4ParseErrors(t *testing.T) {
	if _, _, err := ParseIPv4(make([]byte, 10)); err != ErrShortHeader {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // IPv6 version nibble
	if _, _, err := ParseIPv4(bad); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	h := IPv4Header{TotalLen: 999, TTL: 1, Protocol: ProtoUDP}
	b := h.Marshal()
	if _, _, err := ParseIPv4(b); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}
}

func TestFragmentFlagsAndPredicates(t *testing.T) {
	h := IPv4Header{Flags: FlagMoreFrags, FragOff: 0}
	if !h.IsFragment() || !h.MoreFragments() {
		t.Fatal("first fragment predicates")
	}
	h = IPv4Header{FragOff: 100}
	if !h.IsFragment() {
		t.Fatal("middle fragment predicate")
	}
	h = IPv4Header{}
	if h.IsFragment() {
		t.Fatal("whole datagram misidentified as fragment")
	}
	h = IPv4Header{Flags: FlagDontFragment}
	if !h.DontFragment() || h.IsFragment() {
		t.Fatal("DF predicates")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if cs := Checksum(data); cs != ^uint16(0xddf2) {
		t.Fatalf("checksum=%#04x", cs)
	}
	// Odd-length buffers pad with a zero byte.
	odd := []byte{0x01}
	if cs := Checksum(odd); cs != ^uint16(0x0100) {
		t.Fatalf("odd checksum=%#04x", cs)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(id uint16, ttl, tos byte, payloadLen uint8) bool {
		h := IPv4Header{
			TOS: tos, ID: id, TTL: ttl, Protocol: ProtoUDP,
			TotalLen: uint16(IPv4HeaderLen + int(payloadLen)),
			Src:      srcEP.Addr, Dst: dstEP.Addr,
		}
		buf := append(h.Marshal(), make([]byte, int(payloadLen))...)
		got, payload, err := ParseIPv4(buf)
		if err != nil {
			return false
		}
		return got.ID == id && got.TTL == ttl && got.TOS == tos && len(payload) == int(payloadLen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("streaming media payload")
	b, err := MarshalUDP(srcEP, dstEP, payload)
	if err != nil {
		t.Fatal(err)
	}
	h, got, err := ParseUDP(srcEP.Addr, dstEP.Addr, b)
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcPort != srcEP.Port || h.DstPort != dstEP.Port {
		t.Fatalf("ports %d->%d", h.SrcPort, h.DstPort)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
	if int(h.Length) != UDPHeaderLen+len(payload) {
		t.Fatalf("length=%d", h.Length)
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	b, _ := MarshalUDP(srcEP, dstEP, []byte("hello"))
	b[len(b)-1] ^= 0x01
	if _, _, err := ParseUDP(srcEP.Addr, dstEP.Addr, b); err != ErrBadChecksum {
		t.Fatalf("corruption not detected: %v", err)
	}
	// Wrong pseudo-header (different src address) must also fail. Note a
	// plain src/dst swap would pass: ones-complement addition commutes.
	b2, _ := MarshalUDP(srcEP, dstEP, []byte("hello"))
	other := MakeAddr(10, 0, 0, 99)
	if _, _, err := ParseUDP(other, dstEP.Addr, b2); err != ErrBadChecksum {
		t.Fatalf("pseudo-header not covered: %v", err)
	}
}

func TestUDPParseErrors(t *testing.T) {
	if _, _, err := ParseUDP(srcEP.Addr, dstEP.Addr, make([]byte, 4)); err != ErrShortHeader {
		t.Fatalf("short: %v", err)
	}
	b, _ := MarshalUDP(srcEP, dstEP, []byte("x"))
	b[4], b[5] = 0xFF, 0xFF // absurd length
	if _, _, err := ParseUDP(srcEP.Addr, dstEP.Addr, b); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}
}

func TestUDPPayloadTooLarge(t *testing.T) {
	if _, err := MarshalUDP(srcEP, dstEP, make([]byte, 0x10000)); err != ErrPayloadRange {
		t.Fatalf("oversize payload: %v", err)
	}
}

func TestUDPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		s := Endpoint{Addr: srcEP.Addr, Port: Port(sp)}
		d := Endpoint{Addr: dstEP.Addr, Port: Port(dp)}
		b, err := MarshalUDP(s, d, payload)
		if err != nil {
			return false
		}
		h, got, err := ParseUDP(s.Addr, d.Addr, b)
		if err != nil {
			return false
		}
		return h.SrcPort == Port(sp) && h.DstPort == Port(dp) && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderStrings(t *testing.T) {
	h := IPv4Header{Src: srcEP.Addr, Dst: dstEP.Addr, Protocol: ProtoUDP, TotalLen: 48, ID: 1, TTL: 9}
	if h.String() == "" {
		t.Fatal("empty header string")
	}
	h.Flags = FlagMoreFrags
	if got := h.String(); got == "" || !h.IsFragment() {
		t.Fatalf("fragment string=%q", got)
	}
	u := UDPHeader{SrcPort: 1, DstPort: 2, Length: 16}
	if u.String() != "UDP 1 -> 2 len=16" {
		t.Fatalf("udp string=%q", u.String())
	}
}
